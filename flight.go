package kor

import (
	"sync"
	"sync/atomic"
)

// Request-level single-flight. N identical cacheable requests arriving
// concurrently used to stampede: each missed the result cache (the first
// finisher's Put lands too late for the others) and ran the full search. The
// engine now keys in-flight searches by the same canonical key as the result
// cache — which folds in the snapshot fingerprint, so a follower can only
// ever join a flight computing against the exact graph version the follower
// itself resolved its request on; a Swap between two arrivals changes the
// fingerprint and therefore the key.
//
// Followers receive a clone of the leader's response flagged Coalesced.
// Only definitive outcomes (the same set the result cache stores: a clean
// answer, ErrNoRoute, ErrBudgetExceeded) are shared — a leader that aborts
// on its own context or trips ErrSearchLimit proves nothing about the
// followers' requests, so they retry, electing a new leader among
// themselves.

// flight is one in-flight search. done closes when resp/err/definitive are
// readable. followers counts the callers that joined after the leader; it
// only grows (the flight itself is discarded at completion) and exists for
// the engine's test instrumentation.
type flight struct {
	done       chan struct{}
	resp       Response
	err        error
	definitive bool
	followers  atomic.Int32
}

// flightGroup indexes live flights by canonical request key. The zero value
// is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key, creating it when none is live. leader is
// true for the creator, who must eventually call finish exactly once;
// followers wait on f.done.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f = g.m[key]; f != nil {
		f.followers.Add(1)
		return f, false
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the followers. The
// flight leaves the map before done closes, so a request arriving after the
// outcome is decided starts a fresh flight instead of reading a stale one.
func (g *flightGroup) finish(key string, f *flight, resp Response, err error, definitive bool) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.resp, f.err, f.definitive = resp, err, definitive
	close(f.done)
}

// waiters sums the followers attached to live flights (test support: the
// stampede tests hold the leader in a hook until the expected followers have
// queued up).
func (g *flightGroup) waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.m {
		n += int(f.followers.Load())
	}
	return n
}
