package kor

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"kor/internal/apsp"
)

// Tests for the persistent distance oracle wiring: an engine started with
// DistIndexPath serves from the disk-loaded tables, refuses a mismatched
// index outright, and degrades to a lazy oracle — never stale distances —
// when a live update changes the graph.

// buildDistIndex writes a distance index for g into a temp dir.
func buildDistIndex(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dist.kori")
	info, err := WriteDistIndex(path, g, 3)
	if err != nil {
		t.Fatalf("WriteDistIndex: %v", err)
	}
	if info.Fingerprint != g.Fingerprint() || info.Bytes <= 0 {
		t.Fatalf("WriteDistIndex info = %+v", info)
	}
	return path
}

func TestEngineServesFromDistIndex(t *testing.T) {
	g := swapCity(t, 0.7)
	path := buildDistIndex(t, g)

	eng, err := NewEngine(g, &EngineConfig{DistIndexPath: path})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	ost := eng.OracleStatus()
	if ost.Kind != OracleKindPartitionedDisk || ost.Degraded {
		t.Fatalf("OracleStatus = %+v, want partitioned-disk, not degraded", ost)
	}
	if ost.IndexFingerprint != g.Fingerprint() || ost.IndexBytes <= 0 {
		t.Fatalf("OracleStatus index identity = %+v", ost)
	}

	// Same answers as the default engine on the reference query.
	resp, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.Best().Objective != 1.0 {
		t.Fatalf("objective = %v, want 1.0", resp.Best().Objective)
	}
}

func TestEngineRejectsMismatchedDistIndex(t *testing.T) {
	path := buildDistIndex(t, swapCity(t, 0.7))
	other := swapCity(t, 0.1)
	if _, err := NewEngine(other, &EngineConfig{DistIndexPath: path}); !errors.Is(err, apsp.ErrIndexFingerprint) {
		t.Fatalf("NewEngine err = %v, want ErrIndexFingerprint", err)
	}
}

func TestEngineDegradesAfterGraphChange(t *testing.T) {
	g := swapCity(t, 0.7)
	eng, err := NewEngine(g, &EngineConfig{DistIndexPath: buildDistIndex(t, g)})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	// Patch the graph: the index no longer matches, so the snapshot must
	// serve from a fresh lazy oracle and flag itself degraded.
	if _, err := eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}}); err != nil {
		t.Fatalf("Patch: %v", err)
	}
	ost := eng.OracleStatus()
	if ost.Kind != OracleKindLazy || !ost.Degraded {
		t.Fatalf("post-patch OracleStatus = %+v, want degraded lazy", ost)
	}
	// And the answers must reflect the patched graph, not the index.
	resp, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run after patch: %v", err)
	}
	if resp.Best().Objective != 0.4 {
		t.Fatalf("post-patch objective = %v, want 0.4", resp.Best().Objective)
	}

	// Swapping the original graph back restores disk-oracle serving: the
	// fingerprint matches again and the shared disk oracle is still alive.
	if _, err := eng.Swap(swapCity(t, 0.7)); err != nil {
		t.Fatalf("Swap back: %v", err)
	}
	ost = eng.OracleStatus()
	if ost.Kind != OracleKindPartitionedDisk || ost.Degraded {
		t.Fatalf("post-restore OracleStatus = %+v, want partitioned-disk again", ost)
	}
	resp, err = eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run after restore: %v", err)
	}
	if resp.Best().Objective != 1.0 {
		t.Fatalf("post-restore objective = %v, want 1.0", resp.Best().Objective)
	}
}

// TestDegradedSinceLifecycle: the timestamp dates the start of the degraded
// episode — set on the first degrading patch, stable across further patches,
// and cleared the moment the index matches again.
func TestDegradedSinceLifecycle(t *testing.T) {
	g := swapCity(t, 0.7)
	eng, err := NewEngine(g, &EngineConfig{DistIndexPath: buildDistIndex(t, g)})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	if ost := eng.OracleStatus(); !ost.DegradedSince.IsZero() {
		t.Fatalf("healthy engine reports DegradedSince %v", ost.DegradedSince)
	}

	if _, err := eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}}); err != nil {
		t.Fatalf("Patch: %v", err)
	}
	first := eng.OracleStatus()
	if !first.Degraded || first.DegradedSince.IsZero() {
		t.Fatalf("post-patch OracleStatus = %+v, want degraded with a timestamp", first)
	}

	// A second patch extends the same episode; the start must not move.
	if _, err := eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.2, Budget: 1.2}}}); err != nil {
		t.Fatalf("second Patch: %v", err)
	}
	second := eng.OracleStatus()
	if !second.Degraded || !second.DegradedSince.Equal(first.DegradedSince) {
		t.Fatalf("second patch moved DegradedSince from %v to %v", first.DegradedSince, second.DegradedSince)
	}

	// Recovery clears the timestamp along with the flag.
	if _, err := eng.Swap(swapCity(t, 0.7)); err != nil {
		t.Fatalf("Swap back: %v", err)
	}
	if ost := eng.OracleStatus(); ost.Degraded || !ost.DegradedSince.IsZero() {
		t.Fatalf("post-restore OracleStatus = %+v, want cleared DegradedSince", ost)
	}
}

func TestOracleStatusWithoutDistIndex(t *testing.T) {
	eng, err := NewEngine(swapCity(t, 0.7), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ost := eng.OracleStatus()
	if ost.Kind != OracleKindMatrix || ost.Degraded || ost.IndexFingerprint != 0 {
		t.Fatalf("OracleStatus = %+v, want plain matrix oracle", ost)
	}
}
