package kor

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kor/internal/core"
)

// Tests for request-level single-flight coalescing (flight.go) and batch
// deduplication (batch.go): N identical concurrent Runs execute one search,
// followers receive clones flagged Coalesced, the flight key's snapshot
// fingerprint pins followers to the graph version they resolved against, and
// non-definitive outcomes are never shared. Run with -race.

// parkFirstSearch installs a hook on eng that blocks the first leader inside
// leadSearch until release closes; later searches pass straight through. The
// returned channel closes when the first leader is parked, and the counter
// reports how many searches actually executed.
func parkFirstSearch(eng *Engine, release <-chan struct{}) (parked chan struct{}, searches *atomic.Int32) {
	parked = make(chan struct{})
	searches = new(atomic.Int32)
	eng.searchHook = func() {
		if searches.Add(1) == 1 {
			close(parked)
			<-release
		}
	}
	return parked, searches
}

// awaitWaiters polls until n followers are queued on the engine's live
// flights.
func awaitWaiters(t *testing.T, eng *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for eng.flights.waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d followers queued, want %d", eng.flights.waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

type flightOutcome struct {
	resp Response
	err  error
}

// TestSingleFlightStampede: the cache-stampede regression. The leader is held
// mid-search while identical requests pile up; when it finishes, exactly one
// search has run (hook count, and every response carries the one search's
// Metrics.PlanSweeps) and every follower holds a Coalesced clone of the same
// answer.
func TestSingleFlightStampede(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	const followers = 4

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)

	outcomes := make(chan flightOutcome, followers+1)
	run := func() {
		resp, err := eng.Run(context.Background(), req)
		outcomes <- flightOutcome{resp, err}
	}
	go run()
	<-parked
	for i := 0; i < followers; i++ {
		go run()
	}
	awaitWaiters(t, eng, followers)
	close(release)

	var leader *Response
	var shared []Response
	for i := 0; i < followers+1; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		if o.resp.Cached {
			t.Fatal("a stampeding request claimed a cache hit")
		}
		if o.resp.Coalesced {
			shared = append(shared, o.resp)
		} else {
			if leader != nil {
				t.Fatal("two responses claim to have run the search")
			}
			r := o.resp
			leader = &r
		}
	}
	if leader == nil || len(shared) != followers {
		t.Fatalf("got %d coalesced responses and leader=%v, want %d and one leader",
			len(shared), leader != nil, followers)
	}
	if got := searches.Load(); got != 1 {
		t.Fatalf("%d searches executed for %d identical concurrent requests, want 1", got, followers+1)
	}
	// The one search's work is shared, not redone: every follower carries the
	// leader's counters verbatim.
	for _, resp := range shared {
		if resp.Metrics != leader.Metrics {
			t.Fatalf("follower metrics %+v differ from leader %+v", resp.Metrics, leader.Metrics)
		}
		if resp.Best().Objective != leader.Best().Objective ||
			resp.Best().Budget != leader.Best().Budget {
			t.Fatalf("follower route %v differs from leader %v", resp.Best(), leader.Best())
		}
		if resp.Snapshot.Fingerprint != leader.Snapshot.Fingerprint {
			t.Fatal("follower snapshot fingerprint differs from leader")
		}
	}

	st, ok := eng.CacheStats()
	if !ok {
		t.Fatal("CacheStats reported disabled")
	}
	if st.Hits != 0 || st.Misses != 1 || st.Coalesced != followers || st.Size != 1 {
		t.Fatalf("stats = %+v, want hits=0 misses=1 coalesced=%d size=1", st, followers)
	}
	// The flight's outcome landed in the cache: the next identical request is
	// a plain hit, not a new flight.
	resp, err := eng.Run(context.Background(), req)
	if err != nil || !resp.Cached {
		t.Fatalf("post-stampede run cached=%v err=%v, want a cache hit", resp.Cached, err)
	}
}

// TestSingleFlightWithoutCache: coalescing does not depend on the result
// cache — an engine with no cache still folds identical concurrent requests
// into one search.
func TestSingleFlightWithoutCache(t *testing.T) {
	eng, err := NewEngine(cacheTestGraph(t), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, ok := eng.CacheStats(); ok {
		t.Fatal("cache unexpectedly enabled")
	}
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	const followers = 2

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)
	outcomes := make(chan flightOutcome, followers+1)
	run := func() {
		resp, err := eng.Run(context.Background(), req)
		outcomes <- flightOutcome{resp, err}
	}
	go run()
	<-parked
	for i := 0; i < followers; i++ {
		go run()
	}
	awaitWaiters(t, eng, followers)
	close(release)

	coalesced := 0
	for i := 0; i < followers+1; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		if o.resp.Coalesced {
			coalesced++
		}
	}
	if coalesced != followers || searches.Load() != 1 {
		t.Fatalf("coalesced=%d searches=%d, want %d and 1", coalesced, searches.Load(), followers)
	}
}

// swapTestGraph is cacheTestGraph plus an extra node and edge pair — same
// answers for the test request, different fingerprint.
func swapTestGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("hotel")          // 0
	b.AddNode("cafe", "jazz")   // 1
	b.AddNode("park")           // 2
	b.AddNode("museum", "jazz") // 3
	b.AddNode("pier")           // 4
	edges := []struct {
		from, to NodeID
		o, c     float64
	}{
		{0, 1, 0.7, 1.2}, {1, 2, 0.3, 0.8}, {2, 0, 0.5, 1.0},
		{0, 3, 0.9, 0.9}, {3, 2, 0.4, 1.1}, {2, 3, 0.4, 1.1},
		{1, 3, 0.6, 0.7}, {3, 1, 0.6, 0.7},
		{2, 4, 0.2, 0.5}, {4, 2, 0.2, 0.5},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestSingleFlightFollowerAcrossSwap: a follower that joined a flight before
// an Engine.Swap must receive the answer computed on the snapshot it resolved
// against — never a response whose fingerprint mismatches. A request arriving
// after the swap starts a fresh flight on the new snapshot (the flight key
// embeds the fingerprint).
func TestSingleFlightFollowerAcrossSwap(t *testing.T) {
	eng := cachedEngine(t, 64)
	oldFP := eng.Snapshot().Fingerprint
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)
	outcomes := make(chan flightOutcome, 2)
	run := func() {
		resp, err := eng.Run(context.Background(), req)
		outcomes <- flightOutcome{resp, err}
	}
	go run() // leader
	<-parked
	go run() // follower
	awaitWaiters(t, eng, 1)

	// Swap under the follower: new graph, new fingerprint, cache flushed.
	info, err := eng.Swap(swapTestGraph(t))
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if info.Fingerprint == oldFP {
		t.Fatal("swap graph has the same fingerprint — test cannot distinguish snapshots")
	}
	close(release)

	sawCoalesced := false
	for i := 0; i < 2; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		if o.resp.Snapshot.Fingerprint != oldFP {
			t.Fatalf("response fingerprint %x, want the pre-swap %x — a follower crossed a swap",
				o.resp.Snapshot.Fingerprint, oldFP)
		}
		if o.resp.Coalesced {
			sawCoalesced = true
		}
	}
	if !sawCoalesced {
		t.Fatal("follower did not coalesce")
	}

	// The same request now runs fresh on the new snapshot: no stale cache
	// entry, no stale flight.
	resp, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("post-swap run: %v", err)
	}
	if resp.Cached || resp.Coalesced {
		t.Fatalf("post-swap run cached=%v coalesced=%v, want a fresh search", resp.Cached, resp.Coalesced)
	}
	if resp.Snapshot.Fingerprint != info.Fingerprint {
		t.Fatalf("post-swap fingerprint %x, want %x", resp.Snapshot.Fingerprint, info.Fingerprint)
	}
	if searches.Load() != 2 {
		t.Fatalf("%d searches executed, want 2 (one per snapshot)", searches.Load())
	}
}

// TestSingleFlightNonDefinitiveNotShared: a leader that trips ErrSearchLimit
// proved nothing; followers must not inherit the failure. Each goroutine ends
// up running (and capping out) its own search, and nothing lands in the
// cache.
func TestSingleFlightNonDefinitiveNotShared(t *testing.T) {
	eng := cachedEngine(t, 64)
	opts := DefaultOptions()
	opts.MaxExpansions = 1
	req := Request{From: 0, To: 2, Keywords: []string{"jazz", "park"}, Budget: 6, Options: &opts}
	const followers = 3

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)
	outcomes := make(chan flightOutcome, followers+1)
	run := func() {
		resp, err := eng.Run(context.Background(), req)
		outcomes <- flightOutcome{resp, err}
	}
	go run()
	<-parked
	for i := 0; i < followers; i++ {
		go run()
	}
	awaitWaiters(t, eng, followers)
	close(release)

	for i := 0; i < followers+1; i++ {
		o := <-outcomes
		if !errors.Is(o.err, ErrSearchLimit) {
			t.Fatalf("err = %v, want ErrSearchLimit", o.err)
		}
		if o.resp.Coalesced || o.resp.Cached {
			t.Fatalf("non-definitive outcome was shared: cached=%v coalesced=%v",
				o.resp.Cached, o.resp.Coalesced)
		}
	}
	if got := searches.Load(); got != followers+1 {
		t.Fatalf("%d searches executed, want %d (every request retries for itself)", got, followers+1)
	}
	st, _ := eng.CacheStats()
	if st.Size != 0 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want an empty cache and no coalesced responses", st)
	}
}

// TestSingleFlightFollowerCancel: a follower whose context dies while waiting
// abandons the flight with its own context error; the leader and the flight
// are unaffected.
func TestSingleFlightFollowerCancel(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)
	leaderOut := make(chan flightOutcome, 1)
	go func() {
		resp, err := eng.Run(context.Background(), req)
		leaderOut <- flightOutcome{resp, err}
	}()
	<-parked

	ctx, cancel := context.WithCancel(context.Background())
	followerOut := make(chan flightOutcome, 1)
	go func() {
		resp, err := eng.Run(ctx, req)
		followerOut <- flightOutcome{resp, err}
	}()
	awaitWaiters(t, eng, 1)
	cancel()
	o := <-followerOut
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("cancelled follower err = %v, want context.Canceled", o.err)
	}
	if o.resp.Coalesced {
		t.Fatal("cancelled follower carries a coalesced response")
	}

	close(release)
	lo := <-leaderOut
	if lo.err != nil {
		t.Fatalf("leader failed after follower cancellation: %v", lo.err)
	}
	if searches.Load() != 1 {
		t.Fatalf("%d searches executed, want 1", searches.Load())
	}
}

// TestSearchBatchDedup: identical requests inside one batch run once; every
// duplicate receives a Coalesced clone of its representative's outcome —
// including error outcomes — at its original request index.
func TestSearchBatchDedup(t *testing.T) {
	eng := cachedEngine(t, 64)
	var searches atomic.Int32
	eng.searchHook = func() { searches.Add(1) }

	reqA := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	reqB := Request{From: 0, To: 2, Keywords: []string{"park"}, Budget: 6}
	reqC := Request{From: 1, To: 3, Keywords: []string{"jazz"}, Budget: 6}
	reqBad := Request{From: 0, To: 2, Keywords: []string{"nosuch"}, Budget: 6}
	requests := []Request{reqA, reqB, reqA, reqBad, reqC, reqB, reqA, reqBad}

	results, err := eng.SearchBatch(context.Background(), requests, 4)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	if len(results) != len(requests) {
		t.Fatalf("got %d results for %d requests", len(results), len(requests))
	}

	wantDup := map[int]int{2: 0, 5: 1, 6: 0, 7: 3} // duplicate index → representative
	for i, br := range results {
		rep, isDup := wantDup[i]
		if br.Response.Coalesced != isDup {
			t.Errorf("result %d coalesced=%v, want %v", i, br.Response.Coalesced, isDup)
		}
		if !isDup {
			continue
		}
		src := results[rep]
		if (br.Err == nil) != (src.Err == nil) || br.Route().String() != src.Route().String() {
			t.Errorf("duplicate %d (err=%v, route %s) mismatches representative %d (err=%v, route %s)",
				i, br.Err, br.Route(), rep, src.Err, src.Route())
		}
	}
	// The duplicated unknown-keyword request fails identically at both
	// indices.
	for _, i := range []int{3, 7} {
		if !errors.Is(results[i].Err, ErrUnknownKeyword) {
			t.Errorf("result %d err = %v, want ErrUnknownKeyword", i, results[i].Err)
		}
	}
	// Three searchable distinct requests → three searches (the unknown
	// keyword fails before any search).
	if got := searches.Load(); got != 3 {
		t.Fatalf("%d searches executed, want 3", got)
	}
	st, _ := eng.CacheStats()
	if st.Coalesced != 4 || st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want coalesced=4 misses=3 hits=0", st)
	}

	// The batch answers match individual Runs on a fresh engine.
	fresh := cachedEngine(t, 64)
	for i, req := range requests {
		want, wantErr := fresh.Run(context.Background(), req)
		if (results[i].Err == nil) != (wantErr == nil) {
			t.Errorf("result %d err = %v, single-run err = %v", i, results[i].Err, wantErr)
			continue
		}
		if wantErr == nil && results[i].Route().String() != want.Best().String() {
			t.Errorf("result %d route %s, single-run %s", i, results[i].Route(), want.Best())
		}
	}
}

// TestSearchBatchDedupUncacheable: requests that cannot be canonicalized (a
// Tracer observes per-request side effects) are never deduplicated, even when
// textually identical.
func TestSearchBatchDedupUncacheable(t *testing.T) {
	eng := cachedEngine(t, 64)
	var traced atomic.Int32
	opts := DefaultOptions()
	opts.Tracer = countingTracer{&traced}
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6, Options: &opts}

	results, err := eng.SearchBatch(context.Background(), []Request{req, req}, 2)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("result %d: %v", i, br.Err)
		}
		if br.Response.Coalesced {
			t.Fatalf("traced request %d was deduplicated", i)
		}
	}
	if traced.Load() == 0 {
		t.Fatal("tracer never fired — requests did not both search")
	}
}

// countingTracer counts label events; its presence makes a request
// uncacheable.
type countingTracer struct{ n *atomic.Int32 }

func (c countingTracer) Trace(core.TraceEvent) { c.n.Add(1) }

// TestBatchDedupConcurrentWithStampede: batch dedup and request single-flight
// compose — two concurrent batches full of the same request still execute the
// search once.
func TestBatchDedupConcurrentWithStampede(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	batch := []Request{req, req, req}

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)

	var wg sync.WaitGroup
	var failures atomic.Int32
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := eng.SearchBatch(context.Background(), batch, 2)
			if err != nil {
				failures.Add(1)
				return
			}
			for _, br := range results {
				if br.Err != nil || len(br.Response.Routes) == 0 {
					failures.Add(1)
				}
			}
		}()
	}
	<-parked
	// The second batch's representative either queues behind the parked
	// leader or hits the cache after it finishes; either way exactly one
	// search runs. Give it a moment to reach the flight, then release.
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d batch results failed", failures.Load())
	}
	if got := searches.Load(); got != 1 {
		t.Fatalf("%d searches executed across two duplicate-only batches, want 1", got)
	}
}
