package korapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kor"
)

func f64(v float64) *float64 { return &v }
func iptr(v int) *int        { return &v }
func bptr(v bool) *bool      { return &v }

// TestRequestMarshalStability pins the exact wire bytes of a fully
// populated request: a change here is a breaking /v1 change.
func TestRequestMarshalStability(t *testing.T) {
	req := Request{
		From: 12, To: 80,
		Keywords:  []string{"cafe", "jazz"},
		Budget:    6,
		Algorithm: "topk",
		K:         3,
		Metrics:   true,
		Options: &Options{
			Epsilon: f64(0.25), Beta: f64(1.5), Alpha: f64(0.5),
			Width: iptr(2), BudgetPriority: bptr(true),
			DisableStrategy1: bptr(true), DisableStrategy2: bptr(false),
			MaxExpansions: iptr(1000),
		},
	}
	got, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"from":12,"to":80,"keywords":["cafe","jazz"],"budget":6,"algorithm":"topk","k":3,"metrics":true,` +
		`"options":{"epsilon":0.25,"beta":1.5,"alpha":0.5,"width":2,"budget_priority":true,` +
		`"disable_strategy1":true,"disable_strategy2":false,"max_expansions":1000}}`
	if string(got) != want {
		t.Errorf("request wire form drifted:\n got %s\nwant %s", got, want)
	}

	var back Request
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("request round trip changed the value:\n got %+v\nwant %+v", back, req)
	}
}

// TestResponseMarshalStability pins the response wire form, including the
// metrics block and omitempty behaviour.
func TestResponseMarshalStability(t *testing.T) {
	resp := Response{
		Algorithm: "bucketbound",
		Bound:     2.4,
		Routes: []Route{{
			Nodes: []int64{0, 1, 2}, Names: []string{"Hotel", "Cafe", "Park"},
			Objective: 1.5, Budget: 3, Feasible: true,
		}},
		Metrics:   &Metrics{LabelsCreated: 7, PeakQueue: 3},
		ElapsedMS: 1.25,
	}
	got, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"algorithm":"bucketbound","bound":2.4,` +
		`"routes":[{"nodes":[0,1,2],"names":["Hotel","Cafe","Park"],"objective":1.5,"budget":3,"feasible":true}],` +
		`"metrics":{"labels_created":7,"labels_enqueued":0,"labels_dequeued":0,"pruned_budget":0,` +
		`"pruned_bound":0,"pruned_strategy2":0,"dominated":0,"dominated_swept":0,"shortcut_labels":0,` +
		`"feasible":0,"peak_queue":3},"elapsed_ms":1.25}`
	if string(got) != want {
		t.Errorf("response wire form drifted:\n got %s\nwant %s", got, want)
	}

	var back Response
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, back) {
		t.Errorf("response round trip changed the value:\n got %+v\nwant %+v", back, resp)
	}
}

func TestErrorEnvelopeMarshal(t *testing.T) {
	env := ErrorEnvelope{Error: Error{Code: CodeNoRoute, Message: "no feasible route exists"}}
	got, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"no_route","message":"no feasible route exists"}}`
	if string(got) != want {
		t.Errorf("error envelope drifted:\n got %s\nwant %s", got, want)
	}
}

// TestLegacyAliases: pre-/v1 clients said "delta" and "queries"; both still
// decode.
func TestLegacyAliases(t *testing.T) {
	var req Request
	if err := json.Unmarshal([]byte(`{"from":1,"to":2,"keywords":["a"],"delta":4.5}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.BudgetLimit() != 4.5 {
		t.Errorf("BudgetLimit = %v, want 4.5 from legacy delta", req.BudgetLimit())
	}

	var batch BatchRequest
	if err := json.Unmarshal([]byte(`{"queries":[{"from":1,"to":2,"keywords":["a"],"delta":4.5}]}`), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.All()) != 1 {
		t.Errorf("All() = %d requests, want 1 from legacy queries", len(batch.All()))
	}
}

func TestKorRequestConversion(t *testing.T) {
	wire := Request{
		From: 3, To: 9, Keywords: []string{"cafe"}, Delta: 5,
		Algorithm: "greedy", K: 2,
		Options: &Options{Alpha: f64(0.8), Width: iptr(2)},
	}
	req, err := wire.KorRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.From != 3 || req.To != 9 || req.Budget != 5 {
		t.Errorf("endpoints/budget wrong: %+v", req)
	}
	if req.Algorithm != kor.AlgorithmGreedy || req.K != 2 {
		t.Errorf("algorithm/k wrong: %+v", req)
	}
	if req.Options == nil || req.Options.Alpha != 0.8 || req.Options.Width != 2 {
		t.Fatalf("options not applied: %+v", req.Options)
	}
	// Unset wire options keep the engine defaults.
	if def := kor.DefaultOptions(); req.Options.Epsilon != def.Epsilon || req.Options.Beta != def.Beta {
		t.Errorf("defaults lost: %+v", req.Options)
	}
}

// TestKorRequestRejectsOutOfRangeIDs: wire IDs are int64 but engine node
// IDs are int32 — truncation would silently address the wrong node.
func TestKorRequestRejectsOutOfRangeIDs(t *testing.T) {
	for _, wire := range []Request{
		{From: 1 << 32, To: 2, Keywords: []string{"a"}, Budget: 5},
		{From: 0, To: -(1 << 32), Keywords: []string{"a"}, Budget: 5},
	} {
		if _, err := wire.KorRequest(); !errors.Is(err, kor.ErrBadQuery) {
			t.Errorf("KorRequest(%+v) err = %v, want ErrBadQuery wrap", wire, err)
		}
	}
}

func TestErrorFromMapping(t *testing.T) {
	cases := []struct {
		err  error
		code ErrorCode
	}{
		{fmt.Errorf("wrap: %w", kor.ErrNoRoute), CodeNoRoute},
		{fmt.Errorf("%w: %q", kor.ErrUnknownKeyword, "spa"), CodeUnknownKeyword},
		{fmt.Errorf("%w: epsilon", kor.ErrBadQuery), CodeBadRequest},
		{fmt.Errorf("kor: search aborted: %w", context.DeadlineExceeded), CodeDeadline},
		{fmt.Errorf("kor: search aborted: %w", context.Canceled), CodeCanceled},
		{fmt.Errorf("wrap: %w", kor.ErrSearchLimit), CodeSearchLimit},
		{fmt.Errorf("%w: %w %q", kor.ErrBadQuery, kor.ErrUnknownAlgorithm, "warp"), CodeUnknownAlgorithm},
		{fmt.Errorf("%w: update edge 9→9: no such edge", kor.ErrBadDelta), CodeBadRequest},
		{kor.ErrStaticIndex, CodeBadRequest},
		{errors.New("disk on fire"), CodeInternal},
	}
	for _, c := range cases {
		got := ErrorFrom(c.err)
		if got == nil || got.Code != c.code {
			t.Errorf("ErrorFrom(%v) = %+v, want code %s", c.err, got, c.code)
		}
	}
	if got := ErrorFrom(nil); got != nil {
		t.Errorf("ErrorFrom(nil) = %+v, want nil", got)
	}
	if got := ErrorFrom(kor.ErrBudgetExceeded); got != nil {
		t.Errorf("ErrorFrom(ErrBudgetExceeded) = %+v, want nil (routes still usable)", got)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[ErrorCode]int{
		CodeBadRequest:       400,
		CodeUnknownKeyword:   400,
		CodeUnknownAlgorithm: 400,
		CodeNotFound:         404,
		CodeNoRoute:          404,
		CodeSearchLimit:      422,
		CodeOverloaded:       429,
		CodeCanceled:         499,
		CodeInternal:         500,
		CodeDeadline:         504,
		ErrorCode("martian"): 500,
	}
	for code, want := range cases {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s.HTTPStatus() = %d, want %d", code, got, want)
		}
	}
}

// TestDeltaMarshalStability pins the live-update delta wire form: the body
// of POST /v1/admin/patch is part of the /v1 contract.
func TestDeltaMarshalStability(t *testing.T) {
	d := Delta{
		AddKeywords:    []DeltaKeywords{{Node: 3, Keywords: []string{"rooftop"}}},
		RemoveKeywords: []DeltaKeywords{{Node: 4, Keywords: []string{"closed"}}},
		UpdateEdges:    []DeltaEdge{{From: 0, To: 1, Objective: 0.5, Budget: 1.5}},
		AddEdges:       []DeltaEdge{{From: 2, To: 3, Objective: 0.2, Budget: 0.3}},
		RemoveEdges:    []DeltaEdge{{From: 1, To: 0}},
	}
	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"add_keywords":[{"node":3,"keywords":["rooftop"]}],` +
		`"remove_keywords":[{"node":4,"keywords":["closed"]}],` +
		`"update_edges":[{"from":0,"to":1,"objective":0.5,"budget":1.5}],` +
		`"add_edges":[{"from":2,"to":3,"objective":0.2,"budget":0.3}],` +
		`"remove_edges":[{"from":1,"to":0}]}`
	if string(got) != want {
		t.Errorf("delta wire form drifted:\n got %s\nwant %s", got, want)
	}
	var back Delta
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Errorf("delta round trip changed the value:\n got %+v\nwant %+v", back, d)
	}
	if !(Delta{}).Empty() || d.Empty() {
		t.Error("Empty() misreports")
	}
}

// TestSnapshotAndAdminMarshalStability pins the snapshot metadata block
// (inside /v1/stats and the admin responses).
func TestSnapshotAndAdminMarshalStability(t *testing.T) {
	admin := AdminResponse{
		Snapshot: Snapshot{Fingerprint: "00ff00ff00ff00ff", Generation: 2, LoadedAt: "2026-07-29T12:00:00Z"},
		Nodes:    4, Edges: 7,
	}
	got, err := json.Marshal(admin)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"snapshot":{"fingerprint":"00ff00ff00ff00ff","generation":2,"loaded_at":"2026-07-29T12:00:00Z"},` +
		`"nodes":4,"edges":7}`
	if string(got) != want {
		t.Errorf("admin wire form drifted:\n got %s\nwant %s", got, want)
	}
}

// TestDeltaConversion: wire deltas lower onto the engine type, with the
// same int32 range check as requests.
func TestDeltaConversion(t *testing.T) {
	wire := Delta{
		AddKeywords: []DeltaKeywords{{Node: 1, Keywords: []string{"a", "b"}}},
		UpdateEdges: []DeltaEdge{{From: 0, To: 1, Objective: 2, Budget: 3}},
		RemoveEdges: []DeltaEdge{{From: 1, To: 0, Objective: 99, Budget: 99}}, // attrs ignored
	}
	d, err := wire.KorDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.AddKeywords) != 1 || d.AddKeywords[0].Node != 1 || len(d.AddKeywords[0].Keywords) != 2 {
		t.Errorf("AddKeywords = %+v", d.AddKeywords)
	}
	if len(d.UpdateEdges) != 1 || d.UpdateEdges[0] != (kor.EdgePatch{From: 0, To: 1, Objective: 2, Budget: 3}) {
		t.Errorf("UpdateEdges = %+v", d.UpdateEdges)
	}
	if len(d.RemoveEdges) != 1 || d.RemoveEdges[0] != (kor.EdgeRef{From: 1, To: 0}) {
		t.Errorf("RemoveEdges = %+v", d.RemoveEdges)
	}

	bad := Delta{AddEdges: []DeltaEdge{{From: 1 << 40, To: 0, Objective: 1, Budget: 1}}}
	if _, err := bad.KorDelta(); !errors.Is(err, kor.ErrBadDelta) {
		t.Errorf("KorDelta out-of-range err = %v, want ErrBadDelta wrap", err)
	}
}

// TestWarningFrom: the budget overshoot is a warning on a usable response,
// never an error envelope; everything else is not a warning.
func TestWarningFrom(t *testing.T) {
	if w := WarningFrom(fmt.Errorf("wrap: %w", kor.ErrBudgetExceeded)); w == nil || w.Code != CodeBudgetExceeded {
		t.Errorf("WarningFrom(ErrBudgetExceeded) = %+v, want code budget_exceeded", w)
	}
	if w := WarningFrom(nil); w != nil {
		t.Errorf("WarningFrom(nil) = %+v", w)
	}
	if w := WarningFrom(kor.ErrNoRoute); w != nil {
		t.Errorf("WarningFrom(ErrNoRoute) = %+v, want nil (that is an error)", w)
	}
}

// TestResponseFromKor exercises the name-alignment rule: names appear only
// when every visited node is named.
func TestResponseFromKor(t *testing.T) {
	b := kor.NewBuilder()
	a := b.AddNode("cafe")
	c := b.AddNode("park")
	if err := b.AddEdge(a, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(c, a, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetName(a, "Cafe"); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()

	resp := kor.Response{
		Algorithm: kor.AlgorithmBucketBound,
		Bound:     2.4,
		Routes: []kor.Route{{
			Nodes: []kor.NodeID{a, c}, Objective: 1, Budget: 1, Feasible: true,
		}},
		Elapsed: 1500 * time.Microsecond,
	}
	wire := ResponseFromKor(g, resp, true)
	if wire.Routes[0].Names != nil {
		t.Errorf("partially named route still carries names: %v", wire.Routes[0].Names)
	}
	if wire.ElapsedMS != 1.5 {
		t.Errorf("ElapsedMS = %v, want 1.5", wire.ElapsedMS)
	}
	if wire.Metrics == nil {
		t.Error("withMetrics lost the metrics block")
	}
}
