package korapi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"kor"
)

// KorRequest lowers the wire request onto the engine's Request. Node IDs
// outside kor.NodeID's range fail here — truncating them would silently
// address the wrong node. The remaining validation happens in Engine.Run,
// so a malformed wire request fails there with ErrBadQuery.
func (r Request) KorRequest() (kor.Request, error) {
	for _, ep := range []struct {
		name string
		id   int64
	}{{"from", r.From}, {"to", r.To}} {
		if ep.id < math.MinInt32 || ep.id > math.MaxInt32 {
			return kor.Request{}, fmt.Errorf("%w: %s node id %d out of range", kor.ErrBadQuery, ep.name, ep.id)
		}
	}
	req := kor.Request{
		From:      kor.NodeID(r.From),
		To:        kor.NodeID(r.To),
		Keywords:  r.Keywords,
		Budget:    r.BudgetLimit(),
		Algorithm: kor.Algorithm(r.Algorithm),
		K:         r.K,
	}
	if r.Options != nil {
		opts := r.Options.Apply(kor.DefaultOptions())
		req.Options = &opts
	}
	return req, nil
}

// Apply overlays the present wire options onto base and returns the result.
func (o *Options) Apply(base kor.Options) kor.Options {
	if o == nil {
		return base
	}
	if o.Epsilon != nil {
		base.Epsilon = *o.Epsilon
	}
	if o.Beta != nil {
		base.Beta = *o.Beta
	}
	if o.Alpha != nil {
		base.Alpha = *o.Alpha
	}
	if o.Width != nil {
		base.Width = *o.Width
	}
	if o.BudgetPriority != nil {
		base.BudgetPriority = *o.BudgetPriority
	}
	if o.DisableStrategy1 != nil {
		base.DisableStrategy1 = *o.DisableStrategy1
	}
	if o.DisableStrategy2 != nil {
		base.DisableStrategy2 = *o.DisableStrategy2
	}
	if o.MaxExpansions != nil {
		base.MaxExpansions = *o.MaxExpansions
	}
	return base
}

// RouteFromKor lifts an engine route onto the wire, resolving display names
// through g. Names are attached only when every visited node has one, so
// the two slices always index-align.
func RouteFromKor(g *kor.Graph, r kor.Route) Route {
	out := Route{
		Nodes:     make([]int64, len(r.Nodes)),
		Objective: r.Objective,
		Budget:    r.Budget,
		Feasible:  r.Feasible,
	}
	names := make([]string, len(r.Nodes))
	named := true
	for i, v := range r.Nodes {
		out.Nodes[i] = int64(v)
		names[i] = g.Name(v)
		named = named && names[i] != ""
	}
	if named && len(names) > 0 {
		out.Names = names
	}
	return out
}

// ResponseFromKor lifts an engine response onto the wire. Metrics are
// attached only when withMetrics is set — they are sizeable and most
// clients only want routes.
func ResponseFromKor(g *kor.Graph, resp kor.Response, withMetrics bool) Response {
	out := Response{
		Algorithm: string(resp.Algorithm),
		Bound:     resp.Bound,
		Routes:    make([]Route, len(resp.Routes)),
		ElapsedMS: float64(resp.Elapsed.Microseconds()) / 1e3,
		Cached:    resp.Cached,
		Coalesced: resp.Coalesced,
	}
	for i, r := range resp.Routes {
		out.Routes[i] = RouteFromKor(g, r)
	}
	if withMetrics {
		m := MetricsFromKor(resp.Metrics)
		out.Metrics = &m
	}
	if resp.Snapshot.Generation != 0 {
		snap := SnapshotFromKor(resp.Snapshot)
		out.Snapshot = &snap
	}
	return out
}

// MetricsFromKor copies the work counters onto their wire spellings.
func MetricsFromKor(m kor.Metrics) Metrics {
	return Metrics{
		LabelsCreated:   m.LabelsCreated,
		LabelsEnqueued:  m.LabelsEnqueued,
		LabelsDequeued:  m.LabelsDequeued,
		PrunedBudget:    m.PrunedBudget,
		PrunedBound:     m.PrunedBound,
		PrunedStrategy2: m.PrunedStrategy2,
		Dominated:       m.Dominated,
		DominatedSwept:  m.DominatedSwept,
		ShortcutLabels:  m.ShortcutLabels,
		Feasible:        m.Feasible,
		PeakQueue:       m.PeakQueue,
		PlanSweeps:      m.PlanSweeps,
	}
}

// CacheStatsFromKor copies the engine's cache counters onto the wire.
func CacheStatsFromKor(st kor.CacheStats) CacheStats {
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Coalesced: st.Coalesced,
		Size:      st.Size,
		Capacity:  st.Capacity,
	}
}

// KorDelta lowers the wire delta onto the engine's Delta, range-checking
// node IDs the same way KorRequest does.
func (d Delta) KorDelta() (kor.Delta, error) {
	node := func(what string, id int64) (kor.NodeID, error) {
		if id < math.MinInt32 || id > math.MaxInt32 {
			return 0, fmt.Errorf("%w: %s node id %d out of range", kor.ErrBadDelta, what, id)
		}
		return kor.NodeID(id), nil
	}
	var out kor.Delta
	for _, kp := range d.AddKeywords {
		v, err := node("add_keywords", kp.Node)
		if err != nil {
			return kor.Delta{}, err
		}
		out.AddKeywords = append(out.AddKeywords, kor.KeywordPatch{Node: v, Keywords: kp.Keywords})
	}
	for _, kp := range d.RemoveKeywords {
		v, err := node("remove_keywords", kp.Node)
		if err != nil {
			return kor.Delta{}, err
		}
		out.RemoveKeywords = append(out.RemoveKeywords, kor.KeywordPatch{Node: v, Keywords: kp.Keywords})
	}
	edge := func(what string, de DeltaEdge) (kor.EdgePatch, error) {
		from, err := node(what, de.From)
		if err != nil {
			return kor.EdgePatch{}, err
		}
		to, err := node(what, de.To)
		if err != nil {
			return kor.EdgePatch{}, err
		}
		return kor.EdgePatch{From: from, To: to, Objective: de.Objective, Budget: de.Budget}, nil
	}
	for _, de := range d.UpdateEdges {
		ep, err := edge("update_edges", de)
		if err != nil {
			return kor.Delta{}, err
		}
		out.UpdateEdges = append(out.UpdateEdges, ep)
	}
	for _, de := range d.AddEdges {
		ep, err := edge("add_edges", de)
		if err != nil {
			return kor.Delta{}, err
		}
		out.AddEdges = append(out.AddEdges, ep)
	}
	for _, de := range d.RemoveEdges {
		ep, err := edge("remove_edges", de)
		if err != nil {
			return kor.Delta{}, err
		}
		out.RemoveEdges = append(out.RemoveEdges, kor.EdgeRef{From: ep.From, To: ep.To})
	}
	return out, nil
}

// SnapshotFromKor lifts a snapshot identity onto the wire: hex fingerprint,
// RFC 3339 UTC timestamp.
func SnapshotFromKor(info kor.SnapshotInfo) Snapshot {
	return Snapshot{
		Fingerprint: fmt.Sprintf("%016x", info.Fingerprint),
		Generation:  info.Generation,
		LoadedAt:    info.LoadedAt.UTC().Format(time.RFC3339Nano),
	}
}

// WarningFrom classifies a non-fatal engine error into the warning attached
// to an otherwise successful response. It returns non-nil exactly when
// ErrorFrom returns nil for a non-nil error: today that is the greedy
// budget overshoot, whose routes are returned with Feasible=false.
func WarningFrom(err error) *Error {
	if err != nil && errors.Is(err, kor.ErrBudgetExceeded) {
		return &Error{Code: CodeBudgetExceeded, Message: err.Error()}
	}
	return nil
}

// ErrorFrom classifies an engine error into its wire Error. It returns nil
// for outcomes that still carry a usable response: a nil error, and the
// greedy budget-overshoot (the violating routes are returned for
// inspection with a Warning attached, matching the engine's behaviour).
func ErrorFrom(err error) *Error {
	switch {
	case err == nil, errors.Is(err, kor.ErrBudgetExceeded):
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadline, Message: "search deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: "search canceled"}
	case errors.Is(err, kor.ErrNoRoute):
		return &Error{Code: CodeNoRoute, Message: err.Error()}
	case errors.Is(err, kor.ErrUnknownKeyword):
		return &Error{Code: CodeUnknownKeyword, Message: err.Error()}
	case errors.Is(err, kor.ErrSearchLimit):
		return &Error{Code: CodeSearchLimit, Message: err.Error()}
	case errors.Is(err, kor.ErrUnknownAlgorithm):
		return &Error{Code: CodeUnknownAlgorithm, Message: err.Error()}
	case errors.Is(err, kor.ErrBadQuery), errors.Is(err, kor.ErrBadDelta), errors.Is(err, kor.ErrStaticIndex):
		return &Error{Code: CodeBadRequest, Message: err.Error()}
	default:
		return &Error{Code: CodeInternal, Message: err.Error()}
	}
}
