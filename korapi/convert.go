package korapi

import (
	"context"
	"errors"
	"fmt"
	"math"

	"kor"
)

// KorRequest lowers the wire request onto the engine's Request. Node IDs
// outside kor.NodeID's range fail here — truncating them would silently
// address the wrong node. The remaining validation happens in Engine.Run,
// so a malformed wire request fails there with ErrBadQuery.
func (r Request) KorRequest() (kor.Request, error) {
	for _, ep := range []struct {
		name string
		id   int64
	}{{"from", r.From}, {"to", r.To}} {
		if ep.id < math.MinInt32 || ep.id > math.MaxInt32 {
			return kor.Request{}, fmt.Errorf("%w: %s node id %d out of range", kor.ErrBadQuery, ep.name, ep.id)
		}
	}
	req := kor.Request{
		From:      kor.NodeID(r.From),
		To:        kor.NodeID(r.To),
		Keywords:  r.Keywords,
		Budget:    r.BudgetLimit(),
		Algorithm: kor.Algorithm(r.Algorithm),
		K:         r.K,
	}
	if r.Options != nil {
		opts := r.Options.Apply(kor.DefaultOptions())
		req.Options = &opts
	}
	return req, nil
}

// Apply overlays the present wire options onto base and returns the result.
func (o *Options) Apply(base kor.Options) kor.Options {
	if o == nil {
		return base
	}
	if o.Epsilon != nil {
		base.Epsilon = *o.Epsilon
	}
	if o.Beta != nil {
		base.Beta = *o.Beta
	}
	if o.Alpha != nil {
		base.Alpha = *o.Alpha
	}
	if o.Width != nil {
		base.Width = *o.Width
	}
	if o.BudgetPriority != nil {
		base.BudgetPriority = *o.BudgetPriority
	}
	if o.DisableStrategy1 != nil {
		base.DisableStrategy1 = *o.DisableStrategy1
	}
	if o.DisableStrategy2 != nil {
		base.DisableStrategy2 = *o.DisableStrategy2
	}
	if o.MaxExpansions != nil {
		base.MaxExpansions = *o.MaxExpansions
	}
	return base
}

// RouteFromKor lifts an engine route onto the wire, resolving display names
// through g. Names are attached only when every visited node has one, so
// the two slices always index-align.
func RouteFromKor(g *kor.Graph, r kor.Route) Route {
	out := Route{
		Nodes:     make([]int64, len(r.Nodes)),
		Objective: r.Objective,
		Budget:    r.Budget,
		Feasible:  r.Feasible,
	}
	names := make([]string, len(r.Nodes))
	named := true
	for i, v := range r.Nodes {
		out.Nodes[i] = int64(v)
		names[i] = g.Name(v)
		named = named && names[i] != ""
	}
	if named && len(names) > 0 {
		out.Names = names
	}
	return out
}

// ResponseFromKor lifts an engine response onto the wire. Metrics are
// attached only when withMetrics is set — they are sizeable and most
// clients only want routes.
func ResponseFromKor(g *kor.Graph, resp kor.Response, withMetrics bool) Response {
	out := Response{
		Algorithm: string(resp.Algorithm),
		Bound:     resp.Bound,
		Routes:    make([]Route, len(resp.Routes)),
		ElapsedMS: float64(resp.Elapsed.Microseconds()) / 1e3,
		Cached:    resp.Cached,
	}
	for i, r := range resp.Routes {
		out.Routes[i] = RouteFromKor(g, r)
	}
	if withMetrics {
		m := MetricsFromKor(resp.Metrics)
		out.Metrics = &m
	}
	return out
}

// MetricsFromKor copies the work counters onto their wire spellings.
func MetricsFromKor(m kor.Metrics) Metrics {
	return Metrics{
		LabelsCreated:   m.LabelsCreated,
		LabelsEnqueued:  m.LabelsEnqueued,
		LabelsDequeued:  m.LabelsDequeued,
		PrunedBudget:    m.PrunedBudget,
		PrunedBound:     m.PrunedBound,
		PrunedStrategy2: m.PrunedStrategy2,
		Dominated:       m.Dominated,
		DominatedSwept:  m.DominatedSwept,
		ShortcutLabels:  m.ShortcutLabels,
		Feasible:        m.Feasible,
		PeakQueue:       m.PeakQueue,
		PlanSweeps:      m.PlanSweeps,
	}
}

// CacheStatsFromKor copies the engine's cache counters onto the wire.
func CacheStatsFromKor(st kor.CacheStats) CacheStats {
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Size:      st.Size,
		Capacity:  st.Capacity,
	}
}

// ErrorFrom classifies an engine error into its wire Error. It returns nil
// for outcomes that still carry a usable response: a nil error, and the
// greedy budget-overshoot (the violating routes are returned for
// inspection, matching the engine's behaviour).
func ErrorFrom(err error) *Error {
	switch {
	case err == nil, errors.Is(err, kor.ErrBudgetExceeded):
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadline, Message: "search deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: "search canceled"}
	case errors.Is(err, kor.ErrNoRoute):
		return &Error{Code: CodeNoRoute, Message: err.Error()}
	case errors.Is(err, kor.ErrUnknownKeyword):
		return &Error{Code: CodeUnknownKeyword, Message: err.Error()}
	case errors.Is(err, kor.ErrSearchLimit):
		return &Error{Code: CodeSearchLimit, Message: err.Error()}
	case errors.Is(err, kor.ErrUnknownAlgorithm):
		return &Error{Code: CodeUnknownAlgorithm, Message: err.Error()}
	case errors.Is(err, kor.ErrBadQuery):
		return &Error{Code: CodeBadRequest, Message: err.Error()}
	default:
		return &Error{Code: CodeInternal, Message: err.Error()}
	}
}
