package korapi

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
)

// WriteJSON emits v as the JSON response body. Encoding failures are logged,
// not surfaced: by the time Encode writes, the status line is already gone.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("korapi: encoding response: %v", err)
	}
}

// WriteError emits the error envelope with the code's HTTP status. Both
// korserve and korrouter answer through this one function, so every server
// in a cluster sheds with byte-identical envelopes. CodeCanceled gets its
// 499 like any other code: the original client has usually gone, but
// returning without writing would make net/http emit an implicit 200 with an
// empty body — and a proxy-initiated cancel, or a canceled batch
// sub-context, leaves a very-much-alive reader that must not mistake an
// aborted search for an empty success.
func WriteError(w http.ResponseWriter, apiErr *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(apiErr.Code.HTTPStatus())
	if err := json.NewEncoder(w).Encode(ErrorEnvelope{Error: *apiErr}); err != nil {
		log.Printf("korapi: encoding error response: %v", err)
	}
}

// StatusLabel maps an HTTP status code onto the closed label set the
// servers' request counters use: the exact statuses the korapi error
// taxonomy can emit (see ErrorCode.HTTPStatus) plus 200, with everything
// else collapsed into its class bucket ("2xx", "4xx", ...). Handlers must
// never label with strconv.Itoa(status): a misbehaving proxy or a future
// handler writing ad-hoc statuses would mint unbounded time series.
//
// korvet:labels — every return below is a literal from the closed set.
func StatusLabel(status int) string {
	switch status {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 422:
		return "422"
	case 429:
		return "429"
	case 499:
		return "499"
	case 500:
		return "500"
	case 503:
		return "503"
	case 504:
		return "504"
	}
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	case status >= 500 && status < 600:
		return "5xx"
	}
	return "other"
}

// WriteErrorRetry is WriteError plus a Retry-After hint, for the shedding
// codes (overloaded, unavailable) whose contract promises the header.
func WriteErrorRetry(w http.ResponseWriter, apiErr *Error, retryAfterSeconds int) {
	if retryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	WriteError(w, apiErr)
}
