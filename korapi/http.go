package korapi

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
)

// WriteJSON emits v as the JSON response body. Encoding failures are logged,
// not surfaced: by the time Encode writes, the status line is already gone.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("korapi: encoding response: %v", err)
	}
}

// WriteError emits the error envelope with the code's HTTP status. Both
// korserve and korrouter answer through this one function, so every server
// in a cluster sheds with byte-identical envelopes. CodeCanceled gets its
// 499 like any other code: the original client has usually gone, but
// returning without writing would make net/http emit an implicit 200 with an
// empty body — and a proxy-initiated cancel, or a canceled batch
// sub-context, leaves a very-much-alive reader that must not mistake an
// aborted search for an empty success.
func WriteError(w http.ResponseWriter, apiErr *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(apiErr.Code.HTTPStatus())
	if err := json.NewEncoder(w).Encode(ErrorEnvelope{Error: *apiErr}); err != nil {
		log.Printf("korapi: encoding error response: %v", err)
	}
}

// WriteErrorRetry is WriteError plus a Retry-After hint, for the shedding
// codes (overloaded, unavailable) whose contract promises the header.
func WriteErrorRetry(w http.ResponseWriter, apiErr *Error, retryAfterSeconds int) {
	if retryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	WriteError(w, apiErr)
}
