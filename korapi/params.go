package korapi

import (
	"fmt"
	"strconv"
	"strings"
)

// RequestFromParams decodes a Request from URL query parameters — the GET
// /v1/route spelling of the wire contract, shared by korserve and korrouter
// so both ends of a cluster parse identically. Every malformed value is a
// hard bad_request error; nothing is silently dropped.
func RequestFromParams(qv map[string][]string) (Request, *Error) {
	get := func(key string) string {
		if vs := qv[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	badParam := func(key, val string) *Error {
		return &Error{
			Code:    CodeBadRequest,
			Message: fmt.Sprintf("malformed parameter %s=%q", key, val),
		}
	}

	var req Request
	for _, key := range []string{"from", "to"} {
		v := get(key)
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, badParam(key, v)
		}
		if key == "from" {
			req.From = n
		} else {
			req.To = n
		}
	}

	budgetKey := "budget"
	if get(budgetKey) == "" && get("delta") != "" {
		budgetKey = "delta" // deprecated alias
	}
	budget, err := strconv.ParseFloat(get(budgetKey), 64)
	if err != nil {
		return req, badParam(budgetKey, get(budgetKey))
	}
	req.Budget = budget

	for _, kw := range strings.Split(get("keywords"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			req.Keywords = append(req.Keywords, kw)
		}
	}
	if len(req.Keywords) == 0 {
		return req, &Error{Code: CodeBadRequest, Message: "at least one keyword is required"}
	}

	req.Algorithm = get("algorithm")
	if req.Algorithm == "" {
		req.Algorithm = get("algo") // deprecated alias
	}
	if v := get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return req, badParam("k", v)
		}
		req.K = k
	}
	if v := get("metrics"); v != "" {
		m, err := strconv.ParseBool(v)
		if err != nil {
			return req, badParam("metrics", v)
		}
		req.Metrics = m
	}

	// Flat tuning overrides. Out-of-domain values pass through here and are
	// rejected by Options.Validate inside Engine.Run.
	var opts Options
	any := false
	for _, p := range []struct {
		key string
		dst **float64
	}{
		{"epsilon", &opts.Epsilon}, {"beta", &opts.Beta}, {"alpha", &opts.Alpha},
	} {
		if v := get(p.key); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return req, badParam(p.key, v)
			}
			*p.dst = &f
			any = true
		}
	}
	if v := get("width"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, badParam("width", v)
		}
		opts.Width = &n
		any = true
	}
	if any {
		req.Options = &opts
	}
	return req, nil
}
