package korapi

import (
	"net/url"
	"testing"
)

// FuzzKorapiParams feeds arbitrary raw query strings through the same
// url.ParseQuery → RequestFromParams pipeline the servers run. The decoder
// must never panic, and every rejection must be a well-formed bad_request
// envelope: a stable code, a non-empty message, and a 4xx status — attacker
// input must not be able to surface as a 5xx.
func FuzzKorapiParams(f *testing.F) {
	f.Add("from=0&to=4&budget=10&keywords=cafe")
	f.Add("from=0&to=4&budget=10&keywords=cafe,museum&algorithm=osscaling&k=3&metrics=true")
	f.Add("from=0&to=4&delta=10&keywords=cafe&algo=greedy")
	f.Add("from=x&to=4&budget=10&keywords=cafe")
	f.Add("from=0&to=4&budget=nan&keywords=")
	f.Add("keywords=,,,")
	f.Add("from=0&to=4&budget=10&keywords=cafe&k=9999999999999999999")
	f.Add("%gh&%ij")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		qv, err := url.ParseQuery(raw)
		if err != nil {
			return // not decodable as a query string; the mux rejects earlier
		}
		req, apiErr := RequestFromParams(qv)
		if apiErr == nil {
			// Accepted requests must satisfy the decoder's own postconditions.
			if len(req.Keywords) == 0 {
				t.Fatalf("accepted request without keywords: %q", raw)
			}
			for _, kw := range req.Keywords {
				if kw == "" {
					t.Fatalf("accepted request with empty keyword: %q", raw)
				}
			}
			return
		}
		if apiErr.Code != CodeBadRequest {
			t.Fatalf("rejection of %q carries code %q, want %q", raw, apiErr.Code, CodeBadRequest)
		}
		if apiErr.Message == "" {
			t.Fatalf("rejection of %q has an empty message", raw)
		}
		if s := apiErr.Code.HTTPStatus(); s < 400 || s >= 500 {
			t.Fatalf("rejection of %q maps to HTTP %d; malformed input must stay 4xx", raw, s)
		}
	})
}
