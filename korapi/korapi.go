// Package korapi defines the JSON wire types of the kor HTTP API: the
// request and response bodies the versioned /v1 endpoints of korserve speak,
// and the error envelope with machine-readable error codes. Any client — or
// an alternative server — can depend on this package alone for the wire
// contract; the conversions to and from the in-process kor types live in
// convert.go.
//
// Wire stability: field names are part of the public contract. New fields
// may be added (always with omitempty); existing names and meanings do not
// change within /v1.
package korapi

import "fmt"

// Request is the wire form of one KOR query, accepted by POST /v1/route and
// inside /v1/batch bodies. GET /v1/route encodes the same fields as URL
// parameters (from, to, keywords, budget, algorithm, k, plus the flat
// option parameters epsilon/beta/alpha/width).
type Request struct {
	// From and To are the route endpoint node IDs; equal for a round trip.
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Keywords are the keyword strings the route must cover.
	Keywords []string `json:"keywords"`
	// Budget is the budget limit Δ.
	Budget float64 `json:"budget,omitempty"`
	// Delta is the deprecated alias for Budget kept for pre-/v1 clients;
	// when Budget is zero, Delta is used instead.
	Delta float64 `json:"delta,omitempty"`
	// Algorithm selects the search algorithm: "bucketbound" (default),
	// "osscaling", "greedy", "topk", "exact" or "bruteforce".
	Algorithm string `json:"algorithm,omitempty"`
	// K, when positive, asks for the K best distinct routes.
	K int `json:"k,omitempty"`
	// Metrics asks the server to attach the search work counters to the
	// response.
	Metrics bool `json:"metrics,omitempty"`
	// Options overrides individual tuning parameters; absent fields keep
	// the server defaults.
	Options *Options `json:"options,omitempty"`
}

// BudgetLimit resolves the budget between the canonical and legacy fields.
func (r Request) BudgetLimit() float64 {
	if r.Budget != 0 {
		return r.Budget
	}
	return r.Delta
}

// Options is the wire form of the tuning parameters. Every field is a
// pointer so "absent" (keep the default) is distinguishable from an explicit
// zero; out-of-domain values are rejected server-side with a bad_request
// error rather than silently corrected.
type Options struct {
	// Epsilon is the scaling parameter ε ∈ (0,1).
	Epsilon *float64 `json:"epsilon,omitempty"`
	// Beta is BucketBound's bucket base β > 1.
	Beta *float64 `json:"beta,omitempty"`
	// Alpha balances objective against budget in the greedy score, ∈ [0,1].
	Alpha *float64 `json:"alpha,omitempty"`
	// Width is the greedy beam width (≥ 1).
	Width *int `json:"width,omitempty"`
	// BudgetPriority switches Greedy to the budget-first variant.
	BudgetPriority *bool `json:"budget_priority,omitempty"`
	// DisableStrategy1 turns off the σ-shortcut optimization.
	DisableStrategy1 *bool `json:"disable_strategy1,omitempty"`
	// DisableStrategy2 turns off infrequent-keyword pruning.
	DisableStrategy2 *bool `json:"disable_strategy2,omitempty"`
	// MaxExpansions caps label creations.
	MaxExpansions *int `json:"max_expansions,omitempty"`
}

// Route is the wire form of one found route.
type Route struct {
	// Nodes is the node-ID sequence, source first, target last.
	Nodes []int64 `json:"nodes"`
	// Names carries the node display names, index-aligned with Nodes; it is
	// present only when every visited node has a name.
	Names []string `json:"names,omitempty"`
	// Objective is the route's objective score OS(R).
	Objective float64 `json:"objective"`
	// Budget is the route's budget score BS(R).
	Budget float64 `json:"budget"`
	// Feasible reports full keyword coverage within the budget limit.
	Feasible bool `json:"feasible"`
}

// Metrics is the wire form of the search work counters.
type Metrics struct {
	LabelsCreated   int `json:"labels_created"`
	LabelsEnqueued  int `json:"labels_enqueued"`
	LabelsDequeued  int `json:"labels_dequeued"`
	PrunedBudget    int `json:"pruned_budget"`
	PrunedBound     int `json:"pruned_bound"`
	PrunedStrategy2 int `json:"pruned_strategy2"`
	Dominated       int `json:"dominated"`
	DominatedSwept  int `json:"dominated_swept"`
	ShortcutLabels  int `json:"shortcut_labels"`
	Feasible        int `json:"feasible"`
	PeakQueue       int `json:"peak_queue"`
	// PlanSweeps counts the query-owned oracle sweeps: Δ-bounded
	// candidate-subgraph lookups and route reconstruction.
	PlanSweeps int `json:"plan_sweeps,omitempty"`
}

// Response is the wire form of a successful route search.
type Response struct {
	// Algorithm is the canonical name of the algorithm that ran.
	Algorithm string `json:"algorithm"`
	// Bound is the approximation factor guaranteed on the objective score:
	// 1 exact, 0 no guarantee.
	Bound float64 `json:"bound,omitempty"`
	// Routes holds the routes found, best objective first.
	Routes []Route `json:"routes"`
	// Metrics are the search work counters, when requested.
	Metrics *Metrics `json:"metrics,omitempty"`
	// ElapsedMS is the server-side search wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Cached reports that the response came from the server's result cache
	// without running a search.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that the response was shared from an identical
	// request's search — a concurrent in-flight twin or a duplicate in the
	// same batch — without running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Warning reports a non-fatal condition on an otherwise successful
	// response: the routes are present and usable, but the caller should
	// inspect the code. Currently emitted for budget_exceeded — a greedy
	// route that covers the keywords but overshoots Δ (its Feasible flag is
	// false).
	Warning *Error `json:"warning,omitempty"`
	// Snapshot identifies the graph snapshot the response was computed on.
	// Cluster routers use it as the replica consistency check: a response
	// whose fingerprint diverges from the shard's expected fingerprint marks
	// the replica for quarantine.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Requests are the queries to answer; each is self-describing, so one
	// batch can mix algorithms and options.
	Requests []Request `json:"requests,omitempty"`
	// Queries is the deprecated pre-/v1 alias for Requests.
	Queries []Request `json:"queries,omitempty"`
	// Parallelism bounds the worker pool; 0 or out-of-range values fall
	// back to the server's cap.
	Parallelism int `json:"parallelism,omitempty"`
}

// All resolves the request list between the canonical and legacy fields.
func (b BatchRequest) All() []Request {
	if len(b.Requests) > 0 {
		return b.Requests
	}
	return b.Queries
}

// BatchResult is one request's outcome inside a BatchResponse: exactly one
// of Response and Error is set.
type BatchResult struct {
	Response *Response `json:"response,omitempty"`
	Error    *Error    `json:"error,omitempty"`
}

// BatchResponse is the body answering POST /v1/batch. Per-request failures
// come back inline, so one infeasible query does not fail the batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	// Incomplete is set when the batch was cut short (deadline or client
	// disconnect): every result slot is still present, the cut-off ones
	// carrying errors.
	Incomplete bool `json:"incomplete,omitempty"`
}

// Node is the body of GET /v1/nodes/{id}.
type Node struct {
	ID       int64    `json:"id"`
	Name     string   `json:"name,omitempty"`
	Keywords []string `json:"keywords"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Degree   int      `json:"degree"`
}

// Keyword is one autocomplete suggestion in GET /v1/keywords.
type Keyword struct {
	Keyword string `json:"keyword"`
	Nodes   int    `json:"nodes"`
}

// KeywordsResponse is the body of GET /v1/keywords.
type KeywordsResponse struct {
	Keywords []Keyword `json:"keywords"`
}

// Stats is the body of GET /v1/stats: the graph summary plus, when the
// server runs with a result cache, the cache counters.
type Stats struct {
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Terms        int     `json:"terms"`
	AvgOutDegree float64 `json:"avg_out_degree"`
	MaxOutDegree int     `json:"max_out_degree"`
	AvgTerms     float64 `json:"avg_terms"`
	MinObjective float64 `json:"min_objective"`
	MaxObjective float64 `json:"max_objective"`
	MinBudget    float64 `json:"min_budget"`
	MaxBudget    float64 `json:"max_budget"`
	Isolated     int     `json:"isolated"`
	// Cache is present only when the engine's result cache is enabled.
	Cache *CacheStats `json:"cache,omitempty"`
	// Snapshot identifies the graph snapshot currently serving queries; it
	// changes on every /v1/admin/patch or /v1/admin/reload.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Oracle reports which τ/σ distance oracle is serving queries.
	Oracle *OracleInfo `json:"oracle,omitempty"`
	// Role is the serving role the process was started with: "standalone"
	// (the default, omitted), or "replica" for a shard backend behind a
	// korrouter.
	Role string `json:"role,omitempty"`
	// Shard names the shard a replica serves, as assigned by kordata -shard.
	Shard string `json:"shard,omitempty"`
	// Cluster is present only on korrouter: the shard/replica topology and
	// its health, quarantine and fingerprint state.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the cluster block inside a korrouter's /v1/stats.
type ClusterStats struct {
	// Shards is the per-shard replica state, shard ID ascending.
	Shards []ShardStats `json:"shards"`
	// Replicas counts all configured replicas across shards.
	Replicas int `json:"replicas"`
	// Healthy counts replicas that are reachable and in the scatter set.
	Healthy int `json:"healthy"`
	// Quarantined counts replicas shed from the scatter set because their
	// snapshot fingerprint diverged from the shard's expected fingerprint.
	Quarantined int `json:"quarantined"`
}

// ShardStats is one shard's replica state inside ClusterStats.
type ShardStats struct {
	// Shard is the shard ID from the shard map.
	Shard int `json:"shard"`
	// ExpectedFingerprint is the snapshot fingerprint the router currently
	// expects every replica of this shard to serve.
	ExpectedFingerprint string `json:"expected_fingerprint,omitempty"`
	// Replicas is the per-replica state, configuration order.
	Replicas []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica's state inside ShardStats.
type ReplicaStats struct {
	// URL is the replica's base URL.
	URL string `json:"url"`
	// Healthy reports the last probe or request reached the replica.
	Healthy bool `json:"healthy"`
	// Quarantined reports the replica is shed from the scatter set because
	// its fingerprint diverged from the shard's expected fingerprint.
	Quarantined bool `json:"quarantined,omitempty"`
	// Fingerprint is the replica's last observed snapshot fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Generation is the replica's last observed snapshot generation.
	Generation uint64 `json:"generation,omitempty"`
	// LastError is the most recent transport or probe failure, cleared on
	// the next success.
	LastError string `json:"last_error,omitempty"`
}

// ClusterAdminResponse answers korrouter's POST /v1/admin/patch: the
// per-replica outcome of replicating the delta across the cluster.
type ClusterAdminResponse struct {
	// Shards is the per-shard replication outcome, shard ID ascending.
	Shards []ShardAdmin `json:"shards"`
	// Quarantined counts replicas left quarantined after the patch.
	Quarantined int `json:"quarantined"`
}

// ShardAdmin is one shard's replication outcome inside ClusterAdminResponse.
type ShardAdmin struct {
	// Shard is the shard ID from the shard map.
	Shard int `json:"shard"`
	// ExpectedFingerprint is the post-patch consensus fingerprint.
	ExpectedFingerprint string `json:"expected_fingerprint,omitempty"`
	// Replicas is the per-replica outcome, configuration order.
	Replicas []ReplicaAdmin `json:"replicas"`
}

// ReplicaAdmin is one replica's patch outcome inside ShardAdmin: exactly one
// of Snapshot and Error is set.
type ReplicaAdmin struct {
	// URL is the replica's base URL.
	URL string `json:"url"`
	// Snapshot is the replica's post-patch snapshot on success.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Error is the replica's failure, transport or wire.
	Error *Error `json:"error,omitempty"`
	// Quarantined reports the replica diverged from the shard consensus and
	// is shed from the scatter set until it converges.
	Quarantined bool `json:"quarantined,omitempty"`
}

// OracleInfo is the wire form of the engine's oracle status inside
// /v1/stats.
type OracleInfo struct {
	// Kind is the active oracle implementation: "lazy", "matrix",
	// "partitioned" or "partitioned-disk".
	Kind string `json:"kind"`
	// Degraded is true when the server was started with a persistent
	// distance index (-dist-index) but the live graph no longer matches it —
	// after an admin patch or reload — so queries fall back to a lazy
	// oracle instead of serving stale distances.
	Degraded bool `json:"degraded,omitempty"`
	// IndexFingerprint is the graph fingerprint the persistent index was
	// built from, 16 lowercase hex digits; absent without one.
	IndexFingerprint string `json:"index_fingerprint,omitempty"`
	// IndexBytes is the persistent index file size.
	IndexBytes int64 `json:"index_bytes,omitempty"`
	// Mapped reports whether the index is served through an mmap rather
	// than a decoded in-heap copy.
	Mapped bool `json:"mapped,omitempty"`
	// LoadMillis is how long the index took to open at server start.
	LoadMillis float64 `json:"load_millis,omitempty"`
	// DegradedSince is when the oracle entered the degraded fallback, RFC
	// 3339 with nanoseconds, UTC; present only while Degraded is true. It
	// survives further patches, so it dates the start of the outage, not the
	// latest swap.
	DegradedSince string `json:"degraded_since,omitempty"`
}

// Snapshot is the wire form of one graph snapshot's identity, served inside
// /v1/stats and by the /v1/admin endpoints.
type Snapshot struct {
	// Fingerprint is the graph content digest as 16 lowercase hex digits.
	// Two snapshots with the same fingerprint answer queries identically.
	Fingerprint string `json:"fingerprint"`
	// Generation counts installed snapshots, starting at 1 for the graph
	// the server booted with.
	Generation uint64 `json:"generation"`
	// LoadedAt is when the snapshot was installed, RFC 3339 with
	// nanoseconds, UTC.
	LoadedAt string `json:"loaded_at"`
}

// Delta is the body of POST /v1/admin/patch: one batch of live graph
// updates, applied atomically. Phases apply in order: keyword patches, edge
// updates, edge removals, edge additions (so remove+add of the same pair
// replaces the edge). Keyword patches are idempotent set operations; edge
// updates and removals must address existing edges, and additions must not
// duplicate surviving ones.
type Delta struct {
	// AddKeywords unions keywords into node keyword sets; new keywords
	// extend the vocabulary.
	AddKeywords []DeltaKeywords `json:"add_keywords,omitempty"`
	// RemoveKeywords subtracts keywords from node keyword sets.
	RemoveKeywords []DeltaKeywords `json:"remove_keywords,omitempty"`
	// UpdateEdges sets the objective/budget attributes of existing edges.
	UpdateEdges []DeltaEdge `json:"update_edges,omitempty"`
	// AddEdges inserts new edges (positive finite attributes, no
	// self-loops).
	AddEdges []DeltaEdge `json:"add_edges,omitempty"`
	// RemoveEdges deletes edges; objective/budget are ignored.
	RemoveEdges []DeltaEdge `json:"remove_edges,omitempty"`
}

// Empty reports whether the delta contains no changes.
func (d Delta) Empty() bool {
	return len(d.AddKeywords) == 0 && len(d.RemoveKeywords) == 0 &&
		len(d.UpdateEdges) == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// DeltaKeywords names a node and the keywords to add or remove.
type DeltaKeywords struct {
	Node     int64    `json:"node"`
	Keywords []string `json:"keywords"`
}

// DeltaEdge addresses the directed edge From→To; Objective and Budget carry
// the new attributes for updates and additions.
type DeltaEdge struct {
	From      int64   `json:"from"`
	To        int64   `json:"to"`
	Objective float64 `json:"objective,omitempty"`
	Budget    float64 `json:"budget,omitempty"`
}

// AdminResponse answers the /v1/admin endpoints: the snapshot that is now
// serving queries and its graph size.
type AdminResponse struct {
	Snapshot Snapshot `json:"snapshot"`
	Nodes    int      `json:"nodes"`
	Edges    int      `json:"edges"`
}

// CacheStats is the result-cache block inside Stats. Coalesced counts
// requests answered by sharing an identical in-flight request's search
// (single-flight followers and batch duplicates); those are not Misses.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced,omitempty"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// ErrorCode is a machine-readable error class. Clients switch on the code,
// never on the message text.
type ErrorCode string

// The error codes the /v1 surface emits.
const (
	// CodeBadRequest — malformed parameters, body, or out-of-domain
	// options. HTTP 400.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnknownKeyword — a query keyword absent from the graph's
	// vocabulary. HTTP 400.
	CodeUnknownKeyword ErrorCode = "unknown_keyword"
	// CodeUnknownAlgorithm — the algorithm name is not registered. HTTP 400.
	CodeUnknownAlgorithm ErrorCode = "unknown_algorithm"
	// CodeNotFound — the addressed resource (node, path) does not exist.
	// HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeNoRoute — no feasible route exists for the query. HTTP 404.
	CodeNoRoute ErrorCode = "no_route"
	// CodeDeadline — the search exceeded its deadline. HTTP 504.
	CodeDeadline ErrorCode = "deadline_exceeded"
	// CodeCanceled — the client went away mid-search. HTTP 499 (never
	// actually received).
	CodeCanceled ErrorCode = "canceled"
	// CodeSearchLimit — the expansion cap fired before the search
	// concluded. HTTP 422.
	CodeSearchLimit ErrorCode = "search_limit"
	// CodeOverloaded — the server's admission controller rejected the
	// request because the in-flight limit and its wait queue are full. The
	// response carries a Retry-After header; back off and retry. HTTP 429.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeUnavailable — no backend could answer: every shard replica the
	// query needed was unreachable, quarantined, or failed. The response
	// carries a Retry-After header; back off and retry. HTTP 503.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal — an unexpected server-side failure. HTTP 500.
	CodeInternal ErrorCode = "internal"
	// CodeBudgetExceeded — a greedy route covers the keywords but
	// overshoots Δ. Appears only as Response.Warning on a 200, never as an
	// error envelope: the routes are still returned.
	CodeBudgetExceeded ErrorCode = "budget_exceeded"
)

// HTTPStatus maps the code onto its HTTP status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest, CodeUnknownKeyword, CodeUnknownAlgorithm:
		return 400
	case CodeNotFound, CodeNoRoute:
		return 404
	case CodeSearchLimit:
		return 422
	case CodeOverloaded:
		return 429
	case CodeCanceled:
		return 499
	case CodeInternal:
		return 500
	case CodeUnavailable:
		return 503
	case CodeDeadline:
		return 504
	default:
		return 500
	}
}

// Error is the wire error: a stable code plus a human-readable message.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface so wire errors can travel through
// error-returning client code.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// ErrorEnvelope is the body of every non-2xx response:
//
//	{"error": {"code": "no_route", "message": "no feasible route exists"}}
type ErrorEnvelope struct {
	Error Error `json:"error"`
}
