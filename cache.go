package kor

import (
	"encoding/binary"
	"math"

	"kor/internal/core"
)

// Response caching internals. The cache key is the request's canonical
// form: the resolved core query (terms, not strings, so spelling aliases of
// the same term sequence share an entry), the canonical algorithm, every
// option that can influence the result, and the snapshot's graph
// fingerprint. Anything that cannot be canonicalized — a Tracer, which
// observes side effects — makes the request uncacheable.
//
// Invalidation: each Graph snapshot is immutable, and the fingerprint in
// every key ties an entry to the exact graph content that produced it —
// same fingerprint, same answers — so an entry can never be served for a
// different graph version even while old and new snapshots briefly coexist
// during a Swap or Patch. On top of that correctness guarantee the engine
// clears the cache on every swap (see Engine.installLocked): the old
// snapshot's entries are unreachable once the fingerprint changes and would
// otherwise squat LRU capacity until natural eviction.

// cacheable reports whether the request's options allow caching.
func cacheable(opts Options) bool { return opts.Tracer == nil }

// cachedResponse is one cache entry: the response plus the definitive
// outcome. err is nil for a found route, an ErrNoRoute-matching error when
// the search proved no feasible route exists, or ErrBudgetExceeded for a
// greedy overshoot (routes present) — all exactly as expensive and as
// deterministic to recompute as a clean answer. Context errors and other
// non-definitive failures are never stored.
type cachedResponse struct {
	resp Response
	err  error
}

// cacheKey builds the canonical key. Purely binary — no separators needed
// because every field has fixed width except the term list, whose length is
// encoded.
func cacheKey(fp uint64, algo Algorithm, q core.Query, opts Options) string {
	b := make([]byte, 0, 96+8*len(q.Keywords))
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}

	u64(fp)
	b = append(b, string(algo.Canonical())...)
	b = append(b, 0)
	u64(uint64(uint32(q.Source)))
	u64(uint64(uint32(q.Target)))
	f64(q.Budget)
	u64(uint64(len(q.Keywords)))
	for _, t := range q.Keywords {
		u64(uint64(uint32(t)))
	}
	f64(opts.Epsilon)
	f64(opts.Beta)
	f64(opts.Alpha)
	f64(opts.InfrequentFraction)
	u64(uint64(opts.Width))
	u64(uint64(opts.K))
	u64(uint64(opts.Strategy1Candidates))
	u64(uint64(opts.MaxExpansions))
	flag(opts.DisableStrategy1)
	flag(opts.DisableStrategy2)
	flag(opts.BudgetPriority)
	return string(b)
}

// batchKey canonicalizes a Request for in-batch dedup — the same fields as
// cacheKey but batch-local: no fingerprint (every request in a batch resolves
// against the snapshot it is run on) and keyword strings instead of resolved
// terms (so two spellings of the same term set conservatively stay distinct;
// resolution happens inside Run). ok is false for requests that must not be
// deduped: a Tracer observes per-request side effects, and an unparseable
// algorithm should fail per-request rather than share an error.
func batchKey(req Request) (string, bool) {
	algo, err := core.ParseAlgorithm(string(req.Algorithm))
	if err != nil {
		return "", false
	}
	opts := DefaultOptions()
	if req.Options != nil {
		opts = *req.Options
	}
	if req.K != 0 {
		opts.K = req.K
	}
	if !cacheable(opts) {
		return "", false
	}
	b := make([]byte, 0, 128)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}

	b = append(b, string(algo.Canonical())...)
	b = append(b, 0)
	u64(uint64(uint32(req.From)))
	u64(uint64(uint32(req.To)))
	f64(req.Budget)
	u64(uint64(len(req.Keywords)))
	for _, kw := range req.Keywords {
		// Length-prefixed: keyword strings are arbitrary bytes.
		u64(uint64(len(kw)))
		b = append(b, kw...)
	}
	f64(opts.Epsilon)
	f64(opts.Beta)
	f64(opts.Alpha)
	f64(opts.InfrequentFraction)
	u64(uint64(opts.Width))
	u64(uint64(opts.K))
	u64(uint64(opts.Strategy1Candidates))
	u64(uint64(opts.MaxExpansions))
	flag(opts.DisableStrategy1)
	flag(opts.DisableStrategy2)
	flag(opts.BudgetPriority)
	return string(b), true
}

// cloneResponse deep-copies the route slices so cache entries and the
// responses handed to callers never share mutable memory: a caller
// scribbling on Response.Routes (or a route's Nodes) must not corrupt the
// cache, and two callers hitting the same entry must not see each other.
func cloneResponse(r Response) Response {
	out := r
	out.Routes = make([]Route, len(r.Routes))
	for i, rt := range r.Routes {
		out.Routes[i] = rt
		out.Routes[i].Nodes = append([]NodeID(nil), rt.Nodes...)
	}
	return out
}
