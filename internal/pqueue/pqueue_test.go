package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestPushPopOrdered(t *testing.T) {
	h := intHeap()
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		h.Push(v)
	}
	want := []int{1, 2, 3, 5, 8, 9}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !h.Empty() {
		t.Errorf("heap not empty after draining, len=%d", h.Len())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := intHeap()
	h.Push(4)
	h.Push(2)
	if h.Peek() != 2 {
		t.Fatalf("Peek = %d, want 2", h.Peek())
	}
	if h.Len() != 2 {
		t.Fatalf("Peek changed Len to %d", h.Len())
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.Push(7)
	}
	for i := 0; i < 10; i++ {
		if got := h.Pop(); got != 7 {
			t.Fatalf("pop = %d, want 7", got)
		}
	}
}

func TestReset(t *testing.T) {
	h := NewWithCapacity(16, func(a, b int) bool { return a < b })
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Reset()
	if !h.Empty() {
		t.Fatal("Reset left items behind")
	}
	h.Push(3)
	h.Push(1)
	if h.Pop() != 1 {
		t.Fatal("heap broken after Reset")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap did not panic")
		}
	}()
	intHeap().Pop()
}

// Property: popping everything yields a sorted permutation of the input.
func TestHeapSortProperty(t *testing.T) {
	f := func(vals []int) bool {
		h := intHeap()
		for _, v := range vals {
			h.Push(v)
		}
		out := make([]int, 0, len(vals))
		for !h.Empty() {
			out = append(out, h.Pop())
		}
		if len(out) != len(vals) {
			return false
		}
		if !sort.IntsAreSorted(out) {
			return false
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved push/pop maintains the min invariant at every step.
func TestInterleavedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := intHeap()
	var model []int
	for step := 0; step < 5000; step++ {
		if h.Len() == 0 || rng.Intn(3) != 0 {
			v := rng.Intn(1000)
			h.Push(v)
			model = append(model, v)
			sort.Ints(model)
		} else {
			got := h.Pop()
			want := model[0]
			model = model[1:]
			if got != want {
				t.Fatalf("step %d: Pop = %d, model says %d", step, got, want)
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, h.Len(), len(model))
		}
	}
}

func TestStructItems(t *testing.T) {
	type task struct {
		priority int
		name     string
	}
	h := New(func(a, b task) bool { return a.priority < b.priority })
	h.Push(task{3, "c"})
	h.Push(task{1, "a"})
	h.Push(task{2, "b"})
	if got := h.Pop().name; got != "a" {
		t.Fatalf("first pop = %q, want a", got)
	}
	if got := h.Pop().name; got != "b" {
		t.Fatalf("second pop = %q, want b", got)
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 1024)
	for i := range vals {
		vals[i] = rng.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewWithCapacity(len(vals), func(a, b int) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		for !h.Empty() {
			h.Pop()
		}
	}
}
