// Package pqueue provides a generic binary min-heap.
//
// The KOR algorithms are heap-heavy: OSScaling keeps one global label queue,
// BucketBound keeps one queue per bucket, and every shortest-path oracle runs
// Dijkstra underneath. All of them share this implementation rather than
// re-deriving container/heap boilerplate with interface boxing; the generic
// heap keeps labels unboxed and the comparison inlined.
package pqueue

// Heap is a binary min-heap ordered by the less function supplied at
// construction. The zero value is not usable; call New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewWithCapacity returns an empty heap with pre-allocated space for n items.
func NewWithCapacity[T any](n int, less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{items: make([]T, 0, n), less: less}
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push adds an item to the heap.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum item. It panics on an empty heap;
// callers guard with Empty or Len.
func (h *Heap[T]) Pop() T {
	n := len(h.items)
	top := h.items[0]
	h.items[0] = h.items[n-1]
	var zero T
	h.items[n-1] = zero // release references for the garbage collector
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum item without removing it. It panics on an empty
// heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Reset discards all items while keeping the allocated space.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
