package gen

import (
	"math"
	"math/rand"
	"time"

	"kor/internal/geo"
	"kor/internal/graph"
	"kor/internal/trajectory"
)

// FlickrConfig shapes the synthetic photo world. The defaults produce a
// graph around 1–2k locations — the paper's Flickr graph scaled down so the
// dense pre-processing tables stay laptop-sized (see DESIGN.md).
type FlickrConfig struct {
	Seed int64
	// Users is the number of simulated photographers (default 1500).
	Users int
	// Attractions is the number of points of interest (default 900).
	Attractions int
	// VocabSize is the tag vocabulary size (default 1200).
	VocabSize int
	// TagsPerAttraction is how many base tags an attraction offers
	// (default 4).
	TagsPerAttraction int
	// MeanTripLegs is the average number of attraction visits per user
	// trip day (default 5).
	MeanTripLegs int
	// TripsPerUser is the average number of photo days per user
	// (default 4).
	TripsPerUser int
	// Region is the city bounding box (default geo.NewYorkCity).
	Region geo.Rect
	// Pipeline overrides the trajectory pipeline configuration.
	Pipeline trajectory.Config
}

func (c FlickrConfig) withDefaults() FlickrConfig {
	if c.Users <= 0 {
		c.Users = 1500
	}
	if c.Attractions <= 0 {
		c.Attractions = 900
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 600
	}
	if c.TagsPerAttraction <= 0 {
		c.TagsPerAttraction = 14
	}
	if c.MeanTripLegs <= 0 {
		c.MeanTripLegs = 5
	}
	if c.TripsPerUser <= 0 {
		c.TripsPerUser = 4
	}
	if c.Region.Width() == 0 || c.Region.Height() == 0 {
		c.Region = geo.Manhattan
	}
	return c
}

// attraction is a synthetic point of interest.
type attraction struct {
	pos    geo.Point
	weight float64 // visit popularity, heavy-tailed
	tags   []string
}

// FlickrWorld simulates the photographers and returns their photos.
func FlickrWorld(cfg FlickrConfig) []trajectory.Photo {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipf(rng, 1.1, cfg.VocabSize)

	attractions := make([]attraction, cfg.Attractions)
	for i := range attractions {
		attractions[i] = attraction{
			pos:    cfg.Region.Lerp(rng.Float64(), rng.Float64()),
			weight: math.Pow(rng.Float64(), 3) + 0.01, // heavy tail of hot spots
			tags:   zipfTags(rng, zipf, cfg.TagsPerAttraction),
		}
	}

	epoch := time.Date(2011, time.June, 1, 8, 0, 0, 0, time.UTC)
	var photos []trajectory.Photo

	for user := 0; user < cfg.Users; user++ {
		// Each user takes several day trips, days apart (breaking trips in
		// the pipeline's eyes), hopping between attractions with a bias
		// toward popular and nearby ones.
		t := epoch.Add(time.Duration(rng.Intn(200*24)) * time.Hour)
		trips := 1 + rng.Intn(2*cfg.TripsPerUser)
		cur := rng.Intn(len(attractions))
		for trip := 0; trip < trips; trip++ {
			legs := 1 + rng.Intn(2*cfg.MeanTripLegs)
			for leg := 0; leg < legs; leg++ {
				a := attractions[cur]
				// Photos at the attraction: 1–3, tagged with a subset of
				// the attraction's tags plus occasional personal noise
				// (filtered later by the ≥2-users rule).
				for n := 1 + rng.Intn(3); n > 0; n-- {
					tags := make([]string, 0, len(a.tags))
					for _, tag := range a.tags {
						if rng.Float64() < 0.8 {
							tags = append(tags, tag)
						}
					}
					if rng.Float64() < 0.1 {
						tags = append(tags, "noise-"+TagName(rng.Intn(cfg.VocabSize))+"-u"+itoa(user))
					}
					jitter := geo.Point{
						X: a.pos.X + (rng.Float64()-0.5)*0.0008,
						Y: a.pos.Y + (rng.Float64()-0.5)*0.0008,
					}
					photos = append(photos, trajectory.Photo{
						User: user,
						Time: t,
						Pos:  jitter,
						Tags: tags,
					})
					t = t.Add(time.Duration(1+rng.Intn(20)) * time.Minute)
				}
				cur = nextAttraction(rng, attractions, cur)
				t = t.Add(time.Duration(10+rng.Intn(110)) * time.Minute)
			}
			// Days (sometimes weeks) pass before the next trip.
			t = t.Add(time.Duration(30+rng.Intn(24*14*60)) * time.Minute)
		}
	}
	return photos
}

// nextAttraction picks the next stop from a random candidate sample,
// scoring popularity against a strong distance decay: tourists overwhelmingly
// hop to nearby attractions (sub-2km), with the occasional cross-town leap.
// The decay keeps trip edges short, which in turn keeps the evaluation's
// Δ = 3–15 km budget sweep meaningful on the resulting graph.
func nextAttraction(rng *rand.Rand, as []attraction, cur int) int {
	const sample = 24
	bestScore := -1.0
	best := cur
	for i := 0; i < sample; i++ {
		cand := rng.Intn(len(as))
		if cand == cur {
			continue
		}
		d := as[cur].pos.CityDistanceKm(as[cand].pos)
		score := as[cand].weight / (0.05 + d*d*d) * rng.Float64()
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// FlickrGraph runs FlickrWorld through the trajectory pipeline.
func FlickrGraph(cfg FlickrConfig) (*graph.Graph, trajectory.Stats, error) {
	cfg = cfg.withDefaults()
	return trajectory.BuildGraph(FlickrWorld(cfg), cfg.Pipeline)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
