// Package gen generates the datasets of the paper's evaluation (§4.1).
//
// The paper uses (a) a graph built from 1.5M geo-tagged Flickr photos of
// New York City and (b) four synthetic graphs extracted from the New York
// road network with 5k–20k nodes. Neither resource ships with this
// reproduction, so gen synthesizes the closest equivalents:
//
//   - FlickrWorld simulates photo-taking tourists — attraction-biased random
//     walks over a synthetic city emitting timestamped, tagged photos — and
//     feeds them through the exact pipeline of internal/trajectory. The
//     resulting graph shares the properties the algorithms care about:
//     sparse location graph, Zipf tag frequencies, heavy-tailed edge
//     popularity, metric budget values.
//   - RoadNetwork builds a connected near-planar network over a plane with
//     Euclidean budgets, uniform (0,1) objectives and Zipf-assigned tags,
//     matching the paper's description of the synthetic datasets.
//
// All generation is deterministic in the configured seed.
package gen

import (
	"fmt"
	"math/rand"
)

// zipfTags draws k distinct tag names from a Zipf distribution over a
// vocabulary of the given size. Tag names are stable across datasets so
// query workloads can be described in words.
func zipfTags(rng *rand.Rand, zipf *rand.Zipf, k int) []string {
	seen := make(map[uint64]bool, k)
	out := make([]string, 0, k)
	for len(out) < k {
		id := zipf.Uint64()
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, TagName(int(id)))
	}
	return out
}

// TagName renders the canonical name of vocabulary entry id.
func TagName(id int) string { return fmt.Sprintf("tag%04d", id) }

// newZipf builds the package's standard Zipf sampler: exponent s over
// {0..n-1}. The paper's tag frequencies are heavy-tailed; s ≈ 1.1 mimics
// the usual social-tagging skew.
func newZipf(rng *rand.Rand, s float64, n int) *rand.Zipf {
	if s <= 1 {
		s = 1.1
	}
	if n < 2 {
		n = 2
	}
	return rand.NewZipf(rng, s, 1, uint64(n-1))
}
