package gen

import (
	"bytes"
	"strings"
	"testing"

	"kor/internal/graph"
)

func TestGridRoadStructure(t *testing.T) {
	cfg := GridConfig{Seed: 3, Nodes: 250, VocabSize: 50} // 15×16 grid + partial row
	g := GridRoad(cfg)
	if g.NumNodes() != 250 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if want := gridEdgeCount(cfg); g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	if !g.HasPositions() {
		t.Fatal("grid has no positions")
	}
	// Every node carries at least one tag and has degree ≥ 1.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if len(g.Terms(v)) == 0 {
			t.Fatalf("node %d has no tags", v)
		}
		if g.OutDegree(v) == 0 {
			t.Fatalf("node %d has no outgoing edges", v)
		}
	}
	// Grid connections are symmetric, so the network is strongly connected:
	// a BFS over out-edges must reach every node.
	seen := make([]bool, g.NumNodes())
	queue := []graph.NodeID{0}
	seen[0] = true
	count := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		count++
		for _, e := range g.Out(v) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	if count != g.NumNodes() {
		t.Fatalf("BFS reached %d of %d nodes", count, g.NumNodes())
	}
	if g.MinBudget() <= 0 || g.MinObjective() <= 0 {
		t.Fatalf("non-positive extrema: obj %v bud %v", g.MinObjective(), g.MinBudget())
	}
}

func TestGridRoadDeterministic(t *testing.T) {
	cfg := GridConfig{Seed: 9, Nodes: 100}
	if GridRoad(cfg).Fingerprint() != GridRoad(cfg).Fingerprint() {
		t.Fatal("same config, different fingerprints")
	}
	other := GridConfig{Seed: 10, Nodes: 100}
	if GridRoad(cfg).Fingerprint() == GridRoad(other).Fingerprint() {
		t.Fatal("different seeds, same fingerprint")
	}
}

// TestWriteGridCSVRoundTrip pins the contract the scale-soak tier depends
// on: streaming the grid to CSV and re-ingesting it with LoadCSV yields a
// graph fingerprint-identical to building it directly.
func TestWriteGridCSVRoundTrip(t *testing.T) {
	cfg := GridConfig{Seed: 21, Nodes: 180, VocabSize: 40}
	var nodes, edges bytes.Buffer
	if err := WriteGridCSV(cfg, &nodes, &edges); err != nil {
		t.Fatalf("WriteGridCSV: %v", err)
	}
	loaded, err := graph.LoadCSV(
		strings.NewReader(nodes.String()), "grid.nodes.csv",
		strings.NewReader(edges.String()), "grid.edges.csv")
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	direct := GridRoad(cfg)
	if loaded.Fingerprint() != direct.Fingerprint() {
		t.Fatalf("round-trip fingerprint %x != direct build %x", loaded.Fingerprint(), direct.Fingerprint())
	}
	if loaded.NumNodes() != direct.NumNodes() || loaded.NumEdges() != direct.NumEdges() {
		t.Fatalf("round-trip shape %d/%d != %d/%d",
			loaded.NumNodes(), loaded.NumEdges(), direct.NumNodes(), direct.NumEdges())
	}
}
