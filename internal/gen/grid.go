package gen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"kor/internal/geo"
	"kor/internal/graph"
)

// GridConfig shapes a grid road network — the generator for the
// real-world-scale tier. Unlike RoadNetwork (random points + kNN chords,
// fine at 5k–20k nodes), a grid needs no neighbour search and no edge-dedup
// map, so it emits millions of nodes in bounded memory: every per-node value
// (position jitter, tags, edge attributes) is recomputed from a hash of
// (Seed, node), never stored, and the graph is assembled with the two-pass
// streaming CSR builder.
type GridConfig struct {
	Seed int64
	// Nodes is the network size (default 1_000_000). The grid is near-square;
	// a partial last row keeps the count exact.
	Nodes int
	// SpacingKm is the distance between adjacent intersections (default 0.25).
	SpacingKm float64
	// JitterFrac displaces each intersection by up to this fraction of the
	// spacing in each axis (default 0.3), so edge budgets vary like real
	// blocks instead of being uniform.
	JitterFrac float64
	// VocabSize is the tag vocabulary (default 1000).
	VocabSize int
	// MaxTagsPerNode bounds the per-node tag count (default 3).
	MaxTagsPerNode int
}

func (c GridConfig) withDefaults() GridConfig {
	if c.Nodes <= 0 {
		c.Nodes = 1_000_000
	}
	if c.SpacingKm <= 0 {
		c.SpacingKm = 0.25
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.3
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 1000
	}
	if c.MaxTagsPerNode <= 0 {
		c.MaxTagsPerNode = 3
	}
	return c
}

// width returns the column count of the near-square grid.
func (c GridConfig) width() int {
	w := isqrt(c.Nodes)
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 is the per-node hash every derived value comes from. It is the
// standard SplitMix64 finalizer: deterministic, stateless, and good enough
// that neighbouring nodes decorrelate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a hash to [0,1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// gridPos recomputes node v's jittered position from the seed alone.
func (c GridConfig) gridPos(v int) geo.Point {
	w := c.width()
	col, row := v%w, v/w
	hx := splitmix64(uint64(c.Seed)<<1 ^ uint64(v)*2654435761 ^ 0xa5a5)
	hy := splitmix64(hx ^ 0x5a5a)
	j := c.SpacingKm * c.JitterFrac
	return geo.Point{
		X: float64(col)*c.SpacingKm + (2*u01(hx)-1)*j,
		Y: float64(row)*c.SpacingKm + (2*u01(hy)-1)*j,
	}
}

// gridTags recomputes node v's tag list. Tag frequency follows a power law
// (id drawn as ⌊V·u³⌋), approximating the Zipf skew of the other generators
// without needing a stateful sampler.
func (c GridConfig) gridTags(v int, out []string) []string {
	h := splitmix64(uint64(c.Seed)*0x9e3779b9 + uint64(v))
	k := 1 + int(h%uint64(c.MaxTagsPerNode))
	out = out[:0]
	for i := 0; len(out) < k && i < 4*k; i++ {
		h = splitmix64(h)
		u := u01(h)
		id := int(float64(c.VocabSize) * u * u * u)
		if id >= c.VocabSize {
			id = c.VocabSize - 1
		}
		name := TagName(id)
		dup := false
		for _, s := range out {
			if s == name {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, name)
		}
	}
	return out
}

// gridObjective recomputes the objective of the directed edge from→to:
// uniform in (0.05, 1) like the road generator, independent per direction.
func (c GridConfig) gridObjective(from, to int) float64 {
	h := splitmix64(uint64(c.Seed) ^ uint64(from)*0x1000193 ^ uint64(to)*0x9e3779b1)
	return 0.05 + 0.95*u01(h)
}

// gridBudget recomputes the budget (length) of the undirected connection:
// the Euclidean distance between the jittered endpoints, floored like
// RoadNetwork so b_min stays healthy.
func (c GridConfig) gridBudget(u, v int) float64 {
	d := c.gridPos(u).Euclidean(c.gridPos(v))
	if d < 0.05 {
		d = 0.05
	}
	return d
}

// forEachConnection enumerates the grid's undirected connections in
// deterministic order: for each node, its right neighbour then its down
// neighbour. Both builder passes and the CSV emitter replay this exact
// order, which is what keeps GridRoad and a reingested text dump
// fingerprint-identical.
func (c GridConfig) forEachConnection(fn func(u, v int) error) error {
	w := c.width()
	for u := 0; u < c.Nodes; u++ {
		if (u+1)%w != 0 && u+1 < c.Nodes {
			if err := fn(u, u+1); err != nil {
				return err
			}
		}
		if u+w < c.Nodes {
			if err := fn(u, u+w); err != nil {
				return err
			}
		}
	}
	return nil
}

// GridRoad builds the grid network in bounded memory: peak resident size is
// the finished graph plus O(|V|) builder cursors.
func GridRoad(cfg GridConfig) *graph.Graph {
	cfg = cfg.withDefaults()
	sb := graph.NewStreamBuilder(nil)
	var scratch []string
	for v := 0; v < cfg.Nodes; v++ {
		scratch = cfg.gridTags(v, scratch)
		id, err := sb.AddNode(scratch...)
		if err != nil {
			panic("gen: grid node: " + err.Error())
		}
		if err := sb.SetPosition(id, cfg.gridPos(v)); err != nil {
			panic("gen: grid position: " + err.Error())
		}
	}
	count := func(u, v int) error {
		if err := sb.CountEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
			return err
		}
		return sb.CountEdge(graph.NodeID(v), graph.NodeID(u))
	}
	if err := cfg.forEachConnection(count); err != nil {
		panic("gen: grid count pass: " + err.Error())
	}
	if err := sb.FinishCount(); err != nil {
		panic("gen: grid: " + err.Error())
	}
	fill := func(u, v int) error {
		bud := cfg.gridBudget(u, v)
		if err := sb.FillEdge(graph.NodeID(u), graph.NodeID(v), cfg.gridObjective(u, v), bud); err != nil {
			return err
		}
		return sb.FillEdge(graph.NodeID(v), graph.NodeID(u), cfg.gridObjective(v, u), bud)
	}
	if err := cfg.forEachConnection(fill); err != nil {
		panic("gen: grid fill pass: " + err.Error())
	}
	g, err := sb.Build()
	if err != nil {
		panic("gen: grid build: " + err.Error())
	}
	return g
}

// WriteGridCSV streams the grid as the two-file CSV ingest shape without
// ever materializing the graph: memory stays O(1) in the node count.
// Ingesting the emitted files with graph.LoadCSV yields a graph
// fingerprint-identical to GridRoad(cfg).
func WriteGridCSV(cfg GridConfig, nodes, edges io.Writer) error {
	cfg = cfg.withDefaults()
	nw := bufio.NewWriterSize(nodes, 1<<20)
	if _, err := fmt.Fprintln(nw, "# id,x,y,keywords — grid road network, seed", cfg.Seed); err != nil {
		return err
	}
	var scratch []string
	for v := 0; v < cfg.Nodes; v++ {
		p := cfg.gridPos(v)
		scratch = cfg.gridTags(v, scratch)
		nw.WriteString(strconv.Itoa(v))
		nw.WriteByte(',')
		nw.WriteString(strconv.FormatFloat(p.X, 'g', -1, 64))
		nw.WriteByte(',')
		nw.WriteString(strconv.FormatFloat(p.Y, 'g', -1, 64))
		nw.WriteByte(',')
		for i, s := range scratch {
			if i > 0 {
				nw.WriteByte(';')
			}
			nw.WriteString(s)
		}
		nw.WriteByte('\n')
	}
	if err := nw.Flush(); err != nil {
		return err
	}

	ew := bufio.NewWriterSize(edges, 1<<20)
	if _, err := fmt.Fprintln(ew, "# from,to,objective,budget"); err != nil {
		return err
	}
	writeEdge := func(u, v int, bud float64) {
		ew.WriteString(strconv.Itoa(u))
		ew.WriteByte(',')
		ew.WriteString(strconv.Itoa(v))
		ew.WriteByte(',')
		ew.WriteString(strconv.FormatFloat(cfg.gridObjective(u, v), 'g', -1, 64))
		ew.WriteByte(',')
		ew.WriteString(strconv.FormatFloat(bud, 'g', -1, 64))
		ew.WriteByte('\n')
	}
	err := cfg.forEachConnection(func(u, v int) error {
		bud := cfg.gridBudget(u, v)
		writeEdge(u, v, bud)
		writeEdge(v, u, bud)
		return nil
	})
	if err != nil {
		return err
	}
	return ew.Flush()
}

// gridEdgeCount returns the directed edge count the grid will have — a
// structural invariant the tests check against the built graph.
func gridEdgeCount(cfg GridConfig) int {
	cfg = cfg.withDefaults()
	n := 0
	_ = cfg.forEachConnection(func(u, v int) error { n++; return nil })
	return 2 * n
}
