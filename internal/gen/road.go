package gen

import (
	"math/rand"
	"sort"

	"kor/internal/geo"
	"kor/internal/graph"
)

// RoadConfig shapes a synthetic road network, standing in for the paper's
// New York road-network subgraphs (5,000–20,000 nodes).
type RoadConfig struct {
	Seed int64
	// Nodes is the network size (default 5000).
	Nodes int
	// NeighborK connects each node to its k nearest neighbours
	// bidirectionally (default 3).
	NeighborK int
	// SizeKm is the side of the square plane in kilometres (default 40).
	SizeKm float64
	// VocabSize is the tag vocabulary (default 1200, shared naming with the
	// Flickr vocabulary as the paper reuses the Flickr tags).
	VocabSize int
	// MaxTagsPerNode bounds the random tag count per node (default 3).
	MaxTagsPerNode int
}

func (c RoadConfig) withDefaults() RoadConfig {
	if c.Nodes <= 0 {
		c.Nodes = 5000
	}
	if c.NeighborK <= 0 {
		c.NeighborK = 3
	}
	if c.SizeKm <= 0 {
		c.SizeKm = 40
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 300
	}
	if c.MaxTagsPerNode <= 0 {
		c.MaxTagsPerNode = 8
	}
	return c
}

// RoadNetwork builds the synthetic road graph: random points on a plane, a
// serpentine backbone guaranteeing strong connectivity with local hops, and
// k-nearest-neighbour chords. Budget values are Euclidean distances in km;
// objective values are uniform in (0,1) as §4.1 specifies.
func RoadNetwork(cfg RoadConfig) *graph.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipf(rng, 1.1, cfg.VocabSize)

	pts := make([]geo.Point, cfg.Nodes)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * cfg.SizeKm, Y: rng.Float64() * cfg.SizeKm}
	}

	// Serpentine order: sort into column strips, alternating direction, so
	// consecutive nodes are spatially close and the backbone cycle stays
	// local.
	order := make([]int, cfg.Nodes)
	for i := range order {
		order[i] = i
	}
	strips := 1 + cfg.Nodes/120
	stripW := cfg.SizeKm / float64(strips)
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		sa, sb := int(pa.X/stripW), int(pb.X/stripW)
		if sa != sb {
			return sa < sb
		}
		if sa%2 == 0 {
			return pa.Y < pb.Y
		}
		return pa.Y > pb.Y
	})

	b := graph.NewBuilder()
	for i := 0; i < cfg.Nodes; i++ {
		k := 1 + rng.Intn(cfg.MaxTagsPerNode)
		id := b.AddNode(zipfTags(rng, zipf, k)...)
		if err := b.SetPosition(id, pts[i]); err != nil {
			panic("gen: position on fresh node: " + err.Error())
		}
	}

	type edgeKey struct{ from, to graph.NodeID }
	seen := make(map[edgeKey]bool)
	addBoth := func(u, v int) {
		if u == v {
			return
		}
		from, to := graph.NodeID(u), graph.NodeID(v)
		if seen[edgeKey{from, to}] {
			return
		}
		seen[edgeKey{from, to}] = true
		seen[edgeKey{to, from}] = true
		dist := pts[u].Euclidean(pts[v])
		// Floor the hop length: b_min bounds the search depth ⌊Δ/b_min⌋
		// and a degenerate micro-edge would blow it up.
		if dist < 0.05 {
			dist = 0.05
		}
		// Independent per-direction objectives, uniform in (0,1); the small
		// floor keeps o_min (and with it the scaling factor θ) healthy.
		_ = b.AddEdge(from, to, 0.05+0.95*rng.Float64(), dist)
		_ = b.AddEdge(to, from, 0.05+0.95*rng.Float64(), dist)
	}

	// Backbone cycle over the serpentine order.
	for i := 0; i < cfg.Nodes; i++ {
		addBoth(order[i], order[(i+1)%cfg.Nodes])
	}

	// k-nearest-neighbour chords via a uniform grid index.
	cell := cfg.SizeKm / float64(1+isqrt(cfg.Nodes))
	grid := make(map[[2]int][]int)
	cellOf := func(p geo.Point) [2]int { return [2]int{int(p.X / cell), int(p.Y / cell)} }
	for i, p := range pts {
		grid[cellOf(p)] = append(grid[cellOf(p)], i)
	}
	for i, p := range pts {
		type cand struct {
			j int
			d float64
		}
		var cands []cand
		c := cellOf(p)
		for ring := 1; len(cands) < cfg.NeighborK*3 && ring <= 4; ring++ {
			cands = cands[:0]
			for dx := -ring; dx <= ring; dx++ {
				for dy := -ring; dy <= ring; dy++ {
					for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
						if j != i {
							cands = append(cands, cand{j, p.Euclidean(pts[j])})
						}
					}
				}
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		k := cfg.NeighborK
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			addBoth(i, c.j)
		}
	}
	return b.MustBuild()
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
