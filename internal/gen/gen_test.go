package gen

import (
	"testing"

	"kor/internal/graph"
)

func TestFlickrWorldDeterministic(t *testing.T) {
	cfg := FlickrConfig{Seed: 7, Users: 40, Attractions: 30, VocabSize: 60}
	a := FlickrWorld(cfg)
	b := FlickrWorld(cfg)
	if len(a) == 0 {
		t.Fatal("no photos generated")
	}
	if len(a) != len(b) {
		t.Fatalf("photo counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || !a[i].Time.Equal(b[i].Time) || a[i].Pos != b[i].Pos {
			t.Fatalf("photo %d differs between identical seeds", i)
		}
	}
	c := FlickrWorld(FlickrConfig{Seed: 8, Users: 40, Attractions: 30, VocabSize: 60})
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].Pos != c[i].Pos {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical worlds")
		}
	}
}

func TestFlickrGraphShape(t *testing.T) {
	g, st, err := FlickrGraph(FlickrConfig{Seed: 1, Users: 200, Attractions: 120, VocabSize: 150})
	if err != nil {
		t.Fatalf("FlickrGraph: %v", err)
	}
	if g.NumNodes() < 30 {
		t.Fatalf("only %d locations (stats %v)", g.NumNodes(), st)
	}
	if g.NumEdges() < g.NumNodes()/2 {
		t.Fatalf("only %d edges over %d nodes", g.NumEdges(), g.NumNodes())
	}
	if st.Trips == 0 || st.Tags == 0 {
		t.Fatalf("degenerate stats: %v", st)
	}
	// All edge attributes obey the library contract.
	gs := g.ComputeStats()
	if gs.MinObjective <= 0 || gs.MinBudget <= 0 {
		t.Errorf("non-positive edge attributes: %v", gs)
	}
	if !g.HasPositions() {
		t.Error("locations lost their coordinates")
	}
	// Keyword masses: the vocabulary must retain a reasonable set after
	// denoising, and postings must be non-trivial.
	idx := graph.NewMemIndex(g)
	withPostings := 0
	for term := graph.Term(0); int(term) < g.Vocab().Len(); term++ {
		if idx.DocFrequency(term) > 0 {
			withPostings++
		}
	}
	if withPostings < 20 {
		t.Errorf("only %d terms have postings", withPostings)
	}
}

func TestFlickrPipelineDenoisesUserNoise(t *testing.T) {
	g, _, err := FlickrGraph(FlickrConfig{Seed: 3, Users: 150, Attractions: 80, VocabSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range g.Vocab().Names() {
		if len(name) > 5 && name[:6] == "noise-" {
			t.Fatalf("single-user noise tag %q survived the pipeline", name)
		}
	}
}

func TestRoadNetworkShape(t *testing.T) {
	for _, n := range []int{300, 1200} {
		g := RoadNetwork(RoadConfig{Seed: 5, Nodes: n})
		if g.NumNodes() != n {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
		}
		if !g.StronglyConnected() {
			t.Fatalf("road network with %d nodes is not strongly connected", n)
		}
		gs := g.ComputeStats()
		if gs.MinObjective <= 0 || gs.MaxObjective >= 1 {
			t.Errorf("objectives outside (0,1): %v", gs)
		}
		if gs.MinBudget <= 0 {
			t.Errorf("non-positive distances: %v", gs)
		}
		if gs.AvgOutDegree < 2 || gs.AvgOutDegree > 12 {
			t.Errorf("degree %v outside road-like range", gs.AvgOutDegree)
		}
		if gs.AvgTerms < 1 {
			t.Errorf("nodes lack tags: %v", gs)
		}
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	a := RoadNetwork(RoadConfig{Seed: 11, Nodes: 400})
	b := RoadNetwork(RoadConfig{Seed: 11, Nodes: 400})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < a.NumNodes(); v++ {
		ea, eb := a.Out(v), b.Out(v)
		if len(ea) != len(eb) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d edge %d differs", v, i)
			}
		}
	}
}

func TestRoadNetworkEdgesAreLocal(t *testing.T) {
	g := RoadNetwork(RoadConfig{Seed: 2, Nodes: 800, SizeKm: 40})
	long := 0
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			if e.Budget > 10 {
				long++
			}
		}
	}
	if frac := float64(long) / float64(g.NumEdges()); frac > 0.02 {
		t.Errorf("%.1f%% of edges longer than 10km — not road-like", frac*100)
	}
}

func TestZipfTagsDistinct(t *testing.T) {
	world := FlickrWorld(FlickrConfig{Seed: 9, Users: 10, Attractions: 10, VocabSize: 40, TagsPerAttraction: 5})
	_ = world
	// Directly: zipfTags must return k distinct names.
	cfg := FlickrConfig{Seed: 9}.withDefaults()
	_ = cfg
	if TagName(7) != "tag0007" {
		t.Errorf("TagName(7) = %q", TagName(7))
	}
}

func TestFlickrTargetScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale dataset in -short mode")
	}
	g, st, err := FlickrGraph(FlickrConfig{Seed: 2012})
	if err != nil {
		t.Fatal(err)
	}
	// DESIGN.md promises a graph in the 1–2k location range at defaults.
	if g.NumNodes() < 500 || g.NumNodes() > 6000 {
		t.Errorf("default Flickr graph has %d locations (stats %v); retune defaults", g.NumNodes(), st)
	}
	if avg := float64(g.NumEdges()) / float64(g.NumNodes()); avg < 1 || avg > 40 {
		t.Errorf("default Flickr graph degree %v implausible", avg)
	}
}
