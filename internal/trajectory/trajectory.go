// Package trajectory implements the paper's dataset pipeline (§4.1): from a
// collection of geo-tagged, timestamped, user-attributed photos to the KOR
// graph. The steps mirror the paper exactly:
//
//  1. cluster photos into locations (grid clustering, after Kurashima et
//     al.), keeping locations with enough photos;
//  2. aggregate each location's tags, removing noisy tags contributed by
//     too few distinct users;
//  3. sort each user's photos by time and record a trip between two
//     consecutive photos at different locations taken less than a day
//     apart;
//  4. score each edge's popularity Pr(i,j) = Num(i,j)/TotalTrips and set
//     its objective value o(i,j) = log(1/Pr(i,j)), so that minimizing the
//     objective maximizes route popularity; the budget value is the
//     Euclidean distance between the locations in kilometres.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"kor/internal/geo"
	"kor/internal/graph"
)

// Photo is one geo-tagged photo observation.
type Photo struct {
	User int
	Time time.Time
	Pos  geo.Point
	Tags []string
}

// Config tunes the pipeline. Zero values take the documented defaults.
type Config struct {
	// ClusterPitch is the grid cell side in coordinate degrees
	// (default 0.002 ≈ 200 m at NYC latitudes).
	ClusterPitch float64
	// MinPhotosPerLocation keeps a cluster only when it holds at least this
	// many photos (default 3).
	MinPhotosPerLocation int
	// MinUsersPerTag keeps a location tag only when that many distinct
	// users contributed it (default 2 — the paper removes tags contributed
	// by only one user).
	MinUsersPerTag int
	// MaxTripGap is the largest time gap between consecutive photos that
	// still forms a trip (default 24h, per the paper).
	MaxTripGap time.Duration
}

func (c Config) withDefaults() Config {
	if c.ClusterPitch <= 0 {
		c.ClusterPitch = 0.002
	}
	if c.MinPhotosPerLocation <= 0 {
		c.MinPhotosPerLocation = 3
	}
	if c.MinUsersPerTag <= 0 {
		c.MinUsersPerTag = 2
	}
	if c.MaxTripGap <= 0 {
		c.MaxTripGap = 24 * time.Hour
	}
	return c
}

// Stats reports what the pipeline produced.
type Stats struct {
	Photos     int
	Locations  int
	Tags       int // distinct location tags after denoising
	Trips      int // total trips (the popularity denominator)
	TripPairs  int // distinct directed location pairs with at least one trip
	DroppedPho int // photos outside any kept location
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("photos=%d locations=%d tags=%d trips=%d pairs=%d dropped=%d",
		s.Photos, s.Locations, s.Tags, s.Trips, s.TripPairs, s.DroppedPho)
}

// ErrNoTrips reports that the photo set yields no trips at all.
var ErrNoTrips = errors.New("trajectory: no trips extractable from photos")

// BuildGraph runs the full pipeline and returns the KOR graph, whose node
// IDs index the returned location centroids 1:1.
func BuildGraph(photos []Photo, cfg Config) (*graph.Graph, Stats, error) {
	cfg = cfg.withDefaults()
	st := Stats{Photos: len(photos)}

	// 1. Cluster into locations.
	pts := make([]geo.Point, len(photos))
	for i, p := range photos {
		pts[i] = p.Pos
	}
	clusters := geo.NewGridClusterer(geo.Point{}, cfg.ClusterPitch).Cluster(pts, cfg.MinPhotosPerLocation)
	st.Locations = len(clusters)
	if len(clusters) == 0 {
		return nil, st, errors.New("trajectory: no location cluster met the photo minimum")
	}
	photoLoc := make([]int, len(photos)) // photo → location, -1 = dropped
	for i := range photoLoc {
		photoLoc[i] = -1
	}
	for li, c := range clusters {
		for _, pi := range c.Members {
			photoLoc[pi] = li
		}
	}
	for _, l := range photoLoc {
		if l == -1 {
			st.DroppedPho++
		}
	}

	// 2. Denoised tags per location: tag → distinct contributing users.
	tagUsers := make([]map[string]map[int]bool, len(clusters))
	for i := range tagUsers {
		tagUsers[i] = make(map[string]map[int]bool)
	}
	for pi, p := range photos {
		li := photoLoc[pi]
		if li < 0 {
			continue
		}
		for _, tag := range p.Tags {
			if tagUsers[li][tag] == nil {
				tagUsers[li][tag] = make(map[int]bool)
			}
			tagUsers[li][tag][p.User] = true
		}
	}
	locTags := make([][]string, len(clusters))
	allTags := make(map[string]bool)
	for li, tu := range tagUsers {
		for tag, users := range tu {
			if len(users) >= cfg.MinUsersPerTag {
				locTags[li] = append(locTags[li], tag)
				allTags[tag] = true
			}
		}
		sort.Strings(locTags[li])
	}
	st.Tags = len(allTags)

	// 3. Trips from consecutive photos of the same user.
	type photoRef struct {
		t   time.Time
		loc int
	}
	byUser := make(map[int][]photoRef)
	for pi, p := range photos {
		if photoLoc[pi] < 0 {
			continue
		}
		byUser[p.User] = append(byUser[p.User], photoRef{t: p.Time, loc: photoLoc[pi]})
	}
	tripCount := make(map[[2]int]int)
	totalTrips := 0
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users) // deterministic iteration
	for _, u := range users {
		refs := byUser[u]
		sort.Slice(refs, func(i, j int) bool { return refs[i].t.Before(refs[j].t) })
		for i := 1; i < len(refs); i++ {
			prev, cur := refs[i-1], refs[i]
			if prev.loc == cur.loc {
				continue
			}
			if cur.t.Sub(prev.t) >= cfg.MaxTripGap {
				continue
			}
			tripCount[[2]int{prev.loc, cur.loc}]++
			totalTrips++
		}
	}
	st.Trips = totalTrips
	st.TripPairs = len(tripCount)
	if totalTrips == 0 {
		return nil, st, ErrNoTrips
	}

	// 4. Assemble the graph. The popularity of edge (i,j) is
	// Pr = Num/TotalTrips and its objective o = log(1/Pr). Adding one to
	// the denominator's numerator (log((Total+1)/Num)) keeps o strictly
	// positive even for an edge carrying every trip, which the edge
	// validator (and the scaling factor θ) requires.
	b := graph.NewBuilder()
	for li, c := range clusters {
		id := b.AddNode(locTags[li]...)
		if err := b.SetPosition(id, c.Centroid); err != nil {
			return nil, st, err
		}
	}
	pairs := make([][2]int, 0, len(tripCount))
	for pair := range tripCount {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		num := tripCount[pair]
		objective := math.Log(float64(totalTrips+1) / float64(num))
		from, to := clusters[pair[0]].Centroid, clusters[pair[1]].Centroid
		budget := from.CityDistanceKm(to)
		if budget <= 0 {
			// Centroids of distinct cells can in principle coincide only
			// through degenerate input; keep the edge usable.
			budget = cfg.ClusterPitch * 111.0 / 2
		}
		if err := b.AddEdge(graph.NodeID(pair[0]), graph.NodeID(pair[1]), objective, budget); err != nil {
			return nil, st, err
		}
	}
	g, err := b.Build()
	return g, st, err
}

// EdgePopularity recovers Pr(i,j) from an objective value produced by
// BuildGraph with the given total trip count: the objective is
// o = ln((total+1)/num), so num = (total+1)·e^(−o) and Pr = num/total.
// Exposed for tests and reporting.
func EdgePopularity(objective float64, totalTrips int) float64 {
	if totalTrips <= 0 {
		return 0
	}
	num := float64(totalTrips+1) * math.Exp(-objective)
	return num / float64(totalTrips)
}
