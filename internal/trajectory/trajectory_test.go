package trajectory

import (
	"errors"
	"math"
	"testing"
	"time"

	"kor/internal/geo"
	"kor/internal/graph"
)

var t0 = time.Date(2011, time.June, 1, 9, 0, 0, 0, time.UTC)

// photoAt builds a photo near a grid-cell corner.
func photoAt(user int, minutes int, x, y float64, tags ...string) Photo {
	return Photo{User: user, Time: t0.Add(time.Duration(minutes) * time.Minute), Pos: geo.Point{X: x, Y: y}, Tags: tags}
}

// smallWorld: two locations (cells around (0,0) and (0.01, 0)), three users
// commuting between them.
func smallWorld() []Photo {
	var ps []Photo
	for user := 0; user < 3; user++ {
		base := user * 600
		// Morning at location A, then B within the same day → trip A→B.
		// Only user 0 contributes "lake" and "art": single-user tags that
		// the pipeline must denoise away.
		tagsA := []string{"park"}
		tagsB := []string{"museum"}
		if user == 0 {
			tagsA = append(tagsA, "lake")
			tagsB = append(tagsB, "art")
		}
		ps = append(ps,
			photoAt(user, base, 0.0001, 0.0001, tagsA...),
			photoAt(user, base+1, 0.0003, 0.0002, "park"),
			photoAt(user, base+2, 0.0002, 0.0004, "park"),
			photoAt(user, base+120, 0.0101, 0.0001, "museum"),
			photoAt(user, base+121, 0.0103, 0.0002, tagsB...),
			photoAt(user, base+122, 0.0102, 0.0003, "museum"),
		)
	}
	// One user returns B→A the same day.
	ps = append(ps, photoAt(0, 200, 0.0001, 0.0002, "park"))
	return ps
}

func TestBuildGraphPipeline(t *testing.T) {
	cfg := Config{ClusterPitch: 0.002, MinPhotosPerLocation: 3, MinUsersPerTag: 2, MaxTripGap: 24 * time.Hour}
	g, st, err := BuildGraph(smallWorld(), cfg)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if st.Locations != 2 {
		t.Fatalf("locations = %d, want 2 (stats %v)", st.Locations, st)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Trips: three users A→B plus one B→A = 4 total.
	if st.Trips != 4 {
		t.Errorf("trips = %d, want 4", st.Trips)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (A→B and B→A)", g.NumEdges())
	}

	// Keywords: "park" and "museum" are multi-user; "lake" and "art" came
	// from one user each and must be denoised away.
	vocab := g.Vocab()
	if _, ok := vocab.Lookup("park"); !ok {
		t.Error("park missing from vocabulary")
	}
	if _, ok := vocab.Lookup("museum"); !ok {
		t.Error("museum missing from vocabulary")
	}
	if _, ok := vocab.Lookup("lake"); ok {
		t.Error("single-user tag lake survived denoising")
	}
	if _, ok := vocab.Lookup("art"); ok {
		t.Error("single-user tag art survived denoising")
	}

	// Popularity: A→B carries 3 of 4 trips, B→A carries 1 of 4; the A→B
	// objective must be smaller (more popular = cheaper).
	var objectives []float64
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			objectives = append(objectives, e.Objective)
		}
	}
	if len(objectives) != 2 {
		t.Fatalf("expected two directed edges, got %d", len(objectives))
	}
	hi, lo := math.Max(objectives[0], objectives[1]), math.Min(objectives[0], objectives[1])
	wantLo := math.Log(5.0 / 3.0) // log((4+1)/3)
	wantHi := math.Log(5.0 / 1.0)
	if math.Abs(lo-wantLo) > 1e-9 || math.Abs(hi-wantHi) > 1e-9 {
		t.Errorf("objectives = %v/%v, want %v/%v", lo, hi, wantLo, wantHi)
	}

	// Budget: roughly the east-west distance of one hundredth of a degree
	// of longitude at latitude ~0 → ~1.11 km.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			if e.Budget < 0.5 || e.Budget > 2.0 {
				t.Errorf("edge budget %v km outside plausible range", e.Budget)
			}
		}
	}

	if pop := EdgePopularity(lo, st.Trips); math.Abs(pop-0.75) > 1e-9 {
		t.Errorf("EdgePopularity(A→B) = %v, want 0.75", pop)
	}
}

func TestTripGapBreaksTrips(t *testing.T) {
	// Two photos at different locations 26h apart: no trip.
	ps := []Photo{
		photoAt(0, 0, 0.0001, 0.0001, "a"),
		photoAt(0, 1, 0.0002, 0.0001, "a"),
		photoAt(0, 2, 0.0001, 0.0003, "a"),
		photoAt(0, 26*60, 0.0101, 0.0001, "b"),
		photoAt(0, 26*60+1, 0.0102, 0.0001, "b"),
		photoAt(0, 26*60+2, 0.0102, 0.0002, "b"),
	}
	_, _, err := BuildGraph(ps, Config{ClusterPitch: 0.002, MinPhotosPerLocation: 3, MinUsersPerTag: 1})
	if !errors.Is(err, ErrNoTrips) {
		t.Fatalf("err = %v, want ErrNoTrips", err)
	}
}

func TestSameLocationPhotosNoTrip(t *testing.T) {
	ps := []Photo{
		photoAt(0, 0, 0.0001, 0.0001, "a"),
		photoAt(0, 5, 0.0002, 0.0002, "a"),
		photoAt(0, 9, 0.0003, 0.0001, "a"),
	}
	_, _, err := BuildGraph(ps, Config{ClusterPitch: 0.002, MinPhotosPerLocation: 1, MinUsersPerTag: 1})
	if !errors.Is(err, ErrNoTrips) {
		t.Fatalf("err = %v, want ErrNoTrips", err)
	}
}

func TestMinPhotosFiltersLocations(t *testing.T) {
	ps := smallWorld()
	// A lone photo far away must not become a location.
	ps = append(ps, photoAt(9, 0, 0.5, 0.5, "ghost"))
	_, st, err := BuildGraph(ps, Config{ClusterPitch: 0.002, MinPhotosPerLocation: 3, MinUsersPerTag: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Locations != 2 {
		t.Errorf("locations = %d, want 2", st.Locations)
	}
	if st.DroppedPho != 1 {
		t.Errorf("dropped = %d, want 1", st.DroppedPho)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{}
	g1, st1, err1 := BuildGraph(smallWorld(), cfg)
	g2, st2, err2 := BuildGraph(smallWorld(), cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1 != st2 {
		t.Fatalf("stats differ: %v vs %v", st1, st2)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("graphs differ between identical runs")
	}
	if st1.String() == "" {
		t.Error("empty Stats.String")
	}
}

func TestEmptyInput(t *testing.T) {
	if _, _, err := BuildGraph(nil, Config{}); err == nil {
		t.Fatal("BuildGraph(nil) succeeded")
	}
}
