package cluster

import (
	"fmt"
	"sort"

	"kor/internal/apsp"
	"kor/internal/graph"
)

// CutConfig parameterizes a shard cut.
type CutConfig struct {
	// Shards is the number of shards to cut the graph into (≥ 1; clamped to
	// the number of partition cells).
	Shards int
	// CellSize is the apsp partition region cap (0 = apsp.DefaultCellSize).
	CellSize int
	// Halo is how many undirected BFS hops beyond a shard's owned nodes are
	// replicated into its graph. A larger halo answers more cross-border
	// routes shard-locally at the cost of duplicated storage; routes that
	// leave the closure entirely are not found by that shard.
	Halo int
}

// Cut is the result of CutGraph: one graph per shard plus the map tying
// them together.
type Cut struct {
	Map *ShardMap
	// Graphs is the per-shard graph, index-aligned with Map.Shards. Every
	// shard graph keeps the full node set — global node IDs are valid
	// verbatim on every shard, so the router never translates IDs and
	// keyword deltas address the same node everywhere — but only closure
	// nodes (owned ∪ halo) keep their edges and keywords.
	Graphs []*graph.Graph
}

// CutGraph partitions g with the apsp region partitioner, groups the
// regions into cfg.Shards contiguous shards balanced by node count, and
// builds each shard's graph: the full node set (names and positions
// preserved), with edges and keywords restricted to the shard's closure.
// Every shard graph shares g's exact vocabulary and term numbering, so a
// keyword unknown to one shard is unknown to all, and saved shard graphs
// reload with identical Term IDs.
func CutGraph(g *graph.Graph, cfg CutConfig) (*Cut, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: cut needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Halo < 0 {
		return nil, fmt.Errorf("cluster: negative halo %d", cfg.Halo)
	}
	cellSize := cfg.CellSize
	if cellSize == 0 {
		cellSize = apsp.DefaultCellSize
	}
	n := g.NumNodes()
	part := apsp.PartitionGraph(g, cellSize)

	nShards := cfg.Shards
	if nShards > len(part.Cells) {
		nShards = len(part.Cells)
	}

	// Sequential fill: walk cells in discovery order (spatially coherent by
	// construction of the BFS growing) into the current shard until it
	// reaches the target node count. The last shard takes the remainder.
	cellShard := make([]int, len(part.Cells))
	target := (n + nShards - 1) / nShards
	shard, filled := 0, 0
	regions := make([]int, nShards)
	for ci, nodes := range part.Cells {
		if shard < nShards-1 && filled >= target {
			shard++
			filled = 0
		}
		cellShard[ci] = shard
		regions[shard]++
		filled += len(nodes)
	}

	nodeShard := make([]int, n)
	for v := 0; v < n; v++ {
		nodeShard[v] = cellShard[part.Region[v]]
	}

	cut := &Cut{
		Map: &ShardMap{
			Version:         ShardMapVersion,
			FullFingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
			CellSize:        cellSize,
			Halo:            cfg.Halo,
			Nodes:           n,
			Edges:           g.NumEdges(),
			Terms:           g.Vocab().Len(),
			MinObjective:    g.MinObjective(),
			MaxObjective:    g.MaxObjective(),
			MinBudget:       g.MinBudget(),
			MaxBudget:       g.MaxBudget(),
			NodeShard:       nodeShard,
		},
		Graphs: make([]*graph.Graph, nShards),
	}

	for s := 0; s < nShards; s++ {
		closure := make([]bool, n)
		owned := 0
		var frontier []graph.NodeID
		for v := 0; v < n; v++ {
			if nodeShard[v] == s {
				closure[v] = true
				owned++
				frontier = append(frontier, graph.NodeID(v))
			}
		}
		// Halo: breadth-first over the undirected skeleton.
		for hop := 0; hop < cfg.Halo; hop++ {
			var next []graph.NodeID
			for _, v := range frontier {
				for _, e := range g.Out(v) {
					if !closure[e.To] {
						closure[e.To] = true
						next = append(next, e.To)
					}
				}
				for _, e := range g.In(v) {
					if !closure[e.To] {
						closure[e.To] = true
						next = append(next, e.To)
					}
				}
			}
			frontier = next
		}

		sg, info, err := buildShardGraph(g, closure)
		if err != nil {
			return nil, fmt.Errorf("cluster: building shard %d: %w", s, err)
		}
		info.ID = s
		info.Regions = regions[s]
		info.Owned = owned
		// Owned-node keyword counts: summed across shards these are exact
		// global counts (ownership partitions the nodes), which the router
		// serves from /v1/keywords instead of halo-overlapping shard counts.
		kwOwned := make(map[string]int)
		for v := 0; v < n; v++ {
			if nodeShard[v] != s {
				continue
			}
			for _, t := range g.Terms(graph.NodeID(v)) {
				kwOwned[g.Vocab().Name(t)]++
			}
		}
		if len(kwOwned) > 0 {
			info.KeywordOwned = kwOwned
		}
		cut.Graphs[s] = sg
		cut.Map.Shards = append(cut.Map.Shards, info)
	}
	cut.Map.index()
	return cut, nil
}

// buildShardGraph copies g restricted to the closure: all nodes exist (with
// their names and positions) but only closure nodes keep keywords, and only
// edges with both endpoints in the closure survive.
func buildShardGraph(g *graph.Graph, closure []bool) (*graph.Graph, ShardInfo, error) {
	// A fresh vocabulary interned in g's order reproduces g's exact Term
	// numbering without sharing the mutable vocabulary across graphs.
	vocab := graph.NewVocabulary()
	for _, name := range g.Vocab().Names() {
		vocab.Intern(name)
	}
	b := graph.NewBuilderWithVocab(vocab)

	n := g.NumNodes()
	keywords := make(map[string]struct{})
	closureCount := 0
	var kwScratch []string
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		kwScratch = kwScratch[:0]
		if closure[v] {
			closureCount++
			for _, t := range g.Terms(id) {
				name := g.Vocab().Name(t)
				kwScratch = append(kwScratch, name)
				keywords[name] = struct{}{}
			}
		}
		nv := b.AddNode(kwScratch...)
		if g.HasPositions() {
			if err := b.SetPosition(nv, g.Position(id)); err != nil {
				return nil, ShardInfo{}, err
			}
		}
		if name := g.Name(id); name != "" {
			if err := b.SetName(nv, name); err != nil {
				return nil, ShardInfo{}, err
			}
		}
	}
	edges := 0
	for v := 0; v < n; v++ {
		if !closure[v] {
			continue
		}
		for _, e := range g.Out(graph.NodeID(v)) {
			if !closure[e.To] {
				continue
			}
			if err := b.AddEdge(graph.NodeID(v), e.To, e.Objective, e.Budget); err != nil {
				return nil, ShardInfo{}, err
			}
			edges++
		}
	}
	sg, err := b.Build()
	if err != nil {
		return nil, ShardInfo{}, err
	}
	kws := make([]string, 0, len(keywords))
	for kw := range keywords {
		kws = append(kws, kw)
	}
	sort.Strings(kws)
	return sg, ShardInfo{
		Fingerprint: fmt.Sprintf("%016x", sg.Fingerprint()),
		Closure:     closureCount,
		Edges:       edges,
		Keywords:    kws,
	}, nil
}
