package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"kor/korapi"
)

// fakeStats is a stub /v1/stats backend with a settable fingerprint.
type fakeStats struct {
	mu  sync.Mutex
	fp  string
	gen uint64
	srv *httptest.Server
}

func newFakeStats(t *testing.T, fp string) *fakeStats {
	t.Helper()
	f := &fakeStats{fp: fp, gen: 1}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			http.NotFound(w, r)
			return
		}
		f.mu.Lock()
		snap := &korapi.Snapshot{Fingerprint: f.fp, Generation: f.gen}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(korapi.Stats{Snapshot: snap})
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeStats) set(fp string, gen uint64) {
	f.mu.Lock()
	f.fp = fp
	f.gen = gen
	f.mu.Unlock()
}

func poolOf(client *http.Client, expected string, urls ...string) *Pool {
	return NewPool(client, map[int][]string{0: urls}, map[int]string{0: expected})
}

func TestObserveResponseAcceptsExpectedAndHistory(t *testing.T) {
	p := poolOf(nil, "aaa", "http://r0")
	r := p.Replicas(0)[0]

	if !p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "aaa", Generation: 1}) {
		t.Fatal("expected fingerprint rejected")
	}
	if !p.ObserveResponse(r, nil) {
		t.Fatal("snapshot-free response rejected")
	}
	if p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "zzz", Generation: 2}) {
		t.Fatal("divergent fingerprint accepted")
	}

	// After a patch advances the expectation, a straggler response computed
	// on the previous snapshot is still accepted from the history.
	p.ApplyAdmin(0, []AdminResult{{Replica: r, Snapshot: &korapi.Snapshot{Fingerprint: "bbb", Generation: 2}}})
	if !p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "aaa", Generation: 1}) {
		t.Fatal("pre-patch straggler rejected — the fingerprint history must absorb the in-flight race")
	}
	if !p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "bbb", Generation: 2}) {
		t.Fatal("post-patch fingerprint rejected")
	}
}

func TestConfirmQuarantinesDivergedReplica(t *testing.T) {
	diverged := newFakeStats(t, "zzz")
	p := poolOf(diverged.srv.Client(), "aaa", diverged.srv.URL)
	r := p.Replicas(0)[0]

	// A query response off the accepted set triggers Confirm; the live
	// probe also reports the divergent fingerprint → quarantine.
	if p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "zzz", Generation: 5}) {
		t.Fatal("divergent response accepted")
	}
	p.Confirm(context.Background(), r)
	if p.QuarantinedReplicas() != 1 {
		t.Fatalf("quarantined = %d, want 1", p.QuarantinedReplicas())
	}
	if _, ok := p.Pick(0); ok {
		t.Fatal("Pick returned a quarantined replica")
	}

	// The replica converges back to the expected fingerprint; the next
	// probe readmits it.
	diverged.set("aaa", 6)
	p.ProbeAll(context.Background())
	if p.QuarantinedReplicas() != 0 {
		t.Fatalf("quarantined = %d after convergence, want 0", p.QuarantinedReplicas())
	}
	if _, ok := p.Pick(0); !ok {
		t.Fatal("Pick found no replica after readmission")
	}
}

func TestConfirmForgivesInFlightRace(t *testing.T) {
	// The response carried a stale fingerprint but the replica's live state
	// is already on the expected one: no quarantine.
	live := newFakeStats(t, "aaa")
	p := poolOf(live.srv.Client(), "aaa", live.srv.URL)
	r := p.Replicas(0)[0]

	if p.ObserveResponse(r, &korapi.Snapshot{Fingerprint: "old", Generation: 1}) {
		t.Fatal("stale response accepted")
	}
	p.Confirm(context.Background(), r)
	if p.QuarantinedReplicas() != 0 {
		t.Fatal("replica quarantined for a benign in-flight race")
	}
}

func TestProbeAllAdoptsUnanimousConsensus(t *testing.T) {
	// Router boots with a stale expectation but both replicas agree on the
	// live fingerprint: the consensus is adopted, nobody is quarantined.
	a := newFakeStats(t, "new")
	b := newFakeStats(t, "new")
	p := poolOf(a.srv.Client(), "stale", a.srv.URL, b.srv.URL)

	p.ProbeAll(context.Background())
	if p.QuarantinedReplicas() != 0 {
		t.Fatalf("quarantined = %d, want 0 — unanimous consensus must be adopted", p.QuarantinedReplicas())
	}
	if got := p.Expected(0); got != "new" {
		t.Fatalf("expected fingerprint %q, want the adopted consensus %q", got, "new")
	}
}

func TestProbeAllQuarantinesMinority(t *testing.T) {
	a := newFakeStats(t, "aaa")
	b := newFakeStats(t, "zzz")
	p := poolOf(a.srv.Client(), "aaa", a.srv.URL, b.srv.URL)

	p.ProbeAll(context.Background())
	if p.QuarantinedReplicas() != 1 {
		t.Fatalf("quarantined = %d, want 1 (the diverged replica)", p.QuarantinedReplicas())
	}
	// The healthy replica still serves.
	r, ok := p.Pick(0)
	if !ok || r.URL != a.srv.URL {
		t.Fatalf("Pick = %v/%v, want the consistent replica", r, ok)
	}
}

func TestApplyAdminConsensusAndReadmission(t *testing.T) {
	p := poolOf(nil, "aaa", "http://r0", "http://r1", "http://r2")
	rs := p.Replicas(0)

	// Patch lands on all three; r2 computes a different fingerprint.
	p.ApplyAdmin(0, []AdminResult{
		{Replica: rs[0], Snapshot: &korapi.Snapshot{Fingerprint: "bbb", Generation: 2}},
		{Replica: rs[1], Snapshot: &korapi.Snapshot{Fingerprint: "bbb", Generation: 2}},
		{Replica: rs[2], Snapshot: &korapi.Snapshot{Fingerprint: "ccc", Generation: 2}},
	})
	if got := p.Expected(0); got != "bbb" {
		t.Fatalf("expected = %q, want the majority fingerprint bbb", got)
	}
	if p.QuarantinedReplicas() != 1 {
		t.Fatalf("quarantined = %d, want 1", p.QuarantinedReplicas())
	}

	// The next patch converges everyone: full readmission.
	p.ApplyAdmin(0, []AdminResult{
		{Replica: rs[0], Snapshot: &korapi.Snapshot{Fingerprint: "ddd", Generation: 3}},
		{Replica: rs[1], Snapshot: &korapi.Snapshot{Fingerprint: "ddd", Generation: 3}},
		{Replica: rs[2], Snapshot: &korapi.Snapshot{Fingerprint: "ddd", Generation: 3}},
	})
	if p.QuarantinedReplicas() != 0 {
		t.Fatalf("quarantined = %d after convergence, want 0", p.QuarantinedReplicas())
	}
}

func TestApplyAdminFailedReplicaKeepsState(t *testing.T) {
	// A shard that rejects a delta consistently (all replicas fail) must not
	// be quarantined — it is still internally consistent.
	p := poolOf(nil, "aaa", "http://r0", "http://r1")
	rs := p.Replicas(0)
	reject := &korapi.Error{Code: korapi.CodeBadRequest, Message: "edge outside closure"}
	p.ApplyAdmin(0, []AdminResult{
		{Replica: rs[0], Err: reject},
		{Replica: rs[1], Err: reject},
	})
	if p.QuarantinedReplicas() != 0 {
		t.Fatal("consistently rejecting shard was quarantined")
	}
	if got := p.Expected(0); got != "aaa" {
		t.Fatalf("expected advanced to %q on an all-failed patch", got)
	}
}

func TestPickRoundRobinSkipsUnhealthy(t *testing.T) {
	p := poolOf(nil, "aaa", "http://r0", "http://r1")
	rs := p.Replicas(0)
	p.ObserveFailure(rs[0], context.DeadlineExceeded)
	for i := 0; i < 4; i++ {
		r, ok := p.Pick(0)
		if !ok || r.URL != "http://r1" {
			t.Fatalf("Pick #%d = %v/%v, want the healthy replica only", i, r, ok)
		}
	}
	// Recovery: a successful exchange restores it to the rotation.
	p.ObserveResponse(rs[0], nil)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		r, _ := p.Pick(0)
		seen[r.URL] = true
	}
	if len(seen) != 2 {
		t.Fatalf("round robin after recovery hit %v, want both replicas", seen)
	}
}

func TestClusterStatsShape(t *testing.T) {
	p := NewPool(nil, map[int][]string{
		0: {"http://a"},
		1: {"http://b", "http://c"},
	}, map[int]string{0: "f0", 1: "f1"})
	cs := p.ClusterStats()
	if cs.Replicas != 3 || len(cs.Shards) != 2 {
		t.Fatalf("stats %+v, want 3 replicas over 2 shards", cs)
	}
	if cs.Shards[0].Shard != 0 || cs.Shards[1].Shard != 1 {
		t.Fatalf("shards not ascending: %+v", cs.Shards)
	}
	if cs.Healthy != 3 || cs.Quarantined != 0 {
		t.Fatalf("boot state %+v, want all healthy", cs)
	}
}
