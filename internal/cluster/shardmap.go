// Package cluster implements the sharded serving tier behind korrouter: the
// shard map written by kordata -shard, the shard cut itself (grouping
// apsp partition regions into shards with a border halo), the
// scatter-gather merge that combines per-shard candidate routes under the
// core planner's ordering, and the replica pool that tracks backend health
// and snapshot fingerprints, quarantining replicas that diverge from their
// shard's consensus until they converge.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ShardMapVersion is the wire version of the shard map JSON file.
const ShardMapVersion = 1

// ShardMap describes one shard cut of a graph: which shard owns every node,
// what each shard's graph file contains, and enough full-graph summary for
// a router to answer /v1/stats without loading the unsharded graph.
type ShardMap struct {
	Version int `json:"version"`
	// FullFingerprint is the unsharded graph's fingerprint, 16 lowercase
	// hex digits.
	FullFingerprint string `json:"full_fingerprint"`
	// CellSize and Halo record the cut parameters.
	CellSize int `json:"cell_size"`
	Halo     int `json:"halo"`

	// Full-graph summary, served by korrouter's /v1/stats.
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Terms        int     `json:"terms"`
	MinObjective float64 `json:"min_objective"`
	MaxObjective float64 `json:"max_objective"`
	MinBudget    float64 `json:"min_budget"`
	MaxBudget    float64 `json:"max_budget"`

	// NodeShard maps node ID → owning shard ID.
	NodeShard []int `json:"node_shard"`
	// Shards describes each shard, ID ascending.
	Shards []ShardInfo `json:"shards"`

	// keywordShards maps keyword → sorted IDs of the shards whose closure
	// carries it; built lazily by index().
	keywordShards map[string][]int
}

// ShardInfo describes one shard of the cut.
type ShardInfo struct {
	ID int `json:"id"`
	// Graph is the shard's .korg file, relative to the shard map file.
	Graph string `json:"graph"`
	// Fingerprint is the shard graph's content digest, 16 lowercase hex
	// digits — the fingerprint every replica of this shard must serve at
	// boot.
	Fingerprint string `json:"fingerprint"`
	// Regions counts the partition cells grouped into this shard.
	Regions int `json:"regions"`
	// Owned counts the nodes this shard owns; Closure adds the halo.
	Owned   int `json:"owned"`
	Closure int `json:"closure"`
	// Edges counts the shard graph's edges (both endpoints in the closure).
	Edges int `json:"edges"`
	// Keywords lists the keywords present on closure nodes, sorted. A query
	// keyword outside this list can never match in this shard, so the
	// router's scatter set skips it.
	Keywords []string `json:"keywords"`
	// KeywordOwned counts, per keyword, the nodes carrying it that this
	// shard owns (halo nodes excluded). Ownership partitions the node set,
	// so summing a keyword's counts across shards yields its exact global
	// node count — shard-local /v1/keywords counts overlap on the halo and
	// can only bound it. Optional: maps written before this field report no
	// counts and readers must fall back (see OwnedKeywordCount).
	KeywordOwned map[string]int `json:"keyword_owned,omitempty"`
}

// Validate checks the map's internal consistency.
func (m *ShardMap) Validate() error {
	if m.Version != ShardMapVersion {
		return fmt.Errorf("cluster: shard map version %d, want %d", m.Version, ShardMapVersion)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: shard map has no shards")
	}
	if len(m.NodeShard) != m.Nodes {
		return fmt.Errorf("cluster: node_shard has %d entries for %d nodes", len(m.NodeShard), m.Nodes)
	}
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("cluster: shard %d carries ID %d (must be dense, ascending)", i, s.ID)
		}
	}
	for v, s := range m.NodeShard {
		if s < 0 || s >= len(m.Shards) {
			return fmt.Errorf("cluster: node %d assigned to unknown shard %d", v, s)
		}
	}
	return nil
}

// index builds the keyword → shards lookup. Not safe for concurrent first
// use; callers build it once at load time via LoadShardMap.
func (m *ShardMap) index() {
	m.keywordShards = make(map[string][]int)
	for _, s := range m.Shards {
		for _, kw := range s.Keywords {
			m.keywordShards[kw] = append(m.keywordShards[kw], s.ID)
		}
	}
}

// ScatterSet returns the shard IDs a query must fan out to: the shards
// whose closure carries every query keyword (only those can produce a
// candidate route). When no shard carries all keywords — the keywords span
// shards, or one is unknown — the set falls back to the shard owning the
// source node, whose replica classifies the query exactly (no_route vs
// unknown_keyword; every shard graph carries the full vocabulary).
func (m *ShardMap) ScatterSet(from, to int64, keywords []string) []int {
	if m.keywordShards == nil {
		m.index()
	}
	// Intersect the per-keyword shard lists.
	var caps []int
	for i, kw := range keywords {
		shards := m.keywordShards[kw]
		if i == 0 {
			caps = append(caps[:0], shards...)
		} else {
			caps = intersect(caps, shards)
		}
		if len(caps) == 0 {
			break
		}
	}
	if len(caps) > 0 {
		sort.Ints(caps)
		return caps
	}
	return []int{m.OwnerOf(from)}
}

// OwnedKeywordCount returns the exact global node count for a keyword by
// summing the shards' owned-node counts — ownership partitions the node set,
// so the sum has no halo double-counting. ok is false when the count is not
// knowable from the map: the map predates KeywordOwned, or the keyword was
// absent at cut time (e.g. added by a live patch); callers then fall back to
// merging the shards' live (lower-bound) counts.
func (m *ShardMap) OwnedKeywordCount(kw string) (n int, ok bool) {
	for i := range m.Shards {
		if c, present := m.Shards[i].KeywordOwned[kw]; present {
			n += c
			ok = true
		}
	}
	return n, ok
}

// OwnerOf returns the shard owning node id, falling back to shard 0 for IDs
// outside the map (the replica answers not_found/bad_request exactly).
func (m *ShardMap) OwnerOf(id int64) int {
	if id >= 0 && id < int64(len(m.NodeShard)) {
		return m.NodeShard[id]
	}
	return 0
}

// intersect returns the elements of a also present in b; both are sorted.
func intersect(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Save writes the map as JSON to path.
func (m *ShardMap) Save(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadShardMap reads, validates and indexes a shard map file.
func LoadShardMap(path string) (*ShardMap, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m ShardMap
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.index()
	return &m, nil
}
