package cluster

import (
	"testing"

	"kor/korapi"
)

func route(nodes []int64, objective, budget float64, feasible bool) korapi.Route {
	return korapi.Route{Nodes: nodes, Objective: objective, Budget: budget, Feasible: feasible}
}

func resp(routes ...korapi.Route) *korapi.Response {
	return &korapi.Response{Algorithm: "bucketbound", Routes: routes}
}

func TestMergeDedupesDuplicateSignatures(t *testing.T) {
	// Shards overlap on halo nodes: the same route comes back twice.
	shared := route([]int64{0, 3, 7}, 2.0, 5.0, true)
	g := []Gathered{
		{Shard: 0, Resp: resp(shared, route([]int64{0, 4, 7}, 2.5, 4.0, true))},
		{Shard: 1, Resp: resp(shared)},
	}
	out, apiErr, _ := Merge(5, g)
	if apiErr != nil {
		t.Fatalf("Merge error: %v", apiErr)
	}
	if len(out.Routes) != 2 {
		t.Fatalf("got %d routes, want 2 (duplicate signature not deduped): %+v", len(out.Routes), out.Routes)
	}
	if RouteKey(out.Routes[0]) == RouteKey(out.Routes[1]) {
		t.Fatalf("both merged routes share a signature")
	}
}

func TestMergeOrdersByObjective(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Resp: resp(
			route([]int64{0, 9, 1}, 7.0, 3.0, true),
			route([]int64{0, 8, 1}, 3.0, 9.0, false),
		)},
		{Shard: 1, Resp: resp(
			route([]int64{0, 5, 1}, 2.0, 4.0, true),
			route([]int64{0, 6, 1}, 5.0, 2.0, true),
		)},
	}
	out, apiErr, _ := Merge(10, g)
	if apiErr != nil {
		t.Fatalf("Merge error: %v", apiErr)
	}
	want := []float64{2.0, 5.0, 7.0, 3.0} // feasible ascending, then infeasible
	if len(out.Routes) != len(want) {
		t.Fatalf("got %d routes, want %d", len(out.Routes), len(want))
	}
	for i, obj := range want {
		if out.Routes[i].Objective != obj {
			t.Errorf("route %d objective = %v, want %v (order %+v)", i, out.Routes[i].Objective, obj, out.Routes)
		}
	}
	for i, r := range out.Routes[:3] {
		if !r.Feasible {
			t.Errorf("route %d infeasible before a feasible one", i)
		}
	}
}

func TestMergeKWhenShardsReturnFewer(t *testing.T) {
	// k=3 with one shard contributing 2 routes and another 2 more, one of
	// them a duplicate: exactly 3 distinct routes survive.
	dup := route([]int64{1, 2, 3}, 4.0, 1.0, true)
	g := []Gathered{
		{Shard: 0, Resp: resp(dup, route([]int64{1, 4, 3}, 5.0, 1.0, true))},
		{Shard: 1, Resp: resp(dup, route([]int64{1, 5, 3}, 6.0, 1.0, true))},
	}
	out, apiErr, _ := Merge(3, g)
	if apiErr != nil {
		t.Fatalf("Merge error: %v", apiErr)
	}
	if len(out.Routes) != 3 {
		t.Fatalf("got %d routes, want exactly k=3", len(out.Routes))
	}
	// And when the union is smaller than k, all of it comes back.
	out, _, _ = Merge(10, g)
	if len(out.Routes) != 3 {
		t.Fatalf("k=10 over 3 distinct routes: got %d", len(out.Routes))
	}
}

func TestMergeTrimsToK(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Resp: resp(
			route([]int64{0, 1}, 1.0, 1.0, true),
			route([]int64{0, 2}, 2.0, 1.0, true),
			route([]int64{0, 3}, 3.0, 1.0, true),
		)},
	}
	out, _, _ := Merge(0, g) // k ≤ 0 means one best route
	if len(out.Routes) != 1 || out.Routes[0].Objective != 1.0 {
		t.Fatalf("k=0: got %+v, want the single best route", out.Routes)
	}
}

func TestMergeRequestShapedErrorWins(t *testing.T) {
	bad := &korapi.Error{Code: korapi.CodeUnknownKeyword, Message: "no such keyword"}
	g := []Gathered{
		{Shard: 0, Resp: resp(route([]int64{0, 1}, 1.0, 1.0, true))},
		{Shard: 1, Err: bad},
	}
	_, apiErr, _ := Merge(1, g)
	if apiErr == nil || apiErr.Code != korapi.CodeUnknownKeyword {
		t.Fatalf("got %v, want unknown_keyword to propagate over candidates", apiErr)
	}
}

func TestMergeTransientOutranksNoRoute(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Err: &korapi.Error{Code: korapi.CodeNoRoute, Message: "no feasible route"}},
		{Shard: 1, Unavailable: true},
	}
	_, apiErr, retry := Merge(1, g)
	if apiErr == nil || apiErr.Code != korapi.CodeUnavailable {
		t.Fatalf("got %v, want unavailable (the dead shard might have held the route)", apiErr)
	}
	if retry < 1 {
		t.Fatalf("retry hint %d, want ≥ 1", retry)
	}
}

func TestMergeOverloadedCarriesMaxRetryAfter(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Err: &korapi.Error{Code: korapi.CodeOverloaded}, RetryAfter: 2},
		{Shard: 1, Err: &korapi.Error{Code: korapi.CodeOverloaded}, RetryAfter: 7},
	}
	_, apiErr, retry := Merge(1, g)
	if apiErr == nil || apiErr.Code != korapi.CodeOverloaded {
		t.Fatalf("got %v, want overloaded", apiErr)
	}
	if retry != 7 {
		t.Fatalf("retry = %d, want the max shard hint 7", retry)
	}
}

func TestMergeAllNoRoute(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Err: &korapi.Error{Code: korapi.CodeNoRoute, Message: "no feasible route"}},
		{Shard: 1, Err: &korapi.Error{Code: korapi.CodeNoRoute, Message: "no feasible route"}},
	}
	_, apiErr, _ := Merge(1, g)
	if apiErr == nil || apiErr.Code != korapi.CodeNoRoute {
		t.Fatalf("got %v, want no_route when every shard agrees", apiErr)
	}
}

func TestMergeCandidatesBeatOverload(t *testing.T) {
	g := []Gathered{
		{Shard: 0, Resp: resp(route([]int64{0, 1}, 1.0, 1.0, true))},
		{Shard: 1, Err: &korapi.Error{Code: korapi.CodeOverloaded}, RetryAfter: 3},
	}
	out, apiErr, _ := Merge(1, g)
	if apiErr != nil {
		t.Fatalf("got error %v, want the surviving candidate", apiErr)
	}
	if len(out.Routes) != 1 {
		t.Fatalf("got %d routes, want 1", len(out.Routes))
	}
}

func TestMergeWarningSuperseded(t *testing.T) {
	warn := &korapi.Error{Code: korapi.CodeBudgetExceeded, Message: "over budget"}
	infeasible := resp(route([]int64{0, 2, 1}, 1.0, 99.0, false))
	infeasible.Warning = warn

	// A feasible route from another shard supersedes the warning.
	out, _, _ := Merge(1, []Gathered{
		{Shard: 0, Resp: infeasible},
		{Shard: 1, Resp: resp(route([]int64{0, 3, 1}, 2.0, 1.0, true))},
	})
	if out.Warning != nil {
		t.Fatalf("warning survived a feasible merged best: %+v", out.Warning)
	}

	// With only infeasible candidates the warning stays.
	out, _, _ = Merge(1, []Gathered{{Shard: 0, Resp: infeasible}})
	if out.Warning == nil || out.Warning.Code != korapi.CodeBudgetExceeded {
		t.Fatalf("warning dropped from an infeasible merge: %+v", out.Warning)
	}
}

func TestMergeSumsMetricsAndKeepsMaxElapsed(t *testing.T) {
	a := resp(route([]int64{0, 1}, 1.0, 1.0, true))
	a.Metrics = &korapi.Metrics{LabelsCreated: 10}
	a.ElapsedMS = 4
	b := resp(route([]int64{0, 2, 1}, 2.0, 1.0, true))
	b.Metrics = &korapi.Metrics{LabelsCreated: 7}
	b.ElapsedMS = 9
	out, _, _ := Merge(2, []Gathered{{Shard: 0, Resp: a}, {Shard: 1, Resp: b}})
	if out.Metrics == nil || out.Metrics.LabelsCreated != 17 {
		t.Fatalf("metrics not summed: %+v", out.Metrics)
	}
	if out.ElapsedMS != 9 {
		t.Fatalf("elapsed = %v, want the slowest leg 9 (legs run concurrently)", out.ElapsedMS)
	}
}
