package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"kor/korapi"
)

// Replica pool: per-shard backend tracking. Every replica carries health
// (reachability) and a quarantine bit (fingerprint divergence); the scatter
// path picks round-robin among replicas that are both healthy and
// unquarantined.
//
// Consistency protocol. Each shard has an expected fingerprint — initially
// the shard graph's fingerprint from the shard map, advanced to the replica
// consensus after every replicated patch — plus a short history of recently
// accepted fingerprints. A query response whose fingerprint is in the
// accepted set (expected ∪ history) is served; the history absorbs the
// benign race where a response computed on the pre-patch snapshot arrives
// after the patch landed. A response outside the accepted set is discarded
// and the replica is probed synchronously: if its *current* /v1/stats
// fingerprint is also outside the set, the replica genuinely diverged (it
// was patched behind the router's back, or missed a patch) and is
// quarantined. Readmission is the mirror image: a probe or replicated
// patch observing the replica back on the expected fingerprint clears the
// quarantine.
const fingerprintHistory = 8

// Replica is one backend of one shard. All mutable state is guarded by the
// owning Pool's mutex; the exported fields are immutable.
type Replica struct {
	Shard int
	URL   string

	healthy     bool
	quarantined bool
	fingerprint string
	generation  uint64
	lastErr     string
}

// shardState is one shard's replica set and fingerprint expectation.
type shardState struct {
	id       int
	replicas []*Replica
	expected string
	history  []string // recently accepted fingerprints, oldest first
	rr       int
}

// accepted reports fp being the expected fingerprint or a recent ancestor.
func (s *shardState) accepted(fp string) bool {
	if fp == s.expected {
		return true
	}
	for _, h := range s.history {
		if h == fp {
			return true
		}
	}
	return false
}

// advance installs fp as the shard's expected fingerprint, retiring the old
// one into the bounded history.
func (s *shardState) advance(fp string) {
	if fp == s.expected || fp == "" {
		return
	}
	if s.expected != "" {
		s.history = append(s.history, s.expected)
		if len(s.history) > fingerprintHistory {
			s.history = s.history[len(s.history)-fingerprintHistory:]
		}
	}
	s.expected = fp
}

// Pool tracks every configured replica across shards.
type Pool struct {
	client *http.Client

	mu     sync.Mutex
	shards map[int]*shardState
}

// NewPool builds the pool. backends maps shard ID → replica base URLs;
// expected maps shard ID → the boot-time expected fingerprint (from the
// shard map). Replicas start healthy and unquarantined — the first probe or
// query corrects optimism.
func NewPool(client *http.Client, backends map[int][]string, expected map[int]string) *Pool {
	if client == nil {
		client = http.DefaultClient
	}
	p := &Pool{client: client, shards: make(map[int]*shardState)}
	for shard, urls := range backends {
		st := &shardState{id: shard, expected: expected[shard]}
		for _, u := range urls {
			st.replicas = append(st.replicas, &Replica{Shard: shard, URL: u, healthy: true})
		}
		p.shards[shard] = st
	}
	return p
}

// Shards returns the configured shard IDs, ascending.
func (p *Pool) Shards() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.shards))
	for id := range p.shards {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Replicas returns every replica of shard, configuration order. The slice
// is a copy; the *Replica handles are shared.
func (p *Pool) Replicas(shard int) []*Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.shards[shard]
	if st == nil {
		return nil
	}
	return append([]*Replica(nil), st.replicas...)
}

// Pick returns the next healthy, unquarantined replica of shard, round
// robin; ok is false when the whole shard is out.
func (p *Pool) Pick(shard int) (*Replica, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.shards[shard]
	if st == nil {
		return nil, false
	}
	for i := 0; i < len(st.replicas); i++ {
		r := st.replicas[st.rr%len(st.replicas)]
		st.rr++
		if r.healthy && !r.quarantined {
			return r, true
		}
	}
	return nil, false
}

// Expected returns shard's current expected fingerprint.
func (p *Pool) Expected(shard int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.shards[shard]; st != nil {
		return st.expected
	}
	return ""
}

// ObserveFailure records a transport failure talking to r.
func (p *Pool) ObserveFailure(r *Replica, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.healthy = false
	r.lastErr = err.Error()
}

// ObserveResponse records a successful exchange with r that reported snap
// (nil when the response carried no snapshot). It returns true when the
// response's fingerprint is in the shard's accepted set — serve it — and
// false when it diverged: discard the payload and call Confirm to decide
// quarantine against the replica's live state.
func (p *Pool) ObserveResponse(r *Replica, snap *korapi.Snapshot) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.healthy = true
	r.lastErr = ""
	if snap == nil {
		return true
	}
	r.fingerprint = snap.Fingerprint
	r.generation = snap.Generation
	return p.shards[r.Shard].accepted(snap.Fingerprint)
}

// Confirm re-probes r after a divergent response and quarantines it when
// its current fingerprint is also outside the accepted set. The probe runs
// without the pool lock; the verdict is applied under it.
func (p *Pool) Confirm(ctx context.Context, r *Replica) {
	snap, err := p.probe(ctx, r)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		r.healthy = false
		r.lastErr = err.Error()
		return
	}
	p.applyProbe(r, snap)
}

// ProbeAll probes every replica's /v1/stats once: refreshing health,
// quarantining replicas whose live fingerprint left the accepted set, and
// readmitting quarantined replicas that converged back to the expected
// fingerprint. When every healthy replica of a shard agrees on one
// fingerprint the router did not expect, the consensus is adopted as the
// new expectation — a router restarted with a stale shard map follows the
// cluster instead of quarantining all of it.
func (p *Pool) ProbeAll(ctx context.Context) {
	type verdict struct {
		r    *Replica
		snap *korapi.Snapshot
		err  error
	}
	p.mu.Lock()
	var all []*Replica
	for _, st := range p.shards {
		all = append(all, st.replicas...)
	}
	p.mu.Unlock()

	verdicts := make([]verdict, len(all))
	var wg sync.WaitGroup
	for i, r := range all {
		wg.Add(1)
		go func(i int, r *Replica) {
			defer wg.Done()
			snap, err := p.probe(ctx, r)
			verdicts[i] = verdict{r: r, snap: snap, err: err}
		}(i, r)
	}
	wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range verdicts {
		if v.err != nil {
			v.r.healthy = false
			v.r.lastErr = v.err.Error()
			continue
		}
		v.r.healthy = true
		v.r.lastErr = ""
		v.r.fingerprint = v.snap.Fingerprint
		v.r.generation = v.snap.Generation
	}
	for _, st := range p.shards {
		p.reconcileLocked(st)
	}
}

// applyProbe applies one replica's live snapshot under the pool lock.
func (p *Pool) applyProbe(r *Replica, snap *korapi.Snapshot) {
	r.healthy = true
	r.lastErr = ""
	r.fingerprint = snap.Fingerprint
	r.generation = snap.Generation
	st := p.shards[r.Shard]
	switch {
	case snap.Fingerprint == st.expected:
		r.quarantined = false
	case !st.accepted(snap.Fingerprint):
		r.quarantined = true
	}
}

// reconcileLocked settles one shard after fresh probes: adopt a unanimous
// unexpected fingerprint, then quarantine/readmit per replica.
func (p *Pool) reconcileLocked(st *shardState) {
	consensus := ""
	unanimous := true
	for _, r := range st.replicas {
		if !r.healthy || r.fingerprint == "" {
			continue
		}
		if consensus == "" {
			consensus = r.fingerprint
		} else if r.fingerprint != consensus {
			unanimous = false
		}
	}
	if unanimous && consensus != "" && consensus != st.expected {
		st.advance(consensus)
	}
	for _, r := range st.replicas {
		if !r.healthy || r.fingerprint == "" {
			continue
		}
		switch {
		case r.fingerprint == st.expected:
			r.quarantined = false
		case !st.accepted(r.fingerprint):
			r.quarantined = true
		}
	}
}

// AdminResult is one replica's outcome of a replicated patch.
type AdminResult struct {
	Replica  *Replica
	Snapshot *korapi.Snapshot // post-patch snapshot on success
	Err      *korapi.Error    // wire or transport failure
}

// ApplyAdmin settles a shard after a replicated patch. The post-patch
// fingerprints are definitive (no in-flight race: each replica reported the
// snapshot its patch installed), so the majority fingerprint among
// successful replicas becomes the shard's new expectation; successful
// replicas on it are (re)admitted and successful replicas off it are
// quarantined. Failed replicas keep their previous state — a shard whose
// every replica rejected the delta identically (say, an edge outside this
// shard's closure) stays consistent and unquarantined.
func (p *Pool) ApplyAdmin(shard int, results []AdminResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.shards[shard]
	if st == nil {
		return
	}
	counts := make(map[string]int)
	for _, res := range results {
		if res.Err == nil && res.Snapshot != nil {
			counts[res.Snapshot.Fingerprint]++
		}
	}
	consensus := ""
	best := 0
	for _, res := range results { // iterate results, not the map: deterministic tie-break by replica order
		if res.Err != nil || res.Snapshot == nil {
			continue
		}
		fp := res.Snapshot.Fingerprint
		if counts[fp] > best {
			best = counts[fp]
			consensus = fp
		}
	}
	if consensus != "" {
		st.advance(consensus)
	}
	for _, res := range results {
		r := res.Replica
		if res.Err != nil {
			r.lastErr = res.Err.Message
			continue
		}
		r.healthy = true
		r.lastErr = ""
		r.fingerprint = res.Snapshot.Fingerprint
		r.generation = res.Snapshot.Generation
		r.quarantined = res.Snapshot.Fingerprint != st.expected
	}
}

// probe fetches a replica's /v1/stats snapshot.
func (p *Pool) probe(ctx context.Context, r *Replica) (*korapi.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("probe %s: status %d", r.URL, resp.StatusCode)
	}
	var st korapi.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("probe %s: %w", r.URL, err)
	}
	if st.Snapshot == nil {
		return nil, fmt.Errorf("probe %s: stats carry no snapshot", r.URL)
	}
	return st.Snapshot, nil
}

// ClusterStats exports the pool state as the /v1/stats cluster block.
func (p *Pool) ClusterStats() korapi.ClusterStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int, 0, len(p.shards))
	for id := range p.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := korapi.ClusterStats{}
	for _, id := range ids {
		st := p.shards[id]
		ss := korapi.ShardStats{Shard: id, ExpectedFingerprint: st.expected}
		for _, r := range st.replicas {
			out.Replicas++
			if r.quarantined {
				out.Quarantined++
			} else if r.healthy {
				out.Healthy++
			}
			ss.Replicas = append(ss.Replicas, korapi.ReplicaStats{
				URL:         r.URL,
				Healthy:     r.healthy,
				Quarantined: r.quarantined,
				Fingerprint: r.fingerprint,
				Generation:  r.generation,
				LastError:   r.lastErr,
			})
		}
		out.Shards = append(out.Shards, ss)
	}
	return out
}

// QuarantinedReplicas counts replicas currently shed from the scatter set
// for fingerprint divergence.
func (p *Pool) QuarantinedReplicas() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.shards {
		for _, r := range st.replicas {
			if r.quarantined {
				n++
			}
		}
	}
	return n
}

// UnhealthyReplicas counts replicas currently unreachable.
func (p *Pool) UnhealthyReplicas() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.shards {
		for _, r := range st.replicas {
			if !r.healthy {
				n++
			}
		}
	}
	return n
}
