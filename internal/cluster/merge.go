package cluster

import (
	"sort"

	"kor/korapi"
)

// Scatter-gather merge. Each shard replica answers a query against its own
// closure graph; the router combines the per-shard outcomes into one wire
// response. Candidate routes are deduplicated by their node-sequence
// signature (shards overlap on halo nodes, so the same route can come back
// from several shards), ordered the way the core planner orders results —
// feasible first, then best objective, budget as the tie-break — and
// trimmed to k. Error outcomes merge by precedence: request-shaped errors
// (the request itself is wrong, identically on every shard) propagate
// immediately; otherwise any candidate wins; otherwise transient failures
// (overloaded, unavailable, deadline) outrank no_route, because a shard
// that shed or vanished might have held the route.

// Gathered is one shard's outcome of a scattered query.
type Gathered struct {
	// Shard is the shard the outcome came from.
	Shard int
	// Resp is the decoded 200 response; nil on any failure.
	Resp *korapi.Response
	// Err is the decoded wire error; nil when Resp is set or the failure
	// was transport-level.
	Err *korapi.Error
	// Unavailable marks transport failures, quarantine discards and shards
	// with no eligible replica — outcomes with no wire classification.
	Unavailable bool
	// RetryAfter is the Retry-After hint in seconds carried by a 429/503
	// reply, 0 when absent.
	RetryAfter int
}

// RouteKey returns the dedup signature of a wire route: FNV-1a over the
// node sequence, the same construction the core planner uses for its
// route-signature dedup.
func RouteKey(r korapi.Route) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range r.Nodes {
		h = (h ^ uint64(v)) * prime
	}
	return h
}

// requestShaped reports error codes that depend only on the request, never
// on which shard answered: every shard parses identically and every shard
// graph carries the full vocabulary, so the first such error is THE answer.
func requestShaped(code korapi.ErrorCode) bool {
	switch code {
	case korapi.CodeBadRequest, korapi.CodeUnknownAlgorithm, korapi.CodeUnknownKeyword, korapi.CodeNotFound:
		return true
	}
	return false
}

// Merge combines the gathered per-shard outcomes of one query. k is the
// request's K (≤ 0 means one best route). Exactly one of the returned
// response and error is non-nil; retryAfter carries the Retry-After hint
// (seconds) for overloaded/unavailable errors, 0 otherwise.
func Merge(k int, gathered []Gathered) (*korapi.Response, *korapi.Error, int) {
	if k <= 0 {
		k = 1
	}
	var (
		candidates  []*korapi.Response
		overloaded  bool
		unavailable bool
		deadline    bool
		canceled    bool
		searchLim   *korapi.Error
		internal    *korapi.Error
		noRoute     *korapi.Error
		retryAfter  int
	)
	for _, ga := range gathered {
		switch {
		case ga.Resp != nil && len(ga.Resp.Routes) > 0:
			candidates = append(candidates, ga.Resp)
		case ga.Resp != nil:
			// A 200 with no routes — nothing to contribute.
		case ga.Err != nil:
			if requestShaped(ga.Err.Code) {
				return nil, ga.Err, 0
			}
			switch ga.Err.Code {
			case korapi.CodeOverloaded:
				overloaded = true
				if ga.RetryAfter > retryAfter {
					retryAfter = ga.RetryAfter
				}
			case korapi.CodeUnavailable:
				unavailable = true
				if ga.RetryAfter > retryAfter {
					retryAfter = ga.RetryAfter
				}
			case korapi.CodeDeadline:
				deadline = true
			case korapi.CodeCanceled:
				canceled = true
			case korapi.CodeSearchLimit:
				if searchLim == nil {
					searchLim = ga.Err
				}
			case korapi.CodeNoRoute:
				if noRoute == nil {
					noRoute = ga.Err
				}
			default:
				if internal == nil {
					internal = ga.Err
				}
			}
		default:
			unavailable = true
			if ga.RetryAfter > retryAfter {
				retryAfter = ga.RetryAfter
			}
		}
	}

	if len(candidates) > 0 {
		return mergeCandidates(k, candidates), nil, 0
	}

	if retryAfter == 0 {
		retryAfter = 1
	}
	switch {
	case overloaded:
		return nil, &korapi.Error{
			Code:    korapi.CodeOverloaded,
			Message: "shard backends are at their in-flight limit; retry after backoff",
		}, retryAfter
	case unavailable, internal != nil:
		// A shard that failed outright might have held the route: answer
		// retryable unavailability, never a silent no_route — and never a
		// bare 502.
		return nil, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: "no shard backend could answer; retry after backoff",
		}, retryAfter
	case deadline:
		return nil, &korapi.Error{Code: korapi.CodeDeadline, Message: "search deadline exceeded"}, 0
	case canceled:
		return nil, &korapi.Error{Code: korapi.CodeCanceled, Message: "search canceled"}, 0
	case searchLim != nil:
		return nil, searchLim, 0
	case noRoute != nil:
		return nil, noRoute, 0
	default:
		return nil, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: "no shard backend could answer; retry after backoff",
		}, retryAfter
	}
}

// mergeCandidates dedups, orders and trims the candidate routes.
func mergeCandidates(k int, candidates []*korapi.Response) *korapi.Response {
	out := &korapi.Response{
		Algorithm: candidates[0].Algorithm,
		Bound:     candidates[0].Bound,
	}
	seen := make(map[uint64]struct{})
	for _, c := range candidates {
		if c.ElapsedMS > out.ElapsedMS {
			// Scatter legs run concurrently: the slowest shard is the
			// honest search time.
			out.ElapsedMS = c.ElapsedMS
		}
		if c.Metrics != nil {
			if out.Metrics == nil {
				out.Metrics = &korapi.Metrics{}
			}
			addMetrics(out.Metrics, c.Metrics)
		}
		for _, r := range c.Routes {
			key := RouteKey(r)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out.Routes = append(out.Routes, r)
		}
	}
	sort.SliceStable(out.Routes, func(i, j int) bool {
		a, b := out.Routes[i], out.Routes[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Objective != b.Objective {
			return a.Objective < b.Objective
		}
		return a.Budget < b.Budget
	})
	if len(out.Routes) > k {
		out.Routes = out.Routes[:k]
	}
	// A warning (greedy budget overshoot) survives only if the merged best
	// is still infeasible — another shard's feasible route supersedes it.
	if !out.Routes[0].Feasible {
		for _, c := range candidates {
			if c.Warning != nil {
				out.Warning = c.Warning
				break
			}
		}
	}
	return out
}

// addMetrics accumulates src into dst field by field.
func addMetrics(dst, src *korapi.Metrics) {
	dst.LabelsCreated += src.LabelsCreated
	dst.LabelsEnqueued += src.LabelsEnqueued
	dst.LabelsDequeued += src.LabelsDequeued
	dst.PrunedBudget += src.PrunedBudget
	dst.PrunedBound += src.PrunedBound
	dst.PrunedStrategy2 += src.PrunedStrategy2
	dst.Dominated += src.Dominated
	dst.DominatedSwept += src.DominatedSwept
	dst.ShortcutLabels += src.ShortcutLabels
	dst.Feasible += src.Feasible
	dst.PeakQueue += src.PeakQueue
	dst.PlanSweeps += src.PlanSweeps
}
