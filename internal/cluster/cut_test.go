package cluster

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"kor"
)

func testGraph(t *testing.T, nodes int) *kor.Graph {
	t.Helper()
	return kor.SyntheticRoadNetwork(2012, nodes)
}

// TestCutFullHaloEquivalence: with a halo deeper than the graph, every
// shard's closure is the whole graph — so every shard graph must be
// bit-identical to the original (same fingerprint), which is what makes the
// full-halo configuration a ground-truth oracle for router tests.
func TestCutFullHaloEquivalence(t *testing.T) {
	g := testGraph(t, 120)
	full := fmt.Sprintf("%016x", g.Fingerprint())
	cut, err := CutGraph(g, CutConfig{Shards: 2, CellSize: 16, Halo: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Graphs) != 2 {
		t.Fatalf("got %d shards, want 2", len(cut.Graphs))
	}
	for i, info := range cut.Map.Shards {
		if info.Fingerprint != full {
			t.Errorf("shard %d fingerprint %s != full graph %s under an exhaustive halo", i, info.Fingerprint, full)
		}
		if info.Closure != g.NumNodes() {
			t.Errorf("shard %d closure %d != %d nodes", i, info.Closure, g.NumNodes())
		}
	}
	if cut.Map.FullFingerprint != full {
		t.Errorf("map full fingerprint %s != %s", cut.Map.FullFingerprint, full)
	}
}

func TestCutShardInvariants(t *testing.T) {
	g := testGraph(t, 150)
	cut, err := CutGraph(g, CutConfig{Shards: 3, CellSize: 12, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := cut.Map
	if err := m.Validate(); err != nil {
		t.Fatalf("cut produced an invalid map: %v", err)
	}
	if len(m.NodeShard) != g.NumNodes() {
		t.Fatalf("node_shard has %d entries for %d nodes", len(m.NodeShard), g.NumNodes())
	}
	owned := 0
	for _, info := range m.Shards {
		owned += info.Owned
		if info.Closure < info.Owned {
			t.Errorf("shard %d closure %d < owned %d", info.ID, info.Closure, info.Owned)
		}
	}
	if owned != g.NumNodes() {
		t.Errorf("shards own %d nodes in total, want %d (ownership must partition)", owned, g.NumNodes())
	}
	// Owned keyword counts must sum to the full graph's document
	// frequencies — the invariant the router's exact /v1/keywords merge
	// rests on.
	wantDF := make(map[string]int)
	for v := 0; v < g.NumNodes(); v++ {
		for _, term := range g.Terms(kor.NodeID(v)) {
			wantDF[g.Vocab().Name(term)]++
		}
	}
	for kw, want := range wantDF {
		got, ok := m.OwnedKeywordCount(kw)
		if !ok || got != want {
			t.Errorf("OwnedKeywordCount(%q) = %d,%v, want %d", kw, got, ok, want)
		}
	}
	if _, ok := m.OwnedKeywordCount("no-such-keyword"); ok {
		t.Error("OwnedKeywordCount claims to know a keyword absent from the cut")
	}
	for i, sg := range cut.Graphs {
		// Full node set: global IDs are valid verbatim on every shard.
		if sg.NumNodes() != g.NumNodes() {
			t.Errorf("shard %d graph has %d nodes, want the full %d", i, sg.NumNodes(), g.NumNodes())
		}
		if sg.NumEdges() > g.NumEdges() {
			t.Errorf("shard %d has %d edges, more than the original %d", i, sg.NumEdges(), g.NumEdges())
		}
		// Identical term numbering: a keyword unknown to one shard is
		// unknown to all, and known keywords keep their IDs.
		if sg.Vocab().Len() != g.Vocab().Len() {
			t.Errorf("shard %d vocabulary has %d terms, want %d", i, sg.Vocab().Len(), g.Vocab().Len())
		}
		for ti, name := range g.Vocab().Names() {
			if got := sg.Vocab().Name(kor.Term(ti)); got != name {
				t.Fatalf("shard %d term %d is %q, want %q — term numbering diverged", i, ti, got, name)
			}
		}
	}
}

func TestScatterSetSelection(t *testing.T) {
	m := &ShardMap{
		Version:   ShardMapVersion,
		Nodes:     4,
		NodeShard: []int{0, 0, 1, 1},
		Shards: []ShardInfo{
			{ID: 0, Keywords: []string{"bar", "cafe"}},
			{ID: 1, Keywords: []string{"cafe", "fuel"}},
		},
	}
	m.index()

	cases := []struct {
		keywords []string
		from     int64
		want     []int
	}{
		{[]string{"cafe"}, 0, []int{0, 1}},     // both shards carry it
		{[]string{"bar"}, 2, []int{0}},         // only shard 0
		{[]string{"bar", "cafe"}, 2, []int{0}}, // intersection
		{[]string{"bar", "fuel"}, 2, []int{1}}, // empty intersection → owner of from
		{[]string{"nope"}, 1, []int{0}},        // unknown keyword → owner classifies
		{nil, 3, []int{1}},                     // no keywords → owner of from
	}
	for _, c := range cases {
		got := m.ScatterSet(c.from, 0, c.keywords)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ScatterSet(from=%d, %v) = %v, want %v", c.from, c.keywords, got, c.want)
		}
	}
}

func TestShardMapRoundTrip(t *testing.T) {
	g := testGraph(t, 80)
	cut, err := CutGraph(g, CutConfig{Shards: 2, CellSize: 10, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cut.Map.Shards {
		cut.Map.Shards[i].Graph = fmt.Sprintf("g.shard%d.korg", i)
	}
	path := filepath.Join(t.TempDir(), "g.shardmap.json")
	if err := cut.Map.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FullFingerprint != cut.Map.FullFingerprint ||
		loaded.Nodes != cut.Map.Nodes || loaded.Edges != cut.Map.Edges ||
		loaded.Halo != cut.Map.Halo || len(loaded.Shards) != len(cut.Map.Shards) {
		t.Fatalf("round trip changed the map: %+v vs %+v", loaded, cut.Map)
	}
	if !reflect.DeepEqual(loaded.NodeShard, cut.Map.NodeShard) {
		t.Fatalf("round trip changed node ownership")
	}
	for i := range loaded.Shards {
		if !reflect.DeepEqual(loaded.Shards[i], cut.Map.Shards[i]) {
			t.Fatalf("round trip changed shard %d: %+v vs %+v", i, loaded.Shards[i], cut.Map.Shards[i])
		}
	}
	// The loaded map scatters identically.
	if len(loaded.Shards[0].Keywords) == 0 {
		t.Fatal("shard 0 carries no keywords — synthetic generator changed?")
	}
	kw := loaded.Shards[0].Keywords[0]
	if got, want := loaded.ScatterSet(0, 0, []string{kw}), cut.Map.ScatterSet(0, 0, []string{kw}); !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded map scatters %v, original %v", got, want)
	}
}

func TestCutRejectsBadConfig(t *testing.T) {
	g := testGraph(t, 30)
	if _, err := CutGraph(g, CutConfig{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := CutGraph(g, CutConfig{Shards: 2, Halo: -1}); err == nil {
		t.Error("negative halo accepted")
	}
}

// TestCutClampsShards: asking for more shards than partition cells clamps
// rather than emitting empty shards.
func TestCutClampsShards(t *testing.T) {
	g := testGraph(t, 20)
	cut, err := CutGraph(g, CutConfig{Shards: 1000, CellSize: 10, Halo: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range cut.Map.Shards {
		if info.Owned == 0 {
			t.Fatalf("shard %d owns no nodes", info.ID)
		}
	}
}
