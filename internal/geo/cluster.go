package geo

import "sort"

// GridClusterer groups points into clusters by snapping them onto a square
// grid. The paper follows Kurashima et al. and clusters the 1.5M Flickr
// photos into a few thousand locations; a fixed-pitch grid is the standard
// way to do that at city scale and keeps the pipeline deterministic, which
// the tests rely on.
//
// The zero value is not usable; construct with NewGridClusterer.
type GridClusterer struct {
	origin Point
	pitch  float64
}

// NewGridClusterer builds a clusterer over cells of the given pitch
// (coordinate units per cell side) anchored at origin. It panics if pitch is
// not positive, which would make every point collide into one cell.
func NewGridClusterer(origin Point, pitch float64) *GridClusterer {
	if pitch <= 0 {
		panic("geo: grid pitch must be positive")
	}
	return &GridClusterer{origin: origin, pitch: pitch}
}

// CellKey identifies one grid cell.
type CellKey struct {
	Col int
	Row int
}

// Cell returns the key of the cell containing p.
func (g *GridClusterer) Cell(p Point) CellKey {
	return CellKey{
		Col: int((p.X - g.origin.X) / g.pitch),
		Row: int((p.Y - g.origin.Y) / g.pitch),
	}
}

// Cluster is a group of input points that fell into the same cell.
type Cluster struct {
	Key      CellKey
	Centroid Point
	Members  []int // indices into the input slice, ascending
}

// Cluster groups the points and returns the clusters holding at least
// minMembers points. Clusters are ordered by (Col, Row) so the output is
// stable across runs.
func (g *GridClusterer) Cluster(points []Point, minMembers int) []Cluster {
	if minMembers < 1 {
		minMembers = 1
	}
	cells := make(map[CellKey][]int)
	for i, p := range points {
		k := g.Cell(p)
		cells[k] = append(cells[k], i)
	}
	out := make([]Cluster, 0, len(cells))
	for k, members := range cells {
		if len(members) < minMembers {
			continue
		}
		var cx, cy float64
		for _, i := range members {
			cx += points[i].X
			cy += points[i].Y
		}
		n := float64(len(members))
		out = append(out, Cluster{
			Key:      k,
			Centroid: Point{X: cx / n, Y: cy / n},
			Members:  members,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Col != out[j].Key.Col {
			return out[i].Key.Col < out[j].Key.Col
		}
		return out[i].Key.Row < out[j].Key.Row
	})
	return out
}
