package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclideanBasics(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Euclidean(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("Euclidean = %f, want 5", d)
	}
	if d := a.Euclidean(a); d != 0 {
		t.Errorf("self distance = %f, want 0", d)
	}
}

func TestCityDistanceMatchesHaversine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := NewYorkCity.Lerp(rng.Float64(), rng.Float64())
		q := NewYorkCity.Lerp(rng.Float64(), rng.Float64())
		fast := p.CityDistanceKm(q)
		ref := p.HaversineKm(q)
		// At NYC scale the equirectangular error should be far below 0.5%.
		if diff := math.Abs(fast - ref); diff > 0.005*ref+1e-6 {
			t.Fatalf("CityDistanceKm(%v,%v) = %f, haversine %f (diff %f)", p, q, fast, ref, diff)
		}
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Times Square to JFK airport is roughly 20.8 km great-circle.
	timesSquare := Point{X: -73.9855, Y: 40.7580}
	jfk := Point{X: -73.7781, Y: 40.6413}
	d := timesSquare.HaversineKm(jfk)
	if d < 19 || d < 0 || d > 23 {
		t.Errorf("Times Square to JFK = %f km, want ~21", d)
	}
}

// Property: Euclidean is a metric (symmetry, identity, triangle inequality).
func TestEuclideanMetricProperty(t *testing.T) {
	gen := func(r *rand.Rand) Point {
		return Point{X: r.Float64()*200 - 100, Y: r.Float64()*200 - 100}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if math.Abs(a.Euclidean(b)-b.Euclidean(a)) > 1e-9 {
			t.Fatal("not symmetric")
		}
		if a.Euclidean(b)+b.Euclidean(c) < a.Euclidean(c)-1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestRectNormalizationAndContains(t *testing.T) {
	r := NewRect(Point{5, 7}, Point{1, 2})
	if r.Min.X != 1 || r.Min.Y != 2 || r.Max.X != 5 || r.Max.Y != 7 {
		t.Fatalf("NewRect did not normalize: %+v", r)
	}
	if !r.Contains(Point{3, 4}) {
		t.Error("Contains(interior) = false")
	}
	if !r.Contains(Point{1, 2}) || !r.Contains(Point{5, 7}) {
		t.Error("Contains(corner) = false, edges should be inclusive")
	}
	if r.Contains(Point{0, 4}) || r.Contains(Point{3, 8}) {
		t.Error("Contains(exterior) = true")
	}
}

func TestRectLerpCorners(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 20})
	if p := r.Lerp(0, 0); p != r.Min {
		t.Errorf("Lerp(0,0) = %v", p)
	}
	if p := r.Lerp(1, 1); p != r.Max {
		t.Errorf("Lerp(1,1) = %v", p)
	}
	if p := r.Lerp(0.5, 0.5); p != r.Center() {
		t.Errorf("Lerp(0.5,0.5) = %v, center %v", p, r.Center())
	}
}

// Property: Lerp with fractions in [0,1] always lands inside the rect.
func TestLerpInsideProperty(t *testing.T) {
	f := func(fx, fy float64) bool {
		fx = math.Abs(math.Mod(fx, 1))
		fy = math.Abs(math.Mod(fy, 1))
		return NewYorkCity.Contains(NewYorkCity.Lerp(fx, fy))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridClustererGroups(t *testing.T) {
	g := NewGridClusterer(Point{0, 0}, 1.0)
	pts := []Point{
		{0.1, 0.1}, {0.2, 0.3}, {0.9, 0.9}, // cell (0,0)
		{1.5, 0.5}, // cell (1,0)
		{2.5, 2.5}, // cell (2,2)
	}
	clusters := g.Cluster(pts, 1)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	if got := len(clusters[0].Members); got != 3 {
		t.Errorf("first cluster has %d members, want 3", got)
	}
	c := clusters[0].Centroid
	if math.Abs(c.X-0.4) > 1e-9 || math.Abs(c.Y-13.0/30) > 1e-9 {
		t.Errorf("centroid = %v", c)
	}
}

func TestGridClustererMinMembers(t *testing.T) {
	g := NewGridClusterer(Point{0, 0}, 1.0)
	pts := []Point{{0.5, 0.5}, {0.6, 0.6}, {5.5, 5.5}}
	clusters := g.Cluster(pts, 2)
	if len(clusters) != 1 {
		t.Fatalf("got %d clusters, want 1 (singleton filtered)", len(clusters))
	}
}

func TestGridClustererDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	g := NewGridClusterer(Point{0, 0}, 1.0)
	a := g.Cluster(pts, 1)
	b := g.Cluster(pts, 1)
	if len(a) != len(b) {
		t.Fatal("cluster count differs between runs")
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("cluster order differs at %d: %v vs %v", i, a[i].Key, b[i].Key)
		}
	}
}

func TestGridClustererPanicsOnBadPitch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGridClusterer(pitch=0) did not panic")
		}
	}()
	NewGridClusterer(Point{}, 0)
}

// Property: every input point lands in exactly one cluster when minMembers=1.
func TestClusterPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		g := NewGridClusterer(Point{0, 0}, 0.5+rng.Float64()*3)
		seen := make(map[int]bool)
		for _, c := range g.Cluster(pts, 1) {
			for _, m := range c.Members {
				if seen[m] {
					t.Fatalf("point %d in two clusters", m)
				}
				seen[m] = true
				if g.Cell(pts[m]) != c.Key {
					t.Fatalf("point %d in wrong cell", m)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("partition lost points: %d of %d", len(seen), n)
		}
	}
}
