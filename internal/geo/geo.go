// Package geo supplies the small geographic substrate the KOR datasets are
// built on: points, distance measures and bounding boxes.
//
// The paper's Flickr pipeline works in latitude/longitude over New York City
// and uses Euclidean distance between locations as the edge budget value; the
// synthetic road networks use plain planar coordinates. Both views are
// provided here.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0088

// Point is a position. For city-scale data X is the longitude and Y the
// latitude, in degrees; for abstract planar graphs X and Y are kilometres.
type Point struct {
	X float64
	Y float64
}

// Euclidean returns the straight-line distance between p and q in the units
// of the coordinates.
func (p Point) Euclidean(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// CityDistanceKm approximates the ground distance in kilometres between two
// lat/lon points using an equirectangular projection. At city scale (tens of
// kilometres) the error versus great-circle distance is far below the noise
// in the data, and the projection keeps the measure a true metric, which the
// budget scores rely on.
func (p Point) CityDistanceKm(q Point) float64 {
	latMid := (p.Y + q.Y) / 2 * math.Pi / 180
	kmPerLon := math.Cos(latMid) * EarthRadiusKm * math.Pi / 180
	const kmPerLat = EarthRadiusKm * math.Pi / 180
	dx := (p.X - q.X) * kmPerLon
	dy := (p.Y - q.Y) * kmPerLat
	return math.Sqrt(dx*dx + dy*dy)
}

// HaversineKm returns the great-circle distance in kilometres between two
// lat/lon points. It is the reference implementation CityDistanceKm is tested
// against.
func (p Point) HaversineKm(q Point) float64 {
	lat1 := p.Y * math.Pi / 180
	lat2 := q.Y * math.Pi / 180
	dLat := lat2 - lat1
	dLon := (q.X - p.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// String renders the point for logs and test failures.
func (p Point) String() string { return fmt.Sprintf("(%.5f,%.5f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and Max
// the upper-right corner.
type Rect struct {
	Min Point
	Max Point
}

// NewRect normalizes the two corners so Min ≤ Max on both axes.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Contains reports whether p lies inside the rectangle (inclusive edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Lerp returns the point at fraction (fx, fy) across the rectangle, with
// (0,0) at Min and (1,1) at Max.
func (r Rect) Lerp(fx, fy float64) Point {
	return Point{X: r.Min.X + fx*r.Width(), Y: r.Min.Y + fy*r.Height()}
}

// NewYorkCity is the bounding box of the paper's study region.
var NewYorkCity = Rect{
	Min: Point{X: -74.05, Y: 40.60},
	Max: Point{X: -73.75, Y: 40.90},
}

// Manhattan is the dense core of the study region (~7.6 km × 13.3 km),
// where geo-tagged photos actually concentrate. The synthetic Flickr-like
// dataset defaults to it so that hop lengths sit in the few-hundred-metre
// range and the paper's Δ = 3–15 km budget sweep spans infeasible-to-easy,
// as it does on the real data.
var Manhattan = Rect{
	Min: Point{X: -74.02, Y: 40.70},
	Max: Point{X: -73.93, Y: 40.82},
}
