// Package rescache provides the bounded, sharded LRU cache behind the
// engine's query-result caching. Keys are opaque canonical strings; sharding
// by key hash keeps lock contention flat when many goroutines serve
// overlapping query streams, the workload korserve sees. Values are stored
// and returned by value — the caller is responsible for handing out copies
// of any shared internals (the engine clones routes on both store and hit).
package rescache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount is the fixed number of independently locked shards. A power of
// two so the hash folds cheaply.
const shardCount = 8

// Cache is a sharded LRU cache from string keys to values of type V. The
// zero value is not usable; call New.
type Cache[V any] struct {
	shards [shardCount]shard[V]
	// capacity is the total bound, distributed evenly across shards (rounded
	// up, so the effective bound is capacity rounded up to a multiple of
	// shardCount).
	capacity int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache bounded to roughly capacity entries (rounded up to a
// multiple of the shard count). capacity must be positive.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache[V]{capacity: capacity}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// fnv1a hashes the key for shard selection.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

func (c *Cache[V]) perShard() int {
	return (c.capacity + shardCount - 1) / shardCount
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val V
	if ok {
		s.order.MoveToFront(el)
		// Copy the value while still holding the lock: Put refreshes
		// existing entries in place, so reading after Unlock would race.
		val = el.Value.(*entry[V]).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return val, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores the value for key, evicting the shard's least recently used
// entry when full. Storing an existing key refreshes its value and recency.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = v
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.order.Len() >= c.perShard() {
		if back := s.order.Back(); back != nil {
			s.order.Remove(back)
			delete(s.items, back.Value.(*entry[V]).key)
			evicted = true
		}
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, val: v})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Clear drops every entry. The engine calls it on a snapshot swap: the old
// graph's entries can never be hit again (the fingerprint in every key
// changed), so keeping them would only squat LRU capacity until natural
// eviction. The drops are deliberately NOT counted as evictions — that
// counter measures capacity pressure, the signal operators size the cache
// by, and a flush says nothing about capacity.
func (c *Cache[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order = list.New()
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int
	Capacity  int
}

// Stats snapshots the cache counters. Hits and misses are monotonically
// increasing across the cache's lifetime.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
