package rescache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New[int](shardCount) // one slot per shard
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got (%v,%v), want (1,true)", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: got %v", v)
	}

	// Overfill one shard: the oldest key of that shard must be evicted.
	keys := []string{}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv1a(k)&(shardCount-1) == 0 {
			keys = append(keys, k)
			c.Put(k, i)
		}
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("oldest entry of a full shard survived eviction")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Error("newest entry was evicted")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("eviction counter not incremented")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New[string](64)
	c.Put("x", "v")
	c.Get("x")
	c.Get("x")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if st.Size != 1 {
		t.Fatalf("size=%d, want 1", st.Size)
	}
	if st.Capacity != 64 {
		t.Fatalf("capacity=%d, want 64", st.Capacity)
	}
}

func TestClear(t *testing.T) {
	c := New[int](64)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	before := c.Stats()
	if before.Size != 10 {
		t.Fatalf("size=%d before clear, want 10", before.Size)
	}
	c.Clear()
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("size=%d after clear, want 0", st.Size)
	}
	if st.Evictions != before.Evictions {
		t.Fatalf("evictions=%d, want %d unchanged (a flush is not capacity pressure)", st.Evictions, before.Evictions)
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("cleared entry still served")
	}
	// The cache stays usable after a clear.
	c.Put("fresh", 1)
	if v, ok := c.Get("fresh"); !ok || v != 1 {
		t.Fatalf("post-clear put/get = (%v,%v)", v, ok)
	}
}

// TestClearConcurrent interleaves Clear with readers and writers; run with
// -race. Entries may or may not survive, but values must never corrupt.
func TestClearConcurrent(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", i%50)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("corrupt value")
					return
				}
				c.Put(k, i)
				if i%100 == 0 {
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrent hammers the cache from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%200)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("corrupt value")
					return
				}
				c.Put(k, i)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("lookup accounting off: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Size > 128+shardCount {
		t.Fatalf("size %d exceeds bound", st.Size)
	}
}
