package apsp

import (
	"math/rand"
	"sync"
	"testing"

	"kor/internal/graph"
)

// TestLazyOracleConcurrent hammers one LazyOracle from many goroutines —
// score lookups, prefetch hints and path materialization under a tiny cache
// that forces constant eviction — and checks every answer against the dense
// oracle. Run with -race this is the oracle-level concurrency safety proof.
func TestLazyOracleConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomTestGraph(rng, 60, false)
	n := g.NumNodes()
	dense := NewMatrixOracle(g)
	lazy := NewLazyOracle(g)
	lazy.SetCapacity(4) // eviction churn on every few sweeps

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				from := graph.NodeID(r.Intn(n))
				to := graph.NodeID(r.Intn(n))
				switch i % 5 {
				case 0:
					PrefetchTarget(lazy, to)
				case 1:
					PrefetchSource(lazy, from)
				case 2:
					if path, ok := lazy.MinObjectivePath(from, to); ok && len(path) == 0 {
						errs <- "empty τ path"
						return
					}
				}
				gotP, gotS, gotOK := lazy.MinObjective(from, to)
				wantP, wantS, wantOK := dense.MinObjective(from, to)
				if gotOK != wantOK || (gotOK && (!feq(gotP, wantP) || !feq(gotS, wantS))) {
					errs <- "τ mismatch under concurrency"
					return
				}
				gotP, gotS, gotOK = lazy.MinBudget(from, to)
				wantP, wantS, wantOK = dense.MinBudget(from, to)
				if gotOK != wantOK || (gotOK && (!feq(gotP, wantP) || !feq(gotS, wantS))) {
					errs <- "σ mismatch under concurrency"
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestLazyOracleSingleFlight checks that concurrent queries needing the same
// missing sweep share one Dijkstra run rather than each running their own.
func TestLazyOracleSingleFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTestGraph(rng, 40, false)
	lazy := NewLazyOracle(g)

	const workers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(from graph.NodeID) {
			defer wg.Done()
			<-start
			lazy.MinObjective(from, 5) // all need the reverse τ sweep into 5
		}(graph.NodeID(w % g.NumNodes()))
	}
	close(start)
	wg.Wait()
	if got := lazy.SweepCount(); got != 1 {
		t.Errorf("32 concurrent queries into one target ran %d sweeps, want 1", got)
	}
}
