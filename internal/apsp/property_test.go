package apsp

import (
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// TestOracleTriangleInequality: τ and σ scores respect the triangle
// inequality on their primary metric — the property every pruning rule in
// the search algorithms leans on.
func TestOracleTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		g := randomTestGraph(rng, 25, trial%2 == 0)
		oracles := map[string]Oracle{
			"matrix":      NewMatrixOracle(g),
			"lazy":        NewLazyOracle(g),
			"partitioned": NewPartitionedOracle(g, 6),
		}
		n := g.NumNodes()
		for name, o := range oracles {
			for probe := 0; probe < 200; probe++ {
				i := graph.NodeID(rng.Intn(n))
				j := graph.NodeID(rng.Intn(n))
				k := graph.NodeID(rng.Intn(n))
				ij, _, okIJ := o.MinObjective(i, j)
				ik, _, okIK := o.MinObjective(i, k)
				kj, _, okKJ := o.MinObjective(k, j)
				if okIK && okKJ {
					if !okIJ {
						t.Fatalf("%s: %d→%d unreachable but %d→%d→%d exists", name, i, j, i, k, j)
					}
					if ij > ik+kj+1e-9 {
						t.Fatalf("%s: τ(%d,%d)=%v > τ(%d,%d)+τ(%d,%d)=%v",
							name, i, j, ij, i, k, k, j, ik+kj)
					}
				}
				_, bij, okIJ := o.MinBudget(i, j)
				_, bik, okIK := o.MinBudget(i, k)
				_, bkj, okKJ := o.MinBudget(k, j)
				if okIK && okKJ {
					if !okIJ {
						t.Fatalf("%s: σ(%d,%d) missing despite connection via %d", name, i, j, k)
					}
					if bij > bik+bkj+1e-9 {
						t.Fatalf("%s: σ triangle violated at (%d,%d,%d)", name, i, k, j)
					}
				}
			}
		}
	}
}

// TestTauSigmaConsistency: for every pair, the σ path's budget is a lower
// bound on the τ path's budget, and the τ path's objective is a lower bound
// on the σ path's objective — the defining trade-off of the two families.
func TestTauSigmaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randomTestGraph(rng, 30, false)
	o := NewMatrixOracle(g)
	n := g.NumNodes()
	for i := graph.NodeID(0); int(i) < n; i++ {
		for j := graph.NodeID(0); int(j) < n; j++ {
			tauOS, tauBS, ok1 := o.MinObjective(i, j)
			sigOS, sigBS, ok2 := o.MinBudget(i, j)
			if ok1 != ok2 {
				t.Fatalf("reachability disagrees for (%d,%d)", i, j)
			}
			if !ok1 {
				continue
			}
			if sigBS > tauBS+1e-9 {
				t.Fatalf("σ budget %v exceeds τ budget %v for (%d,%d)", sigBS, tauBS, i, j)
			}
			if tauOS > sigOS+1e-9 {
				t.Fatalf("τ objective %v exceeds σ objective %v for (%d,%d)", tauOS, sigOS, i, j)
			}
		}
	}
}
