package apsp

import (
	"math"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// approxEq compares scores up to the last-ulp differences that opposite
// summation orders (forward vs reverse sweeps) legitimately produce.
func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)) }

func randomGraphForBounds(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode()
	}
	for i := 0; i < n; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 0.1+rng.Float64(), 0.1+rng.Float64())
	}
	for k := 0; k < 3*n; k++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from != to {
			_ = b.AddEdge(graph.NodeID(from), graph.NodeID(to), 0.1+rng.Float64(), 0.1+rng.Float64())
		}
	}
	return b.MustBuild()
}

// TestReverseBoundedSweepMatchesOracle: every node settled by a bounded
// sweep carries exactly the full oracle's scores, every node it misses lies
// past the bound (or is unreachable).
func TestReverseBoundedSweepMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := randomGraphForBounds(rng, 30)
		full := NewMatrixOracle(g)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		for _, m := range []Metric{ByBudget, ByObjective} {
			bound := 0.5 + rng.Float64()*2
			sw := ReverseBoundedSweep(g, root, m, bound)
			for v := 0; v < g.NumNodes(); v++ {
				node := graph.NodeID(v)
				wantOS, wantBS, wantOK := full.MinBudget(node, root)
				if m == ByObjective {
					wantOS, wantBS, wantOK = full.MinObjective(node, root)
				}
				primary := wantBS
				if m == ByObjective {
					primary = wantOS
				}
				gotOS, gotBS, gotOK := sw.Scores(node)
				switch {
				case !wantOK:
					if gotOK {
						t.Fatalf("trial %d: bounded sweep reached unreachable node %d", trial, v)
					}
				case primary <= bound:
					if !gotOK || !approxEq(gotOS, wantOS) || !approxEq(gotBS, wantBS) {
						t.Fatalf("trial %d metric %v: node %d within bound: got (%v,%v,%v), want (%v,%v,true)",
							trial, m, v, gotOS, gotBS, gotOK, wantOS, wantBS)
					}
				default:
					if gotOK && (!approxEq(gotOS, wantOS) || !approxEq(gotBS, wantBS)) {
						t.Fatalf("trial %d metric %v: node %d past bound settled with wrong scores (%v,%v) want (%v,%v)",
							trial, m, v, gotOS, gotBS, wantOS, wantBS)
					}
				}
			}
			// The root itself always settles at zero.
			if os, bs, ok := sw.Scores(root); !ok || os != 0 || bs != 0 {
				t.Fatalf("trial %d: root scores (%v,%v,%v), want (0,0,true)", trial, os, bs, ok)
			}
		}
	}
}

func TestIsOnDemand(t *testing.T) {
	g := randomGraphForBounds(rand.New(rand.NewSource(1)), 8)
	if !IsOnDemand(NewLazyOracle(g)) {
		t.Error("lazy oracle must report on-demand sweeps")
	}
	if IsOnDemand(NewMatrixOracle(g)) {
		t.Error("matrix oracle wrongly reports on-demand sweeps")
	}
}
