package apsp

import (
	"kor/internal/graph"
)

// LazyOracle serves τ/σ queries from memoized Dijkstra sweeps instead of
// dense tables. A reverse sweep into a target answers every (·, target)
// query; a forward sweep answers every (source, ·) query. The route-search
// algorithms hint their access patterns through the Prefetcher interface:
// OSScaling and BucketBound pin the query target (and the strategy-2
// keyword nodes), Greedy pins its current route head.
//
// Sweeps are cached with FIFO eviction bounded by capacity, so memory stays
// O(capacity·|V|) on the 20k-node scalability graphs.
type LazyOracle struct {
	g        *graph.Graph
	capacity int

	fwd map[sweepKey]*sweep
	rev map[sweepKey]*sweep
	// FIFO eviction order per cache.
	fwdOrder []sweepKey
	revOrder []sweepKey

	// Sweep-count statistics, exposed for the ablation benchmarks.
	Sweeps int
}

type sweepKey struct {
	root   graph.NodeID
	metric Metric
}

// DefaultSweepCapacity bounds each direction's sweep cache.
const DefaultSweepCapacity = 128

// NewLazyOracle returns an oracle over g with the default cache capacity.
func NewLazyOracle(g *graph.Graph) *LazyOracle {
	return &LazyOracle{
		g:        g,
		capacity: DefaultSweepCapacity,
		fwd:      make(map[sweepKey]*sweep),
		rev:      make(map[sweepKey]*sweep),
	}
}

// SetCapacity adjusts the per-direction sweep cache bound (minimum 4).
func (o *LazyOracle) SetCapacity(n int) {
	if n < 4 {
		n = 4
	}
	o.capacity = n
}

func (o *LazyOracle) forward(root graph.NodeID, m Metric) *sweep {
	k := sweepKey{root, m}
	if s, ok := o.fwd[k]; ok {
		return s
	}
	s := dijkstra(o.g, root, m, false)
	o.Sweeps++
	if len(o.fwdOrder) >= o.capacity {
		delete(o.fwd, o.fwdOrder[0])
		o.fwdOrder = o.fwdOrder[1:]
	}
	o.fwd[k] = s
	o.fwdOrder = append(o.fwdOrder, k)
	return s
}

func (o *LazyOracle) reverse(root graph.NodeID, m Metric) *sweep {
	k := sweepKey{root, m}
	if s, ok := o.rev[k]; ok {
		return s
	}
	s := dijkstra(o.g, root, m, true)
	o.Sweeps++
	if len(o.revOrder) >= o.capacity {
		delete(o.rev, o.revOrder[0])
		o.revOrder = o.revOrder[1:]
	}
	o.rev[k] = s
	o.revOrder = append(o.revOrder, k)
	return s
}

// lookup answers a pair query under metric m, preferring whichever sweep is
// already cached and defaulting to a reverse sweep into the target — the
// dominant access pattern of the label-search algorithms.
func (o *LazyOracle) lookup(from, to graph.NodeID, m Metric) (float64, float64, bool) {
	if from == to {
		return 0, 0, true
	}
	if s, ok := o.rev[sweepKey{to, m}]; ok {
		if !s.reached(from) {
			return 0, 0, false
		}
		os, bs := s.scores(from, m)
		return os, bs, true
	}
	if s, ok := o.fwd[sweepKey{from, m}]; ok {
		if !s.reached(to) {
			return 0, 0, false
		}
		os, bs := s.scores(to, m)
		return os, bs, true
	}
	s := o.reverse(to, m)
	if !s.reached(from) {
		return 0, 0, false
	}
	os, bs := s.scores(from, m)
	return os, bs, true
}

// MinObjective returns the scores of τ(from,to).
func (o *LazyOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	return o.lookup(from, to, ByObjective)
}

// MinBudget returns the scores of σ(from,to).
func (o *LazyOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	return o.lookup(from, to, ByBudget)
}

// PrefetchSource caches forward sweeps from this node under both metrics.
func (o *LazyOracle) PrefetchSource(from graph.NodeID) {
	o.forward(from, ByObjective)
	o.forward(from, ByBudget)
}

// PrefetchTarget caches reverse sweeps into this node under both metrics.
func (o *LazyOracle) PrefetchTarget(to graph.NodeID) {
	o.reverse(to, ByObjective)
	o.reverse(to, ByBudget)
}

// MinObjectivePath materializes τ(from,to), reusing a cached sweep when one
// is available.
func (o *LazyOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByObjective)
}

// MinBudgetPath materializes σ(from,to).
func (o *LazyOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByBudget)
}

func (o *LazyOracle) path(from, to graph.NodeID, m Metric) ([]graph.NodeID, bool) {
	if from == to {
		return []graph.NodeID{from}, true
	}
	if s, ok := o.rev[sweepKey{to, m}]; ok {
		return s.walkReverse(to, from)
	}
	return o.forward(from, m).walkForward(from, to)
}
