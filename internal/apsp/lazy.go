package apsp

import (
	"sync"
	"sync/atomic"

	"kor/internal/graph"
)

// LazyOracle serves τ/σ queries from memoized Dijkstra sweeps instead of
// dense tables. A reverse sweep into a target answers every (·, target)
// query; a forward sweep answers every (source, ·) query. The route-search
// algorithms hint their access patterns through the Prefetcher interface:
// OSScaling and BucketBound pin the query target (and the strategy-2
// keyword nodes), Greedy pins its current route head.
//
// Sweeps are cached with FIFO eviction bounded by capacity, so memory stays
// O(capacity·|V|) on the 20k-node scalability graphs.
//
// A LazyOracle is safe for concurrent use. Each direction's cache is
// guarded by a mutex, and sweep computation is single-flighted: concurrent
// queries needing the same missing sweep share one Dijkstra run instead of
// racing to compute it redundantly. The sweeps themselves are immutable
// once published.
type LazyOracle struct {
	g *graph.Graph

	fwd sweepCache
	rev sweepCache

	// sweeps counts Dijkstra runs, exposed for the ablation benchmarks.
	sweeps atomic.Int64
}

type sweepKey struct {
	root   graph.NodeID
	metric Metric
}

// sweepEntry is one cache slot. done is closed once s is published; waiters
// that found the entry in flight block on it instead of recomputing.
type sweepEntry struct {
	done chan struct{}
	s    *sweep // written under the cache mutex before done is closed
}

// sweepCache is one direction's bounded sweep cache with FIFO eviction and
// single-flight computation. The steady-state read path (cache hits) takes
// only the read lock; the write lock guards insertion and eviction.
type sweepCache struct {
	mu       sync.RWMutex
	capacity int
	entries  map[sweepKey]*sweepEntry
	order    []sweepKey // FIFO eviction order
}

// peek returns the completed sweep for k, or nil when k is absent or still
// in flight. It never blocks on a computation.
func (c *sweepCache) peek(k sweepKey) *sweep {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.entries[k]; ok {
		return e.s // nil while in flight
	}
	return nil
}

// wait blocks until e's sweep is published and returns it, falling back to
// an uncached compute when the computing goroutine panicked.
func (c *sweepCache) wait(e *sweepEntry, compute func() *sweep) *sweep {
	<-e.done
	if e.s == nil {
		return compute()
	}
	return e.s
}

// get returns the sweep for k, computing it with compute if missing. When
// several goroutines miss on the same key at once, exactly one runs compute
// and the rest wait for its result.
func (c *sweepCache) get(k sweepKey, compute func() *sweep) *sweep {
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		return c.wait(e, compute)
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok { // lost the insert race
		c.mu.Unlock()
		return c.wait(e, compute)
	}
	e = &sweepEntry{done: make(chan struct{})}
	c.insertLocked(k, e)
	c.mu.Unlock()

	// If compute panics, drop the placeholder and unblock waiters anyway;
	// e.s stays nil and waiters fall back to computing their own sweep.
	// Only our own entry is removed (a FIFO eviction during the compute may
	// have replaced it with a newer one), together with its order slot so
	// eviction accounting stays exact.
	defer func() {
		if e.s == nil {
			c.mu.Lock()
			if cur, ok := c.entries[k]; ok && cur == e {
				delete(c.entries, k)
				for i := range c.order {
					if c.order[i] == k {
						c.order = append(c.order[:i], c.order[i+1:]...)
						break
					}
				}
			}
			c.mu.Unlock()
			close(e.done)
		}
	}()

	s := compute()

	c.mu.Lock()
	e.s = s
	c.mu.Unlock()
	close(e.done)
	return s
}

// insertLocked records a new entry, evicting the oldest one when the cache
// is full. Evicting an in-flight entry is harmless: its waiters hold the
// entry pointer and still receive the result; it just is not cached.
func (c *sweepCache) insertLocked(k sweepKey, e *sweepEntry) {
	if len(c.order) >= c.capacity {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = e
	c.order = append(c.order, k)
}

func (c *sweepCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	for len(c.order) > n {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// DefaultSweepCapacity bounds each direction's sweep cache.
const DefaultSweepCapacity = 128

// NewLazyOracle returns an oracle over g with the default cache capacity.
func NewLazyOracle(g *graph.Graph) *LazyOracle {
	return &LazyOracle{
		g:   g,
		fwd: sweepCache{capacity: DefaultSweepCapacity, entries: make(map[sweepKey]*sweepEntry)},
		rev: sweepCache{capacity: DefaultSweepCapacity, entries: make(map[sweepKey]*sweepEntry)},
	}
}

// SetCapacity adjusts the per-direction sweep cache bound (minimum 4).
// Safe to call concurrently with queries; shrinking evicts oldest sweeps.
func (o *LazyOracle) SetCapacity(n int) {
	if n < 4 {
		n = 4
	}
	o.fwd.setCapacity(n)
	o.rev.setCapacity(n)
}

// SweepCount reports how many Dijkstra sweeps the oracle has run.
func (o *LazyOracle) SweepCount() int64 { return o.sweeps.Load() }

func (o *LazyOracle) forward(root graph.NodeID, m Metric) *sweep {
	return o.fwd.get(sweepKey{root, m}, func() *sweep {
		o.sweeps.Add(1)
		return dijkstra(o.g, root, m, false)
	})
}

func (o *LazyOracle) reverse(root graph.NodeID, m Metric) *sweep {
	return o.rev.get(sweepKey{root, m}, func() *sweep {
		o.sweeps.Add(1)
		return dijkstra(o.g, root, m, true)
	})
}

// lookup answers a pair query under metric m, preferring whichever sweep is
// already cached and defaulting to a reverse sweep into the target — the
// dominant access pattern of the label-search algorithms.
func (o *LazyOracle) lookup(from, to graph.NodeID, m Metric) (float64, float64, bool) {
	if from == to {
		return 0, 0, true
	}
	if s := o.rev.peek(sweepKey{to, m}); s != nil {
		if !s.reached(from) {
			return 0, 0, false
		}
		os, bs := s.scores(from, m)
		return os, bs, true
	}
	if s := o.fwd.peek(sweepKey{from, m}); s != nil {
		if !s.reached(to) {
			return 0, 0, false
		}
		os, bs := s.scores(to, m)
		return os, bs, true
	}
	s := o.reverse(to, m)
	if !s.reached(from) {
		return 0, 0, false
	}
	os, bs := s.scores(from, m)
	return os, bs, true
}

// MinObjective returns the scores of τ(from,to).
func (o *LazyOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	return o.lookup(from, to, ByObjective)
}

// MinBudget returns the scores of σ(from,to).
func (o *LazyOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	return o.lookup(from, to, ByBudget)
}

// PrefetchSource caches forward sweeps from this node under both metrics.
func (o *LazyOracle) PrefetchSource(from graph.NodeID) {
	o.forward(from, ByObjective)
	o.forward(from, ByBudget)
}

// PrefetchTarget caches reverse sweeps into this node under both metrics.
func (o *LazyOracle) PrefetchTarget(to graph.NodeID) {
	o.reverse(to, ByObjective)
	o.reverse(to, ByBudget)
}

// MinObjectivePath materializes τ(from,to), reusing a cached sweep when one
// is available.
func (o *LazyOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByObjective)
}

// MinBudgetPath materializes σ(from,to).
func (o *LazyOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByBudget)
}

func (o *LazyOracle) path(from, to graph.NodeID, m Metric) ([]graph.NodeID, bool) {
	if from == to {
		return []graph.NodeID{from}, true
	}
	if s := o.rev.peek(sweepKey{to, m}); s != nil {
		return s.walkReverse(to, from)
	}
	return o.forward(from, m).walkForward(from, to)
}
