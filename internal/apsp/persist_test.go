package apsp

import (
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kor/internal/graph"
)

// writeTestIndex builds a partitioned oracle over g and round-trips it
// through a temp file, returning both ends.
func writeTestIndex(t *testing.T, g *graph.Graph, cellSize int) (*PartitionedOracle, *PartitionedOracle, string) {
	t.Helper()
	mem := NewPartitionedOracle(g, cellSize)
	path := filepath.Join(t.TempDir(), "dist.kori")
	if err := mem.WriteIndexFile(path); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	disk, err := OpenIndex(path, g)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	t.Cleanup(func() { disk.Close() })
	return mem, disk, path
}

// TestIndexRoundTrip is the durability property test: a disk-loaded index
// answers every pair query, slice lookup and path materialization exactly
// like the in-memory oracle it was written from, and agrees with the lazy
// oracle on the primary scores (the partitioned tie-break contract) on both
// metrics.
func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		n := 10 + rng.Intn(30)
		g := randomTestGraph(rng, n, trial%2 == 0)
		mem, disk, _ := writeTestIndex(t, g, 4+rng.Intn(8))
		lazy := NewLazyOracle(g)

		info := disk.IndexInfo()
		if info.Fingerprint != g.Fingerprint() || !info.FromDisk || info.Bytes <= 0 {
			t.Fatalf("trial %d: IndexInfo = %+v", trial, info)
		}
		if info.Regions != mem.NumRegions() || info.Borders != mem.NumBorders() {
			t.Fatalf("trial %d: disk shape %d/%d, memory %d/%d",
				trial, info.Regions, info.Borders, mem.NumRegions(), mem.NumBorders())
		}
		if !HasIndexedPaths(disk) {
			t.Fatal("disk oracle does not report indexed paths")
		}

		for i := graph.NodeID(0); int(i) < n; i++ {
			tauSliceM := mem.TargetSlice(i, ByObjective)
			tauSliceD := disk.TargetSlice(i, ByObjective)
			sigSliceM := mem.TargetSlice(i, ByBudget)
			sigSliceD := disk.TargetSlice(i, ByBudget)
			for j := graph.NodeID(0); int(j) < n; j++ {
				// Disk answers must be bit-identical to the in-memory build.
				mOS, mBS, mOK := mem.MinObjective(j, i)
				dOS, dBS, dOK := disk.MinObjective(j, i)
				if mOS != dOS || mBS != dBS || mOK != dOK {
					t.Fatalf("trial %d: τ(%d,%d) disk (%v,%v,%v) != memory (%v,%v,%v)",
						trial, j, i, dOS, dBS, dOK, mOS, mBS, mOK)
				}
				// Slice lookups must reproduce the pair queries, both ends.
				if mOK {
					if tauSliceM.Prim[j] != mOS || tauSliceD.Prim[j] != mOS {
						t.Fatalf("trial %d: τ slice primary (%v,%v) != query %v",
							trial, tauSliceM.Prim[j], tauSliceD.Prim[j], mOS)
					}
				} else if !math.IsInf(tauSliceD.Prim[j], 1) {
					t.Fatalf("trial %d: τ slice reaches unreachable pair (%d,%d)", trial, j, i)
				}
				// Lazy agreement: exact primary, secondary no worse.
				lOS, lBS, lOK := lazy.MinObjective(j, i)
				if mOK != lOK || (mOK && !feq(mOS, lOS)) {
					t.Fatalf("trial %d: τ(%d,%d) indexed (%v,%v) vs lazy (%v,%v)",
						trial, j, i, mOS, mOK, lOS, lOK)
				}
				if mOK && mBS < lBS-1e-9 {
					t.Fatalf("trial %d: τ(%d,%d) secondary %v below lazy optimum %v", trial, j, i, mBS, lBS)
				}

				mOS, mBS, mOK = mem.MinBudget(j, i)
				dOS, dBS, dOK = disk.MinBudget(j, i)
				if mOS != dOS || mBS != dBS || mOK != dOK {
					t.Fatalf("trial %d: σ(%d,%d) disk (%v,%v,%v) != memory (%v,%v,%v)",
						trial, j, i, dOS, dBS, dOK, mOS, mBS, mOK)
				}
				if mOK && (sigSliceM.Prim[j] != mBS || sigSliceD.Prim[j] != mBS) {
					t.Fatalf("trial %d: σ slice primary (%v,%v) != query %v",
						trial, sigSliceM.Prim[j], sigSliceD.Prim[j], mBS)
				}
				lOS, lBS, lOK = lazy.MinBudget(j, i)
				if mOK != lOK || (mOK && !feq(mBS, lBS)) {
					t.Fatalf("trial %d: σ(%d,%d) indexed (%v,%v) vs lazy (%v,%v)",
						trial, j, i, mBS, mOK, lBS, lOK)
				}
			}
		}
	}
}

// TestPartitionedIndexedPaths verifies that table-walk materialization
// returns real graph walks whose summed attributes match the reported
// scores, on both the in-memory and the disk-loaded oracle.
func TestPartitionedIndexedPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomTestGraph(rng, 60, false)
	mem, disk, _ := writeTestIndex(t, g, 9)
	for trial := 0; trial < 300; trial++ {
		from := graph.NodeID(rng.Intn(g.NumNodes()))
		to := graph.NodeID(rng.Intn(g.NumNodes()))
		for name, o := range map[string]*PartitionedOracle{"memory": mem, "disk": disk} {
			wantOS, wantBS, ok := o.MinObjective(from, to)
			path, pok := o.MinObjectivePath(from, to)
			if ok != pok {
				t.Fatalf("%s: τ(%d,%d) score ok=%v path ok=%v", name, from, to, ok, pok)
			}
			if ok {
				gotOS, gotBS := pathScores(t, g, path, ByObjective)
				if !feq(gotOS, wantOS) || !feq(gotBS, wantBS) {
					t.Fatalf("%s: τ(%d,%d) path scores (%v,%v), reported (%v,%v)",
						name, from, to, gotOS, gotBS, wantOS, wantBS)
				}
			}
			wantOS, wantBS, ok = o.MinBudget(from, to)
			path, pok = o.MinBudgetPath(from, to)
			if ok != pok {
				t.Fatalf("%s: σ(%d,%d) score ok=%v path ok=%v", name, from, to, ok, pok)
			}
			if ok {
				gotOS, gotBS := pathScores(t, g, path, ByBudget)
				if !feq(gotBS, wantBS) || !feq(gotOS, wantOS) {
					t.Fatalf("%s: σ(%d,%d) path scores (%v,%v), reported (%v,%v)",
						name, from, to, gotOS, gotBS, wantOS, wantBS)
				}
			}
		}
	}
}

// TestTargetSliceConcurrency hammers the slice cache from many goroutines
// (single-flight, eviction) — meaningful mainly under -race.
func TestTargetSliceConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomTestGraph(rng, 40, false)
	o := NewPartitionedOracle(g, 8)
	o.slices.cap = 6 // force eviction churn
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 200; k++ {
				to := graph.NodeID(r.Intn(g.NumNodes()))
				m := Metric(r.Intn(2))
				ts := o.TargetSlice(to, m)
				from := graph.NodeID(r.Intn(g.NumNodes()))
				p, s, ok := o.query(from, to, m)
				if !ok {
					if !math.IsInf(ts.Prim[from], 1) {
						t.Errorf("slice reaches unreachable pair (%d,%d)", from, to)
					}
					continue
				}
				if ts.Prim[from] != p || ts.Sec[from] != s {
					t.Errorf("slice (%v,%v) != query (%v,%v) for (%d,%d,%v)",
						ts.Prim[from], ts.Sec[from], p, s, from, to, m)
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestIndexLoadErrors exercises every typed load-failure path: damaged
// files fail with ErrIndexFormat, incompatible versions with
// ErrIndexVersion, and a mismatched graph with ErrIndexFingerprint — never
// a panic, never a silently wrong oracle.
func TestIndexLoadErrors(t *testing.T) {
	g := buildPaperGraph(t)
	mem := NewPartitionedOracle(g, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "good.kori")
	if err := mem.WriteIndexFile(path); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, want error) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		o, err := OpenIndex(p, g)
		if o != nil {
			o.Close()
		}
		if !errors.Is(err, want) {
			t.Errorf("%s: OpenIndex error = %v, want %v", name, err, want)
		}
	}

	// Not an index at all.
	check("garbage.kori", []byte("definitely not an index file"), ErrIndexFormat)

	// Truncated: below the header, and mid-payload.
	check("short-header.kori", good[:20], ErrIndexFormat)
	check("truncated.kori", good[:len(good)-25], ErrIndexFormat)

	// A flipped payload byte must fail the payload CRC.
	corrupt := append([]byte(nil), good...)
	corrupt[indexHeaderSize+len(corrupt)/2] ^= 0x40
	check("corrupt.kori", corrupt, ErrIndexFormat)

	// A flipped header byte must fail the header CRC.
	badHdr := append([]byte(nil), good...)
	badHdr[10] ^= 0x01
	check("bad-header.kori", badHdr, ErrIndexFormat)

	// Future version, header CRC recomputed so only the version differs.
	future := append([]byte(nil), good...)
	future[4] = 0x7f
	patchHeaderCRC(future)
	check("future.kori", future, ErrIndexVersion)

	// The right file for the wrong graph.
	other := NewPartitionedOracle(randomTestGraph(rand.New(rand.NewSource(9)), 8, true), 3)
	otherPath := filepath.Join(dir, "other.kori")
	if err := other.WriteIndexFile(otherPath); err != nil {
		t.Fatal(err)
	}
	if o, err := OpenIndex(otherPath, g); !errors.Is(err, ErrIndexFingerprint) {
		if o != nil {
			o.Close()
		}
		t.Errorf("wrong-graph OpenIndex error = %v, want ErrIndexFingerprint", err)
	}

	// The pristine file still opens after all that.
	o, err := OpenIndex(path, g)
	if err != nil {
		t.Fatalf("reopening pristine index: %v", err)
	}
	o.Close()
}

// patchHeaderCRC recomputes the header checksum after a deliberate edit.
func patchHeaderCRC(b []byte) {
	crc := crc32.ChecksumIEEE(b[4:44])
	b[44] = byte(crc)
	b[45] = byte(crc >> 8)
	b[46] = byte(crc >> 16)
	b[47] = byte(crc >> 24)
}

// TestSourceSliceAgreement checks the outbound slices against the pair
// interface on random graphs, both metrics, memory- and disk-backed:
// identical reachability everywhere, and scores equal up to floating-point
// association (source slices hoist the per-source half of the assembly).
func TestSourceSliceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		n := 12 + rng.Intn(25)
		g := randomTestGraph(rng, n, trial%2 == 0)
		_, disk, _ := writeTestIndex(t, g, 4+rng.Intn(8))
		mem := NewPartitionedOracle(g, disk.CellSize())
		for _, o := range []*PartitionedOracle{mem, disk} {
			for from := 0; from < n; from++ {
				tau := o.SourceSlice(graph.NodeID(from), ByObjective)
				sig := o.SourceSlice(graph.NodeID(from), ByBudget)
				for to := 0; to < n; to++ {
					os, bs, ok := o.MinObjective(graph.NodeID(from), graph.NodeID(to))
					if sOK := !math.IsInf(tau.Prim[to], 1); sOK != ok {
						t.Fatalf("trial %d τ %d→%d: slice ok=%v, query ok=%v", trial, from, to, sOK, ok)
					}
					if ok && (!feq(tau.Prim[to], os) || !feq(tau.Sec[to], bs)) {
						t.Fatalf("trial %d τ %d→%d: slice (%v,%v), query (%v,%v)",
							trial, from, to, tau.Prim[to], tau.Sec[to], os, bs)
					}
					os, bs, ok = o.MinBudget(graph.NodeID(from), graph.NodeID(to))
					if sOK := !math.IsInf(sig.Prim[to], 1); sOK != ok {
						t.Fatalf("trial %d σ %d→%d: slice ok=%v, query ok=%v", trial, from, to, sOK, ok)
					}
					// MinBudget reports (os, bs) = (secondary, primary).
					if ok && (!feq(sig.Prim[to], bs) || !feq(sig.Sec[to], os)) {
						t.Fatalf("trial %d σ %d→%d: slice (%v,%v), query (%v,%v)",
							trial, from, to, sig.Prim[to], sig.Sec[to], bs, os)
					}
				}
			}
		}
	}
}
