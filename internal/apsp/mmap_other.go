//go:build !unix

package apsp

import (
	"errors"
	"os"
)

// errNoMmap makes OpenIndex fall through to the portable read-all path on
// platforms without a usable mmap.
var errNoMmap = errors.New("apsp: mmap unavailable on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapBytes(b []byte) error { return nil }
