package apsp

import (
	"math"

	"kor/internal/graph"
	"kor/internal/pqueue"
)

// sweep holds the result of one two-criteria Dijkstra run. For a forward
// sweep from source s, primary[v] is the minimum of the chosen metric over
// paths s→v, secondary[v] the other attribute summed along that same path,
// and parent[v] the predecessor of v on it. For a reverse sweep into target
// t the roles flip: primary[v] covers paths v→t and parent[v] is the
// successor of v on the optimal path.
type sweep struct {
	primary   []float64
	secondary []float64
	parent    []int32
}

const noParent = int32(-1)

// reached reports whether v was reached by the sweep.
func (s *sweep) reached(v graph.NodeID) bool { return !math.IsInf(s.primary[v], 1) }

// scores returns (objective, budget) at v given the metric the sweep ran
// under.
func (s *sweep) scores(v graph.NodeID, m Metric) (os, bs float64) {
	if m == ByObjective {
		return s.primary[v], s.secondary[v]
	}
	return s.secondary[v], s.primary[v]
}

type dijkstraItem struct {
	node      graph.NodeID
	primary   float64
	secondary float64
}

func lessItem(a, b dijkstraItem) bool {
	if a.primary != b.primary {
		return a.primary < b.primary
	}
	if a.secondary != b.secondary {
		return a.secondary < b.secondary
	}
	return a.node < b.node
}

// dijkstra runs a two-criteria Dijkstra from root. With reverse=false edges
// are traversed forward (single-source); with reverse=true the transpose
// graph is used (single-target). Ties on the primary metric are broken by
// the secondary, so results are unique and deterministic.
func dijkstra(g *graph.Graph, root graph.NodeID, m Metric, reverse bool) *sweep {
	return dijkstraBounded(g, root, m, reverse, math.Inf(1))
}

// dijkstraBounded is dijkstra truncated at a primary-metric bound: labels
// past the bound are never relaxed, so the search settles only the bound's
// ball around the root. Settled scores are exact; unreached nodes are
// indistinguishable from unreachable ones, which is precisely the contract
// bounded callers want.
func dijkstraBounded(g *graph.Graph, root graph.NodeID, m Metric, reverse bool, bound float64) *sweep {
	n := g.NumNodes()
	s := &sweep{
		primary:   make([]float64, n),
		secondary: make([]float64, n),
		parent:    make([]int32, n),
	}
	for i := range s.primary {
		s.primary[i] = math.Inf(1)
		s.secondary[i] = math.Inf(1)
		s.parent[i] = noParent
	}
	s.primary[root] = 0
	s.secondary[root] = 0

	adj := g.Out
	if reverse {
		adj = g.In
	}
	h := pqueue.NewWithCapacity(n, lessItem)
	h.Push(dijkstraItem{node: root})
	done := make([]bool, n)
	for !h.Empty() {
		it := h.Pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range adj(it.node) {
			var p, sec float64
			if m == ByObjective {
				p, sec = it.primary+e.Objective, it.secondary+e.Budget
			} else {
				p, sec = it.primary+e.Budget, it.secondary+e.Objective
			}
			v := e.To
			if p > bound {
				continue
			}
			if p < s.primary[v] || (p == s.primary[v] && sec < s.secondary[v]) {
				s.primary[v] = p
				s.secondary[v] = sec
				s.parent[v] = int32(it.node)
				h.Push(dijkstraItem{node: v, primary: p, secondary: sec})
			}
		}
	}
	return s
}

// walkForward reconstructs the path root→dst from a forward sweep.
func (s *sweep) walkForward(root, dst graph.NodeID) ([]graph.NodeID, bool) {
	if !s.reached(dst) {
		return nil, false
	}
	var rev []graph.NodeID
	for v := dst; ; {
		rev = append(rev, v)
		if v == root {
			break
		}
		p := s.parent[v]
		if p == noParent {
			return nil, false
		}
		v = graph.NodeID(p)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// walkReverse reconstructs the path src→root from a reverse sweep rooted at
// the target.
func (s *sweep) walkReverse(root, src graph.NodeID) ([]graph.NodeID, bool) {
	if !s.reached(src) {
		return nil, false
	}
	var path []graph.NodeID
	for v := src; ; {
		path = append(path, v)
		if v == root {
			break
		}
		p := s.parent[v]
		if p == noParent {
			return nil, false
		}
		v = graph.NodeID(p)
	}
	return path, true
}
