package apsp

import "kor/internal/graph"

// Query-scoped bounded sweeps. The label algorithms only ever ask σ
// questions whose answer is useless beyond the query's budget limit Δ: a
// partial route needing more than Δ of budget to reach a candidate node can
// never become feasible. A reverse Dijkstra into that candidate truncated at
// Δ therefore answers every useful lookup exactly, while settling only the
// Δ-ball around the candidate instead of the whole graph. These sweeps are
// owned by one query plan and die with it — they never enter the shared
// oracle caches, whose entries must stay valid for every budget.

// Sweep is an exported handle over one truncated reverse sweep into a fixed
// root. Scores answers (from → root) pair queries; ok=false means the root
// is unreachable from the node within the sweep's bound (or at all), which
// callers must treat as "no useful path", not "no path".
type Sweep struct {
	s    *sweep
	m    Metric
	root graph.NodeID
}

// Scores returns the (objective, budget) scores of the metric-optimal path
// from v into the sweep's root.
func (s *Sweep) Scores(v graph.NodeID) (os, bs float64, ok bool) {
	if !s.s.reached(v) {
		return 0, 0, false
	}
	os, bs = s.s.scores(v, s.m)
	return os, bs, true
}

// ReverseBoundedSweep runs a reverse two-criteria Dijkstra into root,
// truncated once the primary metric exceeds bound (pass +Inf for a full
// sweep). The scores of every settled node are exact (truncation only drops
// nodes wholly past the bound).
func ReverseBoundedSweep(g *graph.Graph, root graph.NodeID, m Metric, bound float64) *Sweep {
	return &Sweep{s: dijkstraBounded(g, root, m, true, bound), m: m, root: root}
}

// WalkFrom materializes the metric-optimal path from v into the sweep's
// root, inclusive of both endpoints. One sweep answers every path into its
// root — the reconstruction pattern of the label algorithms, which the
// score-only dense tables would otherwise answer with a fresh sweep per
// path.
func (s *Sweep) WalkFrom(v graph.NodeID) ([]graph.NodeID, bool) {
	return s.s.walkReverse(s.root, v)
}

// OnDemand marks oracles whose pair lookups may trigger full-graph sweeps,
// so a query plan profits from computing its own bounded sweeps into the
// handful of candidate nodes it will hammer. Dense-table oracles answer
// lookups in O(1) and must not implement it.
type OnDemand interface {
	// OnDemandSweeps reports that pair lookups are served by sweeps computed
	// on demand.
	OnDemandSweeps() bool
}

// IsOnDemand reports whether o computes pair scores via on-demand sweeps.
func IsOnDemand(o Oracle) bool {
	d, ok := o.(OnDemand)
	return ok && d.OnDemandSweeps()
}

// Indexed marks oracles whose path materialization is a table walk rather
// than a sweep, so callers can delegate reconstruction to them directly
// instead of maintaining their own path sweeps.
type Indexed interface {
	// IndexedPaths reports that Min*Path runs in O(path length).
	IndexedPaths() bool
}

// HasIndexedPaths reports whether o materializes paths from tables.
func HasIndexedPaths(o Oracle) bool {
	d, ok := o.(Indexed)
	return ok && d.IndexedPaths()
}

// OnDemandSweeps marks the lazy oracle as sweep-backed.
func (o *LazyOracle) OnDemandSweeps() bool { return true }
