package apsp

import (
	"math"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// buildPaperGraph reconstructs the Figure-1 example graph of the paper, as
// derived from Examples 1–2, Table 1 and the pre-processing examples in
// §3.1. Edge tuples are (objective, budget).
func buildPaperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < 8; i++ {
		b.AddNode()
	}
	edges := []struct {
		from, to graph.NodeID
		o, c     float64
	}{
		{0, 1, 4, 1}, {0, 2, 1, 3}, {0, 3, 2, 2},
		{2, 3, 3, 2}, {2, 6, 1, 1},
		{3, 1, 1, 2}, {3, 4, 1, 2}, {3, 5, 3, 2},
		{4, 7, 1, 3},
		{5, 4, 2, 1}, {5, 7, 4, 1},
		{6, 5, 2, 6},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return b.MustBuild()
}

// TestPaperPreprocessingExamples checks the exact τ/σ values §3.1 reports
// for the Figure-1 graph: τ(0,7) = ⟨v0,v3,v4,v7⟩ with OS 4, BS 7 and
// σ(0,7) = ⟨v0,v3,v5,v7⟩ with OS 9, BS 5, plus the values used in Example 2.
func TestPaperPreprocessingExamples(t *testing.T) {
	g := buildPaperGraph(t)
	oracles := map[string]interface {
		Oracle
		PathMaterializer
	}{
		"matrix": NewMatrixOracle(g),
		"lazy":   NewLazyOracle(g),
	}
	for name, o := range oracles {
		os, bs, ok := o.MinObjective(0, 7)
		if !ok || os != 4 || bs != 7 {
			t.Errorf("%s: τ(0,7) = (%v,%v,%v), want (4,7,true)", name, os, bs, ok)
		}
		os, bs, ok = o.MinBudget(0, 7)
		if !ok || os != 9 || bs != 5 {
			t.Errorf("%s: σ(0,7) = (%v,%v,%v), want (9,5,true)", name, os, bs, ok)
		}
		// Example 2 step (b): BS(σ(6,7)) = 7.
		if _, bs, ok = o.MinBudget(6, 7); !ok || bs != 7 {
			t.Errorf("%s: BS(σ(6,7)) = %v, want 7", name, bs)
		}
		// Example 2 step (c): OS(τ(3,7)) = 2, BS(τ(3,7)) = 5.
		if os, bs, ok = o.MinObjective(3, 7); !ok || os != 2 || bs != 5 {
			t.Errorf("%s: τ(3,7) = (%v,%v), want (2,5)", name, os, bs)
		}
		// Example 2 step (e): OS(τ(5,7)) = 3 with budget 4.
		if os, bs, ok = o.MinObjective(5, 7); !ok || os != 3 || bs != 4 {
			t.Errorf("%s: τ(5,7) = (%v,%v), want (3,4)", name, os, bs)
		}

		path, ok := o.MinObjectivePath(0, 7)
		if !ok || !equalPath(path, []graph.NodeID{0, 3, 4, 7}) {
			t.Errorf("%s: τ path = %v, want [0 3 4 7]", name, path)
		}
		path, ok = o.MinBudgetPath(0, 7)
		if !ok || !equalPath(path, []graph.NodeID{0, 3, 5, 7}) {
			t.Errorf("%s: σ path = %v, want [0 3 5 7]", name, path)
		}
	}

	part := NewPartitionedOracle(g, 3)
	if os, bs, ok := part.MinObjective(0, 7); !ok || os != 4 || bs != 7 {
		t.Errorf("partitioned: τ(0,7) = (%v,%v,%v)", os, bs, ok)
	}
	if os, bs, ok := part.MinBudget(0, 7); !ok || os != 9 || bs != 5 {
		t.Errorf("partitioned: σ(0,7) = (%v,%v,%v)", os, bs, ok)
	}
}

func equalPath(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelfPair(t *testing.T) {
	g := buildPaperGraph(t)
	for _, o := range []Oracle{NewMatrixOracle(g), NewLazyOracle(g), NewPartitionedOracle(g, 4)} {
		os, bs, ok := o.MinObjective(3, 3)
		if !ok || os != 0 || bs != 0 {
			t.Errorf("%T: τ(v,v) = (%v,%v,%v)", o, os, bs, ok)
		}
		os, bs, ok = o.MinBudget(3, 3)
		if !ok || os != 0 || bs != 0 {
			t.Errorf("%T: σ(v,v) = (%v,%v,%v)", o, os, bs, ok)
		}
	}
	lazy := NewLazyOracle(g)
	p, ok := lazy.MinObjectivePath(2, 2)
	if !ok || len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v", p)
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder()
	v0, v1, v2 := b.AddNode(), b.AddNode(), b.AddNode()
	if err := b.AddEdge(v0, v1, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	for _, o := range []Oracle{NewMatrixOracle(g), NewLazyOracle(g), NewPartitionedOracle(g, 2)} {
		if _, _, ok := o.MinObjective(v1, v0); ok {
			t.Errorf("%T: τ(v1,v0) reachable on one-way edge", o)
		}
		if _, _, ok := o.MinBudget(v0, v2); ok {
			t.Errorf("%T: σ(v0,v2) reachable to isolated node", o)
		}
	}
	lazy := NewLazyOracle(g)
	if _, ok := lazy.MinObjectivePath(v1, v2); ok {
		t.Error("path to unreachable node returned ok")
	}
}

// randomTestGraph builds a connected-ish random graph without parallel
// edges. Weights are drawn from small integer grids when quantize is true,
// forcing score ties so the lexicographic tie-break is exercised.
func randomTestGraph(rng *rand.Rand, n int, quantize bool) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode()
	}
	seen := make(map[[2]graph.NodeID]bool)
	addEdge := func(from, to graph.NodeID) {
		if from == to || seen[[2]graph.NodeID{from, to}] {
			return
		}
		seen[[2]graph.NodeID{from, to}] = true
		var o, c float64
		if quantize {
			o = float64(1 + rng.Intn(4))
			c = float64(1 + rng.Intn(4))
		} else {
			o = 0.05 + rng.Float64()
			c = 0.05 + rng.Float64()
		}
		_ = b.AddEdge(from, to, o, c)
	}
	// Ring for connectivity, then random chords.
	for i := 0; i < n; i++ {
		addEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	for k := 0; k < 3*n; k++ {
		addEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestOraclesAgreeWithFloydWarshall is the cross-implementation property
// test: on random graphs (with deliberate ties), matrix, lazy and
// Floyd-Warshall must agree exactly on both scores; the partitioned oracle
// must agree on primary scores and produce a witness no worse on the
// secondary.
func TestOraclesAgreeWithFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(25)
		g := randomTestGraph(rng, n, trial%2 == 0)
		fwTau := floydWarshall(g, ByObjective)
		fwSig := floydWarshall(g, ByBudget)
		matrix := NewMatrixOracle(g)
		lazy := NewLazyOracle(g)
		lazy.SetCapacity(4) // force eviction churn
		part := NewPartitionedOracle(g, 5+rng.Intn(6))

		for i := graph.NodeID(0); int(i) < n; i++ {
			for j := graph.NodeID(0); int(j) < n; j++ {
				wantP, wantS, wantOK := fwTau.at(i, j)
				for name, o := range map[string]Oracle{"matrix": matrix, "lazy": lazy} {
					gotP, gotS, ok := o.MinObjective(i, j)
					if ok != wantOK || (ok && (!feq(gotP, wantP) || !feq(gotS, wantS))) {
						t.Fatalf("trial %d %s τ(%d,%d) = (%v,%v,%v), FW (%v,%v,%v)",
							trial, name, i, j, gotP, gotS, ok, wantP, wantS, wantOK)
					}
				}
				gotP, gotS, ok := part.MinObjective(i, j)
				if ok != wantOK || (ok && !feq(gotP, wantP)) {
					t.Fatalf("trial %d partitioned τ(%d,%d) primary = (%v,%v), FW %v",
						trial, i, j, gotP, ok, wantP)
				}
				if ok && gotS < wantS-1e-9 {
					t.Fatalf("trial %d partitioned τ(%d,%d) secondary %v below lexicographic optimum %v",
						trial, i, j, gotS, wantS)
				}

				wantP, wantS, wantOK = fwSig.at(i, j)
				for name, o := range map[string]Oracle{"matrix": matrix, "lazy": lazy} {
					gotS2, gotP2, ok := o.MinBudget(i, j) // returns (os, bs)
					if ok != wantOK || (ok && (!feq(gotP2, wantP) || !feq(gotS2, wantS))) {
						t.Fatalf("trial %d %s σ(%d,%d) = (%v,%v,%v), FW (%v,%v,%v)",
							trial, name, i, j, gotS2, gotP2, ok, wantS, wantP, wantOK)
					}
				}
				gotOS, gotBS, ok := part.MinBudget(i, j)
				if ok != wantOK || (ok && !feq(gotBS, wantP)) {
					t.Fatalf("trial %d partitioned σ(%d,%d) = (%v,%v,%v), FW primary %v",
						trial, i, j, gotOS, gotBS, ok, wantP)
				}
			}
		}
	}
}

func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestPathScoresMatchReportedScores verifies that materialized paths are
// real paths in the graph whose summed attributes equal the reported scores.
func TestPathScoresMatchReportedScores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTestGraph(rng, 30, false)
	lazy := NewLazyOracle(g)
	matrix := NewMatrixOracle(g)
	for trial := 0; trial < 200; trial++ {
		from := graph.NodeID(rng.Intn(g.NumNodes()))
		to := graph.NodeID(rng.Intn(g.NumNodes()))
		for name, o := range map[string]interface {
			Oracle
			PathMaterializer
		}{"lazy": lazy, "matrix": matrix} {
			wantOS, wantBS, ok := o.MinObjective(from, to)
			path, pok := o.MinObjectivePath(from, to)
			if ok != pok {
				t.Fatalf("%s: score ok=%v but path ok=%v", name, ok, pok)
			}
			if !ok {
				continue
			}
			gotOS, gotBS := pathScores(t, g, path, ByObjective)
			if !feq(gotOS, wantOS) || !feq(gotBS, wantBS) {
				t.Fatalf("%s: τ(%d,%d) path scores (%v,%v), reported (%v,%v)",
					name, from, to, gotOS, gotBS, wantOS, wantBS)
			}
		}
	}
}

// pathScores sums a path's attributes, resolving each hop to the edge a
// two-criteria search would pick under metric m.
func pathScores(t *testing.T, g *graph.Graph, path []graph.NodeID, m Metric) (os, bs float64) {
	t.Helper()
	for i := 1; i < len(path); i++ {
		bestO, bestB := math.Inf(1), math.Inf(1)
		found := false
		for _, e := range g.Out(path[i-1]) {
			if e.To != path[i] {
				continue
			}
			better := false
			if m == ByObjective {
				better = e.Objective < bestO || (e.Objective == bestO && e.Budget < bestB)
			} else {
				better = e.Budget < bestB || (e.Budget == bestB && e.Objective < bestO)
			}
			if !found || better {
				bestO, bestB = e.Objective, e.Budget
				found = true
			}
		}
		if !found {
			t.Fatalf("path hop %v→%v is not an edge", path[i-1], path[i])
		}
		os += bestO
		bs += bestB
	}
	return os, bs
}

func TestLazyPrefetchHints(t *testing.T) {
	g := buildPaperGraph(t)
	lazy := NewLazyOracle(g)
	PrefetchTarget(lazy, 7)
	sweepsAfterPrefetch := lazy.SweepCount()
	if sweepsAfterPrefetch != 2 {
		t.Fatalf("PrefetchTarget ran %d sweeps, want 2", sweepsAfterPrefetch)
	}
	// Queries into the prefetched target must not trigger new sweeps.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		lazy.MinObjective(v, 7)
		lazy.MinBudget(v, 7)
	}
	if lazy.SweepCount() != sweepsAfterPrefetch {
		t.Errorf("queries into prefetched target ran %d extra sweeps", lazy.SweepCount()-sweepsAfterPrefetch)
	}
	// Forward prefetch covers (source, ·) queries.
	PrefetchSource(lazy, 0)
	base := lazy.SweepCount()
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		lazy.MinObjective(0, v)
	}
	if lazy.SweepCount() != base {
		t.Errorf("queries from prefetched source ran %d extra sweeps", lazy.SweepCount()-base)
	}
	// Prefetch hints on a dense oracle are a no-op, not a crash.
	PrefetchSource(NewMatrixOracle(g), 0)
	PrefetchTarget(NewMatrixOracle(g), 7)
}

func TestLazyCacheEviction(t *testing.T) {
	g := buildPaperGraph(t)
	lazy := NewLazyOracle(g)
	lazy.SetCapacity(4)
	// Touch many targets; cache must stay bounded and answers stay correct.
	for round := 0; round < 3; round++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			lazy.MinObjective(0, v)
		}
	}
	if len(lazy.rev.entries) > 4 || len(lazy.fwd.entries) > 4 {
		t.Errorf("cache exceeded capacity: rev=%d fwd=%d", len(lazy.rev.entries), len(lazy.fwd.entries))
	}
	if os, _, ok := lazy.MinObjective(0, 7); !ok || os != 4 {
		t.Errorf("post-eviction τ(0,7) = %v,%v", os, ok)
	}
}

func TestPartitionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomTestGraph(rng, 120, false)
	o := NewPartitionedOracle(g, 16)
	if o.NumRegions() < 2 {
		t.Errorf("120 nodes with cell cap 16 produced %d regions", o.NumRegions())
	}
	if o.NumBorders() == 0 {
		t.Error("multi-region partition has no border nodes")
	}
	// Every node must be assigned exactly once.
	counts := make(map[graph.NodeID]int)
	for _, c := range o.cells {
		for _, v := range c.nodes {
			counts[v]++
		}
	}
	if len(counts) != g.NumNodes() {
		t.Fatalf("partition covers %d of %d nodes", len(counts), g.NumNodes())
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("node %d appears in %d cells", v, c)
		}
	}
}

func BenchmarkMatrixOracleBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomTestGraph(rng, 400, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMatrixOracle(g)
	}
}

func BenchmarkLazyOracleQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomTestGraph(rng, 2000, false)
	o := NewLazyOracle(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.MinObjective(graph.NodeID(i%2000), graph.NodeID((i*7)%2000))
	}
}
