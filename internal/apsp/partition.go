package apsp

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"kor/internal/graph"
)

// PartitionedOracle implements the pre-processing design the paper sketches
// as future work in §6: partition the graph into subgraphs, pre-process τ/σ
// only within each subgraph, and additionally store the best objective and
// budget scores between every pair of border nodes. A pair query is then
// assembled as
//
//	score(i,j) = min over borders b1 of region(i), b2 of region(j) of
//	             intra(i,b1) + overlay(b1,b2) + intra(b2,j)
//
// taking the direct intra-region score as a further candidate when i and j
// share a region. The overlay scores are computed on the border graph —
// border nodes connected by intra-region shortcuts and by the original
// cross-region edges — so any excursion through other regions is accounted
// for and the primary scores are exact. Among equal-primary paths the
// reported secondary score is that of the assembled decomposition, which can
// differ from the Dijkstra oracles' tie-break on exactly tied paths.
//
// Beyond the scores, the tables carry parent pointers (per-cell and on the
// overlay), so paths materialize as table walks (IndexedPaths), and the
// whole index serializes to a versioned on-disk format (persist.go) keyed to
// the graph fingerprint, for offline builds and mmap warm starts.
//
// All tables are immutable once built; the per-target slice cache (slice.go)
// is internally synchronized, so a PartitionedOracle is safe for concurrent
// use.
type PartitionedOracle struct {
	g        *graph.Graph
	cellSize int

	region []int32 // node → region index
	local  []int32 // node → index within its region's node list
	cells  []cellTables

	borders   []graph.NodeID // overlay index → node
	borderIdx []int32        // node → overlay index, -1 for interior nodes

	// Overlay score and parent tables, row-major [from*b+to]. Parents are
	// overlay indices (noParent at from == to or unreachable).
	ovTauP, ovTauS     []float64
	ovSigP, ovSigS     []float64
	ovTauPar, ovSigPar []int32

	// slices is the bounded per-target slice cache (slice.go).
	slices sliceCache

	// Disk-load state (persist.go): the mapping backing the aliased tables,
	// if any, and the source file size.
	mapped    []byte
	fileBytes int64
	fromDisk  bool
}

// cellTables holds one region's restricted all-pairs tables. Paths counted
// here stay inside the region; excursions are the overlay's job. Parent
// entries are local indices within the region.
type cellTables struct {
	nodes          []graph.NodeID
	borderLoc      []int32 // local indices of this region's border nodes
	tauP, tauS     []float64
	sigP, sigS     []float64
	tauPar, sigPar []int32
}

// scoreTables returns the cell's (primary, secondary, parent) tables for m.
func (c *cellTables) scoreTables(m Metric) ([]float64, []float64, []int32) {
	if m == ByObjective {
		return c.tauP, c.tauS, c.tauPar
	}
	return c.sigP, c.sigS, c.sigPar
}

// overlayTables returns the overlay (primary, secondary, parent) tables.
func (o *PartitionedOracle) overlayTables(m Metric) ([]float64, []float64, []int32) {
	if m == ByObjective {
		return o.ovTauP, o.ovTauS, o.ovTauPar
	}
	return o.ovSigP, o.ovSigS, o.ovSigPar
}

// DefaultCellSize is the region-size cap used when partitioning.
const DefaultCellSize = 128

// Partition is the lightweight region decomposition underlying both the
// partitioned oracle and the cluster shard cut (internal/cluster): every
// node assigned to exactly one region of at most CellSize nodes, plus the
// border set — nodes with any cross-region edge. It carries no score
// tables, so computing one is O(V+E); the oracle layers its τ/σ tables on
// top, and the shard cut groups regions into shards.
type Partition struct {
	// CellSize is the region-size cap the partition was grown with (after
	// clamping to ≥ 2).
	CellSize int
	// Region maps node → region index.
	Region []int32
	// Local maps node → its index within Cells[Region[node]].
	Local []int32
	// Cells lists each region's nodes in discovery order.
	Cells [][]graph.NodeID
	// Borders lists the border nodes, node ID ascending; BorderIdx maps
	// node → its index in Borders, -1 for interior nodes.
	Borders   []graph.NodeID
	BorderIdx []int32
}

// PartitionGraph partitions g into regions of at most cellSize nodes by
// breadth-first region growing over the undirected skeleton, then marks the
// border nodes. Deterministic for a given graph and cell size.
func PartitionGraph(g *graph.Graph, cellSize int) *Partition {
	if cellSize < 2 {
		cellSize = 2
	}
	n := g.NumNodes()
	p := &Partition{CellSize: cellSize, Region: make([]int32, n), Local: make([]int32, n)}
	for i := range p.Region {
		p.Region[i] = -1
	}

	// Region growing: BFS over in+out neighbours from each unassigned seed.
	for seed := 0; seed < n; seed++ {
		if p.Region[seed] != -1 {
			continue
		}
		r := int32(len(p.Cells))
		var nodes []graph.NodeID
		queue := []graph.NodeID{graph.NodeID(seed)}
		p.Region[seed] = r
		for len(queue) > 0 && len(nodes) < cellSize {
			v := queue[0]
			queue = queue[1:]
			p.Local[v] = int32(len(nodes))
			nodes = append(nodes, v)
			for _, e := range g.Out(v) {
				if p.Region[e.To] == -1 && len(nodes)+len(queue) < cellSize {
					p.Region[e.To] = r
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.In(v) {
				if p.Region[e.To] == -1 && len(nodes)+len(queue) < cellSize {
					p.Region[e.To] = r
					queue = append(queue, e.To)
				}
			}
		}
		// Anything still queued was claimed for this region: flush it in.
		for _, v := range queue {
			p.Local[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
		p.Cells = append(p.Cells, nodes)
	}

	// Border discovery: a node with any cross-region edge.
	p.BorderIdx = make([]int32, n)
	for i := range p.BorderIdx {
		p.BorderIdx[i] = -1
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		isBorder := false
		for _, e := range g.Out(v) {
			if p.Region[e.To] != p.Region[v] {
				isBorder = true
				break
			}
		}
		if !isBorder {
			for _, e := range g.In(v) {
				if p.Region[e.To] != p.Region[v] {
					isBorder = true
					break
				}
			}
		}
		if isBorder {
			p.BorderIdx[v] = int32(len(p.Borders))
			p.Borders = append(p.Borders, v)
		}
	}
	return p
}

// NewPartitionedOracle partitions g into regions of at most cellSize nodes
// (PartitionGraph) and pre-computes the intra-region and border-overlay
// tables, parallelizing the per-cell and per-border-row work across CPUs.
func NewPartitionedOracle(g *graph.Graph, cellSize int) *PartitionedOracle {
	p := PartitionGraph(g, cellSize)
	o := &PartitionedOracle{
		g:         g,
		cellSize:  p.CellSize,
		region:    p.Region,
		local:     p.Local,
		borders:   p.Borders,
		borderIdx: p.BorderIdx,
	}
	o.cells = make([]cellTables, len(p.Cells))
	for i, nodes := range p.Cells {
		o.cells[i].nodes = nodes
	}
	for _, v := range o.borders {
		c := &o.cells[o.region[v]]
		c.borderLoc = append(c.borderLoc, o.local[v])
	}
	for i := range o.cells {
		loc := o.cells[i].borderLoc
		sort.Slice(loc, func(a, b int) bool { return loc[a] < loc[b] })
	}

	o.buildCellTables()
	o.buildOverlay()
	o.slices.init(g.NumNodes())
	return o
}

// workerCount sizes a build worker pool for jobs items.
func workerCount(jobs int) int {
	w := runtime.GOMAXPROCS(0)
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// buildCellTables runs restricted two-criteria Dijkstra inside every region,
// cells distributed over a worker pool (each cell's tables are written only
// by its worker, so no synchronization beyond the WaitGroup is needed).
func (o *PartitionedOracle) buildCellTables() {
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workerCount(len(o.cells)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				cell := &o.cells[ci]
				k := len(cell.nodes)
				cell.tauP = newInfSlice(k * k)
				cell.tauS = newInfSlice(k * k)
				cell.sigP = newInfSlice(k * k)
				cell.sigS = newInfSlice(k * k)
				cell.tauPar = newNoParentSlice(k * k)
				cell.sigPar = newNoParentSlice(k * k)
				for li := 0; li < k; li++ {
					o.restrictedSweep(cell, li, ByObjective, cell.tauP, cell.tauS, cell.tauPar)
					o.restrictedSweep(cell, li, ByBudget, cell.sigP, cell.sigS, cell.sigPar)
				}
			}
		}()
	}
	for ci := range o.cells {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
}

// restrictedSweep is Dijkstra from cell.nodes[src], never leaving the
// region, writing row src of the (primary, secondary, parent) tables.
// Parents are local indices within the cell.
func (o *PartitionedOracle) restrictedSweep(cell *cellTables, src int, m Metric, prim, sec []float64, par []int32) {
	k := len(cell.nodes)
	row := src * k
	prim[row+src] = 0
	sec[row+src] = 0
	// The cells are small; a simple slice-scan frontier keeps this free of
	// allocation churn without another heap type.
	done := make([]bool, k)
	for {
		best := -1
		for i := 0; i < k; i++ {
			if done[i] || math.IsInf(prim[row+i], 1) {
				continue
			}
			if best == -1 || prim[row+i] < prim[row+best] ||
				(prim[row+i] == prim[row+best] && sec[row+i] < sec[row+best]) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		done[best] = true
		v := cell.nodes[best]
		for _, e := range o.g.Out(v) {
			if o.region[e.To] != o.region[v] {
				continue
			}
			li := int(o.local[e.To])
			var p, s float64
			if m == ByObjective {
				p, s = prim[row+best]+e.Objective, sec[row+best]+e.Budget
			} else {
				p, s = prim[row+best]+e.Budget, sec[row+best]+e.Objective
			}
			if p < prim[row+li] || (p == prim[row+li] && s < sec[row+li]) {
				prim[row+li] = p
				sec[row+li] = s
				par[row+li] = int32(best)
			}
		}
	}
}

// buildOverlay assembles the border graph per metric and computes all-pairs
// scores and parents over it with the package Dijkstra, rows distributed
// over a worker pool.
func (o *PartitionedOracle) buildOverlay() {
	b := len(o.borders)
	o.ovTauP = newInfSlice(b * b)
	o.ovTauS = newInfSlice(b * b)
	o.ovSigP = newInfSlice(b * b)
	o.ovSigS = newInfSlice(b * b)
	o.ovTauPar = newNoParentSlice(b * b)
	o.ovSigPar = newNoParentSlice(b * b)
	if b == 0 {
		return
	}
	for _, m := range []Metric{ByObjective, ByBudget} {
		overlay := o.overlayGraph(m)
		prim, sec, par := o.overlayTables(m)
		var wg sync.WaitGroup
		rows := make(chan int)
		for w := 0; w < workerCount(b); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for from := range rows {
					// The overlay graph stores the sweep's primary metric in
					// the Objective slot regardless of m, so sweep with
					// ByObjective.
					s := dijkstra(overlay, graph.NodeID(from), ByObjective, false)
					copy(prim[from*b:(from+1)*b], s.primary)
					copy(sec[from*b:(from+1)*b], s.secondary)
					copy(par[from*b:(from+1)*b], s.parent)
				}
			}()
		}
		for from := 0; from < b; from++ {
			rows <- from
		}
		close(rows)
		wg.Wait()
	}
}

// overlayGraph builds the border graph for metric m. Edge Objective carries
// the primary score and Budget the secondary, whatever m is.
func (o *PartitionedOracle) overlayGraph(m Metric) *graph.Graph {
	bld := graph.NewBuilder()
	for range o.borders {
		bld.AddNode()
	}
	// Intra-region shortcuts between a region's border nodes.
	for ci := range o.cells {
		cell := &o.cells[ci]
		k := len(cell.nodes)
		prim, sec, _ := cell.scoreTables(m)
		for _, fromLoc := range cell.borderLoc {
			for _, toLoc := range cell.borderLoc {
				if fromLoc == toLoc {
					continue
				}
				p := prim[int(fromLoc)*k+int(toLoc)]
				if math.IsInf(p, 1) {
					continue
				}
				fromB := o.borderIdx[cell.nodes[fromLoc]]
				toB := o.borderIdx[cell.nodes[toLoc]]
				// Ignore the impossible error: scores of distinct reachable
				// border pairs are positive by edge validation.
				_ = bld.AddEdge(graph.NodeID(fromB), graph.NodeID(toB), p, sec[int(fromLoc)*k+int(toLoc)])
			}
		}
	}
	// Original cross-region edges.
	for v := graph.NodeID(0); int(v) < o.g.NumNodes(); v++ {
		if o.borderIdx[v] == -1 {
			continue
		}
		for _, e := range o.g.Out(v) {
			if o.region[e.To] == o.region[v] || o.borderIdx[e.To] == -1 {
				continue
			}
			var p, s float64
			if m == ByObjective {
				p, s = e.Objective, e.Budget
			} else {
				p, s = e.Budget, e.Objective
			}
			_ = bld.AddEdge(graph.NodeID(o.borderIdx[v]), graph.NodeID(o.borderIdx[e.To]), p, s)
		}
	}
	return bld.MustBuild()
}

func newInfSlice(n int) []float64 {
	s := make([]float64, n)
	inf := math.Inf(1)
	for i := range s {
		s[i] = inf
	}
	return s
}

func newNoParentSlice(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = noParent
	}
	return s
}

// query assembles the pair score under metric m. The primary sum is
// associated as head + (mid + tail) — the same ordering the per-target
// slices (slice.go) use — so both lookup paths produce bit-identical scores.
func (o *PartitionedOracle) query(from, to graph.NodeID, m Metric) (float64, float64, bool) {
	if from == to {
		return 0, 0, true
	}
	ri, rj := o.region[from], o.region[to]
	ci, cj := &o.cells[ri], &o.cells[rj]
	ki, kj := len(ci.nodes), len(cj.nodes)
	li, lj := int(o.local[from]), int(o.local[to])

	iPrim, iSec, _ := ci.scoreTables(m)
	jPrim, jSec, _ := cj.scoreTables(m)
	ovP, ovS, _ := o.overlayTables(m)

	bestP, bestS := math.Inf(1), math.Inf(1)
	if ri == rj {
		bestP = iPrim[li*ki+lj]
		bestS = iSec[li*ki+lj]
	}
	b := len(o.borders)
	for _, b1loc := range ci.borderLoc {
		head := iPrim[li*ki+int(b1loc)]
		if math.IsInf(head, 1) {
			continue
		}
		b1 := int(o.borderIdx[ci.nodes[b1loc]])
		for _, b2loc := range cj.borderLoc {
			tail := jPrim[int(b2loc)*kj+lj]
			if math.IsInf(tail, 1) {
				continue
			}
			b2 := int(o.borderIdx[cj.nodes[b2loc]])
			mid := ovP[b1*b+b2]
			if math.IsInf(mid, 1) {
				continue
			}
			p := head + (mid + tail)
			s := iSec[li*ki+int(b1loc)] + (ovS[b1*b+b2] + jSec[int(b2loc)*kj+lj])
			if p < bestP || (p == bestP && s < bestS) {
				bestP, bestS = p, s
			}
		}
	}
	if math.IsInf(bestP, 1) {
		return 0, 0, false
	}
	return bestP, bestS, true
}

// MinObjective returns the scores of τ(from,to).
func (o *PartitionedOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	p, s, ok := o.query(from, to, ByObjective)
	return p, s, ok // primary is objective, secondary is budget
}

// MinBudget returns the scores of σ(from,to).
func (o *PartitionedOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	p, s, ok := o.query(from, to, ByBudget)
	return s, p, ok // primary is budget, secondary is objective
}

// path materializes the metric-optimal path from→to as table walks: it
// re-runs query's assembly tracking the winning decomposition, then splices
// the head cell walk, the expanded overlay chain and the tail cell walk.
func (o *PartitionedOracle) path(from, to graph.NodeID, m Metric) ([]graph.NodeID, bool) {
	if from == to {
		return []graph.NodeID{from}, true
	}
	ri, rj := o.region[from], o.region[to]
	ci, cj := &o.cells[ri], &o.cells[rj]
	ki, kj := len(ci.nodes), len(cj.nodes)
	li, lj := int(o.local[from]), int(o.local[to])

	iPrim, iSec, _ := ci.scoreTables(m)
	jPrim, jSec, _ := cj.scoreTables(m)
	ovP, ovS, _ := o.overlayTables(m)

	bestP, bestS := math.Inf(1), math.Inf(1)
	direct := false
	b1best, b2best := -1, -1 // winning border local indices
	if ri == rj {
		bestP = iPrim[li*ki+lj]
		bestS = iSec[li*ki+lj]
		direct = !math.IsInf(bestP, 1)
	}
	b := len(o.borders)
	for _, b1loc := range ci.borderLoc {
		head := iPrim[li*ki+int(b1loc)]
		if math.IsInf(head, 1) {
			continue
		}
		b1 := int(o.borderIdx[ci.nodes[b1loc]])
		for _, b2loc := range cj.borderLoc {
			tail := jPrim[int(b2loc)*kj+lj]
			if math.IsInf(tail, 1) {
				continue
			}
			b2 := int(o.borderIdx[cj.nodes[b2loc]])
			mid := ovP[b1*b+b2]
			if math.IsInf(mid, 1) {
				continue
			}
			p := head + (mid + tail)
			s := iSec[li*ki+int(b1loc)] + (ovS[b1*b+b2] + jSec[int(b2loc)*kj+lj])
			if p < bestP || (p == bestP && s < bestS) {
				bestP, bestS = p, s
				direct = false
				b1best, b2best = int(b1loc), int(b2loc)
			}
		}
	}
	if math.IsInf(bestP, 1) {
		return nil, false
	}
	if direct {
		return o.cellPath(ci, li, lj, m, nil)
	}
	path, ok := o.cellPath(ci, li, b1best, m, nil)
	if !ok {
		return nil, false
	}
	b1 := int(o.borderIdx[ci.nodes[b1best]])
	b2 := int(o.borderIdx[cj.nodes[b2best]])
	chain, ok := o.overlayChain(b1, b2, m)
	if !ok {
		return nil, false
	}
	for h := 1; h < len(chain); h++ {
		vx, vy := o.borders[chain[h-1]], o.borders[chain[h]]
		if o.region[vx] == o.region[vy] {
			// The overlay edge was an intra-region shortcut: expand it to the
			// region-optimal walk it stands for.
			c := &o.cells[o.region[vx]]
			seg, ok := o.cellPath(c, int(o.local[vx]), int(o.local[vy]), m, nil)
			if !ok {
				return nil, false
			}
			path = append(path, seg[1:]...)
		} else {
			// An original cross-region edge: vy is adjacent.
			path = append(path, vy)
		}
	}
	tail, ok := o.cellPath(cj, b2best, lj, m, nil)
	if !ok {
		return nil, false
	}
	return append(path, tail[1:]...), true
}

// cellPath walks the cell's parent row src back from dst, appending the
// region-restricted metric-optimal walk src→dst (inclusive) to buf.
func (o *PartitionedOracle) cellPath(cell *cellTables, src, dst int, m Metric, buf []graph.NodeID) ([]graph.NodeID, bool) {
	_, _, par := cell.scoreTables(m)
	k := len(cell.nodes)
	row := par[src*k : (src+1)*k]
	var rev []int32
	for v := int32(dst); ; {
		rev = append(rev, v)
		if int(v) == src {
			break
		}
		p := row[v]
		if p == noParent {
			return nil, false
		}
		v = p
	}
	for i := len(rev) - 1; i >= 0; i-- {
		buf = append(buf, cell.nodes[rev[i]])
	}
	return buf, true
}

// overlayChain walks the overlay parent row b1 back from b2, returning the
// overlay-index sequence b1..b2 inclusive.
func (o *PartitionedOracle) overlayChain(b1, b2 int, m Metric) ([]int32, bool) {
	_, _, par := o.overlayTables(m)
	b := len(o.borders)
	row := par[b1*b : (b1+1)*b]
	var rev []int32
	for v := int32(b2); ; {
		rev = append(rev, v)
		if int(v) == b1 {
			break
		}
		p := row[v]
		if p == noParent {
			return nil, false
		}
		v = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// MinObjectivePath materializes τ(from,to) as a table walk.
func (o *PartitionedOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByObjective)
}

// MinBudgetPath materializes σ(from,to) as a table walk.
func (o *PartitionedOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return o.path(from, to, ByBudget)
}

// IndexedPaths marks the path methods as table walks (see apsp.Indexed).
func (o *PartitionedOracle) IndexedPaths() bool { return true }

// NumRegions reports how many regions the partition produced.
func (o *PartitionedOracle) NumRegions() int { return len(o.cells) }

// NumBorders reports the size of the border overlay.
func (o *PartitionedOracle) NumBorders() int { return len(o.borders) }

// CellSize reports the region-size cap the partition was built with.
func (o *PartitionedOracle) CellSize() int { return o.cellSize }
