package apsp

import (
	"math"
	"sort"

	"kor/internal/graph"
)

// PartitionedOracle implements the pre-processing design the paper sketches
// as future work in §6: partition the graph into subgraphs, pre-process τ/σ
// only within each subgraph, and additionally store the best objective and
// budget scores between every pair of border nodes. A pair query is then
// assembled as
//
//	score(i,j) = min over borders b1 of region(i), b2 of region(j) of
//	             intra(i,b1) + overlay(b1,b2) + intra(b2,j)
//
// taking the direct intra-region score as a further candidate when i and j
// share a region. The overlay scores are computed on the border graph —
// border nodes connected by intra-region shortcuts and by the original
// cross-region edges — so any excursion through other regions is accounted
// for and the primary scores are exact. Among equal-primary paths the
// reported secondary score is that of the assembled decomposition, which can
// differ from the Dijkstra oracles' tie-break on exactly tied paths.
//
// All tables are immutable once NewPartitionedOracle returns, so a
// PartitionedOracle is safe for concurrent use.
type PartitionedOracle struct {
	g *graph.Graph

	region []int32 // node → region index
	local  []int32 // node → index within its region's node list
	cells  []cellTables

	borders   []graph.NodeID // overlay index → node
	borderIdx []int32        // node → overlay index, -1 for interior nodes

	// Overlay score tables, row-major [from*b+to].
	ovTauP, ovTauS []float64
	ovSigP, ovSigS []float64
}

// cellTables holds one region's restricted all-pairs tables. Paths counted
// here stay inside the region; excursions are the overlay's job.
type cellTables struct {
	nodes      []graph.NodeID
	borderLoc  []int32 // local indices of this region's border nodes
	tauP, tauS []float64
	sigP, sigS []float64
}

// DefaultCellSize is the region-size cap used when partitioning.
const DefaultCellSize = 128

// NewPartitionedOracle partitions g into regions of at most cellSize nodes
// (breadth-first region growing over the undirected skeleton) and
// pre-computes the intra-region and border-overlay tables.
func NewPartitionedOracle(g *graph.Graph, cellSize int) *PartitionedOracle {
	if cellSize < 2 {
		cellSize = 2
	}
	n := g.NumNodes()
	o := &PartitionedOracle{g: g, region: make([]int32, n), local: make([]int32, n)}
	for i := range o.region {
		o.region[i] = -1
	}

	// Region growing: BFS over in+out neighbours from each unassigned seed.
	for seed := 0; seed < n; seed++ {
		if o.region[seed] != -1 {
			continue
		}
		r := int32(len(o.cells))
		cell := cellTables{}
		queue := []graph.NodeID{graph.NodeID(seed)}
		o.region[seed] = r
		for len(queue) > 0 && len(cell.nodes) < cellSize {
			v := queue[0]
			queue = queue[1:]
			o.local[v] = int32(len(cell.nodes))
			cell.nodes = append(cell.nodes, v)
			for _, e := range g.Out(v) {
				if o.region[e.To] == -1 && len(cell.nodes)+len(queue) < cellSize {
					o.region[e.To] = r
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.In(v) {
				if o.region[e.To] == -1 && len(cell.nodes)+len(queue) < cellSize {
					o.region[e.To] = r
					queue = append(queue, e.To)
				}
			}
		}
		// Anything still queued was claimed for this region: flush it in.
		for _, v := range queue {
			o.local[v] = int32(len(cell.nodes))
			cell.nodes = append(cell.nodes, v)
		}
		o.cells = append(o.cells, cell)
	}

	// Border discovery: a node with any cross-region edge.
	o.borderIdx = make([]int32, n)
	for i := range o.borderIdx {
		o.borderIdx[i] = -1
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		isBorder := false
		for _, e := range g.Out(v) {
			if o.region[e.To] != o.region[v] {
				isBorder = true
				break
			}
		}
		if !isBorder {
			for _, e := range g.In(v) {
				if o.region[e.To] != o.region[v] {
					isBorder = true
					break
				}
			}
		}
		if isBorder {
			o.borderIdx[v] = int32(len(o.borders))
			o.borders = append(o.borders, v)
		}
	}
	for _, v := range o.borders {
		c := &o.cells[o.region[v]]
		c.borderLoc = append(c.borderLoc, o.local[v])
	}
	for i := range o.cells {
		loc := o.cells[i].borderLoc
		sort.Slice(loc, func(a, b int) bool { return loc[a] < loc[b] })
	}

	o.buildCellTables()
	o.buildOverlay()
	return o
}

// buildCellTables runs restricted two-criteria Dijkstra inside every region.
func (o *PartitionedOracle) buildCellTables() {
	for ci := range o.cells {
		cell := &o.cells[ci]
		k := len(cell.nodes)
		cell.tauP = newInfSlice(k * k)
		cell.tauS = newInfSlice(k * k)
		cell.sigP = newInfSlice(k * k)
		cell.sigS = newInfSlice(k * k)
		for li := 0; li < k; li++ {
			o.restrictedSweep(cell, li, ByObjective, cell.tauP, cell.tauS)
			o.restrictedSweep(cell, li, ByBudget, cell.sigP, cell.sigS)
		}
	}
}

// restrictedSweep is Dijkstra from cell.nodes[src], never leaving the
// region, writing row src of the (primary, secondary) tables.
func (o *PartitionedOracle) restrictedSweep(cell *cellTables, src int, m Metric, prim, sec []float64) {
	k := len(cell.nodes)
	row := src * k
	prim[row+src] = 0
	sec[row+src] = 0
	// The cells are small; a simple slice-scan frontier keeps this free of
	// allocation churn without another heap type.
	done := make([]bool, k)
	for {
		best := -1
		for i := 0; i < k; i++ {
			if done[i] || math.IsInf(prim[row+i], 1) {
				continue
			}
			if best == -1 || prim[row+i] < prim[row+best] ||
				(prim[row+i] == prim[row+best] && sec[row+i] < sec[row+best]) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		done[best] = true
		v := cell.nodes[best]
		for _, e := range o.g.Out(v) {
			if o.region[e.To] != o.region[v] {
				continue
			}
			li := int(o.local[e.To])
			var p, s float64
			if m == ByObjective {
				p, s = prim[row+best]+e.Objective, sec[row+best]+e.Budget
			} else {
				p, s = prim[row+best]+e.Budget, sec[row+best]+e.Objective
			}
			if p < prim[row+li] || (p == prim[row+li] && s < sec[row+li]) {
				prim[row+li] = p
				sec[row+li] = s
			}
		}
	}
}

// buildOverlay assembles the border graph per metric and computes all-pairs
// scores over it with the package Dijkstra.
func (o *PartitionedOracle) buildOverlay() {
	b := len(o.borders)
	o.ovTauP = newInfSlice(b * b)
	o.ovTauS = newInfSlice(b * b)
	o.ovSigP = newInfSlice(b * b)
	o.ovSigS = newInfSlice(b * b)
	if b == 0 {
		return
	}
	for _, m := range []Metric{ByObjective, ByBudget} {
		overlay := o.overlayGraph(m)
		var prim, sec []float64
		if m == ByObjective {
			prim, sec = o.ovTauP, o.ovTauS
		} else {
			prim, sec = o.ovSigP, o.ovSigS
		}
		for from := 0; from < b; from++ {
			// The overlay graph stores the sweep's primary metric in the
			// Objective slot regardless of m, so sweep with ByObjective.
			s := dijkstra(overlay, graph.NodeID(from), ByObjective, false)
			copy(prim[from*b:(from+1)*b], s.primary)
			copy(sec[from*b:(from+1)*b], s.secondary)
		}
	}
}

// overlayGraph builds the border graph for metric m. Edge Objective carries
// the primary score and Budget the secondary, whatever m is.
func (o *PartitionedOracle) overlayGraph(m Metric) *graph.Graph {
	bld := graph.NewBuilder()
	for range o.borders {
		bld.AddNode()
	}
	// Intra-region shortcuts between a region's border nodes.
	for ci := range o.cells {
		cell := &o.cells[ci]
		k := len(cell.nodes)
		var prim, sec []float64
		if m == ByObjective {
			prim, sec = cell.tauP, cell.tauS
		} else {
			prim, sec = cell.sigP, cell.sigS
		}
		for _, fromLoc := range cell.borderLoc {
			for _, toLoc := range cell.borderLoc {
				if fromLoc == toLoc {
					continue
				}
				p := prim[int(fromLoc)*k+int(toLoc)]
				if math.IsInf(p, 1) {
					continue
				}
				fromB := o.borderIdx[cell.nodes[fromLoc]]
				toB := o.borderIdx[cell.nodes[toLoc]]
				// Ignore the impossible error: scores of distinct reachable
				// border pairs are positive by edge validation.
				_ = bld.AddEdge(graph.NodeID(fromB), graph.NodeID(toB), p, sec[int(fromLoc)*k+int(toLoc)])
			}
		}
	}
	// Original cross-region edges.
	for v := graph.NodeID(0); int(v) < o.g.NumNodes(); v++ {
		if o.borderIdx[v] == -1 {
			continue
		}
		for _, e := range o.g.Out(v) {
			if o.region[e.To] == o.region[v] || o.borderIdx[e.To] == -1 {
				continue
			}
			var p, s float64
			if m == ByObjective {
				p, s = e.Objective, e.Budget
			} else {
				p, s = e.Budget, e.Objective
			}
			_ = bld.AddEdge(graph.NodeID(o.borderIdx[v]), graph.NodeID(o.borderIdx[e.To]), p, s)
		}
	}
	return bld.MustBuild()
}

func newInfSlice(n int) []float64 {
	s := make([]float64, n)
	inf := math.Inf(1)
	for i := range s {
		s[i] = inf
	}
	return s
}

// query assembles the pair score under metric m.
func (o *PartitionedOracle) query(from, to graph.NodeID, m Metric) (float64, float64, bool) {
	if from == to {
		return 0, 0, true
	}
	ri, rj := o.region[from], o.region[to]
	ci, cj := &o.cells[ri], &o.cells[rj]
	ki, kj := len(ci.nodes), len(cj.nodes)
	li, lj := int(o.local[from]), int(o.local[to])

	var iPrim, iSec, jPrim, jSec, ovP, ovS []float64
	if m == ByObjective {
		iPrim, iSec, jPrim, jSec, ovP, ovS = ci.tauP, ci.tauS, cj.tauP, cj.tauS, o.ovTauP, o.ovTauS
	} else {
		iPrim, iSec, jPrim, jSec, ovP, ovS = ci.sigP, ci.sigS, cj.sigP, cj.sigS, o.ovSigP, o.ovSigS
	}

	bestP, bestS := math.Inf(1), math.Inf(1)
	if ri == rj {
		bestP = iPrim[li*ki+lj]
		bestS = iSec[li*ki+lj]
	}
	b := len(o.borders)
	for _, b1loc := range ci.borderLoc {
		head := iPrim[li*ki+int(b1loc)]
		if math.IsInf(head, 1) {
			continue
		}
		b1 := int(o.borderIdx[ci.nodes[b1loc]])
		for _, b2loc := range cj.borderLoc {
			tail := jPrim[int(b2loc)*kj+lj]
			if math.IsInf(tail, 1) {
				continue
			}
			b2 := int(o.borderIdx[cj.nodes[b2loc]])
			mid := ovP[b1*b+b2]
			if math.IsInf(mid, 1) {
				continue
			}
			p := head + mid + tail
			s := iSec[li*ki+int(b1loc)] + ovS[b1*b+b2] + jSec[int(b2loc)*kj+lj]
			if p < bestP || (p == bestP && s < bestS) {
				bestP, bestS = p, s
			}
		}
	}
	if math.IsInf(bestP, 1) {
		return 0, 0, false
	}
	return bestP, bestS, true
}

// MinObjective returns the scores of τ(from,to).
func (o *PartitionedOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	p, s, ok := o.query(from, to, ByObjective)
	return p, s, ok // primary is objective, secondary is budget
}

// MinBudget returns the scores of σ(from,to).
func (o *PartitionedOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	p, s, ok := o.query(from, to, ByBudget)
	return s, p, ok // primary is budget, secondary is objective
}

// MinObjectivePath materializes τ(from,to) with a fresh sweep on the base
// graph; partition tables hold scores only.
func (o *PartitionedOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return dijkstra(o.g, from, ByObjective, false).walkForward(from, to)
}

// MinBudgetPath materializes σ(from,to).
func (o *PartitionedOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return dijkstra(o.g, from, ByBudget, false).walkForward(from, to)
}

// NumRegions reports how many regions the partition produced.
func (o *PartitionedOracle) NumRegions() int { return len(o.cells) }

// NumBorders reports the size of the border overlay.
func (o *PartitionedOracle) NumBorders() int { return len(o.borders) }
