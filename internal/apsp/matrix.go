package apsp

import (
	"math"
	"runtime"
	"sync"

	"kor/internal/graph"
)

// MatrixOracle holds the full |V|² τ/σ score tables of the paper's
// pre-processing, plus the parent tables the fill sweeps produce anyway, so
// paths materialize as O(length) table walks instead of fresh sweeps.
// Memory is 5·|V|²·8 bytes (4 score tables + 2 packed int32 parent tables);
// it suits point-of-interest graphs ("the number of points of interest
// within a city is not large"). Use LazyOracle for the synthetic road
// networks.
//
// The tables are immutable after construction, so a MatrixOracle is safe
// for concurrent use.
type MatrixOracle struct {
	g *graph.Graph
	n int
	// Row-major [from*n+to] tables.
	tauObj []float64
	tauBud []float64
	sigObj []float64
	sigBud []float64
	// Parent tables: tauPar[from*n+to] is to's predecessor on τ(from,to)
	// (noParent at to == from or unreachable).
	tauPar []int32
	sigPar []int32
}

// NewMatrixOracle fills the tables with one forward two-criteria Dijkstra
// per node, parallelized across CPUs. The resulting scores are exactly the
// Floyd-Warshall scores (verified against floydWarshall in tests).
func NewMatrixOracle(g *graph.Graph) *MatrixOracle {
	n := g.NumNodes()
	o := &MatrixOracle{
		g: g, n: n,
		tauObj: make([]float64, n*n),
		tauBud: make([]float64, n*n),
		sigObj: make([]float64, n*n),
		sigBud: make([]float64, n*n),
		tauPar: make([]int32, n*n),
		sigPar: make([]int32, n*n),
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for from := range rows {
				tau := dijkstra(g, graph.NodeID(from), ByObjective, false)
				sig := dijkstra(g, graph.NodeID(from), ByBudget, false)
				base := from * n
				copy(o.tauObj[base:base+n], tau.primary)
				copy(o.tauBud[base:base+n], tau.secondary)
				copy(o.tauPar[base:base+n], tau.parent)
				copy(o.sigBud[base:base+n], sig.primary)
				copy(o.sigObj[base:base+n], sig.secondary)
				copy(o.sigPar[base:base+n], sig.parent)
			}
		}()
	}
	for from := 0; from < n; from++ {
		rows <- from
	}
	close(rows)
	wg.Wait()
	return o
}

// MinObjective returns the scores of τ(from,to).
func (o *MatrixOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	i := int(from)*o.n + int(to)
	os := o.tauObj[i]
	if math.IsInf(os, 1) {
		return 0, 0, false
	}
	return os, o.tauBud[i], true
}

// MinBudget returns the scores of σ(from,to).
func (o *MatrixOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	i := int(from)*o.n + int(to)
	bs := o.sigBud[i]
	if math.IsInf(bs, 1) {
		return 0, 0, false
	}
	return o.sigObj[i], bs, true
}

// MinObjectivePath walks τ(from,to) out of the parent table.
func (o *MatrixOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	if math.IsInf(o.tauObj[int(from)*o.n+int(to)], 1) {
		return nil, false
	}
	return o.walkRow(o.tauPar, from, to)
}

// MinBudgetPath walks σ(from,to) out of the parent table.
func (o *MatrixOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	if math.IsInf(o.sigBud[int(from)*o.n+int(to)], 1) {
		return nil, false
	}
	return o.walkRow(o.sigPar, from, to)
}

// walkRow follows row from's parent chain back from to, returning the path
// from→to inclusive.
func (o *MatrixOracle) walkRow(par []int32, from, to graph.NodeID) ([]graph.NodeID, bool) {
	row := par[int(from)*o.n : int(from+1)*o.n]
	var rev []graph.NodeID
	for v := to; ; {
		rev = append(rev, v)
		if v == from {
			break
		}
		p := row[v]
		if p == noParent {
			return nil, false
		}
		v = graph.NodeID(p)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// IndexedPaths marks the path methods as table walks (see apsp.Indexed).
func (o *MatrixOracle) IndexedPaths() bool { return true }

// MemoryBytes reports the table footprint, used by tooling to warn before
// building dense tables over large graphs.
func (o *MatrixOracle) MemoryBytes() int64 { return int64(o.n) * int64(o.n) * 8 * 5 }
