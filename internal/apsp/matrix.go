package apsp

import (
	"math"
	"runtime"
	"sync"

	"kor/internal/graph"
)

// MatrixOracle holds the full |V|² τ/σ score tables of the paper's
// pre-processing. Memory is 4·|V|²·8 bytes, the same O(|V|²) the paper
// states; it suits point-of-interest graphs ("the number of points of
// interest within a city is not large"). Use LazyOracle for the synthetic
// road networks.
//
// The tables are immutable after construction and the path methods run
// fresh sweeps on the stack, so a MatrixOracle is safe for concurrent use.
type MatrixOracle struct {
	g *graph.Graph
	n int
	// Row-major [from*n+to] tables.
	tauObj []float64
	tauBud []float64
	sigObj []float64
	sigBud []float64
}

// NewMatrixOracle fills the tables with one forward two-criteria Dijkstra
// per node, parallelized across CPUs. The resulting scores are exactly the
// Floyd-Warshall scores (verified against floydWarshall in tests).
func NewMatrixOracle(g *graph.Graph) *MatrixOracle {
	n := g.NumNodes()
	o := &MatrixOracle{
		g: g, n: n,
		tauObj: make([]float64, n*n),
		tauBud: make([]float64, n*n),
		sigObj: make([]float64, n*n),
		sigBud: make([]float64, n*n),
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for from := range rows {
				tau := dijkstra(g, graph.NodeID(from), ByObjective, false)
				sig := dijkstra(g, graph.NodeID(from), ByBudget, false)
				base := from * n
				copy(o.tauObj[base:base+n], tau.primary)
				copy(o.tauBud[base:base+n], tau.secondary)
				copy(o.sigBud[base:base+n], sig.primary)
				copy(o.sigObj[base:base+n], sig.secondary)
			}
		}()
	}
	for from := 0; from < n; from++ {
		rows <- from
	}
	close(rows)
	wg.Wait()
	return o
}

// MinObjective returns the scores of τ(from,to).
func (o *MatrixOracle) MinObjective(from, to graph.NodeID) (float64, float64, bool) {
	i := int(from)*o.n + int(to)
	os := o.tauObj[i]
	if math.IsInf(os, 1) {
		return 0, 0, false
	}
	return os, o.tauBud[i], true
}

// MinBudget returns the scores of σ(from,to).
func (o *MatrixOracle) MinBudget(from, to graph.NodeID) (float64, float64, bool) {
	i := int(from)*o.n + int(to)
	bs := o.sigBud[i]
	if math.IsInf(bs, 1) {
		return 0, 0, false
	}
	return o.sigObj[i], bs, true
}

// MinObjectivePath re-derives the τ(from,to) node sequence with one forward
// sweep; the tables store scores only, as in the paper.
func (o *MatrixOracle) MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return dijkstra(o.g, from, ByObjective, false).walkForward(from, to)
}

// MinBudgetPath re-derives the σ(from,to) node sequence.
func (o *MatrixOracle) MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	return dijkstra(o.g, from, ByBudget, false).walkForward(from, to)
}

// MemoryBytes reports the table footprint, used by tooling to warn before
// building dense tables over large graphs.
func (o *MatrixOracle) MemoryBytes() int64 { return int64(o.n) * int64(o.n) * 8 * 4 }
