//go:build unix

package apsp

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping is private to the
// process and backed by the page cache, so repeated serving starts against
// the same index file share one resident copy.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping from mmapFile.
func munmapBytes(b []byte) error {
	return syscall.Munmap(b)
}
