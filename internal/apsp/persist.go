package apsp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"kor/internal/graph"
)

// On-disk persistence for the partitioned oracle: the "KORI" format. The
// point of the partition index is that it is built offline (kordata
// -build-index) and loaded in milliseconds at serving start, so the file
// layout is designed for zero-copy loading: a fixed header, a per-region
// counts block, then every table as one contiguous little-endian array with
// the float64 section 8-byte aligned. On a little-endian host the loader
// mmaps the file and aliases the arrays in place — no decode, no copy, and
// the page cache makes repeated starts effectively free. Elsewhere (or when
// mmap fails) it falls back to read-all + decode, which is portable to any
// byte order.
//
// The file is keyed to graph.Fingerprint(): a loader must present the exact
// graph the index was built from, otherwise OpenIndex fails with
// ErrIndexFingerprint — serving distances for a different graph would be
// silently wrong, the one failure mode a distance index must never have.
//
// Layout (all integers little-endian):
//
//	[0:4)   magic "KORI"
//	[4:8)   u32 format version
//	[8:16)  u64 graph fingerprint
//	[16:20) u32 cell size cap
//	[20:24) u32 node count
//	[24:28) u32 region count
//	[28:32) u32 border count
//	[32:40) u64 payload length
//	[40:44) u32 reserved (zero)
//	[44:48) u32 CRC-32 (IEEE) of header bytes [4:44)
//	payload:
//	  per region: u32 node count k, u32 border count nb
//	  int32 arrays: region[n] local[n] borderIdx[n] borders[B]
//	                cellNodes[Σk] cellBorderLoc[Σnb]
//	                ovTauPar[B²] ovSigPar[B²] cellTauPar[Σk²] cellSigPar[Σk²]
//	  zero padding to the next 8-byte file offset
//	  float64 arrays: cellTauP[Σk²] cellTauS[Σk²] cellSigP[Σk²] cellSigS[Σk²]
//	                  ovTauP[B²] ovTauS[B²] ovSigP[B²] ovSigS[B²]
//	[48+payload:) u32 CRC-32 (IEEE) of the payload

// Typed load failures. Errors returned by OpenIndex wrap exactly one of
// these, so callers can distinguish a damaged file from a stale one.
var (
	// ErrIndexFormat reports a file that is not a readable KORI index:
	// wrong magic, truncation, corruption (CRC mismatch) or inconsistent
	// internal structure.
	ErrIndexFormat = errors.New("apsp: invalid distance index file")
	// ErrIndexVersion reports a KORI file written by an incompatible format
	// version.
	ErrIndexVersion = errors.New("apsp: unsupported distance index version")
	// ErrIndexFingerprint reports an index built from a different graph than
	// the one presented at load time.
	ErrIndexFingerprint = errors.New("apsp: distance index does not match graph")
)

const (
	indexMagic      = "KORI"
	indexVersion    = 1
	indexHeaderSize = 48
)

// hostLittleEndian reports whether in-memory integer layout matches the file
// byte order, the precondition for aliasing tables in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// IndexInfo describes a partitioned oracle's index identity, surfaced
// through stats endpoints so operators can tell a warm start from a rebuild.
type IndexInfo struct {
	// Fingerprint is the graph fingerprint the tables were built from.
	Fingerprint uint64
	// CellSize is the partition's region-size cap.
	CellSize int
	// Regions and Borders describe the partition shape.
	Regions int
	Borders int
	// Bytes is the on-disk file size; 0 for an oracle built in memory.
	Bytes int64
	// Mapped reports that the tables alias an mmap'ed file.
	Mapped bool
	// FromDisk reports that the oracle was loaded by OpenIndex rather than
	// built by NewPartitionedOracle.
	FromDisk bool
}

// IndexInfo reports the oracle's index identity.
func (o *PartitionedOracle) IndexInfo() IndexInfo {
	return IndexInfo{
		Fingerprint: o.g.Fingerprint(),
		CellSize:    o.cellSize,
		Regions:     len(o.cells),
		Borders:     len(o.borders),
		Bytes:       o.fileBytes,
		Mapped:      o.mapped != nil,
		FromDisk:    o.fromDisk,
	}
}

// Close releases the mmap backing the tables, if any. The oracle must not be
// used afterwards; for in-memory oracles Close is a no-op.
func (o *PartitionedOracle) Close() error {
	if o.mapped == nil {
		return nil
	}
	m := o.mapped
	o.mapped = nil
	return munmapBytes(m)
}

// payloadLen computes the exact payload byte length of the oracle's index.
func (o *PartitionedOracle) payloadLen() uint64 {
	n := len(o.region)
	b := len(o.borders)
	sumK, sumNB, sumK2 := 0, 0, 0
	for i := range o.cells {
		k := len(o.cells[i].nodes)
		sumK += k
		sumNB += len(o.cells[i].borderLoc)
		sumK2 += k * k
	}
	counts := 8 * len(o.cells)
	i32s := 3*n + b + sumK + sumNB + 2*b*b + 2*sumK2
	f64s := 4*sumK2 + 4*b*b
	pre := counts + 4*i32s
	pad := (8 - pre%8) % 8
	return uint64(pre + pad + 8*f64s)
}

// WriteIndexFile serializes the oracle's tables to path, writing a temp file
// first and renaming it into place so a crash never leaves a torn index.
func (o *PartitionedOracle) WriteIndexFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := o.WriteIndex(bw); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WriteIndex serializes the oracle's tables in the KORI format.
func (o *PartitionedOracle) WriteIndex(w io.Writer) error {
	var hdr [indexHeaderSize]byte
	copy(hdr[0:4], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], o.g.Fingerprint())
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(o.cellSize))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(o.region)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(o.cells)))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(len(o.borders)))
	binary.LittleEndian.PutUint64(hdr[32:40], o.payloadLen())
	binary.LittleEndian.PutUint32(hdr[44:48], crc32.ChecksumIEEE(hdr[4:44]))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	sw := &sectionWriter{w: w, crc: crc32.NewIEEE(), buf: make([]byte, 1<<16)}
	for i := range o.cells {
		sw.u32(uint32(len(o.cells[i].nodes)))
		sw.u32(uint32(len(o.cells[i].borderLoc)))
	}
	sw.i32s(o.region)
	sw.i32s(o.local)
	sw.i32s(o.borderIdx)
	sw.nids(o.borders)
	for i := range o.cells {
		sw.nids(o.cells[i].nodes)
	}
	for i := range o.cells {
		sw.i32s(o.cells[i].borderLoc)
	}
	sw.i32s(o.ovTauPar)
	sw.i32s(o.ovSigPar)
	for i := range o.cells {
		sw.i32s(o.cells[i].tauPar)
	}
	for i := range o.cells {
		sw.i32s(o.cells[i].sigPar)
	}
	sw.pad8()
	for i := range o.cells {
		sw.f64s(o.cells[i].tauP)
	}
	for i := range o.cells {
		sw.f64s(o.cells[i].tauS)
	}
	for i := range o.cells {
		sw.f64s(o.cells[i].sigP)
	}
	for i := range o.cells {
		sw.f64s(o.cells[i].sigS)
	}
	sw.f64s(o.ovTauP)
	sw.f64s(o.ovTauS)
	sw.f64s(o.ovSigP)
	sw.f64s(o.ovSigS)
	if sw.err != nil {
		return sw.err
	}
	if uint64(sw.written) != o.payloadLen() {
		return fmt.Errorf("apsp: internal: index payload %d bytes, expected %d", sw.written, o.payloadLen())
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sw.crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// sectionWriter streams payload sections, tracking the payload CRC and byte
// count. Conversion goes through a reusable chunk buffer so writing a
// multi-gigabyte table never allocates proportionally.
type sectionWriter struct {
	w       io.Writer
	crc     hash.Hash32
	buf     []byte
	written int64
	err     error
}

func (sw *sectionWriter) raw(b []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.w.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.crc.Write(b)
	sw.written += int64(len(b))
}

func (sw *sectionWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.raw(b[:])
}

func (sw *sectionWriter) i32s(vals []int32) {
	for len(vals) > 0 && sw.err == nil {
		chunk := len(sw.buf) / 4
		if chunk > len(vals) {
			chunk = len(vals)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(sw.buf[i*4:], uint32(vals[i]))
		}
		sw.raw(sw.buf[:chunk*4])
		vals = vals[chunk:]
	}
}

func (sw *sectionWriter) nids(vals []graph.NodeID) {
	for len(vals) > 0 && sw.err == nil {
		chunk := len(sw.buf) / 4
		if chunk > len(vals) {
			chunk = len(vals)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(sw.buf[i*4:], uint32(vals[i]))
		}
		sw.raw(sw.buf[:chunk*4])
		vals = vals[chunk:]
	}
}

func (sw *sectionWriter) f64s(vals []float64) {
	for len(vals) > 0 && sw.err == nil {
		chunk := len(sw.buf) / 8
		if chunk > len(vals) {
			chunk = len(vals)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(sw.buf[i*8:], math.Float64bits(vals[i]))
		}
		sw.raw(sw.buf[:chunk*8])
		vals = vals[chunk:]
	}
}

func (sw *sectionWriter) pad8() {
	if pad := int((8 - sw.written%8) % 8); pad > 0 {
		var zero [8]byte
		sw.raw(zero[:pad])
	}
}

// OpenIndex loads a KORI index from path for graph g. The file must carry
// g's exact fingerprint (ErrIndexFingerprint otherwise). On little-endian
// hosts with working mmap the tables alias the mapped file — near-zero load
// allocation and instant warm starts off the page cache; otherwise the file
// is read and decoded. The returned oracle answers queries identically to
// NewPartitionedOracle(g, cellSize) run with the same build parameters.
func OpenIndex(path string, g *graph.Graph) (*PartitionedOracle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [indexHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrIndexFormat, err)
	}
	if string(hdr[0:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrIndexFormat)
	}
	if crc := binary.LittleEndian.Uint32(hdr[44:48]); crc != crc32.ChecksumIEEE(hdr[4:44]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrIndexFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrIndexVersion, v, indexVersion)
	}
	fp := binary.LittleEndian.Uint64(hdr[8:16])
	if want := g.Fingerprint(); fp != want {
		return nil, fmt.Errorf("%w: index built for graph %016x, loading graph is %016x", ErrIndexFingerprint, fp, want)
	}
	cellSize := int(binary.LittleEndian.Uint32(hdr[16:20]))
	n := int(binary.LittleEndian.Uint32(hdr[20:24]))
	ncells := int(binary.LittleEndian.Uint32(hdr[24:28]))
	b := int(binary.LittleEndian.Uint32(hdr[28:32]))
	payload := binary.LittleEndian.Uint64(hdr[32:40])
	if n != g.NumNodes() {
		return nil, fmt.Errorf("%w: index has %d nodes, graph has %d", ErrIndexFingerprint, n, g.NumNodes())
	}
	wantSize := int64(indexHeaderSize) + int64(payload) + 4
	if payload > 1<<40 || st.Size() != wantSize {
		return nil, fmt.Errorf("%w: file is %d bytes, header implies %d", ErrIndexFormat, st.Size(), wantSize)
	}

	// Obtain the whole file: mmap when possible, read-all otherwise.
	var data []byte
	mapped := false
	if hostLittleEndian {
		if m, err := mmapFile(f, int(st.Size())); err == nil {
			data, mapped = m, true
		}
	}
	if data == nil {
		data, err = io.ReadAll(io.MultiReader(bytes.NewReader(hdr[:]), f))
		if err != nil {
			return nil, err
		}
	}
	o, err := decodeIndex(data, g, cellSize, n, ncells, b, int(payload), mapped)
	if err != nil && mapped {
		munmapBytes(data)
	}
	return o, err
}

// decodeIndex assembles the oracle from the full file contents. When data is
// an aligned little-endian mapping the table slices alias it directly.
func decodeIndex(data []byte, g *graph.Graph, cellSize, n, ncells, b, payloadLen int, mapped bool) (*PartitionedOracle, error) {
	payload := data[indexHeaderSize : indexHeaderSize+payloadLen]
	want := binary.LittleEndian.Uint32(data[indexHeaderSize+payloadLen:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrIndexFormat)
	}
	if len(payload) < 8*ncells {
		return nil, fmt.Errorf("%w: truncated counts block", ErrIndexFormat)
	}

	ks := make([]int, ncells)
	nbs := make([]int, ncells)
	sumK, sumNB, sumK2 := 0, 0, 0
	for i := 0; i < ncells; i++ {
		ks[i] = int(binary.LittleEndian.Uint32(payload[i*8:]))
		nbs[i] = int(binary.LittleEndian.Uint32(payload[i*8+4:]))
		sumK += ks[i]
		sumNB += nbs[i]
		sumK2 += ks[i] * ks[i]
	}
	if sumK != n || sumNB != b {
		return nil, fmt.Errorf("%w: counts block disagrees with header (%d/%d nodes, %d/%d borders)",
			ErrIndexFormat, sumK, n, sumNB, b)
	}

	alias := mapped && hostLittleEndian && uintptr(unsafe.Pointer(&payload[0]))%8 == 0
	cur := &payloadCursor{data: payload, off: 8 * ncells, alias: alias}

	o := &PartitionedOracle{
		g:         g,
		cellSize:  cellSize,
		fromDisk:  true,
		fileBytes: int64(len(data)),
		cells:     make([]cellTables, ncells),
	}
	if mapped {
		o.mapped = data
	}
	o.region = cur.i32s(n)
	o.local = cur.i32s(n)
	o.borderIdx = cur.i32s(n)
	o.borders = cur.nids(b)
	cellNodes := cur.nids(sumK)
	cellBorderLoc := cur.i32s(sumNB)
	o.ovTauPar = cur.i32s(b * b)
	o.ovSigPar = cur.i32s(b * b)
	cellTauPar := cur.i32s(sumK2)
	cellSigPar := cur.i32s(sumK2)
	cur.pad8()
	cellTauP := cur.f64s(sumK2)
	cellTauS := cur.f64s(sumK2)
	cellSigP := cur.f64s(sumK2)
	cellSigS := cur.f64s(sumK2)
	o.ovTauP = cur.f64s(b * b)
	o.ovTauS = cur.f64s(b * b)
	o.ovSigP = cur.f64s(b * b)
	o.ovSigS = cur.f64s(b * b)
	if cur.err != nil {
		return nil, cur.err
	}
	if cur.off != payloadLen {
		return nil, fmt.Errorf("%w: payload has %d trailing bytes", ErrIndexFormat, payloadLen-cur.off)
	}

	offK, offK2 := 0, 0
	for i := 0; i < ncells; i++ {
		k, k2 := ks[i], ks[i]*ks[i]
		c := &o.cells[i]
		c.nodes = cellNodes[offK : offK+k : offK+k]
		c.tauPar = cellTauPar[offK2 : offK2+k2 : offK2+k2]
		c.sigPar = cellSigPar[offK2 : offK2+k2 : offK2+k2]
		c.tauP = cellTauP[offK2 : offK2+k2 : offK2+k2]
		c.tauS = cellTauS[offK2 : offK2+k2 : offK2+k2]
		c.sigP = cellSigP[offK2 : offK2+k2 : offK2+k2]
		c.sigS = cellSigS[offK2 : offK2+k2 : offK2+k2]
		offK += k
		offK2 += k2
	}
	offNB := 0
	for i := 0; i < ncells; i++ {
		nb := nbs[i]
		o.cells[i].borderLoc = cellBorderLoc[offNB : offNB+nb : offNB+nb]
		offNB += nb
	}

	// Structural spot checks: region/local must address real cells. The CRC
	// already rules out bit rot; this rules out a well-formed file whose
	// counts lie, which would otherwise fault at query time.
	for v := 0; v < n; v++ {
		r := o.region[v]
		if r < 0 || int(r) >= ncells || int(o.local[v]) >= ks[r] {
			return nil, fmt.Errorf("%w: node %d maps outside its region", ErrIndexFormat, v)
		}
	}
	o.slices.init(n)
	return o, nil
}

// payloadCursor walks payload sections, either aliasing the underlying bytes
// (aligned little-endian mappings) or decode-copying them.
type payloadCursor struct {
	data  []byte
	off   int
	alias bool
	err   error
}

func (c *payloadCursor) take(bytes int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+bytes > len(c.data) {
		c.err = fmt.Errorf("%w: truncated payload section", ErrIndexFormat)
		return nil
	}
	s := c.data[c.off : c.off+bytes]
	c.off += bytes
	return s
}

func (c *payloadCursor) i32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	raw := c.take(4 * n)
	if raw == nil {
		return nil
	}
	if c.alias {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func (c *payloadCursor) nids(n int) []graph.NodeID {
	if n == 0 {
		return nil
	}
	raw := c.take(4 * n)
	if raw == nil {
		return nil
	}
	if c.alias {
		return unsafe.Slice((*graph.NodeID)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func (c *payloadCursor) f64s(n int) []float64 {
	if n == 0 {
		return nil
	}
	raw := c.take(8 * n)
	if raw == nil {
		return nil
	}
	if c.alias {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// pad8 skips the writer's alignment padding. The payload starts at file
// offset 48, itself 8-aligned, so payload-relative alignment equals file
// alignment.
func (c *payloadCursor) pad8() {
	if pad := (8 - c.off%8) % 8; pad > 0 {
		c.take(pad)
	}
}
