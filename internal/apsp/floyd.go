package apsp

import (
	"math"

	"kor/internal/graph"
)

// floydTables is the textbook Floyd-Warshall the paper cites for its
// pre-processing, run once per metric with lexicographic (primary,
// secondary) relaxation. It exists as the reference implementation the
// Dijkstra-based oracles are verified against; at O(|V|³) it is only run on
// small graphs in tests.
type floydTables struct {
	n         int
	primary   []float64
	secondary []float64
}

// floydWarshall computes all-pairs optimal scores under metric m.
func floydWarshall(g *graph.Graph, m Metric) *floydTables {
	n := g.NumNodes()
	t := &floydTables{
		n:         n,
		primary:   make([]float64, n*n),
		secondary: make([]float64, n*n),
	}
	for i := range t.primary {
		t.primary[i] = math.Inf(1)
		t.secondary[i] = math.Inf(1)
	}
	for v := 0; v < n; v++ {
		t.primary[v*n+v] = 0
		t.secondary[v*n+v] = 0
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		for _, e := range g.Out(v) {
			var p, s float64
			if m == ByObjective {
				p, s = e.Objective, e.Budget
			} else {
				p, s = e.Budget, e.Objective
			}
			i := int(v)*n + int(e.To)
			if p < t.primary[i] || (p == t.primary[i] && s < t.secondary[i]) {
				t.primary[i] = p
				t.secondary[i] = s
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := i*n + k
			if math.IsInf(t.primary[ik], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				kj := k*n + j
				if math.IsInf(t.primary[kj], 1) {
					continue
				}
				ij := i*n + j
				p := t.primary[ik] + t.primary[kj]
				s := t.secondary[ik] + t.secondary[kj]
				if p < t.primary[ij] || (p == t.primary[ij] && s < t.secondary[ij]) {
					t.primary[ij] = p
					t.secondary[ij] = s
				}
			}
		}
	}
	return t
}

// at returns (primary, secondary, reachable) for the pair (i, j).
func (t *floydTables) at(i, j graph.NodeID) (float64, float64, bool) {
	p := t.primary[int(i)*t.n+int(j)]
	if math.IsInf(p, 1) {
		return 0, 0, false
	}
	return p, t.secondary[int(i)*t.n+int(j)], true
}
