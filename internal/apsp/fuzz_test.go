package apsp

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"kor/internal/graph"
)

// fuzzIndexGraph builds the small fixed graph the fuzz corpus is keyed to.
func fuzzIndexGraph() *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode()
	}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4}}
	for i, e := range edges {
		if err := b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), float64(1+i%3), float64(2+i%2)); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

// FuzzOpenIndex mutates KORI index bytes and re-opens them against the
// graph they claim to serve. OpenIndex must never panic or accept garbage
// silently: every failure wraps exactly one of the typed sentinels
// (ErrIndexFormat, ErrIndexVersion, ErrIndexFingerprint), and anything it
// does accept must still answer a distance query without crashing.
func FuzzOpenIndex(f *testing.F) {
	g := fuzzIndexGraph()
	seedPath := filepath.Join(f.TempDir(), "seed.kori")
	if err := NewPartitionedOracle(g, 3).WriteIndexFile(seedPath); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	f.Add([]byte("KORI"))
	f.Add([]byte{})
	if len(valid) > 64 {
		flipped := append([]byte(nil), valid...)
		flipped[40] ^= 0xff // inside the header, after the magic
		f.Add(flipped)
		tail := append([]byte(nil), valid...)
		tail[len(tail)-1] ^= 0xff
		f.Add(tail)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.kori")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		oracle, err := OpenIndex(path, g)
		if err != nil {
			n := 0
			for _, sentinel := range []error{ErrIndexFormat, ErrIndexVersion, ErrIndexFingerprint} {
				if errors.Is(err, sentinel) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("OpenIndex error %v wraps %d typed sentinels, want exactly 1", err, n)
			}
			return
		}
		defer oracle.Close()
		// An accepted index must serve queries and paths without crashing.
		if prim, _, ok := oracle.MinObjective(0, 5); ok && prim < 0 {
			t.Fatalf("accepted index returned negative distance %v", prim)
		}
		oracle.MinObjectivePath(0, 5)
	})
}
