package apsp

import (
	"math"
	"sync"

	"kor/internal/graph"
)

// Per-target distance slices. The label algorithms hammer a handful of fixed
// targets — the query target, the strategy-1 jump nodes, the strategy-2
// keyword nodes — with pair lookups from thousands of distinct sources. The
// partitioned oracle's pair assembly costs |borders(i)|·|borders(j)| table
// probes per lookup; amortizing it per target turns each lookup into two
// array reads. A TargetSlice is that amortization: the full
// all-sources-into-one-target score vectors, built in
// O(|B|·|borders(j)| + Σ_cells k·|borders(cell)|) and cached on the oracle
// under a byte-bounded FIFO, so a steady query stream over a stable keyword
// universe builds each slice once.

// TargetSlice holds the scores of the metric-optimal paths from every node
// into one fixed target: Prim[v] is the primary-metric score of the path
// v→target (+Inf when unreachable), Sec[v] the other attribute summed along
// that same path. Both slices are immutable once returned.
type TargetSlice struct {
	Prim []float64
	Sec  []float64
}

// SliceIndexed is an optional oracle capability: per-target score vectors at
// array-read lookup cost. Query plans resolve the slices for their candidate
// targets once at plan time and then bypass the pair-query interface
// entirely on the hot path.
type SliceIndexed interface {
	// TargetSlice returns the score vectors into target to under metric m.
	// The result is shared and immutable; callers must not mutate it.
	TargetSlice(to graph.NodeID, m Metric) *TargetSlice
}

// SourceSliced is the outbound mirror of SliceIndexed: the score vectors
// from one fixed source to every node. Greedy hammers this orientation — one
// current waypoint against every candidate keyword node.
//
// Unlike target slices, source-slice scores are not bit-identical to the
// pair interface: the assembly hoists the per-source half, which associates
// the primary sum as (head + mid) + tail where the pair query computes
// head + (mid + tail). Reachability is identical and scores agree to
// floating-point association; use source slices for ranking and
// accumulation, not for equality against pair-query answers.
type SourceSliced interface {
	// SourceSlice returns the score vectors out of from under metric m:
	// Prim[v] is the primary score of from→v. Shared and immutable.
	SourceSlice(from graph.NodeID, m Metric) *TargetSlice
}

// sliceCacheBudget bounds the memory the cached slices may hold. At 16 bytes
// per node per slice this is ~3,200 slices on a 5000-node graph. The sizing
// matters: a label search resolves a slice per strategy-2 candidate node
// (often ~100 per query), so the cache must hold the working set of a whole
// query stream — a budget that only fits one query's candidates forces every
// following query to rebuild its slices and costs more than it saves.
const sliceCacheBudget = 256 << 20

type sliceKey struct {
	node graph.NodeID
	m    Metric
	src  bool // true for source-oriented (outbound) slices
}

// sliceEntry single-flights one slice build: the first requester builds,
// concurrent requesters block on done. An entry evicted mid-build completes
// normally for whoever holds it; it just stops being findable.
type sliceEntry struct {
	done chan struct{}
	ts   *TargetSlice
}

// sliceCache is the oracle's bounded per-target slice cache: FIFO eviction,
// capacity derived from the graph size so the cache never exceeds
// sliceCacheBudget bytes of slices.
type sliceCache struct {
	mu      sync.Mutex
	entries map[sliceKey]*sliceEntry
	order   []sliceKey
	cap     int
}

// init sizes the cache for an n-node graph.
func (c *sliceCache) init(n int) {
	bytesPer := 16*n + 64
	c.cap = sliceCacheBudget / bytesPer
	if c.cap < 8 {
		c.cap = 8
	}
	c.entries = make(map[sliceKey]*sliceEntry)
}

// TargetSlice returns (building and caching on first use) the score vectors
// into to under metric m.
func (o *PartitionedOracle) TargetSlice(to graph.NodeID, m Metric) *TargetSlice {
	return o.slice(sliceKey{node: to, m: m})
}

// SourceSlice returns (building and caching on first use) the score vectors
// out of from under metric m.
func (o *PartitionedOracle) SourceSlice(from graph.NodeID, m Metric) *TargetSlice {
	return o.slice(sliceKey{node: from, m: m, src: true})
}

func (o *PartitionedOracle) slice(key sliceKey) *TargetSlice {
	c := &o.slices
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.mu.Unlock()
		<-e.done
		return e.ts
	}
	e := &sliceEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()

	if key.src {
		e.ts = o.buildSourceSlice(key.node, key.m)
	} else {
		e.ts = o.buildSlice(key.node, key.m)
	}
	close(e.done)
	return e.ts
}

// buildSlice assembles the slice into to: first the best overlay+tail
// completion per border node (mid + tail), then per node the best head
// through its region's borders — exactly query's decomposition with the
// per-target half hoisted out, and the same head + (mid + tail) association,
// so slice lookups reproduce query's primary scores bit for bit.
func (o *PartitionedOracle) buildSlice(to graph.NodeID, m Metric) *TargetSlice {
	n := len(o.region)
	ts := &TargetSlice{Prim: newInfSlice(n), Sec: newInfSlice(n)}
	rj := o.region[to]
	cj := &o.cells[rj]
	kj := len(cj.nodes)
	lj := int(o.local[to])
	jPrim, jSec, _ := cj.scoreTables(m)
	ovP, ovS, _ := o.overlayTables(m)

	// midTail[b]: best overlay(b,b2) + intra(b2,to) over to's region borders.
	b := len(o.borders)
	mtP := newInfSlice(b)
	mtS := newInfSlice(b)
	for b1 := 0; b1 < b; b1++ {
		row := b1 * b
		bp, bs := math.Inf(1), math.Inf(1)
		for _, b2loc := range cj.borderLoc {
			tail := jPrim[int(b2loc)*kj+lj]
			if math.IsInf(tail, 1) {
				continue
			}
			b2 := int(o.borderIdx[cj.nodes[b2loc]])
			mid := ovP[row+b2]
			if math.IsInf(mid, 1) {
				continue
			}
			p := mid + tail
			s := ovS[row+b2] + jSec[int(b2loc)*kj+lj]
			if p < bp || (p == bp && s < bs) {
				bp, bs = p, s
			}
		}
		mtP[b1], mtS[b1] = bp, bs
	}

	for ci := range o.cells {
		cell := &o.cells[ci]
		k := len(cell.nodes)
		iPrim, iSec, _ := cell.scoreTables(m)
		sameRegion := int32(ci) == rj
		for li := 0; li < k; li++ {
			bestP, bestS := math.Inf(1), math.Inf(1)
			if sameRegion {
				bestP = iPrim[li*k+lj]
				bestS = iSec[li*k+lj]
			}
			for _, b1loc := range cell.borderLoc {
				head := iPrim[li*k+int(b1loc)]
				if math.IsInf(head, 1) {
					continue
				}
				b1 := int(o.borderIdx[cell.nodes[b1loc]])
				if math.IsInf(mtP[b1], 1) {
					continue
				}
				p := head + mtP[b1]
				s := iSec[li*k+int(b1loc)] + mtS[b1]
				if p < bestP || (p == bestP && s < bestS) {
					bestP, bestS = p, s
				}
			}
			v := cell.nodes[li]
			ts.Prim[v] = bestP
			ts.Sec[v] = bestS
		}
	}
	ts.Prim[to] = 0
	ts.Sec[to] = 0
	return ts
}

// buildSourceSlice assembles the outbound slice from from: first the best
// head+overlay arrival per border node ((head + mid), hoisting the
// per-source half), then per node the best completion through its region's
// borders. The hoisted association makes this the (head + mid) + tail
// ordering — see SourceSliced for the contract.
func (o *PartitionedOracle) buildSourceSlice(from graph.NodeID, m Metric) *TargetSlice {
	n := len(o.region)
	ts := &TargetSlice{Prim: newInfSlice(n), Sec: newInfSlice(n)}
	ri := o.region[from]
	ci := &o.cells[ri]
	ki := len(ci.nodes)
	li := int(o.local[from])
	iPrim, iSec, _ := ci.scoreTables(m)
	ovP, ovS, _ := o.overlayTables(m)

	// hm[b2]: best intra(from,b1) + overlay(b1,b2) over from's region borders.
	b := len(o.borders)
	hmP := newInfSlice(b)
	hmS := newInfSlice(b)
	for _, b1loc := range ci.borderLoc {
		head := iPrim[li*ki+int(b1loc)]
		if math.IsInf(head, 1) {
			continue
		}
		headS := iSec[li*ki+int(b1loc)]
		row := int(o.borderIdx[ci.nodes[b1loc]]) * b
		for b2 := 0; b2 < b; b2++ {
			mid := ovP[row+b2]
			if math.IsInf(mid, 1) {
				continue
			}
			p := head + mid
			s := headS + ovS[row+b2]
			if p < hmP[b2] || (p == hmP[b2] && s < hmS[b2]) {
				hmP[b2], hmS[b2] = p, s
			}
		}
	}

	for cj := range o.cells {
		cell := &o.cells[cj]
		k := len(cell.nodes)
		jPrim, jSec, _ := cell.scoreTables(m)
		sameRegion := int32(cj) == ri
		for lj := 0; lj < k; lj++ {
			bestP, bestS := math.Inf(1), math.Inf(1)
			if sameRegion {
				bestP = iPrim[li*ki+lj]
				bestS = iSec[li*ki+lj]
			}
			for _, b2loc := range cell.borderLoc {
				tail := jPrim[int(b2loc)*k+lj]
				if math.IsInf(tail, 1) {
					continue
				}
				b2 := int(o.borderIdx[cell.nodes[b2loc]])
				if math.IsInf(hmP[b2], 1) {
					continue
				}
				p := hmP[b2] + tail
				s := hmS[b2] + jSec[int(b2loc)*k+lj]
				if p < bestP || (p == bestP && s < bestS) {
					bestP, bestS = p, s
				}
			}
			v := cell.nodes[lj]
			ts.Prim[v] = bestP
			ts.Sec[v] = bestS
		}
	}
	ts.Prim[from] = 0
	ts.Sec[from] = 0
	return ts
}
