// Package apsp implements the paper's pre-processing stage (§3.1): for node
// pairs (vi, vj), the scores of two distinguished paths —
//
//	τ(i,j): the path minimizing the objective score, and
//	σ(i,j): the path minimizing the budget score.
//
// Only the objective and budget scores of τ and σ feed the search algorithms;
// the paths themselves are materialized on demand for presenting final
// routes.
//
// Three interchangeable oracles are provided:
//
//   - MatrixOracle: dense |V|² score tables, the faithful rendition of the
//     paper's Floyd-Warshall pre-processing. Tables are filled by repeated
//     two-criteria Dijkstra, which yields identical scores in
//     O(|V|·|E|·log|V|) instead of O(|V|³).
//   - LazyOracle: memoized single-source/single-target Dijkstra with a
//     bounded cache. Semantically identical, but scales to the 20k-node
//     graphs of the paper's Figure 17 without |V|² memory.
//   - PartitionedOracle (partition.go): the paper's §6 future-work design —
//     graph partition, per-cell tables and a border overlay.
//
// Ties between equal-score paths are broken by the secondary attribute
// (τ prefers the cheaper-budget path among equal-objective paths, σ the
// cheaper-objective one), making every oracle deterministic and mutually
// consistent.
package apsp

import "kor/internal/graph"

// Metric selects which edge attribute a search minimizes.
type Metric int

const (
	// ByObjective minimizes the objective attribute (the τ paths).
	ByObjective Metric = iota
	// ByBudget minimizes the budget attribute (the σ paths).
	ByBudget
)

// Oracle answers τ/σ score queries between node pairs. Implementations
// return ok=false when no path exists; scores are then undefined.
//
// All package oracles are safe for concurrent readers: MatrixOracle and
// PartitionedOracle are immutable after construction, and LazyOracle
// synchronizes its sweep caches internally. Custom implementations must
// uphold the same contract — one oracle instance serves every concurrent
// query of an engine.
type Oracle interface {
	// MinObjective returns the objective and budget score of τ(from,to).
	MinObjective(from, to graph.NodeID) (os, bs float64, ok bool)
	// MinBudget returns the objective and budget score of σ(from,to).
	MinBudget(from, to graph.NodeID) (os, bs float64, ok bool)
}

// PathMaterializer recovers the concrete τ/σ paths, used when presenting a
// final route to the user. The paper's tables store scores only; recovering
// a path costs one single-source run.
type PathMaterializer interface {
	// MinObjectivePath returns the node sequence of τ(from,to), inclusive of
	// both endpoints. For from == to it returns [from].
	MinObjectivePath(from, to graph.NodeID) ([]graph.NodeID, bool)
	// MinBudgetPath returns the node sequence of σ(from,to).
	MinBudgetPath(from, to graph.NodeID) ([]graph.NodeID, bool)
}

// Prefetcher is an optional oracle capability: a hint that many queries with
// a fixed source (or fixed target) are coming, letting lazy implementations
// choose the right sweep direction. The dense oracles ignore the hints.
type Prefetcher interface {
	// PrefetchSource hints that τ/σ queries from this source are imminent.
	PrefetchSource(from graph.NodeID)
	// PrefetchTarget hints that τ/σ queries into this target are imminent.
	PrefetchTarget(to graph.NodeID)
}

// PrefetchSource forwards the hint if the oracle supports it.
func PrefetchSource(o Oracle, from graph.NodeID) {
	if p, ok := o.(Prefetcher); ok {
		p.PrefetchSource(from)
	}
}

// PrefetchTarget forwards the hint if the oracle supports it.
func PrefetchTarget(o Oracle, to graph.NodeID) {
	if p, ok := o.(Prefetcher); ok {
		p.PrefetchTarget(to)
	}
}
