package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's context discipline (DESIGN.md "Cancellation"):
//
//   - any function taking a context.Context takes it as the first
//     parameter, so cancellation is visibly threaded and call sites stay
//     uniform;
//   - library packages never mint their own root context: calls to
//     context.Background or context.TODO are confined to package main.
//     Three shapes are exempt — functions carrying a Deprecated: doc
//     comment (the frozen pre-context wrappers), the nil-guard
//     `if ctx == nil { ctx = context.Background() }` that keeps exported
//     entry points total, and the one-line convenience bridge
//     `func (s T) X(...) { return s.XCtx(context.Background(), ...) }`
//     whose body delegates to its own Ctx variant;
//   - worklist loops in the core search kernels (unbounded `for {` /
//     `for !q.Empty()` / `for len(q) > 0` loops) must poll cancellation via
//     checkCtx or ctx.Err/ctx.Done, or a hostile query outlives its
//     deadline.
var CtxFlow = &Analyzer{
	Name: "ctx-flow",
	Doc:  "context first param, no Background/TODO outside main, worklist loops poll cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	isMain := pass.Pkg.Types.Name() == "main"
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkCtxParamPosition(pass, fd)
			}
		}
		for _, unit := range funcUnits(file) {
			if !isMain {
				checkNoRootContext(pass, unit)
			}
			if pass.Pkg.Path == "kor/internal/core" {
				checkWorklistLoops(pass, unit)
			}
		}
	}
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxParamPosition flags a context.Context parameter that is not the
// first parameter. Methods count their receiver separately, per convention.
func checkCtxParamPosition(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.Pkg.Info, field.Type) && idx != 0 {
			pass.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; context is always the first parameter", fd.Name.Name, idx+1)
		}
		idx += n
	}
}

// isRootContextCall reports a call to context.Background or context.TODO.
func isRootContextCall(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass.Pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "Background" || obj.Name() == "TODO"
}

// checkNoRootContext flags context.Background/TODO in library code, minus
// the two sanctioned shapes.
func checkNoRootContext(pass *Pass, unit FuncUnit) {
	if hasDeprecatedDoc(unit.Doc) || isCtxBridge(unit) {
		return
	}
	// Pre-pass: collect Background calls inside the nil-guard idiom
	// `if ctx == nil { ctx = context.Background() }`.
	guarded := make(map[*ast.CallExpr]bool)
	inspectUnit(unit.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op.String() != "==" {
			return true
		}
		xNil := isNilIdent(cond.X) || isNilIdent(cond.Y)
		if !xNil || len(ifs.Body.List) != 1 {
			return true
		}
		assign, ok := ifs.Body.List[0].(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && isRootContextCall(pass, call) {
			guarded[call] = true
		}
		return true
	})
	inspectUnit(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || guarded[call] || !isRootContextCall(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s mints a root context in a library package; thread the caller's ctx instead (nil-guards and Deprecated wrappers are exempt)", unit.Name)
		return true
	})
}

// isCtxBridge recognizes the sanctioned context-free convenience wrapper:
// a declared function X whose entire body is
// `return recv.XCtx(context.Background(), ...)`. The Background root is the
// bridge's whole point; cancellation-aware callers use the Ctx variant.
func isCtxBridge(unit FuncUnit) bool {
	if unit.Decl == nil || len(unit.Body.List) != 1 {
		return false
	}
	ret, ok := unit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || calleeName(call) != unit.Name+"Ctx" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	return ok && calleeName(first) == "Background"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isWorklistLoop recognizes the shapes of an unbounded work-consuming loop:
// a bare `for {`, a `for !q.Empty()`-style condition, or a condition
// comparing len(...)/x.Len() against the literal 0.
func isWorklistLoop(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	matched := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch calleeName(e) {
			case "Empty":
				matched = true
			}
		case *ast.BinaryExpr:
			if isLenCall(e.X) && isZeroLit(e.Y) || isLenCall(e.Y) && isZeroLit(e.X) {
				matched = true
			}
		}
		return !matched
	})
	return matched
}

func isLenCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name := calleeName(call)
	return name == "len" || name == "Len"
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// pollsCancellation reports whether the loop body contains a cancellation
// probe: a checkCtx call, ctx.Err, or ctx.Done.
func pollsCancellation(body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "checkCtx", "Err", "Done":
			polls = true
			return false
		}
		return true
	})
	return polls
}

// checkWorklistLoops flags unbounded loops in the search kernels that never
// poll cancellation.
func checkWorklistLoops(pass *Pass, unit FuncUnit) {
	inspectUnit(unit.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !isWorklistLoop(loop) {
			return true
		}
		if !pollsCancellation(loop.Body) {
			pass.Reportf(loop.Pos(),
				"worklist loop in %s never polls cancellation; call p.checkCtx() (or ctx.Err) inside the loop", unit.Name)
		}
		return true
	})
}
