package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap enforces the repo's error taxonomy contract (DESIGN.md "Errors"):
// sentinel errors (ErrNoRoute, ErrBadQuery, io.EOF, ...) are wrapped with
// the %w verb and matched with errors.Is, never with ==. Direct equality
// breaks the moment any layer wraps the error for context — which the
// taxonomy explicitly invites callers to do.
//
// Flagged shapes:
//
//   - err == SomeSentinel / err != SomeSentinel (nil comparisons are fine);
//   - switch err { case SomeSentinel: ... };
//   - fmt.Errorf with a sentinel bound to a verb other than %w;
//   - comparing .Error() strings with == or strings.Contains.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors are wrapped with %w and compared with errors.Is, never ==",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(pass, x)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, x)
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
}

// sentinelObjOf resolves e to a package-level sentinel error object, or nil.
func sentinelObjOf(pass *Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.Pkg.Info.Uses[x.Sel]
	}
	if obj != nil && isSentinelError(obj) {
		return obj
	}
	return nil
}

// isErrorStringCall reports a .Error() call on an error value.
func isErrorStringCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.Pkg.Info.Types[sel.X].Type
	return t != nil && types.Implements(t, errorIface)
}

func checkErrComparison(pass *Pass, bin *ast.BinaryExpr) {
	op := bin.Op.String()
	if op != "==" && op != "!=" {
		return
	}
	if isNilIdent(bin.X) || isNilIdent(bin.Y) {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if obj := sentinelObjOf(pass, side); obj != nil {
			pass.Reportf(bin.Pos(),
				"sentinel %s compared with %s; use errors.Is so wrapped errors still match", obj.Name(), op)
			return
		}
	}
	if isErrorStringCall(pass, bin.X) || isErrorStringCall(pass, bin.Y) {
		pass.Reportf(bin.Pos(),
			"comparing .Error() strings; match the sentinel with errors.Is instead")
	}
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := pass.Pkg.Info.Types[sw.Tag].Type
	if t == nil || !types.Implements(t, errorIface) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := sentinelObjOf(pass, e); obj != nil {
				pass.Reportf(e.Pos(),
					"switch on an error value cases sentinel %s; use an if/else chain of errors.Is", obj.Name())
			}
		}
	}
}

// checkErrorfWrap maps fmt.Errorf verbs to arguments and flags sentinels
// bound to anything but %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.Pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb == 'w' {
			continue
		}
		if sObj := sentinelObjOf(pass, call.Args[argIdx]); sObj != nil {
			pass.Reportf(call.Args[argIdx].Pos(),
				"sentinel %s formatted with %%%c; wrap it with %%w so errors.Is keeps matching downstream", sObj.Name(), verb)
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order, skipping %% and explicit-index forms it cannot track.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// skip flags, width, precision
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			// explicit argument index: give up on positional tracking
			return nil
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
