// Package kor is the snapshot-pin golden fixture: an engine-shaped struct
// with an atomic snapshot pointer, exercising the one-Load-per-function,
// Store-under-swapMu and no-escape clauses.
package kor

import (
	"sync"
	"sync/atomic"
)

type snapshot struct{ gen int }

type Engine struct {
	snap   atomic.Pointer[snapshot]
	swapMu sync.Mutex
}

// Good pins exactly one snapshot.
func (e *Engine) Good() int {
	sn := e.snap.Load()
	if sn == nil {
		return 0
	}
	return sn.gen
}

// DoubleLoad loads twice: the second load could see a different graph.
func (e *Engine) DoubleLoad() int {
	a := e.snap.Load()
	b := e.snap.Load()
	if a == nil || b == nil {
		return 0
	}
	return a.gen + b.gen
}

// StoreUnlocked swaps the snapshot without holding swapMu.
func (e *Engine) StoreUnlocked(sn *snapshot) {
	e.snap.Store(sn)
}

// StoreLockedOK takes the swap lock itself.
func (e *Engine) StoreLockedOK(sn *snapshot) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	e.snap.Store(sn)
}

// installLocked follows the ...Locked convention: the caller holds swapMu.
func (e *Engine) installLocked(sn *snapshot) {
	e.snap.Store(sn)
}

// SwapDisallowed uses a pointer method other than Load/Store.
func (e *Engine) SwapDisallowed(sn *snapshot) *snapshot {
	return e.snap.Swap(sn)
}

// Escapes lets the pointer cell itself escape.
func (e *Engine) Escapes() *atomic.Pointer[snapshot] {
	return &e.snap
}

// ClosuresAreSeparate loads once in the method and once in the callback;
// each unit pins its own snapshot, so this is clean.
func (e *Engine) ClosuresAreSeparate() func() int {
	sn := e.snap.Load()
	_ = sn
	return func() int {
		inner := e.snap.Load()
		if inner == nil {
			return 0
		}
		return inner.gen
	}
}
