// Package core is the plan-lifecycle golden fixture: a pooled plan with
// newPlan/close and the two sanctioned ownership shapes, plus the leaks and
// fence violations the rule must catch.
package core

import "context"

type scratch struct{ buf []int }

type Searcher struct{ hits int }

func (s *Searcher) getScratch() *scratch { return &scratch{} }

func (s *Searcher) putScratch(sc *scratch) { s.hits++ }

type plan struct {
	s  *Searcher
	sc *scratch
}

func (s *Searcher) newPlan(ctx context.Context, q int) (*plan, error) {
	if q < 0 {
		return nil, context.Canceled
	}
	p := &plan{s: s}
	p.sc = s.getScratch()
	return p, nil
}

func (p *plan) close() { p.s.putScratch(p.sc) }

// runConsume is a closer method: first statement defers close, so callers
// may transfer ownership to it.
func (p *plan) runConsume() (int, error) {
	defer p.close()
	return len(p.sc.buf), nil
}

// GoodDefer secures the plan immediately after the error check.
func GoodDefer(ctx context.Context, s *Searcher, q int) (int, error) {
	p, err := s.newPlan(ctx, q)
	if err != nil {
		return 0, err
	}
	defer p.close()
	return len(p.sc.buf), nil
}

// GoodTransfer hands the plan to a consuming method.
func GoodTransfer(ctx context.Context, s *Searcher, q int) (int, error) {
	p, err := s.newPlan(ctx, q)
	if err != nil {
		return 0, err
	}
	return p.runConsume()
}

// LeakReturn returns the plan's result without ever closing it.
func LeakReturn(ctx context.Context, s *Searcher, q int) (int, error) {
	p, err := s.newPlan(ctx, q)
	if err != nil {
		return 0, err
	}
	return len(p.sc.buf), nil
}

// LeakEarlyReturn inspects the plan and may return before securing it.
func LeakEarlyReturn(ctx context.Context, s *Searcher, q int) (int, error) {
	p, err := s.newPlan(ctx, q)
	if err != nil {
		return 0, err
	}
	if len(p.sc.buf) > 8 {
		return len(p.sc.buf), nil
	}
	defer p.close()
	return 0, nil
}

// FenceGet checks out scratch outside newPlan.
func FenceGet(s *Searcher) int {
	sc := s.getScratch()
	return len(sc.buf)
}

// FencePut releases scratch outside close.
func FencePut(s *Searcher, sc *scratch) {
	s.putScratch(sc)
}
