module kor

go 1.24
