// Package kor is the suppression-hygiene golden fixture.
package kor

import (
	"errors"
	"io"
)

var ErrLocal = errors.New("local")

// Suppressed carries a well-formed ignore: no errwrap finding survives.
func Suppressed(err error) bool {
	//korvet:ignore errwrap fixture demonstrating a justified suppression
	return err == ErrLocal
}

// SuppressedEOL uses the end-of-line placement.
func SuppressedEOL(err error) bool {
	return err == io.EOF //korvet:ignore errwrap fixture demonstrating end-of-line placement
}

// MissingReason has an ignore with no justification.
func MissingReason(err error) bool {
	//korvet:ignore errwrap
	return err == ErrLocal
}

// UnknownRule names a rule that does not exist.
func UnknownRule(err error) bool {
	//korvet:ignore no-such-rule because I said so
	return err == ErrLocal
}

// NoRule names nothing at all.
func NoRule(err error) bool {
	//korvet:ignore
	return err == ErrLocal
}

// Unused suppresses a line with no finding.
func Unused(err error) bool {
	//korvet:ignore errwrap nothing actually fires here
	return errors.Is(err, ErrLocal)
}
