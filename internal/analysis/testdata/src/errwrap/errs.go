// Package kor is the errwrap golden fixture: sentinel comparison, error
// switches, Errorf verbs and .Error() string matching.
package kor

import (
	"errors"
	"fmt"
	"io"
)

var ErrNoRoute = errors.New("no route")

// GoodIs matches through wrapping.
func GoodIs(err error) bool { return errors.Is(err, ErrNoRoute) }

// GoodNil compares against nil only.
func GoodNil(err error) bool { return err == nil }

// GoodWrap binds the sentinel to %w.
func GoodWrap(err error) error {
	return fmt.Errorf("%w: searching: %v", ErrNoRoute, err)
}

// BadEq compares a local sentinel with ==.
func BadEq(err error) bool { return err == ErrNoRoute }

// BadEqImported compares an imported sentinel with !=.
func BadEqImported(err error) bool { return err != io.EOF }

// BadSwitch cases sentinels in an error switch.
func BadSwitch(err error) string {
	switch err {
	case ErrNoRoute:
		return "no-route"
	case io.EOF:
		return "eof"
	default:
		return "other"
	}
}

// BadVerb formats the sentinel with %v, severing the Is chain.
func BadVerb(err error) error {
	return fmt.Errorf("searching: %v", ErrNoRoute)
}

// BadStringMatch compares rendered error text.
func BadStringMatch(err error) bool {
	return err.Error() == "no route"
}
