// Package kor is the metric-labels golden fixture: a miniature label-vec
// kernel plus the trusted and untrusted ways of feeding it.
package kor

// CounterVec mimics the metrics kernel's vector type; the rule matches it
// by type name.
type CounterVec struct{ n int }

// With resolves a child by label values.
func (v *CounterVec) With(labels ...string) *CounterVec { return v }

// Inc bumps the resolved child.
func (v *CounterVec) Inc() { v.n++ }

const outcomeOK = "ok"

var requests = &CounterVec{}

// Good feeds constants and constant-fed locals.
func Good() {
	requests.With(outcomeOK, "static").Inc()
	l := outcomeOK
	requests.With(l).Inc()
	for _, k := range []string{outcomeOK, "error"} {
		requests.With(k).Inc()
	}
}

// BadRequestDerived feeds a request string straight into the label vec.
func BadRequestDerived(userAlgo string) {
	requests.With(userAlgo).Inc()
}

// BadTaintedLocal feeds a local that was assigned from request data.
func BadTaintedLocal(userAlgo string) {
	l := userAlgo
	requests.With(l).Inc()
}

// record is a marked sink: its callers must pass closed-set values, so the
// parameter is trusted here.
//
// korvet:labels — outcome is drawn from the caller's closed sets.
func record(outcome string) {
	requests.With(outcome).Inc()
}

// GoodSinkCall passes a constant to the sink.
func GoodSinkCall() { record(outcomeOK) }

// BadSinkCall passes request data to the sink.
func BadSinkCall(userAlgo string) { record(userAlgo) }

// Algo is a domain type; label is its mapper into the closed set.
type Algo string

// label folds an arbitrary Algo into the closed label set. The Algo
// parameter is a mapper input, deliberately unvetted.
//
// korvet:labels — returns a member of {"fast", "other"}.
func label(a Algo) string {
	if a == "fast" {
		return "fast"
	}
	return "other"
}

// GoodMapped routes request data through the mapper.
func GoodMapped(userAlgo string) {
	requests.With(label(Algo(userAlgo))).Inc()
}

// ClosureTrust shows a closure capturing a marked function's parameter.
//
// korvet:labels — endpoint is a literal at every call site.
func instrument(endpoint string) func() {
	return func() {
		requests.With(endpoint).Inc()
	}
}

var _ = instrument("route")
