// Package kor is the definitive-outcome golden fixture: cache puts and
// flight publishes with and without the dominating check.
package kor

import "errors"

var errTransient = errors.New("transient")

type resultCache struct{ m map[string]int }

func (c *resultCache) Put(key string, v int) { c.m[key] = v }

type flightGroup struct{ n int }

func (g *flightGroup) finish(key string, v int, err error, definitive bool) { g.n++ }

type Engine struct {
	cache   *resultCache
	flights *flightGroup
}

func definitiveOutcome(err error) bool {
	return err == nil || !errors.Is(err, errTransient)
}

// GoodGuarded publishes only under the definitiveOutcome check.
func (e *Engine) GoodGuarded(key string, v int, err error) {
	if definitiveOutcome(err) {
		e.cache.Put(key, v)
		e.flights.finish(key, v, err, true)
	} else {
		e.flights.finish(key, 0, err, false)
	}
}

// GoodConjunct allows extra conjuncts alongside the check.
func (e *Engine) GoodConjunct(key string, v int, err error) {
	if definitiveOutcome(err) && v > 0 {
		e.cache.Put(key, v)
	}
}

// GoodNonDefinitive may publish a non-definitive result anywhere.
func (e *Engine) GoodNonDefinitive(key string, err error) {
	e.flights.finish(key, 0, err, false)
}

// BadUnguardedPut caches without any definitiveness check.
func (e *Engine) BadUnguardedPut(key string, v int) {
	e.cache.Put(key, v)
}

// BadElsePublish broadcasts as definitive on the non-definitive branch.
func (e *Engine) BadElsePublish(key string, v int, err error) {
	if definitiveOutcome(err) {
		e.flights.finish(key, v, err, true)
	} else {
		e.flights.finish(key, v, err, true)
	}
}
