// Command app shows that package main may mint root contexts.
package main

import (
	"context"

	"kor"
)

func main() {
	ctx := context.Background()
	_ = kor.Good(ctx, 1)
}
