// Package core is the worklist-loop half of the ctx-flow fixture.
package core

import "context"

type queue struct{ items []int }

func (q *queue) Empty() bool { return len(q.items) == 0 }

func (q *queue) pop() int {
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// DrainPolled polls cancellation each iteration.
func DrainPolled(ctx context.Context, q *queue) (int, error) {
	sum := 0
	for !q.Empty() {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		sum += q.pop()
	}
	return sum, nil
}

// DrainUnpolled never checks ctx: a hostile query outlives its deadline.
func DrainUnpolled(ctx context.Context, q *queue) int {
	sum := 0
	for !q.Empty() {
		sum += q.pop()
	}
	return sum
}

// SliceUnpolled is the len(...)>0 spelling of the same bug.
func SliceUnpolled(ctx context.Context, work []int) int {
	sum := 0
	for len(work) > 0 {
		sum += work[0]
		work = work[1:]
	}
	return sum
}

// BareLoopUnpolled is the `for {` spelling.
func BareLoopUnpolled(ctx context.Context, q *queue) int {
	sum := 0
	for {
		if q.Empty() {
			return sum
		}
		sum += q.pop()
	}
}

// BoundedLoop is index-bounded and exempt.
func BoundedLoop(ctx context.Context, work []int) int {
	sum := 0
	for i := 0; i < len(work); i++ {
		sum += work[i]
	}
	return sum
}
