// Package kor is the ctx-flow golden fixture: parameter position, root
// contexts in library code, and the three sanctioned escape hatches.
package kor

import "context"

// Good threads ctx first.
func Good(ctx context.Context, q int) error {
	return ctx.Err()
}

// CtxSecond takes ctx in the wrong position.
func CtxSecond(q int, ctx context.Context) error {
	return ctx.Err()
}

// MintsRoot fabricates a root context in library code.
func MintsRoot(q int) error {
	ctx := context.Background()
	return ctx.Err()
}

// NilGuard uses the sanctioned totality guard.
func NilGuard(ctx context.Context, q int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

// Old is frozen pre-context API.
//
// Deprecated: use Good.
func Old(q int) error {
	return Good(context.Background(), q)
}

type Runner struct{}

// RunCtx is the cancellation-aware entry point.
func (r Runner) RunCtx(ctx context.Context, q int) error { return ctx.Err() }

// Run is the sanctioned convenience bridge to RunCtx.
func (r Runner) Run(q int) error {
	return r.RunCtx(context.Background(), q)
}
