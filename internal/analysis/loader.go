package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	// Path is the import path ("kor", "kor/internal/core", ...).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the loader-wide file set (shared across packages so
	// cross-package positions stay coherent).
	Fset *token.FileSet
	// Files are the parsed files, comments included.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks the packages of one module using
// only the standard library: module-local imports are resolved by walking
// the module tree, everything else (the standard library) through the
// source importer. It implements types.Importer.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path from go.mod.
	Module string
	// IncludeTests additionally parses in-package _test.go files. External
	// test packages (package foo_test) are never loaded.
	IncludeTests bool

	fset     *token.FileSet
	ctxt     build.Context
	std      types.Importer
	pkgs     map[string]*Package
	inFlight map[string]bool

	// labelFuncs records every function object in loaded packages whose doc
	// comment carries the korvet:labels marker (see metric-labels).
	labelFuncs map[types.Object]bool
}

// NewLoader builds a loader for the module rooted at root, reading the
// module path from its go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       abs,
		Module:     module,
		fset:       fset,
		ctxt:       build.Default,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		inFlight:   make(map[string]bool),
		labelFuncs: make(map[types.Object]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// IsLabelFunc reports whether obj was declared with the korvet:labels doc
// marker in any package this loader has loaded.
func (l *Loader) IsLabelFunc(obj types.Object) bool { return l.labelFuncs[obj] }

// Import resolves an import path during type checking: module-local paths
// load (and cache) through the loader itself, unsafe maps to types.Unsafe,
// and everything else goes to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Load parses and type-checks the module package at the given import path,
// memoized for the loader's lifetime.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg := l.pkgs[path]; pkg != nil {
		return pkg, nil
	}
	if l.inFlight[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.inFlight[path] = true
	defer delete(l.inFlight, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.IncludeTests {
			continue
		}
		match, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s/%s: %w", path, name, err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		// Never load external test packages: they are a separate package and
		// would collide with the one under analysis.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed package names %s and %s", path, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.recordLabelFuncs(pkg)
	return pkg, nil
}

// recordLabelFuncs indexes the package's korvet:labels-marked functions by
// their types object, so call sites in other packages can recognize them.
func (l *Loader) recordLabelFuncs(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if !strings.Contains(fd.Doc.Text(), "korvet:labels") {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				l.labelFuncs[obj] = true
			}
		}
	}
}

// ModulePackages walks the module tree and returns every package import
// path (directories containing at least one buildable .go file), sorted.
// testdata, hidden and underscore directories are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files of one directory contiguously, but be safe about
	// duplicates after sorting.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}
