package analysis

import (
	"go/ast"
)

// PlanLifecycle enforces the pooled-scratch contract of the core search
// plans (DESIGN.md "Hot path"): every plan obtained from newPlan carries
// checked-out sync.Pool scratch and must reach plan.close on all paths, or
// the scratch slab leaks out of the pool. The rule understands the
// package's two ownership shapes:
//
//   - the caller secures the plan directly with `defer p.close()`;
//   - the caller hands the plan to a consuming method — a *plan method
//     whose first statement is `defer p.close()` — as in
//     `return p.runOSScaling()`.
//
// Between the newPlan error check and the point the plan is secured,
// nothing may return. The pool accessors themselves are fenced too:
// getScratch may only be called by newPlan, putScratch only by close, so
// there is exactly one checkout and one release point in the package.
var PlanLifecycle = &Analyzer{
	Name: "plan-lifecycle",
	Doc:  "every newPlan must reach plan.close on all paths; scratch pool access is fenced to newPlan/close",
	Run:  runPlanLifecycle,
}

func runPlanLifecycle(pass *Pass) {
	if pass.Pkg.Path != "kor/internal/core" {
		return
	}
	closers := planCloserMethods(pass)
	for _, file := range pass.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkScratchFences(pass, unit)
			checkPlanOwnership(pass, unit, closers)
		}
	}
}

// planCloserMethods collects the names of *plan methods that begin with
// `defer p.close()` — the methods a caller may hand a fresh plan to.
func planCloserMethods(pass *Pass) map[string]bool {
	closers := map[string]bool{"close": true}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Body.List) == 0 {
				continue
			}
			if len(fd.Recv.List) == 0 || namedTypeName(pass.Pkg.Info, fd.Recv.List[0].Type) != "plan" {
				continue
			}
			def, ok := fd.Body.List[0].(*ast.DeferStmt)
			if !ok || calleeName(def.Call) != "close" {
				continue
			}
			if sel, ok := def.Call.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := sel.X.(*ast.Ident); ok && len(fd.Recv.List[0].Names) > 0 &&
					recv.Name == fd.Recv.List[0].Names[0].Name {
					closers[fd.Name.Name] = true
				}
			}
		}
	}
	return closers
}

// checkScratchFences flags pool accessor calls outside their single blessed
// caller.
func checkScratchFences(pass *Pass, unit FuncUnit) {
	inspectUnit(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "getScratch":
			if unit.Name != "newPlan" {
				pass.Reportf(call.Pos(),
					"getScratch called from %s; pooled scratch may only be checked out by newPlan", unit.Name)
			}
		case "putScratch":
			if unit.Name != "close" {
				pass.Reportf(call.Pos(),
					"putScratch called from %s; pooled scratch may only be released by plan.close", unit.Name)
			}
		}
		return true
	})
}

// checkPlanOwnership verifies that each plan produced by newPlan in this
// unit is secured before any return.
func checkPlanOwnership(pass *Pass, unit FuncUnit, closers map[string]bool) {
	var scanBlock func(stmts []ast.Stmt)
	scanBlock = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			// Recurse into nested blocks so a newPlan inside an if/for is
			// still found and checked within its own statement list.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				scanBlock(s.List)
			case *ast.IfStmt:
				scanBlock(s.Body.List)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					scanBlock(els.List)
				}
			case *ast.ForStmt:
				scanBlock(s.Body.List)
			case *ast.RangeStmt:
				scanBlock(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanBlock(cc.Body)
					}
				}
			}
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				continue
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || calleeName(call) != "newPlan" {
				continue
			}
			if len(assign.Lhs) == 0 {
				continue
			}
			planIdent, ok := assign.Lhs[0].(*ast.Ident)
			if !ok || planIdent.Name == "_" {
				pass.Reportf(assign.Pos(),
					"newPlan result discarded; the plan owns pooled scratch and must reach close")
				continue
			}
			checkSecured(pass, unit, planIdent.Name, call, stmts[i+1:], closers)
		}
	}
	scanBlock(unit.Body.List)
}

// checkSecured walks the statements after a newPlan assignment until the
// plan is secured (deferred close or handed to a closer method), reporting
// any return that happens first and falling off the end unsecured.
func checkSecured(pass *Pass, unit FuncUnit, planVar string, origin *ast.CallExpr, rest []ast.Stmt, closers map[string]bool) {
	securingCall := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !closers[sel.Sel.Name] {
				return true
			}
			if recv, ok := ast.Unparen(sel.X).(*ast.Ident); ok && recv.Name == planVar {
				found = true
				return false
			}
			return true
		})
		return found
	}
	mentionsPlan := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == planVar {
				found = true
				return false
			}
			return true
		})
		return found
	}

	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if securingCall(s) {
				return // defer p.close() (or a closer) — secured
			}
		case *ast.IfStmt:
			// The newPlan error check: a branch that returns without
			// touching the plan is the nil-plan path and is fine. A branch
			// that returns while mentioning the plan without securing it
			// leaks.
			if securingCall(s) {
				return
			}
			if returnsWithoutSecuring(s, planVar, securingCall, mentionsPlan) {
				pass.Reportf(s.Pos(),
					"%s may return between newPlan and close; secure the plan with defer %s.close() first", unit.Name, planVar)
				return
			}
		case *ast.ReturnStmt:
			if securingCall(s) {
				return // return p.runX() where runX defers close — secured
			}
			pass.Reportf(s.Pos(),
				"%s returns without closing the plan from newPlan; pooled scratch leaks (defer %s.close())", unit.Name, planVar)
			return
		default:
			if securingCall(stmt) {
				return // e.g. res, err := p.runX() mid-function
			}
		}
	}
	pass.Reportf(origin.Pos(),
		"%s never closes the plan returned by newPlan; add defer %s.close() or hand it to a method that does", unit.Name, planVar)
}

// returnsWithoutSecuring reports whether the if statement contains a return
// on a path that mentions the plan without securing it. Error-check
// branches (`if err != nil { return ... }`) never mention the plan and pass.
func returnsWithoutSecuring(ifs *ast.IfStmt, planVar string, securingCall, mentionsPlan func(ast.Node) bool) bool {
	bad := false
	ast.Inspect(ifs, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if mentionsPlan(ret) && !securingCall(ret) {
			bad = true
		}
		return true
	})
	return bad
}
