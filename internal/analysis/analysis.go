// Package analysis is korvet's dependency-free static-analysis kernel: a
// module loader built on go/parser and go/types, a registry of
// project-invariant analyzers, and the machinery that turns their reports
// into the machine-readable finding format
//
//	file:line: [rule-id] message
//
// The analyzers encode contracts that exist elsewhere only as prose in
// DESIGN.md or as -race tests that can miss schedules: one snapshot load
// per query path, pooled plan scratch always released, context threaded and
// polled, metric labels drawn from closed sets, only definitive outcomes
// cached or shared, sentinel errors wrapped with %w and matched with
// errors.Is. See DESIGN.md § "Static analysis" for the rule catalogue and
// the policy for adding rules.
//
// Findings can be suppressed at the offending line (or the line below a
// comment on its own line) with
//
//	//korvet:ignore rule-id reason
//
// The reason is mandatory — a suppression without one, for an unknown rule,
// or that suppresses nothing is itself a finding, so the suppression
// surface can never rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the machine-readable finding line. The column is omitted:
// the format is file:line: [rule-id] message, stable for golden files and
// grep-ability.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one project-invariant rule. Run inspects a single
// type-checked package through its Pass and reports findings; it must be
// stateless across packages.
type Analyzer struct {
	// Name is the rule id used in findings, flags and suppression comments.
	Name string
	// Doc is the one-line rule description for korvet -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	out      *[]Finding

	// labelFunc reports whether a function object is marked with the
	// korvet:labels doc marker (see the metric-labels rule). The map spans
	// every module package the loader has seen, so cross-package calls
	// resolve.
	labelFunc func(types.Object) bool

	parents map[*ast.File]map[ast.Node]ast.Node
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// IsLabelFunc reports whether obj is a function whose doc comment carries
// the korvet:labels marker — the project's declaration that the function's
// string parameters and results are drawn from closed label sets.
func (p *Pass) IsLabelFunc(obj types.Object) bool {
	return obj != nil && p.labelFunc != nil && p.labelFunc(obj)
}

// Parents returns (building on first use) the child→parent node map for
// file, for rules that need to look outward from a match.
func (p *Pass) Parents(file *ast.File) map[ast.Node]ast.Node {
	if p.parents == nil {
		p.parents = make(map[*ast.File]map[ast.Node]ast.Node)
	}
	if m := p.parents[file]; m != nil {
		return m
	}
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	p.parents[file] = m
	return m
}

// ignoreDirective is one parsed //korvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

var ignoreRe = regexp.MustCompile(`^//korvet:ignore(\s+(\S+))?(\s+(.*))?$`)

// collectIgnores parses every //korvet:ignore directive in the package.
// Malformed directives (no rule, no reason) are reported immediately under
// the reserved rule id "korvet".
func collectIgnores(pkg *Package, known map[string]bool, out *[]Finding) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rule, reason := m[2], strings.TrimSpace(m[4])
				switch {
				case rule == "":
					*out = append(*out, Finding{Pos: pos, Rule: "korvet",
						Msg: "ignore directive names no rule; use //korvet:ignore rule-id reason"})
				case !known[rule]:
					*out = append(*out, Finding{Pos: pos, Rule: "korvet",
						Msg: fmt.Sprintf("ignore directive names unknown rule %q", rule)})
				case reason == "":
					*out = append(*out, Finding{Pos: pos, Rule: "korvet",
						Msg: fmt.Sprintf("ignore directive for %s has no reason; suppressions must be justified", rule)})
				default:
					dirs = append(dirs, &ignoreDirective{pos: pos, rule: rule, reason: reason})
				}
			}
		}
	}
	return dirs
}

// suppresses reports whether d covers f: same file, same rule, and f sits
// on the directive's line (end-of-line comment) or the line directly below
// (comment on its own line).
func (d *ignoreDirective) suppresses(f Finding) bool {
	return f.Rule == d.rule &&
		f.Pos.Filename == d.pos.Filename &&
		(f.Pos.Line == d.pos.Line || f.Pos.Line == d.pos.Line+1)
}

// RunAnalyzers runs the given analyzers over the packages and returns the
// surviving findings, sorted by position. Suppressed findings are dropped;
// suppression hygiene problems (malformed or unused directives for enabled
// rules) are findings themselves.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, labelFunc func(types.Object) bool) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		dirs := collectIgnores(pkg, known, &raw)
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, analyzer: a, out: &raw, labelFunc: labelFunc}
			a.Run(pass)
		}
	perFinding:
		for _, f := range raw {
			if f.Rule != "korvet" {
				for _, d := range dirs {
					if d.suppresses(f) {
						d.used = true
						continue perFinding
					}
				}
			}
			all = append(all, f)
		}
		for _, d := range dirs {
			if !d.used {
				all = append(all, Finding{Pos: d.pos, Rule: "korvet",
					Msg: fmt.Sprintf("suppression for %s matches no finding; delete it", d.rule)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return all
}
