package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current findings")

// runCase loads the fixture module under testdata/src/name and returns the
// findings rendered with module-relative paths, one per line.
func runCase(t *testing.T, name string) []string {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("Load(%s): %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := RunAnalyzers(pkgs, All(), loader.IsLabelFunc)
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		rel, err := filepath.Rel(loader.Root, f.Pos.Filename)
		if err != nil {
			t.Fatalf("relativizing %s: %v", f.Pos.Filename, err)
		}
		f.Pos.Filename = filepath.ToSlash(rel)
		lines = append(lines, f.String())
	}
	return lines
}

// TestGolden asserts the exact findings — file, line, rule id and message —
// for every fixture module. Regenerate with
//
//	go test ./internal/analysis -run TestGolden -update
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading testdata/src: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			got := strings.Join(runCase(t, name), "\n")
			if got != "" {
				got += "\n"
			}
			goldenPath := filepath.Join("testdata", "src", name, "findings.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			want := string(wantBytes)
			if got != want {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenCoversEveryRule guards the suite itself: each shipped rule must
// fire somewhere in the fixtures, or a broken analyzer could pass silently.
func TestGoldenCoversEveryRule(t *testing.T) {
	fired := make(map[string]bool)
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading testdata/src: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "src", e.Name(), "findings.golden"))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.Index(line, "["); i >= 0 {
				if j := strings.Index(line[i:], "]"); j > 0 {
					fired[line[i+1:i+j]] = true
				}
			}
		}
	}
	for _, a := range All() {
		if !fired[a.Name] {
			t.Errorf("rule %s never fires in the golden fixtures", a.Name)
		}
	}
	if !fired["korvet"] {
		t.Error("suppression hygiene (rule id korvet) never fires in the golden fixtures")
	}
}
