package analysis

import (
	"go/ast"
	"go/types"
)

// MetricLabels guards the metrics kernel against label-cardinality
// explosions (DESIGN.md "Observability"): every string reaching a label-vec
// call site must be traceable to a closed, declared set of values — never a
// request-derived string, which would mint a new time series per attacker-
// chosen value.
//
// Two kinds of call sites are checked: .With(...) on the metrics kernel's
// vector types (CounterVec, GaugeVec, HistogramVec), and calls to functions
// whose doc comment carries the korvet:labels marker — the project's
// declaration that the function's plain string parameters flow into labels.
// Marked-function parameters with a named domain type (Algorithm, ...) are
// mapper inputs: the function's job is to fold that open domain into the
// closed set, so those arguments are deliberately unvetted.
//
// A string argument is trusted when it is
//
//   - a constant (literal, named constant, or expression of constants);
//   - the result of a korvet:labels-marked function (the closed-set
//     mappers: outcomeLabel, StatusLabel, ...);
//   - a parameter of a korvet:labels-marked function (its callers were
//     checked at their own call sites), including via closures;
//   - a local variable every assignment of which is itself trusted, or
//     the iteration variable of a range over a composite literal of
//     constants.
//
// Everything else — conversions like string(resp.Algorithm), fields, map
// lookups, request values — is a finding.
var MetricLabels = &Analyzer{
	Name: "metric-labels",
	Doc:  "label-vec arguments must come from closed label sets, never request-derived strings",
	Run:  runMetricLabels,
}

// metricVecTypes are the label-vector types of kor/internal/metrics.
var metricVecTypes = map[string]bool{
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

func runMetricLabels(pass *Pass) {
	trustedParams := markedParamObjects(pass)
	for _, file := range pass.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkLabelCallSites(pass, file, unit, trustedParams)
		}
	}
}

// markedParamObjects collects the parameter objects of every
// korvet:labels-marked function declared in this package: inside such a
// function (and its closures) those parameters are trusted label sources.
func markedParamObjects(pass *Pass) map[types.Object]bool {
	trusted := make(map[types.Object]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			if !pass.IsLabelFunc(pass.Pkg.Info.Defs[fd.Name]) {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						trusted[obj] = true
					}
				}
			}
		}
	}
	return trusted
}

// checkLabelCallSites finds the label-vec call sites in one unit and vets
// their string arguments.
func checkLabelCallSites(pass *Pass, file *ast.File, unit FuncUnit, trustedParams map[types.Object]bool) {
	inspectUnit(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := ""
		var sig *types.Signature
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "With" &&
			metricVecTypes[namedTypeName(pass.Pkg.Info, sel.X)] {
			site = "metric With"
		} else if obj := calleeObj(pass.Pkg.Info, call); pass.IsLabelFunc(obj) {
			site = fullFuncName(obj)
			sig, _ = obj.Type().(*types.Signature)
		}
		if site == "" {
			return true
		}
		for i, arg := range call.Args {
			t := pass.Pkg.Info.Types[arg].Type
			if t == nil || !isStringType(t) {
				continue
			}
			// At a marked-function site, only plain string parameters are
			// label sinks. A named domain type (Algorithm, ...) means the
			// function is a mapper: it turns that open domain into the
			// closed set, so its input is deliberately unvetted.
			if sig != nil && !isBasicString(paramTypeAt(sig, i)) {
				continue
			}
			if !trustedLabelExpr(pass, file, arg, trustedParams, 0) {
				pass.Reportf(arg.Pos(),
					"label argument to %s is not traceable to a declared label set; route it through a korvet:labels helper or a constant", site)
			}
		}
		return true
	})
}

// paramTypeAt returns the declared type of the parameter receiving argument
// i, unrolling variadics; nil when out of range.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isBasicString reports the exact basic string type (named string types are
// domain values, not raw labels).
func isBasicString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

const labelTraceDepth = 4

// trustedLabelExpr reports whether e provably draws from a closed label set.
func trustedLabelExpr(pass *Pass, file *ast.File, e ast.Expr, trustedParams map[types.Object]bool, depth int) bool {
	if depth > labelTraceDepth {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		return pass.IsLabelFunc(calleeObj(pass.Pkg.Info, x))
	case *ast.BinaryExpr:
		return trustedLabelExpr(pass, file, x.X, trustedParams, depth+1) &&
			trustedLabelExpr(pass, file, x.Y, trustedParams, depth+1)
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[x]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[x]
		}
		if obj == nil {
			return false
		}
		if trustedParams[obj] {
			return true
		}
		if _, ok := obj.(*types.Const); ok {
			return true
		}
		return trustedLocalVar(pass, file, obj, trustedParams, depth)
	}
	return false
}

// trustedLocalVar vets a local variable by finding every assignment to it
// in the file and requiring each source to be trusted. Object identity makes
// this exact across closures.
func trustedLocalVar(pass *Pass, file *ast.File, obj types.Object, trustedParams map[types.Object]bool, depth int) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false // only locals: package-level vars are mutable from anywhere
	}
	assigned := false
	trusted := true
	matches := func(lhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		o := pass.Pkg.Info.Defs[id]
		if o == nil {
			o = pass.Pkg.Info.Uses[id]
		}
		return o == obj
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if !matches(lhs) {
					continue
				}
				assigned = true
				if len(s.Rhs) == len(s.Lhs) {
					if !trustedLabelExpr(pass, file, s.Rhs[i], trustedParams, depth+1) {
						trusted = false
					}
				} else {
					trusted = false // multi-value unpack: opaque source
				}
			}
		case *ast.RangeStmt:
			if (s.Key != nil && matches(s.Key)) || (s.Value != nil && matches(s.Value)) {
				assigned = true
				if !constantCompositeLit(pass, s.X) {
					trusted = false
				}
			}
		}
		return true
	})
	return assigned && trusted
}

// constantCompositeLit reports whether e is a composite literal whose
// elements are all constant — a closed set spelled inline, like
// []string{OracleKindLazy, OracleKindMatrix}.
func constantCompositeLit(pass *Pass, e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		tv, ok := pass.Pkg.Info.Types[el]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}
