package analysis

// All returns the full analyzer suite in stable order. "korvet" is a
// reserved rule id for the driver's own hygiene findings (malformed or
// unused suppressions) and must not be used by an analyzer.
func All() []*Analyzer {
	return []*Analyzer{
		SnapshotPin,
		PlanLifecycle,
		CtxFlow,
		MetricLabels,
		DefinitiveOutcome,
		ErrWrap,
	}
}
