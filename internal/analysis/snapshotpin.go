package analysis

import (
	"go/ast"
	"strings"
)

// SnapshotPin enforces the engine's snapshot discipline (DESIGN.md
// "Snapshots & live updates"): everything derived from a graph is reached
// through one atomic snapshot pointer, and a query must pin that pointer
// exactly once. Concretely, for any struct field named "snap" whose type is
// a sync/atomic.Pointer:
//
//   - a function may call .Load() on it at most once — a second load could
//     observe a different graph version and silently mix two graphs inside
//     one computation (function literals are separate functions: a metrics
//     callback loading once is fine);
//   - .Store() is only legal where the swap mutex is provably held: the
//     function either locks a field named swapMu itself or follows the
//     repo's ...Locked naming convention for callers that already hold it;
//   - any other touch of the field (copying it, calling anything else on
//     it) is flagged outright.
var SnapshotPin = &Analyzer{
	Name: "snapshot-pin",
	Doc:  "engine state must be reached through a single snapshot Load per function; Store only under swapMu",
	Run:  runSnapshotPin,
}

func runSnapshotPin(pass *Pass) {
	// The rule keys on the field shape (a snap field of atomic.Pointer
	// type), not the package path: only the engine façade defines one today,
	// and the shape test keeps the rule free elsewhere.
	for _, file := range pass.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkSnapshotUnit(pass, unit)
		}
	}
}

// isSnapField reports whether sel selects a field named snap of type
// sync/atomic.Pointer[...].
func isSnapField(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "snap" {
		return false
	}
	f := selectedField(pass.Pkg.Info, sel)
	if f == nil {
		return false
	}
	return strings.HasPrefix(f.Type().String(), "sync/atomic.Pointer[")
}

func checkSnapshotUnit(pass *Pass, unit FuncUnit) {
	// locksSwapMu: the unit itself takes the swap lock.
	locksSwapMu := false
	inspectUnit(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "swapMu" {
			locksSwapMu = true
		}
		return true
	})
	holdsSwapMu := locksSwapMu || strings.HasSuffix(unit.Name, "Locked")

	loads := 0
	handled := make(map[*ast.SelectorExpr]bool)
	inspectUnit(unit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		snapSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !isSnapField(pass, snapSel) {
			return true
		}
		handled[snapSel] = true
		switch sel.Sel.Name {
		case "Load":
			loads++
			if loads > 1 {
				pass.Reportf(call.Pos(),
					"%s loads the snapshot pointer more than once; pin one snapshot at entry so the function cannot mix graph versions", unit.Name)
			}
		case "Store":
			if !holdsSwapMu {
				pass.Reportf(call.Pos(),
					"snapshot Store outside the swap path: %s neither locks swapMu nor follows the ...Locked convention", unit.Name)
			}
		default:
			pass.Reportf(call.Pos(),
				"snapshot pointer used via %s; only Load (once per function) and Store (under swapMu) are allowed", sel.Sel.Name)
		}
		return true
	})
	// Any remaining bare use of the field — copying the pointer, passing it
	// somewhere — defeats the pinning discipline.
	inspectUnit(unit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || handled[sel] || !isSnapField(pass, sel) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"snapshot pointer escapes as a value in %s; access it only through an immediate Load or Store", unit.Name)
		return true
	})
}
