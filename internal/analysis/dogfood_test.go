package analysis

import (
	"path/filepath"
	"testing"
)

// TestDogfoodRepo runs the full suite over this repository and requires a
// clean bill: the same check CI's lint tier runs via cmd/korvet, kept here
// too so `go test ./...` alone catches a contract regression. Skipped in
// -short mode — it type-checks the whole module including its stdlib deps.
func TestDogfoodRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("dogfood run type-checks the entire module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
	for _, f := range RunAnalyzers(pkgs, All(), loader.IsLabelFunc) {
		t.Errorf("%s", f)
	}
}
