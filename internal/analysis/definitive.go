package analysis

import (
	"go/ast"
	"go/constant"
)

// DefinitiveOutcome protects the cross-query sharing tier (DESIGN.md "Work
// sharing"): a result may only be published to the response cache or to
// single-flight waiters as definitive when definitiveOutcome(err) said so.
// Caching a budget-truncated or context-cancelled response would replay a
// transient failure to every later caller with the same key.
//
// Concretely, in package kor, every
//
//   - e.cache.Put(...) call, and
//   - e.flights.finish(...) call whose definitive argument (the last) is
//     not the constant false
//
// must sit inside the then-branch of an if whose condition is
// definitiveOutcome(...) (possibly &&-conjoined with more checks).
// Non-definitive publishes — finish(..., false) on error and cleanup
// paths — are exempt.
var DefinitiveOutcome = &Analyzer{
	Name: "definitive-outcome",
	Doc:  "cache Puts and definitive flight publishes must be dominated by a definitiveOutcome check",
	Run:  runDefinitiveOutcome,
}

func runDefinitiveOutcome(pass *Pass) {
	if pass.Pkg.Path != "kor" {
		return
	}
	for _, file := range pass.Pkg.Files {
		parents := pass.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := publishKind(pass, call)
			if kind == "" {
				return true
			}
			if !dominatedByDefinitive(parents, call) {
				pass.Reportf(call.Pos(),
					"%s publishes a shared result without a dominating definitiveOutcome(err) check; transient failures must not be cached or broadcast as definitive", kind)
			}
			return true
		})
	}
}

// publishKind classifies a call as a guarded publish site ("cache.Put" or
// "flights.finish"), or "" when it is neither or is an exempt
// non-definitive finish.
func publishKind(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch {
	case sel.Sel.Name == "Put" && recv.Sel.Name == "cache":
		return "cache.Put"
	case sel.Sel.Name == "finish" && recv.Sel.Name == "flights":
		if len(call.Args) > 0 && isConstFalse(pass, call.Args[len(call.Args)-1]) {
			return "" // explicit non-definitive publish
		}
		return "flights.finish"
	}
	return ""
}

func isConstFalse(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false
	}
	return !constant.BoolVal(tv.Value)
}

// dominatedByDefinitive walks outward from the call looking for an
// enclosing if whose then-branch contains the call and whose condition
// includes a definitiveOutcome(...) conjunct.
func dominatedByDefinitive(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	var prev ast.Node = call
	for n := parents[call]; n != nil; n = parents[n] {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false // the closure is its own dominance scope
		}
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if ifs, ok := n.(*ast.IfStmt); ok {
			if prev == ifs.Body && condHasDefinitive(ifs.Cond) {
				return true
			}
		}
		prev = n
	}
	return false
}

// condHasDefinitive reports whether cond is definitiveOutcome(...) or an
// && conjunction containing it (un-negated).
func condHasDefinitive(cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		return calleeName(e) == "definitiveOutcome"
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return condHasDefinitive(e.X) || condHasDefinitive(e.Y)
		}
	}
	return false
}
