package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncUnit is one function body analyzed in isolation: a declared function
// or a function literal. Closures are separate units — a rule counting
// "per function" events must not conflate a method with the callbacks it
// builds.
type FuncUnit struct {
	// Decl is set for a declared function, Lit for a literal; exactly one
	// is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is the declared name, or "func literal".
	Name string
	// Doc is the declaration's doc comment text ("" for literals).
	Doc  string
	Body *ast.BlockStmt
}

// funcUnits returns every function body in file: all declarations plus all
// literals, each as its own unit.
func funcUnits(file *ast.File) []FuncUnit {
	var units []FuncUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		doc := ""
		if fd.Doc != nil {
			doc = fd.Doc.Text()
		}
		units = append(units, FuncUnit{Decl: fd, Name: fd.Name.Name, Doc: doc, Body: fd.Body})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			units = append(units, FuncUnit{Lit: lit, Name: "func literal", Body: lit.Body})
		}
		return true
	})
	return units
}

// inspectUnit walks the unit's body without descending into nested function
// literals: what happens in a closure is that closure's own unit.
func inspectUnit(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isSentinelError reports whether obj is a package-level error variable — a
// sentinel in the errors.Is sense, like ErrNoRoute or io.EOF.
func isSentinelError(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return types.Implements(v.Type(), errorIface)
}

// selectedField returns the field a selector expression reads, or nil when
// it is not a field selection.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	if f, ok := s.Obj().(*types.Var); ok {
		return f
	}
	return nil
}

// namedTypeName returns the bare name of an expression's (pointer-stripped)
// named type, or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	t := info.Types[e].Type
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeObj resolves the object a call expression invokes: a plain function
// ident, a method or package-qualified selector. Nil for indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName returns the bare name of the invoked function or method, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// fullFuncName renders obj as pkgpath.Name or pkgpath.(Recv).Name for
// messages.
func fullFuncName(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// hasDeprecatedDoc reports the standard Deprecated: marker in a doc text.
func hasDeprecatedDoc(doc string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}
