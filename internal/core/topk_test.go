package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kor/internal/bitset"
	"kor/internal/graph"
)

// routeSignature renders a route's node sequence as a comparable string —
// the test-side stand-in for the engine's uint64 signatures, kept textual so
// failures read well.
func routeSignature(r Route) string {
	var b strings.Builder
	for i, v := range r.Nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// enumerateFeasible lists every feasible route for q by exhaustive walk
// enumeration (budget-pruned), deduplicated by node sequence and sorted by
// objective. Only usable on tiny graphs and budgets.
func enumerateFeasible(t *testing.T, s *Searcher, q Query) []Route {
	t.Helper()
	p, err := s.newPlan(nil, q, DefaultOptions())
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	type item struct {
		nodes  []graph.NodeID
		os, bs float64
	}
	var out []Route
	seen := make(map[string]bool)
	var dfs func(it item)
	dfs = func(it item) {
		cur := it.nodes[len(it.nodes)-1]
		if cur == q.Target {
			covered := p.nodeMask[it.nodes[0]]
			for _, v := range it.nodes {
				covered = covered.Union(p.nodeMask[v])
			}
			if covered.Covers(p.qMask) {
				r := Route{Nodes: append([]graph.NodeID(nil), it.nodes...), Objective: it.os, Budget: it.bs, Covered: covered, CoversAll: true, Feasible: true}
				sig := routeSignature(r)
				if !seen[sig] {
					seen[sig] = true
					out = append(out, r)
				}
			}
		}
		for _, e := range s.g.Out(cur) {
			if it.bs+e.Budget > q.Budget {
				continue
			}
			dfs(item{
				nodes: append(append([]graph.NodeID(nil), it.nodes...), e.To),
				os:    it.os + e.Objective,
				bs:    it.bs + e.Budget,
			})
		}
	}
	dfs(item{nodes: []graph.NodeID{q.Source}})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Objective != out[j].Objective {
			return out[i].Objective < out[j].Objective
		}
		return out[i].Budget < out[j].Budget
	})
	return out
}

func TestTopKOnPaperGraph(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	kws := terms(t, g, "t1", "t2")
	q := Query{Source: 0, Target: 7, Keywords: kws, Budget: 10}
	all := enumerateFeasible(t, s, q)
	if len(all) < 2 {
		t.Fatalf("fixture offers only %d feasible routes; test needs ≥ 2", len(all))
	}

	for _, algo := range []string{"OSScaling", "BucketBound"} {
		for k := 1; k <= 3; k++ {
			opts := DefaultOptions()
			opts.K = k
			opts.Epsilon = 0.1
			var res Result
			var err error
			if algo == "OSScaling" {
				res, err = s.OSScaling(q, opts)
			} else {
				res, err = s.BucketBound(q, opts)
			}
			if err != nil {
				t.Fatalf("%s k=%d: %v", algo, k, err)
			}
			if len(res.Routes) == 0 || len(res.Routes) > k {
				t.Fatalf("%s k=%d returned %d routes", algo, k, len(res.Routes))
			}
			sigs := make(map[string]bool)
			for i, r := range res.Routes {
				if !r.Feasible {
					t.Errorf("%s k=%d route %d infeasible: %v", algo, k, i, r)
				}
				if i > 0 && res.Routes[i-1].Objective > r.Objective+1e-9 {
					t.Errorf("%s k=%d routes not sorted by objective", algo, k)
				}
				sig := routeSignature(r)
				if sigs[sig] {
					t.Errorf("%s k=%d returned duplicate route %v", algo, k, r)
				}
				sigs[sig] = true
			}
			// The best of the k must respect the k=1 approximation bound.
			bound := all[0].Objective/(1-opts.Epsilon) + 1e-9
			if algo == "BucketBound" {
				bound = opts.Beta * all[0].Objective / (1 - opts.Epsilon)
			}
			if res.Routes[0].Objective > bound {
				t.Errorf("%s k=%d best %v outside bound %v", algo, k, res.Routes[0].Objective, bound)
			}
		}
	}
}

// TestTopKEqualsSingleAtK1: k=1 must behave exactly like the plain query.
func TestTopKEqualsSingleAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		g := randomKeywordGraph(rng, 15, 5)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		single, err1 := s.OSScaling(q, DefaultOptions())
		optsK := DefaultOptions()
		optsK.K = 1
		viaK, err2 := s.OSScaling(q, optsK)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(single.Best().Objective-viaK.Best().Objective) > 1e-9 {
			t.Fatalf("trial %d: k=1 objective differs", trial)
		}
	}
}

// TestTopKFindsDistinctRoutes checks against the exhaustive enumeration on
// random small graphs: routes returned must be real feasible routes, and
// with a tiny ε the best route must be near-optimal.
func TestTopKFindsDistinctRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	verified := 0
	for trial := 0; trial < 12; trial++ {
		g := randomKeywordGraph(rng, 9, 4)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 1)
		q.Budget = 1.2 + rng.Float64()
		all := enumerateFeasible(t, s, q)
		if len(all) < 3 {
			continue
		}
		verified++
		opts := DefaultOptions()
		opts.K = 3
		opts.Epsilon = 0.05
		res, err := s.OSScaling(q, opts)
		if err != nil {
			t.Fatalf("trial %d: %v (enumeration found %d routes)", trial, err, len(all))
		}
		if len(res.Routes) < 2 {
			t.Errorf("trial %d: only %d routes for k=3 (graph offers %d)", trial, len(res.Routes), len(all))
		}
		valid := make(map[string]float64)
		for _, r := range all {
			valid[routeSignature(r)] = r.Objective
		}
		for _, r := range res.Routes {
			wantOS, ok := valid[routeSignature(r)]
			if !ok {
				t.Errorf("trial %d: returned route %v not among feasible routes", trial, r)
				continue
			}
			if math.Abs(wantOS-r.Objective) > 1e-9 {
				t.Errorf("trial %d: route %v reports OS %v, enumeration says %v", trial, r, r.Objective, wantOS)
			}
		}
		if res.Routes[0].Objective > all[0].Objective/(1-opts.Epsilon)+1e-9 {
			t.Errorf("trial %d: top-1 of top-k %v outside bound of optimum %v",
				trial, res.Routes[0].Objective, all[0].Objective)
		}
	}
	if verified == 0 {
		t.Skip("no graph offered 3+ feasible routes")
	}
}

func TestTopKMoreThanExist(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	q := Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 10}
	all := enumerateFeasible(t, s, q)
	opts := DefaultOptions()
	opts.K = len(all) + 25
	opts.Epsilon = 0.05
	res, err := s.OSScaling(q, opts)
	if err != nil && !errors.Is(err, ErrNoRoute) {
		t.Fatalf("k≫routes: %v", err)
	}
	if len(res.Routes) > len(all) {
		t.Fatalf("returned %d routes, only %d exist", len(res.Routes), len(all))
	}
	if len(res.Routes) == 0 {
		t.Fatal("returned nothing despite feasible routes existing")
	}
	for i, r := range res.Routes {
		if !r.Feasible {
			t.Errorf("route %d infeasible: %v", i, r)
		}
	}
}

// TestLabelStoreDomination unit-tests the k-domination logic in isolation.
func TestLabelStoreDomination(t *testing.T) {
	m := &Metrics{}
	mk := func(node graph.NodeID, covered uint64, scaled int64, bs float64) *label {
		return &label{node: node, covered: maskOf(covered), scaled: scaled, bs: bs}
	}
	st := newLabelStore(scratchForTest(4), 1, m, nil)
	a := mk(0, 0b11, 10, 5)
	if !st.tryInsert(a) {
		t.Fatal("first insert rejected")
	}
	// Dominated by a: fewer keywords, worse scores.
	if st.tryInsert(mk(0, 0b01, 12, 6)) {
		t.Error("dominated label accepted")
	}
	// Equal label: rejected (one copy kept).
	if st.tryInsert(mk(0, 0b11, 10, 5)) {
		t.Error("duplicate label accepted")
	}
	// Incomparable: better budget, worse scaled.
	if !st.tryInsert(mk(0, 0b11, 15, 1)) {
		t.Error("incomparable label rejected")
	}
	// New dominator sweeps out a.
	dom := mk(0, 0b11, 9, 4)
	if !st.tryInsert(dom) {
		t.Fatal("dominator rejected")
	}
	if !a.deleted {
		t.Error("dominated label not swept")
	}

	// k=2: one dominator is not enough to reject.
	m2 := &Metrics{}
	st2 := newLabelStore(scratchForTest(4), 2, m2, nil)
	st2.tryInsert(mk(1, 0b11, 5, 5))
	if !st2.tryInsert(mk(1, 0b01, 9, 9)) {
		t.Error("k=2 rejected a once-dominated label")
	}
	st2.tryInsert(mk(1, 0b11, 6, 6))
	if st2.tryInsert(mk(1, 0b01, 10, 10)) {
		t.Error("k=2 accepted a twice-dominated label")
	}
}

func maskOf(bits uint64) bitset.Mask { return bitset.Mask(bits) }
