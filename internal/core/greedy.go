package core

import (
	"context"
	"math"
	"sort"

	"kor/internal/apsp"
	"kor/internal/bitset"
	"kor/internal/graph"
)

// Greedy answers the KOR query with Algorithm 3 of the paper: starting at
// the source, repeatedly pick the next keyword-bearing waypoint minimizing
// Equation 1,
//
//	score(vj, Ri) = α·(Ri.OS + OS(τ(i,j)) + OS(τ(j,t)))
//	              + (1−α)·(Ri.BS + BS(τ(i,j)) + BS(τ(j,t))),
//
// then connect consecutive waypoints with τ paths. opts.Width selects the
// beam: 1 is the paper's Greedy-1, 2 is Greedy-2 (the best two candidates
// branch at every step, worst case O(2^m·n)).
//
// The default keyword-priority mode always covers the query keywords but
// may overrun Δ; the route is then returned together with
// ErrBudgetExceeded so callers can count failures the way Figure 13 does.
// With opts.BudgetPriority the roles flip (§3.4's modification): the route
// respects Δ but may leave keywords uncovered, reported via the route's
// CoversAll flag.
func (s *Searcher) Greedy(q Query, opts Options) (Result, error) {
	return s.GreedyCtx(context.Background(), q, opts)
}

// GreedyCtx is Greedy with cancellation: every beam step polls ctx and
// returns a wrapped ctx error once it fires.
func (s *Searcher) GreedyCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	// The optimization strategies belong to the label algorithms; disabling
	// them skips their oracle prefetching.
	opts.DisableStrategy1 = true
	opts.DisableStrategy2 = true
	p, err := s.newPlan(ctx, q, opts)
	if err != nil {
		return Result{}, err
	}
	return p.runGreedy()
}

// greedyOutcome is one completed branch of the beam search.
type greedyOutcome struct {
	waypoints []graph.NodeID
	// legMetric[i] is the metric connecting waypoints[i] to waypoints[i+1]:
	// τ everywhere except possibly a σ final leg in budget-priority mode.
	legMetric []apsp.Metric
	os, bs    float64
	covered   bitset.Mask // query keywords on the waypoints
}

func (p *plan) runGreedy() (Result, error) {
	defer p.close()
	oracle := p.s.oracle
	apsp.PrefetchTarget(oracle, p.q.Target)

	if p.opts.BudgetPriority {
		// This variant promises BS ≤ Δ; when even σ(s,t) busts Δ no route
		// can honour that promise.
		if _, sbs, ok := oracle.MinBudget(p.q.Source, p.q.Target); !ok || sbs > p.q.Budget {
			return Result{Metrics: p.metrics}, ErrNoRoute
		}
	}

	// nodeSet: every node carrying at least one query keyword (line 3–5 of
	// Algorithm 3, via the inverted file).
	var nodeSet []graph.NodeID
	seen := make(map[graph.NodeID]bool)
	for _, t := range p.terms {
		for _, v := range p.s.index.Postings(t) {
			if !seen[v] {
				seen[v] = true
				nodeSet = append(nodeSet, v)
			}
		}
	}
	sort.Slice(nodeSet, func(i, j int) bool { return nodeSet[i] < nodeSet[j] })

	best := greedyOutcome{os: math.Inf(1)}
	haveBest := false
	betterOutcome := func(a, b greedyOutcome) bool {
		af := a.covered.Covers(p.qMask) && a.bs <= p.q.Budget
		bf := b.covered.Covers(p.qMask) && b.bs <= p.q.Budget
		if af != bf {
			return af
		}
		if a.os != b.os {
			return a.os < b.os
		}
		return a.bs < b.bs
	}

	start := greedyOutcome{
		waypoints: []graph.NodeID{p.q.Source},
		covered:   p.nodeMask[p.q.Source],
	}
	if err := p.greedyStep(start, nodeSet, &best, &haveBest, betterOutcome); err != nil {
		return Result{Metrics: p.metrics}, err
	}
	if !haveBest {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}

	route, err := p.materializeGreedy(best)
	if err != nil {
		return Result{Metrics: p.metrics}, err
	}
	res := Result{Routes: []Route{route}, Metrics: p.metrics}
	if !p.opts.BudgetPriority && route.Budget > p.q.Budget {
		return res, ErrBudgetExceeded
	}
	if p.opts.BudgetPriority && !route.CoversAll {
		// Budget-priority mode met Δ but not the keywords; the flags on the
		// route say so, and no error is raised — this is that variant's
		// documented contract.
		return res, nil
	}
	return res, nil
}

// greedyStep extends one partial outcome by every beam candidate, recursing
// until the keywords are covered (keyword mode) or no candidate fits the
// budget (budget-priority mode), then completes the route to the target.
func (p *plan) greedyStep(st greedyOutcome, nodeSet []graph.NodeID, best *greedyOutcome, haveBest *bool, better func(a, b greedyOutcome) bool) error {
	oracle := p.s.oracle
	cur := st.waypoints[len(st.waypoints)-1]
	uncovered := p.qMask.Diff(st.covered)

	if uncovered.Empty() {
		p.finishGreedy(st, best, haveBest, better)
		return nil
	}

	apsp.PrefetchSource(oracle, cur)
	// On slice-indexed oracles the candidate scan reads two slices instead of
	// issuing 2–3 pair queries per candidate: the plan's target slices for the
	// m→target tails (bit-identical to the pair interface) and one outbound
	// slice for the cur→m segments (exact reachability, scores equal up to
	// floating-point association — see apsp.SourceSliced). On a partitioned
	// oracle each pair query costs |borders|² table probes, so without the
	// slices this loop dominates the whole search.
	var srcTau *apsp.TargetSlice
	if p.sliced {
		if ss, ok := oracle.(apsp.SourceSliced); ok {
			srcTau = ss.SourceSlice(cur, apsp.ByObjective)
		}
	}
	type scored struct {
		node   graph.NodeID
		score  float64
		os, bs float64 // τ(cur, node) scores
	}
	var candidates []scored
	for _, m := range nodeSet {
		if err := p.checkCtx(); err != nil {
			return err
		}
		if m == cur || p.nodeMask[m].Intersect(uncovered).Empty() {
			continue
		}
		var segOS, segBS float64
		var ok bool
		if srcTau != nil {
			segOS, segBS = srcTau.Prim[m], srcTau.Sec[m]
			ok = !math.IsInf(segOS, 1)
		} else {
			segOS, segBS, ok = oracle.MinObjective(cur, m)
		}
		if !ok {
			continue
		}
		tailOS, tailBS, ok := p.tauTo(m)
		if !ok {
			continue
		}
		if p.opts.BudgetPriority {
			// §3.4 modification: only consider nodes that keep the route
			// able to reach the target within Δ.
			sigBS, sok := p.sigBudgetTo(m)
			if !sok || st.bs+segBS+sigBS > p.q.Budget {
				continue
			}
		}
		s := p.opts.Alpha*(st.os+segOS+tailOS) + (1-p.opts.Alpha)*(st.bs+segBS+tailBS)
		candidates = append(candidates, scored{node: m, score: s, os: segOS, bs: segBS})
	}
	if len(candidates) == 0 {
		if p.opts.BudgetPriority {
			// Cannot extend without breaking Δ: stop covering and head to
			// the target (the modified loop exit).
			p.finishGreedy(st, best, haveBest, better)
		}
		// Keyword mode: dead branch — some keyword is unreachable.
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].score != candidates[j].score {
			return candidates[i].score < candidates[j].score
		}
		return candidates[i].node < candidates[j].node
	})

	width := p.opts.Width
	if width > len(candidates) {
		width = len(candidates)
	}
	for _, c := range candidates[:width] {
		next := greedyOutcome{
			waypoints: append(append([]graph.NodeID(nil), st.waypoints...), c.node),
			legMetric: append(append([]apsp.Metric(nil), st.legMetric...), apsp.ByObjective),
			os:        st.os + c.os,
			bs:        st.bs + c.bs,
			covered:   st.covered.Union(p.nodeMask[c.node]),
		}
		if err := p.greedyStep(next, nodeSet, best, haveBest, better); err != nil {
			return err
		}
	}
	return nil
}

// finishGreedy appends the final leg to the target (lines 12–13) and keeps
// the outcome if it beats the best so far.
func (p *plan) finishGreedy(st greedyOutcome, best *greedyOutcome, haveBest *bool, better func(a, b greedyOutcome) bool) {
	oracle := p.s.oracle
	cur := st.waypoints[len(st.waypoints)-1]
	legMetric := apsp.ByObjective
	tailOS, tailBS, ok := p.tauTo(cur)
	if !ok {
		return
	}
	if p.opts.BudgetPriority && st.bs+tailBS > p.q.Budget {
		// Try the cheap σ leg before giving up on Δ.
		sigOS, sigBS, sok := oracle.MinBudget(cur, p.q.Target)
		if !sok || st.bs+sigBS > p.q.Budget {
			return // dead branch: no leg to the target fits Δ
		}
		tailOS, tailBS, legMetric = sigOS, sigBS, apsp.ByBudget
	}
	done := st
	if cur != p.q.Target || len(st.waypoints) == 1 {
		done.waypoints = append(append([]graph.NodeID(nil), st.waypoints...), p.q.Target)
		done.legMetric = append(append([]apsp.Metric(nil), st.legMetric...), legMetric)
		done.os += tailOS
		done.bs += tailBS
		done.covered = done.covered.Union(p.nodeMask[p.q.Target])
	}
	if !*haveBest || better(done, *best) {
		*best = done
		*haveBest = true
	}
}

// materializeGreedy concatenates the per-leg shortest paths into the final
// route. Segment scores were accumulated during the search; the node
// sequence is recovered here, and the route's coverage is recomputed over
// every node actually visited (intermediate nodes can cover keywords the
// waypoint accounting did not claim).
func (p *plan) materializeGreedy(out greedyOutcome) (Route, error) {
	nodes := []graph.NodeID{out.waypoints[0]}
	for i := 1; i < len(out.waypoints); i++ {
		from, to := out.waypoints[i-1], out.waypoints[i]
		var seg []graph.NodeID
		var ok bool
		if out.legMetric[i-1] == apsp.ByObjective {
			seg, ok = p.s.oracle.MinObjectivePath(from, to)
		} else {
			seg, ok = p.s.oracle.MinBudgetPath(from, to)
		}
		if !ok {
			return Route{}, ErrNoRoute
		}
		nodes = append(nodes, seg[1:]...)
	}
	covered := bitset.Mask(0)
	for _, v := range nodes {
		covered = covered.Union(p.nodeMask[v])
	}
	return Route{
		Nodes:     nodes,
		Objective: out.os,
		Budget:    out.bs,
		Covered:   covered,
		CoversAll: covered.Covers(p.qMask),
		Feasible:  covered.Covers(p.qMask) && out.bs <= p.q.Budget,
	}, nil
}
