package core

import (
	"context"
	"errors"
	"testing"
)

// registryFixture is the Example-2 setting the whole registry suite runs on.
func registryFixture(t testing.TB) (*Searcher, Query) {
	t.Helper()
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	return s, Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 8}
}

// TestRegistryCoversAllAlgorithms runs every registered algorithm through
// the dispatcher on the paper fixture and checks each produces the same
// answer as its direct method.
func TestRegistryCoversAllAlgorithms(t *testing.T) {
	s, q := registryFixture(t)
	opts := DefaultOptions()

	direct := map[Algorithm]func() (Result, error){
		AlgorithmBucketBound: func() (Result, error) { return s.BucketBound(q, opts) },
		AlgorithmOSScaling:   func() (Result, error) { return s.OSScaling(q, opts) },
		AlgorithmGreedy:      func() (Result, error) { return s.Greedy(q, opts) },
		AlgorithmTopK:        func() (Result, error) { return s.OSScaling(q, opts) },
		AlgorithmExact:       func() (Result, error) { return s.Exact(q, opts) },
		AlgorithmBruteForce:  func() (Result, error) { return s.BruteForce(q, opts.MaxExpansions) },
	}
	for _, a := range Algorithms() {
		want, wantErr := direct[a]()
		got, gotErr := s.Run(context.Background(), a, q, opts)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: Run err = %v, direct err = %v", a, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Best().Objective != want.Best().Objective {
			t.Errorf("%s: Run objective %v != direct %v", a, got.Best().Objective, want.Best().Objective)
		}
	}
}

func TestRunDefaultIsBucketBound(t *testing.T) {
	s, q := registryFixture(t)
	def, err := s.Run(context.Background(), AlgorithmDefault, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := s.BucketBound(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if def.Best().Objective != bb.Best().Objective {
		t.Errorf("default algorithm objective %v != bucketbound %v", def.Best().Objective, bb.Best().Objective)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	s, q := registryFixture(t)
	_, err := s.Run(context.Background(), Algorithm("dijkstra"), q, DefaultOptions())
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown algorithm err = %v, want ErrBadQuery wrap", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"", AlgorithmBucketBound, true},
		{"bucketbound", AlgorithmBucketBound, true},
		{"OSScaling", AlgorithmOSScaling, true},
		{"  greedy ", AlgorithmGreedy, true},
		{"topk", AlgorithmTopK, true},
		{"exact", AlgorithmExact, true},
		{"bruteforce", AlgorithmBruteForce, true},
		{"astar", "", false},
	}
	for _, c := range cases {
		got, err := ParseAlgorithm(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && !errors.Is(err, ErrBadQuery) {
			t.Errorf("ParseAlgorithm(%q) err = %v, want ErrBadQuery wrap", c.in, err)
		}
	}
}

func TestBoundFor(t *testing.T) {
	opts := DefaultOptions() // ε=0.5, β=1.2
	if got := BoundFor(AlgorithmOSScaling, opts); got != 2.0 {
		t.Errorf("OSScaling bound = %v, want 2", got)
	}
	if got := BoundFor(AlgorithmBucketBound, opts); got < 2.39 || got > 2.41 {
		t.Errorf("BucketBound bound = %v, want 2.4", got)
	}
	if got := BoundFor(AlgorithmGreedy, opts); got != 0 {
		t.Errorf("Greedy bound = %v, want 0 (no guarantee)", got)
	}
	if got := BoundFor(AlgorithmExact, opts); got != 1 {
		t.Errorf("Exact bound = %v, want 1", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("DefaultOptions fails Validate: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Epsilon = 0 },
		func(o *Options) { o.Epsilon = 1 },
		func(o *Options) { o.Epsilon = -0.2 },
		func(o *Options) { o.Beta = 1 },
		func(o *Options) { o.Beta = 0.5 },
		func(o *Options) { o.Alpha = -0.1 },
		func(o *Options) { o.Alpha = 1.5 },
		func(o *Options) { o.K = 0 },
		func(o *Options) { o.Width = 0 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: Validate = %v, want ErrBadQuery wrap", i, err)
		}
	}
}
