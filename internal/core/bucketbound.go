package core

import (
	"context"
	"math"

	"kor/internal/pqueue"
)

// BucketBound answers the KOR query with Algorithm 2 of the paper. Labels
// are organized into buckets by their best possible objective score
// LOW(L) = L.OS + OS(τ_{L.node, t}) (Lemma 3): bucket r spans
// [βʳ·OS(τ_{s,t}), βʳ⁺¹·OS(τ_{s,t})). Labels are drawn from the first
// non-empty bucket; the first feasible route discovered in that bucket is,
// by Lemma 5, in the same bucket as the OSScaling answer, giving the
// approximation bound β/(1−ε) (Theorem 3) while stopping far earlier.
// With opts.K > 1 it answers the KkR query: the search ends once k distinct
// feasible routes have surfaced from the front bucket.
func (s *Searcher) BucketBound(q Query, opts Options) (Result, error) {
	return s.BucketBoundCtx(context.Background(), q, opts)
}

// BucketBoundCtx is BucketBound with cancellation: the bucket loop polls ctx
// and returns a wrapped ctx error once it fires.
func (s *Searcher) BucketBoundCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	p, err := s.newPlan(ctx, q, opts)
	if err != nil {
		return Result{}, err
	}
	return p.runBucketBound()
}

// bucketRing is the bucket array of Algorithm 2. The front index only moves
// forward: LOW is non-decreasing along any label chain (Lemma 3's bound
// only tightens), so children always land at or after the bucket their
// parent was drawn from.
type bucketRing struct {
	base    float64 // OS(τ_{s,t})
	logBeta float64
	buckets []*pqueue.Heap[*label]
	front   int
	live    int // non-deleted labels across all buckets
}

func newBucketRing(base, beta float64) *bucketRing {
	return &bucketRing{base: base, logBeta: math.Log(beta)}
}

// index maps a LOW score to its bucket number (Definition 9).
func (br *bucketRing) index(low float64) int {
	if low <= br.base {
		return 0 // guards float jitter at the bucket-0 boundary
	}
	r := int(math.Log(low/br.base) / br.logBeta)
	if r < 0 {
		return 0
	}
	return r
}

func (br *bucketRing) push(l *label, low float64) int {
	r := br.index(low)
	if r < br.front {
		r = br.front // float safety; analytically r ≥ front
	}
	for r >= len(br.buckets) {
		br.buckets = append(br.buckets, nil)
	}
	if br.buckets[r] == nil {
		br.buckets[r] = pqueue.New(func(a, b *label) bool { return a.less(b) })
	}
	br.buckets[r].Push(l)
	br.live++
	return r
}

// pop removes the lowest-order label from the first non-empty bucket,
// returning the label and its bucket index, or nil when the ring is empty.
func (br *bucketRing) pop() (*label, int) {
	for br.front < len(br.buckets) {
		b := br.buckets[br.front]
		if b == nil || b.Empty() {
			br.front++
			continue
		}
		l := b.Pop()
		br.live--
		if l.deleted {
			continue
		}
		return l, br.front
	}
	return nil, -1
}

func (p *plan) runBucketBound() (Result, error) {
	defer p.close()

	if sbs, ok := p.sigBudgetTo(p.q.Source); !ok || sbs > p.q.Budget {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}
	base, _, ok := p.tauTo(p.q.Source)
	if !ok {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}
	if base <= 0 {
		// Only possible for source == target (zero-length τ). Definition 9's
		// intervals degenerate; fall back to the smallest edge objective so
		// bucket boundaries stay positive. Documented in DESIGN.md.
		base = p.s.g.MinObjective()
	}

	cands := newCandidateSet(p.opts.K)
	store := newLabelStore(p.sc, p.opts.K, &p.metrics, p.opts.Tracer)
	ring := newBucketRing(base, p.opts.Beta)

	start := p.startLabel()
	store.tryInsert(start)
	startTailOS, startTailBS, startOK := p.tauTo(p.q.Source)
	if start.covered.Covers(p.qMask) && startOK && start.bs+startTailBS <= p.q.Budget {
		// The τ(s,t) completion of the empty route is feasible and its LOW
		// lies in bucket 0 — the front bucket — so Lemma 5 applies at once.
		if _, err := cands.offer(p, start, startTailOS, startTailBS); err != nil {
			return Result{Metrics: p.metrics}, err
		}
		p.metrics.Feasible++
		if cands.full() {
			return Result{Routes: cands.take(), Metrics: p.metrics}, nil
		}
	}
	ring.push(start, start.os+startTailOS)
	p.metrics.LabelsEnqueued++

	for {
		if err := p.checkCtx(); err != nil {
			return Result{Metrics: p.metrics}, err
		}
		l, front := ring.pop()
		if l == nil {
			break
		}
		p.metrics.LabelsDequeued++
		p.trace(TraceDequeued, l, cands.bound())

		// A full-coverage label drawn from the front bucket certifies a
		// feasible route exactly as Lemma 5 does for newly created labels:
		// every earlier bucket is empty and LOW(l) lies in this bucket. The
		// pseudocode only tests at creation (lines 19–23), which strands
		// labels whose bucket was ahead of the front when they were made —
		// e.g. a label already sitting on the target.
		if l.covered.Covers(p.qMask) {
			tos, tbs, ok := p.tauTo(l.node)
			if ok && l.bs+tbs <= p.q.Budget {
				if _, err := cands.offer(p, l, tos, tbs); err != nil {
					return Result{Metrics: p.metrics}, err
				}
				p.metrics.Feasible++
				p.trace(TraceFeasible, l, cands.bound())
				if cands.full() {
					return Result{Routes: cands.take(), Metrics: p.metrics}, nil
				}
			}
		}

		done, err := p.extendBB(l, front, store, ring, cands)
		if err != nil {
			return Result{Metrics: p.metrics}, err
		}
		if done {
			return Result{Routes: cands.take(), Metrics: p.metrics}, nil
		}
		if p.metrics.LabelsCreated > p.opts.MaxExpansions {
			return Result{Metrics: p.metrics}, ErrSearchLimit
		}
	}

	// Ring drained before k feasible routes surfaced in a front bucket.
	// Whatever was collected is still correct output for KkR; none at all
	// means no feasible route exists (all partial routes exceeded Δ).
	routes := cands.take()
	if len(routes) == 0 {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}
	return Result{Routes: routes, Metrics: p.metrics}, nil
}

// extendBB expands one label drawn from bucket front, applying Algorithm
// 2's creation checks (line 11) and termination test (lines 19–23). It
// reports search completion.
func (p *plan) extendBB(l *label, front int, store *labelStore, ring *bucketRing, cands *candidateSet) (bool, error) {
	for _, e := range p.s.g.Out(l.node) {
		child := p.newLabel(l, e)
		done, err := p.admitBB(child, front, store, ring, cands)
		if err != nil || done {
			return done, err
		}
	}
	if !p.opts.DisableStrategy1 && !l.covered.Covers(p.qMask) {
		if child := p.strategy1Jump(l); child != nil {
			done, err := p.admitBB(child, front, store, ring, cands)
			if err != nil || done {
				return done, err
			}
		}
	}
	return false, nil
}

func (p *plan) admitBB(child *label, front int, store *labelStore, ring *bucketRing, cands *candidateSet) (bool, error) {
	p.trace(TraceCreated, child, cands.bound())

	sbs, ok := p.sigBudgetTo(child.node)
	if !ok || child.bs+sbs > p.q.Budget {
		p.metrics.PrunedBudget++
		p.trace(TracePrunedBudget, child, cands.bound())
		return false, nil
	}
	tos, tbs, _ := p.tauTo(child.node)

	if p.strategy2Prune(child, math.Inf(1)) {
		return false, nil
	}
	if !store.tryInsert(child) {
		return false, nil
	}

	bucket := ring.push(child, child.os+tos)
	p.metrics.LabelsEnqueued++
	if ring.live > p.metrics.PeakQueue {
		p.metrics.PeakQueue = ring.live
	}
	p.trace(TraceEnqueued, child, cands.bound())

	// Lines 19–23: a full-coverage label landing in the front bucket whose
	// τ tail fits the budget certifies, via Lemma 5, that the OSScaling
	// answer shares this bucket; the route is good enough to return.
	if child.covered.Covers(p.qMask) && bucket == front && child.bs+tbs <= p.q.Budget {
		if _, err := cands.offer(p, child, tos, tbs); err != nil {
			return false, err
		}
		p.metrics.Feasible++
		p.trace(TraceFeasible, child, cands.bound())
		if cands.full() {
			return true, nil
		}
	}
	return false, nil
}
