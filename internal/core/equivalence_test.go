package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// Cross-algorithm equivalence harness: property tests over seeded random
// small graphs pinning the algorithms to each other and to their proven
// bounds. This is the net under every hot-path change — label pooling,
// signature hashing, domination prefilters and candidate-subgraph sweeps
// must not move a single answer outside these relations:
//
//   - Exact and BruteForce agree on feasibility and on the optimal
//     objective;
//   - OSScaling's objective is within 1/(1−ε) of the optimum (Theorem 2);
//   - BucketBound's objective is within β/(1−ε) (Theorem 3);
//   - both label algorithms find a route whenever one exists;
//   - TopK results are sorted, deduplicated, feasible real routes.
//
// Both oracle flavours run: dense tables answer lookups directly, the lazy
// oracle goes through the bounded candidate-subgraph sweeps — so a
// divergence between the two code paths fails here too.

// bruteForceBudget keeps exhaustive enumeration tractable on the random
// graphs below.
const bruteForceCap = 600_000

func equivalenceTrial(t *testing.T, trial int, dense bool, rng *rand.Rand) bool {
	t.Helper()
	g := randomKeywordGraph(rng, 8+rng.Intn(7), 4)
	return equivalenceTrialOn(t, trial, g, dense, rng)
}

// equivalenceTrialOn runs the cross-algorithm relations over a prebuilt
// graph — the entry point the post-Apply harness shares.
func equivalenceTrialOn(t *testing.T, trial int, g *graph.Graph, dense bool, rng *rand.Rand) bool {
	t.Helper()
	s := searcherFor(t, g, dense)
	q := randomQuery(rng, g, 1+rng.Intn(2))
	q.Budget = 1 + rng.Float64()*2.5

	bf, errBF := s.BruteForce(q, bruteForceCap)
	if errors.Is(errBF, ErrSearchLimit) {
		return false // enumeration blew the cap; trial carries no signal
	}
	if errBF != nil && !errors.Is(errBF, ErrNoRoute) {
		t.Fatalf("trial %d: brute force: %v", trial, errBF)
	}

	ex, errEx := s.Exact(q, DefaultOptions())
	if (errBF == nil) != (errEx == nil) {
		t.Fatalf("trial %d: feasibility disagreement: bruteforce err=%v, exact err=%v", trial, errBF, errEx)
	}
	if errBF != nil {
		// No feasible route: the label algorithms must agree.
		if _, err := s.OSScaling(q, DefaultOptions()); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("trial %d: OSScaling found a route where none exists (err=%v)", trial, err)
		}
		if _, err := s.BucketBound(q, DefaultOptions()); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("trial %d: BucketBound found a route where none exists (err=%v)", trial, err)
		}
		return true
	}

	opt := bf.Best().Objective
	if diff := math.Abs(ex.Best().Objective - opt); diff > 1e-9 {
		t.Fatalf("trial %d: Exact=%v vs BruteForce=%v (diff %v)", trial, ex.Best().Objective, opt, diff)
	}
	verifyRoute(t, g, q, ex.Best(), "exact")

	for _, eps := range []float64{0.1, 0.5} {
		opts := DefaultOptions()
		opts.Epsilon = eps
		oss, err := s.OSScaling(q, opts)
		if err != nil {
			t.Fatalf("trial %d: OSScaling ε=%v: %v (optimum %v exists)", trial, eps, err, opt)
		}
		verifyRoute(t, g, q, oss.Best(), "osscaling")
		if bound := opt/(1-eps) + 1e-9; oss.Best().Objective > bound {
			t.Fatalf("trial %d: OSScaling ε=%v objective %v outside bound %v (opt %v)",
				trial, eps, oss.Best().Objective, bound, opt)
		}

		bb, err := s.BucketBound(q, opts)
		if err != nil {
			t.Fatalf("trial %d: BucketBound ε=%v: %v (optimum %v exists)", trial, eps, err, opt)
		}
		verifyRoute(t, g, q, bb.Best(), "bucketbound")
		if bound := opts.Beta*opt/(1-eps) + 1e-9; bb.Best().Objective > bound {
			t.Fatalf("trial %d: BucketBound ε=%v β=%v objective %v outside bound %v (opt %v)",
				trial, eps, opts.Beta, bb.Best().Objective, bound, opt)
		}
	}

	// TopK: sorted by objective, no duplicate node sequences, all feasible.
	kOpts := DefaultOptions()
	kOpts.K = 3
	topk, err := s.OSScaling(q, kOpts)
	if err != nil {
		t.Fatalf("trial %d: TopK: %v (optimum %v exists)", trial, err, opt)
	}
	sigs := make(map[string]bool)
	for i, r := range topk.Routes {
		verifyRoute(t, g, q, r, "topk")
		if !r.Feasible {
			t.Fatalf("trial %d: TopK route %d infeasible: %v", trial, i, r)
		}
		if i > 0 && topk.Routes[i-1].Objective > r.Objective+1e-9 {
			t.Fatalf("trial %d: TopK routes out of order: %v then %v", trial, topk.Routes[i-1], r)
		}
		sig := routeSignature(r)
		if sigs[sig] {
			t.Fatalf("trial %d: TopK returned duplicate route %v", trial, r)
		}
		sigs[sig] = true
	}
	return true
}

func TestEquivalenceDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	informative := 0
	for trial := 0; trial < 30; trial++ {
		if equivalenceTrial(t, trial, true, rng) {
			informative++
		}
	}
	if informative < 10 {
		t.Fatalf("only %d informative trials; generator drifted", informative)
	}
}

func TestEquivalenceLazyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5012))
	informative := 0
	for trial := 0; trial < 30; trial++ {
		if equivalenceTrial(t, trial, false, rng) {
			informative++
		}
	}
	if informative < 10 {
		t.Fatalf("only %d informative trials; generator drifted", informative)
	}
}

// randomDelta perturbs g the way a live feed would: attribute drift on a
// few existing edges, a keyword added (sometimes a brand-new vocabulary
// entry), a keyword removed, and with some luck a new edge. The delta is
// never empty — at least one attribute update is always present.
func randomDelta(t *testing.T, rng *rand.Rand, g *graph.Graph) graph.Delta {
	t.Helper()
	n := g.NumNodes()
	var d graph.Delta

	// Drift attributes on up to three random edges.
	for k := 0; k < 1+rng.Intn(3); k++ {
		v := graph.NodeID(rng.Intn(n))
		out := g.Out(v)
		if len(out) == 0 {
			continue
		}
		e := out[rng.Intn(len(out))]
		d.UpdateEdges = append(d.UpdateEdges, graph.EdgePatch{
			From: v, To: e.To,
			Objective: 0.1 + rng.Float64(),
			Budget:    0.1 + rng.Float64(),
		})
	}
	if len(d.UpdateEdges) == 0 {
		t.Fatal("random graph has an edgeless node 0 neighborhood; generator drifted")
	}

	// Keyword churn: one add (occasionally a brand-new word) and one remove,
	// both drawn from the graph's actual vocabulary.
	if names := g.Vocab().Names(); len(names) > 0 {
		kw := names[rng.Intn(len(names))]
		if rng.Intn(3) == 0 {
			kw = "fresh"
		}
		d.AddKeywords = append(d.AddKeywords, graph.KeywordPatch{
			Node: graph.NodeID(rng.Intn(n)), Keywords: []string{kw},
		})
		d.RemoveKeywords = append(d.RemoveKeywords, graph.KeywordPatch{
			Node: graph.NodeID(rng.Intn(n)), Keywords: []string{names[rng.Intn(len(names))]},
		})
	}

	// A new edge, when a missing pair turns up quickly.
	for attempt := 0; attempt < 8; attempt++ {
		from, to := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if from == to {
			continue
		}
		exists := false
		for _, e := range g.Out(from) {
			if e.To == to {
				exists = true
				break
			}
		}
		if !exists {
			d.AddEdges = append(d.AddEdges, graph.EdgePatch{
				From: from, To: to,
				Objective: 0.1 + rng.Float64(), Budget: 0.1 + rng.Float64(),
			})
			break
		}
	}
	return d
}

// TestEquivalenceAfterApply runs the full cross-algorithm harness over
// graphs produced by Graph.Apply rather than a Builder: the live-update
// path must yield graphs on which every algorithm relation — Exact equals
// BruteForce, the label algorithms stay inside their proven bounds, TopK
// stays sorted and deduplicated — holds exactly as it does on built graphs.
// Both oracle flavours run, so the shared-storage CSRs feed the dense
// tables and the lazy bounded sweeps alike.
func TestEquivalenceAfterApply(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	informative := 0
	for trial := 0; trial < 24; trial++ {
		g := randomKeywordGraph(rng, 8+rng.Intn(7), 4)
		patched, err := g.Apply(randomDelta(t, rng, g))
		if err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if patched.Fingerprint() == g.Fingerprint() {
			t.Fatalf("trial %d: delta did not change the fingerprint", trial)
		}
		if equivalenceTrialOn(t, trial, patched, trial%2 == 0, rng) {
			informative++
		}
	}
	if informative < 8 {
		t.Fatalf("only %d informative trials; generator drifted", informative)
	}
}

// TestEquivalenceStrategiesOff re-runs a slice of the harness with both
// optimization strategies disabled, pinning the optimized and plain label
// searches to the same answers.
func TestEquivalenceStrategiesOff(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		g := randomKeywordGraph(rng, 9, 4)
		s := searcherFor(t, g, trial%2 == 0)
		q := randomQuery(rng, g, 2)
		q.Budget = 1 + rng.Float64()*2

		on := DefaultOptions()
		off := DefaultOptions()
		off.DisableStrategy1 = true
		off.DisableStrategy2 = true

		rOn, errOn := s.OSScaling(q, on)
		rOff, errOff := s.OSScaling(q, off)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: strategies changed feasibility: %v vs %v", trial, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		// Deterministic regression pin: on these seeds the strategies do not
		// change the settled objective (they prune work, not answers), and
		// any hot-path change that moves one of them shows up here.
		if math.Abs(rOn.Best().Objective-rOff.Best().Objective) > 1e-9 {
			t.Fatalf("trial %d: strategies changed the answer: %v vs %v",
				trial, rOn.Best().Objective, rOff.Best().Objective)
		}
	}
}
