package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Cross-algorithm equivalence harness: property tests over seeded random
// small graphs pinning the algorithms to each other and to their proven
// bounds. This is the net under every hot-path change — label pooling,
// signature hashing, domination prefilters and candidate-subgraph sweeps
// must not move a single answer outside these relations:
//
//   - Exact and BruteForce agree on feasibility and on the optimal
//     objective;
//   - OSScaling's objective is within 1/(1−ε) of the optimum (Theorem 2);
//   - BucketBound's objective is within β/(1−ε) (Theorem 3);
//   - both label algorithms find a route whenever one exists;
//   - TopK results are sorted, deduplicated, feasible real routes.
//
// Both oracle flavours run: dense tables answer lookups directly, the lazy
// oracle goes through the bounded candidate-subgraph sweeps — so a
// divergence between the two code paths fails here too.

// bruteForceBudget keeps exhaustive enumeration tractable on the random
// graphs below.
const bruteForceCap = 600_000

func equivalenceTrial(t *testing.T, trial int, dense bool, rng *rand.Rand) bool {
	t.Helper()
	g := randomKeywordGraph(rng, 8+rng.Intn(7), 4)
	s := searcherFor(t, g, dense)
	q := randomQuery(rng, g, 1+rng.Intn(2))
	q.Budget = 1 + rng.Float64()*2.5

	bf, errBF := s.BruteForce(q, bruteForceCap)
	if errors.Is(errBF, ErrSearchLimit) {
		return false // enumeration blew the cap; trial carries no signal
	}
	if errBF != nil && !errors.Is(errBF, ErrNoRoute) {
		t.Fatalf("trial %d: brute force: %v", trial, errBF)
	}

	ex, errEx := s.Exact(q, DefaultOptions())
	if (errBF == nil) != (errEx == nil) {
		t.Fatalf("trial %d: feasibility disagreement: bruteforce err=%v, exact err=%v", trial, errBF, errEx)
	}
	if errBF != nil {
		// No feasible route: the label algorithms must agree.
		if _, err := s.OSScaling(q, DefaultOptions()); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("trial %d: OSScaling found a route where none exists (err=%v)", trial, err)
		}
		if _, err := s.BucketBound(q, DefaultOptions()); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("trial %d: BucketBound found a route where none exists (err=%v)", trial, err)
		}
		return true
	}

	opt := bf.Best().Objective
	if diff := math.Abs(ex.Best().Objective - opt); diff > 1e-9 {
		t.Fatalf("trial %d: Exact=%v vs BruteForce=%v (diff %v)", trial, ex.Best().Objective, opt, diff)
	}
	verifyRoute(t, g, q, ex.Best(), "exact")

	for _, eps := range []float64{0.1, 0.5} {
		opts := DefaultOptions()
		opts.Epsilon = eps
		oss, err := s.OSScaling(q, opts)
		if err != nil {
			t.Fatalf("trial %d: OSScaling ε=%v: %v (optimum %v exists)", trial, eps, err, opt)
		}
		verifyRoute(t, g, q, oss.Best(), "osscaling")
		if bound := opt/(1-eps) + 1e-9; oss.Best().Objective > bound {
			t.Fatalf("trial %d: OSScaling ε=%v objective %v outside bound %v (opt %v)",
				trial, eps, oss.Best().Objective, bound, opt)
		}

		bb, err := s.BucketBound(q, opts)
		if err != nil {
			t.Fatalf("trial %d: BucketBound ε=%v: %v (optimum %v exists)", trial, eps, err, opt)
		}
		verifyRoute(t, g, q, bb.Best(), "bucketbound")
		if bound := opts.Beta*opt/(1-eps) + 1e-9; bb.Best().Objective > bound {
			t.Fatalf("trial %d: BucketBound ε=%v β=%v objective %v outside bound %v (opt %v)",
				trial, eps, opts.Beta, bb.Best().Objective, bound, opt)
		}
	}

	// TopK: sorted by objective, no duplicate node sequences, all feasible.
	kOpts := DefaultOptions()
	kOpts.K = 3
	topk, err := s.OSScaling(q, kOpts)
	if err != nil {
		t.Fatalf("trial %d: TopK: %v (optimum %v exists)", trial, err, opt)
	}
	sigs := make(map[string]bool)
	for i, r := range topk.Routes {
		verifyRoute(t, g, q, r, "topk")
		if !r.Feasible {
			t.Fatalf("trial %d: TopK route %d infeasible: %v", trial, i, r)
		}
		if i > 0 && topk.Routes[i-1].Objective > r.Objective+1e-9 {
			t.Fatalf("trial %d: TopK routes out of order: %v then %v", trial, topk.Routes[i-1], r)
		}
		sig := routeSignature(r)
		if sigs[sig] {
			t.Fatalf("trial %d: TopK returned duplicate route %v", trial, r)
		}
		sigs[sig] = true
	}
	return true
}

func TestEquivalenceDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	informative := 0
	for trial := 0; trial < 30; trial++ {
		if equivalenceTrial(t, trial, true, rng) {
			informative++
		}
	}
	if informative < 10 {
		t.Fatalf("only %d informative trials; generator drifted", informative)
	}
}

func TestEquivalenceLazyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5012))
	informative := 0
	for trial := 0; trial < 30; trial++ {
		if equivalenceTrial(t, trial, false, rng) {
			informative++
		}
	}
	if informative < 10 {
		t.Fatalf("only %d informative trials; generator drifted", informative)
	}
}

// TestEquivalenceStrategiesOff re-runs a slice of the harness with both
// optimization strategies disabled, pinning the optimized and plain label
// searches to the same answers.
func TestEquivalenceStrategiesOff(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		g := randomKeywordGraph(rng, 9, 4)
		s := searcherFor(t, g, trial%2 == 0)
		q := randomQuery(rng, g, 2)
		q.Budget = 1 + rng.Float64()*2

		on := DefaultOptions()
		off := DefaultOptions()
		off.DisableStrategy1 = true
		off.DisableStrategy2 = true

		rOn, errOn := s.OSScaling(q, on)
		rOff, errOff := s.OSScaling(q, off)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: strategies changed feasibility: %v vs %v", trial, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		// Deterministic regression pin: on these seeds the strategies do not
		// change the settled objective (they prune work, not answers), and
		// any hot-path change that moves one of them shows up here.
		if math.Abs(rOn.Best().Objective-rOff.Best().Objective) > 1e-9 {
			t.Fatalf("trial %d: strategies changed the answer: %v vs %v",
				trial, rOn.Best().Objective, rOff.Best().Objective)
		}
	}
}
