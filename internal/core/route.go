package core

import (
	"fmt"
	"strings"

	"kor/internal/bitset"
	"kor/internal/graph"
)

// Route is a search result: the node sequence from the query source to the
// query target with its scores (Definitions 2–3).
type Route struct {
	// Nodes is the full node sequence, source first, target last. A route
	// may revisit nodes: KOR routes are walks, not simple paths.
	Nodes []graph.NodeID
	// Objective is the route's objective score OS(R).
	Objective float64
	// Budget is the route's budget score BS(R).
	Budget float64
	// Covered is the set of query keywords the route covers, as bit
	// positions aligned with the query's keyword list.
	Covered bitset.Mask
	// CoversAll reports whether every query keyword is covered.
	CoversAll bool
	// Feasible reports whether the route meets both hard constraints of
	// Definition 4: full coverage and Budget ≤ Δ.
	Feasible bool
}

// String renders the route compactly for logs and examples.
func (r Route) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range r.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, "] OS=%.4g BS=%.4g", r.Objective, r.Budget)
	if !r.Feasible {
		b.WriteString(" (infeasible)")
	}
	return b.String()
}

// Result is what a search returns: the best route(s) and the work counters.
type Result struct {
	// Routes holds the routes found, best objective first. Plain KOR
	// queries yield one; TopK yields up to k.
	Routes []Route
	// Metrics are the search's work counters.
	Metrics Metrics
}

// Best returns the first (best) route. It panics if the result is empty;
// call only after a nil-error search.
func (r Result) Best() Route { return r.Routes[0] }

// reconstruct materializes the route of a final label: the parent chain
// (expanding strategy-1 σ-shortcuts), then the τ tail from the label's node
// to the query target. tailOS/tailBS are τ's scores, already verified
// feasible by the caller. The second return value is the route's uint64
// signature: for shortcut-free chains it starts from the hash the labels
// carried incrementally and only folds in the τ tail; chains containing a
// shortcut recompute it over the materialized sequence.
func (p *plan) reconstruct(last *label, tailOS, tailBS float64) (Route, uint64, error) {
	// Collect the chain source→last.
	var chain []*label
	for l := last; l != nil; l = l.parent {
		chain = append(chain, l)
	}
	nodes := make([]graph.NodeID, 0, len(chain)+4)
	for i := len(chain) - 1; i >= 0; i-- {
		l := chain[i]
		if !l.shortcut || l.parent == nil {
			nodes = append(nodes, l.node)
			continue
		}
		seg, ok := p.shortcutPath(l.parent.node, l.node)
		if !ok {
			return Route{}, 0, fmt.Errorf("kor: internal: lost σ(%d,%d) during reconstruction", l.parent.node, l.node)
		}
		nodes = append(nodes, seg[1:]...) // seg[0] == parent, already present
	}
	chainLen := len(nodes)

	if last.node != p.q.Target {
		tail, ok := p.tailPath(last.node)
		if !ok {
			return Route{}, 0, fmt.Errorf("kor: internal: lost τ(%d,%d) during reconstruction", last.node, p.q.Target)
		}
		nodes = append(nodes, tail[1:]...)
	}

	sig := last.hash
	from := chainLen
	if last.approx {
		sig, from = routeHashSeed, 0
	}
	for _, v := range nodes[from:] {
		sig = extendRouteHash(sig, v)
	}

	covered := bitset.Mask(0)
	for _, v := range nodes {
		covered = covered.Union(p.nodeMask[v])
	}
	os := last.os + tailOS
	bs := last.bs + tailBS
	return Route{
		Nodes:     nodes,
		Objective: os,
		Budget:    bs,
		Covered:   covered,
		CoversAll: covered.Covers(p.qMask),
		Feasible:  covered.Covers(p.qMask) && bs <= p.q.Budget,
	}, sig, nil
}
