package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Algorithm names one of the package's search algorithms. The zero value
// selects the default (BucketBound, the paper's recommended speed/quality
// trade-off). Algorithm values double as the wire spelling: they are the
// strings clients put in requests.
type Algorithm string

// The registered algorithms.
const (
	// AlgorithmDefault resolves to AlgorithmBucketBound.
	AlgorithmDefault Algorithm = ""
	// AlgorithmBucketBound is the §3.3 bucket label search, bound β/(1−ε).
	AlgorithmBucketBound Algorithm = "bucketbound"
	// AlgorithmOSScaling is the §3.2 scaled label search, bound 1/(1−ε).
	AlgorithmOSScaling Algorithm = "osscaling"
	// AlgorithmGreedy is the §3.4 beam-greedy heuristic, no guarantee.
	AlgorithmGreedy Algorithm = "greedy"
	// AlgorithmTopK is the §3.5 KkR extension: OSScaling returning the K
	// best distinct routes (set Options.K).
	AlgorithmTopK Algorithm = "topk"
	// AlgorithmExact is the exact branch-and-bound; exponential worst case.
	AlgorithmExact Algorithm = "exact"
	// AlgorithmBruteForce is the exhaustive §3.2 baseline with only budget
	// pruning; for validation on small inputs.
	AlgorithmBruteForce Algorithm = "bruteforce"
)

// algorithmEntry describes one registered algorithm: how to run it and what
// approximation guarantee it carries.
type algorithmEntry struct {
	run func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error)
	// bound returns the approximation factor the algorithm guarantees on
	// the objective score under the given options; 0 means no guarantee,
	// 1 means exact.
	bound   func(opts Options) float64
	summary string
}

// registry maps canonical algorithm names to their entries. AlgorithmDefault
// and aliases are resolved by Canonical before lookup, so the map holds only
// canonical spellings. The map is populated at init and read-only afterwards,
// hence safe for concurrent use.
var registry = map[Algorithm]algorithmEntry{
	AlgorithmBucketBound: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.BucketBoundCtx(ctx, q, opts)
		},
		bound:   func(o Options) float64 { return o.Beta / (1 - o.Epsilon) },
		summary: "bucket label search, bound β/(1−ε) (§3.3)",
	},
	AlgorithmOSScaling: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.OSScalingCtx(ctx, q, opts)
		},
		bound:   func(o Options) float64 { return 1 / (1 - o.Epsilon) },
		summary: "scaled label search, bound 1/(1−ε) (§3.2)",
	},
	AlgorithmGreedy: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.GreedyCtx(ctx, q, opts)
		},
		bound:   func(Options) float64 { return 0 },
		summary: "beam-greedy heuristic, no guarantee (§3.4)",
	},
	AlgorithmTopK: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.OSScalingCtx(ctx, q, opts)
		},
		bound:   func(o Options) float64 { return 1 / (1 - o.Epsilon) },
		summary: "KkR top-k via OSScaling with k-domination (§3.5)",
	},
	AlgorithmExact: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.ExactCtx(ctx, q, opts)
		},
		bound:   func(Options) float64 { return 1 },
		summary: "exact branch-and-bound; exponential worst case",
	},
	AlgorithmBruteForce: {
		run: func(ctx context.Context, s *Searcher, q Query, opts Options) (Result, error) {
			return s.BruteForceCtx(ctx, q, opts.MaxExpansions)
		},
		bound:   func(Options) float64 { return 1 },
		summary: "exhaustive baseline with budget pruning only",
	},
}

// Canonical resolves the default and normalizes case; the result is a
// registry key if and only if the algorithm is known.
func (a Algorithm) Canonical() Algorithm {
	switch c := Algorithm(strings.ToLower(strings.TrimSpace(string(a)))); c {
	case AlgorithmDefault:
		return AlgorithmBucketBound
	default:
		return c
	}
}

// Valid reports whether the algorithm (after canonicalization) is registered.
func (a Algorithm) Valid() bool {
	_, ok := registry[a.Canonical()]
	return ok
}

// String returns the canonical wire spelling.
func (a Algorithm) String() string { return string(a.Canonical()) }

// Summary is a one-line human description for listings and docs.
func (a Algorithm) Summary() string { return registry[a.Canonical()].summary }

// ParseAlgorithm resolves a wire spelling ("", "bucketbound", "osscaling",
// "greedy", "topk", "exact", "bruteforce", any case) to its Algorithm,
// or an ErrBadQuery-wrapped error naming the valid choices.
func ParseAlgorithm(s string) (Algorithm, error) {
	a := Algorithm(s).Canonical()
	if _, ok := registry[a]; !ok {
		return "", fmt.Errorf("%w: %w %q (valid: %s)",
			ErrBadQuery, ErrUnknownAlgorithm, s, strings.Join(algorithmNames(), ", "))
	}
	return a, nil
}

// Algorithms lists the registered algorithms in a stable order.
func Algorithms() []Algorithm {
	names := algorithmNames()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

func algorithmNames() []string {
	names := make([]string, 0, len(registry))
	for a := range registry {
		names = append(names, string(a))
	}
	sort.Strings(names)
	return names
}

// BoundFor returns the approximation factor algorithm a guarantees on the
// objective score under opts: 1 for the exact algorithms, β/(1−ε) or
// 1/(1−ε) for the label algorithms, 0 (no guarantee) for the heuristics and
// for unknown algorithms.
func BoundFor(a Algorithm, opts Options) float64 {
	e, ok := registry[a.Canonical()]
	if !ok {
		return 0
	}
	return e.bound(opts)
}

// Run dispatches the query to the named algorithm through the registry: the
// single entry point behind Engine.Run. An unknown algorithm fails with an
// ErrBadQuery wrap before any search work.
func (s *Searcher) Run(ctx context.Context, a Algorithm, q Query, opts Options) (Result, error) {
	entry, ok := registry[a.Canonical()]
	if !ok {
		return Result{}, fmt.Errorf("%w: %w %q (valid: %s)",
			ErrBadQuery, ErrUnknownAlgorithm, a, strings.Join(algorithmNames(), ", "))
	}
	return entry.run(ctx, s, q, opts)
}
