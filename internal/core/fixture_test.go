package core

import (
	"testing"

	"kor/internal/apsp"
	"kor/internal/graph"
)

// paperGraph reconstructs the paper's Figure-1 example graph. The figure is
// not printed in the text; every edge below is derived from Examples 1–2,
// Table 1 and the §3.1 pre-processing examples, and internal/apsp verifies
// the derived τ/σ values against the numbers the paper states.
//
// Keywords: v2, v5 carry t2; v3, v6 carry t1; v4 carries t4; v7 carries t3;
// v0 and v1 carry keywords outside Example 2's query set.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return buildPaperGraph(t, []string{"t3"})
}

// paperGraphMultiV7 is the Figure-1 variant used for the §2 query examples
// (queries over {t1,t2,t3}): they require v7 to supply both t2 and t3,
// which is incompatible with the Example-2 trace under one-keyword nodes —
// see DESIGN.md. Tests for §2 use this fixture.
func paperGraphMultiV7(t testing.TB) *graph.Graph {
	t.Helper()
	return buildPaperGraph(t, []string{"t2", "t3"})
}

func buildPaperGraph(t testing.TB, v7Keywords []string) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("t5")          // v0
	b.AddNode("t4")          // v1
	b.AddNode("t2")          // v2
	b.AddNode("t1")          // v3
	b.AddNode("t4")          // v4
	b.AddNode("t2")          // v5
	b.AddNode("t1")          // v6
	b.AddNode(v7Keywords...) // v7
	edges := []struct {
		from, to graph.NodeID
		o, c     float64
	}{
		{0, 1, 4, 1}, {0, 2, 1, 3}, {0, 3, 2, 2},
		{2, 3, 3, 2}, {2, 6, 1, 1},
		{3, 1, 1, 2}, {3, 4, 1, 2}, {3, 5, 3, 2},
		{4, 7, 1, 3},
		{5, 4, 2, 1}, {5, 7, 4, 1},
		{6, 5, 2, 6},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e.from, e.to, err)
		}
	}
	return b.MustBuild()
}

// terms resolves keyword names to Terms, failing the test on unknowns.
func terms(t testing.TB, g *graph.Graph, names ...string) []graph.Term {
	t.Helper()
	out := make([]graph.Term, len(names))
	for i, n := range names {
		term, ok := g.Vocab().Lookup(n)
		if !ok {
			t.Fatalf("keyword %q not in vocabulary", n)
		}
		out[i] = term
	}
	return out
}

// searcherFor builds a Searcher with the requested oracle flavour.
func searcherFor(t testing.TB, g *graph.Graph, dense bool) *Searcher {
	t.Helper()
	if dense {
		return NewSearcher(g, apsp.NewMatrixOracle(g), nil)
	}
	return NewSearcher(g, nil, nil)
}

func wantNodes(t *testing.T, got Route, want ...graph.NodeID) {
	t.Helper()
	if len(got.Nodes) != len(want) {
		t.Fatalf("route = %v, want nodes %v", got, want)
	}
	for i := range want {
		if got.Nodes[i] != want[i] {
			t.Fatalf("route = %v, want nodes %v", got, want)
		}
	}
}
