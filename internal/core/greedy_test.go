package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

func TestGreedyOnPaperExamples(t *testing.T) {
	g := paperGraphMultiV7(t)
	s := searcherFor(t, g, true)
	kws := terms(t, g, "t1", "t2", "t3")
	for _, width := range []int{1, 2} {
		opts := DefaultOptions()
		opts.Width = width
		res, err := s.Greedy(Query{Source: 0, Target: 7, Keywords: kws, Budget: 8}, opts)
		if err != nil {
			t.Fatalf("Greedy-%d: %v", width, err)
		}
		r := res.Best()
		if !r.CoversAll {
			t.Errorf("Greedy-%d keyword mode failed to cover: %v", width, r)
		}
		if !r.Feasible {
			t.Errorf("Greedy-%d found infeasible route %v on an easy query", width, r)
		}
		// The greedy answer may be suboptimal but never better than optimal.
		if r.Objective < 4-1e-9 {
			t.Errorf("Greedy-%d objective %v beats the optimum 4 — scores are wrong", width, r.Objective)
		}
	}
}

// TestGreedyBudgetViolationReported builds a query where covering keywords
// requires overshooting Δ; keyword-priority mode must return the route with
// ErrBudgetExceeded (this is what Figure 13 counts as a failure).
func TestGreedyBudgetViolationReported(t *testing.T) {
	g := paperGraphMultiV7(t)
	s := searcherFor(t, g, true)
	kws := terms(t, g, "t1", "t2", "t3")
	// Feasible routes need BS ≥ 5; force Δ below that.
	res, err := s.Greedy(Query{Source: 0, Target: 7, Keywords: kws, Budget: 4.5}, DefaultOptions())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(res.Routes) != 1 {
		t.Fatal("violating route not returned for inspection")
	}
	r := res.Best()
	if !r.CoversAll {
		t.Errorf("keyword-priority route must cover keywords: %v", r)
	}
	if r.Budget <= 4.5 {
		t.Errorf("route %v claims to fit a budget that is impossible", r)
	}
	if r.Feasible {
		t.Error("route flagged feasible despite budget violation")
	}
}

// TestGreedyBudgetPriority: the §3.4 modification respects Δ and may leave
// keywords uncovered. The fixture makes the keyword detour (budget 6)
// unaffordable under Δ=2 while the direct path (budget 1) fits.
func TestGreedyBudgetPriority(t *testing.T) {
	b := graph.NewBuilder()
	src := b.AddNode()
	gold := b.AddNode("gold")
	dst := b.AddNode()
	for _, e := range []struct {
		from, to graph.NodeID
		o, c     float64
	}{
		{src, dst, 1, 1}, {src, gold, 1, 3}, {gold, dst, 1, 3},
	} {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	s := searcherFor(t, g, true)
	kws := terms(t, g, "gold")

	opts := DefaultOptions()
	opts.BudgetPriority = true
	res, err := s.Greedy(Query{Source: src, Target: dst, Keywords: kws, Budget: 2}, opts)
	if err != nil {
		t.Fatalf("budget-priority greedy: %v", err)
	}
	r := res.Best()
	if r.Budget > 2+1e-9 {
		t.Errorf("budget-priority route busts Δ: %v", r)
	}
	if r.CoversAll {
		t.Errorf("route %v covers gold within Δ=2, which is impossible", r)
	}
	wantNodes(t, r, src, dst)

	// Keyword priority on the same query covers gold and reports the
	// violation.
	res, err = s.Greedy(Query{Source: src, Target: dst, Keywords: kws, Budget: 2}, DefaultOptions())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("keyword-priority err = %v, want ErrBudgetExceeded", err)
	}
	if r := res.Best(); !r.CoversAll || r.Budget != 6 {
		t.Errorf("keyword-priority route = %v, want coverage with BS 6", r)
	}

	// Δ below any path to the target: budget-priority reports no route.
	if _, err := s.Greedy(Query{Source: src, Target: dst, Keywords: kws, Budget: 0.5}, opts); !errors.Is(err, ErrNoRoute) {
		t.Errorf("unreachable Δ: err = %v, want ErrNoRoute", err)
	}
}

// TestGreedy2NoWorseOnAverage mirrors the paper's finding that Greedy-2
// consistently outperforms Greedy-1 (§4.2.2): across random workloads the
// wider beam must not lose on average, and each beam's feasible routes must
// satisfy the structural invariants.
func TestGreedy2NoWorseOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var os1, os2 float64
	wins2, count := 0, 0
	for trial := 0; trial < 40; trial++ {
		g := randomKeywordGraph(rng, 25, 6)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		q.Budget *= 2 // give greedy room so both widths usually succeed
		o1 := DefaultOptions()
		o2 := DefaultOptions()
		o2.Width = 2
		r1, err1 := s.Greedy(q, o1)
		r2, err2 := s.Greedy(q, o2)
		if err1 != nil || err2 != nil {
			continue
		}
		verifyRoute(t, g, q, r1.Best(), fmt.Sprintf("trial %d greedy-1", trial))
		verifyRoute(t, g, q, r2.Best(), fmt.Sprintf("trial %d greedy-2", trial))
		os1 += r1.Best().Objective
		os2 += r2.Best().Objective
		if r2.Best().Objective <= r1.Best().Objective+1e-9 {
			wins2++
		}
		count++
	}
	if count < 10 {
		t.Skipf("only %d comparable runs", count)
	}
	if os2 > os1*1.0001 {
		t.Errorf("Greedy-2 average %v worse than Greedy-1 average %v over %d runs", os2/float64(count), os1/float64(count), count)
	}
	if wins2 < count*3/4 {
		t.Errorf("Greedy-2 only matched or beat Greedy-1 on %d/%d runs", wins2, count)
	}
}

// TestGreedyNeverBeatsExact: greedy objective scores are bounded below by
// the exact optimum whenever both succeed.
func TestGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		g := randomKeywordGraph(rng, 15, 5)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		exact, errE := s.Exact(q, DefaultOptions())
		greedy, errG := s.Greedy(q, DefaultOptions())
		if errE != nil || errG != nil || !greedy.Best().Feasible {
			continue
		}
		checked++
		if greedy.Best().Objective < exact.Best().Objective-1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact %v", trial,
				greedy.Best().Objective, exact.Best().Objective)
		}
	}
	if checked == 0 {
		t.Skip("no comparable runs")
	}
}

// TestGreedyUnreachableKeyword: a keyword present only on an unreachable
// node makes every branch die.
func TestGreedyUnreachableKeyword(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	// t5 sits only on v0; from v1 (no outgoing edges) nothing is reachable,
	// so ask from v4 toward v7 with keyword t5 (behind the source).
	_, err := s.Greedy(Query{Source: 4, Target: 7, Keywords: terms(t, g, "t5"), Budget: 100}, DefaultOptions())
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

// TestGreedyAlphaExtremes: α=0 optimizes purely for budget, α=1 purely for
// objective; both must still return structurally valid routes.
func TestGreedyAlphaExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomKeywordGraph(rng, 30, 5)
	s := searcherFor(t, g, false)
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, g, 2)
		q.Budget *= 3
		for _, alpha := range []float64{0, 0.5, 1} {
			opts := DefaultOptions()
			opts.Alpha = alpha
			res, err := s.Greedy(q, opts)
			if err != nil && !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrNoRoute) {
				t.Fatalf("α=%v: unexpected error %v", alpha, err)
			}
			if err == nil {
				verifyRoute(t, g, q, res.Best(), fmt.Sprintf("α=%v trial %d", alpha, trial))
			}
		}
	}
}
