package core

import (
	"errors"
	"math"
	"testing"

	"kor/internal/bitset"
	"kor/internal/graph"
)

// TestSection2QueryExamples replays the two KOR queries of §2: for
// Q = ⟨v0, v7, {t1,t2,t3}, 8⟩ the optimal route is ⟨v0,v3,v4,v7⟩ with
// OS 4 / BS 7; tightening Δ to 6 moves the optimum to ⟨v0,v3,v5,v7⟩ with
// OS 9 / BS 5.
func TestSection2QueryExamples(t *testing.T) {
	g := paperGraphMultiV7(t)
	for _, dense := range []bool{false, true} {
		s := searcherFor(t, g, dense)
		kws := terms(t, g, "t1", "t2", "t3")

		res, err := s.Exact(Query{Source: 0, Target: 7, Keywords: kws, Budget: 8}, DefaultOptions())
		if err != nil {
			t.Fatalf("dense=%v Exact Δ=8: %v", dense, err)
		}
		best := res.Best()
		wantNodes(t, best, 0, 3, 4, 7)
		if best.Objective != 4 || best.Budget != 7 {
			t.Errorf("Δ=8 route scores = %v/%v, want 4/7", best.Objective, best.Budget)
		}
		if !best.Feasible || !best.CoversAll {
			t.Errorf("Δ=8 route flags = %+v", best)
		}

		res, err = s.Exact(Query{Source: 0, Target: 7, Keywords: kws, Budget: 6}, DefaultOptions())
		if err != nil {
			t.Fatalf("dense=%v Exact Δ=6: %v", dense, err)
		}
		best = res.Best()
		wantNodes(t, best, 0, 3, 5, 7)
		if best.Objective != 9 || best.Budget != 5 {
			t.Errorf("Δ=6 route scores = %v/%v, want 9/5", best.Objective, best.Budget)
		}

		// Both approximation algorithms must find the same optima here: the
		// second-best feasible routes are far outside their bounds.
		for name, run := range map[string]func(Query, Options) (Result, error){
			"OSScaling":   s.OSScaling,
			"BucketBound": s.BucketBound,
		} {
			res, err := run(Query{Source: 0, Target: 7, Keywords: kws, Budget: 8}, DefaultOptions())
			if err != nil {
				t.Fatalf("%s Δ=8: %v", name, err)
			}
			if res.Best().Objective != 4 {
				t.Errorf("%s Δ=8 objective = %v, want 4", name, res.Best().Objective)
			}
			res, err = run(Query{Source: 0, Target: 7, Keywords: kws, Budget: 6}, DefaultOptions())
			if err != nil {
				t.Fatalf("%s Δ=6: %v", name, err)
			}
			if res.Best().Objective != 9 {
				t.Errorf("%s Δ=6 objective = %v, want 9", name, res.Best().Objective)
			}
		}
	}
}

// traceRecorder captures label events for trace assertions.
type traceRecorder struct {
	events []TraceEvent
}

func (r *traceRecorder) Trace(e TraceEvent) { r.events = append(r.events, e) }

func (r *traceRecorder) created() []LabelView {
	var out []LabelView
	for _, e := range r.events {
		if e.Kind == TraceCreated {
			out = append(out, e.Label)
		}
	}
	return out
}

// TestExample2Trace replays Example 2 of the paper: Q = ⟨v0, v7, {t1,t2},
// 10⟩ with ε = 0.5 on the Figure-1 graph. θ = 1/20, so Table 1's scaled
// scores are 20× the objective scores. Every label of Table 1 must be
// created with exactly the paper's (λ, ŌS, OS, BS) contents, and the final
// answer must be R1 = ⟨v0,v2,v3,v4,v7⟩ with OS 6, BS 10.
func TestExample2Trace(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	rec := &traceRecorder{}
	opts := DefaultOptions()
	opts.Epsilon = 0.5
	opts.Tracer = rec
	// The paper's walkthrough does not include the optimization strategies.
	opts.DisableStrategy1 = true
	opts.DisableStrategy2 = true

	kws := terms(t, g, "t1", "t2") // bit 0 = t1, bit 1 = t2
	res, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: kws, Budget: 10}, opts)
	if err != nil {
		t.Fatalf("OSScaling: %v", err)
	}
	best := res.Best()
	wantNodes(t, best, 0, 2, 3, 4, 7)
	if best.Objective != 6 || best.Budget != 10 {
		t.Fatalf("route scores = %v/%v, want 6/10 (R1 of Example 2)", best.Objective, best.Budget)
	}

	// Table 1, with masks over (bit0=t1, bit1=t2). λ intersects the query
	// keywords only, exactly as the table prints them.
	t1 := bitset.New(0)
	t2 := bitset.New(1)
	both := bitset.New(0, 1)
	none := bitset.Mask(0)
	wantLabels := []LabelView{
		{Node: 1, Covered: none, ScaledOS: 80, OS: 4, BS: 1},  // L0_1
		{Node: 2, Covered: t2, ScaledOS: 20, OS: 1, BS: 3},    // L0_2
		{Node: 3, Covered: t1, ScaledOS: 40, OS: 2, BS: 2},    // L0_3
		{Node: 3, Covered: both, ScaledOS: 80, OS: 4, BS: 5},  // L1_3 via v2
		{Node: 6, Covered: both, ScaledOS: 40, OS: 2, BS: 4},  // L0_6 (pruned: 4+7 > 10)
		{Node: 1, Covered: t1, ScaledOS: 60, OS: 3, BS: 4},    // L1_1 via v3
		{Node: 4, Covered: t1, ScaledOS: 60, OS: 3, BS: 4},    // L0_4
		{Node: 5, Covered: both, ScaledOS: 100, OS: 5, BS: 4}, // L0_5
	}
	created := rec.created()
	for _, want := range wantLabels {
		found := false
		for _, got := range created {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Table-1 label %+v never created; created: %+v", want, created)
		}
	}

	// L0_6 must be pruned by the budget condition: BS 4 + BS(σ(6,7)) 7 > 10.
	prunedL06 := false
	for _, e := range rec.events {
		if e.Kind == TracePrunedBudget && e.Label.Node == 6 && e.Label.BS == 4 {
			prunedL06 = true
		}
	}
	if !prunedL06 {
		t.Error("L0_6 was not budget-pruned as in Example 2 step (b)")
	}

	// Dequeue order of Example 2: L0_0 at v0, then L0_2 ≺ L0_3 ≺ L0_1.
	var dequeued []graph.NodeID
	for _, e := range rec.events {
		if e.Kind == TraceDequeued {
			dequeued = append(dequeued, e.Label.Node)
		}
	}
	if len(dequeued) < 3 || dequeued[0] != 0 || dequeued[1] != 2 || dequeued[2] != 3 {
		t.Errorf("dequeue order = %v, want it to start [0 2 3]", dequeued)
	}

	// The first upper bound must be U = 6, from L1_3 completed by τ(3,7)
	// (step (c): R1 with OS(R1) = 6).
	for _, e := range rec.events {
		if e.Kind == TraceUpperBound {
			if e.U != 6 {
				t.Errorf("first upper bound = %v, want 6", e.U)
			}
			break
		}
	}
}

// TestExample1Labels verifies the two label contents of Example 1: the
// paths v0→v2→v3→v4 and v0→v2→v6→v5→v4 produce labels (…,100,5,7) and
// (…,120,6,11) under Δ=10, ε=0.5 (θ=1/20). The second exceeds any feasible
// completion and is only observable through creation events with a large Δ,
// so the check recomputes the arithmetic directly on the fixture.
func TestExample1Labels(t *testing.T) {
	g := paperGraph(t)
	sumPath := func(nodes ...graph.NodeID) (os, bs float64) {
		for i := 1; i < len(nodes); i++ {
			found := false
			for _, e := range g.Out(nodes[i-1]) {
				if e.To == nodes[i] {
					os += e.Objective
					bs += e.Budget
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fixture lost edge %d→%d", nodes[i-1], nodes[i])
			}
		}
		return os, bs
	}
	os, bs := sumPath(0, 2, 3, 4)
	if os != 5 || bs != 7 {
		t.Errorf("R1 of Example 1 = %v/%v, want 5/7", os, bs)
	}
	theta := 0.5 * 1 * 1 / 10.0 // ε·o_min·b_min/Δ = 1/20 per Example 1
	if got := math.Floor(os / theta); got != 100 {
		t.Errorf("scaled OS of R1 = %v, want 100", got)
	}
	os, bs = sumPath(0, 2, 6, 5, 4)
	if os != 6 || bs != 11 {
		t.Errorf("R2 of Example 1 = %v/%v, want 6/11", os, bs)
	}
	if got := math.Floor(os / theta); got != 120 {
		t.Errorf("scaled OS of R2 = %v, want 120", got)
	}
}

// TestDeltaSevenEnqueuesL05 checks the parenthetical in Example 2 step (e):
// with Δ=7 the completion of L0_5 through τ(5,7) busts the budget, so the
// label is enqueued instead, and the answer becomes ⟨v0,v3,v5,v7⟩.
func TestDeltaSevenEnqueuesL05(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	opts := DefaultOptions()
	opts.DisableStrategy1 = true
	opts.DisableStrategy2 = true
	kws := terms(t, g, "t1", "t2")
	res, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: kws, Budget: 7}, opts)
	if err != nil {
		t.Fatalf("OSScaling Δ=7: %v", err)
	}
	best := res.Best()
	wantNodes(t, best, 0, 3, 5, 7)
	if best.Objective != 9 || best.Budget != 5 {
		t.Errorf("Δ=7 route = %v, want OS 9 BS 5", best)
	}
}

func TestNoFeasibleRoute(t *testing.T) {
	g := paperGraph(t)
	for _, dense := range []bool{false, true} {
		s := searcherFor(t, g, dense)
		kws := terms(t, g, "t1", "t2")
		// Δ=4 cannot even reach v7 covering anything: min budget 0→7 is 5.
		for name, run := range map[string]func(Query, Options) (Result, error){
			"OSScaling": s.OSScaling, "BucketBound": s.BucketBound, "Exact": s.Exact,
		} {
			_, err := run(Query{Source: 0, Target: 7, Keywords: kws, Budget: 4}, DefaultOptions())
			if !errors.Is(err, ErrNoRoute) {
				t.Errorf("dense=%v %s with Δ=4: err = %v, want ErrNoRoute", dense, name, err)
			}
		}
		// An absent keyword combination: t4 at v1/v4 is reachable, but add
		// an impossible budget for coverage: t4 and back within 4.9.
		_, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: terms(t, g, "t4"), Budget: 4.9}, DefaultOptions())
		if !errors.Is(err, ErrNoRoute) {
			t.Errorf("dense=%v unreachable keyword: %v", dense, err)
		}
	}
}

func TestBadQueries(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, false)
	kws := terms(t, g, "t1")
	cases := []struct {
		name string
		q    Query
		o    Options
	}{
		{"bad source", Query{Source: 99, Target: 7, Keywords: kws, Budget: 5}, DefaultOptions()},
		{"bad target", Query{Source: 0, Target: -1, Keywords: kws, Budget: 5}, DefaultOptions()},
		{"zero budget", Query{Source: 0, Target: 7, Keywords: kws, Budget: 0}, DefaultOptions()},
		{"no keywords", Query{Source: 0, Target: 7, Budget: 5}, DefaultOptions()},
		{"bad term", Query{Source: 0, Target: 7, Keywords: []graph.Term{999}, Budget: 5}, DefaultOptions()},
		{"bad epsilon", Query{Source: 0, Target: 7, Keywords: kws, Budget: 5}, func() Options { o := DefaultOptions(); o.Epsilon = 1.5; return o }()},
		{"bad beta", Query{Source: 0, Target: 7, Keywords: kws, Budget: 5}, func() Options { o := DefaultOptions(); o.Beta = 0.9; return o }()},
		{"bad alpha", Query{Source: 0, Target: 7, Keywords: kws, Budget: 5}, func() Options { o := DefaultOptions(); o.Alpha = -1; return o }()},
	}
	for _, c := range cases {
		if _, err := s.OSScaling(c.q, c.o); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", c.name, err)
		}
	}
}

// TestSourceCoversAllKeywords: when the source itself covers the query, the
// answer degenerates to τ(s,t) — a case the paper's pseudocode misses and
// this implementation handles explicitly.
func TestSourceCoversAllKeywords(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	kws := terms(t, g, "t1") // v3 carries t1
	for name, run := range map[string]func(Query, Options) (Result, error){
		"OSScaling": s.OSScaling, "BucketBound": s.BucketBound, "Exact": s.Exact,
	} {
		res, err := run(Query{Source: 3, Target: 7, Keywords: kws, Budget: 10}, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		best := res.Best()
		wantNodes(t, best, 3, 4, 7)
		if best.Objective != 2 || best.Budget != 5 {
			t.Errorf("%s: route = %v, want OS 2 BS 5 (τ(3,7))", name, best)
		}
	}
}

// TestRoundTripQuery exercises source == target, the "to and from my hotel"
// query of the paper's introduction.
func TestRoundTripQuery(t *testing.T) {
	b := graph.NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe")
	park := b.AddNode("park")
	for _, e := range []struct {
		from, to graph.NodeID
		o, c     float64
	}{
		{hotel, cafe, 1, 1}, {cafe, park, 1, 1}, {park, hotel, 1, 1}, {cafe, hotel, 5, 1},
	} {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	s := searcherFor(t, g, true)
	kws := terms(t, g, "cafe", "park")
	for name, run := range map[string]func(Query, Options) (Result, error){
		"OSScaling": s.OSScaling, "BucketBound": s.BucketBound, "Exact": s.Exact,
	} {
		res, err := run(Query{Source: hotel, Target: hotel, Keywords: kws, Budget: 3}, DefaultOptions())
		if err != nil {
			t.Fatalf("%s round trip: %v", name, err)
		}
		best := res.Best()
		wantNodes(t, best, hotel, cafe, park, hotel)
		if best.Objective != 3 || best.Budget != 3 {
			t.Errorf("%s round trip = %v, want OS 3 BS 3", name, best)
		}
	}
}
