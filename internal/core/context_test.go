package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kor/internal/graph"
)

// countdownCtx is a context whose Err() starts reporting context.Canceled
// after a fixed number of polls. It makes "cancelled mid-search" a
// deterministic event instead of a timing race: the first poll happens in
// newPlan, later polls happen inside the search loops, so a countdown above
// 1 always fires strictly mid-search.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining--; c.remaining < 0 {
		return context.Canceled
	}
	return nil
}

// ctxTestGraph is a randomized strongly connected graph big enough that the
// label searches run thousands of loop iterations for a wide query.
func ctxTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	b := graph.NewBuilder()
	const n = 120
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("kw%d", i%12))
	}
	for i := 0; i < n; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 0.1+rng.Float64(), 0.1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		_ = b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64(), 0.1+rng.Float64())
	}
	return b.MustBuild()
}

func ctxTestQuery(t testing.TB, g *graph.Graph) Query {
	t.Helper()
	return Query{
		Source:   0,
		Target:   60,
		Keywords: terms(t, g, "kw1", "kw3", "kw5", "kw7", "kw9", "kw11"),
		Budget:   50,
	}
}

// ctxTestOptions slows convergence (fine scaling, no optimization
// strategies, top-k) so the label loops reliably run for thousands of
// iterations — room for the countdown context to fire mid-loop.
func ctxTestOptions() Options {
	opts := DefaultOptions()
	opts.Epsilon = 0.05
	opts.K = 4
	opts.DisableStrategy1 = true
	opts.DisableStrategy2 = true
	return opts
}

// TestSearchCancelledBeforeStart: an already-cancelled context fails every
// algorithm in newPlan, before any search work, with a Canceled error.
func TestSearchCancelledBeforeStart(t *testing.T) {
	g := ctxTestGraph(t)
	s := searcherFor(t, g, false)
	q := ctxTestQuery(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	runs := map[string]func() (Result, error){
		"OSScaling":   func() (Result, error) { return s.OSScalingCtx(ctx, q, DefaultOptions()) },
		"BucketBound": func() (Result, error) { return s.BucketBoundCtx(ctx, q, DefaultOptions()) },
		"Greedy":      func() (Result, error) { return s.GreedyCtx(ctx, q, DefaultOptions()) },
		"Exact":       func() (Result, error) { return s.ExactCtx(ctx, q, DefaultOptions()) },
		"BruteForce":  func() (Result, error) { return s.BruteForceCtx(ctx, q, 1000) },
	}
	for name, run := range runs {
		if _, err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestSearchCancelledMidway: a context that starts failing after the search
// has begun makes the label loops return context.Canceled from within.
func TestSearchCancelledMidway(t *testing.T) {
	g := ctxTestGraph(t)
	s := searcherFor(t, g, false)
	q := ctxTestQuery(t, g)

	// Sanity: uncancelled, the searches succeed and iterate far more often
	// than the countdown allows.
	res, err := s.OSScaling(q, ctxTestOptions())
	if err != nil {
		t.Fatalf("baseline OSScaling: %v", err)
	}
	if res.Metrics.LabelsDequeued < 8*ctxCheckEvery {
		t.Fatalf("baseline dequeued only %d labels; fixture too small for a mid-search poll", res.Metrics.LabelsDequeued)
	}

	runs := map[string]func(ctx context.Context) (Result, error){
		"OSScaling":   func(ctx context.Context) (Result, error) { return s.OSScalingCtx(ctx, q, ctxTestOptions()) },
		"BucketBound": func(ctx context.Context) (Result, error) { return s.BucketBoundCtx(ctx, q, ctxTestOptions()) },
		"Greedy":      func(ctx context.Context) (Result, error) { return s.GreedyCtx(ctx, q, ctxTestOptions()) },
		"Exact":       func(ctx context.Context) (Result, error) { return s.ExactCtx(ctx, q, ctxTestOptions()) },
	}
	for name, run := range runs {
		// The countdown survives the newPlan poll plus one in-loop poll, so
		// cancellation is observed strictly mid-search.
		ctx := &countdownCtx{Context: context.Background(), remaining: 2}
		if _, err := run(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s cancelled mid-search: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestDeadlineExceededSurfaces: an expired deadline is reported as
// context.DeadlineExceeded, distinguishable from plain cancellation.
func TestDeadlineExceededSurfaces(t *testing.T) {
	g := ctxTestGraph(t)
	s := searcherFor(t, g, false)
	q := ctxTestQuery(t, g)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	if _, err := s.OSScalingCtx(ctx, q, DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
