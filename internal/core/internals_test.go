package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kor/internal/bitset"
	"kor/internal/graph"
	"kor/internal/pqueue"
)

// --- label order and domination laws -----------------------------------

// arbitraryLabel builds a label from fuzzing inputs.
func arbitraryLabel(node uint8, covered uint16, scaled int16, bs uint16) *label {
	return &label{
		node:    graph.NodeID(node % 16),
		covered: bitset.Mask(covered & 0xF),
		scaled:  int64(scaled),
		bs:      float64(bs),
	}
}

// Property: domination is reflexive and transitive (a preorder), and the
// label order is a strict weak ordering consistent with domination on equal
// coverage counts.
func TestDominationLaws(t *testing.T) {
	reflexive := func(n uint8, c uint16, s int16, b uint16) bool {
		l := arbitraryLabel(n, c, s, b)
		return l.dominates(l)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	transitive := func(n1, n2, n3 uint8, c1, c2, c3 uint16, s1, s2, s3 int16, b1, b2, b3 uint16) bool {
		a := arbitraryLabel(n1, c1, s1, b1)
		b := arbitraryLabel(n2, c2, s2, b2)
		c := arbitraryLabel(n3, c3, s3, b3)
		if a.dominates(b) && b.dominates(c) {
			return a.dominates(c)
		}
		return true
	}
	if err := quick.Check(transitive, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// Property: the label order (Definition 8) is irreflexive and asymmetric.
func TestLabelOrderLaws(t *testing.T) {
	f := func(n1, n2 uint8, c1, c2 uint16, s1, s2 int16, b1, b2 uint16, q1, q2 uint8) bool {
		a := arbitraryLabel(n1, c1, s1, b1)
		b := arbitraryLabel(n2, c2, s2, b2)
		a.seq, b.seq = uint64(q1), uint64(q2)
		if a.less(a) || b.less(b) {
			return false
		}
		if a.less(b) && b.less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a heap of labels pops in non-decreasing label order.
func TestLabelHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := pqueue.New(func(a, b *label) bool { return a.less(b) })
	for i := 0; i < 500; i++ {
		l := arbitraryLabel(uint8(rng.Intn(16)), uint16(rng.Intn(16)), int16(rng.Intn(100)), uint16(rng.Intn(50)))
		l.seq = uint64(i)
		h.Push(l)
	}
	prev := h.Pop()
	for !h.Empty() {
		cur := h.Pop()
		if cur.less(prev) {
			t.Fatalf("heap order violated: %+v before %+v", prev, cur)
		}
		prev = cur
	}
}

// scratchForTest builds a standalone planScratch over n nodes for tests
// that exercise the label store without a full plan.
func scratchForTest(n int) *planScratch {
	return &planScratch{
		nodeMask: make([]bitset.Mask, n),
		perNode:  make([][]*label, n),
		union:    make([]bitset.Mask, n),
		tail:     make([]tailEntry, n),
		tailGen:  make([]uint32, n),
		gen:      1,
	}
}

// Property: after arbitrary insertions with k=1, no two live labels at a
// node dominate each other.
func TestLabelStoreAntichainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		st := newLabelStore(scratchForTest(1), 1, &Metrics{}, nil)
		for i := 0; i < 80; i++ {
			l := arbitraryLabel(0, uint16(rng.Intn(8)), int16(rng.Intn(20)), uint16(rng.Intn(10)))
			l.node = 0
			l.seq = uint64(i)
			st.tryInsert(l)
		}
		live := st.sc.perNode[0]
		for i, a := range live {
			if a.deleted {
				t.Fatal("deleted label left in store")
			}
			for j, b := range live {
				if i == j {
					continue
				}
				if a.dominates(b) && b.dominates(a) {
					t.Fatalf("duplicate labels in store: %+v and %+v", a, b)
				}
				if a.dominates(b) {
					t.Fatalf("live label %+v dominates live label %+v", a, b)
				}
			}
		}
	}
}

// --- candidateSet -------------------------------------------------------

func TestCandidateSetOrderingAndDedup(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	p, err := s.newPlan(nil, Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 10}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs := newCandidateSet(2)
	if !math.IsInf(cs.bound(), 1) {
		t.Fatal("empty set bound must be +Inf")
	}

	// A label at v3 covering both keywords (path 0→2→3).
	l3 := p.startLabel()
	l3 = p.newLabel(l3, graph.Edge{To: 2, Objective: 1, Budget: 3})
	l3 = p.newLabel(l3, graph.Edge{To: 3, Objective: 3, Budget: 2})
	tos, tbs, _ := s.oracle.MinObjective(3, 7)
	changed, err := cs.offer(p, l3, tos, tbs)
	if err != nil || !changed {
		t.Fatalf("offer = %v, %v", changed, err)
	}
	// Same label again: dedup.
	changed, err = cs.offer(p, l3, tos, tbs)
	if err != nil || changed {
		t.Fatalf("duplicate offer = %v, %v", changed, err)
	}
	if cs.full() {
		t.Fatal("k=2 set full after one route")
	}
	if got := cs.bound(); !math.IsInf(got, 1) {
		t.Fatalf("bound with 1 of 2 slots = %v", got)
	}

	// A second, worse route through v5.
	l5 := p.startLabel()
	l5 = p.newLabel(l5, graph.Edge{To: 3, Objective: 2, Budget: 2})
	l5 = p.newLabel(l5, graph.Edge{To: 5, Objective: 3, Budget: 2})
	tos5, tbs5, _ := s.oracle.MinObjective(5, 7)
	if _, err := cs.offer(p, l5, tos5, tbs5); err != nil {
		t.Fatal(err)
	}
	routes := cs.take()
	if len(routes) != 2 {
		t.Fatalf("take returned %d routes", len(routes))
	}
	if routes[0].Objective > routes[1].Objective {
		t.Fatal("routes not sorted by objective")
	}
	if !cs.full() {
		t.Fatal("set should be full")
	}
	if cs.bound() != routes[1].Objective {
		t.Fatalf("bound = %v, want %v", cs.bound(), routes[1].Objective)
	}
}

// --- bucketRing ---------------------------------------------------------

func TestBucketRingIndexing(t *testing.T) {
	br := newBucketRing(4, 1.2)
	cases := map[float64]int{
		4:    0, // exactly the base
		4.79: 0, // just under 4·1.2
		4.81: 1,
		9:    4, // log(9/4)/log(1.2) ≈ 4.45
		3.9:  0, // float jitter below base clamps to 0
	}
	for low, want := range cases {
		if got := br.index(low); got != want {
			t.Errorf("index(%v) = %d, want %d", low, got, want)
		}
	}
}

func TestBucketRingFrontMonotone(t *testing.T) {
	br := newBucketRing(1, 2)
	mk := func(seq uint64, low float64) *label {
		return &label{seq: seq, os: low} // os unused by ring; low passed explicitly
	}
	br.push(mk(1, 1), 1)     // bucket 0
	br.push(mk(2, 8), 8)     // bucket 3
	br.push(mk(3, 2.5), 2.5) // bucket 1

	l, front := br.pop()
	if front != 0 || l.seq != 1 {
		t.Fatalf("first pop = seq %d from bucket %d", l.seq, front)
	}
	l, front = br.pop()
	if front != 1 || l.seq != 3 {
		t.Fatalf("second pop = seq %d from bucket %d", l.seq, front)
	}
	// Pushing below the front clamps to the front.
	br.push(mk(4, 1), 1)
	l, front = br.pop()
	if front != 1 || l.seq != 4 {
		t.Fatalf("clamped pop = seq %d from bucket %d", l.seq, front)
	}
	l, front = br.pop()
	if front != 3 || l.seq != 2 {
		t.Fatalf("final pop = seq %d from bucket %d", l.seq, front)
	}
	if l, _ := br.pop(); l != nil {
		t.Fatal("pop on empty ring returned a label")
	}
}

func TestBucketRingSkipsDeleted(t *testing.T) {
	br := newBucketRing(1, 2)
	dead := &label{seq: 1}
	dead.deleted = true
	br.push(dead, 1)
	alive := &label{seq: 2}
	br.push(alive, 1)
	l, _ := br.pop()
	if l == nil || l.seq != 2 {
		t.Fatalf("pop returned %+v, want the live label", l)
	}
}

// --- options ------------------------------------------------------------

func TestOptionsNormalize(t *testing.T) {
	o := DefaultOptions()
	n, err := o.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Width != 1 || n.K != 1 || n.MaxExpansions <= 0 {
		t.Fatalf("normalized defaults wrong: %+v", n)
	}

	o.Width = 0
	o.K = -3
	o.InfrequentFraction = -1
	o.Strategy1Candidates = 0
	o.MaxExpansions = -5
	n, err = o.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Width != 1 || n.K != 1 || n.InfrequentFraction != 0.01 ||
		n.Strategy1Candidates != 64 || n.MaxExpansions <= 0 {
		t.Fatalf("normalize did not repair: %+v", n)
	}
}

func TestTraceKindStrings(t *testing.T) {
	for k := TraceCreated; k <= TraceUpperBound; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := TraceKind(99).String(); !strings.HasPrefix(s, "kind(") {
		t.Errorf("unknown kind renders as %q", s)
	}
}

// --- TraceLog -----------------------------------------------------------

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(16)
	for i := 0; i < 40; i++ {
		l.Trace(TraceEvent{Kind: TraceCreated, Label: LabelView{Node: graph.NodeID(i)}})
	}
	if l.Total() != 40 {
		t.Fatalf("Total = %d", l.Total())
	}
	ev := l.Events()
	if len(ev) != 16 {
		t.Fatalf("retained %d events, want 16", len(ev))
	}
	for i, e := range ev {
		if want := graph.NodeID(24 + i); e.Label.Node != want {
			t.Fatalf("event %d node = %d, want %d (oldest-first order)", i, e.Label.Node, want)
		}
	}
}

func TestTraceLogDump(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	log := NewTraceLog(256)
	opts := DefaultOptions()
	opts.Tracer = log
	if _, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 10}, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "created") || !strings.Contains(out, "dequeued") {
		t.Errorf("dump lacks lifecycle events:\n%s", out)
	}
	if log.Total() == 0 {
		t.Error("no events observed")
	}
}

// TestTracerObservesAllLifecycles drives one search and checks every
// counter in Metrics matches the corresponding event count.
func TestTracerObservesAllLifecycles(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	rec := &traceRecorder{}
	opts := DefaultOptions()
	opts.Tracer = rec
	res, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 10}, opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[TraceKind]int)
	for _, e := range rec.events {
		counts[e.Kind]++
	}
	m := res.Metrics
	if counts[TraceCreated] != m.LabelsCreated {
		t.Errorf("created events %d vs metric %d", counts[TraceCreated], m.LabelsCreated)
	}
	if counts[TraceDequeued] != m.LabelsDequeued {
		t.Errorf("dequeued events %d vs metric %d", counts[TraceDequeued], m.LabelsDequeued)
	}
	if counts[TracePrunedBudget] != m.PrunedBudget {
		t.Errorf("budget-pruned events %d vs metric %d", counts[TracePrunedBudget], m.PrunedBudget)
	}
	if counts[TraceDominated] != m.Dominated {
		t.Errorf("dominated events %d vs metric %d", counts[TraceDominated], m.Dominated)
	}
}
