package core

import (
	"sync"

	"kor/internal/bitset"
	"kor/internal/graph"
)

// Per-query scratch recycling. A label search allocates two kinds of memory
// that used to be garbage after every query: thousands of small label
// structs, and O(|V|) per-node tables (coverage masks, label lists, tail
// memos). Both now come from a planScratch checked out of the owning
// Searcher's pool at plan creation and returned by plan.close, so steady
// serving performs near-zero per-query heap allocation for them. Nothing a
// search returns (Route, Metrics, LabelView) aliases scratch memory, which
// is what makes the recycling safe.

// labelSlabSize is the number of labels per arena slab. Slabs are pooled
// globally: a query needing n labels touches ⌈n/labelSlabSize⌉ pool objects
// instead of n allocations.
const labelSlabSize = 1024

var slabPool = sync.Pool{New: func() any {
	s := make([]label, labelSlabSize)
	return &s
}}

// labelArena hands out label structs from pooled slabs. It belongs to one
// plan and is not safe for concurrent use — exactly the plan's own
// concurrency contract.
type labelArena struct {
	slabs []*[]label
	used  int // entries used in the last slab
}

// alloc returns a zeroed label from the arena.
func (a *labelArena) alloc() *label {
	if len(a.slabs) == 0 || a.used == labelSlabSize {
		a.slabs = append(a.slabs, slabPool.Get().(*[]label))
		a.used = 0
	}
	l := &(*a.slabs[len(a.slabs)-1])[a.used]
	a.used++
	*l = label{}
	return l
}

// release returns every slab to the pool. The caller must not touch labels
// handed out by this arena afterwards.
func (a *labelArena) release() {
	for _, s := range a.slabs {
		slabPool.Put(s)
	}
	a.slabs = a.slabs[:0]
	a.used = 0
}

// tailEntry memoizes the τ/σ completions of one node into the query target:
// the values behind Algorithm 1's per-label "best completion" checks. The
// oracle answers these from synchronized caches; the memo turns the second
// and every further ask per node into two array reads.
type tailEntry struct {
	tos, tbs float64 // τ(v, target) objective and budget
	sbs      float64 // σ(v, target) budget
	flags    uint8
}

const (
	tailSigmaDone = 1 << iota // σ lookup performed
	tailSigmaOK               // σ exists
	tailTauDone               // τ lookup performed
	tailTauOK                 // τ exists
)

// planScratch is the recyclable per-query state: the label arena plus every
// O(|V|) table a plan needs. Tables are sized to the owning Searcher's graph
// once and reused; the tail memo is invalidated wholesale by bumping gen,
// the other tables are reset surgically by plan.close (only the entries the
// query actually touched).
type planScratch struct {
	arena labelArena

	nodeMask []bitset.Mask  // query-keyword coverage per node
	perNode  [][]*label     // labelStore lists
	union    []bitset.Mask  // per-node union of live label coverage (domination prefilter)
	touched  []graph.NodeID // nodes whose perNode/union entries were written

	tail    []tailEntry
	tailGen []uint32
	gen     uint32
}

// getScratch checks a scratch out of the pool, (re)sizing its tables to the
// graph.
func (s *Searcher) getScratch() *planScratch {
	sc, _ := s.scratch.Get().(*planScratch)
	if sc == nil {
		sc = &planScratch{}
	}
	n := s.g.NumNodes()
	if len(sc.nodeMask) != n {
		sc.nodeMask = make([]bitset.Mask, n)
		sc.perNode = make([][]*label, n)
		sc.union = make([]bitset.Mask, n)
		sc.tail = make([]tailEntry, n)
		sc.tailGen = make([]uint32, n)
		sc.touched = sc.touched[:0]
	}
	sc.gen++
	if sc.gen == 0 { // generation wrap: invalidate the whole memo once
		clear(sc.tailGen)
		sc.gen = 1
	}
	return sc
}

// putScratch resets the touched table entries and returns sc to the pool.
// postings are the query terms' posting lists — exactly the nodeMask entries
// the plan wrote.
func (s *Searcher) putScratch(sc *planScratch, postings [][]graph.NodeID) {
	for _, post := range postings {
		for _, v := range post {
			sc.nodeMask[v] = 0
		}
	}
	for _, v := range sc.touched {
		sc.perNode[v] = sc.perNode[v][:0]
		sc.union[v] = 0
	}
	sc.touched = sc.touched[:0]
	sc.arena.release()
	s.scratch.Put(sc)
}
