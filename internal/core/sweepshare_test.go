package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kor/internal/apsp"
	"kor/internal/graph"
)

// Tests for the cross-query shared sweep cache (sweepshare.go). The headline
// property is bit-identical answers: a Searcher with sharing enabled —
// hammered concurrently, so sweeps really are reused across plans — must
// return exactly what a sharing-disabled Searcher returns query by query, on
// both oracle flavours. Run with -race.

// renderSweepOutcome flattens a search outcome to full precision: every
// route's node sequence, objective and budget, plus the error. Two outcomes
// render equal iff they are bit-identical answers.
func renderSweepOutcome(res Result, err error) string {
	out := ""
	if err != nil {
		out = "error: " + err.Error() + " "
	}
	for _, r := range res.Routes {
		out += fmt.Sprintf("[%s %x %x] ", routeSignature(r), r.Objective, r.Budget)
	}
	return out
}

// sweepShareQueries builds queries engineered to overlap: all of them drawn
// from two endpoint pairs with per-pair budgets, random keyword sets. This is
// the duplicate-heavy shape the shared cache exists for — σ sweeps into the
// shared targets and tail sweeps out of them are reusable across the mix.
func sweepShareQueries(rng *rand.Rand, g *graph.Graph, n int) []Query {
	base := []Query{randomQuery(rng, g, 1), randomQuery(rng, g, 1)}
	queries := make([]Query, n)
	for i := range queries {
		q := randomQuery(rng, g, 1+rng.Intn(2))
		b := base[i%len(base)]
		q.Source, q.Target, q.Budget = b.Source, b.Target, b.Budget
		queries[i] = q
	}
	return queries
}

func TestSweepShareEquivalence(t *testing.T) {
	type runner struct {
		name string
		run  func(*Searcher, Query) (Result, error)
	}
	topkOpts := DefaultOptions()
	topkOpts.K = 3
	looseOpts := DefaultOptions()
	looseOpts.Epsilon = 0.5
	runners := []runner{
		{"bucketbound", func(s *Searcher, q Query) (Result, error) { return s.BucketBound(q, DefaultOptions()) }},
		{"osscaling", func(s *Searcher, q Query) (Result, error) { return s.OSScaling(q, DefaultOptions()) }},
		{"osscaling-loose", func(s *Searcher, q Query) (Result, error) { return s.OSScaling(q, looseOpts) }},
		{"topk", func(s *Searcher, q Query) (Result, error) { return s.OSScaling(q, topkOpts) }},
		{"exact", func(s *Searcher, q Query) (Result, error) { return s.Exact(q, DefaultOptions()) }},
		{"greedy", func(s *Searcher, q Query) (Result, error) { return s.Greedy(q, DefaultOptions()) }},
	}

	for _, dense := range []bool{false, true} {
		name := "lazy"
		if dense {
			name = "indexed"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8812))
			totalShared := 0
			for trial := 0; trial < 5; trial++ {
				g := randomKeywordGraph(rng, 10+rng.Intn(5), 4)
				shared := searcherFor(t, g, dense)
				private := searcherFor(t, g, dense)
				private.SetSweepSharing(false)
				queries := sweepShareQueries(rng, g, 8)

				// Reference answers: sharing off, strictly sequential.
				want := make([][]string, len(queries))
				for qi, q := range queries {
					want[qi] = make([]string, len(runners))
					for ri, r := range runners {
						res, err := r.run(private, q)
						if res.Metrics.SharedSweeps != 0 {
							t.Fatalf("sharing-disabled searcher reported %d shared sweeps", res.Metrics.SharedSweeps)
						}
						want[qi][ri] = renderSweepOutcome(res, err)
					}
				}

				// Sharing on, every (query, algorithm) pair concurrent: plans
				// contend on the one sweepShare and must still answer
				// bit-identically.
				var wg sync.WaitGroup
				var mu sync.Mutex
				for qi, q := range queries {
					for ri, r := range runners {
						wg.Add(1)
						go func(qi, ri int, q Query, r runner) {
							defer wg.Done()
							res, err := r.run(shared, q)
							got := renderSweepOutcome(res, err)
							mu.Lock()
							totalShared += res.Metrics.SharedSweeps
							if got != want[qi][ri] {
								t.Errorf("trial %d %s query %d diverged under sweep sharing:\n got %s\nwant %s",
									trial, r.name, qi, got, want[qi][ri])
							}
							mu.Unlock()
						}(qi, ri, q, r)
					}
				}
				wg.Wait()
			}
			// A dense oracle answers σ/τ from its slices and never sweeps at
			// the plan layer, so only the lazy flavour can prove the cache
			// engaged.
			if !dense && totalShared == 0 {
				t.Fatal("no sweep was ever shared — the cache never engaged on a duplicate-heavy mix")
			}
		})
	}
}

// TestSweepShareToggle: SetSweepSharing flips live. Disabling empties the
// cache and stops sharing; re-enabling starts fresh and answers stay
// identical throughout.
func TestSweepShareToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(4411))
	g := randomKeywordGraph(rng, 12, 4)
	s := searcherFor(t, g, false)
	queries := sweepShareQueries(rng, g, 6)

	run := func() []string {
		out := make([]string, len(queries))
		for i, q := range queries {
			res, err := s.BucketBound(q, DefaultOptions())
			out[i] = renderSweepOutcome(res, err)
		}
		return out
	}
	first := run() // sharing on (default)
	s.SetSweepSharing(false)
	second := run()
	s.SetSweepSharing(true)
	third := run()
	for i := range queries {
		if first[i] != second[i] || second[i] != third[i] {
			t.Fatalf("query %d answers differ across toggles:\n on   %s\n off  %s\n back %s",
				i, first[i], second[i], third[i])
		}
	}
	// Disabled really means private sweeps.
	s.SetSweepSharing(false)
	for _, q := range queries {
		res, err := s.BucketBound(q, DefaultOptions())
		if err == nil && res.Metrics.SharedSweeps != 0 {
			t.Fatalf("disabled searcher shared %d sweeps", res.Metrics.SharedSweeps)
		}
	}
}

// TestSweepShareBoundUpgrade pins the bound semantics of the raw cache: a
// wider cached sweep serves narrower requests verbatim; a request wider than
// the cached bound recomputes and replaces the entry.
func TestSweepShareBoundUpgrade(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomKeywordGraph(rng, 12, 4)
	c := &sweepShare{cap: 8}

	sw1, shared := c.get(g, 0, apsp.ByBudget, 5)
	if shared {
		t.Fatal("cold get claimed to share")
	}
	sw2, shared := c.get(g, 0, apsp.ByBudget, 3)
	if !shared || sw2 != sw1 {
		t.Fatal("narrower request did not reuse the wider cached sweep")
	}
	sw3, shared := c.get(g, 0, apsp.ByBudget, 9)
	if shared || sw3 == sw1 {
		t.Fatal("request wider than the cached bound must recompute")
	}
	if sw4, shared := c.get(g, 0, apsp.ByBudget, 9); !shared || sw4 != sw3 {
		t.Fatal("replacement entry not served")
	}
	// A different metric is a different key.
	if _, shared := c.get(g, 0, apsp.ByObjective, 1); shared {
		t.Fatal("metrics must not share sweeps")
	}
	// As is a different root.
	if _, shared := c.get(g, 1, apsp.ByBudget, 1); shared {
		t.Fatal("roots must not share sweeps")
	}
}

// TestSweepShareEviction: the FIFO evicts by the exact (key, entry) ref it
// enqueued — evicting a ref whose key was since replaced must not drop the
// replacement.
func TestSweepShareEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomKeywordGraph(rng, 12, 4)
	c := &sweepShare{cap: 2}

	c.get(g, 0, apsp.ByBudget, 2)          // ref A: key 0, soon replaced
	sw, _ := c.get(g, 0, apsp.ByBudget, 6) // ref B: key 0, replacement
	c.get(g, 1, apsp.ByBudget, 2)          // ref C — evicts ref A (stale: key 0 now holds B)
	if got, shared := c.get(g, 0, apsp.ByBudget, 6); !shared || got != sw {
		t.Fatal("evicting a stale ref dropped the live replacement entry")
	}
	// One more insert evicts ref B, the live key-0 entry.
	c.get(g, 2, apsp.ByBudget, 2)
	if _, shared := c.get(g, 0, apsp.ByBudget, 6); shared {
		t.Fatal("key 0 should have been evicted")
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, cap is 2 (plus bounded slack)", n)
	}
}
