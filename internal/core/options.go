package core

import "fmt"

// Options tunes the search algorithms. The zero value is not meaningful;
// start from DefaultOptions. Field defaults mirror the paper's experimental
// defaults (§4.1): ε=0.5, β=1.2, α=0.5, width 1, k=1, both optimization
// strategies on.
type Options struct {
	// Epsilon is OSScaling's scaling parameter ε ∈ (0,1). Larger values run
	// faster; the returned objective is within 1/(1−ε) of optimal
	// (Theorem 2).
	Epsilon float64
	// Beta is BucketBound's bucket base β > 1. Larger values run faster;
	// the bound becomes β/(1−ε) (Theorem 3).
	Beta float64
	// Alpha balances objective (α→1) against budget (α→0) in the greedy
	// node score (Equation 1).
	Alpha float64
	// Width is the greedy beam width: 1 for Greedy-1, 2 for Greedy-2.
	Width int
	// K asks for the top-k routes (the KkR query). 1 means the plain KOR.
	K int
	// DisableStrategy1 turns off optimization strategy 1 (σ-shortcut jumps
	// to uncovered-keyword nodes, used to find a feasible route early).
	DisableStrategy1 bool
	// DisableStrategy2 turns off optimization strategy 2 (pruning through
	// the nodes of infrequent query keywords).
	DisableStrategy2 bool
	// InfrequentFraction is strategy 2's document-frequency threshold: the
	// strategy applies when the rarest query keyword appears on at most
	// this fraction of nodes. The paper suggests 1%.
	InfrequentFraction float64
	// Strategy1Candidates caps how many uncovered-keyword nodes strategy 1
	// considers per query (rarest keywords first); each candidate costs one
	// reverse sweep on a lazy oracle.
	Strategy1Candidates int
	// BudgetPriority switches Greedy to the budget-first variant of §3.4:
	// the returned route respects Δ but may leave keywords uncovered.
	BudgetPriority bool
	// MaxExpansions caps label creations (0 = default cap). The label
	// algorithms return ErrSearchLimit when the cap fires, which on sane
	// inputs means a pathological query rather than a correct long search.
	MaxExpansions int
	// Tracer, when set, observes every label event. Used by tests to replay
	// the paper's Example 2 and by tools for diagnostics.
	Tracer Tracer
}

// DefaultOptions returns the paper's experimental defaults.
func DefaultOptions() Options {
	return Options{
		Epsilon:             0.5,
		Beta:                1.2,
		Alpha:               0.5,
		Width:               1,
		K:                   1,
		InfrequentFraction:  0.01,
		Strategy1Candidates: 64,
		MaxExpansions:       20_000_000,
	}
}

// Validate rejects tuning values outside the algorithms' domains: ε∈(0,1),
// β>1, α∈[0,1], K≥1, Width≥1. Every violation is reported as an ErrBadQuery
// wrap, so callers test with errors.Is(err, ErrBadQuery). Validate is
// stricter than the legacy entry points, which silently lifted K and Width
// to 1: Engine.Run calls it so a misconfigured request fails fast instead of
// degrading to defaults.
func (o Options) Validate() error {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("%w: epsilon %v must lie in (0,1)", ErrBadQuery, o.Epsilon)
	}
	if o.Beta <= 1 {
		return fmt.Errorf("%w: beta %v must exceed 1", ErrBadQuery, o.Beta)
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("%w: alpha %v must lie in [0,1]", ErrBadQuery, o.Alpha)
	}
	if o.K < 1 {
		return fmt.Errorf("%w: k %d must be at least 1", ErrBadQuery, o.K)
	}
	if o.Width < 1 {
		return fmt.Errorf("%w: width %d must be at least 1", ErrBadQuery, o.Width)
	}
	return nil
}

// normalize validates and fills derived defaults. Unlike Validate it is
// lenient on K and Width (lifted to 1), preserving the historical behaviour
// of the deprecated per-algorithm entry points.
func (o Options) normalize() (Options, error) {
	if o.Width < 1 {
		o.Width = 1
	}
	if o.K < 1 {
		o.K = 1
	}
	if err := o.Validate(); err != nil {
		return o, err
	}
	if o.InfrequentFraction <= 0 {
		o.InfrequentFraction = 0.01
	}
	if o.Strategy1Candidates <= 0 {
		o.Strategy1Candidates = 64
	}
	if o.MaxExpansions <= 0 {
		o.MaxExpansions = 20_000_000
	}
	return o, nil
}

// Metrics counts the work a search performed; the experiment harness uses
// them to explain the runtime gaps the paper reports (e.g. BucketBound
// creating far fewer labels than OSScaling).
type Metrics struct {
	LabelsCreated   int // labels built by label treatment (Definition 7)
	LabelsEnqueued  int
	LabelsDequeued  int
	PrunedBudget    int // dropped: cannot meet Δ via the best σ tail
	PrunedBound     int // dropped: cannot beat the upper bound U via the best τ tail
	PrunedStrategy2 int // dropped by the infrequent-keyword conditions
	Dominated       int // dropped by (k-)domination (Definition 6)
	DominatedSwept  int // existing labels deleted by a new dominator
	ShortcutLabels  int // strategy-1 σ-jump labels
	Feasible        int // feasible candidates encountered
	PeakQueue       int // largest queue population
	PlanSweeps      int // query-owned sweeps: Δ-bounded candidate lookups and path reconstruction
	SharedSweeps    int // sweeps reused from the Searcher's cross-query shared cache instead of computed
}

// add accumulates counters from another run (used when averaging workloads).
func (m *Metrics) add(o Metrics) {
	m.LabelsCreated += o.LabelsCreated
	m.LabelsEnqueued += o.LabelsEnqueued
	m.LabelsDequeued += o.LabelsDequeued
	m.PrunedBudget += o.PrunedBudget
	m.PrunedBound += o.PrunedBound
	m.PrunedStrategy2 += o.PrunedStrategy2
	m.Dominated += o.Dominated
	m.DominatedSwept += o.DominatedSwept
	m.ShortcutLabels += o.ShortcutLabels
	m.Feasible += o.Feasible
	m.PlanSweeps += o.PlanSweeps
	m.SharedSweeps += o.SharedSweeps
	if o.PeakQueue > m.PeakQueue {
		m.PeakQueue = o.PeakQueue
	}
}

// Add is the exported accumulator used by the experiment harness.
func (m *Metrics) Add(o Metrics) { m.add(o) }

// TraceKind classifies label events for the Tracer.
type TraceKind int

// Trace event kinds.
const (
	TraceCreated TraceKind = iota
	TraceEnqueued
	TraceDequeued
	TracePrunedBudget
	TracePrunedBound
	TracePrunedStrategy2
	TraceDominated
	TraceFeasible
	TraceUpperBound
)

// String names the kind for logs.
func (k TraceKind) String() string {
	switch k {
	case TraceCreated:
		return "created"
	case TraceEnqueued:
		return "enqueued"
	case TraceDequeued:
		return "dequeued"
	case TracePrunedBudget:
		return "pruned-budget"
	case TracePrunedBound:
		return "pruned-bound"
	case TracePrunedStrategy2:
		return "pruned-strategy2"
	case TraceDominated:
		return "dominated"
	case TraceFeasible:
		return "feasible"
	case TraceUpperBound:
		return "upper-bound"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TraceEvent is one observation of the label lifecycle. Scores are the
// label's cumulative scores at event time; U is the current upper bound
// (meaningful for TraceUpperBound).
type TraceEvent struct {
	Kind     TraceKind
	Label    LabelView
	U        float64
	Shortcut bool
}

// Tracer observes label events. Implementations must be cheap; the hot loop
// calls them for every label.
type Tracer interface {
	Trace(TraceEvent)
}
