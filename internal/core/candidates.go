package core

import (
	"math"
	"strconv"
	"strings"
)

// candidateSet collects feasible routes during a label search and maintains
// the upper bound U. For the plain KOR query it holds the single best route;
// for the KkR query (§3.5) it holds the k best distinct routes and U is the
// k-th best objective score.
//
// Routes are materialized at offer time and de-duplicated by node sequence:
// the same physical route can be reached through different labels (e.g. a
// label at vj completed by τ(vj,t) and a label one hop further along that
// same τ path).
type candidateSet struct {
	k      int
	routes []Route
	seen   map[string]bool
}

func newCandidateSet(k int) *candidateSet {
	return &candidateSet{k: k, seen: make(map[string]bool)}
}

// bound returns the current upper bound U: the k-th best objective score,
// or +Inf while fewer than k routes are held.
func (cs *candidateSet) bound() float64 {
	if len(cs.routes) < cs.k {
		return math.Inf(1)
	}
	return cs.routes[cs.k-1].Objective
}

// full reports whether k routes have been collected.
func (cs *candidateSet) full() bool { return len(cs.routes) >= cs.k }

// offer materializes the route completed by lbl and the τ tail and inserts
// it if it improves the set. It reports whether the set changed.
func (cs *candidateSet) offer(p *plan, lbl *label, tailOS, tailBS float64) (bool, error) {
	os := lbl.os + tailOS
	if cs.full() && os >= cs.bound() {
		return false, nil
	}
	route, err := p.reconstruct(lbl, tailOS, tailBS)
	if err != nil {
		return false, err
	}
	sig := routeSignature(route)
	if cs.seen[sig] {
		return false, nil
	}
	cs.seen[sig] = true
	// Insert sorted by objective, then budget for determinism.
	i := 0
	for i < len(cs.routes) {
		if route.Objective < cs.routes[i].Objective ||
			(route.Objective == cs.routes[i].Objective && route.Budget < cs.routes[i].Budget) {
			break
		}
		i++
	}
	cs.routes = append(cs.routes, Route{})
	copy(cs.routes[i+1:], cs.routes[i:])
	cs.routes[i] = route
	if len(cs.routes) > cs.k {
		dropped := cs.routes[len(cs.routes)-1]
		delete(cs.seen, routeSignature(dropped))
		cs.routes = cs.routes[:len(cs.routes)-1]
	}
	return true, nil
}

// take returns the collected routes, best first.
func (cs *candidateSet) take() []Route { return cs.routes }

func routeSignature(r Route) string {
	var b strings.Builder
	for i, v := range r.Nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}
