package core

import (
	"math"
	"slices"

	"kor/internal/graph"
)

// Route signatures. Routes are deduplicated by node sequence: the same
// physical route can be reached through different labels (e.g. a label at vj
// completed by τ(vj,t) and a label one hop further along that same τ path).
// The signature is an FNV-1a style uint64 folded over the node sequence —
// built incrementally on labels as they extend (label.hash) and finished
// during reconstruction, replacing the string signatures that used to be
// rebuilt from scratch on every admit. Every search path — OSScaling,
// BucketBound, TopK, Exact, and the deprecated per-algorithm wrappers, which
// all dispatch through the same plan machinery — shares this one signature.
const (
	routeHashSeed  uint64 = 14695981039346656037
	routeHashPrime uint64 = 1099511628211
)

// extendRouteHash folds one node into a route signature.
func extendRouteHash(h uint64, v graph.NodeID) uint64 {
	return (h ^ uint64(uint32(v))) * routeHashPrime
}

// candidateSet collects feasible routes during a label search and maintains
// the upper bound U. For the plain KOR query it holds the single best route;
// for the KkR query (§3.5) it holds the k best distinct routes and U is the
// k-th best objective score.
type candidateSet struct {
	k      int
	routes []Route
	sigs   []uint64 // route signatures, index-aligned with routes
}

func newCandidateSet(k int) *candidateSet {
	return &candidateSet{k: k}
}

// bound returns the current upper bound U: the k-th best objective score,
// or +Inf while fewer than k routes are held.
func (cs *candidateSet) bound() float64 {
	if len(cs.routes) < cs.k {
		return math.Inf(1)
	}
	return cs.routes[cs.k-1].Objective
}

// full reports whether k routes have been collected.
func (cs *candidateSet) full() bool { return len(cs.routes) >= cs.k }

// offer materializes the route completed by lbl and the τ tail and inserts
// it if it improves the set. It reports whether the set changed.
func (cs *candidateSet) offer(p *plan, lbl *label, tailOS, tailBS float64) (bool, error) {
	os := lbl.os + tailOS
	if cs.full() && os >= cs.bound() {
		return false, nil
	}
	route, sig, err := p.reconstruct(lbl, tailOS, tailBS)
	if err != nil {
		return false, err
	}
	// The set holds at most k routes, so a linear scan beats any map; the
	// signature filters, the node comparison makes the dedup exact.
	for i, s := range cs.sigs {
		if s == sig && slices.Equal(cs.routes[i].Nodes, route.Nodes) {
			return false, nil
		}
	}
	// Insert sorted by objective, then budget for determinism.
	i := 0
	for i < len(cs.routes) {
		if route.Objective < cs.routes[i].Objective ||
			(route.Objective == cs.routes[i].Objective && route.Budget < cs.routes[i].Budget) {
			break
		}
		i++
	}
	cs.routes = append(cs.routes, Route{})
	copy(cs.routes[i+1:], cs.routes[i:])
	cs.routes[i] = route
	cs.sigs = append(cs.sigs, 0)
	copy(cs.sigs[i+1:], cs.sigs[i:])
	cs.sigs[i] = sig
	if len(cs.routes) > cs.k {
		cs.routes = cs.routes[:len(cs.routes)-1]
		cs.sigs = cs.sigs[:len(cs.sigs)-1]
	}
	return true, nil
}

// take returns the collected routes, best first.
func (cs *candidateSet) take() []Route { return cs.routes }
