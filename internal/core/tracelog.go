package core

import (
	"fmt"
	"io"
	"strings"
)

// TraceLog is a bounded in-memory Tracer: it keeps the most recent events
// in a ring and renders them for diagnostics. The Example-2 walkthrough in
// the tests and the korquery -metrics output both use it.
//
// The zero value is not usable; construct with NewTraceLog.
type TraceLog struct {
	events []TraceEvent
	next   int
	filled bool
	total  int
}

// NewTraceLog returns a tracer retaining the last n events (minimum 16).
func NewTraceLog(n int) *TraceLog {
	if n < 16 {
		n = 16
	}
	return &TraceLog{events: make([]TraceEvent, n)}
}

// Trace records one event.
func (l *TraceLog) Trace(e TraceEvent) {
	l.events[l.next] = e
	l.next++
	l.total++
	if l.next == len(l.events) {
		l.next = 0
		l.filled = true
	}
}

// Total returns how many events were observed, including evicted ones.
func (l *TraceLog) Total() int { return l.total }

// Events returns the retained events in observation order.
func (l *TraceLog) Events() []TraceEvent {
	if !l.filled {
		return append([]TraceEvent(nil), l.events[:l.next]...)
	}
	out := make([]TraceEvent, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Dump writes the retained events, one per line, in observation order.
func (l *TraceLog) Dump(w io.Writer) error {
	for _, e := range l.Events() {
		line := formatEvent(e)
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func formatEvent(e TraceEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s node=%-5d λ=%-10s ŌS=%-8d OS=%-9.4g BS=%-9.4g",
		e.Kind, e.Label.Node, e.Label.Covered.String(), e.Label.ScaledOS, e.Label.OS, e.Label.BS)
	if e.Shortcut {
		b.WriteString(" [σ-jump]")
	}
	if e.Kind == TraceUpperBound || e.Kind == TraceFeasible {
		fmt.Fprintf(&b, " U=%.4g", e.U)
	}
	return b.String()
}
