package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// randomKeywordGraph builds a strongly-connected random graph whose nodes
// carry keywords from a small vocabulary, without parallel edges.
func randomKeywordGraph(rng *rand.Rand, n, vocab int) *graph.Graph {
	b := graph.NewBuilder()
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	for i := 0; i < n; i++ {
		var kws []string
		for k := rng.Intn(3); k > 0; k-- {
			kws = append(kws, words[rng.Intn(vocab)])
		}
		b.AddNode(kws...)
	}
	seen := make(map[[2]graph.NodeID]bool)
	add := func(from, to graph.NodeID) {
		if from == to || seen[[2]graph.NodeID{from, to}] {
			return
		}
		seen[[2]graph.NodeID{from, to}] = true
		_ = b.AddEdge(from, to, 0.1+rng.Float64(), 0.1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		add(graph.NodeID(i), graph.NodeID((i+1)%n)) // cycle: strong connectivity
	}
	for k := 0; k < 3*n; k++ {
		add(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

func randomQuery(rng *rand.Rand, g *graph.Graph, m int) Query {
	n := g.NumNodes()
	var kws []graph.Term
	seen := make(map[graph.Term]bool)
	for len(kws) < m {
		t := graph.Term(rng.Intn(g.Vocab().Len()))
		if !seen[t] {
			seen[t] = true
			kws = append(kws, t)
		}
	}
	return Query{
		Source:   graph.NodeID(rng.Intn(n)),
		Target:   graph.NodeID(rng.Intn(n)),
		Keywords: kws,
		Budget:   1 + rng.Float64()*float64(n)/3,
	}
}

// verifyRoute checks the structural invariants of a returned route against
// its query: endpoints, edge existence, score sums, coverage and budget.
func verifyRoute(t *testing.T, g *graph.Graph, q Query, r Route, ctx string) {
	t.Helper()
	if len(r.Nodes) == 0 {
		t.Fatalf("%s: empty route", ctx)
	}
	if r.Nodes[0] != q.Source || r.Nodes[len(r.Nodes)-1] != q.Target {
		t.Fatalf("%s: endpoints %v, want %d→%d", ctx, r.Nodes, q.Source, q.Target)
	}
	var os, bs float64
	for i := 1; i < len(r.Nodes); i++ {
		found := false
		for _, e := range g.Out(r.Nodes[i-1]) {
			if e.To == r.Nodes[i] {
				os += e.Objective
				bs += e.Budget
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: hop %d→%d is not an edge", ctx, r.Nodes[i-1], r.Nodes[i])
		}
	}
	if math.Abs(os-r.Objective) > 1e-6*(1+os) {
		t.Fatalf("%s: reported OS %v, recomputed %v", ctx, r.Objective, os)
	}
	if math.Abs(bs-r.Budget) > 1e-6*(1+bs) {
		t.Fatalf("%s: reported BS %v, recomputed %v", ctx, r.Budget, bs)
	}
	if r.Feasible {
		if bs > q.Budget+1e-9 {
			t.Fatalf("%s: feasible route busts budget: %v > %v", ctx, bs, q.Budget)
		}
		covered := make(map[graph.Term]bool)
		for _, v := range r.Nodes {
			for _, term := range g.Terms(v) {
				covered[term] = true
			}
		}
		for _, term := range q.Keywords {
			if !covered[term] {
				t.Fatalf("%s: feasible route misses keyword %v", ctx, term)
			}
		}
	}
}

// TestApproximationBounds is the central property test: across random
// graphs and queries, OSScaling stays within 1/(1−ε) of the exact optimum
// (Theorem 2) and BucketBound within β/(1−ε) (Theorem 3); every returned
// route is genuinely feasible; and the three algorithms agree on
// feasibility existence.
func TestApproximationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries, feasibleSeen := 0, 0
	for trial := 0; trial < 30; trial++ {
		g := randomKeywordGraph(rng, 10+rng.Intn(20), 6)
		s := searcherFor(t, g, trial%2 == 0)
		for qi := 0; qi < 6; qi++ {
			q := randomQuery(rng, g, 1+rng.Intn(3))
			opts := DefaultOptions()
			opts.Epsilon = [4]float64{0.1, 0.3, 0.5, 0.9}[rng.Intn(4)]
			opts.Beta = 1.1 + rng.Float64()
			queries++
			ctx := fmt.Sprintf("trial %d query %d (ε=%v β=%v Δ=%v m=%d)", trial, qi, opts.Epsilon, opts.Beta, q.Budget, len(q.Keywords))

			exact, exactErr := s.Exact(q, DefaultOptions())
			oss, ossErr := s.OSScaling(q, opts)
			bb, bbErr := s.BucketBound(q, opts)

			if (exactErr == nil) != (ossErr == nil) || (exactErr == nil) != (bbErr == nil) {
				t.Fatalf("%s: feasibility disagreement exact=%v oss=%v bb=%v", ctx, exactErr, ossErr, bbErr)
			}
			if exactErr != nil {
				if !errors.Is(exactErr, ErrNoRoute) {
					t.Fatalf("%s: exact error %v", ctx, exactErr)
				}
				continue
			}
			feasibleSeen++
			opt := exact.Best()
			verifyRoute(t, g, q, opt, ctx+" exact")
			verifyRoute(t, g, q, oss.Best(), ctx+" osscaling")
			verifyRoute(t, g, q, bb.Best(), ctx+" bucketbound")
			if !oss.Best().Feasible || !bb.Best().Feasible {
				t.Fatalf("%s: approximation returned infeasible route", ctx)
			}

			if opt.Objective > oss.Best().Objective+1e-9 {
				t.Fatalf("%s: exact %v worse than OSScaling %v", ctx, opt.Objective, oss.Best().Objective)
			}
			bound := opt.Objective/(1-opts.Epsilon) + 1e-9
			if oss.Best().Objective > bound {
				t.Fatalf("%s: OSScaling %v breaks 1/(1-ε) bound %v (opt %v)",
					ctx, oss.Best().Objective, bound, opt.Objective)
			}
			bbBound := opts.Beta*opt.Objective/(1-opts.Epsilon) + 1e-9
			if bb.Best().Objective > bbBound {
				t.Fatalf("%s: BucketBound %v breaks β/(1-ε) bound %v (opt %v)",
					ctx, bb.Best().Objective, bbBound, opt.Objective)
			}
			// Lemma 5's practical consequence: BucketBound lands in the same
			// bucket as the OSScaling answer, so the ratio between them is
			// below β.
			if bb.Best().Objective > opts.Beta*oss.Best().Objective+1e-9 {
				t.Fatalf("%s: BucketBound %v vs OSScaling %v exceeds β=%v",
					ctx, bb.Best().Objective, oss.Best().Objective, opts.Beta)
			}
		}
	}
	if feasibleSeen < queries/4 {
		t.Fatalf("only %d/%d queries feasible; workload generator too hostile for meaningful coverage", feasibleSeen, queries)
	}
}

// TestStrategiesPreserveBounds re-runs bound checks with each optimization
// strategy toggled, and confirms the strategies only change how fast the
// answer is found, never its feasibility or bound.
func TestStrategiesPreserveBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		g := randomKeywordGraph(rng, 15+rng.Intn(15), 5)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		exact, exactErr := s.Exact(q, DefaultOptions())

		for variant := 0; variant < 4; variant++ {
			opts := DefaultOptions()
			opts.DisableStrategy1 = variant&1 != 0
			opts.DisableStrategy2 = variant&2 != 0
			res, err := s.OSScaling(q, opts)
			if (err == nil) != (exactErr == nil) {
				t.Fatalf("trial %d variant %d: feasibility flip: %v vs %v", trial, variant, err, exactErr)
			}
			if err != nil {
				continue
			}
			bound := exact.Best().Objective/(1-opts.Epsilon) + 1e-9
			if res.Best().Objective > bound {
				t.Fatalf("trial %d variant %d: %v breaks bound %v", trial, variant, res.Best().Objective, bound)
			}
			verifyRoute(t, g, q, res.Best(), fmt.Sprintf("trial %d variant %d", trial, variant))
		}
	}
}

// TestEpsilonAccuracyMonotonicity mirrors Figure 7: on average, smaller ε
// must not produce worse routes than much larger ε.
func TestEpsilonAccuracyMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var small, large float64
	count := 0
	for trial := 0; trial < 20; trial++ {
		g := randomKeywordGraph(rng, 20, 5)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		optsSmall := DefaultOptions()
		optsSmall.Epsilon = 0.1
		optsLarge := DefaultOptions()
		optsLarge.Epsilon = 0.9
		a, errA := s.OSScaling(q, optsSmall)
		bRes, errB := s.OSScaling(q, optsLarge)
		if errA != nil || errB != nil {
			continue
		}
		small += a.Best().Objective
		large += bRes.Best().Objective
		count++
	}
	if count == 0 {
		t.Skip("no feasible random queries")
	}
	if small > large*1.0001 {
		t.Errorf("ε=0.1 average objective %v worse than ε=0.9 average %v", small/float64(count), large/float64(count))
	}
}

// TestBruteForceMatchesExact validates the two exact baselines against each
// other on graphs small enough for full enumeration.
func TestBruteForceMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomKeywordGraph(rng, 8, 4)
		s := searcherFor(t, g, false)
		q := randomQuery(rng, g, 2)
		q.Budget = 1 + rng.Float64()*2 // keep the walk space enumerable
		exact, exactErr := s.Exact(q, DefaultOptions())
		brute, bruteErr := s.BruteForce(q, 3_000_000)
		if errors.Is(bruteErr, ErrSearchLimit) {
			continue
		}
		if (exactErr == nil) != (bruteErr == nil) {
			t.Fatalf("trial %d: exact=%v brute=%v", trial, exactErr, bruteErr)
		}
		if exactErr != nil {
			continue
		}
		if math.Abs(exact.Best().Objective-brute.Best().Objective) > 1e-9 {
			t.Fatalf("trial %d: exact OS %v, brute OS %v", trial,
				exact.Best().Objective, brute.Best().Objective)
		}
	}
}

// TestMetricsAccounting sanity-checks the work counters.
func TestMetricsAccounting(t *testing.T) {
	g := paperGraph(t)
	s := searcherFor(t, g, true)
	res, err := s.OSScaling(Query{Source: 0, Target: 7, Keywords: terms(t, g, "t1", "t2"), Budget: 10}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.LabelsCreated <= 0 || m.LabelsDequeued <= 0 {
		t.Errorf("suspicious metrics: %+v", m)
	}
	if m.LabelsEnqueued > m.LabelsCreated+1 { // +1 for the start label
		t.Errorf("enqueued %d exceeds created %d", m.LabelsEnqueued, m.LabelsCreated)
	}
	if m.Feasible == 0 {
		t.Error("no feasible candidates counted despite a found route")
	}
	var agg Metrics
	agg.Add(m)
	agg.Add(m)
	if agg.LabelsCreated != 2*m.LabelsCreated {
		t.Error("Metrics.Add does not accumulate")
	}
}
