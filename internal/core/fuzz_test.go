package core

import (
	"errors"
	"testing"
)

// FuzzParseAlgorithm hammers the wire-spelling resolver: any input must
// either parse to a registered canonical algorithm or fail with the
// ErrBadQuery/ErrUnknownAlgorithm taxonomy — never panic, never return an
// unregistered value, never be unstable under re-parsing.
func FuzzParseAlgorithm(f *testing.F) {
	for _, a := range Algorithms() {
		f.Add(string(a))
	}
	f.Add("")
	f.Add("BUCKETBOUND")
	f.Add("  osscaling  ")
	f.Add("greedy-2")
	f.Add("bogus")
	f.Add("bruteforce\x00")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAlgorithm(s)
		if err != nil {
			if !errors.Is(err, ErrBadQuery) || !errors.Is(err, ErrUnknownAlgorithm) {
				t.Fatalf("ParseAlgorithm(%q) error %v escapes the error taxonomy", s, err)
			}
			if a != "" {
				t.Fatalf("ParseAlgorithm(%q) returned %q alongside an error", s, a)
			}
			return
		}
		if !a.Valid() {
			t.Fatalf("ParseAlgorithm(%q) accepted unregistered algorithm %q", s, a)
		}
		if a.Canonical() != a {
			t.Fatalf("ParseAlgorithm(%q) returned non-canonical %q", s, a)
		}
		again, err := ParseAlgorithm(string(a))
		if err != nil || again != a {
			t.Fatalf("re-parsing canonical %q gave (%q, %v)", a, again, err)
		}
	})
}
