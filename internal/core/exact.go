package core

import (
	"context"
	"math"

	"kor/internal/bitset"
	"kor/internal/graph"
)

// Exact answers the KOR query exactly by running the Algorithm 1 machinery
// without objective scaling: labels carry the raw objective score (encoded
// order-preservingly into the scaled slot), so domination never merges
// routes the way ε-scaling does and the returned route is optimal. The
// search remains exponential in the worst case — it exists to validate the
// approximation bounds of the fast algorithms, matching the role of the
// paper's brute-force comparison in §4.2.2.
func (s *Searcher) Exact(q Query, opts Options) (Result, error) {
	return s.ExactCtx(context.Background(), q, opts)
}

// ExactCtx is Exact with cancellation — essential here, since the exact
// search is the one most likely to need a deadline on adversarial inputs.
func (s *Searcher) ExactCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	p, err := s.newPlan(ctx, q, opts)
	if err != nil {
		return Result{}, err
	}
	p.exact = true
	return p.runOSScaling()
}

// exactScaled encodes a positive float objective into an int64 whose
// ordering matches the float ordering, letting the exact search reuse the
// scaled-score label machinery without loss.
func exactScaled(os float64) int64 {
	return int64(math.Float64bits(os))
}

// BruteForce is the §3.2 exhaustive baseline: enumerate every candidate
// path from the source with only the budget limit for pruning, checking
// coverage when the target is reached. Complexity O(d^⌊Δ/b_min⌋); the cap
// bounds the damage, returning ErrSearchLimit when exceeded — the analogue
// of the paper's runs that "cannot finish after 1 day".
func (s *Searcher) BruteForce(q Query, maxExpansions int) (Result, error) {
	return s.BruteForceCtx(context.Background(), q, maxExpansions)
}

// BruteForceCtx is BruteForce with cancellation, polled once per dequeued
// partial path.
func (s *Searcher) BruteForceCtx(ctx context.Context, q Query, maxExpansions int) (Result, error) {
	opts := DefaultOptions()
	p, err := s.newPlan(ctx, q, opts)
	if err != nil {
		return Result{}, err
	}
	defer p.close()
	if maxExpansions <= 0 {
		maxExpansions = 1_000_000
	}

	best := Route{Objective: math.Inf(1)}
	found := false

	// Plain FIFO over partial paths, parent-linked for reconstruction.
	type pathNode struct {
		node   graph.NodeID
		os, bs float64
		mask   bitset.Mask
		parent *pathNode
	}
	start := &pathNode{node: q.Source, mask: p.nodeMask[q.Source]}
	queue := []*pathNode{start}
	expansions := 0

	for len(queue) > 0 {
		if err := p.checkCtx(); err != nil {
			return Result{Metrics: p.metrics}, err
		}
		cur := queue[0]
		queue = queue[1:]

		if cur.node == q.Target && cur.mask.Covers(p.qMask) && cur.bs <= q.Budget {
			if cur.os < best.Objective {
				var nodes []graph.NodeID
				for x := cur; x != nil; x = x.parent {
					nodes = append(nodes, x.node)
				}
				for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
					nodes[i], nodes[j] = nodes[j], nodes[i]
				}
				best = Route{
					Nodes:     nodes,
					Objective: cur.os,
					Budget:    cur.bs,
					CoversAll: true,
					Feasible:  true,
				}
				found = true
			}
		}

		for _, e := range s.g.Out(cur.node) {
			bs := cur.bs + e.Budget
			if bs > q.Budget {
				continue
			}
			expansions++
			if expansions > maxExpansions {
				if found {
					return Result{Routes: []Route{best}, Metrics: p.metrics}, ErrSearchLimit
				}
				return Result{Metrics: p.metrics}, ErrSearchLimit
			}
			queue = append(queue, &pathNode{
				node:   e.To,
				os:     cur.os + e.Objective,
				bs:     bs,
				mask:   cur.mask.Union(p.nodeMask[e.To]),
				parent: cur,
			})
		}
	}
	p.metrics.LabelsCreated = expansions
	if !found {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}
	return Result{Routes: []Route{best}, Metrics: p.metrics}, nil
}
