package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"kor/internal/apsp"
	"kor/internal/bitset"
	"kor/internal/graph"
)

// plan is the per-query pre-computation shared by the label algorithms:
// keyword bit assignment, per-node coverage masks, the scaling factor θ,
// strategy-1 candidate nodes and strategy-2 infrequent-keyword nodes, plus
// oracle access tuned to the query. Its scratch tables and label arena are
// pooled; every search entry point must close the plan when it returns.
type plan struct {
	s    *Searcher
	q    Query
	opts Options

	// ctx carries the query's cancellation/deadline; the label loops poll it
	// through checkCtx. Never nil (newPlan substitutes context.Background).
	ctx     context.Context
	ctxTick uint

	// sc is the pooled per-query scratch; nil once the plan is closed.
	sc *planScratch
	// postings holds each term's posting list, parallel to terms. Fetched
	// once: plan setup, the strategy candidates and scratch reset all walk
	// them, and a disk-backed index must not be re-read for each.
	postings [][]graph.NodeID

	terms    []graph.Term // deduplicated query keywords, bit i ↔ terms[i]
	qMask    bitset.Mask
	nodeMask []bitset.Mask // query-keyword coverage per node (aliases sc.nodeMask)

	theta float64 // θ = ε·o_min·b_min/Δ (Definition in §3.2)

	// Strategy 1: nodes carrying uncovered query keywords, each with the
	// mask of query keywords it carries and its σ-tail budget into the
	// target, ordered by rarest keyword first. Nodes that cannot reach the
	// target within Δ are dropped at plan time.
	jumpNodes []jumpNode

	// Strategy 2: the nodes carrying the least frequent query keyword (with
	// their precomputed completions into the target) and that keyword's bit,
	// when its document frequency is under threshold.
	infreqBit int
	infreq    []viaNode

	// Candidate-subgraph sweeps: on sweep-backed (lazy) oracles the plan
	// owns bounded reverse sweeps into its candidate nodes — the strategy-1
	// jump nodes and strategy-2 keyword nodes — instead of forcing
	// full-graph sweeps through the shared caches. σ sweeps are truncated at
	// the query budget Δ, strategy-2 τ sweeps at the upper bound U; both
	// truncations only drop nodes whose answers could never matter to this
	// query.
	useBounded bool
	boundedSig map[graph.NodeID]*apsp.Sweep
	tauVia     map[graph.NodeID]*apsp.Sweep

	// indexedPaths: the oracle materializes paths as table walks (dense
	// matrix, partitioned), so reconstruction delegates to it directly.
	indexedPaths bool
	// sliced: the oracle serves per-target score vectors (apsp.SliceIndexed).
	// The plan resolves the two target slices eagerly — every admission check
	// reads them — and the per-candidate slices lazily on first touch, cached
	// on the candidate structs, so the hot lookups are plain array reads
	// instead of border×border table assemblies.
	sliced      bool
	sliceOracle apsp.SliceIndexed
	tailTau     *apsp.TargetSlice // τ(·, target) scores
	tailSig     *apsp.TargetSlice // σ(·, target) scores
	// Path-reconstruction sweeps for oracles that answer each path with a
	// fresh full sweep: one reverse τ sweep into the target covers every
	// tail path, one reverse σ sweep per shortcut node covers every σ
	// segment.
	tailPathSweep *apsp.Sweep
	pathSweeps    map[graph.NodeID]*apsp.Sweep

	// exact switches the label machinery to exact mode: the "scaled" slot
	// carries an order-preserving encoding of the raw objective instead of
	// ⌊OS/θ⌋, turning OSScaling into the exact branch-and-bound of Exact.
	exact bool

	metrics Metrics
	seq     uint64
}

type jumpNode struct {
	node   graph.NodeID
	mask   bitset.Mask
	tailBS float64 // BS(σ(node, target)), precomputed at plan time

	// sig caches the σ slice into this candidate on sliced oracles,
	// resolved on first touch by any label.
	sig *apsp.TargetSlice
}

// viaNode is one strategy-2 keyword node with its completions into the
// target: OS(τ(node, target)) and BS(σ(node, target)).
type viaNode struct {
	node graph.NodeID
	osLT float64
	bsLT float64

	// sig/tau cache the slices into this candidate on sliced oracles,
	// resolved on first touch by any label.
	sig *apsp.TargetSlice
	tau *apsp.TargetSlice
}

// newPlan validates the query and assembles the plan. A nil ctx means no
// cancellation; an already-cancelled ctx fails here, before any search work.
// The returned plan holds pooled scratch: callers must arrange for close to
// run when the search finishes.
func (s *Searcher) newPlan(ctx context.Context, q Query, opts Options) (*plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kor: search aborted: %w", err)
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if err := s.validate(q); err != nil {
		return nil, err
	}
	if s.g.NumEdges() == 0 {
		return nil, fmt.Errorf("%w: graph has no edges", ErrBadQuery)
	}

	p := &plan{s: s, q: q, opts: opts, ctx: ctx, infreqBit: -1}

	// Deduplicate keywords, keeping first-seen order for bit stability.
	seen := make(map[graph.Term]bool, len(q.Keywords))
	for _, t := range q.Keywords {
		if !seen[t] {
			seen[t] = true
			p.terms = append(p.terms, t)
		}
	}
	if len(p.terms) > bitset.MaxWidth {
		return nil, fmt.Errorf("%w: %d distinct keywords exceed %d", ErrBadQuery, len(p.terms), bitset.MaxWidth)
	}
	p.qMask = bitset.Full(len(p.terms))

	// All validation is done: check out pooled scratch. Everything past this
	// point must keep the plan closeable.
	p.sc = s.getScratch()
	p.nodeMask = p.sc.nodeMask

	// Coverage masks via the inverted file.
	p.postings = make([][]graph.NodeID, len(p.terms))
	type termFreq struct {
		bit int
		df  int
	}
	freqs := make([]termFreq, len(p.terms))
	for bit, t := range p.terms {
		post := s.index.Postings(t)
		p.postings[bit] = post
		freqs[bit] = termFreq{bit: bit, df: len(post)}
		for _, v := range post {
			p.nodeMask[v] = p.nodeMask[v].With(bit)
		}
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].df != freqs[j].df {
			return freqs[i].df < freqs[j].df
		}
		return freqs[i].bit < freqs[j].bit
	})

	// θ: scale objective values to integers (§3.2). Edge attributes are
	// validated positive, so θ > 0 whenever the graph has edges.
	p.theta = opts.Epsilon * s.g.MinObjective() * s.g.MinBudget() / q.Budget

	p.useBounded = apsp.IsOnDemand(s.oracle)
	if p.useBounded {
		p.boundedSig = make(map[graph.NodeID]*apsp.Sweep)
		p.tauVia = make(map[graph.NodeID]*apsp.Sweep)
	}
	p.indexedPaths = apsp.HasIndexedPaths(s.oracle)
	if so, ok := s.oracle.(apsp.SliceIndexed); ok {
		p.sliced = true
		p.sliceOracle = so
		p.tailTau = so.TargetSlice(q.Target, apsp.ByObjective)
		p.tailSig = so.TargetSlice(q.Target, apsp.ByBudget)
	}

	// The dominant shared-oracle lookups all point into the target; pin its
	// sweeps first so the strategy precomputations below are cheap.
	apsp.PrefetchTarget(s.oracle, q.Target)

	// Strategy 1 candidates: uncovered-keyword nodes, rarest keyword first,
	// capped. The σ tail into the target is resolved once per candidate here
	// — it used to be an oracle round-trip per candidate per label — and
	// candidates that cannot reach the target within Δ are dropped outright.
	if !opts.DisableStrategy1 {
		taken := make(map[graph.NodeID]bool)
		for _, tf := range freqs {
			for _, v := range p.postings[tf.bit] {
				if taken[v] || len(p.jumpNodes) >= opts.Strategy1Candidates {
					continue
				}
				taken[v] = true
				tailBS, ok := p.sigBudgetTo(v)
				if !ok || tailBS > q.Budget {
					continue
				}
				p.jumpNodes = append(p.jumpNodes, jumpNode{node: v, mask: p.nodeMask[v], tailBS: tailBS})
			}
			if len(p.jumpNodes) >= opts.Strategy1Candidates {
				break
			}
		}
	}

	// Strategy 2: pick the least frequent keyword if it is rare enough, and
	// precompute each of its nodes' completions into the target. Nodes that
	// cannot reach the target, or only past Δ, can never keep a label alive
	// and are dropped here.
	if !opts.DisableStrategy2 && len(freqs) > 0 {
		rarest := freqs[0]
		threshold := int(opts.InfrequentFraction * float64(s.g.NumNodes()))
		if threshold < 1 {
			threshold = 1
		}
		if rarest.df > 0 && rarest.df <= threshold {
			p.infreqBit = rarest.bit
			for _, v := range p.postings[rarest.bit] {
				osLT, _, okT := p.tauTo(v)
				bsLT, okS := p.sigBudgetTo(v)
				if !okT || !okS || bsLT > q.Budget {
					continue
				}
				p.infreq = append(p.infreq, viaNode{node: v, osLT: osLT, bsLT: bsLT})
			}
			if len(p.infreq) == 0 {
				p.infreqBit = -1 // every keyword node is unreachable within Δ
			}
		}
	}

	// On dense oracles the candidate lookups are O(1) table reads; hint the
	// historical prefetches for lazy-style oracles that did not opt into
	// plan-owned bounded sweeps.
	if !p.useBounded {
		for _, jn := range p.jumpNodes {
			apsp.PrefetchTarget(s.oracle, jn.node)
		}
		for _, via := range p.infreq {
			apsp.PrefetchTarget(s.oracle, via.node)
		}
	}
	return p, nil
}

// close returns the plan's pooled scratch. Idempotent; the plan is unusable
// afterwards. Every search entry point defers it.
func (p *plan) close() {
	if p.sc == nil {
		return
	}
	sc := p.sc
	p.sc = nil
	p.nodeMask = nil
	p.s.putScratch(sc, p.postings)
}

// tailEntryFor returns v's tail memo slot, resetting it lazily when it still
// carries another query's generation.
func (p *plan) tailEntryFor(v graph.NodeID) *tailEntry {
	sc := p.sc
	if sc.tailGen[v] != sc.gen {
		sc.tailGen[v] = sc.gen
		sc.tail[v] = tailEntry{}
	}
	return &sc.tail[v]
}

// sigBudgetTo returns the budget score of σ(v, target), memoized per plan.
// On sliced oracles it is an array read off the plan's target slice.
func (p *plan) sigBudgetTo(v graph.NodeID) (float64, bool) {
	if p.sliced {
		bs := p.tailSig.Prim[v]
		if math.IsInf(bs, 1) {
			return 0, false
		}
		return bs, true
	}
	e := p.tailEntryFor(v)
	if e.flags&tailSigmaDone == 0 {
		_, bs, ok := p.s.oracle.MinBudget(v, p.q.Target)
		e.flags |= tailSigmaDone
		if ok {
			e.flags |= tailSigmaOK
			e.sbs = bs
		}
	}
	if e.flags&tailSigmaOK == 0 {
		return 0, false
	}
	return e.sbs, true
}

// tauTo returns the scores of τ(v, target), memoized per plan. On sliced
// oracles it is two array reads off the plan's target slice.
func (p *plan) tauTo(v graph.NodeID) (float64, float64, bool) {
	if p.sliced {
		os := p.tailTau.Prim[v]
		if math.IsInf(os, 1) {
			return 0, 0, false
		}
		return os, p.tailTau.Sec[v], true
	}
	e := p.tailEntryFor(v)
	if e.flags&tailTauDone == 0 {
		tos, tbs, ok := p.s.oracle.MinObjective(v, p.q.Target)
		e.flags |= tailTauDone
		if ok {
			e.flags |= tailTauOK
			e.tos, e.tbs = tos, tbs
		}
	}
	if e.flags&tailTauOK == 0 {
		return 0, 0, false
	}
	return e.tos, e.tbs, true
}

// boundedSigSweep returns (resolving on first use) the plan's Δ-bounded
// reverse σ sweep into candidate node to — the single source for both score
// lookups and path reconstruction, so the two can never disagree on bound
// or metric. Sweeps come from the Searcher's shared cache: the plan-local map
// only pins the resolved pointer so later lookups skip the cache lock.
func (p *plan) boundedSigSweep(to graph.NodeID) *apsp.Sweep {
	sw := p.boundedSig[to]
	if sw == nil {
		sw = p.sharedSweep(to, apsp.ByBudget, p.q.Budget)
		p.boundedSig[to] = sw
	}
	return sw
}

// sharedSweep resolves one reverse sweep through the Searcher's shared cache,
// attributing the work: a sweep this plan computed counts in PlanSweeps, one
// reused from (or awaited in) the cache counts in SharedSweeps.
func (p *plan) sharedSweep(root graph.NodeID, m apsp.Metric, bound float64) *apsp.Sweep {
	sw, shared := p.s.sweeps.get(p.s.g, root, m, bound)
	if shared {
		p.metrics.SharedSweeps++
	} else {
		p.metrics.PlanSweeps++
	}
	return sw
}

// sigInto returns the scores of σ(from, to) for a candidate node to. On a
// sliced oracle the answer comes from the candidate's σ slice (resolved on
// first touch into *slot, so later labels pay two array reads). On a
// sweep-backed oracle it is answered from a plan-owned reverse sweep
// truncated at Δ: ok=false then means "no path within the query budget",
// which every caller treats identically to unreachable.
func (p *plan) sigInto(from, to graph.NodeID, slot **apsp.TargetSlice) (os, bs float64, ok bool) {
	if p.sliced {
		ts := *slot
		if ts == nil {
			ts = p.sliceOracle.TargetSlice(to, apsp.ByBudget)
			*slot = ts
		}
		bs = ts.Prim[from]
		if math.IsInf(bs, 1) {
			return 0, 0, false
		}
		return ts.Sec[from], bs, true
	}
	if !p.useBounded {
		return p.s.oracle.MinBudget(from, to)
	}
	return p.boundedSigSweep(to).Scores(from)
}

// tailPath materializes τ(from, target). Indexed oracles walk their parent
// tables, sweep-backed oracles walk their cached reverse sweep into the
// target, and anything else gets one plan-owned reverse sweep that serves
// every reconstruction of this query.
func (p *plan) tailPath(from graph.NodeID) ([]graph.NodeID, bool) {
	if p.indexedPaths || p.useBounded {
		return p.s.oracle.MinObjectivePath(from, p.q.Target)
	}
	if p.tailPathSweep == nil {
		p.tailPathSweep = p.sharedSweep(p.q.Target, apsp.ByObjective, math.Inf(1))
	}
	return p.tailPathSweep.WalkFrom(from)
}

// shortcutPath materializes σ(from, to) for a strategy-1 jump node to,
// walking the oracle's tables (indexed), the plan's Δ-bounded candidate
// sweep (sweep-backed) or a plan-owned reverse sweep (everything else).
func (p *plan) shortcutPath(from, to graph.NodeID) ([]graph.NodeID, bool) {
	if p.indexedPaths {
		return p.s.oracle.MinBudgetPath(from, to)
	}
	if p.useBounded {
		return p.boundedSigSweep(to).WalkFrom(from)
	}
	if p.pathSweeps == nil {
		p.pathSweeps = make(map[graph.NodeID]*apsp.Sweep)
	}
	sw := p.pathSweeps[to]
	if sw == nil {
		sw = p.sharedSweep(to, apsp.ByBudget, math.Inf(1))
		p.pathSweeps[to] = sw
	}
	return sw.WalkFrom(from)
}

// tauObjInto returns the objective score of τ(from, via.node) for a
// strategy-2 keyword node, from the candidate's τ slice on sliced oracles.
// On a sweep-backed oracle the plan-owned sweep is truncated at
// U−OS(τ(via,t)) as of its first use: U only shrinks, so a node past the
// truncation can never satisfy the objective condition later either.
func (p *plan) tauObjInto(from graph.NodeID, via *viaNode, u float64) (float64, bool) {
	if p.sliced {
		ts := via.tau
		if ts == nil {
			ts = p.sliceOracle.TargetSlice(via.node, apsp.ByObjective)
			via.tau = ts
		}
		os := ts.Prim[from]
		if math.IsInf(os, 1) {
			return 0, false
		}
		return os, true
	}
	if !p.useBounded {
		os, _, ok := p.s.oracle.MinObjective(from, via.node)
		return os, ok
	}
	sw := p.tauVia[via.node]
	if sw == nil {
		sw = p.sharedSweep(via.node, apsp.ByObjective, u-via.osLT)
		p.tauVia[via.node] = sw
	}
	os, _, ok := sw.Scores(from)
	return os, ok
}

// ctxCheckEvery is how many checkCtx calls elapse between real ctx polls.
// Polling every iteration would put a synchronized Err() call in the hottest
// loop; every 64th keeps cancellation latency well under a millisecond on
// any realistic label rate.
const ctxCheckEvery = 64

// checkCtx polls the plan's context, returning its error (wrapped, so
// errors.Is(err, context.Canceled) holds) once the context is done. Call it
// from every search loop.
func (p *plan) checkCtx() error {
	p.ctxTick++
	if p.ctxTick%ctxCheckEvery != 0 {
		return nil
	}
	if err := p.ctx.Err(); err != nil {
		return fmt.Errorf("kor: search aborted: %w", err)
	}
	return nil
}

// scaledObjective is ô = ⌊o/θ⌋, saturating to keep int64 arithmetic safe
// when ε, o_min or b_min make θ extremely small.
func (p *plan) scaledObjective(o float64) int64 {
	r := o / p.theta
	if r >= math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(r)
}

// newLabel runs the label treatment step (Definition 7) along edge
// (cur.node → e.To).
func (p *plan) newLabel(cur *label, e graph.Edge) *label {
	p.seq++
	p.metrics.LabelsCreated++
	l := p.sc.arena.alloc()
	l.node = e.To
	l.covered = cur.covered.Union(p.nodeMask[e.To])
	l.os = cur.os + e.Objective
	l.bs = cur.bs + e.Budget
	l.parent = cur
	l.hash = extendRouteHash(cur.hash, e.To)
	l.approx = cur.approx
	l.seq = p.seq
	if p.exact {
		l.scaled = exactScaled(l.os)
	} else {
		l.scaled = cur.scaled + p.scaledObjective(e.Objective)
	}
	return l
}

// newShortcutLabel builds a strategy-1 jump label following σ(cur.node, to)
// with the given scores.
func (p *plan) newShortcutLabel(cur *label, to graph.NodeID, sigOS, sigBS float64) *label {
	p.seq++
	p.metrics.LabelsCreated++
	p.metrics.ShortcutLabels++
	l := p.sc.arena.alloc()
	l.node = to
	l.covered = cur.covered.Union(p.nodeMask[to])
	l.os = cur.os + sigOS
	l.bs = cur.bs + sigBS
	l.parent = cur
	l.shortcut = true
	// The chain's materialized nodes now include σ's interior; the route
	// signature is recomputed at reconstruction.
	l.approx = true
	l.seq = p.seq
	if p.exact {
		l.scaled = exactScaled(l.os)
	} else {
		// ⌊OS(σ)/θ⌋ under-approximates the hop-by-hop sum of floors; the
		// shortcut is a heuristic for finding a feasible route early and
		// all hard checks use the exact os/bs fields.
		l.scaled = cur.scaled + p.scaledObjective(sigOS)
	}
	return l
}

// startLabel is the source label L0s = (vs.ψ, 0, 0, 0).
func (p *plan) startLabel() *label {
	p.seq++
	l := p.sc.arena.alloc()
	l.node = p.q.Source
	l.covered = p.nodeMask[p.q.Source]
	l.hash = extendRouteHash(routeHashSeed, p.q.Source)
	l.seq = p.seq
	return l
}

// trace emits a tracer event if a tracer is configured.
func (p *plan) trace(kind TraceKind, l *label, u float64) {
	if p.opts.Tracer == nil {
		return
	}
	p.opts.Tracer.Trace(TraceEvent{Kind: kind, Label: l.view(), U: u, Shortcut: l.shortcut})
}

// strategy2Prune applies optimization strategy 2: a label not yet covering
// the infrequent keyword can be discarded when, through every node l that
// carries it, either the objective bound exceeds U or the budget bound
// exceeds Δ. The budget condition is checked first: it needs only the
// Δ-bounded σ sweeps, and while U is still +Inf the objective condition is
// vacuous, so no τ lookup happens at all before the first feasible route.
func (p *plan) strategy2Prune(l *label, u float64) bool {
	if p.infreqBit < 0 || l.covered.Has(p.infreqBit) {
		return false
	}
	uInf := math.IsInf(u, 1)
	for i := range p.infreq {
		via := &p.infreq[i]
		_, bsIL, ok := p.sigInto(l.node, via.node, &via.sig)
		if !ok || l.bs+bsIL+via.bsLT > p.q.Budget {
			continue // cannot route through this node within Δ
		}
		if uInf {
			return false // budget fits and the objective bound is vacuous
		}
		osIL, ok := p.tauObjInto(l.node, via, u)
		if !ok || l.os+osIL+via.osLT > u {
			continue
		}
		return false // this keyword node keeps the label alive
	}
	p.metrics.PrunedStrategy2++
	p.trace(TracePrunedStrategy2, l, u)
	return true
}
