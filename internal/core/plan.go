package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"kor/internal/apsp"
	"kor/internal/bitset"
	"kor/internal/graph"
)

// plan is the per-query pre-computation shared by the label algorithms:
// keyword bit assignment, per-node coverage masks, the scaling factor θ,
// strategy-1 candidate nodes and strategy-2 infrequent-keyword nodes, plus
// oracle prefetch hints.
type plan struct {
	s    *Searcher
	q    Query
	opts Options

	// ctx carries the query's cancellation/deadline; the label loops poll it
	// through checkCtx. Never nil (newPlan substitutes context.Background).
	ctx     context.Context
	ctxTick uint

	terms    []graph.Term // deduplicated query keywords, bit i ↔ terms[i]
	qMask    bitset.Mask
	nodeMask []bitset.Mask // query-keyword coverage per node

	theta float64 // θ = ε·o_min·b_min/Δ (Definition in §3.2)

	// Strategy 1: nodes carrying uncovered query keywords, each with the
	// mask of query keywords it carries, ordered by rarest keyword first.
	jumpNodes []jumpNode

	// Strategy 2: the nodes carrying the least frequent query keyword, and
	// that keyword's bit, when its document frequency is under threshold.
	infreqBit   int
	infreqNodes []graph.NodeID

	// exact switches the label machinery to exact mode: the "scaled" slot
	// carries an order-preserving encoding of the raw objective instead of
	// ⌊OS/θ⌋, turning OSScaling into the exact branch-and-bound of Exact.
	exact bool

	metrics Metrics
	seq     uint64
}

type jumpNode struct {
	node graph.NodeID
	mask bitset.Mask
}

// newPlan validates the query and assembles the plan. A nil ctx means no
// cancellation; an already-cancelled ctx fails here, before any search work.
func (s *Searcher) newPlan(ctx context.Context, q Query, opts Options) (*plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kor: search aborted: %w", err)
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if err := s.validate(q); err != nil {
		return nil, err
	}

	p := &plan{s: s, q: q, opts: opts, ctx: ctx, infreqBit: -1}

	// Deduplicate keywords, keeping first-seen order for bit stability.
	seen := make(map[graph.Term]bool, len(q.Keywords))
	for _, t := range q.Keywords {
		if !seen[t] {
			seen[t] = true
			p.terms = append(p.terms, t)
		}
	}
	if len(p.terms) > bitset.MaxWidth {
		return nil, fmt.Errorf("%w: %d distinct keywords exceed %d", ErrBadQuery, len(p.terms), bitset.MaxWidth)
	}
	p.qMask = bitset.Full(len(p.terms))

	// Coverage masks via the inverted file.
	p.nodeMask = make([]bitset.Mask, s.g.NumNodes())
	type termFreq struct {
		bit int
		df  int
	}
	freqs := make([]termFreq, len(p.terms))
	for bit, t := range p.terms {
		post := s.index.Postings(t)
		freqs[bit] = termFreq{bit: bit, df: len(post)}
		for _, v := range post {
			p.nodeMask[v] = p.nodeMask[v].With(bit)
		}
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].df != freqs[j].df {
			return freqs[i].df < freqs[j].df
		}
		return freqs[i].bit < freqs[j].bit
	})

	// θ: scale objective values to integers (§3.2). Edge attributes are
	// validated positive, so θ > 0 whenever the graph has edges.
	if s.g.NumEdges() == 0 {
		return nil, fmt.Errorf("%w: graph has no edges", ErrBadQuery)
	}
	p.theta = opts.Epsilon * s.g.MinObjective() * s.g.MinBudget() / q.Budget

	// Strategy 1 candidates: uncovered-keyword nodes, rarest keyword first,
	// capped; each costs one reverse sweep on a lazy oracle.
	if !opts.DisableStrategy1 {
		taken := make(map[graph.NodeID]bool)
		for _, tf := range freqs {
			for _, v := range s.index.Postings(p.terms[tf.bit]) {
				if taken[v] || len(p.jumpNodes) >= opts.Strategy1Candidates {
					continue
				}
				taken[v] = true
				p.jumpNodes = append(p.jumpNodes, jumpNode{node: v, mask: p.nodeMask[v]})
			}
			if len(p.jumpNodes) >= opts.Strategy1Candidates {
				break
			}
		}
	}

	// Strategy 2: pick the least frequent keyword if it is rare enough.
	if !opts.DisableStrategy2 && len(freqs) > 0 {
		rarest := freqs[0]
		threshold := int(opts.InfrequentFraction * float64(s.g.NumNodes()))
		if threshold < 1 {
			threshold = 1
		}
		if rarest.df > 0 && rarest.df <= threshold {
			p.infreqBit = rarest.bit
			p.infreqNodes = append(p.infreqNodes, s.index.Postings(p.terms[rarest.bit])...)
		}
	}

	// Prefetch hints for lazy oracles: the dominant lookups are into the
	// target, into strategy-1 jump nodes (σ(i, j)) and into strategy-2
	// keyword nodes (τ/σ(i, l)).
	apsp.PrefetchTarget(s.oracle, q.Target)
	for _, jn := range p.jumpNodes {
		apsp.PrefetchTarget(s.oracle, jn.node)
	}
	for _, v := range p.infreqNodes {
		apsp.PrefetchTarget(s.oracle, v)
	}
	return p, nil
}

// ctxCheckEvery is how many checkCtx calls elapse between real ctx polls.
// Polling every iteration would put a synchronized Err() call in the hottest
// loop; every 64th keeps cancellation latency well under a millisecond on
// any realistic label rate.
const ctxCheckEvery = 64

// checkCtx polls the plan's context, returning its error (wrapped, so
// errors.Is(err, context.Canceled) holds) once the context is done. Call it
// from every search loop.
func (p *plan) checkCtx() error {
	p.ctxTick++
	if p.ctxTick%ctxCheckEvery != 0 {
		return nil
	}
	if err := p.ctx.Err(); err != nil {
		return fmt.Errorf("kor: search aborted: %w", err)
	}
	return nil
}

// scaledObjective is ô = ⌊o/θ⌋, saturating to keep int64 arithmetic safe
// when ε, o_min or b_min make θ extremely small.
func (p *plan) scaledObjective(o float64) int64 {
	r := o / p.theta
	if r >= math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(r)
}

// newLabel runs the label treatment step (Definition 7) along edge
// (cur.node → e.To).
func (p *plan) newLabel(cur *label, e graph.Edge) *label {
	p.seq++
	p.metrics.LabelsCreated++
	l := &label{
		node:    e.To,
		covered: cur.covered.Union(p.nodeMask[e.To]),
		os:      cur.os + e.Objective,
		bs:      cur.bs + e.Budget,
		parent:  cur,
		seq:     p.seq,
	}
	if p.exact {
		l.scaled = exactScaled(l.os)
	} else {
		l.scaled = cur.scaled + p.scaledObjective(e.Objective)
	}
	return l
}

// newShortcutLabel builds a strategy-1 jump label following σ(cur.node, to)
// with the given scores.
func (p *plan) newShortcutLabel(cur *label, to graph.NodeID, sigOS, sigBS float64) *label {
	p.seq++
	p.metrics.LabelsCreated++
	p.metrics.ShortcutLabels++
	l := &label{
		node:     to,
		covered:  cur.covered.Union(p.nodeMask[to]),
		os:       cur.os + sigOS,
		bs:       cur.bs + sigBS,
		parent:   cur,
		shortcut: true,
		seq:      p.seq,
	}
	if p.exact {
		l.scaled = exactScaled(l.os)
	} else {
		// ⌊OS(σ)/θ⌋ under-approximates the hop-by-hop sum of floors; the
		// shortcut is a heuristic for finding a feasible route early and
		// all hard checks use the exact os/bs fields.
		l.scaled = cur.scaled + p.scaledObjective(sigOS)
	}
	return l
}

// startLabel is the source label L0s = (vs.ψ, 0, 0, 0).
func (p *plan) startLabel() *label {
	p.seq++
	return &label{node: p.q.Source, covered: p.nodeMask[p.q.Source], seq: p.seq}
}

// trace emits a tracer event if a tracer is configured.
func (p *plan) trace(kind TraceKind, l *label, u float64) {
	if p.opts.Tracer == nil {
		return
	}
	p.opts.Tracer.Trace(TraceEvent{Kind: kind, Label: l.view(), U: u, Shortcut: l.shortcut})
}

// strategy2Prune applies optimization strategy 2: a label not yet covering
// the infrequent keyword can be discarded when, through every node l that
// carries it, either the objective bound exceeds U or the budget bound
// exceeds Δ.
func (p *plan) strategy2Prune(l *label, u float64) bool {
	if p.infreqBit < 0 || l.covered.Has(p.infreqBit) {
		return false
	}
	for _, via := range p.infreqNodes {
		osIL, _, ok1 := p.s.oracle.MinObjective(l.node, via)
		if !ok1 {
			continue // cannot route through this node at all
		}
		osLT, _, ok2 := p.s.oracle.MinObjective(via, p.q.Target)
		if !ok2 {
			continue
		}
		objOK := l.os+osIL+osLT <= u
		_, bsIL, _ := p.s.oracle.MinBudget(l.node, via)
		_, bsLT, ok3 := p.s.oracle.MinBudget(via, p.q.Target)
		budOK := ok3 && l.bs+bsIL+bsLT <= p.q.Budget
		if objOK && budOK {
			return false // this keyword node keeps the label alive
		}
	}
	p.metrics.PrunedStrategy2++
	p.trace(TracePrunedStrategy2, l, u)
	return true
}
