package core

import (
	"context"
	"math"

	"kor/internal/graph"
	"kor/internal/pqueue"
)

// OSScaling answers the KOR query with Algorithm 1 of the paper: a label
// search over the scaled graph G_S. The returned route's objective score is
// at most 1/(1−ε) times the optimum (Theorem 2). With opts.K > 1 it answers
// the KkR query, returning up to k routes under k-domination.
//
// Two deliberate deviations from the pseudocode, both noted in DESIGN.md:
// the budget comparisons use ≤ Δ (Definition 4 and Example 2 use ≤ where
// the pseudocode writes <), and the source label is itself checked for full
// coverage (the pseudocode only checks newly created labels, silently
// missing queries whose source already covers every keyword).
func (s *Searcher) OSScaling(q Query, opts Options) (Result, error) {
	return s.OSScalingCtx(context.Background(), q, opts)
}

// OSScalingCtx is OSScaling with cancellation: the label loop polls ctx and
// returns a wrapped ctx error (errors.Is-compatible with context.Canceled /
// context.DeadlineExceeded) once it fires.
func (s *Searcher) OSScalingCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	p, err := s.newPlan(ctx, q, opts)
	if err != nil {
		return Result{}, err
	}
	return p.runOSScaling()
}

func (p *plan) runOSScaling() (Result, error) {
	defer p.close()

	// A feasible route needs the target reachable within Δ at all.
	if sbs, ok := p.sigBudgetTo(p.q.Source); !ok || sbs > p.q.Budget {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}

	cands := newCandidateSet(p.opts.K)
	store := newLabelStore(p.sc, p.opts.K, &p.metrics, p.opts.Tracer)
	queue := pqueue.New(func(a, b *label) bool { return a.less(b) })

	start := p.startLabel()
	store.tryInsert(start)
	if start.covered.Covers(p.qMask) {
		tos, tbs, ok := p.tauTo(p.q.Source)
		if ok && start.bs+tbs <= p.q.Budget {
			if _, err := cands.offer(p, start, tos, tbs); err != nil {
				return Result{Metrics: p.metrics}, err
			}
			p.metrics.Feasible++
			p.trace(TraceUpperBound, start, cands.bound())
		}
	}
	queue.Push(start)
	p.metrics.LabelsEnqueued++

	for !queue.Empty() {
		if err := p.checkCtx(); err != nil {
			return Result{Metrics: p.metrics}, err
		}
		l := queue.Pop()
		if l.deleted {
			continue
		}
		p.metrics.LabelsDequeued++
		p.trace(TraceDequeued, l, cands.bound())

		// Line 7: the label cannot contribute when even its best completion
		// exceeds the upper bound.
		tos, _, ok := p.tauTo(l.node)
		if !ok {
			continue
		}
		if l.os+tos > cands.bound() {
			p.metrics.PrunedBound++
			p.trace(TracePrunedBound, l, cands.bound())
			continue
		}

		if err := p.extendOSS(l, store, queue, cands); err != nil {
			return Result{Metrics: p.metrics}, err
		}
		if p.metrics.LabelsCreated > p.opts.MaxExpansions {
			return Result{Metrics: p.metrics}, ErrSearchLimit
		}
	}

	routes := cands.take()
	if len(routes) == 0 {
		return Result{Metrics: p.metrics}, ErrNoRoute
	}
	return Result{Routes: routes, Metrics: p.metrics}, nil
}

// extendOSS runs label treatment over every outgoing edge of l's node, plus
// the strategy-1 σ-jump, feeding each child through Algorithm 1's
// creation-time checks.
func (p *plan) extendOSS(l *label, store *labelStore, queue *pqueue.Heap[*label], cands *candidateSet) error {
	for _, e := range p.s.g.Out(l.node) {
		child := p.newLabel(l, e)
		if err := p.admitOSS(child, store, queue, cands); err != nil {
			return err
		}
	}
	if !p.opts.DisableStrategy1 && !l.covered.Covers(p.qMask) {
		if child := p.strategy1Jump(l); child != nil {
			if err := p.admitOSS(child, store, queue, cands); err != nil {
				return err
			}
		}
	}
	return nil
}

// strategy1Jump builds the optimization-strategy-1 label: jump along
// σ(l.node, vj) to the uncovered-keyword node vj with the cheapest such
// budget, provided the jump still admits a feasible completion. The σ tails
// into the target were resolved at plan time; the per-candidate σ(l.node,
// vj) lookup comes from the plan's Δ-bounded candidate sweeps on lazy
// oracles.
func (p *plan) strategy1Jump(l *label) *label {
	bestBS := math.Inf(1)
	var bestNode graph.NodeID
	var bestOS float64
	found := false
	for i := range p.jumpNodes {
		jn := &p.jumpNodes[i]
		if jn.node == l.node {
			continue
		}
		if jn.mask.Diff(l.covered).Empty() {
			continue // carries no uncovered keyword
		}
		sigOS, sigBS, ok := p.sigInto(l.node, jn.node, &jn.sig)
		if !ok || l.bs+sigBS+jn.tailBS > p.q.Budget {
			continue
		}
		if sigBS < bestBS || (sigBS == bestBS && jn.node < bestNode) {
			bestBS, bestOS, bestNode = sigBS, sigOS, jn.node
			found = true
		}
	}
	if !found {
		return nil
	}
	return p.newShortcutLabel(l, bestNode, bestOS, bestBS)
}

// admitOSS applies the creation-time checks of Algorithm 1 (line 10 and
// lines 16–20) to a child label.
func (p *plan) admitOSS(child *label, store *labelStore, queue *pqueue.Heap[*label], cands *candidateSet) error {
	p.trace(TraceCreated, child, cands.bound())

	// Budget feasibility through the best σ tail.
	sbs, ok := p.sigBudgetTo(child.node)
	if !ok || child.bs+sbs > p.q.Budget {
		p.metrics.PrunedBudget++
		p.trace(TracePrunedBudget, child, cands.bound())
		return nil
	}
	// τ exists whenever σ does: both witness reachability.
	tos, tbs, _ := p.tauTo(child.node)

	u := cands.bound()
	if child.os+tos >= u { // never fires while u is +Inf
		p.metrics.PrunedBound++
		p.trace(TracePrunedBound, child, u)
		return nil
	}
	if p.strategy2Prune(child, u) {
		return nil
	}

	if !store.tryInsert(child) {
		return nil
	}

	coversAll := child.covered.Covers(p.qMask)
	if coversAll && child.bs+tbs <= p.q.Budget {
		// Lines 17–19: a feasible route exists; update U and remember it.
		changed, err := cands.offer(p, child, tos, tbs)
		if err != nil {
			return err
		}
		p.metrics.Feasible++
		p.trace(TraceFeasible, child, cands.bound())
		if changed {
			p.trace(TraceUpperBound, child, cands.bound())
		}
		// The plain query stops extending here (the best completion of this
		// label is exactly the candidate just recorded); KkR keeps the label
		// alive because suboptimal completions may still rank in the top k.
		if p.opts.K == 1 {
			return nil
		}
	}
	queue.Push(child)
	p.metrics.LabelsEnqueued++
	if n := queue.Len(); n > p.metrics.PeakQueue {
		p.metrics.PeakQueue = n
	}
	p.trace(TraceEnqueued, child, cands.bound())
	return nil
}
