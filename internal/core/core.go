// Package core implements the paper's route-search algorithms over the
// keyword-aware optimal route (KOR) query:
//
//	OSScaling    (§3.2) — label search on a scaled graph; approximation
//	             bound 1/(1−ε) on the objective score.
//	BucketBound  (§3.3) — label search over objective-score buckets;
//	             approximation bound β/(1−ε), faster in practice.
//	Greedy       (§3.4) — beam-greedy waypoint selection (Greedy-1/Greedy-2);
//	             no guarantee, may miss feasibility.
//	TopK         (§3.5) — the KkR extension of both label algorithms using
//	             k-domination.
//	Exact        — branch-and-bound without scaling; exponential but exact,
//	             used to validate the approximation bounds.
//	BruteForce   — the §3.2 exhaustive baseline with only budget pruning.
//
// A Searcher bundles the three substrates every algorithm needs: the graph,
// a τ/σ score oracle (package apsp) and a keyword posting source (the
// inverted file). All algorithms are deterministic: ties in label order are
// broken by node ID and creation sequence.
//
// # Concurrency model
//
// The package splits state into two tiers. The Searcher's substrates —
// graph, oracle, posting source — are shared and must be safe for
// concurrent readers (all package apsp oracles and both index
// implementations are). Everything a query mutates — label stores, queues,
// candidate sets, metrics, the scaling plan — lives in a per-query plan
// allocated at search start and never escapes it. One Searcher therefore
// serves any number of concurrent searches. Each search method also has a
// Ctx variant that polls a context in its main loop and returns the
// context's error, wrapped, when it fires.
package core

import (
	"errors"
	"fmt"
	"sync"

	"kor/internal/apsp"
	"kor/internal/graph"
)

// Sentinel errors returned by the search algorithms.
var (
	// ErrNoRoute reports that no feasible route exists (or, for the greedy
	// heuristic, that none was found): the hard constraints of Definition 4
	// cannot be met.
	ErrNoRoute = errors.New("kor: no feasible route exists")
	// ErrBadQuery reports a malformed query.
	ErrBadQuery = errors.New("kor: bad query")
	// ErrUnknownAlgorithm reports an algorithm name missing from the
	// registry. Errors carrying it also match ErrBadQuery.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")
	// ErrBudgetExceeded is returned by Greedy in keyword-priority mode when
	// the route it constructed covers the keywords but violates the budget.
	// The violating route is still returned for inspection.
	ErrBudgetExceeded = errors.New("kor: greedy route exceeds the budget limit")
	// ErrSearchLimit reports that the expansion cap was hit before the
	// search concluded (only the brute-force baseline and capped searches).
	ErrSearchLimit = errors.New("kor: search limit exceeded")
)

// RouteOracle is the oracle capability set the algorithms need: pair scores
// for pruning plus path materialization for presenting final routes. All
// apsp oracles implement it.
type RouteOracle interface {
	apsp.Oracle
	apsp.PathMaterializer
}

// Query is the KOR query of Definition 4: find the route from Source to
// Target covering all Keywords with budget score at most Budget that
// minimizes the objective score.
type Query struct {
	Source   graph.NodeID
	Target   graph.NodeID
	Keywords []graph.Term
	Budget   float64 // Δ
}

// Searcher bundles a graph with the substrates the algorithms consult.
// Create one with NewSearcher and reuse it across queries. A Searcher is
// safe for concurrent use: its substrates are immutable or internally
// synchronized, and all per-query scratch state lives in the plan.
type Searcher struct {
	g      *graph.Graph
	oracle RouteOracle
	index  graph.PostingSource

	// scratch pools per-query planScratch values (label arenas and O(|V|)
	// tables) across searches; see arena.go. sync.Pool is safe for the
	// Searcher's concurrent queries.
	scratch sync.Pool

	// sweeps is the cross-query shared sweep cache (sweepshare.go): plans
	// resolve their candidate and reconstruction sweeps through it so
	// concurrent and consecutive queries sharing a root compute each sweep
	// once. Lifetime is the Searcher's, i.e. one graph snapshot.
	sweeps sweepShare
}

// NewSearcher returns a Searcher over g. A nil oracle defaults to a lazy
// memoized-Dijkstra oracle; a nil index defaults to an in-memory inverted
// index.
func NewSearcher(g *graph.Graph, oracle RouteOracle, index graph.PostingSource) *Searcher {
	if oracle == nil {
		oracle = apsp.NewLazyOracle(g)
	}
	if index == nil {
		index = graph.NewMemIndex(g)
	}
	return &Searcher{g: g, oracle: oracle, index: index, sweeps: sweepShare{cap: sweepShareCap}}
}

// SetSweepSharing toggles the cross-query shared sweep cache, dropping its
// entries either way. Sharing is on by default; disabling reverts every plan
// to private per-query sweeps. Used by the equivalence tests and the bench
// harness to compare the two modes; concurrent use with running queries is
// safe (in-flight waiters keep their entry pointers).
func (s *Searcher) SetSweepSharing(enabled bool) { s.sweeps.setEnabled(enabled) }

// Graph returns the underlying graph.
func (s *Searcher) Graph() *graph.Graph { return s.g }

// Oracle returns the τ/σ oracle in use.
func (s *Searcher) Oracle() RouteOracle { return s.oracle }

// Index returns the posting source in use.
func (s *Searcher) Index() graph.PostingSource { return s.index }

// validate rejects structurally bad queries.
func (s *Searcher) validate(q Query) error {
	if !s.g.Valid(q.Source) {
		return fmt.Errorf("%w: source node %d not in graph", ErrBadQuery, q.Source)
	}
	if !s.g.Valid(q.Target) {
		return fmt.Errorf("%w: target node %d not in graph", ErrBadQuery, q.Target)
	}
	if q.Budget <= 0 {
		return fmt.Errorf("%w: budget limit %v must be positive", ErrBadQuery, q.Budget)
	}
	if len(q.Keywords) == 0 {
		return fmt.Errorf("%w: at least one query keyword is required", ErrBadQuery)
	}
	if len(q.Keywords) > 64 {
		return fmt.Errorf("%w: %d keywords exceed the 64-keyword limit", ErrBadQuery, len(q.Keywords))
	}
	for _, t := range q.Keywords {
		if t < 0 || int(t) >= s.g.Vocab().Len() {
			return fmt.Errorf("%w: keyword term %d not in vocabulary", ErrBadQuery, t)
		}
	}
	return nil
}
