package core

import (
	"sync"

	"kor/internal/apsp"
	"kor/internal/graph"
)

// Cross-query sweep sharing. The plan layer owns bounded reverse sweeps into
// its candidate nodes (plan.go); before this cache each plan computed its own,
// so concurrent — or merely consecutive — queries sharing a target or a
// popular keyword node repeated identical Dijkstra work. The Searcher now
// carries one sweepShare per snapshot: sweeps are keyed by (root, metric),
// annotated with the bound they were truncated at, and single-flighted so N
// plans needing the same sweep compute it once and the rest wait.
//
// Correctness rests on the prefix property of the bounded sweep: truncation
// only drops nodes wholly past the bound, so a sweep with bound B answers
// every lookup of a plan that needed bound b ≤ B with exactly the scores,
// parents and tie-breaks the plan's own sweep would have produced (ties are
// broken deterministically by node ID). Every caller additionally re-checks
// the returned scores against its own Δ or U, so a wider sweep can never
// admit a node a narrower one would have rejected. A cached bound that is too
// small is never served: the requester recomputes at its own bound and the
// wider sweep replaces the entry.
//
// Lifetime is the Searcher's, and the Searcher is rebuilt with every
// snapshot (see kor.Engine.newSnapshot), so entries die with the graph
// version that produced them — the same invalidation discipline as the
// engine's result cache.

// sweepShareCap bounds the cache FIFO-style. Sweeps are Δ-truncated balls for
// candidates and full-graph sweeps for reconstruction tails; 256 of them on
// the bench graphs is a few MB.
const sweepShareCap = 256

// sweepShareKey identifies a sweep by its root and primary metric; the bound
// lives on the entry so wider sweeps can serve narrower requests.
type sweepShareKey struct {
	root graph.NodeID
	m    apsp.Metric
}

// sweepShareEntry is one in-flight or completed sweep. done closes when sw is
// readable; sw stays nil when the computing goroutine panicked, in which case
// waiters fall back to a private sweep.
type sweepShareEntry struct {
	done  chan struct{}
	bound float64
	sw    *apsp.Sweep
}

// sweepShareRef pairs a key with the exact entry it enqueued, so FIFO
// eviction of a replaced key cannot drop the replacement by accident.
type sweepShareRef struct {
	key sweepShareKey
	e   *sweepShareEntry
}

// sweepShare is the snapshot-scoped shared sweep cache. The zero value is
// unusable; NewSearcher sets the capacity.
type sweepShare struct {
	mu       sync.Mutex
	cap      int
	disabled bool
	entries  map[sweepShareKey]*sweepShareEntry
	order    []sweepShareRef
}

// get returns a sweep into root under metric m whose truncation bound is at
// least bound, computing one when no usable entry exists. shared reports that
// the sweep came out of the cache (or from waiting on another plan's
// computation); when false the calling plan ran the Dijkstra itself and
// should count it in Metrics.PlanSweeps.
func (c *sweepShare) get(g *graph.Graph, root graph.NodeID, m apsp.Metric, bound float64) (sw *apsp.Sweep, shared bool) {
	c.mu.Lock()
	if c.disabled {
		c.mu.Unlock()
		return apsp.ReverseBoundedSweep(g, root, m, bound), false
	}
	key := sweepShareKey{root: root, m: m}
	if e, ok := c.entries[key]; ok && e.bound >= bound {
		c.mu.Unlock()
		<-e.done
		if e.sw != nil {
			return e.sw, true
		}
		// The computing plan died before publishing; serve ourselves.
		return apsp.ReverseBoundedSweep(g, root, m, bound), false
	}
	// Miss, or the cached bound is too small: become the computing leader.
	// An undersized entry is replaced outright — its waiters hold their own
	// pointer and are unaffected.
	e := &sweepShareEntry{done: make(chan struct{}), bound: bound}
	if c.entries == nil {
		c.entries = make(map[sweepShareKey]*sweepShareEntry)
	}
	c.entries[key] = e
	c.order = append(c.order, sweepShareRef{key: key, e: e})
	for len(c.order) > c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		if c.entries[old.key] == old.e {
			delete(c.entries, old.key)
		}
	}
	c.mu.Unlock()
	// Publish even on panic: sw stays nil and waiters fall back.
	defer close(e.done)
	e.sw = apsp.ReverseBoundedSweep(g, root, m, bound)
	return e.sw, false
}

// setEnabled toggles sharing, dropping all entries either way. Disabled, get
// degenerates to a private ReverseBoundedSweep per call — the pre-sharing
// behaviour, kept reachable so the equivalence tests and the bench harness
// can compare the two modes on the same Searcher.
func (c *sweepShare) setEnabled(enabled bool) {
	c.mu.Lock()
	c.disabled = !enabled
	c.entries = nil
	c.order = nil
	c.mu.Unlock()
}
