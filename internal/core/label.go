package core

import (
	"kor/internal/bitset"
	"kor/internal/graph"
)

// label is a node label (Definition 5): one partial route from the query
// source to node, carrying the covered query keywords λ, the scaled
// objective score ŌS, and the exact objective and budget scores. Labels
// form a parent-linked tree for route reconstruction.
//
// Labels are arena-allocated (see arena.go): they live exactly as long as
// their plan and must never be retained past it.
type label struct {
	node    graph.NodeID
	covered bitset.Mask
	scaled  int64 // ŌS over the scaled graph G_S
	os      float64
	bs      float64
	parent  *label
	// hash is the incremental route signature of the chain's node sequence
	// (see candidates.go). It is exact only while approx is false.
	hash uint64
	// seq is the creation sequence number, the final deterministic
	// tie-break in the label order.
	seq uint64
	// shortcut marks a strategy-1 jump: the hop parent→node follows the
	// min-budget path σ(parent.node, node) rather than a single edge.
	shortcut bool
	// approx marks chains containing a shortcut anywhere: their materialized
	// node sequence differs from the chain, so hash must be recomputed from
	// the reconstructed route.
	approx bool
	// deleted marks labels lazily removed from the queues after domination.
	deleted bool
}

// LabelView is the read-only projection of a label exposed through the
// Tracer, mirroring Table 1 of the paper: (λ, ŌS, OS, BS) at a node.
type LabelView struct {
	Node     graph.NodeID
	Covered  bitset.Mask
	ScaledOS int64
	OS       float64
	BS       float64
}

func (l *label) view() LabelView {
	return LabelView{Node: l.node, Covered: l.covered, ScaledOS: l.scaled, OS: l.os, BS: l.bs}
}

// less is the label order of Definition 8: more covered keywords first,
// then smaller scaled objective, then smaller budget, with ties broken by
// node ID and creation order so runs are reproducible.
func (l *label) less(o *label) bool {
	lc, oc := l.covered.Count(), o.covered.Count()
	if lc != oc {
		return lc > oc
	}
	if l.scaled != o.scaled {
		return l.scaled < o.scaled
	}
	if l.bs != o.bs {
		return l.bs < o.bs
	}
	if l.node != o.node {
		return l.node < o.node
	}
	return l.seq < o.seq
}

// dominates is Definition 6 on the scaled graph: l dominates o iff l covers
// at least o's keywords with no worse scaled objective and budget. A label
// "dominates" an identical score triple; insertion rejects the newcomer in
// that case, keeping exactly one copy.
func (l *label) dominates(o *label) bool {
	return l.covered.Contains(o.covered) && l.scaled <= o.scaled && l.bs <= o.bs
}

// labelStore keeps the per-node label lists and applies (k-)domination.
// For the KkR query (§3.5), k > 1 makes it keep any label dominated by
// fewer than k others. The lists and the per-node coverage-union prefilter
// live in the plan's pooled scratch.
type labelStore struct {
	sc      *planScratch
	k       int
	metrics *Metrics
	tracer  Tracer
}

func newLabelStore(sc *planScratch, k int, metrics *Metrics, tracer Tracer) *labelStore {
	return &labelStore{sc: sc, k: k, metrics: metrics, tracer: tracer}
}

// tryInsert adds l to its node's list unless it is k-dominated by existing
// labels. On success, existing labels that become k-dominated (for k = 1:
// dominated by l) are marked deleted and filtered out. It reports whether l
// was inserted.
func (st *labelStore) tryInsert(l *label) bool {
	sc := st.sc
	list := sc.perNode[l.node]
	if len(list) == 0 {
		sc.perNode[l.node] = append(list, l)
		sc.union[l.node] = l.covered
		sc.touched = append(sc.touched, l.node)
		return true
	}

	// Coverage prefilter: a dominator must cover ⊇ l.covered, so when even
	// the union of live coverage at this node misses one of l's keywords, no
	// dominator can exist and the scan is skipped.
	if sc.union[l.node].Contains(l.covered) {
		dominators := 0
		for _, x := range list {
			if x.deleted {
				continue
			}
			if x.dominates(l) {
				dominators++
				if dominators >= st.k {
					st.metrics.Dominated++
					if st.tracer != nil {
						st.tracer.Trace(TraceEvent{Kind: TraceDominated, Label: l.view()})
					}
					return false
				}
			}
		}
	}

	// Sweep out labels that l pushes past their domination budget, rebuilding
	// the coverage union over the survivors as we go. For the plain k=1 query
	// l dominating x already settles the count, skipping countDominators.
	w := 0
	union := l.covered
	for _, x := range list {
		if x.deleted {
			continue
		}
		if l.dominates(x) && (st.k == 1 || st.countDominators(list, x, l) >= st.k) {
			x.deleted = true
			st.metrics.DominatedSwept++
			continue
		}
		list[w] = x
		w++
		union = union.Union(x.covered)
	}
	list = list[:w]
	sc.perNode[l.node] = append(list, l)
	sc.union[l.node] = union
	return true
}

// countDominators counts live labels dominating x, including the incoming
// label extra (not yet in the list).
func (st *labelStore) countDominators(list []*label, x, extra *label) int {
	n := 0
	if extra.dominates(x) {
		n++
	}
	for _, y := range list {
		if y.deleted || y == x || y == extra {
			continue
		}
		if y.dominates(x) {
			n++
		}
	}
	return n
}
