package core

import (
	"fmt"
	"math/rand"
	"testing"

	"kor/internal/graph"
)

// rareKeywordGraph builds a graph where one query keyword is genuinely
// infrequent — below the 1% document-frequency threshold — so optimization
// strategy 2 actually engages (the synthetic benchmark workloads use
// frequent keywords and never trigger it; this fixture covers the code
// path).
func rareKeywordGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	// Exactly two nodes carry the rare keyword.
	rare1 := graph.NodeID(n / 3)
	rare2 := graph.NodeID(2 * n / 3)
	b2 := graph.NewBuilder()
	for i := 0; i < n; i++ {
		kws := []string{"common"}
		if rng.Intn(3) == 0 {
			kws = append(kws, "shared")
		}
		if graph.NodeID(i) == rare1 || graph.NodeID(i) == rare2 {
			kws = append(kws, "hiddengem")
		}
		b2.AddNode(kws...)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		if err := b2.AddEdge(graph.NodeID(i), graph.NodeID(next), 0.2+rng.Float64(), 0.2+rng.Float64()); err != nil {
			t.Fatal(err)
		}
		if err := b2.AddEdge(graph.NodeID(next), graph.NodeID(i), 0.2+rng.Float64(), 0.2+rng.Float64()); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			j := rng.Intn(n)
			if j != i {
				_ = b2.AddEdge(graph.NodeID(i), graph.NodeID(j), 0.2+rng.Float64(), 0.5+2*rng.Float64())
			}
		}
	}
	return b2.MustBuild()
}

// TestStrategy2EngagesOnRareKeywords verifies that the infrequent-keyword
// pruning fires, and that pruning never changes feasibility or breaks the
// approximation bound.
func TestStrategy2EngagesOnRareKeywords(t *testing.T) {
	g := rareKeywordGraph(t, 300)
	s := searcherFor(t, g, false)
	kws := terms(t, g, "common", "hiddengem")

	engaged := false
	for _, budget := range []float64{6, 10, 16} {
		for srcSeed := 0; srcSeed < 6; srcSeed++ {
			q := Query{
				Source:   graph.NodeID(srcSeed * 41 % g.NumNodes()),
				Target:   graph.NodeID((srcSeed*97 + 13) % g.NumNodes()),
				Keywords: kws,
				Budget:   budget,
			}
			if q.Source == q.Target {
				continue
			}
			withS2 := DefaultOptions()
			withoutS2 := DefaultOptions()
			withoutS2.DisableStrategy2 = true

			resWith, errWith := s.OSScaling(q, withS2)
			resWithout, errWithout := s.OSScaling(q, withoutS2)
			if (errWith == nil) != (errWithout == nil) {
				t.Fatalf("Δ=%v src=%d: strategy 2 changed feasibility: %v vs %v",
					budget, q.Source, errWith, errWithout)
			}
			if errWith != nil {
				continue
			}
			if resWith.Metrics.PrunedStrategy2 > 0 {
				engaged = true
			}
			// Both must respect the bound versus exact.
			exact, errE := s.Exact(q, DefaultOptions())
			if errE != nil {
				t.Fatalf("exact failed where OSScaling succeeded: %v", errE)
			}
			bound := exact.Best().Objective/(1-withS2.Epsilon) + 1e-9
			for name, r := range map[string]Result{"with": resWith, "without": resWithout} {
				if r.Best().Objective > bound {
					t.Fatalf("Δ=%v src=%d %s-s2: %v breaks bound %v",
						budget, q.Source, name, r.Best().Objective, bound)
				}
				verifyRoute(t, g, q, r.Best(), fmt.Sprintf("Δ=%v src=%d %s", budget, q.Source, name))
			}
		}
	}
	if !engaged {
		t.Error("strategy 2 never pruned a label on the rare-keyword workload")
	}
}

// TestStrategy1ProducesShortcuts verifies that the σ-jump optimization
// creates shortcut labels on workloads where feasible routes are hard to
// stumble upon, and that shortcut-built routes are structurally valid.
func TestStrategy1ProducesShortcuts(t *testing.T) {
	g := rareKeywordGraph(t, 200)
	s := searcherFor(t, g, false)
	kws := terms(t, g, "hiddengem")
	produced := false
	for srcSeed := 0; srcSeed < 10; srcSeed++ {
		q := Query{
			Source:   graph.NodeID(srcSeed * 17 % g.NumNodes()),
			Target:   graph.NodeID((srcSeed*29 + 7) % g.NumNodes()),
			Keywords: kws,
			Budget:   14,
		}
		if q.Source == q.Target {
			continue
		}
		res, err := s.OSScaling(q, DefaultOptions())
		if err != nil {
			continue
		}
		if res.Metrics.ShortcutLabels > 0 {
			produced = true
		}
		verifyRoute(t, g, q, res.Best(), fmt.Sprintf("shortcut src=%d", q.Source))
	}
	if !produced {
		t.Error("strategy 1 never produced a shortcut label")
	}
}
