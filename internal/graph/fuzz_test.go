package graph

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the graph loader: it must reject or
// accept them without panicking, and anything it accepts must round-trip.
func FuzzLoad(f *testing.F) {
	// Seed with a valid file and a few mutations.
	b := NewBuilder()
	v0 := b.AddNode("a", "b")
	v1 := b.AddNode("c")
	if err := b.AddEdge(v0, v1, 1.5, 2.5); err != nil {
		f.Fatal(err)
	}
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("KORG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent and re-saveable.
		var out bytes.Buffer
		if err := g.Save(&out); err != nil {
			t.Fatalf("accepted graph failed to save: %v", err)
		}
		g2, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}
