package graph

import "fmt"

// Stats summarizes a graph for reports and sanity checks.
type Stats struct {
	Nodes        int
	Edges        int
	Terms        int     // distinct keywords in the vocabulary
	AvgOutDegree float64 // |E| / |V|
	MaxOutDegree int     // d in the paper's exhaustive-search bound O(d^⌊Δ/bmin⌋)
	AvgTerms     float64 // average keywords per node
	MinObjective float64
	MaxObjective float64
	MinBudget    float64
	MaxBudget    float64
	Isolated     int // nodes with no incident edge
}

// ComputeStats scans the graph once and returns its summary.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Terms:        g.vocab.Len(),
		MinObjective: g.minObjective,
		MaxObjective: g.maxObjective,
		MinBudget:    g.minBudget,
		MaxBudget:    g.maxBudget,
	}
	totalTerms := 0
	for v := NodeID(0); int(v) < s.Nodes; v++ {
		d := g.OutDegree(v)
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d == 0 && g.InDegree(v) == 0 {
			s.Isolated++
		}
		totalTerms += len(g.Terms(v))
	}
	if s.Nodes > 0 {
		s.AvgOutDegree = float64(s.Edges) / float64(s.Nodes)
		s.AvgTerms = float64(totalTerms) / float64(s.Nodes)
	}
	return s
}

// String renders the summary on one line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d terms=%d avgDeg=%.2f maxDeg=%d avgTerms=%.2f obj=[%.4g,%.4g] bud=[%.4g,%.4g] isolated=%d",
		s.Nodes, s.Edges, s.Terms, s.AvgOutDegree, s.MaxOutDegree, s.AvgTerms,
		s.MinObjective, s.MaxObjective, s.MinBudget, s.MaxBudget, s.Isolated)
}

// StronglyConnected reports whether every node reaches every other node.
// Generators use it to validate that synthetic road networks will not strand
// queries. It runs two breadth-first sweeps (forward and reverse) from node 0.
func (g *Graph) StronglyConnected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	reach := func(adj func(NodeID) []Edge) int {
		seen := make([]bool, n)
		queue := make([]NodeID, 0, n)
		seen[0] = true
		queue = append(queue, 0)
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj(v) {
				if !seen[e.To] {
					seen[e.To] = true
					count++
					queue = append(queue, e.To)
				}
			}
		}
		return count
	}
	return reach(g.Out) == n && reach(g.In) == n
}
