package graph

import (
	"math/rand"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t) // 0→1→3, 0→2→3, 0→3
	sub, remap, err := g.InducedSubgraph([]NodeID{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	// Edges kept: 0→1, 1→3, 0→3; dropped: anything touching node 2.
	if sub.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", sub.NumEdges())
	}
	if remap[0] != 0 || remap[1] != 1 || remap[2] != -1 || remap[3] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	// Keywords survive with shared vocabulary.
	cafe, ok := g.Vocab().Lookup("cafe")
	if !ok {
		t.Fatal("cafe missing")
	}
	if !sub.HasTerm(remap[1], cafe) {
		t.Error("subgraph node lost its keyword")
	}
	if sub.Vocab() != g.Vocab() {
		t.Error("subgraph has a different vocabulary")
	}
}

func TestInducedSubgraphDuplicatesAndValidation(t *testing.T) {
	g := buildDiamond(t)
	sub, _, err := g.InducedSubgraph([]NodeID{3, 0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 {
		t.Fatalf("nodes = %d after dedup", sub.NumNodes())
	}
	if sub.NumEdges() != 1 { // only 0→3 survives
		t.Fatalf("edges = %d", sub.NumEdges())
	}
	if _, _, err := g.InducedSubgraph([]NodeID{0, 99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestInducedSubgraphRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 40)
		n := g.NumNodes()
		keep := make([]NodeID, 0, n/2+1)
		for v := NodeID(0); int(v) < n; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			keep = append(keep, 0)
		}
		sub, remap, err := g.InducedSubgraph(keep)
		if err != nil {
			t.Fatal(err)
		}
		if sub.NumNodes() != len(keep) {
			t.Fatalf("kept %d, subgraph has %d", len(keep), sub.NumNodes())
		}
		// Every subgraph edge maps back to an original edge.
		back := make(map[NodeID]NodeID)
		for old, new := range remap {
			if new != -1 {
				back[new] = NodeID(old)
			}
		}
		for v := NodeID(0); int(v) < sub.NumNodes(); v++ {
			for _, e := range sub.Out(v) {
				found := false
				for _, oe := range g.Out(back[v]) {
					if oe.To == back[e.To] && oe.Objective == e.Objective && oe.Budget == e.Budget {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("phantom edge %d→%d in subgraph", v, e.To)
				}
			}
		}
		// Edge count equals the number of original edges with both ends kept.
		want := 0
		for v := NodeID(0); int(v) < n; v++ {
			if remap[v] == -1 {
				continue
			}
			for _, e := range g.Out(v) {
				if remap[e.To] != -1 {
					want++
				}
			}
		}
		if sub.NumEdges() != want {
			t.Fatalf("subgraph has %d edges, want %d", sub.NumEdges(), want)
		}
	}
}

func TestLargestSCC(t *testing.T) {
	b := NewBuilder()
	// Component A: 0↔1↔2 (cycle); component B: 3→4 (no return); bridge 2→3.
	for i := 0; i < 5; i++ {
		b.AddNode()
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddEdge(0, 1, 1, 1))
	must(b.AddEdge(1, 2, 1, 1))
	must(b.AddEdge(2, 0, 1, 1))
	must(b.AddEdge(2, 3, 1, 1))
	must(b.AddEdge(3, 4, 1, 1))
	g := b.MustBuild()
	scc := g.LargestSCC()
	if len(scc) != 3 || scc[0] != 0 || scc[1] != 1 || scc[2] != 2 {
		t.Fatalf("LargestSCC = %v, want [0 1 2]", scc)
	}

	// The induced subgraph of the largest SCC is strongly connected.
	sub, _, err := g.InducedSubgraph(scc)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.StronglyConnected() {
		t.Error("largest SCC subgraph not strongly connected")
	}
}

func TestLargestSCCRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 50)
		scc := g.LargestSCC()
		if len(scc) == 0 && g.NumNodes() > 0 {
			t.Fatal("empty SCC on non-empty graph")
		}
		if len(scc) < 2 {
			continue
		}
		sub, _, err := g.InducedSubgraph(scc)
		if err != nil {
			t.Fatal(err)
		}
		if !sub.StronglyConnected() {
			t.Fatalf("trial %d: SCC of size %d not strongly connected", trial, len(scc))
		}
	}
}

func TestLargestSCCEmptyGraph(t *testing.T) {
	g := NewBuilder().MustBuild()
	if scc := g.LargestSCC(); len(scc) != 0 {
		t.Fatalf("empty graph SCC = %v", scc)
	}
}
