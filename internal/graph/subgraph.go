package graph

import "sort"

// InducedSubgraph returns the subgraph induced by keep: the kept nodes
// (renumbered densely in ascending original-ID order) and every edge whose
// endpoints are both kept. The second return value maps old node IDs to new
// ones (-1 for dropped nodes). The vocabulary is shared with the original
// graph, so Terms remain comparable across both.
//
// Dataset tooling uses it to carve city districts or road-network tiles out
// of a full dataset, mirroring how the paper extracts its 5k–20k-node
// subgraphs from the New York road network.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID, error) {
	sorted := append([]NodeID(nil), keep...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Deduplicate and validate.
	w := 0
	for i, v := range sorted {
		if !g.Valid(v) {
			return nil, nil, &nodeRangeError{v}
		}
		if i > 0 && v == sorted[w-1] {
			continue
		}
		sorted[w] = v
		w++
	}
	sorted = sorted[:w]

	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	b := NewBuilderWithVocab(g.vocab)
	for newID, old := range sorted {
		remap[old] = NodeID(newID)
		keywords := make([]string, 0, len(g.Terms(old)))
		for _, t := range g.Terms(old) {
			keywords = append(keywords, g.vocab.Name(t))
		}
		id := b.AddNode(keywords...)
		if g.pos != nil {
			if err := b.SetPosition(id, g.pos[old]); err != nil {
				return nil, nil, err
			}
		}
		if g.names != nil && g.names[old] != "" {
			if err := b.SetName(id, g.names[old]); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, old := range sorted {
		for _, e := range g.Out(old) {
			if remap[e.To] == -1 {
				continue
			}
			if err := b.AddEdge(remap[old], remap[e.To], e.Objective, e.Budget); err != nil {
				return nil, nil, err
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, remap, nil
}

type nodeRangeError struct{ v NodeID }

func (e *nodeRangeError) Error() string {
	return "graph: InducedSubgraph: node out of range"
}

// LargestSCC returns the node set of the largest strongly connected
// component, via Kosaraju's two sweeps. Generators use it to trim synthetic
// graphs down to a usable core when strong connectivity is required.
func (g *Graph) LargestSCC() []NodeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	// First pass: finish order on the forward graph.
	visited := make([]bool, n)
	order := make([]NodeID, 0, n)
	type frame struct {
		v    NodeID
		edge int
	}
	for start := NodeID(0); int(start) < n; start++ {
		if visited[start] {
			continue
		}
		stack := []frame{{v: start}}
		visited[start] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.Out(f.v)
			if f.edge < len(out) {
				to := out[f.edge].To
				f.edge++
				if !visited[to] {
					visited[to] = true
					stack = append(stack, frame{v: to})
				}
				continue
			}
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Second pass: reverse sweeps in reverse finish order.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var best []NodeID
	var current []NodeID
	compID := int32(0)
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != -1 {
			continue
		}
		current = current[:0]
		stack := []NodeID{root}
		comp[root] = compID
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			current = append(current, v)
			for _, e := range g.In(v) {
				if comp[e.To] == -1 {
					comp[e.To] = compID
					stack = append(stack, e.To)
				}
			}
		}
		if len(current) > len(best) {
			best = append(best[:0], current...)
		}
		compID++
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}
