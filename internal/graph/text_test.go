package graph

import (
	"errors"
	"strings"
	"testing"

	"kor/internal/geo"
)

const nodesCSV = `id,x,y,keywords
# POIs exported 2026-08
1001,0,0,cafe;jazz
7,1.5,0.25,park
42,3,1,cafe; museum

9000,0.5,2,
`

const edgesCSV = `from,to,objective,budget
1001,7,1,2
7,42,2,1
42,1001,1.5,3
1001,9000,0.25,0.5
9000,42,4,1.25
`

func loadTestCSV(t *testing.T, nodes, edges string) (*Graph, error) {
	t.Helper()
	return LoadCSV(strings.NewReader(nodes), "nodes.csv", strings.NewReader(edges), "edges.csv")
}

func TestLoadCSV(t *testing.T) {
	g, err := loadTestCSV(t, nodesCSV, edgesCSV)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d nodes %d edges, want 4/5", g.NumNodes(), g.NumEdges())
	}
	// Dense IDs follow file order: 1001→0, 7→1, 42→2, 9000→3.
	if got := g.Out(0); len(got) != 2 {
		t.Fatalf("node 0 out degree %d, want 2", len(got))
	}
	if p := g.Position(1); p.X != 1.5 || p.Y != 0.25 {
		t.Errorf("node 1 position %+v", p)
	}
	// "cafe; museum" splits and trims; node 2 carries cafe + museum.
	cafe, ok := g.Vocab().Lookup("cafe")
	if !ok {
		t.Fatal("cafe not interned")
	}
	museum, ok := g.Vocab().Lookup("museum")
	if !ok {
		t.Fatal("museum (trimmed) not interned")
	}
	ts := g.Terms(2)
	if len(ts) != 2 {
		t.Fatalf("node 2 terms = %v", ts)
	}
	found := map[Term]bool{ts[0]: true, ts[1]: true}
	if !found[cafe] || !found[museum] {
		t.Errorf("node 2 terms %v missing cafe/museum (%d,%d)", ts, cafe, museum)
	}
	// Trailing-comma keyword field on node 9000 means no keywords.
	if len(g.Terms(3)) != 0 {
		t.Errorf("node 3 terms = %v, want none", g.Terms(3))
	}
}

// TestLoadCSVMatchesBuilder pins fingerprint parity between text ingestion
// and the batch Builder: same nodes, keywords and edge arrival order must
// yield an identical digest, so indexes built from either path interoperate.
func TestLoadCSVMatchesBuilder(t *testing.T) {
	g, err := loadTestCSV(t, nodesCSV, edgesCSV)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	b := NewBuilder()
	b.AddNode("cafe", "jazz")
	b.AddNode("park")
	b.AddNode("cafe", "museum")
	b.AddNode()
	for _, e := range [][4]float64{{0, 1, 1, 2}, {1, 2, 2, 1}, {2, 0, 1.5, 3}, {0, 3, 0.25, 0.5}, {3, 2, 4, 1.25}} {
		if err := b.AddEdge(NodeID(e[0]), NodeID(e[1]), e[2], e[3]); err != nil {
			t.Fatal(err)
		}
	}
	for v, p := range [][2]float64{{0, 0}, {1.5, 0.25}, {3, 1}, {0.5, 2}} {
		if err := b.SetPosition(NodeID(v), geo.Point{X: p[0], Y: p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	want := b.MustBuild()
	if g.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint mismatch: text %x, builder %x", g.Fingerprint(), want.Fingerprint())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name         string
		nodes, edges string
		wantSub      string
	}{
		{"truncated node record", "5,1\n", edgesOnly("5"), "nodes.csv:1: node record needs"},
		{"bad coordinate", "5,one,2\n", edgesOnly("5"), `nodes.csv:1: bad x coordinate "one"`},
		{"duplicate node id", "5,0,0\n5,1,1\n", edgesOnly("5"), "nodes.csv:2: duplicate node id 5"},
		{"bad node id mid-file", "5,0,0\nzap,1,1\n", edgesOnly("5"), `nodes.csv:2: bad node id "zap"`},
		{"truncated edge record", "5,0,0\n6,1,1\n", "5,6,1\n", "edges.csv:1: edge record needs"},
		{"unknown endpoint", "5,0,0\n", "5,99,1,1\n", "edges.csv:1: edge references unknown node id 99"},
		{"self-loop", "5,0,0\n", "5,5,1,1\n", "edges.csv:1:"},
		{"bad objective", "5,0,0\n6,1,1\n", "5,6,x,1\n", `bad edge objective "x"`},
		{"non-positive budget", "5,0,0\n6,1,1\n", "5,6,1,0\n", "edges.csv:1:"},
		{"nan budget", "5,0,0\n6,1,1\n", "5,6,1,NaN\n", "edges.csv:1:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadTestCSV(t, tc.nodes, tc.edges)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, ErrBadText) {
				t.Errorf("error %v does not wrap ErrBadText", err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.wantSub)
			}
		})
	}
}

// edgesOnly emits a trivially valid single-node edge file placeholder (no
// edges, comment only) so node-side error cases don't trip on edges.
func edgesOnly(string) string { return "# no edges\n" }

func TestLoadCSVNoTrailingNewline(t *testing.T) {
	g, err := loadTestCSV(t, "1,0,0,a\n2,1,1,b", "1,2,1,1")
	if err != nil {
		t.Fatalf("LoadCSV without trailing newline: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestLoadCSVOverlongLine(t *testing.T) {
	long := "1,0,0," + strings.Repeat("k;", maxTextLine)
	_, err := loadTestCSV(t, long, "# none\n")
	if err == nil {
		t.Fatal("overlong record accepted")
	}
	if !errors.Is(err, ErrBadText) {
		t.Errorf("overlong-line error %v does not wrap ErrBadText", err)
	}
}

const okTSV = "# extract\n" +
	"node\t10\t52.5\t13.4\tcafe;jazz\n" +
	"node\t11\t52.6\t13.5\n" +
	"node\t12\t52.7\t13.6\tpark\n" +
	"edge\t10\t11\t1.5\n" +
	"edge\t11\t12\t2\t0.5\n" +
	"edge\t12\t10\t3\n"

func TestLoadOSMTSV(t *testing.T) {
	g, err := LoadOSMTSV(strings.NewReader(okTSV), "extract.tsv")
	if err != nil {
		t.Fatalf("LoadOSMTSV: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
	// Position stores x=lon, y=lat.
	if p := g.Position(0); p.X != 13.4 || p.Y != 52.5 {
		t.Errorf("node 0 position %+v, want lon/lat 13.4/52.5", p)
	}
	// Edge 10→11 has no explicit objective: defaults to length.
	e := g.Out(0)[0]
	if e.Objective != 1.5 || e.Budget != 1.5 {
		t.Errorf("edge 0→1 = %+v, want objective=budget=1.5", e)
	}
	// Edge 11→12 overrides the objective.
	e = g.Out(1)[0]
	if e.Objective != 0.5 || e.Budget != 2 {
		t.Errorf("edge 1→2 = %+v, want objective 0.5 budget 2", e)
	}
}

func TestLoadOSMTSVErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown kind", "way\t1\t2\n", `unknown record kind "way"`},
		{"edge before node", "edge\t1\t2\t1\n", "unknown node id 1"},
		{"bad lat", "node\t1\tnope\t2\n", `bad latitude "nope"`},
		{"truncated", "node\t1\t2\n", "node record needs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadOSMTSV(strings.NewReader(tc.in), "x.tsv")
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, ErrBadText) {
				t.Errorf("error %v does not wrap ErrBadText", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.wantSub)
			}
		})
	}
}

func TestParseErrorTruncatesRecord(t *testing.T) {
	rec := strings.Repeat("x", 500) + ",0"
	_, err := loadTestCSV(t, rec+"\n5,0,0\n", "# none\n")
	if err == nil {
		t.Fatal("want error")
	}
	if len(err.Error()) > 300 {
		t.Errorf("error message not truncated: %d chars", len(err.Error()))
	}
}
