package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"kor/internal/geo"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			want.NumNodes(), want.NumEdges(), got.NumNodes(), got.NumEdges())
	}
	for v := NodeID(0); int(v) < want.NumNodes(); v++ {
		wt, gt := want.Terms(v), got.Terms(v)
		if len(wt) != len(gt) {
			t.Fatalf("node %d terms differ", v)
		}
		for i := range wt {
			if want.Vocab().Name(wt[i]) != got.Vocab().Name(gt[i]) {
				t.Fatalf("node %d term %d differs", v, i)
			}
		}
		we, ge := want.Out(v), got.Out(v)
		if len(we) != len(ge) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("node %d edge %d: %+v vs %+v", v, i, we[i], ge[i])
			}
		}
		if want.Position(v) != got.Position(v) {
			t.Fatalf("node %d position differs", v)
		}
		if want.Name(v) != got.Name(v) {
			t.Fatalf("node %d name differs", v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestSaveLoadWithPositionsAndNames(t *testing.T) {
	b := NewBuilder()
	v0 := b.AddNode("museum")
	v1 := b.AddNode("pub", "jazz")
	if err := b.SetPosition(v0, geo.Point{X: -73.98, Y: 40.75}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPosition(v1, geo.Point{X: -73.96, Y: 40.78}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetName(v0, "MoMA"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(v0, v1, 0.5, 2.25); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	got := roundTrip(t, g)
	assertGraphsEqual(t, g, got)
	if !got.HasPositions() {
		t.Error("positions lost in round trip")
	}
}

func TestSaveLoadEmptyGraph(t *testing.T) {
	g := NewBuilder().MustBuild()
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestSaveLoadRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 40)
		assertGraphsEqual(t, g, roundTrip(t, g))
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load accepted file truncated to %d bytes", cut)
		}
	}
}

// Failure injection: flip a byte anywhere in the payload; Load must reject
// the file (checksum) or at worst return a structurally valid graph when the
// flip is in the trailing CRC itself — never crash.
func TestLoadDetectsCorruption(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rng := rand.New(rand.NewSource(33))
	rejected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		corrupted := append([]byte(nil), full...)
		pos := 4 + rng.Intn(len(full)-4) // keep magic intact: that path is tested above
		corrupted[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := Load(bytes.NewReader(corrupted)); err != nil {
			rejected++
		}
	}
	if rejected < trials*9/10 {
		t.Errorf("only %d/%d corruptions rejected; checksum too weak?", rejected, trials)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte (little-endian u32 after magic)
	if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}
