package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"kor/internal/geo"
)

// randomEdges draws a deterministic edge set over n nodes with no self-loops
// or duplicate (from,to) pairs, in a fixed arrival order.
func randomEdges(rng *rand.Rand, n, m int) [][4]float64 {
	seen := make(map[[2]int]bool)
	var out [][4]float64
	for len(out) < m {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to || seen[[2]int{from, to}] {
			continue
		}
		seen[[2]int{from, to}] = true
		out = append(out, [4]float64{float64(from), float64(to), 0.1 + rng.Float64(), 0.1 + 2*rng.Float64()})
	}
	return out
}

func randomTags(rng *rand.Rand, v int) []string {
	k := rng.Intn(4)
	tags := make([]string, 0, k)
	for i := 0; i < k; i++ {
		tags = append(tags, fmt.Sprintf("tag%02d", rng.Intn(20)))
	}
	return tags
}

// TestStreamBuilderMatchesBuilder pins the compatibility contract the
// StreamBuilder doc comment promises: the same nodes and edges, presented in
// the same arrival order, produce a graph byte-identical in its CSR layout
// to the batch Builder — same fingerprint, same adjacency, same extrema.
func TestStreamBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, m = 60, 240
	tags := make([][]string, n)
	for v := range tags {
		tags[v] = randomTags(rng, v)
	}
	edges := randomEdges(rng, n, m)

	b := NewBuilder()
	for v := 0; v < n; v++ {
		id := b.AddNode(tags[v]...)
		if err := b.SetPosition(id, geo.Point{X: float64(v), Y: float64(-v)}); err != nil {
			t.Fatalf("builder SetPosition: %v", err)
		}
		if v%3 == 0 {
			if err := b.SetName(id, fmt.Sprintf("poi-%d", v)); err != nil {
				t.Fatalf("builder SetName: %v", err)
			}
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(NodeID(e[0]), NodeID(e[1]), e[2], e[3]); err != nil {
			t.Fatalf("builder AddEdge: %v", err)
		}
	}
	want, err := b.Build()
	if err != nil {
		t.Fatalf("builder Build: %v", err)
	}

	sb := NewStreamBuilder(nil)
	for v := 0; v < n; v++ {
		id, err := sb.AddNode(tags[v]...)
		if err != nil {
			t.Fatalf("stream AddNode: %v", err)
		}
		if err := sb.SetPosition(id, geo.Point{X: float64(v), Y: float64(-v)}); err != nil {
			t.Fatalf("stream SetPosition: %v", err)
		}
		if v%3 == 0 {
			if err := sb.SetName(id, fmt.Sprintf("poi-%d", v)); err != nil {
				t.Fatalf("stream SetName: %v", err)
			}
		}
	}
	for _, e := range edges {
		if err := sb.CountEdge(NodeID(e[0]), NodeID(e[1])); err != nil {
			t.Fatalf("CountEdge: %v", err)
		}
	}
	if err := sb.FinishCount(); err != nil {
		t.Fatalf("FinishCount: %v", err)
	}
	for _, e := range edges {
		if err := sb.FillEdge(NodeID(e[0]), NodeID(e[1]), e[2], e[3]); err != nil {
			t.Fatalf("FillEdge: %v", err)
		}
	}
	got, err := sb.Build()
	if err != nil {
		t.Fatalf("stream Build: %v", err)
	}

	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint mismatch: stream %x, batch %x", got.Fingerprint(), want.Fingerprint())
	}
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d nodes/edges",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := NodeID(0); int(v) < n; v++ {
		gOut, wOut := got.Out(v), want.Out(v)
		if len(gOut) != len(wOut) {
			t.Fatalf("node %d: out degree %d vs %d", v, len(gOut), len(wOut))
		}
		for i := range gOut {
			if gOut[i] != wOut[i] {
				t.Fatalf("node %d out[%d]: %+v vs %+v", v, i, gOut[i], wOut[i])
			}
		}
		gIn, wIn := got.In(v), want.In(v)
		if len(gIn) != len(wIn) {
			t.Fatalf("node %d: in degree %d vs %d", v, len(gIn), len(wIn))
		}
		for i := range gIn {
			if gIn[i] != wIn[i] {
				t.Fatalf("node %d in[%d]: %+v vs %+v", v, i, gIn[i], wIn[i])
			}
		}
		gt, wt := got.Terms(v), want.Terms(v)
		if len(gt) != len(wt) {
			t.Fatalf("node %d: %d terms vs %d", v, len(gt), len(wt))
		}
		for i := range gt {
			if gt[i] != wt[i] {
				t.Fatalf("node %d term[%d]: %d vs %d", v, i, gt[i], wt[i])
			}
		}
		if got.Position(v) != want.Position(v) {
			t.Fatalf("node %d position mismatch", v)
		}
		if got.Name(v) != want.Name(v) {
			t.Fatalf("node %d name mismatch", v)
		}
	}
	if got.MinObjective() != want.MinObjective() || got.MaxObjective() != want.MaxObjective() ||
		got.MinBudget() != want.MinBudget() || got.MaxBudget() != want.MaxBudget() {
		t.Fatalf("extrema mismatch")
	}
}

func TestStreamBuilderValidation(t *testing.T) {
	sb := NewStreamBuilder(nil)
	a, _ := sb.AddNode("x")
	b, _ := sb.AddNode()

	if err := sb.CountEdge(a, a); err == nil {
		t.Errorf("self-loop CountEdge accepted")
	}
	if err := sb.CountEdge(a, 99); err == nil {
		t.Errorf("undeclared endpoint accepted")
	}
	if err := sb.FillEdge(a, b, 1, 1); err == nil {
		t.Errorf("FillEdge before FinishCount accepted")
	}
	if err := sb.CountEdge(a, b); err != nil {
		t.Fatalf("CountEdge: %v", err)
	}
	if err := sb.FinishCount(); err != nil {
		t.Fatalf("FinishCount: %v", err)
	}
	if err := sb.FinishCount(); err == nil {
		t.Errorf("double FinishCount accepted")
	}
	if _, err := sb.AddNode("late"); err == nil {
		t.Errorf("AddNode after FinishCount accepted")
	}
	if err := sb.FillEdge(a, b, -1, 1); err == nil {
		t.Errorf("negative objective accepted")
	}
	if _, err := sb.Build(); err == nil {
		t.Errorf("Build with unfilled edges accepted")
	}
	if err := sb.FillEdge(a, b, 1, 2); err != nil {
		t.Fatalf("FillEdge: %v", err)
	}
	if err := sb.FillEdge(a, b, 1, 2); err == nil {
		t.Errorf("overfilling counted degree accepted")
	}
	g, err := sb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestStreamBuilderEdgeless(t *testing.T) {
	sb := NewStreamBuilder(nil)
	if _, err := sb.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	g, err := sb.Build() // Build without FinishCount: implicit empty edge set
	if err != nil {
		t.Fatalf("edgeless Build: %v", err)
	}
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}
