package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMemIndexRoundTrip checks the delta-varint encoding against a naive
// per-term scan of the graph: every list must decode sorted, complete, and
// duplicate-free.
func TestMemIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	const n = 400
	naive := make(map[Term][]NodeID)
	for v := 0; v < n; v++ {
		tags := randomTags(rng, v)
		id := b.AddNode(tags...)
		for _, term := range b.vocabTermsOf(tags) {
			list := naive[term]
			if len(list) == 0 || list[len(list)-1] != id {
				naive[term] = append(list, id)
			}
		}
	}
	g := b.MustBuild()
	idx := NewMemIndex(g)

	if idx.NumNodes() != n {
		t.Fatalf("NumNodes = %d", idx.NumNodes())
	}
	total := 0
	for term, want := range naive {
		got := idx.Postings(term)
		if len(got) != len(want) {
			t.Fatalf("term %d: %d postings, want %d", term, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("term %d posting[%d] = %d, want %d", term, i, got[i], want[i])
			}
		}
		if idx.DocFrequency(term) != len(want) {
			t.Errorf("term %d DocFrequency = %d, want %d", term, idx.DocFrequency(term), len(want))
		}
		total += len(want)
	}
	if idx.NumPostings() != total {
		t.Errorf("NumPostings = %d, want %d", idx.NumPostings(), total)
	}
	// Missing and out-of-range terms are empty, not panics.
	if idx.Postings(-1) != nil || idx.Postings(Term(10_000)) != nil {
		t.Errorf("out-of-range term returned postings")
	}
	if idx.DocFrequency(-1) != 0 {
		t.Errorf("out-of-range DocFrequency nonzero")
	}
}

// vocabTermsOf maps tag names through the builder's vocabulary, dropping
// duplicates within one node the way AddNode does.
func (b *Builder) vocabTermsOf(tags []string) []Term {
	seen := make(map[Term]bool)
	var out []Term
	for _, s := range tags {
		term, ok := b.vocab.Lookup(s)
		if !ok {
			continue
		}
		if !seen[term] {
			seen[term] = true
			out = append(out, term)
		}
	}
	return out
}

// TestMemIndexCompact pins the layout win the varint encoding exists for: on
// a dense tag distribution the blob must stay well under the 4 bytes/posting
// of the old slice-of-NodeID layout.
func TestMemIndexCompact(t *testing.T) {
	b := NewBuilder()
	const n = 2000
	for v := 0; v < n; v++ {
		// Two hot tags on nearly every node: gaps of ~1-2, one varint byte each.
		b.AddNode("hot", fmt.Sprintf("warm%d", v%4))
	}
	g := b.MustBuild()
	idx := NewMemIndex(g)
	perPosting := float64(len(idx.blob)) / float64(idx.NumPostings())
	if perPosting > 2 {
		t.Errorf("dense lists encode at %.2f bytes/posting, want ≤ 2", perPosting)
	}
	if idx.FootprintBytes() <= 0 {
		t.Errorf("FootprintBytes = %d", idx.FootprintBytes())
	}
}

func TestMemFootprint(t *testing.T) {
	g := buildDiamond(t)
	f := g.MemFootprint()
	if f.Nodes != 4 || f.Edges != 5 {
		t.Fatalf("footprint shape %d/%d", f.Nodes, f.Edges)
	}
	if f.EdgeBytes != int64(2*5*edgeSize) {
		t.Errorf("EdgeBytes = %d, want %d", f.EdgeBytes, 2*5*edgeSize)
	}
	sum := f.EdgeBytes + f.HeadBytes + f.TermBytes + f.PosBytes + f.NameBytes + f.VocabBytes
	if f.TotalBytes != sum {
		t.Errorf("TotalBytes %d != component sum %d", f.TotalBytes, sum)
	}
	if f.BytesPerNode() <= 0 {
		t.Errorf("BytesPerNode = %v", f.BytesPerNode())
	}
	if f.String() == "" {
		t.Error("empty String()")
	}
}
