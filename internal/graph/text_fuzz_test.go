package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzTextGraph feeds arbitrary bytes through both text ingestion paths: the
// parsers must never panic, every rejection must be a located ParseError
// wrapping ErrBadText (I/O plumbing errors are impossible on an in-memory
// reader), and anything accepted must be a consistent graph that survives a
// binary round-trip.
func FuzzTextGraph(f *testing.F) {
	f.Add([]byte("1,0,0,cafe;jazz\n2,1,1,park\n"), []byte("1,2,1,2\n2,1,3,1\n"))
	f.Add([]byte("id,x,y\n7,0.5,-2\n"), []byte("from,to,objective,budget\n"))
	f.Add([]byte("node\t1\t52.5\t13.4\tcafe\nnode\t2\t52.6\t13.5\nedge\t1\t2\t1.5\n"), []byte{})
	f.Add([]byte("# comment\n\n1,0,0\n"), []byte("1,1,1,1\n"))
	f.Add([]byte("1,NaN,Inf\n"), []byte("1,2,-1,0\n"))
	f.Add([]byte{}, []byte{})

	check := func(t *testing.T, g *Graph, err error) {
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) || !errors.Is(err, ErrBadText) {
				t.Fatalf("rejection is not a located ParseError: %#v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := g.Save(&out); err != nil {
			t.Fatalf("accepted graph failed to save: %v", err)
		}
		g2, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatal("round trip changed the fingerprint")
		}
	}

	f.Fuzz(func(t *testing.T, nodes, edges []byte) {
		g, err := LoadCSV(strings.NewReader(string(nodes)), "n.csv", strings.NewReader(string(edges)), "e.csv")
		check(t, g, err)
		// The node bytes double as a TSV candidate; edge bytes are appended
		// so the single-file path sees both record kinds.
		tsv := string(nodes) + "\n" + string(edges)
		g, err = LoadOSMTSV(strings.NewReader(tsv), "x.tsv")
		check(t, g, err)
	})
}
