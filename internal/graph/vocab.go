package graph

// Vocabulary interns keyword strings as dense Term identifiers. The KOR
// data path never compares strings after ingest: node keyword sets, query
// keyword sets and inverted-file postings all speak Terms.
//
// The zero value is an empty vocabulary ready to use.
type Vocabulary struct {
	byName map[string]Term
	names  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary { return &Vocabulary{} }

// Intern returns the term for name, assigning the next free Term when the
// name is new.
func (v *Vocabulary) Intern(name string) Term {
	if t, ok := v.byName[name]; ok {
		return t
	}
	if v.byName == nil {
		v.byName = make(map[string]Term)
	}
	t := Term(len(v.names))
	v.byName[name] = t
	v.names = append(v.names, name)
	return t
}

// clone returns an independent copy, preserving Term numbering. Apply uses
// it for copy-on-write: a live-updated graph must not intern into a
// vocabulary that in-flight queries are reading.
func (v *Vocabulary) clone() *Vocabulary {
	out := &Vocabulary{
		byName: make(map[string]Term, len(v.byName)),
		names:  append([]string(nil), v.names...),
	}
	for name, t := range v.byName {
		out.byName[name] = t
	}
	return out
}

// Lookup returns the term for name without interning.
func (v *Vocabulary) Lookup(name string) (Term, bool) {
	t, ok := v.byName[name]
	return t, ok
}

// Name returns the string form of t, or "" for an unknown term.
func (v *Vocabulary) Name(t Term) string {
	if t < 0 || int(t) >= len(v.names) {
		return ""
	}
	return v.names[t]
}

// Len returns the number of distinct terms.
func (v *Vocabulary) Len() int { return len(v.names) }

// Names returns all interned names indexed by Term. The returned slice
// aliases vocabulary storage and must not be modified.
func (v *Vocabulary) Names() []string { return v.names }
