package graph

// PostingSource supplies, for a keyword term, the nodes whose keyword sets
// contain it. The route-search algorithms consult it to seed the greedy
// candidate set, to find the nodes of infrequent query keywords
// (optimization strategy 2) and to build per-query coverage masks. Both the
// in-memory index below and the disk-resident inverted file satisfy it.
type PostingSource interface {
	// Postings returns the sorted node IDs carrying term t. The result must
	// be treated as read-only. A missing term yields an empty slice.
	Postings(t Term) []NodeID
	// DocFrequency returns the number of nodes carrying term t.
	DocFrequency(t Term) int
}

// MemIndex is an in-memory inverted index over a graph's node keywords.
// It is immutable after NewMemIndex and therefore safe for concurrent use.
type MemIndex struct {
	postings map[Term][]NodeID
	numNodes int
}

// NewMemIndex builds the index in one scan of the graph.
func NewMemIndex(g *Graph) *MemIndex {
	idx := &MemIndex{postings: make(map[Term][]NodeID), numNodes: g.NumNodes()}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, t := range g.Terms(v) {
			idx.postings[t] = append(idx.postings[t], v)
		}
	}
	return idx
}

// Postings returns the sorted node IDs carrying term t.
func (idx *MemIndex) Postings(t Term) []NodeID { return idx.postings[t] }

// DocFrequency returns the number of nodes carrying term t.
func (idx *MemIndex) DocFrequency(t Term) int { return len(idx.postings[t]) }

// NumNodes returns the node count of the indexed graph, the denominator of
// the paper's infrequent-word threshold ("appearing in less than 1% nodes").
func (idx *MemIndex) NumNodes() int { return idx.numNodes }
