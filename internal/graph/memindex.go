package graph

import "encoding/binary"

// PostingSource supplies, for a keyword term, the nodes whose keyword sets
// contain it. The route-search algorithms consult it to seed the greedy
// candidate set, to find the nodes of infrequent query keywords
// (optimization strategy 2) and to build per-query coverage masks. Both the
// in-memory index below and the disk-resident inverted file satisfy it.
type PostingSource interface {
	// Postings returns the sorted node IDs carrying term t. The result must
	// be treated as read-only. A missing term yields an empty slice.
	Postings(t Term) []NodeID
	// DocFrequency returns the number of nodes carrying term t.
	DocFrequency(t Term) int
}

// MemIndex is an in-memory inverted index over a graph's node keywords.
// Posting lists are stored delta-encoded as varints in one contiguous blob —
// node IDs within a list are strictly increasing, so the gaps are small and
// most postings cost one or two bytes instead of the four bytes plus map and
// slice-header overhead of the naive map[Term][]NodeID layout. Postings
// decodes on demand; DocFrequency is O(1) from a side table.
//
// MemIndex is immutable after NewMemIndex and therefore safe for concurrent
// use.
type MemIndex struct {
	offsets  []uint32 // byte offset of term t's list in blob; len = terms+1
	counts   []int32  // doc frequency per term
	blob     []byte   // delta-varint encoded posting lists
	numNodes int
}

// NewMemIndex builds the index in two scans of the graph: one to size the
// per-term lists, one to encode them. Peak memory during the build is one
// int32 cursor per term plus the finished blob.
func NewMemIndex(g *Graph) *MemIndex {
	terms := g.vocab.Len()
	idx := &MemIndex{
		offsets:  make([]uint32, terms+1),
		counts:   make([]int32, terms),
		numNodes: g.NumNodes(),
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, t := range g.Terms(v) {
			idx.counts[t]++
		}
	}

	// Group postings per term with a counting sort into one temporary
	// NodeID array; iterating nodes in order keeps every list sorted.
	heads := make([]int32, terms+1)
	for t, c := range idx.counts {
		heads[t+1] = heads[t] + c
	}
	flat := make([]NodeID, heads[terms])
	cursor := make([]int32, terms)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, t := range g.Terms(v) {
			flat[heads[t]+cursor[t]] = v
			cursor[t]++
		}
	}

	// Encode each list as first-id, then gaps. Gaps are ≥ 1 (IDs strictly
	// increase: a node carries a term at most once), stored as gap-1 so the
	// densest possible list — every node — still encodes one byte per entry.
	var buf [binary.MaxVarintLen64]byte
	blob := make([]byte, 0, heads[terms]) // ≈1 byte per posting on dense lists
	for t := 0; t < terms; t++ {
		idx.offsets[t] = uint32(len(blob))
		list := flat[heads[t]:heads[t+1]]
		prev := NodeID(-1)
		for i, v := range list {
			delta := uint64(v - prev)
			if i > 0 {
				delta-- // gap-1
			}
			blob = append(blob, buf[:binary.PutUvarint(buf[:], delta)]...)
			prev = v
		}
	}
	idx.offsets[terms] = uint32(len(blob))
	idx.blob = blob
	return idx
}

// Postings returns the sorted node IDs carrying term t, decoded into a
// fresh slice the caller owns.
func (idx *MemIndex) Postings(t Term) []NodeID {
	if t < 0 || int(t) >= len(idx.counts) || idx.counts[t] == 0 {
		return nil
	}
	out := make([]NodeID, 0, idx.counts[t])
	enc := idx.blob[idx.offsets[t]:idx.offsets[t+1]]
	v := NodeID(-1)
	for len(enc) > 0 {
		delta, n := binary.Uvarint(enc)
		enc = enc[n:]
		if len(out) > 0 {
			delta++ // gaps were stored as gap-1
		}
		v += NodeID(delta)
		out = append(out, v)
	}
	return out
}

// DocFrequency returns the number of nodes carrying term t.
func (idx *MemIndex) DocFrequency(t Term) int {
	if t < 0 || int(t) >= len(idx.counts) {
		return 0
	}
	return int(idx.counts[t])
}

// NumNodes returns the node count of the indexed graph, the denominator of
// the paper's infrequent-word threshold ("appearing in less than 1% nodes").
func (idx *MemIndex) NumNodes() int { return idx.numNodes }

// NumPostings returns the total posting count across every term.
func (idx *MemIndex) NumPostings() int {
	total := 0
	for _, c := range idx.counts {
		total += int(c)
	}
	return total
}

// FootprintBytes returns the resident size of the index's storage arrays.
func (idx *MemIndex) FootprintBytes() int64 {
	return int64(len(idx.blob)) + int64(len(idx.offsets))*4 + int64(len(idx.counts))*4
}
