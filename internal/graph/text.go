package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kor/internal/geo"
)

// Text graph formats. Two ingestion shapes cover the real-world datasets the
// paper evaluates on (road networks, POI extracts):
//
//   - CSV, two files. Node records are "id,x,y,keywords" with keywords an
//     optional ;-separated list; edge records are "from,to,objective,budget".
//     A header line is skipped when its first field is not a number.
//   - OSM-extract TSV, one file. Tab-separated records tagged by kind:
//     "node<TAB>id<TAB>lat<TAB>lon[<TAB>keywords]" and
//     "edge<TAB>from<TAB>to<TAB>length[<TAB>objective]". The edge budget is
//     the length; the objective defaults to the length when absent (pure
//     shortest-distance extracts carry no popularity signal). Every edge
//     must appear after both its endpoints, which OSM extracts (nodes first,
//     then ways) satisfy naturally.
//
// Node IDs are arbitrary int64s (OSM IDs are sparse); the loader assigns
// dense NodeIDs in file order and interns keywords straight into the
// vocabulary — per-node keyword strings are never retained. Blank lines and
// lines starting with '#' are skipped in both formats.
//
// Loading is two-pass over seekable input (pass one declares nodes and
// counts edge degrees, pass two fills the CSR in place — see StreamBuilder),
// so peak memory is the finished graph plus the id-remap table.

// ErrBadText reports a malformed text graph record. Every parse failure
// wraps it and is an *ParseError carrying file, line and the offending
// record.
var ErrBadText = errors.New("graph: bad text record")

// ParseError locates a text-ingestion failure: the file and line it
// occurred on and the record that triggered it, so a million-line ingest
// fails with something actionable instead of a bare message.
type ParseError struct {
	File   string // input name as given by the caller
	Line   int    // 1-based line number
	Record string // the offending line, truncated for display
	Msg    string // what was wrong
}

func (e *ParseError) Error() string {
	if e.Record == "" {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s:%d: %s (record %q)", e.File, e.Line, e.Msg, e.Record)
}

// Unwrap ties every ParseError to ErrBadText for errors.Is classification.
func (e *ParseError) Unwrap() error { return ErrBadText }

// parseErrf builds a located error, truncating long records.
func parseErrf(file string, line int, record, format string, args ...any) error {
	const maxRecord = 120
	if len(record) > maxRecord {
		record = record[:maxRecord] + "…"
	}
	return &ParseError{File: file, Line: line, Record: record, Msg: fmt.Sprintf(format, args...)}
}

// textScanner walks a text input line by line, tracking the line number and
// skipping blanks and '#' comments.
type textScanner struct {
	sc   *bufio.Scanner
	file string
	line int
}

// maxTextLine bounds one record; a keyword list has no business being
// longer, and the bound keeps a corrupt file from buffering unbounded.
const maxTextLine = 1 << 20

func newTextScanner(r io.Reader, file string) *textScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTextLine)
	return &textScanner{sc: sc, file: file}
}

// next returns the next non-blank, non-comment line. ok is false at EOF or
// on a read error (reported by err()).
func (s *textScanner) next() (string, bool) {
	for s.sc.Scan() {
		s.line++
		t := strings.TrimSpace(s.sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		return t, true
	}
	return "", false
}

func (s *textScanner) err() error {
	if err := s.sc.Err(); err != nil {
		return parseErrf(s.file, s.line+1, "", "reading input: %v", err)
	}
	return nil
}

// idTable remaps sparse external int64 IDs to dense NodeIDs.
type idTable map[int64]NodeID

func (t idTable) resolve(file string, line int, record string, ext int64) (NodeID, error) {
	id, ok := t[ext]
	if !ok {
		return 0, parseErrf(file, line, record, "edge references unknown node id %d (nodes must precede the edges that use them)", ext)
	}
	return id, nil
}

// splitKeywords splits a ;-separated keyword list, dropping empties.
func splitKeywords(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ";")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// LoadCSV ingests the two-file CSV shape. nodesName and edgesName label the
// inputs in errors. Both readers must be seekable: the edge input is read
// twice (degree count, then CSR fill).
func LoadCSV(nodes io.ReadSeeker, nodesName string, edges io.ReadSeeker, edgesName string) (*Graph, error) {
	sb := NewStreamBuilder(nil)
	ids := make(idTable)

	// Pass over the node file: declare every node.
	sc := newTextScanner(nodes, nodesName)
	for {
		rec, ok := sc.next()
		if !ok {
			break
		}
		if err := csvNode(sb, ids, sc.file, sc.line, rec); err != nil {
			return nil, err
		}
	}
	if err := sc.err(); err != nil {
		return nil, err
	}

	// Edge pass one: count degrees.
	sc = newTextScanner(edges, edgesName)
	for {
		rec, ok := sc.next()
		if !ok {
			break
		}
		if err := csvEdge(sb, ids, sc.file, sc.line, rec, false); err != nil {
			return nil, err
		}
	}
	if err := sc.err(); err != nil {
		return nil, err
	}
	if err := sb.FinishCount(); err != nil {
		return nil, err
	}

	// Edge pass two: fill in place.
	if _, err := edges.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: rewinding %s for the fill pass: %w", edgesName, err)
	}
	sc = newTextScanner(edges, edgesName)
	for {
		rec, ok := sc.next()
		if !ok {
			break
		}
		if err := csvEdge(sb, ids, sc.file, sc.line, rec, true); err != nil {
			return nil, err
		}
	}
	if err := sc.err(); err != nil {
		return nil, err
	}
	return sb.Build()
}

// csvNode parses one "id,x,y,keywords" record. Line 1 may be a header.
func csvNode(sb *StreamBuilder, ids idTable, file string, line int, rec string) error {
	fields := strings.SplitN(rec, ",", 4)
	if len(fields) < 3 {
		return parseErrf(file, line, rec, "node record needs id,x,y[,keywords], got %d field(s)", len(fields))
	}
	ext, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		if line == 1 {
			return nil // header row
		}
		return parseErrf(file, line, rec, "bad node id %q", fields[0])
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
	if err != nil {
		return parseErrf(file, line, rec, "bad x coordinate %q", fields[1])
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
	if err != nil {
		return parseErrf(file, line, rec, "bad y coordinate %q", fields[2])
	}
	if _, dup := ids[ext]; dup {
		return parseErrf(file, line, rec, "duplicate node id %d", ext)
	}
	var kws []string
	if len(fields) == 4 {
		kws = splitKeywords(fields[3])
	}
	v, err := sb.AddNode(kws...)
	if err != nil {
		return parseErrf(file, line, rec, "%v", err)
	}
	ids[ext] = v
	return sb.SetPosition(v, geo.Point{X: x, Y: y})
}

// csvEdge parses one "from,to,objective,budget" record, counting (pass one)
// or filling (pass two). Attribute values are validated in the fill pass so
// their failure carries this record's location.
func csvEdge(sb *StreamBuilder, ids idTable, file string, line int, rec string, fill bool) error {
	fields := strings.Split(rec, ",")
	if len(fields) != 4 {
		return parseErrf(file, line, rec, "edge record needs from,to,objective,budget, got %d field(s)", len(fields))
	}
	extFrom, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		if line == 1 {
			return nil // header row
		}
		return parseErrf(file, line, rec, "bad edge source id %q", fields[0])
	}
	extTo, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return parseErrf(file, line, rec, "bad edge target id %q", fields[1])
	}
	from, err := ids.resolve(file, line, rec, extFrom)
	if err != nil {
		return err
	}
	to, err := ids.resolve(file, line, rec, extTo)
	if err != nil {
		return err
	}
	if !fill {
		if err := sb.CountEdge(from, to); err != nil {
			return parseErrf(file, line, rec, "%v", err)
		}
		return nil
	}
	obj, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
	if err != nil {
		return parseErrf(file, line, rec, "bad edge objective %q", fields[2])
	}
	bud, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
	if err != nil {
		return parseErrf(file, line, rec, "bad edge budget %q", fields[3])
	}
	if err := sb.FillEdge(from, to, obj, bud); err != nil {
		return parseErrf(file, line, rec, "%v", err)
	}
	return nil
}

// LoadOSMTSV ingests the single-file OSM-extract TSV shape. The input must
// be seekable: edge records are read twice.
func LoadOSMTSV(r io.ReadSeeker, name string) (*Graph, error) {
	sb := NewStreamBuilder(nil)
	ids := make(idTable)

	sc := newTextScanner(r, name)
	for {
		rec, ok := sc.next()
		if !ok {
			break
		}
		if err := osmRecord(sb, ids, sc.file, sc.line, rec, false); err != nil {
			return nil, err
		}
	}
	if err := sc.err(); err != nil {
		return nil, err
	}
	if err := sb.FinishCount(); err != nil {
		return nil, err
	}

	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: rewinding %s for the fill pass: %w", name, err)
	}
	sc = newTextScanner(r, name)
	for {
		rec, ok := sc.next()
		if !ok {
			break
		}
		if err := osmRecord(sb, ids, sc.file, sc.line, rec, true); err != nil {
			return nil, err
		}
	}
	if err := sc.err(); err != nil {
		return nil, err
	}
	return sb.Build()
}

// osmRecord dispatches one TSV record. In the fill pass node records are
// skipped (they were fully handled in pass one) and edge records fill.
func osmRecord(sb *StreamBuilder, ids idTable, file string, line int, rec string, fill bool) error {
	fields := strings.Split(rec, "\t")
	switch fields[0] {
	case "node":
		if fill {
			return nil
		}
		if len(fields) < 4 || len(fields) > 5 {
			return parseErrf(file, line, rec, "node record needs node<TAB>id<TAB>lat<TAB>lon[<TAB>keywords], got %d field(s)", len(fields))
		}
		ext, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad node id %q", fields[1])
		}
		lat, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad latitude %q", fields[2])
		}
		lon, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad longitude %q", fields[3])
		}
		if _, dup := ids[ext]; dup {
			return parseErrf(file, line, rec, "duplicate node id %d", ext)
		}
		var kws []string
		if len(fields) == 5 {
			kws = splitKeywords(fields[4])
		}
		v, err := sb.AddNode(kws...)
		if err != nil {
			return parseErrf(file, line, rec, "%v", err)
		}
		ids[ext] = v
		// Store as (x=lon, y=lat): geo.Point is planar with x horizontal.
		return sb.SetPosition(v, geo.Point{X: lon, Y: lat})
	case "edge":
		if len(fields) < 4 || len(fields) > 5 {
			return parseErrf(file, line, rec, "edge record needs edge<TAB>from<TAB>to<TAB>length[<TAB>objective], got %d field(s)", len(fields))
		}
		extFrom, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad edge source id %q", fields[1])
		}
		extTo, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad edge target id %q", fields[2])
		}
		from, err := ids.resolve(file, line, rec, extFrom)
		if err != nil {
			return err
		}
		to, err := ids.resolve(file, line, rec, extTo)
		if err != nil {
			return err
		}
		if !fill {
			if err := sb.CountEdge(from, to); err != nil {
				return parseErrf(file, line, rec, "%v", err)
			}
			return nil
		}
		length, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return parseErrf(file, line, rec, "bad edge length %q", fields[3])
		}
		obj := length
		if len(fields) == 5 {
			if obj, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return parseErrf(file, line, rec, "bad edge objective %q", fields[4])
			}
		}
		if err := sb.FillEdge(from, to, obj, length); err != nil {
			return parseErrf(file, line, rec, "%v", err)
		}
		return nil
	default:
		return parseErrf(file, line, rec, "unknown record kind %q (want node or edge)", fields[0])
	}
}
