// Package graph implements the directed, doubly-attributed graph the KOR
// query is defined over (Definition 1 of the paper).
//
// Each node represents a location and carries a set of keywords; each edge
// carries two non-negative attributes: an objective value o(vi,vj) — the
// quantity the query minimizes, e.g. the negated log-popularity of the hop —
// and a budget value b(vi,vj) — the quantity the query constrains, e.g.
// travel distance.
//
// The graph is immutable after construction (see Builder) and stored in
// compressed sparse row form, forward and reverse. The reverse adjacency is
// what lets the shortest-path oracles run single-target Dijkstra, which the
// route-search algorithms depend on for their τ/σ pruning bounds.
package graph

import (
	"math"
	"sync/atomic"

	"kor/internal/geo"
)

// NodeID identifies a node. IDs are dense, starting at 0, in insertion order.
type NodeID int32

// Term identifies a keyword interned in a Vocabulary.
type Term int32

// Edge is one directed edge as seen from a fixed endpoint. In a forward
// adjacency list To is the head (target) of the edge; in a reverse adjacency
// list To is the tail (source).
type Edge struct {
	To        NodeID
	Objective float64
	Budget    float64
}

// Graph is an immutable directed graph with per-node keyword sets and
// per-edge (objective, budget) attributes. Construct one with a Builder or
// Load.
type Graph struct {
	vocab *Vocabulary

	// forward CSR
	outHead  []int32
	outEdges []Edge
	// reverse CSR
	inHead  []int32
	inEdges []Edge

	// terms holds each node's sorted keyword terms; termHead is its CSR
	// offset array.
	termHead []int32
	terms    []Term

	pos   []geo.Point // nil when the graph has no coordinates
	names []string    // nil when the graph has no display names

	minObjective float64
	minBudget    float64
	maxObjective float64
	maxBudget    float64

	// fp caches Fingerprint's digest; 0 means not yet computed.
	fp atomic.Uint64
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.outHead) - 1 }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.outEdges) }

// Valid reports whether v is a node of this graph.
func (g *Graph) Valid(v NodeID) bool { return v >= 0 && int(v) < g.NumNodes() }

// Out returns the outgoing edges of v. The returned slice aliases graph
// storage and must not be modified.
func (g *Graph) Out(v NodeID) []Edge {
	return g.outEdges[g.outHead[v]:g.outHead[v+1]]
}

// In returns the incoming edges of v, with Edge.To holding the source node.
// The returned slice aliases graph storage and must not be modified.
func (g *Graph) In(v NodeID) []Edge {
	return g.inEdges[g.inHead[v]:g.inHead[v+1]]
}

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.outHead[v+1] - g.outHead[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int { return int(g.inHead[v+1] - g.inHead[v]) }

// Terms returns the sorted keyword terms of v. The returned slice aliases
// graph storage and must not be modified.
func (g *Graph) Terms(v NodeID) []Term {
	return g.terms[g.termHead[v]:g.termHead[v+1]]
}

// HasTerm reports whether node v carries keyword t.
func (g *Graph) HasTerm(v NodeID, t Term) bool {
	ts := g.Terms(v)
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ts) && ts[lo] == t
}

// Vocab returns the vocabulary the node keywords are interned in.
func (g *Graph) Vocab() *Vocabulary { return g.vocab }

// HasPositions reports whether nodes carry coordinates.
func (g *Graph) HasPositions() bool { return g.pos != nil }

// Position returns the coordinates of v. It returns the zero Point when the
// graph carries no positions.
func (g *Graph) Position(v NodeID) geo.Point {
	if g.pos == nil {
		return geo.Point{}
	}
	return g.pos[v]
}

// Name returns the display name of v, or "" when names are absent.
func (g *Graph) Name(v NodeID) string {
	if g.names == nil {
		return ""
	}
	return g.names[v]
}

// MinObjective returns the smallest edge objective value (o_min in the
// paper's scaling factor θ = ε·o_min·b_min/Δ). It is 0 for an edgeless graph.
func (g *Graph) MinObjective() float64 { return g.minObjective }

// MinBudget returns the smallest edge budget value (b_min). It is 0 for an
// edgeless graph.
func (g *Graph) MinBudget() float64 { return g.minBudget }

// MaxObjective returns the largest edge objective value (o_max in Lemma 1).
func (g *Graph) MaxObjective() float64 { return g.maxObjective }

// MaxBudget returns the largest edge budget value.
func (g *Graph) MaxBudget() float64 { return g.maxBudget }

// Fingerprint returns a deterministic 64-bit digest of the graph's
// structure, attributes and keyword assignment. Two graphs with the same
// fingerprint answer every KOR query identically for caching purposes. The
// digest is computed once on first call (the graph is immutable) and is
// never zero.
func (g *Graph) Fingerprint() uint64 {
	if fp := g.fp.Load(); fp != 0 {
		return fp
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(g.NumNodes()))
	mix(uint64(g.NumEdges()))
	for v := 0; v < g.NumNodes(); v++ {
		mix(uint64(g.outHead[v+1]))
		for _, e := range g.Out(NodeID(v)) {
			mix(uint64(uint32(e.To)))
			mix(math.Float64bits(e.Objective))
			mix(math.Float64bits(e.Budget))
		}
		mix(uint64(g.termHead[v+1]))
		for _, t := range g.Terms(NodeID(v)) {
			mix(uint64(uint32(t)))
		}
	}
	if h == 0 {
		h = 1 // keep 0 as the "not yet computed" sentinel
	}
	g.fp.Store(h) // idempotent: every computation yields the same digest
	return h
}
