package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// deltaFixture builds a small graph with positions, names and a few
// keywords, returning it alongside its builder for reference rebuilds.
func deltaFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("hotel")          // 0
	b.AddNode("cafe", "jazz")   // 1
	b.AddNode("park")           // 2
	b.AddNode("museum", "jazz") // 3
	edges := []struct {
		from, to NodeID
		o, c     float64
	}{
		{0, 1, 0.7, 1.2}, {1, 2, 0.3, 0.8}, {2, 0, 0.5, 1.0},
		{0, 3, 0.9, 0.9}, {3, 2, 0.4, 1.1},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if err := b.SetName(0, "Grand Hotel"); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

// snapshotEdges captures every out-edge of g for later mutation checks.
func snapshotEdges(g *Graph) []Edge {
	return append([]Edge(nil), g.outEdges...)
}

// checkCSRMirror verifies the reverse CSR is an exact mirror of the forward
// one — every out-edge appears as an in-edge with matching attributes.
func checkCSRMirror(t *testing.T, g *Graph) {
	t.Helper()
	if len(g.outEdges) != len(g.inEdges) {
		t.Fatalf("edge arrays disagree: %d out vs %d in", len(g.outEdges), len(g.inEdges))
	}
	type rec struct {
		from, to NodeID
		o, c     float64
	}
	count := make(map[rec]int)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(NodeID(v)) {
			count[rec{NodeID(v), e.To, e.Objective, e.Budget}]++
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.In(NodeID(v)) {
			count[rec{e.To, NodeID(v), e.Objective, e.Budget}]--
		}
	}
	for r, c := range count {
		if c != 0 {
			t.Fatalf("CSR mirror broken at %+v (count %d)", r, c)
		}
	}
}

func TestApplyEmptyDeltaReturnsSameGraph(t *testing.T) {
	g := deltaFixture(t)
	g2, err := g.Apply(Delta{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g2 != g {
		t.Fatal("empty delta did not return the same graph")
	}
}

func TestApplyUpdateEdgeSharesUntouchedStorage(t *testing.T) {
	g := deltaFixture(t)
	before := snapshotEdges(g)
	fpBefore := g.Fingerprint()

	g2, err := g.Apply(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 2.5, Budget: 0.1}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// The new graph sees the new attributes, forward and reverse.
	found := false
	for _, e := range g2.Out(0) {
		if e.To == 1 {
			found = true
			if e.Objective != 2.5 || e.Budget != 0.1 {
				t.Fatalf("updated edge = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("edge 0→1 missing after update")
	}
	for _, e := range g2.In(1) {
		if e.To == 0 && (e.Objective != 2.5 || e.Budget != 0.1) {
			t.Fatalf("reverse edge not updated: %+v", e)
		}
	}

	// The old graph is untouched.
	for i, e := range g.outEdges {
		if e != before[i] {
			t.Fatalf("source graph mutated at edge %d: %+v vs %+v", i, e, before[i])
		}
	}
	if g.Fingerprint() != fpBefore {
		t.Fatal("source fingerprint changed")
	}
	if g2.Fingerprint() == fpBefore {
		t.Fatal("updated graph kept the old fingerprint")
	}

	// Unchanged storage is shared: vocab, keyword CSR, CSR heads, names.
	if g2.vocab != g.vocab {
		t.Error("vocabulary not shared on an attr-only delta")
	}
	if &g2.terms[0] != &g.terms[0] || &g2.termHead[0] != &g.termHead[0] {
		t.Error("keyword CSR not shared on an attr-only delta")
	}
	if &g2.outHead[0] != &g.outHead[0] || &g2.inHead[0] != &g.inHead[0] {
		t.Error("CSR head arrays not shared on an attr-only delta")
	}
	if &g2.names[0] != &g.names[0] {
		t.Error("names not shared")
	}

	// Extrema recomputed: 0.1 is the new minimum budget, 2.5 the new max
	// objective.
	if g2.MinBudget() != 0.1 || g2.MaxObjective() != 2.5 {
		t.Errorf("extrema = obj[%v,%v] bud[%v,%v]", g2.MinObjective(), g2.MaxObjective(), g2.MinBudget(), g2.MaxBudget())
	}
	checkCSRMirror(t, g2)
}

func TestApplyKeywordPatchesShareEdgeStorage(t *testing.T) {
	g := deltaFixture(t)
	fpBefore := g.Fingerprint()
	g2, err := g.Apply(Delta{
		AddKeywords:    []KeywordPatch{{Node: 2, Keywords: []string{"jazz", "fountain"}}},
		RemoveKeywords: []KeywordPatch{{Node: 1, Keywords: []string{"jazz"}}},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	jazz, ok := g2.Vocab().Lookup("jazz")
	if !ok {
		t.Fatal("jazz vanished from the vocabulary")
	}
	if !g2.HasTerm(2, jazz) || g2.HasTerm(1, jazz) {
		t.Fatalf("keyword patch not applied: node2=%v node1=%v", g2.Terms(2), g2.Terms(1))
	}
	fountain, ok := g2.Vocab().Lookup("fountain")
	if !ok || !g2.HasTerm(2, fountain) {
		t.Fatal("new keyword fountain not interned onto node 2")
	}

	// The source graph and its vocabulary are untouched (copy-on-write).
	if _, ok := g.Vocab().Lookup("fountain"); ok {
		t.Fatal("new keyword leaked into the source vocabulary")
	}
	oldJazz, _ := g.Vocab().Lookup("jazz")
	if !g.HasTerm(1, oldJazz) {
		t.Fatal("source graph keywords mutated")
	}
	if g.Fingerprint() != fpBefore {
		t.Fatal("source fingerprint changed")
	}
	if g2.Fingerprint() == fpBefore {
		t.Fatal("keyword change kept the old fingerprint")
	}

	// Edge storage is fully shared on a keyword-only delta.
	if &g2.outEdges[0] != &g.outEdges[0] || &g2.inEdges[0] != &g.inEdges[0] {
		t.Error("edge arrays not shared on a keyword-only delta")
	}
	if g2.MinObjective() != g.MinObjective() || g2.MaxBudget() != g.MaxBudget() {
		t.Error("extrema changed on a keyword-only delta")
	}
}

func TestApplyAddKeywordSharedVocabWhenInterned(t *testing.T) {
	g := deltaFixture(t)
	// "park" is already interned, so the vocabulary can be shared.
	g2, err := g.Apply(Delta{AddKeywords: []KeywordPatch{{Node: 0, Keywords: []string{"park"}}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g2.vocab != g.vocab {
		t.Error("vocabulary cloned although no new keyword was interned")
	}
	// Idempotence: re-adding a carried keyword is a no-op.
	g3, err := g2.Apply(Delta{AddKeywords: []KeywordPatch{{Node: 0, Keywords: []string{"park"}}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g3.Fingerprint() != g2.Fingerprint() {
		t.Error("re-adding a carried keyword changed the fingerprint")
	}
}

func TestApplyTopologyChange(t *testing.T) {
	g := deltaFixture(t)
	g2, err := g.Apply(Delta{
		AddEdges:    []EdgePatch{{From: 2, To: 3, Objective: 0.2, Budget: 0.3}},
		RemoveEdges: []EdgeRef{{From: 0, To: 3}},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range g2.Out(0) {
		if e.To == 3 {
			t.Fatal("removed edge 0→3 still present")
		}
	}
	found := false
	for _, e := range g2.Out(2) {
		if e.To == 3 {
			found = true
			if e.Objective != 0.2 || e.Budget != 0.3 {
				t.Fatalf("added edge = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("added edge 2→3 missing")
	}
	// Keyword CSR shared; extrema recomputed (0.2/0.3 are new minima).
	if &g2.terms[0] != &g.terms[0] {
		t.Error("keyword CSR not shared on an edge-only delta")
	}
	if g2.MinObjective() != 0.2 || g2.MinBudget() != 0.3 {
		t.Errorf("extrema = %v/%v", g2.MinObjective(), g2.MinBudget())
	}
	checkCSRMirror(t, g2)

	// Replace = remove + add of the same pair in one delta.
	g3, err := g2.Apply(Delta{
		RemoveEdges: []EdgeRef{{From: 2, To: 3}},
		AddEdges:    []EdgePatch{{From: 2, To: 3, Objective: 5, Budget: 6}},
	})
	if err != nil {
		t.Fatalf("Apply replace: %v", err)
	}
	n := 0
	for _, e := range g3.Out(2) {
		if e.To == 3 {
			n++
			if e.Objective != 5 || e.Budget != 6 {
				t.Fatalf("replaced edge = %+v", e)
			}
		}
	}
	if n != 1 {
		t.Fatalf("replace left %d copies of 2→3", n)
	}
	checkCSRMirror(t, g3)
}

func TestApplyValidation(t *testing.T) {
	g := deltaFixture(t)
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"unknown node keywords", Delta{AddKeywords: []KeywordPatch{{Node: 9, Keywords: []string{"x"}}}}, "no such node"},
		{"unknown node edge", Delta{AddEdges: []EdgePatch{{From: 0, To: 42, Objective: 1, Budget: 1}}}, "no such node"},
		{"update missing edge", Delta{UpdateEdges: []EdgePatch{{From: 1, To: 0, Objective: 1, Budget: 1}}}, "no such edge"},
		{"remove missing edge", Delta{RemoveEdges: []EdgeRef{{From: 1, To: 0}}}, "no such edge"},
		{"duplicate add", Delta{AddEdges: []EdgePatch{{From: 0, To: 1, Objective: 1, Budget: 1}}}, "edge exists"},
		{"double add", Delta{AddEdges: []EdgePatch{
			{From: 1, To: 0, Objective: 1, Budget: 1},
			{From: 1, To: 0, Objective: 2, Budget: 2},
		}}, "edge exists"},
		{"self loop", Delta{AddEdges: []EdgePatch{{From: 1, To: 1, Objective: 1, Budget: 1}}}, "self-loop"},
		{"zero objective", Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0, Budget: 1}}}, "positive and finite"},
		{"negative budget", Delta{AddEdges: []EdgePatch{{From: 1, To: 0, Objective: 1, Budget: -2}}}, "positive and finite"},
		{"nan objective", Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: math.NaN(), Budget: 1}}}, "positive and finite"},
		{"inf budget", Delta{AddEdges: []EdgePatch{{From: 1, To: 0, Objective: 1, Budget: math.Inf(1)}}}, "positive and finite"},
		{"remove unknown keyword", Delta{RemoveKeywords: []KeywordPatch{{Node: 0, Keywords: []string{"nope"}}}}, "not in vocabulary"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g2, err := g.Apply(c.d)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Apply err = %v, want containing %q", err, c.want)
			}
			if g2 != nil {
				t.Fatal("failed Apply returned a graph")
			}
		})
	}
}

// TestApplySaveLoadRoundTrip: an applied graph survives the binary format
// with an identical fingerprint — patched datasets can be persisted.
func TestApplySaveLoadRoundTrip(t *testing.T) {
	g := deltaFixture(t)
	g2, err := g.Apply(Delta{
		UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 1.5, Budget: 2.5}},
		AddKeywords: []KeywordPatch{{Node: 0, Keywords: []string{"rooftop"}}},
		AddEdges:    []EdgePatch{{From: 2, To: 1, Objective: 0.4, Budget: 0.4}},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var buf bytes.Buffer
	if err := g2.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g3, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g3.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("round trip fingerprint %x, want %x", g3.Fingerprint(), g2.Fingerprint())
	}
}
