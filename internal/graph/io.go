package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"kor/internal/geo"
)

// Binary graph format ("KORG"):
//
//	magic "KORG" | u32 version | u8 flags (1=positions, 2=names)
//	u32 numTerms | per term: u32 len + bytes
//	u32 numNodes | per node: u32 termCount + termCount × u32 term
//	u32 numEdges | per edge: u32 from, u32 to, f64 objective, f64 budget
//	[positions] numNodes × (f64 x, f64 y)
//	[names]     per node: u32 len + bytes
//	u32 crc32 (IEEE, over everything after the magic)
//
// The format is self-contained: the vocabulary travels with the graph, so a
// saved dataset reloads with identical Term numbering.

const (
	formatMagic   = "KORG"
	formatVersion = 1

	flagPositions = 1
	flagNames     = 2
)

// ErrBadFormat reports a malformed or corrupted graph file.
var ErrBadFormat = errors.New("graph: bad file format")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes g to w in the binary graph format.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	wr := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	writeString := func(s string) error {
		if err := wr(uint32(len(s))); err != nil {
			return err
		}
		_, err := cw.Write([]byte(s))
		return err
	}

	var flags uint8
	if g.pos != nil {
		flags |= flagPositions
	}
	if g.names != nil {
		flags |= flagNames
	}
	if err := wr(uint32(formatVersion)); err != nil {
		return err
	}
	if err := wr(flags); err != nil {
		return err
	}

	names := g.vocab.Names()
	if err := wr(uint32(len(names))); err != nil {
		return err
	}
	for _, s := range names {
		if err := writeString(s); err != nil {
			return err
		}
	}

	n := g.NumNodes()
	if err := wr(uint32(n)); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < n; v++ {
		ts := g.Terms(v)
		if err := wr(uint32(len(ts))); err != nil {
			return err
		}
		for _, t := range ts {
			if err := wr(uint32(t)); err != nil {
				return err
			}
		}
	}

	if err := wr(uint32(g.NumEdges())); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < n; v++ {
		for _, e := range g.Out(v) {
			if err := wr(uint32(v)); err != nil {
				return err
			}
			if err := wr(uint32(e.To)); err != nil {
				return err
			}
			if err := wr(e.Objective); err != nil {
				return err
			}
			if err := wr(e.Budget); err != nil {
				return err
			}
		}
	}

	if g.pos != nil {
		for _, p := range g.pos {
			if err := wr(p.X); err != nil {
				return err
			}
			if err := wr(p.Y); err != nil {
				return err
			}
		}
	}
	if g.names != nil {
		for _, s := range g.names {
			if err := writeString(s); err != nil {
				return err
			}
		}
	}

	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// loadTrustPrealloc bounds how far Load trusts a file's claimed element
// counts when sizing allocations up front. Claims at or below it (8M
// elements) are allocated exactly — the real-world-scale path, where exact
// sizing is what keeps peak RSS at the finished graph's size. Larger claims
// grow by append instead, so a corrupt or adversarial header cannot force a
// multi-gigabyte allocation before the truncated payload is noticed.
const loadTrustPrealloc = 1 << 23

// Load reads a graph in the binary graph format.
//
// Loading streams straight into the graph's CSR arrays: node keyword terms
// are appended to the flat term array as records arrive (no per-node string
// round-trip through the vocabulary — terms in the file are already
// interned), and edges written by Save arrive sorted by source node, so the
// forward CSR is filled in arrival order and the reverse CSR is derived
// with one counting sort over it. Peak memory is the finished graph plus a
// 4-byte-per-edge source table, where the builder path used to stage every
// edge in a 32-byte record and every keyword as a string. Files whose edge
// section is not source-sorted (any writer other than Save) take a
// counting-sort fallback that costs one extra edge-array copy.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	rd := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	readString := func() (string, error) {
		var n uint32
		if err := rd(&n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("%w: unreasonable string length %d", ErrBadFormat, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	var version uint32
	if err := rd(&version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var flags uint8
	if err := rd(&flags); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}

	var numTerms uint32
	if err := rd(&numTerms); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	vocab := NewVocabulary()
	for i := uint32(0); i < numTerms; i++ {
		s, err := readString()
		if err != nil {
			return nil, fmt.Errorf("%w: vocab: %v", ErrBadFormat, err)
		}
		vocab.Intern(s)
	}

	var numNodes uint32
	if err := rd(&numNodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if numNodes > 1<<28 {
		return nil, fmt.Errorf("%w: unreasonable node count %d", ErrBadFormat, numNodes)
	}
	n := int(numNodes)
	g := &Graph{vocab: vocab}
	g.termHead = make([]int32, 1, preallocHint(n+1))
	g.terms = make([]Term, 0, preallocHint(n)) // most nodes carry ≥1 term
	for i := 0; i < n; i++ {
		var tc uint32
		if err := rd(&tc); err != nil {
			return nil, fmt.Errorf("%w: node %d: %v", ErrBadFormat, i, err)
		}
		if tc > numTerms {
			return nil, fmt.Errorf("%w: node %d has %d terms, vocabulary has %d", ErrBadFormat, i, tc, numTerms)
		}
		start := len(g.terms)
		for j := uint32(0); j < tc; j++ {
			var t uint32
			if err := rd(&t); err != nil {
				return nil, fmt.Errorf("%w: node %d: %v", ErrBadFormat, i, err)
			}
			if t >= numTerms {
				return nil, fmt.Errorf("%w: node %d references term %d outside vocabulary", ErrBadFormat, i, t)
			}
			g.terms = append(g.terms, Term(t))
		}
		// Save writes each node's terms sorted and deduplicated, but the
		// format does not promise it; normalize like Builder.AddNode does.
		ts := g.terms[start:]
		if len(ts) > 1 {
			sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
			g.terms = g.terms[:start+len(dedupTerms(ts))]
		}
		g.termHead = append(g.termHead, int32(len(g.terms)))
	}

	// Edge section. The node count is verified real at this point (every
	// record was read), so the per-node arrays below are sized exactly.
	var numEdges uint32
	if err := rd(&numEdges); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if numEdges > 1<<28 {
		return nil, fmt.Errorf("%w: unreasonable edge count %d", ErrBadFormat, numEdges)
	}
	e := int(numEdges)
	g.outHead = make([]int32, n+1)
	g.inHead = make([]int32, n+1)
	g.outEdges = make([]Edge, 0, preallocHint(e))
	froms := make([]int32, 0, preallocHint(e))
	g.minObjective, g.minBudget = math.Inf(1), math.Inf(1)
	sorted := true
	for i := 0; i < e; i++ {
		var from, to uint32
		var obj, bud float64
		if err := rd(&from); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&to); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&obj); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&bud); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if math.IsNaN(obj) || math.IsNaN(bud) {
			return nil, fmt.Errorf("%w: edge %d has NaN attribute", ErrBadFormat, i)
		}
		if from >= numNodes || to >= numNodes {
			return nil, fmt.Errorf("%w: edge %d: no such node %d", ErrBadFormat, i, max(from, to))
		}
		if from == to {
			return nil, fmt.Errorf("%w: edge %d: self-loop on node %d", ErrBadFormat, i, from)
		}
		if !(obj > 0) || math.IsInf(obj, 0) {
			return nil, fmt.Errorf("%w: edge %d: objective %v must be positive and finite", ErrBadFormat, i, obj)
		}
		if !(bud > 0) || math.IsInf(bud, 0) {
			return nil, fmt.Errorf("%w: edge %d: budget %v must be positive and finite", ErrBadFormat, i, bud)
		}
		if len(froms) > 0 && int32(from) < froms[len(froms)-1] {
			sorted = false
		}
		g.outHead[from+1]++
		g.inHead[to+1]++
		g.outEdges = append(g.outEdges, Edge{To: NodeID(to), Objective: obj, Budget: bud})
		froms = append(froms, int32(from))
		g.minObjective = math.Min(g.minObjective, obj)
		g.minBudget = math.Min(g.minBudget, bud)
		g.maxObjective = math.Max(g.maxObjective, obj)
		g.maxBudget = math.Max(g.maxBudget, bud)
	}
	if e == 0 {
		g.minObjective, g.minBudget = 0, 0
	}
	for i := 1; i <= n; i++ {
		g.outHead[i] += g.outHead[i-1]
		g.inHead[i] += g.inHead[i-1]
	}
	if !sorted {
		// Counting-sort the forward CSR, stable in arrival order — the
		// same layout buildCSR produces, so fingerprints are unaffected.
		sortedEdges := make([]Edge, e)
		cursor := make([]int32, n)
		for i, from := range froms {
			sortedEdges[g.outHead[from]+cursor[from]] = g.outEdges[i]
			cursor[from]++
		}
		g.outEdges = sortedEdges
	}
	froms = nil
	// Derive the reverse CSR from the forward one with a counting sort.
	g.inEdges = make([]Edge, e)
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, ed := range g.outEdges[g.outHead[v]:g.outHead[v+1]] {
			g.inEdges[g.inHead[ed.To]+cursor[ed.To]] = Edge{To: NodeID(v), Objective: ed.Objective, Budget: ed.Budget}
			cursor[ed.To]++
		}
	}

	if flags&flagPositions != 0 {
		g.pos = make([]geo.Point, n)
		for i := 0; i < n; i++ {
			var x, y float64
			if err := rd(&x); err != nil {
				return nil, fmt.Errorf("%w: position %d: %v", ErrBadFormat, i, err)
			}
			if err := rd(&y); err != nil {
				return nil, fmt.Errorf("%w: position %d: %v", ErrBadFormat, i, err)
			}
			g.pos[i] = geo.Point{X: x, Y: y}
		}
	}
	if flags&flagNames != 0 {
		g.names = make([]string, n)
		for i := 0; i < n; i++ {
			s, err := readString()
			if err != nil {
				return nil, fmt.Errorf("%w: name %d: %v", ErrBadFormat, i, err)
			}
			g.names[i] = s
		}
	}

	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadFormat, gotCRC, wantCRC)
	}
	return g, nil
}

// preallocHint caps an up-front allocation size at loadTrustPrealloc; see
// that constant for why claimed counts are not trusted unboundedly.
func preallocHint(claimed int) int {
	if claimed > loadTrustPrealloc {
		return loadTrustPrealloc
	}
	return claimed
}
