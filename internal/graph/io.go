package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"kor/internal/geo"
)

// Binary graph format ("KORG"):
//
//	magic "KORG" | u32 version | u8 flags (1=positions, 2=names)
//	u32 numTerms | per term: u32 len + bytes
//	u32 numNodes | per node: u32 termCount + termCount × u32 term
//	u32 numEdges | per edge: u32 from, u32 to, f64 objective, f64 budget
//	[positions] numNodes × (f64 x, f64 y)
//	[names]     per node: u32 len + bytes
//	u32 crc32 (IEEE, over everything after the magic)
//
// The format is self-contained: the vocabulary travels with the graph, so a
// saved dataset reloads with identical Term numbering.

const (
	formatMagic   = "KORG"
	formatVersion = 1

	flagPositions = 1
	flagNames     = 2
)

// ErrBadFormat reports a malformed or corrupted graph file.
var ErrBadFormat = errors.New("graph: bad file format")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes g to w in the binary graph format.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	wr := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	writeString := func(s string) error {
		if err := wr(uint32(len(s))); err != nil {
			return err
		}
		_, err := cw.Write([]byte(s))
		return err
	}

	var flags uint8
	if g.pos != nil {
		flags |= flagPositions
	}
	if g.names != nil {
		flags |= flagNames
	}
	if err := wr(uint32(formatVersion)); err != nil {
		return err
	}
	if err := wr(flags); err != nil {
		return err
	}

	names := g.vocab.Names()
	if err := wr(uint32(len(names))); err != nil {
		return err
	}
	for _, s := range names {
		if err := writeString(s); err != nil {
			return err
		}
	}

	n := g.NumNodes()
	if err := wr(uint32(n)); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < n; v++ {
		ts := g.Terms(v)
		if err := wr(uint32(len(ts))); err != nil {
			return err
		}
		for _, t := range ts {
			if err := wr(uint32(t)); err != nil {
				return err
			}
		}
	}

	if err := wr(uint32(g.NumEdges())); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < n; v++ {
		for _, e := range g.Out(v) {
			if err := wr(uint32(v)); err != nil {
				return err
			}
			if err := wr(uint32(e.To)); err != nil {
				return err
			}
			if err := wr(e.Objective); err != nil {
				return err
			}
			if err := wr(e.Budget); err != nil {
				return err
			}
		}
	}

	if g.pos != nil {
		for _, p := range g.pos {
			if err := wr(p.X); err != nil {
				return err
			}
			if err := wr(p.Y); err != nil {
				return err
			}
		}
	}
	if g.names != nil {
		for _, s := range g.names {
			if err := writeString(s); err != nil {
				return err
			}
		}
	}

	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a graph in the binary graph format.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	cr := &crcReader{r: br}
	rd := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	readString := func() (string, error) {
		var n uint32
		if err := rd(&n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("%w: unreasonable string length %d", ErrBadFormat, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	var version uint32
	if err := rd(&version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var flags uint8
	if err := rd(&flags); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}

	var numTerms uint32
	if err := rd(&numTerms); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	vocab := NewVocabulary()
	for i := uint32(0); i < numTerms; i++ {
		s, err := readString()
		if err != nil {
			return nil, fmt.Errorf("%w: vocab: %v", ErrBadFormat, err)
		}
		vocab.Intern(s)
	}

	var numNodes uint32
	if err := rd(&numNodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if numNodes > 1<<28 {
		return nil, fmt.Errorf("%w: unreasonable node count %d", ErrBadFormat, numNodes)
	}
	b := NewBuilderWithVocab(vocab)
	for i := uint32(0); i < numNodes; i++ {
		var tc uint32
		if err := rd(&tc); err != nil {
			return nil, fmt.Errorf("%w: node %d: %v", ErrBadFormat, i, err)
		}
		if tc > numTerms {
			return nil, fmt.Errorf("%w: node %d has %d terms, vocabulary has %d", ErrBadFormat, i, tc, numTerms)
		}
		kws := make([]string, 0, tc)
		for j := uint32(0); j < tc; j++ {
			var t uint32
			if err := rd(&t); err != nil {
				return nil, fmt.Errorf("%w: node %d: %v", ErrBadFormat, i, err)
			}
			if t >= numTerms {
				return nil, fmt.Errorf("%w: node %d references term %d outside vocabulary", ErrBadFormat, i, t)
			}
			kws = append(kws, vocab.Name(Term(t)))
		}
		b.AddNode(kws...)
	}

	var numEdges uint32
	if err := rd(&numEdges); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	for i := uint32(0); i < numEdges; i++ {
		var from, to uint32
		var obj, bud float64
		if err := rd(&from); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&to); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&obj); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if err := rd(&bud); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		if math.IsNaN(obj) || math.IsNaN(bud) {
			return nil, fmt.Errorf("%w: edge %d has NaN attribute", ErrBadFormat, i)
		}
		if err := b.AddEdge(NodeID(from), NodeID(to), obj, bud); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
	}

	if flags&flagPositions != 0 {
		for i := uint32(0); i < numNodes; i++ {
			var x, y float64
			if err := rd(&x); err != nil {
				return nil, fmt.Errorf("%w: position %d: %v", ErrBadFormat, i, err)
			}
			if err := rd(&y); err != nil {
				return nil, fmt.Errorf("%w: position %d: %v", ErrBadFormat, i, err)
			}
			if err := b.SetPosition(NodeID(i), geo.Point{X: x, Y: y}); err != nil {
				return nil, err
			}
		}
	}
	if flags&flagNames != 0 {
		for i := uint32(0); i < numNodes; i++ {
			s, err := readString()
			if err != nil {
				return nil, fmt.Errorf("%w: name %d: %v", ErrBadFormat, i, err)
			}
			if err := b.SetName(NodeID(i), s); err != nil {
				return nil, err
			}
		}
	}

	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadFormat, err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadFormat, gotCRC, wantCRC)
	}
	return b.Build()
}
