package graph

import (
	"fmt"
	"math"
	"sort"

	"kor/internal/geo"
)

// StreamBuilder assembles a Graph in two passes with no per-edge
// intermediate: the caller first declares every node and *counts* every edge
// (pass one), then replays the same edge stream to *fill* the CSR arrays in
// place (pass two). Peak memory is the finished graph plus O(|V|) cursors —
// there is no []builderEdge staging slice and no slice-of-slices keyword
// table, which is what lets kordata ingest million-node graphs without
// tripling their resident size.
//
// Lifecycle:
//
//	sb := NewStreamBuilder(nil)
//	... AddNode / AddNodeTerms / SetPosition / SetName ...
//	... CountEdge for every edge ...            (pass one)
//	sb.FinishCount()
//	... FillEdge for the same edges, in order ... (pass two)
//	g, err := sb.Build()
//
// Nodes may keep arriving until FinishCount; CountEdge only accepts
// endpoints already declared, which is what lets a single-file format
// interleave node and edge records as long as every edge follows its
// endpoints. The fill pass must replay the exact count-pass edge sequence:
// Build fails when the two passes disagree.
//
// For identical node and edge sequences, StreamBuilder and Builder produce
// graphs with identical CSR layout and therefore identical fingerprints
// (both preserve per-source arrival order); TestStreamBuilderMatchesBuilder
// pins this.
//
// A StreamBuilder is not safe for concurrent use.
type StreamBuilder struct {
	vocab    *Vocabulary
	termHead []int32
	terms    []Term
	pos      []geo.Point // allocated on first SetPosition
	names    []string    // allocated on first SetName

	phase streamPhase

	// Pass one accumulates degree counts in outHead/inHead at index v+1;
	// FinishCount prefix-sums them into CSR head arrays.
	outHead, inHead   []int32
	outEdges, inEdges []Edge
	outCur, inCur     []int32
	counted, filled   int

	minObj, minBud float64
	maxObj, maxBud float64
}

type streamPhase int

const (
	phaseCounting streamPhase = iota
	phaseFilling
	phaseBuilt
)

// NewStreamBuilder returns an empty streaming builder interning keywords
// into v (a fresh vocabulary when nil).
func NewStreamBuilder(v *Vocabulary) *StreamBuilder {
	if v == nil {
		v = NewVocabulary()
	}
	return &StreamBuilder{
		vocab:   v,
		minObj:  math.Inf(1),
		minBud:  math.Inf(1),
		outHead: make([]int32, 1, 1024),
		inHead:  make([]int32, 1, 1024),
	}
}

// NumNodes returns the number of nodes declared so far.
func (b *StreamBuilder) NumNodes() int { return len(b.termHead) }

// Vocab returns the vocabulary keywords are interned into.
func (b *StreamBuilder) Vocab() *Vocabulary { return b.vocab }

// AddNode appends a node carrying the given keywords and returns its ID.
// Duplicate keywords are collapsed. Nodes cannot be added once FinishCount
// has sealed the node set.
func (b *StreamBuilder) AddNode(keywords ...string) (NodeID, error) {
	if b.phase != phaseCounting {
		return 0, fmt.Errorf("graph: StreamBuilder.AddNode after FinishCount")
	}
	start := len(b.terms)
	for _, k := range keywords {
		b.terms = append(b.terms, b.vocab.Intern(k))
	}
	b.sealNode(start)
	return NodeID(len(b.termHead) - 1), nil
}

// AddNodeTerms is AddNode for pre-interned terms, skipping the string
// round-trip. Every term must already be valid in the vocabulary.
func (b *StreamBuilder) AddNodeTerms(ts []Term) (NodeID, error) {
	if b.phase != phaseCounting {
		return 0, fmt.Errorf("graph: StreamBuilder.AddNodeTerms after FinishCount")
	}
	for _, t := range ts {
		if t < 0 || int(t) >= b.vocab.Len() {
			return 0, fmt.Errorf("graph: StreamBuilder.AddNodeTerms: term %d outside vocabulary (%d terms)", t, b.vocab.Len())
		}
	}
	start := len(b.terms)
	b.terms = append(b.terms, ts...)
	b.sealNode(start)
	return NodeID(len(b.termHead) - 1), nil
}

// sealNode sorts and dedups the node's freshly appended terms in place and
// records its CSR offset.
func (b *StreamBuilder) sealNode(start int) {
	ts := b.terms[start:]
	if len(ts) > 1 {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		b.terms = b.terms[:start+len(dedupTerms(ts))]
	}
	b.termHead = append(b.termHead, int32(start))
	b.outHead = append(b.outHead, 0)
	b.inHead = append(b.inHead, 0)
	if b.pos != nil {
		b.pos = append(b.pos, geo.Point{})
	}
	if b.names != nil {
		b.names = append(b.names, "")
	}
}

// SetPosition records coordinates for node v.
func (b *StreamBuilder) SetPosition(v NodeID, p geo.Point) error {
	if v < 0 || int(v) >= b.NumNodes() {
		return fmt.Errorf("graph: SetPosition: no such node %d", v)
	}
	if b.pos == nil {
		b.pos = make([]geo.Point, b.NumNodes())
	}
	b.pos[v] = p
	return nil
}

// SetName records a display name for node v.
func (b *StreamBuilder) SetName(v NodeID, name string) error {
	if v < 0 || int(v) >= b.NumNodes() {
		return fmt.Errorf("graph: SetName: no such node %d", v)
	}
	if b.names == nil {
		b.names = make([]string, b.NumNodes())
	}
	b.names[v] = name
	return nil
}

// CountEdge registers one directed edge in pass one. Both endpoints must
// already be declared; self-loops are rejected here so pass one surfaces
// them with the caller's record context.
func (b *StreamBuilder) CountEdge(from, to NodeID) error {
	if b.phase != phaseCounting {
		return fmt.Errorf("graph: StreamBuilder.CountEdge after FinishCount")
	}
	if err := b.checkEndpoints(from, to); err != nil {
		return err
	}
	b.outHead[from+1]++
	b.inHead[to+1]++
	b.counted++
	return nil
}

func (b *StreamBuilder) checkEndpoints(from, to NodeID) error {
	n := b.NumNodes()
	if from < 0 || int(from) >= n {
		return fmt.Errorf("graph: edge references undeclared node %d (%d nodes so far)", from, n)
	}
	if to < 0 || int(to) >= n {
		return fmt.Errorf("graph: edge references undeclared node %d (%d nodes so far)", to, n)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d", from)
	}
	return nil
}

// FinishCount seals the node set, prefix-sums the degree counts into CSR
// head arrays and allocates the edge arrays pass two fills.
func (b *StreamBuilder) FinishCount() error {
	if b.phase != phaseCounting {
		return fmt.Errorf("graph: StreamBuilder.FinishCount called twice")
	}
	n := b.NumNodes()
	for i := 1; i <= n; i++ {
		b.outHead[i] += b.outHead[i-1]
		b.inHead[i] += b.inHead[i-1]
	}
	b.outEdges = make([]Edge, b.counted)
	b.inEdges = make([]Edge, b.counted)
	b.outCur = make([]int32, n)
	b.inCur = make([]int32, n)
	b.phase = phaseFilling
	return nil
}

// FillEdge places one directed edge in pass two, validating its attributes.
// The fill stream must replay the count stream: an edge whose source or
// target already exhausted its counted degree means the two passes diverged.
func (b *StreamBuilder) FillEdge(from, to NodeID, objective, budget float64) error {
	if b.phase != phaseFilling {
		return fmt.Errorf("graph: StreamBuilder.FillEdge before FinishCount")
	}
	if err := b.checkEndpoints(from, to); err != nil {
		return err
	}
	if !(objective > 0) || math.IsInf(objective, 0) {
		return fmt.Errorf("graph: edge (%d,%d): objective %v must be positive and finite", from, to, objective)
	}
	if !(budget > 0) || math.IsInf(budget, 0) {
		return fmt.Errorf("graph: edge (%d,%d): budget %v must be positive and finite", from, to, budget)
	}
	oi := b.outHead[from] + b.outCur[from]
	if oi >= b.outHead[from+1] {
		return fmt.Errorf("graph: edge (%d,%d): node %d has more edges in the fill pass than were counted", from, to, from)
	}
	ii := b.inHead[to] + b.inCur[to]
	if ii >= b.inHead[to+1] {
		return fmt.Errorf("graph: edge (%d,%d): node %d has more incoming edges in the fill pass than were counted", from, to, to)
	}
	b.outEdges[oi] = Edge{To: to, Objective: objective, Budget: budget}
	b.outCur[from]++
	b.inEdges[ii] = Edge{To: from, Objective: objective, Budget: budget}
	b.inCur[to]++
	b.filled++

	b.minObj = math.Min(b.minObj, objective)
	b.minBud = math.Min(b.minBud, budget)
	b.maxObj = math.Max(b.maxObj, objective)
	b.maxBud = math.Max(b.maxBud, budget)
	return nil
}

// Build finalizes the graph. The builder is spent afterwards.
func (b *StreamBuilder) Build() (*Graph, error) {
	switch b.phase {
	case phaseCounting:
		// An edgeless graph never needed the fill pass; seal it now.
		if err := b.FinishCount(); err != nil {
			return nil, err
		}
	case phaseBuilt:
		return nil, fmt.Errorf("graph: StreamBuilder.Build called twice")
	}
	if b.filled != b.counted {
		return nil, fmt.Errorf("graph: fill pass supplied %d edges, count pass saw %d", b.filled, b.counted)
	}
	b.phase = phaseBuilt

	g := &Graph{
		vocab:    b.vocab,
		outHead:  b.outHead,
		outEdges: b.outEdges,
		inHead:   b.inHead,
		inEdges:  b.inEdges,
		terms:    b.terms,
		pos:      b.pos,
		names:    b.names,
	}
	g.termHead = append(b.termHead, int32(len(b.terms)))
	g.minObjective, g.minBudget = b.minObj, b.minBud
	g.maxObjective, g.maxBudget = b.maxObj, b.maxBud
	if b.counted == 0 {
		g.minObjective, g.minBudget = 0, 0
	}
	return g, nil
}
