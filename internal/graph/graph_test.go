package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kor/internal/geo"
)

// buildDiamond builds a 4-node diamond: 0→1→3, 0→2→3, plus 0→3.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	v0 := b.AddNode("start")
	v1 := b.AddNode("cafe", "jazz")
	v2 := b.AddNode("park")
	v3 := b.AddNode("end", "cafe")
	for _, e := range []struct {
		from, to NodeID
		o, c     float64
	}{
		{v0, v1, 1, 2}, {v1, v3, 2, 1}, {v0, v2, 3, 1}, {v2, v3, 1, 3}, {v0, v3, 10, 0.5},
	} {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 3 {
		t.Errorf("OutDegree(0) = %d, want 3", g.OutDegree(0))
	}
	if g.InDegree(3) != 3 {
		t.Errorf("InDegree(3) = %d, want 3", g.InDegree(3))
	}
	if g.MinObjective() != 1 || g.MaxObjective() != 10 {
		t.Errorf("objective extrema = %v,%v", g.MinObjective(), g.MaxObjective())
	}
	if g.MinBudget() != 0.5 || g.MaxBudget() != 3 {
		t.Errorf("budget extrema = %v,%v", g.MinBudget(), g.MaxBudget())
	}
}

func TestForwardReverseConsistency(t *testing.T) {
	g := buildDiamond(t)
	type triple struct {
		from, to NodeID
		o, c     float64
	}
	var fwd, rev []triple
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			fwd = append(fwd, triple{v, e.To, e.Objective, e.Budget})
		}
		for _, e := range g.In(v) {
			rev = append(rev, triple{e.To, v, e.Objective, e.Budget})
		}
	}
	key := func(x triple) [4]float64 {
		return [4]float64{float64(x.from), float64(x.to), x.o, x.c}
	}
	sort.Slice(fwd, func(i, j int) bool { return less4(key(fwd[i]), key(fwd[j])) })
	sort.Slice(rev, func(i, j int) bool { return less4(key(rev[i]), key(rev[j])) })
	if len(fwd) != len(rev) {
		t.Fatalf("edge count mismatch fwd=%d rev=%d", len(fwd), len(rev))
	}
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, fwd[i], rev[i])
		}
	}
}

func less4(a, b [4]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestTermsAndHasTerm(t *testing.T) {
	g := buildDiamond(t)
	cafe, ok := g.Vocab().Lookup("cafe")
	if !ok {
		t.Fatal("cafe not interned")
	}
	if !g.HasTerm(1, cafe) || !g.HasTerm(3, cafe) {
		t.Error("HasTerm(cafe) = false on a cafe node")
	}
	if g.HasTerm(0, cafe) || g.HasTerm(2, cafe) {
		t.Error("HasTerm(cafe) = true on a non-cafe node")
	}
	if g.HasTerm(0, Term(999)) {
		t.Error("HasTerm(unknown term) = true")
	}
	ts := g.Terms(1)
	if len(ts) != 2 {
		t.Fatalf("Terms(1) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatal("Terms not sorted")
		}
	}
}

func TestDuplicateKeywordsCollapsed(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("pub", "pub", "jazz", "pub")
	g := b.MustBuild()
	if got := len(g.Terms(v)); got != 2 {
		t.Fatalf("Terms = %v, want 2 distinct", g.Terms(v))
	}
}

func TestAddEdgeValidation(t *testing.T) {
	b := NewBuilder()
	v0 := b.AddNode()
	v1 := b.AddNode()
	cases := []struct {
		name     string
		from, to NodeID
		o, c     float64
	}{
		{"missing from", 9, v1, 1, 1},
		{"missing to", v0, 9, 1, 1},
		{"negative from", -1, v1, 1, 1},
		{"self loop", v0, v0, 1, 1},
		{"zero objective", v0, v1, 0, 1},
		{"negative objective", v0, v1, -2, 1},
		{"zero budget", v0, v1, 1, 0},
		{"nan objective", v0, v1, nan(), 1},
		{"inf budget", v0, v1, 1, inf()},
	}
	for _, c := range cases {
		if err := b.AddEdge(c.from, c.to, c.o, c.c); err == nil {
			t.Errorf("%s: AddEdge accepted invalid input", c.name)
		}
	}
	if err := b.AddEdge(v0, v1, 1, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

func TestSetPositionAndName(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("hotel")
	if err := b.SetPosition(v, geo.Point{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetName(v, "Dewitt Clinton Park"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPosition(99, geo.Point{}); err == nil {
		t.Error("SetPosition on missing node accepted")
	}
	if err := b.SetName(-1, "x"); err == nil {
		t.Error("SetName on missing node accepted")
	}
	g := b.MustBuild()
	if !g.HasPositions() {
		t.Fatal("HasPositions = false")
	}
	if g.Position(v) != (geo.Point{X: 1, Y: 2}) {
		t.Errorf("Position = %v", g.Position(v))
	}
	if g.Name(v) != "Dewitt Clinton Park" {
		t.Errorf("Name = %q", g.Name(v))
	}
}

func TestNoPositionsByDefault(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode()
	g := b.MustBuild()
	if g.HasPositions() {
		t.Error("HasPositions = true without SetPosition")
	}
	if g.Position(v) != (geo.Point{}) {
		t.Error("Position should be zero without coordinates")
	}
	if g.Name(v) != "" {
		t.Error("Name should be empty without names")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().MustBuild()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.MinObjective() != 0 || g.MinBudget() != 0 {
		t.Error("empty graph extrema should be zero")
	}
	s := g.ComputeStats()
	if s.Nodes != 0 || s.Edges != 0 {
		t.Errorf("stats = %v", s)
	}
}

func TestStats(t *testing.T) {
	g := buildDiamond(t)
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 5 || s.MaxOutDegree != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Isolated != 0 {
		t.Errorf("Isolated = %d", s.Isolated)
	}
	if s.String() == "" {
		t.Error("empty Stats.String")
	}

	b := NewBuilder()
	b.AddNode("alone")
	g2 := b.MustBuild()
	if got := g2.ComputeStats().Isolated; got != 1 {
		t.Errorf("Isolated = %d, want 1", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	b := NewBuilder()
	v0, v1, v2 := b.AddNode(), b.AddNode(), b.AddNode()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddEdge(v0, v1, 1, 1))
	must(b.AddEdge(v1, v2, 1, 1))
	g := b.MustBuild()
	if g.StronglyConnected() {
		t.Error("path graph reported strongly connected")
	}
	must(b.AddEdge(v2, v0, 1, 1))
	g = b.MustBuild()
	if !g.StronglyConnected() {
		t.Error("cycle graph reported not strongly connected")
	}
}

func TestMemIndex(t *testing.T) {
	g := buildDiamond(t)
	idx := NewMemIndex(g)
	cafe, _ := g.Vocab().Lookup("cafe")
	post := idx.Postings(cafe)
	if len(post) != 2 || post[0] != 1 || post[1] != 3 {
		t.Fatalf("Postings(cafe) = %v", post)
	}
	if idx.DocFrequency(cafe) != 2 {
		t.Errorf("DocFrequency = %d", idx.DocFrequency(cafe))
	}
	if got := idx.Postings(Term(404)); len(got) != 0 {
		t.Errorf("Postings(unknown) = %v", got)
	}
	if idx.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", idx.NumNodes())
	}
}

// randomGraph builds a pseudo-random valid graph for property tests.
func randomGraph(rng *rand.Rand, maxNodes int) *Graph {
	b := NewBuilder()
	n := 2 + rng.Intn(maxNodes-1)
	words := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		kws := make([]string, k)
		for j := range kws {
			kws[j] = words[rng.Intn(len(words))]
		}
		b.AddNode(kws...)
	}
	edges := rng.Intn(4 * n)
	for i := 0; i < edges; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		if from == to {
			continue
		}
		// Errors cannot happen here by construction; ignore the few that
		// would come from duplicates, which are legal anyway.
		_ = b.AddEdge(from, to, 0.1+rng.Float64(), 0.1+rng.Float64())
	}
	return b.MustBuild()
}

// Property: in/out degree totals both equal |E|, and CSR offsets are sane.
func TestDegreeSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 30)
		var outSum, inSum int
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
		}
		if outSum != g.NumEdges() || inSum != g.NumEdges() {
			t.Fatalf("degree sums %d/%d, edges %d", outSum, inSum, g.NumEdges())
		}
	}
}

// Property: vocabulary interning is stable and bijective over its range.
func TestVocabularyProperty(t *testing.T) {
	f := func(names []string) bool {
		v := NewVocabulary()
		for _, n := range names {
			t1 := v.Intern(n)
			t2 := v.Intern(n)
			if t1 != t2 {
				return false
			}
			if v.Name(t1) != n {
				return false
			}
			if got, ok := v.Lookup(n); !ok || got != t1 {
				return false
			}
		}
		return v.Len() <= len(names) || len(names) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVocabularyUnknown(t *testing.T) {
	v := NewVocabulary()
	if _, ok := v.Lookup("ghost"); ok {
		t.Error("Lookup on empty vocabulary returned ok")
	}
	if v.Name(Term(3)) != "" || v.Name(Term(-1)) != "" {
		t.Error("Name of unknown term should be empty")
	}
}
