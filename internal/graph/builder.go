package graph

import (
	"fmt"
	"math"
	"sort"

	"kor/internal/geo"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	vocab    *Vocabulary
	terms    [][]Term
	pos      []geo.Point
	names    []string
	anyPos   bool
	anyNames bool
	edges    []builderEdge
}

type builderEdge struct {
	from, to  NodeID
	objective float64
	budget    float64
}

// NewBuilder returns an empty builder with a fresh vocabulary.
func NewBuilder() *Builder { return NewBuilderWithVocab(NewVocabulary()) }

// NewBuilderWithVocab returns an empty builder interning keywords into the
// supplied vocabulary, letting several graphs share one term space.
func NewBuilderWithVocab(v *Vocabulary) *Builder {
	if v == nil {
		v = NewVocabulary()
	}
	return &Builder{vocab: v}
}

// AddNode appends a node carrying the given keywords and returns its ID.
// Duplicate keywords are collapsed.
func (b *Builder) AddNode(keywords ...string) NodeID {
	id := NodeID(len(b.terms))
	ts := make([]Term, 0, len(keywords))
	for _, k := range keywords {
		ts = append(ts, b.vocab.Intern(k))
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	ts = dedupTerms(ts)
	b.terms = append(b.terms, ts)
	b.pos = append(b.pos, geo.Point{})
	b.names = append(b.names, "")
	return id
}

func dedupTerms(ts []Term) []Term {
	if len(ts) < 2 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[w-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// SetPosition records coordinates for node v.
func (b *Builder) SetPosition(v NodeID, p geo.Point) error {
	if int(v) >= len(b.terms) || v < 0 {
		return fmt.Errorf("graph: SetPosition: no such node %d", v)
	}
	b.pos[v] = p
	b.anyPos = true
	return nil
}

// SetName records a display name for node v.
func (b *Builder) SetName(v NodeID, name string) error {
	if int(v) >= len(b.terms) || v < 0 {
		return fmt.Errorf("graph: SetName: no such node %d", v)
	}
	b.names[v] = name
	b.anyNames = true
	return nil
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.terms) }

// AddEdge appends the directed edge from→to. Both attribute values must be
// positive and finite: the scaling factor θ = ε·o_min·b_min/Δ divides by the
// minimum objective, and the search-depth bound ⌊Δ/b_min⌋ divides by the
// minimum budget, so zero or negative attributes would break the paper's
// complexity and approximation guarantees. Self-loops are rejected — they can
// never appear on a useful route.
func (b *Builder) AddEdge(from, to NodeID, objective, budget float64) error {
	if from < 0 || int(from) >= len(b.terms) {
		return fmt.Errorf("graph: AddEdge: no such node %d", from)
	}
	if to < 0 || int(to) >= len(b.terms) {
		return fmt.Errorf("graph: AddEdge: no such node %d", to)
	}
	if from == to {
		return fmt.Errorf("graph: AddEdge: self-loop on node %d", from)
	}
	if !(objective > 0) || math.IsInf(objective, 0) {
		return fmt.Errorf("graph: AddEdge(%d,%d): objective %v must be positive and finite", from, to, objective)
	}
	if !(budget > 0) || math.IsInf(budget, 0) {
		return fmt.Errorf("graph: AddEdge(%d,%d): budget %v must be positive and finite", from, to, budget)
	}
	b.edges = append(b.edges, builderEdge{from, to, objective, budget})
	return nil
}

// AddBidirectional adds both directions of an undirected connection with the
// same attributes; the paper notes the extension to undirected graphs is this
// exact encoding.
func (b *Builder) AddBidirectional(a, c NodeID, objective, budget float64) error {
	if err := b.AddEdge(a, c, objective, budget); err != nil {
		return err
	}
	return b.AddEdge(c, a, objective, budget)
}

// Build assembles the immutable Graph. The builder stays usable; Build may
// be called again after adding more nodes or edges.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.terms)
	g := &Graph{vocab: b.vocab}

	// Keyword CSR.
	g.termHead = make([]int32, n+1)
	total := 0
	for i, ts := range b.terms {
		g.termHead[i] = int32(total)
		total += len(ts)
	}
	g.termHead[n] = int32(total)
	g.terms = make([]Term, 0, total)
	for _, ts := range b.terms {
		g.terms = append(g.terms, ts...)
	}

	g.outHead, g.outEdges, g.inHead, g.inEdges = buildCSR(b.edges, n)

	// Attribute extrema.
	g.minObjective, g.minBudget = math.Inf(1), math.Inf(1)
	for _, e := range b.edges {
		g.minObjective = math.Min(g.minObjective, e.objective)
		g.minBudget = math.Min(g.minBudget, e.budget)
		g.maxObjective = math.Max(g.maxObjective, e.objective)
		g.maxBudget = math.Max(g.maxBudget, e.budget)
	}
	if len(b.edges) == 0 {
		g.minObjective, g.minBudget = 0, 0
	}

	if b.anyPos {
		g.pos = append([]geo.Point(nil), b.pos...)
	}
	if b.anyNames {
		g.names = append([]string(nil), b.names...)
	}
	return g, nil
}

// buildCSR assembles the forward and reverse CSR arrays from an edge list
// with a stable counting sort: edges keep their relative order within each
// source (forward) and each target (reverse). Shared by Builder.Build and
// Graph.Apply — the two must stay byte-identical for equal inputs, or
// fingerprints of built and patched graphs with the same content would
// diverge.
func buildCSR(edges []builderEdge, n int) (outHead []int32, outEdges []Edge, inHead []int32, inEdges []Edge) {
	outHead = make([]int32, n+1)
	for _, e := range edges {
		outHead[e.from+1]++
	}
	for i := 1; i <= n; i++ {
		outHead[i] += outHead[i-1]
	}
	outEdges = make([]Edge, len(edges))
	cursor := make([]int32, n)
	for _, e := range edges {
		i := outHead[e.from] + cursor[e.from]
		outEdges[i] = Edge{To: e.to, Objective: e.objective, Budget: e.budget}
		cursor[e.from]++
	}

	inHead = make([]int32, n+1)
	for _, e := range edges {
		inHead[e.to+1]++
	}
	for i := 1; i <= n; i++ {
		inHead[i] += inHead[i-1]
	}
	inEdges = make([]Edge, len(edges))
	for i := range cursor {
		cursor[i] = 0
	}
	for _, e := range edges {
		i := inHead[e.to] + cursor[e.to]
		inEdges[i] = Edge{To: e.from, Objective: e.objective, Budget: e.budget}
		cursor[e.to]++
	}
	return outHead, outEdges, inHead, inEdges
}

// MustBuild is Build for fixtures and generators whose input is known good.
// It panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
