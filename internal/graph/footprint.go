package graph

import "fmt"

// Footprint breaks down the resident bytes of a graph's storage arrays — the
// numbers kordata -stats reports and the scale-soak CI tier gates on. It
// counts the backing arrays only (slice headers, the vocabulary hash map's
// bucket overhead and allocator rounding are excluded), so it is a stable
// lower bound: layout regressions move it even when heap noise would mask
// them in RSS.
type Footprint struct {
	Nodes int
	Edges int

	EdgeBytes  int64 // forward + reverse CSR edge arrays
	HeadBytes  int64 // CSR offset arrays (out, in, term)
	TermBytes  int64 // per-node keyword term array
	PosBytes   int64 // coordinates, when present
	NameBytes  int64 // display names, when present
	VocabBytes int64 // interned keyword strings

	TotalBytes int64
}

// edgeSize is the in-memory size of one Edge (int32 + 2×float64, padded to
// 8-byte alignment).
const edgeSize = 24

// MemFootprint computes the storage breakdown in one scan of the
// variable-length arrays.
func (g *Graph) MemFootprint() Footprint {
	f := Footprint{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	f.EdgeBytes = int64(len(g.outEdges)+len(g.inEdges)) * edgeSize
	f.HeadBytes = int64(len(g.outHead)+len(g.inHead)+len(g.termHead)) * 4
	f.TermBytes = int64(len(g.terms)) * 4
	f.PosBytes = int64(len(g.pos)) * 16
	for _, s := range g.names {
		f.NameBytes += int64(len(s)) + 16 // bytes + string header
	}
	for _, s := range g.vocab.Names() {
		f.VocabBytes += int64(len(s)) + 16
	}
	f.TotalBytes = f.EdgeBytes + f.HeadBytes + f.TermBytes + f.PosBytes + f.NameBytes + f.VocabBytes
	return f
}

// BytesPerNode returns the graph's resident bytes divided by its node count.
func (f Footprint) BytesPerNode() float64 {
	if f.Nodes == 0 {
		return 0
	}
	return float64(f.TotalBytes) / float64(f.Nodes)
}

// String renders the breakdown on one line.
func (f Footprint) String() string {
	return fmt.Sprintf("total=%d B (%.1f B/node): edges=%d heads=%d terms=%d pos=%d names=%d vocab=%d",
		f.TotalBytes, f.BytesPerNode(), f.EdgeBytes, f.HeadBytes, f.TermBytes, f.PosBytes, f.NameBytes, f.VocabBytes)
}
