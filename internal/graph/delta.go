package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Live-update deltas. A Delta describes an incremental change to a graph —
// keyword churn on existing nodes, edge-attribute drift, edges appearing and
// disappearing — and Graph.Apply materializes it as a NEW immutable Graph,
// sharing every storage array the delta did not touch with the original.
// The original graph is never modified: queries running against it continue
// to see exactly the pre-delta world, which is what makes the engine's
// atomic snapshot swap safe.
//
// Sharing matrix (what Apply reuses from the source graph):
//
//	change kind          shared storage
//	keyword-only         edge CSRs, heads, extrema, positions, names
//	attr-only edges      CSR head arrays, keyword CSR, vocab, positions, names
//	topology edges       keyword CSR, vocab, positions, names
//
// The vocabulary is copy-on-write: it is shared unless an added keyword is
// new, in which case Apply clones it before interning so the source graph's
// vocabulary — read concurrently by in-flight queries — is never mutated.

// KeywordPatch names a node and the keywords to add to or remove from it.
type KeywordPatch struct {
	Node     NodeID
	Keywords []string
}

// EdgePatch addresses the directed edge From→To and carries its new
// attribute values. In Delta.UpdateEdges the edge must already exist; in
// Delta.AddEdges it must not.
type EdgePatch struct {
	From, To  NodeID
	Objective float64
	Budget    float64
}

// EdgeRef addresses the directed edge From→To for removal.
type EdgeRef struct {
	From, To NodeID
}

// Delta is one batch of live updates, applied atomically by Graph.Apply.
// The phases apply in order: keyword patches, then edge updates, then edge
// removals, then edge additions — so a delta may replace an edge by removing
// and re-adding it.
//
// Keyword patches use set semantics: adding a keyword a node already carries
// and removing one it does not are no-ops, so patches are idempotent. Edge
// patches are strict: updating or removing a missing edge and adding an
// existing one are errors — an addressed edge that is not there means the
// caller's picture of the graph has drifted, which must surface, not be
// papered over. Nodes cannot be added or removed: NodeIDs are dense and
// baked into saved routes, caches and client state; model a closed POI by
// removing its edges or keywords.
type Delta struct {
	// AddKeywords unions keywords into node keyword sets. New keywords are
	// interned into a copy of the vocabulary.
	AddKeywords []KeywordPatch
	// RemoveKeywords subtracts keywords from node keyword sets. The keyword
	// string must exist in the vocabulary (a typo must not silently no-op),
	// but need not be present on the node.
	RemoveKeywords []KeywordPatch
	// UpdateEdges sets the attributes of existing edges; parallel From→To
	// edges (the builder permits them) are all set.
	UpdateEdges []EdgePatch
	// AddEdges inserts new edges under the builder's invariants: positive
	// finite attributes, no self-loops, no duplicate of a surviving edge.
	AddEdges []EdgePatch
	// RemoveEdges deletes edges; parallel From→To edges are all deleted.
	RemoveEdges []EdgeRef
}

// Empty reports whether the delta contains no changes.
func (d Delta) Empty() bool {
	return len(d.AddKeywords) == 0 && len(d.RemoveKeywords) == 0 &&
		len(d.UpdateEdges) == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// pairKey packs a directed edge into one map key.
func pairKey(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// Apply materializes d over g as a new immutable Graph, leaving g untouched
// and sharing unchanged storage (see the package comment above). An empty
// delta returns g itself. Validation is all-or-nothing: on error the
// returned graph is nil and nothing was built.
func (g *Graph) Apply(d Delta) (*Graph, error) {
	if d.Empty() {
		return g, nil
	}
	if err := g.validateDeltaNodes(d); err != nil {
		return nil, err
	}

	// Start from a full alias of g; the phases below replace exactly the
	// arrays they change.
	out := &Graph{
		vocab:    g.vocab,
		outHead:  g.outHead,
		outEdges: g.outEdges,
		inHead:   g.inHead,
		inEdges:  g.inEdges,
		termHead: g.termHead,
		terms:    g.terms,
		pos:      g.pos,
		names:    g.names,

		minObjective: g.minObjective,
		minBudget:    g.minBudget,
		maxObjective: g.maxObjective,
		maxBudget:    g.maxBudget,
	}
	// out.fp stays zero: the fingerprint is recomputed lazily on first use.

	if err := out.applyKeywordPatches(g, d); err != nil {
		return nil, err
	}
	if err := out.applyEdgePatches(g, d); err != nil {
		return nil, err
	}
	return out, nil
}

// validateDeltaNodes rejects any patch addressing a node outside g.
func (g *Graph) validateDeltaNodes(d Delta) error {
	check := func(what string, v NodeID) error {
		if !g.Valid(v) {
			return fmt.Errorf("graph: Apply: %s: no such node %d", what, v)
		}
		return nil
	}
	for _, kp := range d.AddKeywords {
		if err := check("add keywords", kp.Node); err != nil {
			return err
		}
	}
	for _, kp := range d.RemoveKeywords {
		if err := check("remove keywords", kp.Node); err != nil {
			return err
		}
	}
	for _, ep := range d.UpdateEdges {
		if err := check(fmt.Sprintf("update edge %d→%d", ep.From, ep.To), ep.From); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("update edge %d→%d", ep.From, ep.To), ep.To); err != nil {
			return err
		}
	}
	for _, ep := range d.AddEdges {
		if err := check(fmt.Sprintf("add edge %d→%d", ep.From, ep.To), ep.From); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("add edge %d→%d", ep.From, ep.To), ep.To); err != nil {
			return err
		}
	}
	for _, er := range d.RemoveEdges {
		if err := check(fmt.Sprintf("remove edge %d→%d", er.From, er.To), er.From); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("remove edge %d→%d", er.From, er.To), er.To); err != nil {
			return err
		}
	}
	return nil
}

// applyKeywordPatches rebuilds the keyword CSR when the delta touches
// keywords, cloning the vocabulary only if a new keyword must be interned.
func (out *Graph) applyKeywordPatches(g *Graph, d Delta) error {
	if len(d.AddKeywords) == 0 && len(d.RemoveKeywords) == 0 {
		return nil
	}

	// Copy-on-write vocabulary: clone before the first new intern.
	vocab := g.vocab
	for _, kp := range d.AddKeywords {
		for _, kw := range kp.Keywords {
			if _, ok := vocab.Lookup(kw); !ok {
				if vocab == g.vocab {
					vocab = g.vocab.clone()
				}
				vocab.Intern(kw)
			}
		}
	}
	out.vocab = vocab

	// Desired keyword sets for the touched nodes only.
	touched := make(map[NodeID]map[Term]bool)
	setFor := func(v NodeID) map[Term]bool {
		if set, ok := touched[v]; ok {
			return set
		}
		set := make(map[Term]bool, len(g.Terms(v))+1)
		for _, t := range g.Terms(v) {
			set[t] = true
		}
		touched[v] = set
		return set
	}
	for _, kp := range d.AddKeywords {
		set := setFor(kp.Node)
		for _, kw := range kp.Keywords {
			t, _ := vocab.Lookup(kw) // interned above
			set[t] = true
		}
	}
	for _, kp := range d.RemoveKeywords {
		set := setFor(kp.Node)
		for _, kw := range kp.Keywords {
			t, ok := vocab.Lookup(kw)
			if !ok {
				return fmt.Errorf("graph: Apply: remove keyword %q from node %d: not in vocabulary", kw, kp.Node)
			}
			delete(set, t)
		}
	}

	// Rebuild the keyword CSR, copying untouched nodes' ranges verbatim.
	n := g.NumNodes()
	grown := 0
	for _, set := range touched {
		grown += len(set)
	}
	newTerms := make([]Term, 0, len(g.terms)+grown)
	newHead := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newHead[v] = int32(len(newTerms))
		if set, ok := touched[NodeID(v)]; ok {
			ts := make([]Term, 0, len(set))
			for t := range set {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			newTerms = append(newTerms, ts...)
		} else {
			newTerms = append(newTerms, g.Terms(NodeID(v))...)
		}
	}
	newHead[n] = int32(len(newTerms))
	out.termHead, out.terms = newHead, newTerms
	return nil
}

// applyEdgePatches validates and materializes the edge phases. Attribute-only
// deltas keep the CSR head arrays and patch copies of the edge arrays in
// place; topology changes rebuild both CSRs from the merged edge list.
func (out *Graph) applyEdgePatches(g *Graph, d Delta) error {
	if len(d.UpdateEdges) == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0 {
		return nil
	}
	checkAttrs := func(what string, ep EdgePatch) error {
		if !(ep.Objective > 0) || math.IsInf(ep.Objective, 0) {
			return fmt.Errorf("graph: Apply: %s %d→%d: objective %v must be positive and finite", what, ep.From, ep.To, ep.Objective)
		}
		if !(ep.Budget > 0) || math.IsInf(ep.Budget, 0) {
			return fmt.Errorf("graph: Apply: %s %d→%d: budget %v must be positive and finite", what, ep.From, ep.To, ep.Budget)
		}
		return nil
	}

	// Validation is O(patch count × out-degree): each addressed pair is
	// checked against the source node's adjacency directly, so a one-edge
	// delta on a million-edge graph never scans the whole edge set.
	hasEdge := func(from, to NodeID) bool {
		for _, e := range g.Out(from) {
			if e.To == to {
				return true
			}
		}
		return false
	}
	updates := make(map[uint64]EdgePatch, len(d.UpdateEdges))
	for _, ep := range d.UpdateEdges {
		if err := checkAttrs("update edge", ep); err != nil {
			return err
		}
		if !hasEdge(ep.From, ep.To) {
			return fmt.Errorf("graph: Apply: update edge %d→%d: no such edge", ep.From, ep.To)
		}
		updates[pairKey(ep.From, ep.To)] = ep
	}
	removes := make(map[uint64]bool, len(d.RemoveEdges))
	for _, er := range d.RemoveEdges {
		if !hasEdge(er.From, er.To) {
			return fmt.Errorf("graph: Apply: remove edge %d→%d: no such edge", er.From, er.To)
		}
		removes[pairKey(er.From, er.To)] = true
	}
	added := make(map[uint64]bool, len(d.AddEdges))
	for _, ep := range d.AddEdges {
		if err := checkAttrs("add edge", ep); err != nil {
			return err
		}
		if ep.From == ep.To {
			return fmt.Errorf("graph: Apply: add edge: self-loop on node %d", ep.From)
		}
		key := pairKey(ep.From, ep.To)
		// Removing and re-adding the same pair is a replace and is allowed;
		// adding over a surviving edge or adding the same pair twice is not.
		if added[key] || (hasEdge(ep.From, ep.To) && !removes[key]) {
			return fmt.Errorf("graph: Apply: add edge %d→%d: edge exists (use UpdateEdges)", ep.From, ep.To)
		}
		added[key] = true
	}

	if len(d.AddEdges) == 0 && len(removes) == 0 {
		// Attribute-only: same topology, so the CSR offset arrays stay
		// shared and only the edge arrays are copied and patched.
		outEdges := slices.Clone(g.outEdges)
		for _, ep := range updates {
			for i := g.outHead[ep.From]; i < g.outHead[ep.From+1]; i++ {
				if outEdges[i].To == ep.To {
					outEdges[i].Objective = ep.Objective
					outEdges[i].Budget = ep.Budget
				}
			}
		}
		inEdges := slices.Clone(g.inEdges)
		for _, ep := range updates {
			for i := g.inHead[ep.To]; i < g.inHead[ep.To+1]; i++ {
				if inEdges[i].To == ep.From {
					inEdges[i].Objective = ep.Objective
					inEdges[i].Budget = ep.Budget
				}
			}
		}
		out.outEdges, out.inEdges = outEdges, inEdges
	} else {
		// Topology changed: merge the edge list (updates applied, removals
		// skipped, additions appended) and rebuild both CSRs through the
		// same counting sort Builder.Build uses.
		n := g.NumNodes()
		recs := make([]builderEdge, 0, g.NumEdges()+len(d.AddEdges))
		for v := 0; v < n; v++ {
			for _, e := range g.Out(NodeID(v)) {
				key := pairKey(NodeID(v), e.To)
				if removes[key] {
					continue
				}
				rec := builderEdge{from: NodeID(v), to: e.To, objective: e.Objective, budget: e.Budget}
				if ep, ok := updates[key]; ok {
					rec.objective, rec.budget = ep.Objective, ep.Budget
				}
				recs = append(recs, rec)
			}
		}
		for _, ep := range d.AddEdges {
			recs = append(recs, builderEdge{from: ep.From, to: ep.To, objective: ep.Objective, budget: ep.Budget})
		}
		out.outHead, out.outEdges, out.inHead, out.inEdges = buildCSR(recs, n)
	}

	// Attribute extrema are inputs to the scaling factor θ and the search
	// depth bound; recompute them over the new edge set.
	out.minObjective, out.minBudget = math.Inf(1), math.Inf(1)
	out.maxObjective, out.maxBudget = 0, 0
	for _, e := range out.outEdges {
		out.minObjective = math.Min(out.minObjective, e.Objective)
		out.minBudget = math.Min(out.minBudget, e.Budget)
		out.maxObjective = math.Max(out.maxObjective, e.Objective)
		out.maxBudget = math.Max(out.maxBudget, e.Budget)
	}
	if len(out.outEdges) == 0 {
		out.minObjective, out.minBudget = 0, 0
	}
	return nil
}
