package experiments

// Machine-readable benchmarking: unlike the figure runners, which render the
// paper's tables for humans, RunBench measures fixed serving workloads and
// emits a BenchReport meant to be committed as BENCH_<rev>.json. Every PR
// that touches the hot path records one, so the repository carries a
// performance trajectory instead of anecdotes. CompareBench is the CI
// regression gate over two such reports.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kor/internal/core"
)

// BenchOptions sizes one benchmark run.
type BenchOptions struct {
	// Seed drives the dataset and query generators.
	Seed int64
	// Queries per workload cell (0 = 16 full / 8 smoke).
	Queries int
	// Iters is how many measured passes run over each query set (0 = 3).
	Iters int
	// Smoke shrinks the datasets to CI size: the same workload names, far
	// smaller graphs, so a smoke report is only comparable to another smoke
	// report.
	Smoke bool
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Seed == 0 {
		o.Seed = 2012
	}
	if o.Queries <= 0 {
		if o.Smoke {
			o.Queries = 8
		} else {
			o.Queries = 16
		}
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	return o
}

// BenchEntry is one (workload, algorithm) measurement. Per-op quantities are
// per query.
type BenchEntry struct {
	Workload    string  `json:"workload"`
	Algorithm   string  `json:"algorithm"`
	Queries     int     `json:"queries"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	LabelsPerOp float64 `json:"labels_per_op"`
	// SweepsPerOp counts shared-oracle Dijkstra sweeps (lazy oracles);
	// PlanSweepsPerOp counts query-owned sweeps (Δ-bounded candidate
	// lookups and path reconstruction).
	SweepsPerOp     float64 `json:"sweeps_per_op"`
	PlanSweepsPerOp float64 `json:"plan_sweeps_per_op,omitempty"`
	// SharedSweepsPerOp counts plan sweeps answered from the Searcher's
	// cross-query shared sweep cache instead of computed (concurrent-mixed
	// workload; zero when sharing is disabled).
	SharedSweepsPerOp float64 `json:"shared_sweeps_per_op,omitempty"`
	AllocsPerOp       float64 `json:"allocs_per_op"`
	BytesPerOp        float64 `json:"bytes_per_op"`
	// HeapAllocDeltaBytes and HeapSysDeltaBytes record the live-heap and
	// OS-reserved-heap growth across the measured region (negative when a
	// collection ran mid-measure). HeapSys growth approximates the
	// workload's peak-footprint cost and is what the regression gate reads;
	// within one process run the cells execute sequentially, so the numbers
	// are order-dependent and only large movements are meaningful.
	HeapAllocDeltaBytes int64 `json:"heap_alloc_delta_bytes,omitempty"`
	HeapSysDeltaBytes   int64 `json:"heap_sys_delta_bytes,omitempty"`
	Failures            int   `json:"failures,omitempty"`
	// FailureReason records why the first failed query failed (search error,
	// empty result, or an infeasible best route), so a failure count in a
	// committed report is diagnosable without rerunning the suite.
	FailureReason string `json:"failure_reason,omitempty"`
}

// BenchReport is the committed benchmark artifact.
type BenchReport struct {
	Schema    int          `json:"schema"`
	GoVersion string       `json:"go_version"`
	Smoke     bool         `json:"smoke,omitempty"`
	Seed      int64        `json:"seed"`
	Entries   []BenchEntry `json:"entries"`
}

// benchWorkload names one dataset+query cell of the bench suite.
type benchWorkload struct {
	name    string
	build   func(o BenchOptions) (*Dataset, error)
	m       int
	delta   float64
	lineup  []Algorithm
	descrip string
}

// sweepCounter is the optional oracle capability the sweeps column reads.
type sweepCounter interface{ SweepCount() int64 }

func benchLineup() []Algorithm {
	oss := core.DefaultOptions()
	bb := core.DefaultOptions()
	g := core.DefaultOptions()
	return []Algorithm{
		{Name: "OSScaling", Opts: oss, Kind: KindOSScaling},
		{Name: "BucketBound", Opts: bb, Kind: KindBucketBound},
		{Name: "Greedy1", Opts: g, Kind: KindGreedy},
	}
}

func benchWorkloads(o BenchOptions) []benchWorkload {
	flickr := func(bo BenchOptions) (*Dataset, error) {
		return NewFlickrDataset(Config{Seed: bo.Seed, Queries: bo.Queries, FastFlickr: bo.Smoke})
	}
	roadNodes := 5000
	if o.Smoke {
		roadNodes = 1500
	}
	road := func(bo BenchOptions) (*Dataset, error) {
		return NewRoadDataset(Config{Seed: bo.Seed, Queries: bo.Queries}, roadNodes), nil
	}
	roadIndexed := func(bo BenchOptions) (*Dataset, error) {
		return NewRoadIndexedDataset(Config{Seed: bo.Seed, Queries: bo.Queries}, roadNodes)
	}
	return []benchWorkload{
		{
			name:    "flickr-dense",
			build:   flickr,
			m:       6,
			delta:   6,
			lineup:  benchLineup(),
			descrip: "Flickr-like city graph, dense (matrix) oracle, m=6 Δ=6",
		},
		{
			name:    "road-lazy",
			build:   road,
			m:       6,
			delta:   9,
			lineup:  benchLineup(),
			descrip: "synthetic road network, lazy sweep oracle, m=6 Δ=9",
		},
		{
			name:    "road-indexed",
			build:   roadIndexed,
			m:       6,
			delta:   9,
			lineup:  benchLineup(),
			descrip: "same road network served from the disk-loaded partitioned index (mmap), m=6 Δ=9",
		},
	}
}

// RunBench measures the serving workloads and returns the report. log, when
// non-nil, receives progress lines.
func RunBench(o BenchOptions, log io.Writer) (*BenchReport, error) {
	o = o.withDefaults()
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	report := &BenchReport{Schema: 1, GoVersion: runtime.Version(), Smoke: o.Smoke, Seed: o.Seed}
	for _, w := range benchWorkloads(o) {
		ds, err := w.build(o)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench workload %s: %w", w.name, err)
		}
		queries := ds.Queries(Config{Seed: o.Seed, Queries: o.Queries}, w.m, w.delta)
		logf("bench %s (%s): %d queries", w.name, w.descrip, len(queries))
		for _, algo := range w.lineup {
			e, err := measureBench(ds, queries, algo, o.Iters)
			if err != nil {
				if ds.Cleanup != nil {
					ds.Cleanup()
				}
				return nil, fmt.Errorf("experiments: bench %s/%s: %w", w.name, algo.Name, err)
			}
			e.Workload = w.name
			report.Entries = append(report.Entries, e)
			logf("  %-12s %12.0f ns/op  %8.0f labels/op  %6.2f+%.2f sweeps/op  %8.0f allocs/op",
				algo.Name, e.NsPerOp, e.LabelsPerOp, e.SweepsPerOp, e.PlanSweepsPerOp, e.AllocsPerOp)
		}
		if ds.Cleanup != nil {
			if err := ds.Cleanup(); err != nil {
				return nil, fmt.Errorf("experiments: bench workload %s cleanup: %w", w.name, err)
			}
		}
	}
	if err := runConcurrentMixed(o, report, logf); err != nil {
		return nil, err
	}
	return report, nil
}

// mixedOp is one operation of the concurrent-mixed workload: a query paired
// with the algorithm that answers it.
type mixedOp struct {
	q    core.Query
	algo Algorithm
}

// concurrentMixWorkers bounds the worker pool of the concurrent-mixed cell.
const concurrentMixWorkers = 8

// runConcurrentMixed measures the duplicate-heavy concurrent serving shape
// the cross-query sweep cache exists for: a worker pool draining a shuffled
// mix in which every query appears several times under rotating algorithms,
// all against one lazy-oracle Searcher. Two cells are recorded — sharing
// enabled and disabled on the same dataset — so the committed report itself
// shows the per-query sweep and allocation drop sharing buys.
func runConcurrentMixed(o BenchOptions, report *BenchReport, logf func(string, ...any)) error {
	const name = "concurrent-mixed"
	roadNodes := 5000
	if o.Smoke {
		roadNodes = 1500
	}
	ds := NewRoadDataset(Config{Seed: o.Seed, Queries: o.Queries}, roadNodes)
	queries := ds.Queries(Config{Seed: o.Seed, Queries: o.Queries}, 6, 9)
	lineup := benchLineup()

	// Duplicate-heavy mix: every query appears once per lineup algorithm,
	// shuffled deterministically so duplicates arrive interleaved, not
	// back-to-back.
	mix := make([]mixedOp, 0, len(queries)*len(lineup))
	for _, algo := range lineup {
		for _, q := range queries {
			mix = append(mix, mixedOp{q: q, algo: algo})
		}
	}
	rng := rand.New(rand.NewSource(o.Seed + 17))
	rng.Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })

	logf("bench %s (duplicate-heavy worker-pool mix, lazy sweep oracle, %d workers): %d ops",
		name, concurrentMixWorkers, len(mix))
	for _, shared := range []bool{true, false} {
		e, err := measureConcurrentMixed(ds, mix, shared, o.Iters)
		if err != nil {
			return fmt.Errorf("experiments: bench %s: %w", name, err)
		}
		e.Workload = name
		report.Entries = append(report.Entries, e)
		logf("  %-12s %12.0f ns/op  %8.0f labels/op  %6.2f+%.2f(+%.2f shared) sweeps/op  %8.0f allocs/op",
			e.Algorithm, e.NsPerOp, e.LabelsPerOp, e.SweepsPerOp, e.PlanSweepsPerOp, e.SharedSweepsPerOp, e.AllocsPerOp)
	}
	return nil
}

// measureConcurrentMixed times iters worker-pool passes over the mix with
// sweep sharing toggled as requested. The sweep cache (when enabled) is
// dropped before the measured region and kept across passes — its lifetime
// under a real engine is the snapshot's, which outlives any one request.
func measureConcurrentMixed(ds *Dataset, mix []mixedOp, shared bool, iters int) (BenchEntry, error) {
	algoName := "MixedPrivate"
	if shared {
		algoName = "MixedShared"
	}
	e := BenchEntry{Algorithm: algoName, Queries: len(mix), Iters: iters}
	if len(mix) == 0 {
		return e, fmt.Errorf("no operations generated")
	}
	// SetSweepSharing drops all entries either way: each mode starts cold.
	ds.Searcher.SetSweepSharing(shared)
	defer ds.Searcher.SetSweepSharing(true)

	for _, op := range mix { // warm pass, also counts failures
		res, err := op.algo.invoke(ds.Searcher, op.q)
		if err != nil || len(res.Routes) == 0 || !res.Routes[0].Feasible {
			e.Failures++
			if e.FailureReason == "" {
				switch {
				case err != nil:
					e.FailureReason = err.Error()
				case len(res.Routes) == 0:
					e.FailureReason = "no route returned"
				default:
					e.FailureReason = "best route infeasible (budget violated)"
				}
			}
		}
	}
	ds.Searcher.SetSweepSharing(shared) // drop warm-pass entries: measure cold

	var counter sweepCounter
	if sc, ok := ds.Searcher.Oracle().(sweepCounter); ok {
		counter = sc
	}
	sweeps0 := int64(0)
	if counter != nil {
		sweeps0 = counter.SweepCount()
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var labels, planSweeps, sharedSweeps int64
	start := time.Now()
	for it := 0; it < iters; it++ {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < concurrentMixWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var l, p, s int64
				for i := range next {
					res, _ := mix[i].algo.invoke(ds.Searcher, mix[i].q)
					l += int64(res.Metrics.LabelsCreated)
					p += int64(res.Metrics.PlanSweeps)
					s += int64(res.Metrics.SharedSweeps)
				}
				atomic.AddInt64(&labels, l)
				atomic.AddInt64(&planSweeps, p)
				atomic.AddInt64(&sharedSweeps, s)
			}()
		}
		for i := range mix {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ops := float64(iters * len(mix))
	e.NsPerOp = float64(elapsed.Nanoseconds()) / ops
	e.LabelsPerOp = float64(labels) / ops
	e.PlanSweepsPerOp = float64(planSweeps) / ops
	e.SharedSweepsPerOp = float64(sharedSweeps) / ops
	e.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / ops
	e.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / ops
	e.HeapAllocDeltaBytes = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	e.HeapSysDeltaBytes = int64(m1.HeapSys) - int64(m0.HeapSys)
	if counter != nil {
		e.SweepsPerOp = float64(counter.SweepCount()-sweeps0) / ops
	}
	return e, nil
}

// measureBench times iters passes over the query set, reading allocation and
// sweep counters around the measured region. One untimed pass warms the
// oracle caches first, standing in for the paper's offline pre-processing.
func measureBench(ds *Dataset, queries []core.Query, algo Algorithm, iters int) (BenchEntry, error) {
	e := BenchEntry{Algorithm: algo.Name, Queries: len(queries), Iters: iters}
	if len(queries) == 0 {
		return e, fmt.Errorf("no queries generated")
	}
	for _, q := range queries { // warm pass, also counts failures
		res, err := algo.invoke(ds.Searcher, q)
		if err != nil || len(res.Routes) == 0 || !res.Routes[0].Feasible {
			e.Failures++
			if e.FailureReason == "" {
				switch {
				case err != nil:
					e.FailureReason = err.Error()
				case len(res.Routes) == 0:
					e.FailureReason = "no route returned"
				default:
					e.FailureReason = "best route infeasible (budget violated)"
				}
			}
		}
	}

	var counter sweepCounter
	if sc, ok := ds.Searcher.Oracle().(sweepCounter); ok {
		counter = sc
	}
	sweeps0 := int64(0)
	if counter != nil {
		sweeps0 = counter.SweepCount()
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	labels, planSweeps := 0, 0
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, q := range queries {
			res, _ := algo.invoke(ds.Searcher, q)
			labels += res.Metrics.LabelsCreated
			planSweeps += res.Metrics.PlanSweeps
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ops := float64(iters * len(queries))
	e.NsPerOp = float64(elapsed.Nanoseconds()) / ops
	e.LabelsPerOp = float64(labels) / ops
	e.PlanSweepsPerOp = float64(planSweeps) / ops
	e.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / ops
	e.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / ops
	e.HeapAllocDeltaBytes = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	e.HeapSysDeltaBytes = int64(m1.HeapSys) - int64(m0.HeapSys)
	if counter != nil {
		e.SweepsPerOp = float64(counter.SweepCount()-sweeps0) / ops
	}
	return e, nil
}

// WriteBenchReport writes the report as indented JSON to path ("-" = stdout).
func WriteBenchReport(r *BenchReport, path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadBenchReport loads a report written by WriteBenchReport.
func ReadBenchReport(path string) (*BenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench report %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one (workload, algorithm) cell that got worse between two
// reports: its ns/op grew past the allowed ratio, or its failure count
// increased. A cell that regressed both ways yields two entries.
type Regression struct {
	Workload  string
	Algorithm string
	BaseNs    float64
	CurNs     float64
	Ratio     float64
	// Failure-count regression (Ratio is 0 on these entries).
	BaseFailures int
	CurFailures  int
	// FailureReason is the current report's recorded reason, when any.
	FailureReason string
	// Heap-footprint regression (set only on heap entries).
	BaseHeapBytes int64
	CurHeapBytes  int64
}

func (r Regression) String() string {
	if r.CurFailures > r.BaseFailures {
		reason := ""
		if r.FailureReason != "" {
			reason = " (" + r.FailureReason + ")"
		}
		return fmt.Sprintf("%s/%s: failures %d -> %d%s",
			r.Workload, r.Algorithm, r.BaseFailures, r.CurFailures, reason)
	}
	if r.CurHeapBytes > r.BaseHeapBytes {
		return fmt.Sprintf("%s/%s: heap growth %.1f MiB -> %.1f MiB",
			r.Workload, r.Algorithm, float64(r.BaseHeapBytes)/(1<<20), float64(r.CurHeapBytes)/(1<<20))
	}
	return fmt.Sprintf("%s/%s: %.0f ns/op -> %.0f ns/op (%.2fx)",
		r.Workload, r.Algorithm, r.BaseNs, r.CurNs, r.Ratio)
}

// gateFloorNs is the minimum baseline measured-region wall time (ns/op ×
// queries × iters) for a cell to participate in regression gating. Cells
// below it complete in microseconds, where scheduler noise alone can exceed
// the regression ratio.
const gateFloorNs = 5e6

// heapGateFloorBytes is the minimum absolute HeapSys growth over baseline
// before the heap gate fires. Heap deltas of sequentially-run cells are
// order-dependent and the runtime grows HeapSys in multi-megabyte spans, so
// only movements a real layout regression would cause are gated.
const heapGateFloorBytes = 32 << 20

// CompareBench reports every cell present in both reports that regressed:
// current ns/op exceeding maxRatio times the base, a failure count that
// grew — failures are deterministic over the fixed query set, so any
// increase means a query that used to be answered no longer is, regardless
// of how fast the cell runs — or measured-region heap growth (HeapSys
// delta) past both maxRatio and an absolute heapGateFloorBytes over the
// baseline. Cells present in only one report are ignored
// (workload sets may evolve between revisions); the ns/op gate additionally
// skips cells whose baseline measured region is under gateFloorNs — too
// noisy to gate. Callers must compare like with like: a smoke report is
// only comparable to another smoke report (BenchReport.Smoke).
func CompareBench(base, cur *BenchReport, maxRatio float64) []Regression {
	index := make(map[string]BenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		index[e.Workload+"/"+e.Algorithm] = e
	}
	var out []Regression
	for _, e := range cur.Entries {
		b, ok := index[e.Workload+"/"+e.Algorithm]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if e.Failures > b.Failures {
			out = append(out, Regression{
				Workload: e.Workload, Algorithm: e.Algorithm,
				BaseFailures: b.Failures, CurFailures: e.Failures,
				FailureReason: e.FailureReason,
			})
		}
		// Heap gate: fire only past both the absolute floor and the ratio —
		// either alone is noise (a tiny baseline doubles trivially; a big
		// workload growing 5% is within run-to-run variance).
		growth := e.HeapSysDeltaBytes - b.HeapSysDeltaBytes
		if growth > heapGateFloorBytes && float64(e.HeapSysDeltaBytes) > maxRatio*float64(max(b.HeapSysDeltaBytes, 1)) {
			out = append(out, Regression{
				Workload: e.Workload, Algorithm: e.Algorithm,
				BaseHeapBytes: b.HeapSysDeltaBytes, CurHeapBytes: e.HeapSysDeltaBytes,
			})
		}
		if b.NsPerOp*float64(b.Queries*b.Iters) < gateFloorNs {
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		if ratio > maxRatio {
			out = append(out, Regression{
				Workload: e.Workload, Algorithm: e.Algorithm,
				BaseNs: b.NsPerOp, CurNs: e.NsPerOp, Ratio: ratio,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// BenchMarkdown renders the report as the Markdown table README embeds.
func BenchMarkdown(r *BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| Workload | Algorithm | ms/query | Labels/query | Sweeps/query | Plan sweeps/query | Allocs/query |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.0f | %.2f | %.2f | %.0f |\n",
			e.Workload, e.Algorithm, e.NsPerOp/1e6, e.LabelsPerOp, e.SweepsPerOp, e.PlanSweepsPerOp, e.AllocsPerOp)
	}
	return b.String()
}
