package experiments

import (
	"math"

	"kor/internal/core"
	"kor/internal/graph"
	"kor/internal/stats"
)

// ExampleRoutes reproduces the §4.2.7 demonstration (Figures 20–21): one
// query posed twice, with a generous and a tight Δ, showing that the
// returned most-popular route changes when the budget no longer admits it.
// The runner scans the workload for a query pair exhibiting the effect and
// reports both routes.
func ExampleRoutes(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Figures 20–21: example routes under Δ=9km vs Δ=6km (" + ds.Name + ")",
		Columns: []string{"delta_km", "route", "objective", "budget_km", "keywords"},
		Note:    "the generous-budget route is pruned once Δ tightens; paper §4.2.7",
	}

	opts := core.DefaultOptions()
	for _, m := range []int{4, 3, 2} {
		for _, q := range ds.Queries(cfg, m, 9) {
			wide := q
			wide.Budget = 9
			tight := q
			tight.Budget = 6
			resWide, errW := ds.Searcher.OSScaling(wide, opts)
			if errW != nil {
				continue
			}
			resTight, errT := ds.Searcher.OSScaling(tight, opts)
			if errT != nil {
				continue
			}
			rw, rt := resWide.Best(), resTight.Best()
			if rw.Budget <= 6 || routesEqual(rw, rt) {
				continue // the wide route survives the tight budget: no story
			}
			kws := keywordNames(ds.Graph, q.Keywords)
			t.AddRow(9.0, rw.String(), rw.Objective, rw.Budget, kws)
			t.AddRow(6.0, rt.String(), rt.Objective, rt.Budget, kws)
			if math.IsInf(rt.Objective, 0) {
				continue
			}
			return t
		}
	}
	t.Note = "no query pair exhibited the budget crossover on this workload; " +
		"increase -queries or change the seed"
	return t
}

func routesEqual(a, b core.Route) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

func keywordNames(g *graph.Graph, kws []graph.Term) string {
	out := ""
	for i, t := range kws {
		if i > 0 {
			out += ","
		}
		out += g.Vocab().Name(t)
	}
	return out
}

// AblationStrategies quantifies the paper's claim (§4.2.1) that the two
// optimization strategies make the label algorithms 3–5× faster, by running
// OSScaling with each strategy toggled.
func AblationStrategies(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Ablation: optimization strategies 1 and 2 (" + ds.Name + ")",
		Columns: []string{"variant", "runtime_ms", "labels_created", "pruned_s2"},
		Note:    "OSScaling, Δ=6, m=6; the paper reports 3–5× slowdown without the strategies",
	}
	qs := ds.Queries(cfg, 6, ds.DefaultDelta)
	variants := []struct {
		name   string
		s1, s2 bool // disabled flags
	}{
		{"both strategies", false, false},
		{"no strategy 1", true, false},
		{"no strategy 2", false, true},
		{"neither", true, true},
	}
	for _, v := range variants {
		opts := core.DefaultOptions()
		opts.DisableStrategy1 = v.s1
		opts.DisableStrategy2 = v.s2
		m := Measure(ds, qs, Algorithm{Name: v.name, Opts: opts, Kind: KindOSScaling})
		t.AddRow(v.name, m.MeanMs, m.Metrics.LabelsCreated, m.Metrics.PrunedStrategy2)
		cfg.logf("ablation: %s done", v.name)
	}
	return t
}

// AblationOracles compares the three τ/σ oracle implementations end to end
// on the same workload — the design trade DESIGN.md calls out.
func AblationOracles(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Ablation: oracle implementations (" + ds.Name + ")",
		Columns: []string{"oracle", "runtime_ms", "failures"},
		Note:    "OSScaling, Δ=6, m=6; matrix≈paper's dense tables, lazy=memoized sweeps, partitioned=§6 future work",
	}
	qs := ds.Queries(cfg, 6, ds.DefaultDelta)
	for _, o := range OracleVariants(ds.Graph) {
		searcher := core.NewSearcher(ds.Graph, o.Oracle, ds.Index)
		sub := &Dataset{Name: ds.Name, Graph: ds.Graph, Index: ds.Index, Searcher: searcher,
			DeltaSweep: ds.DeltaSweep, DefaultDelta: ds.DefaultDelta}
		m := Measure(sub, qs, Algorithm{Name: o.Name, Opts: core.DefaultOptions(), Kind: KindOSScaling})
		t.AddRow(o.Name, m.MeanMs, m.Failed)
		cfg.logf("oracle ablation: %s done", o.Name)
	}
	return t
}
