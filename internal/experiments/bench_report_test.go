package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *BenchReport {
	return &BenchReport{
		Schema:    1,
		GoVersion: "go1.24",
		Seed:      2012,
		Entries: []BenchEntry{
			{Workload: "flickr-dense", Algorithm: "OSScaling", Queries: 16, Iters: 3,
				NsPerOp: 2e6, LabelsPerOp: 6800, AllocsPerOp: 7000},
			{Workload: "road-lazy", Algorithm: "BucketBound", Queries: 16, Iters: 3,
				NsPerOp: 5e7, LabelsPerOp: 2000, SweepsPerOp: 120, AllocsPerOp: 3300},
		},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchReport(r, path); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadBenchReport(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back.Entries) != len(r.Entries) || back.Seed != r.Seed || back.Schema != r.Schema {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Entries[1].SweepsPerOp != 120 {
		t.Fatalf("entry fields lost: %+v", back.Entries[1])
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Entries[0].NsPerOp = base.Entries[0].NsPerOp * 3 // 3x regression
	cur.Entries[1].NsPerOp = base.Entries[1].NsPerOp * 1.5
	// An entry only the current report has must be ignored.
	cur.Entries = append(cur.Entries, BenchEntry{Workload: "new", Algorithm: "Greedy1", NsPerOp: 1})

	regs := CompareBench(base, cur, 2.0)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Workload != "flickr-dense" || regs[0].Ratio < 2.9 || regs[0].Ratio > 3.1 {
		t.Fatalf("wrong regression reported: %+v", regs[0])
	}

	if regs := CompareBench(base, base, 2.0); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
}

// Failure counts are deterministic, so any increase is a regression even
// when the cell's timing sits below the noise floor — and shrinking or
// stable counts never are.
func TestCompareBenchFlagsFailureIncrease(t *testing.T) {
	base := sampleReport()
	base.Entries[0].Failures = 2
	cur := sampleReport()
	cur.Entries[0].Failures = 5
	cur.Entries[0].FailureReason = "no route returned"
	cur.Entries[0].NsPerOp = 20_000 // below the gate floor: timing is ignored, failures are not
	cur.Entries[1].Failures = 0     // same as base: not a regression

	regs := CompareBench(base, cur, 2.0)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Workload != "flickr-dense" || r.BaseFailures != 2 || r.CurFailures != 5 {
		t.Fatalf("wrong failure regression: %+v", r)
	}
	if s := r.String(); !strings.Contains(s, "failures 2 -> 5") || !strings.Contains(s, "no route returned") {
		t.Fatalf("failure regression renders %q", s)
	}

	// Fewer failures than the baseline is an improvement, not a regression.
	cur.Entries[0].Failures = 1
	if regs := CompareBench(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("failure decrease flagged: %v", regs)
	}
}

// Cells whose baseline measured region is microseconds are below the gate
// floor: too noisy for a ratio check, never flagged.
func TestCompareBenchIgnoresNoiseFloorCells(t *testing.T) {
	base := sampleReport()
	base.Entries = append(base.Entries, BenchEntry{
		Workload: "flickr-dense", Algorithm: "Greedy1", Queries: 8, Iters: 3, NsPerOp: 30_000,
	})
	cur := sampleReport()
	cur.Entries = append(cur.Entries, BenchEntry{
		Workload: "flickr-dense", Algorithm: "Greedy1", Queries: 8, Iters: 3, NsPerOp: 300_000, // 10x, but ~0.7ms region
	})
	if regs := CompareBench(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("sub-floor cell was gated: %v", regs)
	}
}

func TestBenchMarkdown(t *testing.T) {
	md := BenchMarkdown(sampleReport())
	for _, want := range []string{"| Workload |", "flickr-dense", "OSScaling", "road-lazy"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if lines := strings.Count(md, "\n"); lines != 4 { // header + separator + 2 rows
		t.Fatalf("unexpected table shape (%d lines):\n%s", lines, md)
	}
}

func TestCompareBenchHeapGate(t *testing.T) {
	base := sampleReport()
	base.Entries[0].HeapSysDeltaBytes = 8 << 20
	base.Entries[1].HeapSysDeltaBytes = 16 << 20

	// Doubling under the absolute floor: noise, not a regression.
	cur := sampleReport()
	cur.Entries[0].HeapSysDeltaBytes = 20 << 20
	cur.Entries[1].HeapSysDeltaBytes = 16 << 20
	if regs := CompareBench(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("sub-floor heap growth gated: %v", regs)
	}

	// Large absolute growth but under the ratio: also not gated.
	cur = sampleReport()
	cur.Entries[1].HeapSysDeltaBytes = base.Entries[1].HeapSysDeltaBytes + heapGateFloorBytes + (1 << 20)
	cur.Entries[1].HeapSysDeltaBytes = min(cur.Entries[1].HeapSysDeltaBytes, 2*base.Entries[1].HeapSysDeltaBytes)
	if regs := CompareBench(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("sub-ratio heap growth gated: %v", regs)
	}

	// Past both the floor and the ratio: gated, with a readable message.
	cur = sampleReport()
	cur.Entries[1].HeapSysDeltaBytes = 128 << 20
	regs := CompareBench(base, cur, 2.0)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].CurHeapBytes != 128<<20 || regs[0].BaseHeapBytes != 16<<20 {
		t.Fatalf("wrong heap regression: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "heap growth") {
		t.Fatalf("heap regression renders as %q", regs[0].String())
	}

	// A baseline without heap fields (older schema) never trips the gate by
	// ratio alone: growth from zero still needs the absolute floor.
	base.Entries[1].HeapSysDeltaBytes = 0
	cur.Entries[1].HeapSysDeltaBytes = 16 << 20
	if regs := CompareBench(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("old-schema baseline gated: %v", regs)
	}
}

func TestBenchEntryHeapFieldsRoundTrip(t *testing.T) {
	r := sampleReport()
	r.Entries[0].HeapAllocDeltaBytes = -(1 << 20) // negative: GC ran mid-measure
	r.Entries[0].HeapSysDeltaBytes = 64 << 20
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchReport(r, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries[0].HeapAllocDeltaBytes != -(1<<20) || back.Entries[0].HeapSysDeltaBytes != 64<<20 {
		t.Fatalf("heap fields lost: %+v", back.Entries[0])
	}
}
