package experiments

import (
	"errors"
	"math"
	"testing"

	"kor/internal/core"
)

// TestBoundsOnFlickrDataset is the end-to-end validation: on the real
// pipeline output (photos → locations → trips → graph), the approximation
// algorithms must stay within their theoretical bounds of the exact answer,
// query by query.
func TestBoundsOnFlickrDataset(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 10

	checked := 0
	for _, m := range []int{1, 2, 3} {
		for _, q := range ds.Queries(cfg, m, 6) {
			exactOpts := core.DefaultOptions()
			exactOpts.MaxExpansions = 3_000_000
			exact, err := ds.Searcher.Exact(q, exactOpts)
			if errors.Is(err, core.ErrSearchLimit) {
				continue // too hard to verify exactly; skip this query
			}
			if errors.Is(err, core.ErrNoRoute) {
				// Approximations must agree nothing exists.
				if _, err2 := ds.Searcher.OSScaling(q, core.DefaultOptions()); !errors.Is(err2, core.ErrNoRoute) {
					t.Fatalf("m=%d: exact says no route, OSScaling says %v", m, err2)
				}
				continue
			}
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			opt := exact.Best().Objective

			for _, eps := range []float64{0.3, 0.7} {
				opts := core.DefaultOptions()
				opts.Epsilon = eps
				oss, err := ds.Searcher.OSScaling(q, opts)
				if err != nil {
					t.Fatalf("m=%d ε=%v: OSScaling failed on feasible query: %v", m, eps, err)
				}
				if oss.Best().Objective > opt/(1-eps)+1e-9 {
					t.Fatalf("m=%d ε=%v: OSScaling %v breaks bound (opt %v)",
						m, eps, oss.Best().Objective, opt)
				}
				bb, err := ds.Searcher.BucketBound(q, opts)
				if err != nil {
					t.Fatalf("m=%d ε=%v: BucketBound failed on feasible query: %v", m, eps, err)
				}
				if bb.Best().Objective > opts.Beta*opt/(1-eps)+1e-9 {
					t.Fatalf("m=%d ε=%v: BucketBound %v breaks bound (opt %v)",
						m, eps, bb.Best().Objective, opt)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no exactly-verifiable queries on this workload")
	}
	t.Logf("verified bounds on %d dataset queries", checked)
}

// TestGreedyFailureRateIsMeasurable reproduces the precondition of Figure
// 13 on the pipeline dataset: greedy must succeed on a solid majority of
// solvable queries but fail on some (the paper reports 10–20%).
func TestGreedyFailureRateIsMeasurable(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 24
	qs := ds.Queries(cfg, 2, 9)
	base := Measure(ds, qs, baseAlgorithm())
	greedy := Measure(ds, qs, Algorithm{Name: "Greedy-2", Opts: width2(), Kind: KindGreedy})

	solvable, failed := 0, 0
	for i := range qs {
		if math.IsNaN(base.Objectives[i]) {
			continue
		}
		solvable++
		if math.IsNaN(greedy.Objectives[i]) {
			failed++
		}
	}
	if solvable < 5 {
		t.Skipf("only %d solvable queries", solvable)
	}
	if failed == solvable {
		t.Errorf("greedy failed all %d solvable queries", solvable)
	}
	t.Logf("greedy failure rate: %d/%d", failed, solvable)
}

func width2() core.Options {
	o := core.DefaultOptions()
	o.Width = 2
	return o
}

// TestRelativeRatioOrderOnDataset: the central accuracy ordering of Figures
// 10–11 on the pipeline dataset — BucketBound closer to the base than the
// greedy heuristics, averaged over a workload.
func TestRelativeRatioOrderOnDataset(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 16
	qs := ds.Queries(cfg, 2, 9)
	base := Measure(ds, qs, baseAlgorithm())

	bb := RelativeRatio(Measure(ds, qs, Algorithm{Opts: core.DefaultOptions(), Kind: KindBucketBound}), base)
	g2 := RelativeRatio(Measure(ds, qs, Algorithm{Opts: width2(), Kind: KindGreedy}), base)
	if math.IsNaN(bb) || math.IsNaN(g2) {
		t.Skip("workload yielded no comparable queries")
	}
	if bb < 1-1e-9 {
		// The base is OSScaling ε=0.1; BucketBound can best it only within
		// floating noise.
		t.Errorf("BucketBound ratio %v below 1", bb)
	}
	if bb > g2+0.25 {
		t.Errorf("BucketBound ratio %v not meaningfully better than Greedy-2 %v", bb, g2)
	}
}
