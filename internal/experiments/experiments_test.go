package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"kor/internal/core"
)

// fastConfig keeps the harness tests quick: a small photo world and few
// queries. The assertions are about plumbing and invariants, not absolute
// performance.
func fastConfig() Config {
	return Config{Seed: 7, Queries: 4, FastFlickr: true}
}

func fastFlickr(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewFlickrDataset(fastConfig())
	if err != nil {
		t.Fatalf("NewFlickrDataset: %v", err)
	}
	return ds
}

func TestFlickrDatasetBuilds(t *testing.T) {
	ds := fastFlickr(t)
	if ds.Graph.NumNodes() < 10 {
		t.Fatalf("tiny dataset has %d nodes", ds.Graph.NumNodes())
	}
	qs := ds.Queries(fastConfig(), 2, 6)
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range qs {
		if len(q.Keywords) != 2 || q.Budget != 6 {
			t.Fatalf("bad query %+v", q)
		}
	}
}

func TestMeasureCountsFailures(t *testing.T) {
	ds := fastFlickr(t)
	qs := ds.Queries(fastConfig(), 2, 6)
	m := Measure(ds, qs, Algorithm{Name: "OSScaling", Opts: core.DefaultOptions(), Kind: KindOSScaling})
	if m.Queries != len(qs) {
		t.Fatalf("measured %d of %d queries", m.Queries, len(qs))
	}
	nan := 0
	for _, o := range m.Objectives {
		if math.IsNaN(o) {
			nan++
		}
	}
	if nan != m.Failed {
		t.Fatalf("Failed=%d but %d NaN objectives", m.Failed, nan)
	}
	if m.MeanMs < 0 {
		t.Fatalf("negative runtime %v", m.MeanMs)
	}
	if f := m.FailureFraction(); f < 0 || f > 1 {
		t.Fatalf("failure fraction %v", f)
	}
}

func TestRelativeRatioProperties(t *testing.T) {
	base := Measurement{Objectives: []float64{2, 4, math.NaN(), 8}}
	same := Measurement{Objectives: []float64{2, 4, 6, 8}}
	if r := RelativeRatio(same, base); math.Abs(r-1) > 1e-12 {
		t.Errorf("self ratio = %v, want 1 (NaN rows skipped)", r)
	}
	worse := Measurement{Objectives: []float64{4, 8, 1, 16}}
	if r := RelativeRatio(worse, base); math.Abs(r-2) > 1e-12 {
		t.Errorf("ratio = %v, want 2", r)
	}
	empty := Measurement{Objectives: []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}}
	if r := RelativeRatio(empty, base); !math.IsNaN(r) {
		t.Errorf("all-failed ratio = %v, want NaN", r)
	}
}

// TestRatioAlgorithmsOrdering: on a shared workload, the ε=0.1 base is the
// most accurate of the label algorithms, so every relative ratio is ≥ 1−ε
// slack; BucketBound's ratio must respect its β bound against OSScaling on
// the same ε.
func TestRatioAlgorithmsOrdering(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 6
	qs := ds.Queries(cfg, 2, 9)
	base := Measure(ds, qs, baseAlgorithm())
	bbOpts := core.DefaultOptions()
	bb := Measure(ds, qs, Algorithm{Name: "BucketBound", Opts: bbOpts, Kind: KindBucketBound})
	r := RelativeRatio(bb, base)
	if math.IsNaN(r) {
		t.Skip("workload had no mutually-feasible queries")
	}
	// Base has bound 1/(1−0.1) ≈ 1.11 of optimal; BucketBound ≤ β/(1−ε) =
	// 2.4 of optimal. Relative ratio can therefore not exceed 2.4/1.0 and
	// not drop below 1/1.11.
	if r < 0.89 || r > 2.7 {
		t.Errorf("BucketBound relative ratio %v outside theoretical envelope", r)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", fastConfig(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunnerIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, id := range RunnerIDs() {
		if seen[id] {
			t.Fatalf("duplicate runner id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"0", "4", "5", "6", "8", "10", "11", "12", "14", "16", "17", "18", "19", "20"} {
		if !seen[want] {
			t.Errorf("missing runner for figure %s", want)
		}
	}
}

// TestFigureSmoke drives a cheap subset of the figure runners end to end on
// the tiny dataset, checking tables come back populated.
func TestFigureSmoke(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 3

	t6, t7 := Figure6and7(ds, cfg)
	if len(t6.Rows) != 5 || len(t7.Rows) != 5 {
		t.Fatalf("ε sweep rows = %d/%d, want 5/5", len(t6.Rows), len(t7.Rows))
	}
	t8, t9 := Figure8and9(ds, cfg)
	if len(t8.Rows) != 5 || len(t9.Rows) != 5 {
		t.Fatalf("β sweep rows = %d/%d", len(t8.Rows), len(t9.Rows))
	}
	gap := BruteForceGap(ds, cfg)
	if len(gap.Rows) != 3 {
		t.Fatalf("brute-force gap rows = %d", len(gap.Rows))
	}
	var buf bytes.Buffer
	if err := t6.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("render lost the title")
	}
}

func TestAblationStrategiesTable(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 3
	tbl := AblationStrategies(ds, cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(tbl.Rows))
	}
}

func TestExampleRoutesRuns(t *testing.T) {
	ds := fastFlickr(t)
	cfg := fastConfig()
	cfg.Queries = 8
	tbl := ExampleRoutes(ds, cfg)
	// Either a crossover was found (two rows) or the note explains why not.
	if len(tbl.Rows) == 0 && tbl.Note == "" {
		t.Fatal("example runner returned nothing")
	}
	if len(tbl.Rows) != 0 && len(tbl.Rows)%2 != 0 {
		t.Fatalf("example rows = %d, want pairs", len(tbl.Rows))
	}
}
