// Package experiments reproduces the paper's evaluation (§4): one runner
// per figure, each regenerating the figure's series as a text table. The
// tables report the same quantities over the same parameter sweeps; see
// EXPERIMENTS.md for the paper-versus-measured comparison and for the
// scaled-down workload sizes.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"kor/internal/apsp"
	"kor/internal/core"
	"kor/internal/gen"
	"kor/internal/graph"
	"kor/internal/queryset"
)

// Config sizes the harness. The defaults trade the paper's 50-query sets
// for 16-query sets so a full run finishes in minutes on a laptop; pass
// -queries 50 to korbench for the paper-sized workload.
type Config struct {
	// Seed drives every generator in the harness.
	Seed int64
	// Queries is the number of queries per set (paper: 50).
	Queries int
	// Log receives progress lines; nil silences them.
	Log io.Writer
	// FastFlickr shrinks the Flickr-like dataset (used by unit tests).
	FastFlickr bool
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2012
	}
	if c.Queries <= 0 {
		c.Queries = 16
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Dataset bundles a graph with the substrates a Searcher needs, plus the
// workload metadata the runners use.
type Dataset struct {
	Name     string
	Graph    *graph.Graph
	Index    graph.PostingSource
	Searcher *core.Searcher
	// DeltaSweep is the Δ axis the paper uses on this dataset (km).
	DeltaSweep []float64
	// DefaultDelta is the fixed Δ for the parameter-sweep figures.
	DefaultDelta float64
	// Planar marks kilometre-plane coordinates (road networks).
	Planar bool
	// Cleanup releases dataset resources (temp index files, mmaps); nil when
	// the dataset holds none. RunBench calls it after measuring.
	Cleanup func() error
}

// NewFlickrDataset builds the Flickr-like dataset with dense (matrix)
// pre-processing, the faithful rendition of the paper's setup.
func NewFlickrDataset(cfg Config) (*Dataset, error) {
	cfg = cfg.WithDefaults()
	fc := gen.FlickrConfig{Seed: cfg.Seed}
	if cfg.FastFlickr {
		fc.Users = 250
		fc.Attractions = 150
		fc.VocabSize = 200
	}
	g, st, err := gen.FlickrGraph(fc)
	if err != nil {
		return nil, fmt.Errorf("experiments: flickr dataset: %w", err)
	}
	cfg.logf("flickr-like dataset: %v", st)
	cfg.logf("graph: %v", g.ComputeStats())
	idx := graph.NewMemIndex(g)
	oracle := apsp.NewMatrixOracle(g)
	return &Dataset{
		Name:         "flickr-like",
		Graph:        g,
		Index:        idx,
		Searcher:     core.NewSearcher(g, oracle, idx),
		DeltaSweep:   []float64{3, 6, 9, 12, 15},
		DefaultDelta: 6,
	}, nil
}

// NewRoadDataset builds one synthetic road network with lazy
// pre-processing, used for the scalability experiments.
func NewRoadDataset(cfg Config, nodes int) *Dataset {
	cfg = cfg.WithDefaults()
	g := gen.RoadNetwork(gen.RoadConfig{Seed: cfg.Seed, Nodes: nodes})
	cfg.logf("road dataset %d nodes: %v", nodes, g.ComputeStats())
	idx := graph.NewMemIndex(g)
	oracle := apsp.NewLazyOracle(g)
	oracle.SetCapacity(192)
	return &Dataset{
		Name:         fmt.Sprintf("road-%dk", nodes/1000),
		Graph:        g,
		Index:        idx,
		Searcher:     core.NewSearcher(g, oracle, idx),
		DeltaSweep:   []float64{3, 6, 9, 12, 15},
		DefaultDelta: 6,
		Planar:       true,
	}
}

// NewRoadIndexedDataset builds the same road network as NewRoadDataset but
// serves it from a disk-loaded partitioned oracle: the tables are built in
// memory, persisted to a temp KORI file, and mmap-loaded back — the
// kordata -build-index → korserve -dist-index serving path, measured
// end to end. The dataset's Cleanup unmaps and removes the temp index.
func NewRoadIndexedDataset(cfg Config, nodes int) (*Dataset, error) {
	cfg = cfg.WithDefaults()
	g := gen.RoadNetwork(gen.RoadConfig{Seed: cfg.Seed, Nodes: nodes})
	cfg.logf("road-indexed dataset %d nodes: %v", nodes, g.ComputeStats())
	dir, err := os.MkdirTemp("", "kor-bench-index")
	if err != nil {
		return nil, fmt.Errorf("experiments: road-indexed dataset: %w", err)
	}
	path := filepath.Join(dir, "road.kori")
	builder := apsp.NewPartitionedOracle(g, apsp.DefaultCellSize)
	if err := builder.WriteIndexFile(path); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("experiments: writing road index: %w", err)
	}
	oracle, err := apsp.OpenIndex(path, g)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("experiments: loading road index: %w", err)
	}
	cfg.logf("road index: %+v", oracle.IndexInfo())
	idx := graph.NewMemIndex(g)
	return &Dataset{
		Name:         fmt.Sprintf("road-%dk-indexed", nodes/1000),
		Graph:        g,
		Index:        idx,
		Searcher:     core.NewSearcher(g, oracle, idx),
		DeltaSweep:   []float64{3, 6, 9, 12, 15},
		DefaultDelta: 6,
		Planar:       true,
		Cleanup: func() error {
			err := oracle.Close()
			if rerr := os.RemoveAll(dir); err == nil {
				err = rerr
			}
			return err
		},
	}, nil
}

// Queries generates the workload for one (m, Δ) cell, deterministic in the
// dataset and harness seed.
func (ds *Dataset) Queries(cfg Config, m int, delta float64) []core.Query {
	cfg = cfg.WithDefaults()
	return queryset.Generate(ds.Graph, ds.Index, queryset.Spec{
		Seed:            cfg.Seed ^ int64(m)<<32 ^ int64(delta*1000),
		Count:           cfg.Queries,
		Keywords:        m,
		Budget:          delta,
		MaxCrowKm:       delta * 0.45,
		PlanarCoords:    ds.Planar,
		TopTermFraction: 0.12,
	})
}

// Algorithm names one search configuration for measurement.
type Algorithm struct {
	Name string
	Opts core.Options
	Kind Kind
}

// Kind selects the algorithm family.
type Kind int

// Algorithm kinds.
const (
	KindOSScaling Kind = iota
	KindBucketBound
	KindGreedy
	KindExact
	KindBruteForce
)

// invoke dispatches one query.
func (a Algorithm) invoke(s *core.Searcher, q core.Query) (core.Result, error) {
	switch a.Kind {
	case KindOSScaling:
		return s.OSScaling(q, a.Opts)
	case KindBucketBound:
		return s.BucketBound(q, a.Opts)
	case KindGreedy:
		return s.Greedy(q, a.Opts)
	case KindExact:
		return s.Exact(q, a.Opts)
	case KindBruteForce:
		return s.BruteForce(q, 2_000_000)
	default:
		panic("experiments: unknown algorithm kind")
	}
}

// Measurement aggregates one algorithm over one query set.
type Measurement struct {
	Algorithm string
	Queries   int
	// MeanMs is the mean per-query wall time in milliseconds.
	MeanMs float64
	// Failed counts queries with no (feasible) result from this algorithm.
	Failed int
	// Objectives holds the objective score per query; NaN where failed.
	// Indexes align across algorithms run on the same set.
	Objectives []float64
	Metrics    core.Metrics
}

// FailureFraction is Failed/Queries.
func (m Measurement) FailureFraction() float64 {
	if m.Queries == 0 {
		return 0
	}
	return float64(m.Failed) / float64(m.Queries)
}

// Measure runs the algorithm over the query set. Each query is executed
// once untimed to warm the oracle's sweep cache — the stand-in for the
// paper's offline Floyd-Warshall tables — and once timed.
func Measure(ds *Dataset, queries []core.Query, algo Algorithm) Measurement {
	out := Measurement{Algorithm: algo.Name, Queries: len(queries)}
	out.Objectives = make([]float64, len(queries))
	for i, q := range queries {
		_, _ = algo.invoke(ds.Searcher, q) // warm sweeps
		start := time.Now()
		res, err := algo.invoke(ds.Searcher, q)
		elapsed := time.Since(start)
		out.MeanMs += float64(elapsed.Microseconds()) / 1000
		if err != nil || len(res.Routes) == 0 || !res.Routes[0].Feasible {
			out.Failed++
			out.Objectives[i] = math.NaN()
			continue
		}
		out.Objectives[i] = res.Routes[0].Objective
		out.Metrics.Add(res.Metrics)
	}
	if len(queries) > 0 {
		out.MeanMs /= float64(len(queries))
	}
	return out
}

// RelativeRatio computes the paper's accuracy measure (§4.2.2): the mean of
// per-query objective ratios against the base algorithm, over the queries
// where both produced feasible routes.
func RelativeRatio(m, base Measurement) float64 {
	sum, n := 0.0, 0
	for i := range m.Objectives {
		if i >= len(base.Objectives) {
			break
		}
		a, b := m.Objectives[i], base.Objectives[i]
		if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
			continue
		}
		sum += a / b
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Standard algorithm lineup of the runtime figures.
func standardAlgorithms(eps, beta, alpha float64) []Algorithm {
	oss := core.DefaultOptions()
	oss.Epsilon = eps
	bb := core.DefaultOptions()
	bb.Epsilon = eps
	bb.Beta = beta
	g1 := core.DefaultOptions()
	g1.Alpha = alpha
	g2 := g1
	g2.Width = 2
	return []Algorithm{
		{Name: "OSScaling", Opts: oss, Kind: KindOSScaling},
		{Name: "BucketBound", Opts: bb, Kind: KindBucketBound},
		{Name: "Greedy-2", Opts: g2, Kind: KindGreedy},
		{Name: "Greedy-1", Opts: g1, Kind: KindGreedy},
	}
}

// baseAlgorithm is the accuracy baseline: OSScaling with ε=0.1 (§4.2.2).
func baseAlgorithm() Algorithm {
	opts := core.DefaultOptions()
	opts.Epsilon = 0.1
	return Algorithm{Name: "OSScaling(ε=0.1)", Opts: opts, Kind: KindOSScaling}
}
