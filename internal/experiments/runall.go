package experiments

import (
	"fmt"
	"io"
	"sort"

	"kor/internal/apsp"
	"kor/internal/core"
	"kor/internal/graph"
	"kor/internal/stats"
)

// OracleVariant names one oracle implementation for ablations.
type OracleVariant struct {
	Name   string
	Oracle core.RouteOracle
}

// OracleVariants builds all three oracle flavours over g.
func OracleVariants(g *graph.Graph) []OracleVariant {
	return []OracleVariant{
		{"matrix", apsp.NewMatrixOracle(g)},
		{"lazy", apsp.NewLazyOracle(g)},
		{"partitioned", apsp.NewPartitionedOracle(g, apsp.DefaultCellSize)},
	}
}

// Runner is a named experiment producing one or more tables.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*stats.Table, error)
}

// Runners enumerates every experiment, keyed by the paper figure it
// regenerates. Datasets are built lazily and shared through the closure.
func Runners() []Runner {
	var flickr *Dataset
	flickrDS := func(cfg Config) (*Dataset, error) {
		if flickr == nil {
			ds, err := NewFlickrDataset(cfg)
			if err != nil {
				return nil, err
			}
			flickr = ds
		}
		return flickr, nil
	}
	var road5k *Dataset
	roadDS := func(cfg Config) *Dataset {
		if road5k == nil {
			road5k = NewRoadDataset(cfg, 5000)
		}
		return road5k
	}

	one := func(t *stats.Table) []*stats.Table { return []*stats.Table{t} }
	onFlickr := func(f func(*Dataset, Config) *stats.Table) func(Config) ([]*stats.Table, error) {
		return func(cfg Config) ([]*stats.Table, error) {
			ds, err := flickrDS(cfg)
			if err != nil {
				return nil, err
			}
			return one(f(ds, cfg)), nil
		}
	}
	pairOnFlickr := func(f func(*Dataset, Config) (*stats.Table, *stats.Table)) func(Config) ([]*stats.Table, error) {
		return func(cfg Config) ([]*stats.Table, error) {
			ds, err := flickrDS(cfg)
			if err != nil {
				return nil, err
			}
			a, b := f(ds, cfg)
			return []*stats.Table{a, b}, nil
		}
	}

	return []Runner{
		{"0", "brute-force gap (§4.1)", onFlickr(BruteForceGap)},
		{"4", "runtime vs keywords (Flickr)", onFlickr(Figure4)},
		{"5", "runtime vs Δ (Flickr)", onFlickr(Figure5)},
		{"6", "OSScaling ε sweep", pairOnFlickr(Figure6and7)},
		{"8", "BucketBound β sweep", pairOnFlickr(Figure8and9)},
		{"10", "ratio vs keywords", onFlickr(Figure10)},
		{"11", "ratio vs Δ", onFlickr(Figure11)},
		{"12", "greedy α sweep", pairOnFlickr(Figure12and13)},
		{"14", "equal-bound comparison", pairOnFlickr(Figure14and15)},
		{"16", "KkR top-k runtime", onFlickr(Figure16)},
		{"17", "scalability", func(cfg Config) ([]*stats.Table, error) {
			return one(Figure17(cfg, nil)), nil
		}},
		{"18", "runtime vs keywords (road 5k)", func(cfg Config) ([]*stats.Table, error) {
			return one(Figure18(roadDS(cfg), cfg)), nil
		}},
		{"19", "runtime vs Δ (road 5k)", func(cfg Config) ([]*stats.Table, error) {
			return one(Figure19(roadDS(cfg), cfg)), nil
		}},
		{"20", "example routes (Figs. 20–21)", onFlickr(ExampleRoutes)},
		{"ablation-strategies", "optimization strategy ablation", onFlickr(AblationStrategies)},
		{"ablation-oracles", "oracle ablation", onFlickr(AblationOracles)},
	}
}

// RunnerIDs lists the available experiment IDs in order.
func RunnerIDs() []string {
	rs := Runners()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// Run executes the experiment with the given ID and renders its tables.
func Run(id string, cfg Config, w io.Writer) error {
	for _, r := range Runners() {
		if r.ID != id {
			continue
		}
		tables, err := r.Run(cfg)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	}
	ids := RunnerIDs()
	sort.Strings(ids)
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, r := range Runners() {
		if _, err := fmt.Fprintf(w, "=== experiment %s: %s ===\n\n", r.ID, r.Title); err != nil {
			return err
		}
		tables, err := r.Run(cfg)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}
