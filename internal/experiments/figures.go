package experiments

import (
	"fmt"
	"math"

	"kor/internal/core"
	"kor/internal/stats"
)

// Defaults of §4.1: ε=0.5, β=1.2, α=0.5.
const (
	defaultEpsilon = 0.5
	defaultBeta    = 1.2
	defaultAlpha   = 0.5
)

var keywordSweep = []int{2, 4, 6, 8, 10}

// Figure4 — runtime versus the number of query keywords on the Flickr-like
// dataset, averaged over the Δ sweep, for the four algorithms.
func Figure4(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	algos := standardAlgorithms(defaultEpsilon, defaultBeta, defaultAlpha)
	t := &stats.Table{
		Title:   "Figure 4: runtime vs number of query keywords (" + ds.Name + ")",
		Columns: []string{"keywords", "OSScaling(ms)", "BucketBound(ms)", "Greedy-2(ms)", "Greedy-1(ms)"},
		Note:    fmt.Sprintf("mean per-query ms over Δ∈%v, %d queries per (m,Δ); paper Fig. 4", ds.DeltaSweep, cfg.Queries),
	}
	for _, m := range keywordSweep {
		cells := []any{m}
		for _, algo := range algos {
			total, sets := 0.0, 0
			for _, delta := range ds.DeltaSweep {
				qs := ds.Queries(cfg, m, delta)
				if len(qs) == 0 {
					continue
				}
				total += Measure(ds, qs, algo).MeanMs
				sets++
			}
			if sets > 0 {
				total /= float64(sets)
			}
			cells = append(cells, total)
		}
		t.AddRow(cells...)
		cfg.logf("fig4: m=%d done", m)
	}
	return t
}

// Figure5 — runtime versus the budget limit Δ, averaged over the keyword
// sweep.
func Figure5(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	algos := standardAlgorithms(defaultEpsilon, defaultBeta, defaultAlpha)
	t := &stats.Table{
		Title:   "Figure 5: runtime vs budget limit Δ (" + ds.Name + ")",
		Columns: []string{"delta_km", "OSScaling(ms)", "BucketBound(ms)", "Greedy-2(ms)", "Greedy-1(ms)"},
		Note:    fmt.Sprintf("mean per-query ms over m∈%v, %d queries per (m,Δ); paper Fig. 5", keywordSweep, cfg.Queries),
	}
	for _, delta := range ds.DeltaSweep {
		cells := []any{delta}
		for _, algo := range algos {
			total, sets := 0.0, 0
			for _, m := range keywordSweep {
				qs := ds.Queries(cfg, m, delta)
				if len(qs) == 0 {
					continue
				}
				total += Measure(ds, qs, algo).MeanMs
				sets++
			}
			if sets > 0 {
				total /= float64(sets)
			}
			cells = append(cells, total)
		}
		t.AddRow(cells...)
		cfg.logf("fig5: Δ=%v done", delta)
	}
	return t
}

// Figure6and7 — OSScaling runtime (Fig. 6) and relative ratio versus the
// ε=0.1 base (Fig. 7) as ε varies; Δ=6, m=6.
func Figure6and7(ds *Dataset, cfg Config) (*stats.Table, *stats.Table) {
	cfg = cfg.WithDefaults()
	qs := ds.Queries(cfg, 6, ds.DefaultDelta)
	base := Measure(ds, qs, baseAlgorithm())
	runtime := &stats.Table{
		Title:   "Figure 6: OSScaling runtime vs ε (" + ds.Name + ")",
		Columns: []string{"epsilon", "runtime_ms"},
		Note:    fmt.Sprintf("Δ=%v, m=6, %d queries; paper Fig. 6", ds.DefaultDelta, len(qs)),
	}
	ratio := &stats.Table{
		Title:   "Figure 7: OSScaling relative ratio vs ε (" + ds.Name + ")",
		Columns: []string{"epsilon", "relative_ratio"},
		Note:    "base: OSScaling ε=0.1; paper Fig. 7",
	}
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		opts := core.DefaultOptions()
		opts.Epsilon = eps
		m := Measure(ds, qs, Algorithm{Name: "OSScaling", Opts: opts, Kind: KindOSScaling})
		runtime.AddRow(eps, m.MeanMs)
		ratio.AddRow(eps, RelativeRatio(m, base))
		cfg.logf("fig6/7: ε=%v done", eps)
	}
	return runtime, ratio
}

// Figure8and9 — BucketBound runtime (Fig. 8) and relative ratio (Fig. 9)
// as β varies; ε=0.5, Δ=6, m=6.
func Figure8and9(ds *Dataset, cfg Config) (*stats.Table, *stats.Table) {
	cfg = cfg.WithDefaults()
	qs := ds.Queries(cfg, 6, ds.DefaultDelta)
	base := Measure(ds, qs, baseAlgorithm())
	runtime := &stats.Table{
		Title:   "Figure 8: BucketBound runtime vs β (" + ds.Name + ")",
		Columns: []string{"beta", "runtime_ms"},
		Note:    fmt.Sprintf("ε=0.5, Δ=%v, m=6, %d queries; paper Fig. 8", ds.DefaultDelta, len(qs)),
	}
	ratio := &stats.Table{
		Title:   "Figure 9: BucketBound relative ratio vs β (" + ds.Name + ")",
		Columns: []string{"beta", "relative_ratio"},
		Note:    "base: OSScaling ε=0.1; paper Fig. 9",
	}
	for _, beta := range []float64{1.2, 1.4, 1.6, 1.8, 2.0} {
		opts := core.DefaultOptions()
		opts.Epsilon = defaultEpsilon
		opts.Beta = beta
		m := Measure(ds, qs, Algorithm{Name: "BucketBound", Opts: opts, Kind: KindBucketBound})
		runtime.AddRow(beta, m.MeanMs)
		ratio.AddRow(beta, RelativeRatio(m, base))
		cfg.logf("fig8/9: β=%v done", beta)
	}
	return runtime, ratio
}

// Figure10 — relative ratio versus keyword count for BucketBound and the
// greedy variants; ε=0.5, β=1.2.
func Figure10(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Figure 10: relative ratio vs number of query keywords (" + ds.Name + ")",
		Columns: []string{"keywords", "BucketBound", "Greedy-2", "Greedy-1"},
		Note:    "base: OSScaling ε=0.1; greedy measured on its feasible queries; paper Fig. 10",
	}
	algos := comparatorAlgorithms()
	for _, m := range keywordSweep {
		qs := ds.Queries(cfg, m, ds.DefaultDelta)
		base := Measure(ds, qs, baseAlgorithm())
		cells := []any{m}
		for _, algo := range algos {
			cells = append(cells, RelativeRatio(Measure(ds, qs, algo), base))
		}
		t.AddRow(cells...)
		cfg.logf("fig10: m=%d done", m)
	}
	return t
}

// Figure11 — relative ratio versus Δ for the same comparators.
func Figure11(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Figure 11: relative ratio vs budget limit Δ (" + ds.Name + ")",
		Columns: []string{"delta_km", "BucketBound", "Greedy-2", "Greedy-1"},
		Note:    "base: OSScaling ε=0.1, m=6; paper Fig. 11",
	}
	algos := comparatorAlgorithms()
	for _, delta := range ds.DeltaSweep {
		qs := ds.Queries(cfg, 6, delta)
		base := Measure(ds, qs, baseAlgorithm())
		cells := []any{delta}
		for _, algo := range algos {
			cells = append(cells, RelativeRatio(Measure(ds, qs, algo), base))
		}
		t.AddRow(cells...)
		cfg.logf("fig11: Δ=%v done", delta)
	}
	return t
}

func comparatorAlgorithms() []Algorithm {
	bb := core.DefaultOptions()
	bb.Epsilon = defaultEpsilon
	bb.Beta = defaultBeta
	g1 := core.DefaultOptions()
	g2 := g1
	g2.Width = 2
	return []Algorithm{
		{Name: "BucketBound", Opts: bb, Kind: KindBucketBound},
		{Name: "Greedy-2", Opts: g2, Kind: KindGreedy},
		{Name: "Greedy-1", Opts: g1, Kind: KindGreedy},
	}
}

// Figure12and13 — greedy relative ratio (Fig. 12) and failure percentage
// (Fig. 13) as α varies; Δ=6, averaged over the keyword sweep.
func Figure12and13(ds *Dataset, cfg Config) (*stats.Table, *stats.Table) {
	cfg = cfg.WithDefaults()
	ratio := &stats.Table{
		Title:   "Figure 12: greedy relative ratio vs α (" + ds.Name + ")",
		Columns: []string{"alpha", "Greedy-1", "Greedy-2"},
		Note:    "base: OSScaling ε=0.1, over m∈{2..10}; paper Fig. 12",
	}
	failures := &stats.Table{
		Title:   "Figure 13: greedy failure percentage vs α (" + ds.Name + ")",
		Columns: []string{"alpha", "Greedy-1(%)", "Greedy-2(%)"},
		Note:    "failures among queries with feasible solutions; paper Fig. 13",
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		ratios := map[int][]float64{1: nil, 2: nil}
		failed := map[int]int{}
		solvable := map[int]int{}
		for _, m := range keywordSweep {
			qs := ds.Queries(cfg, m, ds.DefaultDelta)
			base := Measure(ds, qs, baseAlgorithm())
			for _, width := range []int{1, 2} {
				opts := core.DefaultOptions()
				opts.Alpha = alpha
				opts.Width = width
				meas := Measure(ds, qs, Algorithm{Name: "Greedy", Opts: opts, Kind: KindGreedy})
				if r := RelativeRatio(meas, base); !math.IsNaN(r) {
					ratios[width] = append(ratios[width], r)
				}
				// Failure percentage counts greedy misses on queries the
				// exact-feasible algorithms can answer.
				for i := range qs {
					if math.IsNaN(base.Objectives[i]) {
						continue
					}
					solvable[width]++
					if math.IsNaN(meas.Objectives[i]) {
						failed[width]++
					}
				}
			}
		}
		r1, r2 := stats.Summarize(ratios[1]).Mean, stats.Summarize(ratios[2]).Mean
		ratio.AddRow(alpha, r1, r2)
		pct := func(w int) float64 {
			if solvable[w] == 0 {
				return 0
			}
			return 100 * float64(failed[w]) / float64(solvable[w])
		}
		failures.AddRow(alpha, pct(1), pct(2))
		cfg.logf("fig12/13: α=%v done", alpha)
	}
	return ratio, failures
}

// Figure14and15 — OSScaling versus BucketBound at matched theoretical
// bounds r ∈ {2,4,6,8,10}: OSScaling runs with ε = 1−1/r, BucketBound with
// ε=0.5 and β = r/2 (so both bound at r). Runtime (Fig. 14) and relative
// ratio (Fig. 15).
func Figure14and15(ds *Dataset, cfg Config) (*stats.Table, *stats.Table) {
	cfg = cfg.WithDefaults()
	qs := ds.Queries(cfg, 6, ds.DefaultDelta)
	base := Measure(ds, qs, baseAlgorithm())
	runtime := &stats.Table{
		Title:   "Figure 14: runtime at equal approximation bound (" + ds.Name + ")",
		Columns: []string{"bound", "OSScaling(ms)", "BucketBound(ms)"},
		Note:    fmt.Sprintf("Δ=%v, m=6; OSS ε=1−1/r, BB ε=0.5 β=r/2; paper Fig. 14", ds.DefaultDelta),
	}
	ratio := &stats.Table{
		Title:   "Figure 15: relative ratio at equal approximation bound (" + ds.Name + ")",
		Columns: []string{"bound", "OSScaling", "BucketBound"},
		Note:    "base: OSScaling ε=0.1; paper Fig. 15",
	}
	for _, bound := range []float64{2, 4, 6, 8, 10} {
		ossOpts := core.DefaultOptions()
		ossOpts.Epsilon = 1 - 1/bound
		bbOpts := core.DefaultOptions()
		bbOpts.Epsilon = 0.5
		bbOpts.Beta = bound / 2
		if bbOpts.Beta <= 1 {
			bbOpts.Beta = 1.01
		}
		oss := Measure(ds, qs, Algorithm{Name: "OSScaling", Opts: ossOpts, Kind: KindOSScaling})
		bb := Measure(ds, qs, Algorithm{Name: "BucketBound", Opts: bbOpts, Kind: KindBucketBound})
		runtime.AddRow(bound, oss.MeanMs, bb.MeanMs)
		ratio.AddRow(bound, RelativeRatio(oss, base), RelativeRatio(bb, base))
		cfg.logf("fig14/15: bound=%v done", bound)
	}
	return runtime, ratio
}

// Figure16 — KkR runtime versus k for the top-k extensions of both label
// algorithms; Δ=6, averaged over the keyword sweep.
func Figure16(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Figure 16: KkR runtime vs k (" + ds.Name + ")",
		Columns: []string{"k", "OSScaling(ms)", "BucketBound(ms)"},
		Note:    fmt.Sprintf("Δ=%v, mean over m∈%v; paper Fig. 16", ds.DefaultDelta, keywordSweep),
	}
	for k := 1; k <= 5; k++ {
		ossTotal, bbTotal, sets := 0.0, 0.0, 0
		for _, m := range keywordSweep {
			qs := ds.Queries(cfg, m, ds.DefaultDelta)
			if len(qs) == 0 {
				continue
			}
			ossOpts := core.DefaultOptions()
			ossOpts.K = k
			bbOpts := core.DefaultOptions()
			bbOpts.K = k
			ossTotal += Measure(ds, qs, Algorithm{Name: "OSScaling", Opts: ossOpts, Kind: KindOSScaling}).MeanMs
			bbTotal += Measure(ds, qs, Algorithm{Name: "BucketBound", Opts: bbOpts, Kind: KindBucketBound}).MeanMs
			sets++
		}
		if sets > 0 {
			ossTotal /= float64(sets)
			bbTotal /= float64(sets)
		}
		t.AddRow(k, ossTotal, bbTotal)
		cfg.logf("fig16: k=%d done", k)
	}
	return t
}

// Figure17 — scalability: runtime of the four algorithms on road networks
// of 5k/10k/15k/20k nodes; m=6, Δ=30 km.
func Figure17(cfg Config, sizes []int) *stats.Table {
	cfg = cfg.WithDefaults()
	if len(sizes) == 0 {
		sizes = []int{5000, 10000, 15000, 20000}
	}
	t := &stats.Table{
		Title:   "Figure 17: scalability on road networks",
		Columns: []string{"nodes", "OSScaling(ms)", "BucketBound(ms)", "Greedy-2(ms)", "Greedy-1(ms)"},
		Note:    "m=6, Δ=30km, lazy oracle warmed per query; paper Fig. 17",
	}
	for _, n := range sizes {
		ds := NewRoadDataset(cfg, n)
		qs := ds.Queries(cfg, 6, 30)
		cells := []any{n}
		for _, algo := range standardAlgorithms(defaultEpsilon, defaultBeta, defaultAlpha) {
			cells = append(cells, Measure(ds, qs, algo).MeanMs)
		}
		t.AddRow(cells...)
		cfg.logf("fig17: %d nodes done", n)
	}
	return t
}

// Figure18 — runtime versus keyword count on the 5k road network.
func Figure18(ds *Dataset, cfg Config) *stats.Table {
	t := Figure4(ds, cfg)
	t.Title = "Figure 18: runtime vs number of query keywords (" + ds.Name + ")"
	t.Note += "; paper Fig. 18"
	return t
}

// Figure19 — runtime versus Δ on the 5k road network.
func Figure19(ds *Dataset, cfg Config) *stats.Table {
	t := Figure5(ds, cfg)
	t.Title = "Figure 19: runtime vs budget limit Δ (" + ds.Name + ")"
	t.Note += "; paper Fig. 19"
	return t
}

// BruteForceGap quantifies §4.1's remark that the exhaustive baseline is
// at least two orders of magnitude slower than OSScaling, on workloads
// small enough for it to finish.
func BruteForceGap(ds *Dataset, cfg Config) *stats.Table {
	cfg = cfg.WithDefaults()
	t := &stats.Table{
		Title:   "Baseline: brute force vs OSScaling (" + ds.Name + ")",
		Columns: []string{"delta_km", "OSScaling(ms)", "BruteForce(ms)", "BF_unfinished"},
		Note:    "m=2; brute force capped at 2M expansions (the paper's 1-day timeout analogue)",
	}
	for _, delta := range []float64{2, 3, 4} {
		qs := ds.Queries(cfg, 2, delta)
		oss := Measure(ds, qs, Algorithm{Name: "OSScaling", Opts: core.DefaultOptions(), Kind: KindOSScaling})
		bf := Measure(ds, qs, Algorithm{Name: "BruteForce", Kind: KindBruteForce})
		t.AddRow(delta, oss.MeanMs, bf.MeanMs, bf.Failed)
		cfg.logf("brute-force gap: Δ=%v done", delta)
	}
	return t
}
