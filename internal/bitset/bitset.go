// Package bitset provides the small fixed-width bit sets used to track
// query-keyword coverage during route search.
//
// A KOR query carries at most a few keywords (the paper targets fewer than
// five, the evaluation sweeps up to ten), so a single machine word is enough.
// Mask is deliberately tiny: label domination (Definition 6 in the paper)
// performs a superset test on every candidate label, and that test must be a
// couple of instructions, not a set walk.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxWidth is the number of distinct query keywords a Mask can track.
const MaxWidth = 64

// Mask is a set over the bit positions 0..MaxWidth-1. The zero value is the
// empty set, ready to use.
type Mask uint64

// New builds a Mask holding the given bit positions. Positions outside
// [0, MaxWidth) are ignored.
func New(positions ...int) Mask {
	var m Mask
	for _, p := range positions {
		m = m.With(p)
	}
	return m
}

// Full returns the mask with the n lowest bits set. It saturates at MaxWidth.
func Full(n int) Mask {
	if n <= 0 {
		return 0
	}
	if n >= MaxWidth {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// With returns m with bit p set. Out-of-range positions leave m unchanged.
func (m Mask) With(p int) Mask {
	if p < 0 || p >= MaxWidth {
		return m
	}
	return m | Mask(1)<<uint(p)
}

// Without returns m with bit p cleared.
func (m Mask) Without(p int) Mask {
	if p < 0 || p >= MaxWidth {
		return m
	}
	return m &^ (Mask(1) << uint(p))
}

// Has reports whether bit p is set.
func (m Mask) Has(p int) bool {
	if p < 0 || p >= MaxWidth {
		return false
	}
	return m&(Mask(1)<<uint(p)) != 0
}

// Union returns the set union of m and o.
func (m Mask) Union(o Mask) Mask { return m | o }

// Intersect returns the set intersection of m and o.
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Diff returns the elements of m not present in o.
func (m Mask) Diff(o Mask) Mask { return m &^ o }

// Contains reports whether m is a superset of o (m ⊇ o).
func (m Mask) Contains(o Mask) bool { return m&o == o }

// SubsetOf reports whether m is a subset of o (m ⊆ o) — the direction the
// domination prefilter reads naturally.
func (m Mask) SubsetOf(o Mask) bool { return m&o == m }

// Intersects reports whether m and o share at least one element.
func (m Mask) Intersects(o Mask) bool { return m&o != 0 }

// Covers is an alias of Contains matching the paper's vocabulary: a route
// covers the query keywords when its mask contains the query mask.
func (m Mask) Covers(o Mask) bool { return m.Contains(o) }

// Count returns the number of elements in the set (|λ| in the paper's label
// order, Definition 8).
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Empty reports whether the set has no elements.
func (m Mask) Empty() bool { return m == 0 }

// Positions returns the sorted bit positions present in the set.
func (m Mask) Positions() []int {
	out := make([]int, 0, m.Count())
	for v := uint64(m); v != 0; {
		p := bits.TrailingZeros64(v)
		out = append(out, p)
		v &^= 1 << uint(p)
	}
	return out
}

// String renders the mask as "{0,3,5}" for debugging and test failures.
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range m.Positions() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	b.WriteByte('}')
	return b.String()
}
