package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndHas(t *testing.T) {
	m := New(0, 2, 5)
	for p := 0; p < 8; p++ {
		want := p == 0 || p == 2 || p == 5
		if got := m.Has(p); got != want {
			t.Errorf("Has(%d) = %v, want %v", p, got, want)
		}
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
}

func TestOutOfRangePositionsIgnored(t *testing.T) {
	m := New(-1, 64, 70)
	if !m.Empty() {
		t.Errorf("mask with only out-of-range positions should be empty, got %v", m)
	}
	if m.Has(-1) || m.Has(64) {
		t.Error("Has must report false for out-of-range positions")
	}
	if m.Without(-3) != m {
		t.Error("Without out of range must be a no-op")
	}
}

func TestFull(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{{-2, 0}, {0, 0}, {1, 1}, {5, 5}, {64, 64}, {90, 64}}
	for _, c := range cases {
		if got := Full(c.n).Count(); got != c.want {
			t.Errorf("Full(%d).Count() = %d, want %d", c.n, got, c.want)
		}
	}
	if !Full(3).Has(0) || !Full(3).Has(2) || Full(3).Has(3) {
		t.Errorf("Full(3) has wrong members: %v", Full(3))
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(0, 1, 4)
	b := New(1, 2)
	if got := a.Union(b); got != New(0, 1, 2, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != New(1) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != New(0, 4) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Contains(New(0, 4)) {
		t.Error("Contains(subset) = false")
	}
	if a.Contains(b) {
		t.Error("Contains(non-subset) = true")
	}
}

func TestWithWithout(t *testing.T) {
	var m Mask
	m = m.With(7)
	if !m.Has(7) {
		t.Fatal("With(7) lost the bit")
	}
	m = m.Without(7)
	if !m.Empty() {
		t.Fatalf("Without(7) left %v", m)
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	m := New(3, 0, 9, 63)
	got := m.Positions()
	want := []int{0, 3, 9, 63}
	if len(got) != len(want) {
		t.Fatalf("Positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", got, want)
		}
	}
	if New(got...) != m {
		t.Errorf("New(Positions()) != original mask")
	}
}

func TestString(t *testing.T) {
	if s := New(1, 3).String(); s != "{1,3}" {
		t.Errorf("String = %q, want {1,3}", s)
	}
	if s := Mask(0).String(); s != "{}" {
		t.Errorf("empty String = %q, want {}", s)
	}
}

// Property: Contains agrees with the definition m ∪ o == m.
func TestContainsProperty(t *testing.T) {
	f := func(m, o Mask) bool {
		return m.Contains(o) == (m.Union(o) == m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Count is additive over disjoint sets.
func TestCountAdditiveProperty(t *testing.T) {
	f := func(m, o Mask) bool {
		disjointPart := o.Diff(m)
		return m.Union(o).Count() == m.Count()+disjointPart.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff never grows the set and removes exactly the intersection.
func TestDiffProperty(t *testing.T) {
	f := func(m, o Mask) bool {
		d := m.Diff(o)
		return d.Count() == m.Count()-m.Intersect(o).Count() && m.Contains(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative, associative and idempotent.
func TestUnionLaws(t *testing.T) {
	f := func(a, b, c Mask) bool {
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b.Union(c)) != a.Union(b).Union(c) {
			return false
		}
		return a.Union(a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionsSortedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := Mask(rng.Uint64())
		ps := m.Positions()
		if len(ps) != m.Count() {
			t.Fatalf("len(Positions) = %d, Count = %d", len(ps), m.Count())
		}
		for i := 1; i < len(ps); i++ {
			if ps[i-1] >= ps[i] {
				t.Fatalf("Positions not strictly sorted: %v", ps)
			}
		}
	}
}

func TestSubsetOfAndIntersects(t *testing.T) {
	a, b := New(0, 2), New(0, 1, 2)
	if !a.SubsetOf(b) {
		t.Errorf("%v should be a subset of %v", a, b)
	}
	if b.SubsetOf(a) {
		t.Errorf("%v should not be a subset of %v", b, a)
	}
	if !a.SubsetOf(a) {
		t.Error("subset must be reflexive")
	}
	if !Mask(0).SubsetOf(a) {
		t.Error("empty set is a subset of everything")
	}
	// SubsetOf mirrors Contains.
	if a.SubsetOf(b) != b.Contains(a) {
		t.Error("SubsetOf and Contains disagree")
	}
	if !a.Intersects(b) {
		t.Errorf("%v and %v share elements", a, b)
	}
	if New(1).Intersects(New(0, 2)) {
		t.Error("disjoint masks reported as intersecting")
	}
	if Mask(0).Intersects(b) {
		t.Error("empty mask intersects nothing")
	}
}
