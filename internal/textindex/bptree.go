// Package textindex implements the paper's disk-resident inverted file: a
// vocabulary of keywords with, per keyword, a posting list of the nodes whose
// descriptions contain it (§3.1). The index is stored in a paged, on-disk
// B+-tree, mirroring the paper's storage choice.
//
// The B+-tree itself is general purpose: byte-string keys mapped to byte
// values, fixed 4 KiB pages, a page cache with write-back, values larger than
// a quarter page spilled to overflow chains, and ordered cursors over the
// leaf chain. The inverted file in invfile.go is a thin client that encodes
// posting lists as delta-compressed varints.
package textindex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const (
	// MaxKeyLen bounds key length so that a post-split node always fits a
	// page.
	MaxKeyLen = 512
	// maxInlineValue is the largest value stored inside a leaf cell; longer
	// values go to overflow chains.
	maxInlineValue = PageSize / 4

	pageHeaderLen  = 16
	treeMagic      = "KBPT"
	treeVersion    = 1
	headerPage     = 0
	invalidPage    = 0 // page 0 is the header, so 0 doubles as "none"
	defaultCacheSz = 256
)

// Page types.
const (
	pageLeaf     = 1
	pageInternal = 2
	pageOverflow = 3
	pageFree     = 4
)

// Errors reported by the tree.
var (
	ErrKeyTooLong = errors.New("textindex: key exceeds MaxKeyLen")
	ErrEmptyKey   = errors.New("textindex: empty key")
	ErrCorrupt    = errors.New("textindex: corrupt index file")
	ErrClosed     = errors.New("textindex: tree is closed")
)

type pageID = uint32

// Tree is a disk-resident B+-tree. It is not safe for concurrent use; the
// inverted file wraps it with the synchronization it needs.
type Tree struct {
	f         *os.File
	root      pageID
	pageCount uint32
	freeHead  pageID
	numKeys   uint64
	cache     map[pageID]*node
	cacheCap  int
	clock     uint64
	closed    bool
}

// node is the in-memory image of a leaf or internal page.
type node struct {
	id       pageID
	typ      byte
	dirty    bool
	lastUsed uint64

	keys [][]byte

	// Leaf fields. vals[i] is the inline value; when overflow[i] != 0 the
	// value lives in an overflow chain of total length vlen[i] and vals[i]
	// is nil.
	vals     [][]byte
	overflow []pageID
	vlen     []uint32
	next     pageID // right sibling

	// Internal field: len(children) == len(keys)+1.
	children []pageID
}

// Create creates a new empty tree file at path, failing if the file exists.
func Create(path string) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	t := &Tree{f: f, pageCount: 1, cache: make(map[pageID]*node), cacheCap: defaultCacheSz}
	rootLeaf := t.newNode(pageLeaf)
	t.root = rootLeaf.id
	if err := t.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return t, nil
}

// Open opens an existing tree file.
func Open(path string) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	t := &Tree{f: f, cache: make(map[pageID]*node), cacheCap: defaultCacheSz}
	buf := make([]byte, PageSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if string(buf[0:4]) != treeMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(buf[4:]); v != treeVersion {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	if ps := le.Uint32(buf[8:]); ps != PageSize {
		f.Close()
		return nil, fmt.Errorf("%w: page size %d, built for %d", ErrCorrupt, ps, PageSize)
	}
	t.root = le.Uint32(buf[12:])
	t.pageCount = le.Uint32(buf[16:])
	t.freeHead = le.Uint32(buf[20:])
	t.numKeys = le.Uint64(buf[24:])
	if t.root == invalidPage || t.root >= t.pageCount {
		f.Close()
		return nil, fmt.Errorf("%w: root page %d out of range", ErrCorrupt, t.root)
	}
	return t, nil
}

// SetCacheCapacity adjusts the page-cache size (in pages). Minimum is 8.
func (t *Tree) SetCacheCapacity(pages int) {
	if pages < 8 {
		pages = 8
	}
	t.cacheCap = pages
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.numKeys) }

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, value []byte) error {
	if t.closed {
		return ErrClosed
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	sep, right, grew, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	if grew {
		newRoot := t.newNode(pageInternal)
		newRoot.keys = [][]byte{sep}
		newRoot.children = []pageID{t.root, right}
		t.root = newRoot.id
	}
	return t.maybeEvict()
}

// Get returns the value stored for key. The boolean reports presence; the
// returned slice is a copy the caller owns.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if t.closed {
		return nil, false, ErrClosed
	}
	n, err := t.getNode(t.root)
	if err != nil {
		return nil, false, err
	}
	for n.typ == pageInternal {
		n, err = t.getNode(n.children[childIndex(n.keys, key)])
		if err != nil {
			return nil, false, err
		}
	}
	i, found := findKey(n.keys, key)
	if !found {
		return nil, false, nil
	}
	v, err := t.leafValue(n, i)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete removes key if present, reporting whether it was found. Pages are
// not rebalanced; freed overflow chains return to the free list.
func (t *Tree) Delete(key []byte) (bool, error) {
	if t.closed {
		return false, ErrClosed
	}
	n, err := t.getNode(t.root)
	if err != nil {
		return false, err
	}
	for n.typ == pageInternal {
		n, err = t.getNode(n.children[childIndex(n.keys, key)])
		if err != nil {
			return false, err
		}
	}
	i, found := findKey(n.keys, key)
	if !found {
		return false, nil
	}
	if n.overflow[i] != invalidPage {
		if err := t.freeChain(n.overflow[i]); err != nil {
			return false, err
		}
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.overflow = append(n.overflow[:i], n.overflow[i+1:]...)
	n.vlen = append(n.vlen[:i], n.vlen[i+1:]...)
	n.dirty = true
	t.numKeys--
	return true, t.maybeEvict()
}

// insert descends to the leaf for key, inserting and splitting on the way
// back up. When the child split, it returns the separator key and the new
// right sibling's page.
func (t *Tree) insert(id pageID, key, value []byte) (sep []byte, right pageID, grew bool, err error) {
	n, err := t.getNode(id)
	if err != nil {
		return nil, 0, false, err
	}
	if n.typ == pageInternal {
		ci := childIndex(n.keys, key)
		sep, right, grew, err = t.insert(n.children[ci], key, value)
		if err != nil || !grew {
			return nil, 0, false, err
		}
		// Re-fetch: the recursive call may have evicted our pointer's state.
		n, err = t.getNode(id)
		if err != nil {
			return nil, 0, false, err
		}
		n.keys = insertBytesAt(n.keys, ci, sep)
		n.children = insertPageAt(n.children, ci+1, right)
		n.dirty = true
		if internalSize(n) <= PageSize {
			return nil, 0, false, nil
		}
		return t.splitInternal(n)
	}

	// Leaf.
	i, found := findKey(n.keys, key)
	if found {
		if n.overflow[i] != invalidPage {
			if err := t.freeChain(n.overflow[i]); err != nil {
				return nil, 0, false, err
			}
			n.overflow[i] = invalidPage
		}
		if err := t.setLeafValue(n, i, value); err != nil {
			return nil, 0, false, err
		}
		n.dirty = true
		return nil, 0, false, nil
	}
	n.keys = insertBytesAt(n.keys, i, append([]byte(nil), key...))
	n.vals = insertBytesAt(n.vals, i, nil)
	n.overflow = insertPageAt(n.overflow, i, invalidPage)
	n.vlen = insertU32At(n.vlen, i, 0)
	if err := t.setLeafValue(n, i, value); err != nil {
		return nil, 0, false, err
	}
	n.dirty = true
	t.numKeys++
	if leafSize(n) <= PageSize {
		return nil, 0, false, nil
	}
	return t.splitLeaf(n)
}

// setLeafValue stores value inline or in an overflow chain at slot i.
func (t *Tree) setLeafValue(n *node, i int, value []byte) error {
	if len(value) <= maxInlineValue {
		n.vals[i] = append([]byte(nil), value...)
		n.overflow[i] = invalidPage
		n.vlen[i] = uint32(len(value))
		return nil
	}
	head, err := t.writeChain(value)
	if err != nil {
		return err
	}
	n.vals[i] = nil
	n.overflow[i] = head
	n.vlen[i] = uint32(len(value))
	return nil
}

// leafValue materializes the value at slot i, following overflow chains.
func (t *Tree) leafValue(n *node, i int) ([]byte, error) {
	if n.overflow[i] == invalidPage {
		return append([]byte(nil), n.vals[i]...), nil
	}
	return t.readChain(n.overflow[i], n.vlen[i])
}

func (t *Tree) splitLeaf(n *node) (sep []byte, right pageID, grew bool, err error) {
	mid := splitPoint(len(n.keys))
	r := t.newNode(pageLeaf)
	r.keys = append(r.keys, n.keys[mid:]...)
	r.vals = append(r.vals, n.vals[mid:]...)
	r.overflow = append(r.overflow, n.overflow[mid:]...)
	r.vlen = append(r.vlen, n.vlen[mid:]...)
	r.next = n.next
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.overflow = n.overflow[:mid]
	n.vlen = n.vlen[:mid]
	n.next = r.id
	n.dirty = true
	// Copy-up: the separator is the first key of the right leaf.
	return append([]byte(nil), r.keys[0]...), r.id, true, nil
}

func (t *Tree) splitInternal(n *node) (sep []byte, right pageID, grew bool, err error) {
	mid := splitPoint(len(n.keys))
	r := t.newNode(pageInternal)
	// Move-up: keys[mid] is promoted, not copied.
	promoted := n.keys[mid]
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.children = append(r.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	n.dirty = true
	return promoted, r.id, true, nil
}

func splitPoint(n int) int {
	if n < 2 {
		return 1
	}
	return n / 2
}

// childIndex returns which child of an internal node covers key: the number
// of separators ≤ key.
func childIndex(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) > 0 })
}

// findKey returns the insertion position of key in a sorted key list and
// whether it is already present.
func findKey(keys [][]byte, key []byte) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) >= 0 })
	return i, i < len(keys) && bytes.Equal(keys[i], key)
}

func insertBytesAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPageAt(s []pageID, i int, v pageID) []pageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertU32At(s []uint32, i int, v uint32) []uint32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Stats describes the physical shape of the tree.
type Stats struct {
	Keys      int
	Pages     int
	FreePages int
	Height    int
}

// ComputeStats walks the root-to-leaf spine and the free list.
func (t *Tree) ComputeStats() (Stats, error) {
	s := Stats{Keys: int(t.numKeys), Pages: int(t.pageCount)}
	n, err := t.getNode(t.root)
	if err != nil {
		return s, err
	}
	s.Height = 1
	for n.typ == pageInternal {
		s.Height++
		n, err = t.getNode(n.children[0])
		if err != nil {
			return s, err
		}
	}
	for id := t.freeHead; id != invalidPage; {
		s.FreePages++
		buf := make([]byte, pageHeaderLen)
		if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			return s, err
		}
		id = binary.LittleEndian.Uint32(buf[4:])
	}
	return s, nil
}

// Flush writes every dirty page and the header to the file.
func (t *Tree) Flush() error {
	if t.closed {
		return ErrClosed
	}
	for _, n := range t.cache {
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				return err
			}
		}
	}
	return t.writeHeader()
}

// Sync flushes and then fsyncs the file.
func (t *Tree) Sync() error {
	if err := t.Flush(); err != nil {
		return err
	}
	return t.f.Sync()
}

// Close flushes and closes the file. The tree is unusable afterwards.
func (t *Tree) Close() error {
	if t.closed {
		return nil
	}
	if err := t.Flush(); err != nil {
		t.f.Close()
		return err
	}
	t.closed = true
	return t.f.Close()
}
