package textindex

import (
	"bytes"
	"fmt"
)

// CheckReport summarizes a structural integrity scan of the tree.
type CheckReport struct {
	Keys       int
	LeafPages  int
	InnerPages int
	Height     int
	FreePages  int
}

// Check walks the whole tree and verifies its structural invariants:
// in-order keys, consistent separator bounds, uniform leaf depth, an intact
// leaf chain, readable overflow chains and an acyclic free list. It returns
// a report on success and ErrCorrupt (wrapped with the failing detail)
// otherwise. Tooling runs it after bulk builds; tests run it after random
// workloads.
func (t *Tree) Check() (CheckReport, error) {
	if t.closed {
		return CheckReport{}, ErrClosed
	}
	var rep CheckReport
	leafDepth := -1
	var prevLeafLast []byte
	var expectedNext pageID // next leaf the chain should visit; 0 = unknown

	var walk func(id pageID, depth int, lo, hi []byte) error
	walk = func(id pageID, depth int, lo, hi []byte) error {
		n, err := t.getNode(id)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("%w: page %d keys out of order", ErrCorrupt, id)
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("%w: page %d key below separator bound", ErrCorrupt, id)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("%w: page %d key above separator bound", ErrCorrupt, id)
			}
		}
		switch n.typ {
		case pageLeaf:
			rep.LeafPages++
			rep.Keys += len(n.keys)
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("%w: leaf %d at depth %d, expected %d", ErrCorrupt, id, depth, leafDepth)
			}
			if expectedNext != 0 && expectedNext != id {
				return fmt.Errorf("%w: leaf chain skips to %d, expected %d", ErrCorrupt, id, expectedNext)
			}
			expectedNext = n.next
			if len(n.keys) > 0 {
				if prevLeafLast != nil && bytes.Compare(prevLeafLast, n.keys[0]) >= 0 {
					return fmt.Errorf("%w: leaf chain keys not ascending at page %d", ErrCorrupt, id)
				}
				prevLeafLast = append(prevLeafLast[:0], n.keys[len(n.keys)-1]...)
			}
			for i := range n.keys {
				if n.overflow[i] != invalidPage {
					if _, err := t.readChain(n.overflow[i], n.vlen[i]); err != nil {
						return fmt.Errorf("leaf %d slot %d: %w", id, i, err)
					}
				}
			}
			return nil
		case pageInternal:
			rep.InnerPages++
			if len(n.children) != len(n.keys)+1 {
				return fmt.Errorf("%w: page %d has %d children for %d keys", ErrCorrupt, id, len(n.children), len(n.keys))
			}
			for i, child := range n.children {
				var childLo, childHi []byte
				if i > 0 {
					childLo = n.keys[i-1]
				} else {
					childLo = lo
				}
				if i < len(n.keys) {
					childHi = n.keys[i]
				} else {
					childHi = hi
				}
				if err := walk(child, depth+1, childLo, childHi); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("%w: page %d has type %d inside the tree", ErrCorrupt, id, n.typ)
		}
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return rep, err
	}
	if expectedNext != 0 {
		return rep, fmt.Errorf("%w: leaf chain dangles at page %d", ErrCorrupt, expectedNext)
	}
	rep.Height = leafDepth
	if rep.Keys != int(t.numKeys) {
		return rep, fmt.Errorf("%w: tree claims %d keys, walk found %d", ErrCorrupt, t.numKeys, rep.Keys)
	}

	// Free list: bounded walk to detect cycles and out-of-range links.
	seen := make(map[pageID]bool)
	for id := t.freeHead; id != invalidPage; {
		if seen[id] {
			return rep, fmt.Errorf("%w: free list cycles at page %d", ErrCorrupt, id)
		}
		if id >= t.pageCount {
			return rep, fmt.Errorf("%w: free list leaves the file at page %d", ErrCorrupt, id)
		}
		seen[id] = true
		rep.FreePages++
		buf := make([]byte, pageHeaderLen)
		if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			return rep, fmt.Errorf("%w: free page %d unreadable: %v", ErrCorrupt, id, err)
		}
		if buf[0] != pageFree {
			return rep, fmt.Errorf("%w: page %d on free list has type %d", ErrCorrupt, id, buf[0])
		}
		id = pageID(uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24)
	}
	return rep, nil
}
