package textindex

import "testing"

// FuzzDecodePostings feeds arbitrary bytes to the posting-list decoder: it
// must never panic, and whatever it accepts must re-encode to an equivalent
// list.
func FuzzDecodePostings(f *testing.F) {
	f.Add(encodePostings([]uint32{1, 5, 100000}))
	f.Add(encodePostings(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, err := decodePostings(data)
		if err != nil {
			return
		}
		for i := 1; i < len(docs); i++ {
			if docs[i] < docs[i-1] {
				// Deltas are unsigned, so decoded lists may wrap around on
				// adversarial input but must stay non-panicking; order is
				// only guaranteed for lists produced by encodePostings.
				return
			}
		}
		redecoded, err := decodePostings(encodePostings(docs))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(redecoded) != len(docs) {
			t.Fatalf("re-encode changed length: %d vs %d", len(redecoded), len(docs))
		}
		for i := range docs {
			if redecoded[i] != docs[i] {
				t.Fatalf("re-encode changed docs[%d]", i)
			}
		}
	})
}
