package textindex

import (
	"testing"
)

func TestSuggestTerms(t *testing.T) {
	f := newInverted(t)
	terms := map[string][]uint32{
		"cafe":      {1, 2, 3},
		"cafeteria": {4},
		"camera":    {5, 6},
		"park":      {7},
	}
	for term, docs := range terms {
		if err := f.PutPostings(term, docs); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.SuggestTerms("caf", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("suggestions = %v, want cafe and cafeteria", got)
	}
	if got[0].Term != "cafe" || got[0].Count != 3 {
		t.Errorf("first suggestion = %+v", got[0])
	}
	if got[1].Term != "cafeteria" || got[1].Count != 1 {
		t.Errorf("second suggestion = %+v", got[1])
	}

	// Limit applies.
	got, err = f.SuggestTerms("ca", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limited suggestions = %v", got)
	}

	// No match.
	got, err = f.SuggestTerms("zz", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("suggestions for zz = %v", got)
	}

	// Empty prefix lists everything up to the limit, in order.
	got, err = f.SuggestTerms("", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Term != "cafe" || got[3].Term != "park" {
		t.Fatalf("full listing = %v", got)
	}
}

func TestSuggestTermsDefaultsLimit(t *testing.T) {
	f := newInverted(t)
	for i := 0; i < 30; i++ {
		if err := f.PutPostings("tag"+string(rune('a'+i%26))+string(rune('a'+i/26)), []uint32{uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.SuggestTerms("tag", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("default limit returned %d", len(got))
	}
}
