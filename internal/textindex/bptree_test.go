package textindex

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func mustPut(t *testing.T, tr *Tree, k, v string) {
	t.Helper()
	if err := tr.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func mustGet(t *testing.T, tr *Tree, k string) string {
	t.Helper()
	v, ok, err := tr.Get([]byte(k))
	if err != nil {
		t.Fatalf("Get(%q): %v", k, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", k)
	}
	return string(v)
}

func TestPutGetSmall(t *testing.T) {
	tr := newTree(t)
	mustPut(t, tr, "restaurant", "1,5,9")
	mustPut(t, tr, "pub", "2")
	mustPut(t, tr, "jazz", "7,8")
	if got := mustGet(t, tr, "pub"); got != "2" {
		t.Errorf("pub = %q", got)
	}
	if got := mustGet(t, tr, "restaurant"); got != "1,5,9" {
		t.Errorf("restaurant = %q", got)
	}
	if _, ok, _ := tr.Get([]byte("museum")); ok {
		t.Error("Get(missing) returned ok")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	tr := newTree(t)
	mustPut(t, tr, "k", "old")
	mustPut(t, tr, "k", "new")
	if got := mustGet(t, tr, "k"); got != "new" {
		t.Errorf("value = %q, want new", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
}

func TestPutValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.Put(nil, []byte("x")); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key: %v", err)
	}
	long := bytes.Repeat([]byte("k"), MaxKeyLen+1)
	if err := tr.Put(long, []byte("x")); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("long key: %v", err)
	}
	if err := tr.Put(bytes.Repeat([]byte("k"), MaxKeyLen), []byte("x")); err != nil {
		t.Errorf("max-length key rejected: %v", err)
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		mustPut(t, tr, k, fmt.Sprintf("value-%d", i*i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	s, err := tr.ComputeStats()
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if s.Height < 2 {
		t.Errorf("height = %d; %d keys should have split the root", s.Height, n)
	}
	for _, i := range []int{0, 1, n / 3, n - 2, n - 1} {
		k := fmt.Sprintf("key-%06d", i)
		if got := mustGet(t, tr, k); got != fmt.Sprintf("value-%d", i*i) {
			t.Fatalf("%s = %q", k, got)
		}
	}
}

func TestOverflowValues(t *testing.T) {
	tr := newTree(t)
	big := bytes.Repeat([]byte("abcdefgh"), 3000) // 24000 bytes, ~6 overflow pages
	mustPut(t, tr, "big", string(big))
	small := "tiny"
	mustPut(t, tr, "small", small)
	if got := mustGet(t, tr, "big"); got != string(big) {
		t.Fatalf("big value corrupted: %d bytes, want %d", len(got), len(big))
	}
	if got := mustGet(t, tr, "small"); got != small {
		t.Fatalf("small = %q", got)
	}
	// Replace the big value: the old chain must be recycled.
	preStats, _ := tr.ComputeStats()
	mustPut(t, tr, "big", "now small")
	postStats, _ := tr.ComputeStats()
	if postStats.FreePages <= preStats.FreePages {
		t.Errorf("overflow chain not freed: free %d → %d", preStats.FreePages, postStats.FreePages)
	}
	if got := mustGet(t, tr, "big"); got != "now small" {
		t.Fatalf("big after replace = %q", got)
	}
	// New overflow values should reuse freed pages rather than growing.
	grown := postStats.Pages
	mustPut(t, tr, "big2", string(big))
	finalStats, _ := tr.ComputeStats()
	if finalStats.Pages > grown+7 {
		t.Errorf("free pages not reused: %d → %d pages", grown, finalStats.Pages)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		mustPut(t, tr, fmt.Sprintf("k%03d", i), "v")
	}
	ok, err := tr.Delete([]byte("k050"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found, _ := tr.Get([]byte("k050")); found {
		t.Error("deleted key still present")
	}
	if tr.Len() != 99 {
		t.Errorf("Len = %d", tr.Len())
	}
	ok, err = tr.Delete([]byte("k050"))
	if err != nil || ok {
		t.Errorf("second Delete = %v, %v; want false, nil", ok, err)
	}
}

func TestDeleteFreesOverflow(t *testing.T) {
	tr := newTree(t)
	mustPut(t, tr, "big", string(bytes.Repeat([]byte("z"), 10000)))
	pre, _ := tr.ComputeStats()
	if _, err := tr.Delete([]byte("big")); err != nil {
		t.Fatal(err)
	}
	post, _ := tr.ComputeStats()
	if post.FreePages <= pre.FreePages {
		t.Errorf("delete did not free overflow pages: %d → %d", pre.FreePages, post.FreePages)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("term%05d", i)), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	tr2, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tr2.Close()
	if tr2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), n)
	}
	for _, i := range []int{0, 7, 555, n - 1} {
		v, ok, err := tr2.Get([]byte(fmt.Sprintf("term%05d", i)))
		if err != nil || !ok {
			t.Fatalf("reopened Get(%d) = %v, %v", i, ok, err)
		}
		if string(v) != fmt.Sprintf("%d", i) {
			t.Fatalf("reopened value %d = %q", i, v)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.kbpt")
	if err := writeFile(path, bytes.Repeat([]byte("junkjunk"), PageSize/8)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(garbage) = %v, want ErrCorrupt", err)
	}
	if _, err := Open(filepath.Join(dir, "missing.kbpt")); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
}

func TestCursorFullScan(t *testing.T) {
	tr := newTree(t)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		mustPut(t, tr, k, "v:"+k)
	}
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for c.Next() {
		got = append(got, string(c.Key()))
		if want := "v:" + string(c.Key()); string(c.Value()) != want {
			t.Errorf("value for %s = %q", c.Key(), c.Value())
		}
	}
	if c.Err() != nil {
		t.Fatalf("cursor error: %v", c.Err())
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestCursorSeek(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 500; i++ {
		mustPut(t, tr, fmt.Sprintf("w%04d", i*2), "x") // even keys only
	}
	c, err := tr.Seek([]byte("w0101")) // between w0100 and w0102
	if err != nil {
		t.Fatal(err)
	}
	if !c.Next() {
		t.Fatal("Seek found nothing")
	}
	if string(c.Key()) != "w0102" {
		t.Fatalf("first key after seek = %q, want w0102", c.Key())
	}
	count := 1
	for c.Next() {
		count++
	}
	// Keys below w0101 are w0000..w0100 → 51 of the 500; the rest remain.
	if want := 500 - 51; count != want {
		t.Fatalf("scanned %d keys after seek, want %d", count, want)
	}
}

func TestCursorEmptyTree(t *testing.T) {
	tr := newTree(t)
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	if c.Next() {
		t.Fatal("Next on empty tree returned true")
	}
}

// Model-based random test: the tree must agree with a map through thousands
// of random put/get/delete operations and survive cache pressure (tiny cache)
// and reopen cycles.
func TestRandomOpsAgainstModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetCacheCapacity(8) // force heavy eviction
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(2012))
	randKey := func() string { return fmt.Sprintf("key-%04d", rng.Intn(2000)) }
	randVal := func() string {
		if rng.Intn(20) == 0 { // occasionally huge → overflow path
			return string(bytes.Repeat([]byte{byte('a' + rng.Intn(26))}, 2000+rng.Intn(9000)))
		}
		return fmt.Sprintf("val-%d", rng.Int63())
	}

	const steps = 6000
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1: // delete
			k := randKey()
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("step %d Delete: %v", i, err)
			}
			_, inModel := model[k]
			if ok != inModel {
				t.Fatalf("step %d Delete(%s) = %v, model %v", i, k, ok, inModel)
			}
			delete(model, k)
		case 2, 3: // get
			k := randKey()
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatalf("step %d Get: %v", i, err)
			}
			want, inModel := model[k]
			if ok != inModel || (ok && string(v) != want) {
				t.Fatalf("step %d Get(%s) mismatch", i, k)
			}
		default: // put
			k, v := randKey(), randVal()
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d Put: %v", i, err)
			}
			model[k] = v
		}
		if i == steps/2 { // mid-run persistence check
			if err := tr.Close(); err != nil {
				t.Fatalf("mid Close: %v", err)
			}
			tr, err = Open(path)
			if err != nil {
				t.Fatalf("mid Open: %v", err)
			}
			tr.SetCacheCapacity(8)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	// Full verification via cursor: ordered and complete.
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	var prev string
	seen := 0
	for c.Next() {
		k := string(c.Key())
		if prev != "" && k <= prev {
			t.Fatalf("cursor out of order: %q after %q", k, prev)
		}
		prev = k
		want, ok := model[k]
		if !ok {
			t.Fatalf("cursor found phantom key %q", k)
		}
		if string(c.Value()) != want {
			t.Fatalf("cursor value mismatch for %q", k)
		}
		seen++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if seen != len(model) {
		t.Fatalf("cursor saw %d keys, model has %d", seen, len(model))
	}
	tr.Close()
}

func TestClosedTreeRejectsOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close: %v", err)
	}
	if _, _, err := tr.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
