package textindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the paging layer of the B+-tree: node (de)serialization,
// page allocation, the free list, overflow chains, and the write-back page
// cache with random replacement.
//
// Page layout, all little-endian:
//
//	offset 0  u8  type (leaf/internal/overflow/free)
//	offset 1  u8  reserved
//	offset 2  u16 cell count (leaf/internal)
//	offset 4  u32 next: leaf → right sibling; internal → child[0];
//	              overflow/free → next page in chain
//	offset 8  u32 extra: overflow → bytes used in this page
//	offset 16 cells / chunk data
//
// Leaf cell:     u16 keyLen | key | u8 inline | inline=1: u32 len | bytes
//
//	inline=0: u32 total | u32 head
//
// Internal cell: u16 keyLen | key | u32 child[i+1]
const overflowCap = PageSize - pageHeaderLen

// newNode allocates a page and returns a fresh dirty node image for it.
func (t *Tree) newNode(typ byte) *node {
	n := &node{id: t.allocPage(), typ: typ, dirty: true}
	t.cache[n.id] = n
	t.touch(n)
	return n
}

// allocPage takes a page from the free list or grows the file.
func (t *Tree) allocPage() pageID {
	if t.freeHead != invalidPage {
		id := t.freeHead
		buf := make([]byte, pageHeaderLen)
		if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err == nil {
			t.freeHead = binary.LittleEndian.Uint32(buf[4:])
			return id
		}
		// Unreadable free page: fall through and grow instead.
		t.freeHead = invalidPage
	}
	id := t.pageCount
	t.pageCount++
	return id
}

// freePage links a page onto the free list.
func (t *Tree) freePage(id pageID) error {
	buf := make([]byte, PageSize)
	buf[0] = pageFree
	binary.LittleEndian.PutUint32(buf[4:], t.freeHead)
	if _, err := t.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return err
	}
	t.freeHead = id
	delete(t.cache, id)
	return nil
}

// getNode returns the node image for a page, reading it if not cached.
func (t *Tree) getNode(id pageID) (*node, error) {
	if n, ok := t.cache[id]; ok {
		t.touch(n)
		return n, nil
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	t.cache[id] = n
	t.touch(n)
	return n, nil
}

func (t *Tree) touch(n *node) {
	t.clock++
	n.lastUsed = t.clock
}

// maybeEvict trims the cache back under capacity, writing dirty victims.
// Victims are the least recently used half of an arbitrary sample, which
// approximates LRU without an ordering structure on the hot path.
func (t *Tree) maybeEvict() error {
	if len(t.cache) <= t.cacheCap {
		return nil
	}
	type victim struct {
		id   pageID
		used uint64
	}
	victims := make([]victim, 0, len(t.cache))
	for id, n := range t.cache {
		if id == t.root {
			continue
		}
		victims = append(victims, victim{id, n.lastUsed})
	}
	// Partial selection: evict the oldest quarter.
	target := len(t.cache) - t.cacheCap + t.cacheCap/4
	if target > len(victims) {
		target = len(victims)
	}
	for i := 0; i < target; i++ {
		oldest := i
		for j := i + 1; j < len(victims); j++ {
			if victims[j].used < victims[oldest].used {
				oldest = j
			}
		}
		victims[i], victims[oldest] = victims[oldest], victims[i]
		n := t.cache[victims[i].id]
		if n.dirty {
			if err := t.writeNode(n); err != nil {
				return err
			}
		}
		delete(t.cache, victims[i].id)
	}
	return nil
}

// writeHeader persists the tree metadata to page 0.
func (t *Tree) writeHeader() error {
	buf := make([]byte, PageSize)
	copy(buf[0:], treeMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[4:], treeVersion)
	le.PutUint32(buf[8:], PageSize)
	le.PutUint32(buf[12:], t.root)
	le.PutUint32(buf[16:], t.pageCount)
	le.PutUint32(buf[20:], t.freeHead)
	le.PutUint64(buf[24:], t.numKeys)
	_, err := t.f.WriteAt(buf, 0)
	return err
}

// writeNode serializes a node into its page.
func (t *Tree) writeNode(n *node) error {
	buf := make([]byte, PageSize)
	le := binary.LittleEndian
	buf[0] = n.typ
	le.PutUint16(buf[2:], uint16(len(n.keys)))
	off := pageHeaderLen
	switch n.typ {
	case pageLeaf:
		le.PutUint32(buf[4:], n.next)
		for i, k := range n.keys {
			le.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			if n.overflow[i] == invalidPage {
				buf[off] = 1
				off++
				le.PutUint32(buf[off:], uint32(len(n.vals[i])))
				off += 4
				off += copy(buf[off:], n.vals[i])
			} else {
				buf[off] = 0
				off++
				le.PutUint32(buf[off:], n.vlen[i])
				off += 4
				le.PutUint32(buf[off:], n.overflow[i])
				off += 4
			}
		}
	case pageInternal:
		le.PutUint32(buf[4:], n.children[0])
		for i, k := range n.keys {
			le.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			le.PutUint32(buf[off:], n.children[i+1])
			off += 4
		}
	default:
		return fmt.Errorf("%w: writing page %d of type %d", ErrCorrupt, n.id, n.typ)
	}
	if off > PageSize {
		return fmt.Errorf("%w: page %d overflows serialization (%d bytes)", ErrCorrupt, n.id, off)
	}
	if _, err := t.f.WriteAt(buf, int64(n.id)*PageSize); err != nil {
		return err
	}
	n.dirty = false
	return nil
}

// readNode deserializes a page into a node image.
func (t *Tree) readNode(id pageID) (*node, error) {
	if id == invalidPage || id >= t.pageCount {
		return nil, fmt.Errorf("%w: page %d out of range", ErrCorrupt, id)
	}
	buf := make([]byte, PageSize)
	if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("%w: reading page %d: %v", ErrCorrupt, id, err)
	}
	le := binary.LittleEndian
	n := &node{id: id, typ: buf[0]}
	count := int(le.Uint16(buf[2:]))
	off := pageHeaderLen
	need := func(k int) error {
		if off+k > PageSize {
			return fmt.Errorf("%w: page %d truncated cell", ErrCorrupt, id)
		}
		return nil
	}
	switch n.typ {
	case pageLeaf:
		n.next = le.Uint32(buf[4:])
		for i := 0; i < count; i++ {
			if err := need(2); err != nil {
				return nil, err
			}
			klen := int(le.Uint16(buf[off:]))
			off += 2
			if err := need(klen + 1); err != nil {
				return nil, err
			}
			key := append([]byte(nil), buf[off:off+klen]...)
			off += klen
			inline := buf[off]
			off++
			n.keys = append(n.keys, key)
			if inline == 1 {
				if err := need(4); err != nil {
					return nil, err
				}
				vlen := int(le.Uint32(buf[off:]))
				off += 4
				if err := need(vlen); err != nil {
					return nil, err
				}
				n.vals = append(n.vals, append([]byte(nil), buf[off:off+vlen]...))
				off += vlen
				n.overflow = append(n.overflow, invalidPage)
				n.vlen = append(n.vlen, uint32(vlen))
			} else {
				if err := need(8); err != nil {
					return nil, err
				}
				total := le.Uint32(buf[off:])
				off += 4
				head := le.Uint32(buf[off:])
				off += 4
				n.vals = append(n.vals, nil)
				n.overflow = append(n.overflow, head)
				n.vlen = append(n.vlen, total)
			}
		}
	case pageInternal:
		n.children = append(n.children, le.Uint32(buf[4:]))
		for i := 0; i < count; i++ {
			if err := need(2); err != nil {
				return nil, err
			}
			klen := int(le.Uint16(buf[off:]))
			off += 2
			if err := need(klen + 4); err != nil {
				return nil, err
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+klen]...))
			off += klen
			n.children = append(n.children, le.Uint32(buf[off:]))
			off += 4
		}
	default:
		return nil, fmt.Errorf("%w: page %d has unexpected type %d", ErrCorrupt, id, n.typ)
	}
	return n, nil
}

// leafSize returns the serialized size of a leaf node.
func leafSize(n *node) int {
	size := pageHeaderLen
	for i, k := range n.keys {
		size += 2 + len(k) + 1
		if n.overflow[i] == invalidPage {
			size += 4 + len(n.vals[i])
		} else {
			size += 8
		}
	}
	return size
}

// internalSize returns the serialized size of an internal node.
func internalSize(n *node) int {
	size := pageHeaderLen
	for _, k := range n.keys {
		size += 2 + len(k) + 4
	}
	return size
}

// writeChain stores value across overflow pages, returning the chain head.
func (t *Tree) writeChain(value []byte) (pageID, error) {
	var head, prev pageID
	le := binary.LittleEndian
	for start := 0; start < len(value); start += overflowCap {
		end := start + overflowCap
		if end > len(value) {
			end = len(value)
		}
		id := t.allocPage()
		buf := make([]byte, PageSize)
		buf[0] = pageOverflow
		le.PutUint32(buf[8:], uint32(end-start))
		copy(buf[pageHeaderLen:], value[start:end])
		if _, err := t.f.WriteAt(buf, int64(id)*PageSize); err != nil {
			return 0, err
		}
		if head == invalidPage {
			head = id
		} else {
			// Patch the previous page's next pointer.
			var nb [4]byte
			le.PutUint32(nb[:], id)
			if _, err := t.f.WriteAt(nb[:], int64(prev)*PageSize+4); err != nil {
				return 0, err
			}
		}
		prev = id
	}
	return head, nil
}

// readChain reads total bytes from an overflow chain.
func (t *Tree) readChain(head pageID, total uint32) ([]byte, error) {
	out := make([]byte, 0, total)
	le := binary.LittleEndian
	buf := make([]byte, PageSize)
	for id := head; id != invalidPage; {
		if id >= t.pageCount {
			return nil, fmt.Errorf("%w: overflow page %d out of range", ErrCorrupt, id)
		}
		if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			return nil, fmt.Errorf("%w: overflow page %d: %v", ErrCorrupt, id, err)
		}
		if buf[0] != pageOverflow {
			return nil, fmt.Errorf("%w: page %d is not an overflow page", ErrCorrupt, id)
		}
		used := le.Uint32(buf[8:])
		if used > overflowCap {
			return nil, fmt.Errorf("%w: overflow page %d claims %d bytes", ErrCorrupt, id, used)
		}
		out = append(out, buf[pageHeaderLen:pageHeaderLen+used]...)
		if uint32(len(out)) > total {
			return nil, fmt.Errorf("%w: overflow chain longer than recorded %d", ErrCorrupt, total)
		}
		id = le.Uint32(buf[4:])
	}
	if uint32(len(out)) != total {
		return nil, fmt.Errorf("%w: overflow chain has %d bytes, recorded %d", ErrCorrupt, len(out), total)
	}
	return out, nil
}

// freeChain returns an overflow chain to the free list.
func (t *Tree) freeChain(head pageID) error {
	le := binary.LittleEndian
	buf := make([]byte, pageHeaderLen)
	for id := head; id != invalidPage; {
		if id >= t.pageCount {
			return fmt.Errorf("%w: freeing overflow page %d out of range", ErrCorrupt, id)
		}
		if _, err := t.f.ReadAt(buf, int64(id)*PageSize); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("%w: freeing truncated overflow page %d", ErrCorrupt, id)
			}
			return err
		}
		next := le.Uint32(buf[4:])
		if err := t.freePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
