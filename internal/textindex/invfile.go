package textindex

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// InvertedFile is the paper's disk-resident inverted index: for every
// keyword, the ascending list of node identifiers whose keyword sets contain
// it. Posting lists are delta-compressed varints inside a B+-tree keyed by
// the keyword string, so vocabulary lookups, frequency checks and ordered
// vocabulary scans are all tree operations.
type InvertedFile struct {
	tree *Tree
}

// CreateInverted creates a new inverted file at path.
func CreateInverted(path string) (*InvertedFile, error) {
	t, err := Create(path)
	if err != nil {
		return nil, err
	}
	return &InvertedFile{tree: t}, nil
}

// OpenInverted opens an existing inverted file.
func OpenInverted(path string) (*InvertedFile, error) {
	t, err := Open(path)
	if err != nil {
		return nil, err
	}
	return &InvertedFile{tree: t}, nil
}

// PutPostings stores the complete posting list for term, replacing any
// previous list. The input need not be sorted; duplicates are removed.
func (f *InvertedFile) PutPostings(term string, docs []uint32) error {
	if term == "" {
		return ErrEmptyKey
	}
	sorted := append([]uint32(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w := 0
	for i, d := range sorted {
		if i == 0 || d != sorted[w-1] {
			sorted[w] = d
			w++
		}
	}
	sorted = sorted[:w]
	return f.tree.Put([]byte(term), encodePostings(sorted))
}

// AddDoc inserts one document into term's posting list, creating the list if
// needed. Bulk builders should prefer PutPostings: AddDoc re-encodes the list
// on every call.
func (f *InvertedFile) AddDoc(term string, doc uint32) error {
	docs, err := f.Postings(term)
	if err != nil {
		return err
	}
	i := sort.Search(len(docs), func(i int) bool { return docs[i] >= doc })
	if i < len(docs) && docs[i] == doc {
		return nil
	}
	docs = append(docs, 0)
	copy(docs[i+1:], docs[i:])
	docs[i] = doc
	return f.tree.Put([]byte(term), encodePostings(docs))
}

// Postings returns the ascending posting list for term; a missing term
// yields an empty list.
func (f *InvertedFile) Postings(term string) ([]uint32, error) {
	raw, ok, err := f.tree.Get([]byte(term))
	if err != nil || !ok {
		return nil, err
	}
	return decodePostings(raw)
}

// DocFrequency returns the posting-list length for term.
func (f *InvertedFile) DocFrequency(term string) (int, error) {
	raw, ok, err := f.tree.Get([]byte(term))
	if err != nil || !ok {
		return 0, err
	}
	n, _ := binary.Uvarint(raw)
	return int(n), nil
}

// NumTerms returns the vocabulary size.
func (f *InvertedFile) NumTerms() int { return f.tree.Len() }

// Walk calls fn for every (term, postings) pair in ascending term order,
// stopping early if fn returns false.
func (f *InvertedFile) Walk(fn func(term string, docs []uint32) bool) error {
	c, err := f.tree.SeekFirst()
	if err != nil {
		return err
	}
	for c.Next() {
		docs, err := decodePostings(c.Value())
		if err != nil {
			return err
		}
		if !fn(string(c.Key()), docs) {
			return nil
		}
	}
	return c.Err()
}

// Flush writes dirty pages to disk.
func (f *InvertedFile) Flush() error { return f.tree.Flush() }

// Close flushes and closes the underlying tree.
func (f *InvertedFile) Close() error { return f.tree.Close() }

// Tree exposes the underlying B+-tree for stats and tests.
func (f *InvertedFile) Tree() *Tree { return f.tree }

// encodePostings writes count followed by delta-encoded doc IDs as uvarints.
func encodePostings(docs []uint32) []byte {
	buf := make([]byte, 0, 1+5*len(docs))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(docs)))
	buf = append(buf, tmp[:n]...)
	prev := uint32(0)
	for i, d := range docs {
		delta := uint64(d)
		if i > 0 {
			delta = uint64(d - prev)
		}
		n = binary.PutUvarint(tmp[:], delta)
		buf = append(buf, tmp[:n]...)
		prev = d
	}
	return buf
}

// decodePostings reverses encodePostings.
func decodePostings(raw []byte) ([]uint32, error) {
	count, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad posting count", ErrCorrupt)
	}
	raw = raw[n:]
	docs := make([]uint32, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: posting list truncated at %d of %d", ErrCorrupt, i, count)
		}
		raw = raw[n:]
		if i == 0 {
			prev = delta
		} else {
			prev += delta
		}
		docs = append(docs, uint32(prev))
	}
	return docs, nil
}
