package textindex

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"kor/internal/graph"
)

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func newInverted(t *testing.T) *InvertedFile {
	t.Helper()
	f, err := CreateInverted(filepath.Join(t.TempDir(), "inv.kbpt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestPostingsRoundTrip(t *testing.T) {
	f := newInverted(t)
	if err := f.PutPostings("museum", []uint32{9, 3, 3, 120, 7}); err != nil {
		t.Fatal(err)
	}
	got, err := f.Postings("museum")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{3, 7, 9, 120}
	if len(got) != len(want) {
		t.Fatalf("Postings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Postings = %v, want %v", got, want)
		}
	}
	df, err := f.DocFrequency("museum")
	if err != nil || df != 4 {
		t.Errorf("DocFrequency = %d, %v", df, err)
	}
}

func TestMissingTerm(t *testing.T) {
	f := newInverted(t)
	got, err := f.Postings("nothing")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Postings(missing) = %v", got)
	}
	df, err := f.DocFrequency("nothing")
	if err != nil || df != 0 {
		t.Errorf("DocFrequency(missing) = %d, %v", df, err)
	}
}

func TestAddDoc(t *testing.T) {
	f := newInverted(t)
	for _, d := range []uint32{5, 1, 5, 3} {
		if err := f.AddDoc("cafe", d); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.Postings("cafe")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Postings = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Postings = %v, want %v", got, want)
		}
	}
}

func TestWalkOrdered(t *testing.T) {
	f := newInverted(t)
	terms := []string{"zoo", "aquarium", "museum", "park"}
	for i, term := range terms {
		if err := f.PutPostings(term, []uint32{uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	if err := f.Walk(func(term string, docs []uint32) bool {
		visited = append(visited, term)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(visited) || len(visited) != len(terms) {
		t.Fatalf("Walk order = %v", visited)
	}
	// Early stop.
	count := 0
	if err := f.Walk(func(string, []uint32) bool { count++; return count < 2 }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("early-stop Walk visited %d", count)
	}
}

func TestHugePostingListUsesOverflow(t *testing.T) {
	f := newInverted(t)
	docs := make([]uint32, 50000)
	for i := range docs {
		docs[i] = uint32(i * 3)
	}
	if err := f.PutPostings("everywhere", docs); err != nil {
		t.Fatal(err)
	}
	got, err := f.Postings("everywhere")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(docs) {
		t.Fatalf("len = %d, want %d", len(got), len(docs))
	}
	for i := range docs {
		if got[i] != docs[i] {
			t.Fatalf("posting %d = %d, want %d", i, got[i], docs[i])
		}
	}
}

// Property: encode/decode is the identity on sorted unique doc lists.
func TestPostingCodecProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		docs := raw[:0]
		for i, d := range raw {
			if i == 0 || d != docs[len(docs)-1] {
				docs = append(docs, d)
			}
		}
		decoded, err := decodePostings(encodePostings(docs))
		if err != nil {
			return false
		}
		if len(decoded) != len(docs) {
			return false
		}
		for i := range docs {
			if decoded[i] != docs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	raw := encodePostings([]uint32{1, 100, 100000})
	for cut := 1; cut < len(raw); cut++ {
		if _, err := decodePostings(raw[:cut]); err == nil {
			t.Errorf("decodePostings accepted truncation at %d", cut)
		}
	}
	if _, err := decodePostings(nil); err == nil {
		t.Error("decodePostings accepted empty input")
	}
}

func TestGraphIndexAdapter(t *testing.T) {
	b := graph.NewBuilder()
	v0 := b.AddNode("pub", "jazz")
	v1 := b.AddNode("pub")
	v2 := b.AddNode("museum")
	if err := b.AddEdge(v0, v1, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()

	gi, err := BuildForGraph(filepath.Join(t.TempDir(), "g.kbpt"), g)
	if err != nil {
		t.Fatal(err)
	}
	defer gi.Close()

	pub, _ := g.Vocab().Lookup("pub")
	post := gi.Postings(pub)
	if len(post) != 2 || post[0] != v0 || post[1] != v1 {
		t.Fatalf("Postings(pub) = %v", post)
	}
	if gi.DocFrequency(pub) != 2 {
		t.Errorf("DocFrequency(pub) = %d", gi.DocFrequency(pub))
	}
	museum, _ := g.Vocab().Lookup("museum")
	if got := gi.Postings(museum); len(got) != 1 || got[0] != v2 {
		t.Fatalf("Postings(museum) = %v", got)
	}
	if got := gi.Postings(graph.Term(999)); len(got) != 0 {
		t.Fatalf("Postings(unknown) = %v", got)
	}

	// The adapter must agree with the in-memory index on every term.
	mem := graph.NewMemIndex(g)
	for _, name := range g.Vocab().Names() {
		term, _ := g.Vocab().Lookup(name)
		a, b := gi.Postings(term), mem.Postings(term)
		if len(a) != len(b) {
			t.Fatalf("term %q: disk %v vs mem %v", name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("term %q: disk %v vs mem %v", name, a, b)
			}
		}
	}
}

func TestGraphIndexMemoization(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("x")
	g := b.MustBuild()
	gi, err := BuildForGraph(filepath.Join(t.TempDir(), "memo.kbpt"), g)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.Vocab().Lookup("x")
	first := gi.Postings(x)
	// Close the file: memoized postings must still serve.
	gi.file.Close()
	second := gi.Postings(x)
	if len(first) != 1 || len(second) != 1 || first[0] != second[0] {
		t.Fatalf("memoization broken: %v then %v", first, second)
	}
}

func TestRandomInvertedAgainstModel(t *testing.T) {
	f := newInverted(t)
	rng := rand.New(rand.NewSource(5))
	model := make(map[string][]uint32)
	terms := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff"}
	for step := 0; step < 400; step++ {
		term := terms[rng.Intn(len(terms))]
		n := rng.Intn(50)
		docs := make([]uint32, n)
		for i := range docs {
			docs[i] = uint32(rng.Intn(1000))
		}
		if err := f.PutPostings(term, docs); err != nil {
			t.Fatal(err)
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		uniq := docs[:0]
		for i, d := range docs {
			if i == 0 || d != uniq[len(uniq)-1] {
				uniq = append(uniq, d)
			}
		}
		model[term] = append([]uint32(nil), uniq...)

		check := terms[rng.Intn(len(terms))]
		got, err := f.Postings(check)
		if err != nil {
			t.Fatal(err)
		}
		want := model[check]
		if len(got) != len(want) {
			t.Fatalf("step %d: %q = %v, want %v", step, check, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: %q = %v, want %v", step, check, got, want)
			}
		}
	}
}
