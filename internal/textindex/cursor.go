package textindex

import "bytes"

// Cursor iterates keys in ascending order along the leaf chain. A cursor is
// invalidated by writes to the tree; interleaving writes with iteration is
// not supported.
type Cursor struct {
	t    *Tree
	leaf pageID
	idx  int
	key  []byte
	val  []byte
	err  error
	done bool
}

// SeekFirst positions a cursor before the smallest key.
func (t *Tree) SeekFirst() (*Cursor, error) { return t.Seek(nil) }

// Seek positions a cursor before the smallest key ≥ key. Call Next to load
// the first entry.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	if t.closed {
		return nil, ErrClosed
	}
	n, err := t.getNode(t.root)
	if err != nil {
		return nil, err
	}
	for n.typ == pageInternal {
		ci := 0
		if key != nil {
			ci = childIndex(n.keys, key)
		}
		n, err = t.getNode(n.children[ci])
		if err != nil {
			return nil, err
		}
	}
	idx := 0
	if key != nil {
		idx, _ = findKey(n.keys, key)
	}
	return &Cursor{t: t, leaf: n.id, idx: idx - 1}, nil
}

// Next advances to the next entry, reporting whether one exists. On success
// Key and Value return the entry.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	c.idx++
	for {
		n, err := c.t.getNode(c.leaf)
		if err != nil {
			c.err = err
			return false
		}
		if c.idx < len(n.keys) {
			c.key = append(c.key[:0], n.keys[c.idx]...)
			v, err := c.t.leafValue(n, c.idx)
			if err != nil {
				c.err = err
				return false
			}
			c.val = v
			return true
		}
		if n.next == invalidPage {
			c.done = true
			return false
		}
		c.leaf = n.next
		c.idx = 0
	}
}

// Key returns the current key. The slice is reused by Next; copy to retain.
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current value. The caller owns the slice.
func (c *Cursor) Value() []byte { return c.val }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Prefix reports whether the current key starts with p; handy for
// vocabulary-prefix scans over the inverted file.
func (c *Cursor) Prefix(p []byte) bool { return bytes.HasPrefix(c.key, p) }
