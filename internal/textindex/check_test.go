package textindex

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestCheckCleanTree(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 3000; i++ {
		mustPut(t, tr, fmt.Sprintf("key-%05d", i), fmt.Sprintf("v%d", i))
	}
	rep, err := tr.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Keys != 3000 {
		t.Errorf("Keys = %d", rep.Keys)
	}
	if rep.Height < 2 || rep.LeafPages < 2 || rep.InnerPages < 1 {
		t.Errorf("implausible shape: %+v", rep)
	}
}

func TestCheckAfterRandomWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chk.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetCacheCapacity(8)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 4000; i++ {
		k := []byte(fmt.Sprintf("k%04d", rng.Intn(1500)))
		switch rng.Intn(5) {
		case 0:
			if _, err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
		default:
			var v []byte
			if rng.Intn(25) == 0 {
				v = bytes.Repeat([]byte{byte(rng.Intn(256))}, 3000+rng.Intn(6000))
			} else {
				v = []byte(fmt.Sprintf("v%d", rng.Int63()))
			}
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := tr.Check()
	if err != nil {
		t.Fatalf("Check after workload: %v", err)
	}
	if rep.Keys != tr.Len() {
		t.Errorf("report keys %d, tree claims %d", rep.Keys, tr.Len())
	}
}

func TestCheckDetectsTamperedPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tamper.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Swap two keys inside a leaf by writing a doctored node image.
	var leaf *node
	for id := pageID(1); id < tr.pageCount; id++ {
		n, err := tr.getNode(id)
		if err != nil {
			continue
		}
		if n.typ == pageLeaf && len(n.keys) >= 2 {
			leaf = n
			break
		}
	}
	if leaf == nil {
		t.Fatal("no leaf found")
	}
	leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
	leaf.dirty = true
	if err := tr.writeNode(leaf); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Check(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Check on tampered tree = %v, want ErrCorrupt", err)
	}
	tr.f.Close()
}

func TestCheckCountsFreePages(t *testing.T) {
	tr := newTree(t)
	big := bytes.Repeat([]byte("x"), 20000)
	mustPut(t, tr, "big", string(big))
	if _, err := tr.Delete([]byte("big")); err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FreePages == 0 {
		t.Error("freed overflow pages not reported")
	}
	s, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FreePages != s.FreePages {
		t.Errorf("Check free pages %d, stats %d", rep.FreePages, s.FreePages)
	}
}

func TestCheckClosedTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.kbpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := tr.Check(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Check on closed tree = %v", err)
	}
}
