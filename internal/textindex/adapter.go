package textindex

import (
	"sync"

	"kor/internal/graph"
)

// GraphIndex adapts an InvertedFile to graph.PostingSource so the route
// search algorithms can run against the disk-resident index. Postings read
// from disk are memoized: the search algorithms hit the same few query terms
// repeatedly, and the paper's complexity analysis assumes those lookups are
// cheap after the first fetch.
//
// A GraphIndex is safe for concurrent use. The underlying B+-tree mutates
// its page cache even on reads, so every descent to the file happens under
// an exclusive lock; memoized postings are served under a read lock, which
// is the steady-state path once a term has been fetched once.
type GraphIndex struct {
	file  *InvertedFile
	vocab *graph.Vocabulary

	mu   sync.RWMutex
	memo map[graph.Term][]graph.NodeID
}

// NewGraphIndex wraps file, translating graph Terms through vocab.
func NewGraphIndex(file *InvertedFile, vocab *graph.Vocabulary) *GraphIndex {
	return &GraphIndex{file: file, vocab: vocab, memo: make(map[graph.Term][]graph.NodeID)}
}

// BuildForGraph writes the inverted file for g at path and returns the
// adapter over it.
func BuildForGraph(path string, g *graph.Graph) (*GraphIndex, error) {
	file, err := CreateInverted(path)
	if err != nil {
		return nil, err
	}
	postings := make(map[graph.Term][]uint32)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, t := range g.Terms(v) {
			postings[t] = append(postings[t], uint32(v))
		}
	}
	for t, docs := range postings {
		if err := file.PutPostings(g.Vocab().Name(t), docs); err != nil {
			file.Close()
			return nil, err
		}
	}
	if err := file.Flush(); err != nil {
		file.Close()
		return nil, err
	}
	return NewGraphIndex(file, g.Vocab()), nil
}

// Postings returns the sorted node IDs carrying term t.
func (gi *GraphIndex) Postings(t graph.Term) []graph.NodeID {
	gi.mu.RLock()
	docs, ok := gi.memo[t]
	gi.mu.RUnlock()
	if ok {
		return docs
	}
	gi.mu.Lock()
	defer gi.mu.Unlock()
	if docs, ok := gi.memo[t]; ok { // lost the fetch race: reuse the winner's
		return docs
	}
	name := gi.vocab.Name(t)
	var out []graph.NodeID
	if name != "" {
		raw, err := gi.file.Postings(name)
		if err != nil {
			// Don't memoize a failed read: a transient I/O error must not
			// poison the term with an empty posting list for the process
			// lifetime. The next lookup retries the disk.
			return nil
		}
		out = make([]graph.NodeID, len(raw))
		for i, d := range raw {
			out[i] = graph.NodeID(d)
		}
	}
	gi.memo[t] = out
	return out
}

// DocFrequency returns the number of nodes carrying term t.
func (gi *GraphIndex) DocFrequency(t graph.Term) int { return len(gi.Postings(t)) }

// Suggest forwards a prefix scan to the inverted file. The scan walks the
// B+-tree, so it takes the exclusive lock.
func (gi *GraphIndex) Suggest(prefix string, limit int) ([]TermCount, error) {
	gi.mu.Lock()
	defer gi.mu.Unlock()
	return gi.file.SuggestTerms(prefix, limit)
}

// Close closes the underlying inverted file.
func (gi *GraphIndex) Close() error {
	gi.mu.Lock()
	defer gi.mu.Unlock()
	return gi.file.Close()
}
