package textindex

// SuggestTerms returns up to limit vocabulary terms starting with prefix,
// in ascending order, each with its document frequency — the autocomplete
// primitive a route-search box needs. It is a bounded range scan over the
// B+-tree's leaf chain.
func (f *InvertedFile) SuggestTerms(prefix string, limit int) ([]TermCount, error) {
	if limit <= 0 {
		limit = 10
	}
	c, err := f.tree.Seek([]byte(prefix))
	if err != nil {
		return nil, err
	}
	var out []TermCount
	for len(out) < limit && c.Next() {
		if !c.Prefix([]byte(prefix)) {
			break
		}
		docs, err := decodePostings(c.Value())
		if err != nil {
			return nil, err
		}
		out = append(out, TermCount{Term: string(c.Key()), Count: len(docs)})
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TermCount pairs a vocabulary term with its document frequency.
type TermCount struct {
	Term  string
	Count int
}
