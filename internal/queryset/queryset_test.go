package queryset

import (
	"testing"

	"kor/internal/gen"
	"kor/internal/graph"
)

func testGraph(t *testing.T) (*graph.Graph, *graph.MemIndex) {
	t.Helper()
	g := gen.RoadNetwork(gen.RoadConfig{Seed: 4, Nodes: 300, VocabSize: 80})
	return g, graph.NewMemIndex(g)
}

func TestGenerateShape(t *testing.T) {
	g, idx := testGraph(t)
	qs := Generate(g, idx, Spec{Seed: 1, Count: 40, Keywords: 4, Budget: 12})
	if len(qs) != 40 {
		t.Fatalf("got %d queries, want 40", len(qs))
	}
	for i, q := range qs {
		if q.Source == q.Target {
			t.Errorf("query %d: source == target", i)
		}
		if !g.Valid(q.Source) || !g.Valid(q.Target) {
			t.Errorf("query %d: endpoints out of range", i)
		}
		if len(q.Keywords) != 4 {
			t.Errorf("query %d: %d keywords", i, len(q.Keywords))
		}
		seen := make(map[graph.Term]bool)
		for _, kw := range q.Keywords {
			if seen[kw] {
				t.Errorf("query %d: duplicate keyword", i)
			}
			seen[kw] = true
			if idx.DocFrequency(kw) == 0 {
				t.Errorf("query %d: keyword %d has no postings", i, kw)
			}
		}
		if q.Budget != 12 {
			t.Errorf("query %d: budget %v", i, q.Budget)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g, idx := testGraph(t)
	spec := Spec{Seed: 42, Count: 10, Keywords: 3, Budget: 9}
	a := Generate(g, idx, spec)
	b := Generate(g, idx, spec)
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Target != b[i].Target {
			t.Fatalf("query %d differs between identical seeds", i)
		}
		for j := range a[i].Keywords {
			if a[i].Keywords[j] != b[i].Keywords[j] {
				t.Fatalf("query %d keyword %d differs", i, j)
			}
		}
	}
	c := Generate(g, idx, Spec{Seed: 43, Count: 10, Keywords: 3, Budget: 9})
	different := false
	for i := range a {
		if a[i].Source != c[i].Source || a[i].Target != c[i].Target {
			different = true
		}
	}
	if !different {
		t.Error("different seeds produced identical query sets")
	}
}

func TestGenerateFavorsFrequentKeywords(t *testing.T) {
	g, idx := testGraph(t)
	counts := make(map[graph.Term]int)
	for _, q := range Generate(g, idx, Spec{Seed: 7, Count: 200, Keywords: 2, Budget: 10}) {
		for _, kw := range q.Keywords {
			counts[kw]++
		}
	}
	// The most frequent keyword in the data should be asked for far more
	// often than a random rare one. Find max-df and min-df sampled terms.
	var popular graph.Term
	bestDF := -1
	for t := graph.Term(0); int(t) < g.Vocab().Len(); t++ {
		if df := idx.DocFrequency(t); df > bestDF {
			bestDF = df
			popular = t
		}
	}
	if counts[popular] == 0 {
		t.Errorf("most frequent keyword (df=%d) never sampled in 400 draws", bestDF)
	}
}

func TestGenerateDegenerateInputs(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode() // single node, no keywords
	g := b.MustBuild()
	if qs := Generate(g, graph.NewMemIndex(g), Spec{Seed: 1, Count: 5, Keywords: 2, Budget: 5}); len(qs) != 0 {
		t.Errorf("degenerate graph produced %d queries", len(qs))
	}

	// Vocabulary smaller than m: generator must stop rather than spin.
	b2 := graph.NewBuilder()
	v0 := b2.AddNode("only")
	v1 := b2.AddNode("only")
	if err := b2.AddEdge(v0, v1, 1, 1); err != nil {
		t.Fatal(err)
	}
	g2 := b2.MustBuild()
	qs := Generate(g2, graph.NewMemIndex(g2), Spec{Seed: 1, Count: 5, Keywords: 3, Budget: 5})
	if len(qs) != 0 {
		t.Errorf("impossible keyword count produced %d queries", len(qs))
	}
}
