// Package queryset generates the query workloads of the paper's evaluation
// (§4.1): sets of KOR queries with a fixed keyword count, random start and
// end locations, and a per-experiment budget limit. The paper uses five
// sets of 50 queries with 2–10 keywords per dataset.
package queryset

import (
	"math/rand"
	"sort"

	"kor/internal/core"
	"kor/internal/graph"
)

// Spec describes one query set.
type Spec struct {
	Seed int64
	// Count is the number of queries (the paper uses 50 per set).
	Count int
	// Keywords is the number of query keywords m.
	Keywords int
	// Budget is the budget limit Δ applied to every query.
	Budget float64
	// MinDocFreq drops candidate keywords carried by fewer nodes (default
	// 1: any keyword in use).
	MinDocFreq int
	// MaxCrowKm, when positive and the graph carries coordinates, bounds
	// the straight-line distance between the endpoints. The experiment
	// harness sets it to a fraction of Δ so that a useful share of queries
	// stays feasible on the scaled-down datasets (see EXPERIMENTS.md).
	MaxCrowKm float64
	// PlanarCoords declares node positions to be kilometre-plane
	// coordinates (the road networks) rather than lon/lat degrees (the
	// Flickr-like city); it selects the distance measure for MaxCrowKm.
	PlanarCoords bool
	// TopTermFraction restricts the keyword pool to the most frequent
	// fraction of eligible terms (0 < f ≤ 1, default 1). Map-search
	// keywords are overwhelmingly common category words ("restaurant",
	// "museum"); the harness uses 0.25 to mirror that.
	TopTermFraction float64
}

// Generate builds the query set. Keywords are sampled in proportion to
// their document frequency — queries ask for the kinds of places the data
// actually has, as search logs do — and endpoints are uniform distinct
// nodes. Generation is deterministic in the seed.
func Generate(g *graph.Graph, index graph.PostingSource, spec Spec) []core.Query {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Count <= 0 {
		spec.Count = 50
	}
	if spec.MinDocFreq <= 0 {
		spec.MinDocFreq = 1
	}

	// Weighted keyword pool.
	type termWeight struct {
		term graph.Term
		df   int
	}
	var pool []termWeight
	for t := graph.Term(0); int(t) < g.Vocab().Len(); t++ {
		df := index.DocFrequency(t)
		if df >= spec.MinDocFreq {
			pool = append(pool, termWeight{t, df})
		}
	}
	if len(pool) == 0 || g.NumNodes() < 2 {
		return nil
	}
	if spec.TopTermFraction > 0 && spec.TopTermFraction < 1 {
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].df != pool[j].df {
				return pool[i].df > pool[j].df
			}
			return pool[i].term < pool[j].term
		})
		keep := int(spec.TopTermFraction * float64(len(pool)))
		if keep < spec.Keywords {
			keep = spec.Keywords
		}
		if keep < len(pool) {
			pool = pool[:keep]
		}
	}
	total := 0
	for _, tw := range pool {
		total += tw.df
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].term < pool[j].term })

	pickTerm := func() graph.Term {
		x := rng.Intn(total)
		for _, tw := range pool {
			x -= tw.df
			if x < 0 {
				return tw.term
			}
		}
		return pool[len(pool)-1].term
	}

	queries := make([]core.Query, 0, spec.Count)
	attemptsLeft := 400 * spec.Count
	for len(queries) < spec.Count && attemptsLeft > 0 {
		attemptsLeft--
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		if spec.MaxCrowKm > 0 && g.HasPositions() {
			var crow float64
			if spec.PlanarCoords {
				crow = g.Position(src).Euclidean(g.Position(dst))
			} else {
				crow = g.Position(src).CityDistanceKm(g.Position(dst))
			}
			if crow > spec.MaxCrowKm {
				continue
			}
		}
		kws := make([]graph.Term, 0, spec.Keywords)
		seen := make(map[graph.Term]bool)
		attempts := 0
		for len(kws) < spec.Keywords && attempts < 1000 {
			attempts++
			t := pickTerm()
			if !seen[t] {
				seen[t] = true
				kws = append(kws, t)
			}
		}
		if len(kws) < spec.Keywords {
			break // vocabulary too small for m distinct keywords
		}
		queries = append(queries, core.Query{Source: src, Target: dst, Keywords: kws, Budget: spec.Budget})
	}
	return queries
}
