package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	g := r.Gauge("test_depth", "Current depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Dec()

	out := expose(t, r)
	for _, want := range []string{
		"# HELP test_events_total Events seen.",
		"# TYPE test_events_total counter",
		"test_events_total 5",
		"# TYPE test_depth gauge",
		"test_depth 6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is exposition order.
	if strings.Index(out, "test_events_total") > strings.Index(out, "test_depth") {
		t.Error("families not in registration order")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests.", "algorithm", "outcome")
	v.With("greedy", "ok").Add(3)
	v.With("exact", "no_route").Inc()
	v.With("greedy", "ok").Inc() // same child again

	out := expose(t, r)
	if !strings.Contains(out, `test_requests_total{algorithm="greedy",outcome="ok"} 4`+"\n") {
		t.Errorf("missing greedy/ok sample:\n%s", out)
	}
	if !strings.Contains(out, `test_requests_total{algorithm="exact",outcome="no_route"} 1`+"\n") {
		t.Errorf("missing exact/no_route sample:\n%s", out)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "t.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup", "second")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}

	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}

	out := expose(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 2`, // 0.05 and the le-inclusive 0.1
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 102.65`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Quantiles interpolate within buckets; the overflow bucket clamps to the
	// last finite bound.
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Errorf("p50 = %v, want within (0.1, 1]", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %v, want clamped to 10", q)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_lat_seconds", "Latency.", []float64{1}, "algorithm")
	v.With("greedy").Observe(0.5)
	v.With("greedy").Observe(2)

	out := expose(t, r)
	for _, want := range []string{
		`test_lat_seconds_bucket{algorithm="greedy",le="1"} 1`,
		`test_lat_seconds_bucket{algorithm="greedy",le="+Inf"} 2`,
		`test_lat_seconds_count{algorithm="greedy"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("test_fn_gauge", "Sampled.", func() float64 { n++; return n })
	r.CounterFunc("test_fn_total", "Sampled count.", func() float64 { return 9 })

	out := expose(t, r)
	if !strings.Contains(out, "test_fn_gauge 42\n") {
		t.Errorf("gauge func not sampled:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_total 9\n") {
		t.Errorf("counter func not sampled:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", "t.", "path")
	v.With(`a"b\c` + "\n").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `test_esc_total{path="a\"b\\c\n"} 1`+"\n") {
		t.Errorf("label not escaped:\n%s", out)
	}
}

// TestConcurrentObserve hammers every metric kind from many goroutines; run
// with -race this pins the atomic cells and the child map lock.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h_seconds", "h", nil)
	v := r.CounterVec("test_v_total", "v", "w")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%3))
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				v.With(lbl).Inc()
			}
		}(w)
	}
	// Concurrent exposition must not race with writers.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %d, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	sum := uint64(0)
	for _, lbl := range []string{"a", "b", "c"} {
		sum += v.With(lbl).Value()
	}
	if sum != 8000 {
		t.Errorf("vec total = %d, want 8000", sum)
	}
}
