// Package metrics is a dependency-free instrumentation kernel: counters,
// gauges and histograms backed by atomic cells, grouped in a Registry that
// renders the Prometheus text exposition format (version 0.0.4). It exists
// so korserve can answer GET /metrics — and the engine can count its work —
// without pulling the Prometheus client library into the module.
//
// The design is deliberately small:
//
//   - Counter / Gauge are single atomic cells; CounterVec / GaugeVec /
//     HistogramVec key children by their label values — a With lookup takes
//     a shared (read) lock plus one small key allocation, and creation of a
//     new label combination takes the write lock once. Callers on very hot
//     paths with fixed labels can cache the child returned by With.
//   - Histogram observations touch two atomic adds and one CAS loop for the
//     float sum — cheap enough to sit on a query hot path.
//   - CounterFunc / GaugeFunc sample a callback at exposition time, for
//     values something else already maintains (cache counters, snapshot
//     generation, channel depths).
//
// Registration order is exposition order, so /metrics output is stable and
// diffable. Registering the same name twice panics: metric names are code,
// not data.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets for request latencies in
// seconds, following the Prometheus client convention: half a millisecond up
// to ten seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; negative deltas are a Gauge's job.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// semantics match Prometheus: counts are exposed cumulatively with
// less-than-or-equal upper bounds plus a +Inf overflow bucket, alongside the
// total sum and count.
type Histogram struct {
	upper  []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(upper)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	// Drop a trailing +Inf if the caller supplied one; the overflow bucket is
	// implicit.
	for len(upper) > 0 && math.IsInf(upper[len(upper)-1], 1) {
		upper = upper[:len(upper)-1]
	}
	if len(upper) == 0 {
		panic("metrics: histogram needs at least one finite bucket")
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v: the le= semantics.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of quantile q in [0,1], interpolated within
// the owning bucket (the upper bound for the overflow bucket). It exists for
// tests and in-process consumers; scrape-side systems compute quantiles from
// the exposed buckets.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if seen+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			if i == len(h.upper) {
				return lo // overflow bucket: the last finite bound is the floor
			}
			hi := h.upper[i]
			if n == 0 {
				return hi
			}
			frac := float64(rank-seen) / float64(n)
			return lo + (hi-lo)*frac
		}
		seen += n
	}
	return h.upper[len(h.upper)-1]
}

// observer is anything a vec family can hold as a child.
type observer interface{ unexported() }

func (*Counter) unexported()   {}
func (*Gauge) unexported()     {}
func (*Histogram) unexported() {}

// family is one named metric: a single cell, a labeled set of children, or a
// sampling callback.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	single observer       // label-less families
	fn     func() float64 // CounterFunc / GaugeFunc

	mu       sync.RWMutex
	children map[string]observer
	order    []string // child keys in first-use order

	buckets []float64 // histogram families
}

// child returns the observer for the given label values, creating it on
// first use.
func (f *family) child(values []string) observer {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	// Fast path: the label combination already exists — shared lock only.
	f.mu.RLock()
	o, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return o
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if o, ok := f.children[key]; ok {
		return o
	}
	switch f.typ {
	case "counter":
		o = &Counter{}
	case "gauge":
		o = &Gauge{}
	case "histogram":
		o = newHistogram(f.buckets)
	}
	f.children[key] = o
	f.order = append(f.order, key)
	return o
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds a set of metric families and renders them in the
// Prometheus text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("metrics: duplicate metric name " + f.name)
	}
	r.names[f.name] = true
	r.fams = append(r.fams, f)
}

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", single: c})
	return c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: "counter", labels: labels, children: make(map[string]observer)}
	r.register(f)
	return &CounterVec{f}
}

// Gauge registers and returns a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", single: g})
	return g
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: "gauge", labels: labels, children: make(map[string]observer)}
	r.register(f)
	return &GaugeVec{f}
}

// GaugeFunc registers a gauge sampled from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// CounterFunc registers a counter sampled from fn at exposition time; fn
// must be monotonically non-decreasing (it reports a count something else
// maintains).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", fn: fn})
}

// Histogram registers and returns a label-less histogram with the given
// bucket upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: "histogram", single: h, buckets: buckets})
	return h
}

// HistogramVec registers a histogram family with the given buckets (nil uses
// DefBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := &family{name: name, help: help, typ: "histogram", labels: labels, children: make(map[string]observer), buckets: buckets}
	r.register(f)
	return &HistogramVec{f}
}

// WritePrometheus renders every registered family in the text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.fn != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fn()))
		case f.single != nil:
			writeSample(bw, f, nil, f.single)
		default:
			f.mu.RLock()
			keys := make([]string, len(f.order))
			copy(keys, f.order)
			children := make([]observer, len(keys))
			for i, k := range keys {
				children[i] = f.children[k]
			}
			f.mu.RUnlock()
			for i, key := range keys {
				writeSample(bw, f, strings.Split(key, "\x00"), children[i])
			}
		}
	}
	return bw.Flush()
}

// writeSample renders one child's sample lines.
func writeSample(bw *bufio.Writer, f *family, values []string, o observer) {
	switch m := o.(type) {
	case *Counter:
		fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
	case *Gauge:
		fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
	case *Histogram:
		cum := uint64(0)
		for i := range m.counts {
			cum += m.counts[i].Load()
			le := "+Inf"
			if i < len(m.upper) {
				le = formatFloat(m.upper[i])
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", le), cum)
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(m.Sum()))
		fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Count())
	}
}

// labelString renders {k1="v1",k2="v2"} with an optional extra pair (the
// histogram le label); empty when there are no pairs at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip form, infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
