package stats

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P95 != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

// Property: Min ≤ P50 ≤ P95 ≤ Max and Mean within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes sane so Sum cannot overflow — overflow is
				// a float limitation, not a Summarize property.
				xs = append(xs, math.Mod(x, 1e12))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50+1e-9 && s.P50 <= s.P95+1e-9 && s.P95 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	s := Summarize(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.P50 != sorted[50] {
		t.Errorf("P50 = %v, sorted median %v", s.P50, sorted[50])
	}
	if s.P95 != sorted[95] {
		t.Errorf("P95 = %v, sorted %v", s.P95, sorted[95])
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Figure 4: runtime vs keywords",
		Columns: []string{"m", "OSScaling", "BucketBound"},
		Note:    "Flickr-like dataset",
	}
	tbl.AddRow(2, 15.5, 1.75)
	tbl.AddRow(10, 10600.0, 910.0)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "OSScaling", "10600", "note: Flickr-like"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, two rows, note
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Columns: []string{"name", "value"}}
	tbl.AddRow(`quo"ted`, 1.5)
	tbl.AddRow("with,comma", 2)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"quo\"\"ted\",1.500\n\"with,comma\",2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234.56: "1234.6",
		3.14159: "3.142",
		0.0421:  "0.0421",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("FormatFloat(Inf) = %q", got)
	}
}
