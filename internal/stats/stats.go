// Package stats provides the small aggregation and table-rendering layer
// the experiment harness reports through.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	Sum  float64
}

// Summarize computes the summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// quantile returns the q-quantile of a sorted sample by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a titled grid of cells rendered as aligned text or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Note is free text printed under the table (workload description,
	// paper-series reference, and so on).
	Note string
}

// AddRow appends one row, stringifying the cells with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to compare.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%v", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
