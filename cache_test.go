package kor

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// Tests for the engine's result cache (EngineConfig.CacheSize): correctness
// of hits, immutability of cached routes against caller mutation, counter
// consistency under concurrency (run with -race), and key sensitivity.

func cacheTestGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("hotel")          // 0
	b.AddNode("cafe", "jazz")   // 1
	b.AddNode("park")           // 2
	b.AddNode("museum", "jazz") // 3
	edges := []struct {
		from, to NodeID
		o, c     float64
	}{
		{0, 1, 0.7, 1.2}, {1, 2, 0.3, 0.8}, {2, 0, 0.5, 1.0},
		{0, 3, 0.9, 0.9}, {3, 2, 0.4, 1.1}, {2, 3, 0.4, 1.1},
		{1, 3, 0.6, 0.7}, {3, 1, 0.6, 0.7},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func cachedEngine(t testing.TB, size int) *Engine {
	t.Helper()
	eng, err := NewEngine(cacheTestGraph(t), &EngineConfig{CacheSize: size})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func TestCacheHitReturnsSameAnswer(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}

	first, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first.Cached {
		t.Fatal("first run reported a cache hit")
	}
	second, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run (second): %v", err)
	}
	if !second.Cached {
		t.Fatal("second identical run missed the cache")
	}
	if second.Best().Objective != first.Best().Objective ||
		second.Best().Budget != first.Best().Budget ||
		len(second.Best().Nodes) != len(first.Best().Nodes) {
		t.Fatalf("cached response differs: %v vs %v", second.Best(), first.Best())
	}
	st, ok := eng.CacheStats()
	if !ok {
		t.Fatal("CacheStats reported disabled")
	}
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 size=1", st)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	eng, err := NewEngine(cacheTestGraph(t), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, ok := eng.CacheStats(); ok {
		t.Fatal("cache enabled without CacheSize")
	}
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	for i := 0; i < 2; i++ {
		resp, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if resp.Cached {
			t.Fatal("Cached set on an uncached engine")
		}
	}
}

// TestCachedRoutesImmune: a caller scribbling over a returned route must not
// corrupt what later callers receive.
func TestCachedRoutesImmune(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}

	reference, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantNodes := append([]NodeID(nil), reference.Best().Nodes...)

	// Vandalize both a miss-produced and a hit-produced response.
	for i := 0; i < 2; i++ {
		resp, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for j := range resp.Routes {
			for k := range resp.Routes[j].Nodes {
				resp.Routes[j].Nodes[k] = -1
			}
			resp.Routes[j].Objective = math.NaN()
		}
	}

	final, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !final.Cached {
		t.Fatal("expected a cache hit")
	}
	got := final.Best().Nodes
	if len(got) != len(wantNodes) {
		t.Fatalf("cached route corrupted: %v, want %v", got, wantNodes)
	}
	for i := range got {
		if got[i] != wantNodes[i] {
			t.Fatalf("cached route corrupted: %v, want %v", got, wantNodes)
		}
	}
}

func TestCacheKeyDistinguishesRequests(t *testing.T) {
	eng := cachedEngine(t, 64)
	base := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	if _, err := eng.Run(context.Background(), base); err != nil {
		t.Fatalf("Run: %v", err)
	}

	epsOpts := DefaultOptions()
	epsOpts.Epsilon = 0.25
	variants := []Request{
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 7},         // budget differs
		{From: 0, To: 2, Keywords: []string{"jazz", "park"}, Budget: 6}, // keywords differ
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6, K: 2},   // k differs
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6, // algorithm differs
			Algorithm: AlgorithmOSScaling},
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6, Options: &epsOpts}, // options differ
	}
	for i, v := range variants {
		resp, err := eng.Run(context.Background(), v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if resp.Cached {
			t.Fatalf("variant %d wrongly hit the cache", i)
		}
	}
}

// TestCacheHitRespectsCancelledContext: a dead context must fail exactly as
// it does on the search path — a warm cache entry must not outrank
// cancellation.
func TestCacheHitRespectsCancelledContext(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatalf("warm: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cached run with cancelled ctx: err=%v, want context.Canceled", err)
	}
}

// TestCacheNegativeResult: a proven-infeasible query (ErrNoRoute) is as
// expensive as a found route and just as deterministic, so it must be
// cached — the second identical run answers from the cache, still carrying
// ErrNoRoute.
func TestCacheNegativeResult(t *testing.T) {
	eng := cachedEngine(t, 64)
	// Budget 0.1 is below every edge budget: provably no feasible route.
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 0.1}

	first, err := eng.Run(context.Background(), req)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("first err = %v, want ErrNoRoute", err)
	}
	if first.Cached {
		t.Fatal("first run reported a cache hit")
	}
	second, err := eng.Run(context.Background(), req)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("cached err = %v, want ErrNoRoute", err)
	}
	if !second.Cached {
		t.Fatal("repeated infeasible query paid a full search (negative result not cached)")
	}
	if len(second.Routes) != 0 {
		t.Fatalf("negative hit carries routes: %v", second.Routes)
	}
	st, _ := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 size=1", st)
	}
}

// TestCacheNegativeRespectsCancelledContext: a warm negative entry must not
// outrank cancellation — the dead-context path behaves exactly as a search
// would.
func TestCacheNegativeRespectsCancelledContext(t *testing.T) {
	eng := cachedEngine(t, 64)
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 0.1}
	if _, err := eng.Run(context.Background(), req); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("warm err = %v, want ErrNoRoute", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Run(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrNoRoute) {
		t.Fatal("cancelled run leaked the cached ErrNoRoute")
	}
}

// TestCacheBudgetExceededResult: a greedy overshoot (routes plus
// ErrBudgetExceeded) is deterministic and is cached like any definitive
// outcome; the hit replays both the routes and the sentinel.
func TestCacheBudgetExceededResult(t *testing.T) {
	eng := cachedEngine(t, 64)
	// The only jazz route 0→1→2 costs budget 2.0 > 1: greedy overshoots.
	req := Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 1, Algorithm: AlgorithmGreedy}

	first, err := eng.Run(context.Background(), req)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("first err = %v, want ErrBudgetExceeded", err)
	}
	if first.Cached || len(first.Routes) == 0 {
		t.Fatalf("first run = cached %v routes %d", first.Cached, len(first.Routes))
	}
	second, err := eng.Run(context.Background(), req)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("cached err = %v, want ErrBudgetExceeded", err)
	}
	if !second.Cached {
		t.Fatal("repeated overshoot query paid a full search")
	}
	if len(second.Routes) != len(first.Routes) || second.Best().Budget != first.Best().Budget {
		t.Fatalf("cached overshoot differs: %+v vs %+v", second.Routes, first.Routes)
	}
}

// TestCacheSkipsNonDefinitiveErrors: a search cut short (ErrSearchLimit
// here, context errors likewise) proved nothing and must not poison the
// cache with a false negative.
func TestCacheSkipsNonDefinitiveErrors(t *testing.T) {
	eng := cachedEngine(t, 64)
	opts := DefaultOptions()
	opts.MaxExpansions = 1
	req := Request{From: 0, To: 2, Keywords: []string{"jazz", "park"}, Budget: 6, Options: &opts}
	if _, err := eng.Run(context.Background(), req); !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("err = %v, want ErrSearchLimit", err)
	}
	resp, err := eng.Run(context.Background(), req)
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("second err = %v, want ErrSearchLimit", err)
	}
	if resp.Cached {
		t.Fatal("non-definitive failure was served from the cache")
	}
	st, _ := eng.CacheStats()
	if st.Size != 0 {
		t.Fatalf("cache size = %d, want 0 (nothing definitive happened)", st.Size)
	}
}

// TestCacheConcurrentConsistency hammers one engine from many goroutines
// with overlapping identical and distinct requests; run under -race. After
// the dust settles, hit+miss must equal the number of cacheable lookups and
// every response must carry the right answer for its request.
func TestCacheConcurrentConsistency(t *testing.T) {
	eng := cachedEngine(t, 256)
	requests := []Request{
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6},
		{From: 0, To: 2, Keywords: []string{"park"}, Budget: 6},
		{From: 1, To: 3, Keywords: []string{"jazz"}, Budget: 6},
		{From: 0, To: 0, Keywords: []string{"jazz", "park"}, Budget: 8},
	}
	// Reference answers, computed serially first (also warms every key, so
	// the parallel phase is all hits).
	want := make([]float64, len(requests))
	for i, req := range requests {
		resp, err := eng.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
		want[i] = resp.Best().Objective
	}
	warm, _ := eng.CacheStats()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := (w + i) % len(requests)
				resp, err := eng.Run(context.Background(), requests[idx])
				if err != nil {
					errs <- err
					return
				}
				if resp.Best().Objective != want[idx] {
					t.Errorf("request %d: objective %v, want %v", idx, resp.Best().Objective, want[idx])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent run: %v", err)
	}

	st, _ := eng.CacheStats()
	lookups := st.Hits + st.Misses - warm.Hits - warm.Misses
	if lookups != workers*iters {
		t.Fatalf("lookup accounting: %d, want %d", lookups, workers*iters)
	}
	if st.Hits-warm.Hits != workers*iters {
		t.Fatalf("warmed keys should all hit: hits=%d misses=%d (after warm %d/%d)",
			st.Hits, st.Misses, warm.Hits, warm.Misses)
	}
}
