package kor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kor/internal/core"
)

// Algorithm names one of the engine's search algorithms. The zero value
// selects the default, BucketBound. Algorithm values are also the wire
// spellings korserve and korapi accept.
type Algorithm = core.Algorithm

// The registered algorithms, re-exported from the core registry.
const (
	// AlgorithmDefault resolves to AlgorithmBucketBound.
	AlgorithmDefault = core.AlgorithmDefault
	// AlgorithmBucketBound is the §3.3 bucket label search, bound β/(1−ε).
	AlgorithmBucketBound = core.AlgorithmBucketBound
	// AlgorithmOSScaling is the §3.2 scaled label search, bound 1/(1−ε).
	AlgorithmOSScaling = core.AlgorithmOSScaling
	// AlgorithmGreedy is the §3.4 beam-greedy heuristic, no guarantee.
	AlgorithmGreedy = core.AlgorithmGreedy
	// AlgorithmTopK is the §3.5 KkR extension returning the K best routes.
	AlgorithmTopK = core.AlgorithmTopK
	// AlgorithmExact is the exact branch-and-bound.
	AlgorithmExact = core.AlgorithmExact
	// AlgorithmBruteForce is the exhaustive baseline for validation.
	AlgorithmBruteForce = core.AlgorithmBruteForce
)

// ParseAlgorithm resolves a wire spelling to its Algorithm, or an
// ErrBadQuery-wrapped error naming the valid choices.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Algorithms lists the registered algorithms in a stable order.
func Algorithms() []Algorithm { return core.Algorithms() }

// Request is a self-describing KOR query: the endpoints, keywords and budget
// of Definition 4, plus which algorithm to run and how to tune it. It is the
// input to Engine.Run, the engine's single entry point, and the in-process
// twin of the korapi wire request.
type Request struct {
	// From and To are the route endpoints; equal for a round trip.
	From NodeID
	To   NodeID
	// Keywords are the keyword strings the route must cover.
	Keywords []string
	// Budget is the budget limit Δ.
	Budget float64
	// Algorithm selects the search algorithm; the zero value means
	// BucketBound, the paper's recommended speed/quality trade-off.
	Algorithm Algorithm
	// K, when non-zero, overrides Options.K: ask for the K best distinct
	// routes (the KkR query) instead of just the best one. Negative values
	// are rejected by Options.Validate.
	K int
	// Options overrides the tuning parameters; nil means DefaultOptions.
	// The options are validated (Options.Validate) before any search work.
	Options *Options
}

// Response is what Engine.Run returns: the routes found plus enough
// metadata to interpret them — which algorithm actually ran, what
// approximation guarantee it carried, and what the search cost.
type Response struct {
	// Routes holds the routes found, best objective first. Plain queries
	// yield one; top-k queries yield up to K.
	Routes []Route
	// Algorithm is the canonical algorithm that ran (never empty: the
	// default is resolved before dispatch).
	Algorithm Algorithm
	// Bound is the approximation factor the algorithm guarantees on the
	// objective score under the request's options: 1 for the exact
	// algorithms, 1/(1−ε) or β/(1−ε) for the label algorithms, 0 for the
	// greedy heuristic (no guarantee).
	Bound float64
	// Metrics counts the work the search performed. For a cached response
	// they are the counters of the search that originally produced it.
	Metrics Metrics
	// Elapsed is the search wall time, measured inside Run. For a cached
	// response it is the (tiny) lookup time, not the original search time.
	Elapsed time.Duration
	// Cached reports that the response was served from the engine's result
	// cache (EngineConfig.CacheSize) without running a search.
	Cached bool
	// Coalesced reports that the response was shared from a search another
	// request performed — this request joined an identical in-flight Run as a
	// single-flight follower, or was a duplicate inside a SearchBatch — so no
	// search ran for it. Metrics are the counters of the search that produced
	// the shared answer.
	Coalesced bool
	// Snapshot identifies the graph snapshot the response was computed
	// against. Under live updates (Engine.Swap, Engine.Patch) this is how a
	// caller — or a test — ties an answer to the exact graph version that
	// produced it.
	Snapshot SnapshotInfo

	// graph pins the snapshot's graph so Graph() can resolve the route's
	// node IDs even after the engine swapped to a different (possibly
	// smaller) graph.
	graph *Graph
}

// Graph returns the graph the response was computed against — the right
// graph for resolving the routes' node IDs, names and positions. Under live
// updates Engine.Graph() may already point at a different (even smaller)
// graph than the one that produced an in-flight response; rendering with
// that one would mislabel or out-of-range the route nodes. Nil on a zero
// Response.
func (r Response) Graph() *Graph { return r.graph }

// Best returns the first (best) route. It panics if the response is empty;
// call only after a nil-error Run.
func (r Response) Best() Route { return r.Routes[0] }

// Run answers the request: it validates the options, resolves the keywords
// against the graph's vocabulary, dispatches to the requested algorithm
// through the core registry, and annotates the result with the algorithm's
// approximation bound and the wall time.
//
// Errors follow the package's sentinel scheme: ErrBadQuery wraps for an
// unknown algorithm or out-of-domain options, ErrUnknownKeyword for a
// keyword absent from the vocabulary, ErrNoRoute when no feasible route
// exists, and a wrapped context error when ctx fires mid-search. Like the
// greedy method it replaces, a Greedy run that covers the keywords but
// overshoots Δ returns both the routes and ErrBudgetExceeded.
func (e *Engine) Run(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	resp, err := e.run(ctx, req)
	if e.met != nil {
		e.met.observe(resp, err, time.Since(start))
	}
	return resp, err
}

// run is Run without the instrumentation wrapper. Early-error returns carry
// the resolved Algorithm whenever one was resolved, so the metrics wrapper
// can attribute the failure.
func (e *Engine) run(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One snapshot load up front: the whole request — vocabulary lookups,
	// cache key, search, response annotation — runs against this snapshot,
	// so a concurrent Swap or Patch never mixes two graph versions inside
	// one query.
	sn := e.snap.Load()
	algo, err := core.ParseAlgorithm(string(req.Algorithm))
	if err != nil {
		return Response{}, err
	}
	opts := DefaultOptions()
	if req.Options != nil {
		opts = *req.Options
	}
	if req.K != 0 {
		opts.K = req.K
	}
	if err := opts.Validate(); err != nil {
		return Response{Algorithm: algo}, err
	}
	cq, err := sn.resolve(Query{From: req.From, To: req.To, Keywords: req.Keywords, Budget: req.Budget})
	if err != nil {
		return Response{Algorithm: algo}, err
	}

	start := time.Now()
	if !cacheable(opts) {
		// A tracer observes side effects; the request can be neither cached
		// nor shared with others, so it searches privately.
		res, err := sn.searcher.Run(ctx, algo, cq, opts)
		return e.response(sn, algo, opts, res, start), err
	}
	// A dead context must fail exactly as it does on the search path
	// (newPlan rejects it): a hit or a coalesced answer must not outrank
	// cancellation.
	if ctxErr := ctx.Err(); ctxErr != nil {
		return Response{Algorithm: algo}, fmt.Errorf("kor: search aborted: %w", ctxErr)
	}
	key := cacheKey(sn.info.Fingerprint, algo, cq, opts)
	for {
		if e.cache != nil {
			if hit, ok := e.cache.Get(key); ok {
				e.cacheHits.Add(1)
				e.met.cacheLookup(cacheResultHit)
				resp := cloneResponse(hit.resp)
				resp.Cached = true
				resp.Elapsed = time.Since(start)
				return resp, hit.err
			}
		}
		f, leader := e.flights.join(key)
		if leader {
			if e.cache != nil {
				e.cacheMisses.Add(1)
			}
			e.met.cacheLookup(cacheResultMiss)
			return e.leadSearch(ctx, sn, algo, cq, opts, key, f, start)
		}
		select {
		case <-ctx.Done():
			// Abandon the flight: the leader keeps computing for whoever
			// else is waiting.
			return Response{Algorithm: algo}, fmt.Errorf("kor: search aborted: %w", ctx.Err())
		case <-f.done:
		}
		if f.definitive {
			e.met.cacheLookup(cacheResultCoalesced)
			e.coalesced.Add(1)
			resp := cloneResponse(f.resp)
			resp.Coalesced = true
			resp.Elapsed = time.Since(start)
			return resp, f.err
		}
		// The leader's search ended without a definitive outcome — its
		// context fired, or the expansion cap tripped. That proves nothing
		// about this request, so go around again: re-check the cache, then
		// join (or lead) a fresh flight.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{Algorithm: algo}, fmt.Errorf("kor: search aborted: %w", ctxErr)
		}
	}
}

// response assembles a Run response from a search result against one
// snapshot.
func (e *Engine) response(sn *snapshot, algo Algorithm, opts Options, res Result, start time.Time) Response {
	return Response{
		Routes:    res.Routes,
		Algorithm: algo,
		Bound:     core.BoundFor(algo, opts),
		Metrics:   res.Metrics,
		Elapsed:   time.Since(start),
		Snapshot:  sn.info,
		graph:     sn.g,
	}
}

// definitiveOutcome reports whether a search outcome is deterministic and
// complete — safe to cache and to share with single-flight followers. A clean
// answer, ErrNoRoute (the search proved infeasibility) and the greedy budget
// overshoot (deterministic routes plus the sentinel) all qualify: they are
// exactly as expensive and as deterministic to recompute. Context errors and
// ErrSearchLimit never qualify — an aborted search proved nothing.
func definitiveOutcome(err error) bool {
	return err == nil || errors.Is(err, ErrNoRoute) || errors.Is(err, ErrBudgetExceeded)
}

// leadSearch runs the search as the leader of flight f, publishes the
// outcome to the cache and the flight's followers, and returns it. The
// flight is always finished, even when the search panics — the followers
// then retry rather than hang.
func (e *Engine) leadSearch(ctx context.Context, sn *snapshot, algo Algorithm, cq core.Query, opts Options, key string, f *flight, start time.Time) (Response, error) {
	finished := false
	defer func() {
		if !finished {
			e.flights.finish(key, f, Response{}, nil, false)
		}
	}()
	if e.searchHook != nil {
		e.searchHook()
	}
	res, err := sn.searcher.Run(ctx, algo, cq, opts)
	resp := e.response(sn, algo, opts, res, start)
	if definitiveOutcome(err) {
		// One private copy serves both the cache and the followers: neither
		// ever hands out its stored response without cloning again, so the
		// caller owning resp can scribble on it freely.
		shared := cloneResponse(resp)
		if e.cache != nil {
			e.cache.Put(key, cachedResponse{resp: shared, err: err})
		}
		finished = true
		e.flights.finish(key, f, shared, err, true)
	} else {
		finished = true
		e.flights.finish(key, f, Response{}, err, false)
	}
	return resp, err
}

// legacyOptions reproduces the lenient handling of the deprecated methods:
// they lifted non-positive K and Width to 1 instead of rejecting them, so
// the wrappers must keep doing that now that Run validates strictly.
func legacyOptions(opts Options) Options {
	if opts.K < 1 {
		opts.K = 1
	}
	if opts.Width < 1 {
		opts.Width = 1
	}
	return opts
}

// runLegacy adapts a deprecated method call onto Run, converting the
// Response back to the method's Result shape.
func (e *Engine) runLegacy(ctx context.Context, a Algorithm, q Query, opts Options) (Result, error) {
	opts = legacyOptions(opts)
	resp, err := e.Run(ctx, Request{
		From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget,
		Algorithm: a, Options: &opts,
	})
	return Result{Routes: resp.Routes, Metrics: resp.Metrics}, err
}
