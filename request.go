package kor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"kor/internal/core"
)

// Algorithm names one of the engine's search algorithms. The zero value
// selects the default, BucketBound. Algorithm values are also the wire
// spellings korserve and korapi accept.
type Algorithm = core.Algorithm

// The registered algorithms, re-exported from the core registry.
const (
	// AlgorithmDefault resolves to AlgorithmBucketBound.
	AlgorithmDefault = core.AlgorithmDefault
	// AlgorithmBucketBound is the §3.3 bucket label search, bound β/(1−ε).
	AlgorithmBucketBound = core.AlgorithmBucketBound
	// AlgorithmOSScaling is the §3.2 scaled label search, bound 1/(1−ε).
	AlgorithmOSScaling = core.AlgorithmOSScaling
	// AlgorithmGreedy is the §3.4 beam-greedy heuristic, no guarantee.
	AlgorithmGreedy = core.AlgorithmGreedy
	// AlgorithmTopK is the §3.5 KkR extension returning the K best routes.
	AlgorithmTopK = core.AlgorithmTopK
	// AlgorithmExact is the exact branch-and-bound.
	AlgorithmExact = core.AlgorithmExact
	// AlgorithmBruteForce is the exhaustive baseline for validation.
	AlgorithmBruteForce = core.AlgorithmBruteForce
)

// ParseAlgorithm resolves a wire spelling to its Algorithm, or an
// ErrBadQuery-wrapped error naming the valid choices.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Algorithms lists the registered algorithms in a stable order.
func Algorithms() []Algorithm { return core.Algorithms() }

// Request is a self-describing KOR query: the endpoints, keywords and budget
// of Definition 4, plus which algorithm to run and how to tune it. It is the
// input to Engine.Run, the engine's single entry point, and the in-process
// twin of the korapi wire request.
type Request struct {
	// From and To are the route endpoints; equal for a round trip.
	From NodeID
	To   NodeID
	// Keywords are the keyword strings the route must cover.
	Keywords []string
	// Budget is the budget limit Δ.
	Budget float64
	// Algorithm selects the search algorithm; the zero value means
	// BucketBound, the paper's recommended speed/quality trade-off.
	Algorithm Algorithm
	// K, when non-zero, overrides Options.K: ask for the K best distinct
	// routes (the KkR query) instead of just the best one. Negative values
	// are rejected by Options.Validate.
	K int
	// Options overrides the tuning parameters; nil means DefaultOptions.
	// The options are validated (Options.Validate) before any search work.
	Options *Options
}

// Response is what Engine.Run returns: the routes found plus enough
// metadata to interpret them — which algorithm actually ran, what
// approximation guarantee it carried, and what the search cost.
type Response struct {
	// Routes holds the routes found, best objective first. Plain queries
	// yield one; top-k queries yield up to K.
	Routes []Route
	// Algorithm is the canonical algorithm that ran (never empty: the
	// default is resolved before dispatch).
	Algorithm Algorithm
	// Bound is the approximation factor the algorithm guarantees on the
	// objective score under the request's options: 1 for the exact
	// algorithms, 1/(1−ε) or β/(1−ε) for the label algorithms, 0 for the
	// greedy heuristic (no guarantee).
	Bound float64
	// Metrics counts the work the search performed. For a cached response
	// they are the counters of the search that originally produced it.
	Metrics Metrics
	// Elapsed is the search wall time, measured inside Run. For a cached
	// response it is the (tiny) lookup time, not the original search time.
	Elapsed time.Duration
	// Cached reports that the response was served from the engine's result
	// cache (EngineConfig.CacheSize) without running a search.
	Cached bool
	// Snapshot identifies the graph snapshot the response was computed
	// against. Under live updates (Engine.Swap, Engine.Patch) this is how a
	// caller — or a test — ties an answer to the exact graph version that
	// produced it.
	Snapshot SnapshotInfo

	// graph pins the snapshot's graph so Graph() can resolve the route's
	// node IDs even after the engine swapped to a different (possibly
	// smaller) graph.
	graph *Graph
}

// Graph returns the graph the response was computed against — the right
// graph for resolving the routes' node IDs, names and positions. Under live
// updates Engine.Graph() may already point at a different (even smaller)
// graph than the one that produced an in-flight response; rendering with
// that one would mislabel or out-of-range the route nodes. Nil on a zero
// Response.
func (r Response) Graph() *Graph { return r.graph }

// Best returns the first (best) route. It panics if the response is empty;
// call only after a nil-error Run.
func (r Response) Best() Route { return r.Routes[0] }

// Run answers the request: it validates the options, resolves the keywords
// against the graph's vocabulary, dispatches to the requested algorithm
// through the core registry, and annotates the result with the algorithm's
// approximation bound and the wall time.
//
// Errors follow the package's sentinel scheme: ErrBadQuery wraps for an
// unknown algorithm or out-of-domain options, ErrUnknownKeyword for a
// keyword absent from the vocabulary, ErrNoRoute when no feasible route
// exists, and a wrapped context error when ctx fires mid-search. Like the
// greedy method it replaces, a Greedy run that covers the keywords but
// overshoots Δ returns both the routes and ErrBudgetExceeded.
func (e *Engine) Run(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	resp, err := e.run(ctx, req)
	if e.met != nil {
		e.met.observe(resp, err, time.Since(start))
	}
	return resp, err
}

// run is Run without the instrumentation wrapper. Early-error returns carry
// the resolved Algorithm whenever one was resolved, so the metrics wrapper
// can attribute the failure.
func (e *Engine) run(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One snapshot load up front: the whole request — vocabulary lookups,
	// cache key, search, response annotation — runs against this snapshot,
	// so a concurrent Swap or Patch never mixes two graph versions inside
	// one query.
	sn := e.snap.Load()
	algo, err := core.ParseAlgorithm(string(req.Algorithm))
	if err != nil {
		return Response{}, err
	}
	opts := DefaultOptions()
	if req.Options != nil {
		opts = *req.Options
	}
	if req.K != 0 {
		opts.K = req.K
	}
	if err := opts.Validate(); err != nil {
		return Response{Algorithm: algo}, err
	}
	cq, err := sn.resolve(Query{From: req.From, To: req.To, Keywords: req.Keywords, Budget: req.Budget})
	if err != nil {
		return Response{Algorithm: algo}, err
	}

	start := time.Now()
	key := ""
	if e.cache != nil && cacheable(opts) {
		// A dead context must fail exactly as it does on the search path
		// (newPlan rejects it): a hit must not outrank cancellation.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{Algorithm: algo}, fmt.Errorf("kor: search aborted: %w", ctxErr)
		}
		key = cacheKey(sn.info.Fingerprint, algo, cq, opts)
		if hit, ok := e.cache.Get(key); ok {
			e.met.cacheLookup(true)
			resp := cloneResponse(hit.resp)
			resp.Cached = true
			resp.Elapsed = time.Since(start)
			return resp, hit.err
		}
		e.met.cacheLookup(false)
	}

	res, err := sn.searcher.Run(ctx, algo, cq, opts)
	resp := Response{
		Routes:    res.Routes,
		Algorithm: algo,
		Bound:     core.BoundFor(algo, opts),
		Metrics:   res.Metrics,
		Elapsed:   time.Since(start),
		Snapshot:  sn.info,
		graph:     sn.g,
	}
	if key != "" && (err == nil || errors.Is(err, ErrNoRoute) || errors.Is(err, ErrBudgetExceeded)) {
		// Store a private copy: the caller owns resp and may mutate it.
		// Definitive non-nil outcomes are cached alongside clean answers:
		// ErrNoRoute (the search proved infeasibility) and the greedy
		// budget overshoot (deterministic routes plus the sentinel) are
		// exactly as expensive and as deterministic to recompute. Context
		// errors and ErrSearchLimit are never cached — an aborted search
		// proved nothing.
		e.cache.Put(key, cachedResponse{resp: cloneResponse(resp), err: err})
	}
	return resp, err
}

// legacyOptions reproduces the lenient handling of the deprecated methods:
// they lifted non-positive K and Width to 1 instead of rejecting them, so
// the wrappers must keep doing that now that Run validates strictly.
func legacyOptions(opts Options) Options {
	if opts.K < 1 {
		opts.K = 1
	}
	if opts.Width < 1 {
		opts.Width = 1
	}
	return opts
}

// runLegacy adapts a deprecated method call onto Run, converting the
// Response back to the method's Result shape.
func (e *Engine) runLegacy(ctx context.Context, a Algorithm, q Query, opts Options) (Result, error) {
	opts = legacyOptions(opts)
	resp, err := e.Run(ctx, Request{
		From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget,
		Algorithm: a, Options: &opts,
	})
	return Result{Routes: resp.Routes, Metrics: resp.Metrics}, err
}
