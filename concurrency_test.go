package kor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// concurrencyEngine builds one Engine over a mid-size road network, forced
// onto the lazy oracle so concurrent queries contend on the shared sweep
// cache — the configuration the concurrency refactor exists for.
func concurrencyEngine(t testing.TB) *Engine {
	t.Helper()
	g := SyntheticRoadNetwork(2012, 400)
	eng, err := NewEngine(g, &EngineConfig{Oracle: OracleLazy})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// concurrencyQueries derives feasible-looking queries from the graph itself:
// keywords are read off sampled nodes, so every query resolves.
func concurrencyQueries(t testing.TB, eng *Engine, n int) []Query {
	t.Helper()
	g := eng.Graph()
	rng := rand.New(rand.NewSource(7))
	queries := make([]Query, 0, n)
	for len(queries) < n {
		from := NodeID(rng.Intn(g.NumNodes()))
		to := NodeID(rng.Intn(g.NumNodes()))
		seen := map[string]bool{}
		var kws []string
		for len(kws) < 3 {
			v := NodeID(rng.Intn(g.NumNodes()))
			for _, term := range g.Terms(v) {
				name := g.Vocab().Name(term)
				if !seen[name] {
					seen[name] = true
					kws = append(kws, name)
				}
			}
		}
		queries = append(queries, Query{From: from, To: to, Keywords: kws[:3], Budget: 60})
	}
	return queries
}

type algoRun struct {
	name string
	run  func(*Engine, context.Context, Query) (Result, error)
}

func mixedAlgos() []algoRun {
	topkOpts := DefaultOptions()
	topkOpts.K = 3
	return []algoRun{
		{"bucketbound", func(e *Engine, ctx context.Context, q Query) (Result, error) {
			return e.BucketBoundCtx(ctx, q, DefaultOptions())
		}},
		{"osscaling", func(e *Engine, ctx context.Context, q Query) (Result, error) {
			return e.OSScalingCtx(ctx, q, DefaultOptions())
		}},
		{"greedy", func(e *Engine, ctx context.Context, q Query) (Result, error) {
			return e.GreedyCtx(ctx, q, DefaultOptions())
		}},
		{"topk", func(e *Engine, ctx context.Context, q Query) (Result, error) {
			return e.OSScalingCtx(ctx, q, topkOpts)
		}},
	}
}

// TestConcurrentSearches fires overlapping queries of every algorithm at a
// single shared Engine and checks each result against a sequential baseline
// computed on a fresh engine: concurrency must change neither safety (run
// with -race) nor answers (the algorithms are deterministic).
func TestConcurrentSearches(t *testing.T) {
	shared := concurrencyEngine(t)
	baseline := concurrencyEngine(t)
	queries := concurrencyQueries(t, shared, 6)
	algos := mixedAlgos()

	type key struct {
		algo  string
		query int
	}
	want := make(map[key]string)
	for qi, q := range queries {
		for _, a := range algos {
			res, err := a.run(baseline, context.Background(), q)
			want[key{a.name, qi}] = renderOutcome(res, err)
		}
	}

	// 4 algorithms × 6 queries = 24 concurrent searches (≥ 8), all against
	// one Engine and one lazy oracle.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for qi, q := range queries {
		for _, a := range algos {
			wg.Add(1)
			go func(a algoRun, qi int, q Query) {
				defer wg.Done()
				res, err := a.run(shared, context.Background(), q)
				got := renderOutcome(res, err)
				if got != want[key{a.name, qi}] {
					mu.Lock()
					t.Errorf("%s on query %d under concurrency:\n got %s\nwant %s",
						a.name, qi, got, want[key{a.name, qi}])
					mu.Unlock()
				}
			}(a, qi, q)
		}
	}
	// Concurrent Suggest calls share the same engine.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := shared.Suggest("t", 5); err != nil {
				mu.Lock()
				t.Errorf("concurrent Suggest: %v", err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// renderOutcome flattens a search outcome for comparison: the routes when it
// succeeded, the error text when it failed.
func renderOutcome(res Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	out := ""
	for _, r := range res.Routes {
		out += r.String() + "; "
	}
	return out
}

// TestSearchBatch checks the batch API returns exactly the single-query
// answers, in order, at several parallelism levels.
func TestSearchBatch(t *testing.T) {
	eng := concurrencyEngine(t)
	queries := concurrencyQueries(t, eng, 10)

	want := make([]string, len(queries))
	for i, q := range queries {
		r, err := eng.Search(q, DefaultOptions())
		if err != nil {
			want[i] = "error: " + err.Error()
		} else {
			want[i] = r.String()
		}
	}

	requests := make([]Request, len(queries))
	for i, q := range queries {
		requests[i] = Request{From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget}
	}
	for _, par := range []int{0, 1, 4, 16} {
		results, err := eng.SearchBatch(context.Background(), requests, par)
		if err != nil {
			t.Fatalf("SearchBatch(par=%d): %v", par, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("SearchBatch(par=%d) returned %d results for %d queries", par, len(results), len(queries))
		}
		for i, br := range results {
			got := br.Route().String()
			if br.Err != nil {
				got = "error: " + br.Err.Error()
			}
			if got != want[i] {
				t.Errorf("SearchBatch(par=%d) query %d:\n got %s\nwant %s", par, i, got, want[i])
			}
		}
	}
}

// TestSearchBatchCancelled: a cancelled context fails every query with a
// Canceled error and reports the cancellation at batch level too.
func TestSearchBatchCancelled(t *testing.T) {
	eng := concurrencyEngine(t)
	queries := concurrencyQueries(t, eng, 4)
	requests := make([]Request, len(queries))
	for i, q := range queries {
		requests[i] = Request{From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.SearchBatch(ctx, requests, 2)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("batch error = %v, want context.Canceled", err)
	}
	for i, br := range results {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("query %d error = %v, want context.Canceled", i, br.Err)
		}
	}
}

// TestSearchCtxCancelled: the façade's ctx-aware single search also fails
// fast on a dead context.
func TestSearchCtxCancelled(t *testing.T) {
	eng := concurrencyEngine(t)
	q := concurrencyQueries(t, eng, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SearchCtx(ctx, q, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := eng.TopKCtx(ctx, q, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("TopKCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := eng.ExactCtx(ctx, q, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExactCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestConcurrentDiskIndexSuggest exercises the disk-resident index path —
// B+-tree scans plus memoized posting reads — from many goroutines.
func TestConcurrentDiskIndexSuggest(t *testing.T) {
	g := SyntheticRoadNetwork(5, 150)
	path := t.TempDir() + "/idx.kidx"
	eng, err := NewEngine(g, &EngineConfig{Oracle: OracleLazy, IndexPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queries := concurrencyQueries(t, eng, 4)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := eng.Suggest(fmt.Sprintf("t%d", w%3), 5); err != nil {
				errs <- err
				return
			}
			if _, err := eng.Search(queries[w%len(queries)], DefaultOptions()); err != nil && !errors.Is(err, ErrNoRoute) {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent disk-index use: %v", err)
	}
}
