// Package kor implements keyword-aware optimal route search: given a
// directed graph whose nodes carry keywords and whose edges carry an
// objective value (minimized) and a budget value (constrained), a KOR query
// asks for the route from a source to a target that covers a set of
// keywords, keeps its summed budget within a limit Δ, and minimizes its
// summed objective.
//
// The problem is NP-hard; the package provides the approximation algorithms
// of Cao, Chen, Cong and Xiao, "Keyword-aware Optimal Route Search", PVLDB
// 5(11), 2012:
//
//   - OSScaling — approximation bound 1/(1−ε) on the objective score;
//   - BucketBound — bound β/(1−ε), usually much faster;
//   - Greedy — beam-greedy heuristic, fastest, no guarantee;
//   - top-k (KkR) variants of the two label algorithms;
//   - an exact branch-and-bound and a brute-force baseline for validation.
//
// # Quick start
//
//	b := kor.NewBuilder()
//	hotel := b.AddNode("hotel")
//	cafe := b.AddNode("cafe", "jazz")
//	park := b.AddNode("park")
//	b.AddEdge(hotel, cafe, 0.7, 1.2) // objective, budget
//	b.AddEdge(cafe, park, 0.3, 0.8)
//	b.AddEdge(park, hotel, 0.5, 1.0)
//	g := b.MustBuild()
//
//	eng, _ := kor.NewEngine(g, nil)
//	resp, _ := eng.Run(context.Background(), kor.Request{
//		From: hotel, To: hotel,
//		Keywords: []string{"jazz", "park"},
//		Budget:   4,
//	})
//	fmt.Println(resp.Best())
//
// Run is the single entry point: the Request names the algorithm (the zero
// value picks BucketBound) and optionally overrides the tuning Options, and
// the Response carries the routes with the algorithm's approximation bound,
// work metrics and wall time. The per-algorithm methods (Search, OSScaling,
// BucketBound, Greedy, TopK, Exact and their Ctx variants) remain as
// deprecated wrappers over Run.
//
// Node keywords, edge attributes and the two pre-processing path families
// (τ: minimum objective, σ: minimum budget) follow the paper's definitions;
// see DESIGN.md in the repository for the fidelity notes.
package kor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kor/internal/apsp"
	"kor/internal/core"
	"kor/internal/gen"
	"kor/internal/graph"
	"kor/internal/metrics"
	"kor/internal/rescache"
	"kor/internal/textindex"
)

// Re-exported fundamental types. The façade keeps the internal packages'
// types rather than wrapping them: they are already the public shape.
type (
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// Term is an interned keyword.
	Term = graph.Term
	// Graph is the immutable KOR graph.
	Graph = graph.Graph
	// Builder assembles a Graph.
	Builder = graph.Builder
	// Route is a search result.
	Route = core.Route
	// Result carries the found routes and the search work counters.
	Result = core.Result
	// Options tunes the algorithms (ε, β, α, beam width, k, strategies).
	Options = core.Options
	// Metrics counts the work a search performed.
	Metrics = core.Metrics
	// Delta describes an incremental graph change for Engine.Patch and
	// Graph.Apply: keyword churn, edge-attribute drift, edges appearing and
	// disappearing.
	Delta = graph.Delta
	// KeywordPatch names a node and keywords to add or remove in a Delta.
	KeywordPatch = graph.KeywordPatch
	// EdgePatch addresses an edge and its new attributes in a Delta.
	EdgePatch = graph.EdgePatch
	// EdgeRef addresses an edge for removal in a Delta.
	EdgeRef = graph.EdgeRef
	// GraphStats is the graph summary ComputeStats and Engine.Stats return.
	GraphStats = graph.Stats
)

// Errors surfaced by the engine, re-exported from the core package.
var (
	// ErrNoRoute reports that no feasible route exists.
	ErrNoRoute = core.ErrNoRoute
	// ErrBadQuery reports a malformed query.
	ErrBadQuery = core.ErrBadQuery
	// ErrBudgetExceeded reports a greedy route that covers the keywords but
	// violates the budget; the route is still returned.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrSearchLimit reports that the expansion cap fired before the search
	// concluded.
	ErrSearchLimit = core.ErrSearchLimit
	// ErrUnknownAlgorithm reports a Request.Algorithm missing from the
	// registry; errors carrying it also match ErrBadQuery.
	ErrUnknownAlgorithm = core.ErrUnknownAlgorithm
	// ErrUnknownKeyword reports a query keyword absent from the graph's
	// vocabulary.
	ErrUnknownKeyword = errors.New("kor: unknown keyword")
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// DefaultOptions returns the paper's experimental defaults: ε=0.5, β=1.2,
// α=0.5, beam width 1, k=1, both optimization strategies enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// Query is a KOR query posed with keyword strings.
type Query struct {
	// From and To are the route endpoints; they may be equal for a round
	// trip.
	From NodeID
	To   NodeID
	// Keywords are the keyword strings the route must cover.
	Keywords []string
	// Budget is the budget limit Δ.
	Budget float64
}

// OracleKind selects the τ/σ pre-processing implementation.
type OracleKind int

const (
	// OracleAuto picks dense tables for small graphs and lazy sweeps for
	// large ones.
	OracleAuto OracleKind = iota
	// OracleDense materializes the full |V|² score tables (the paper's
	// pre-processing).
	OracleDense
	// OracleLazy memoizes single-source/single-target Dijkstra sweeps.
	OracleLazy
	// OraclePartitioned uses the paper's §6 partition-based design.
	OraclePartitioned
)

// denseOracleLimit is the node count up to which OracleAuto chooses dense
// tables (5·n²·8 bytes ≈ 1.5 GiB at the limit, score and parent tables).
const denseOracleLimit = 6000

// EngineConfig customizes engine construction. The zero value is valid.
type EngineConfig struct {
	// Oracle selects the pre-processing implementation.
	Oracle OracleKind
	// PartitionCellSize bounds region sizes for OraclePartitioned
	// (default apsp.DefaultCellSize).
	PartitionCellSize int
	// IndexPath, when non-empty, builds (or reuses) a disk-resident
	// inverted file at this path instead of the in-memory index — the
	// paper's B+-tree storage.
	IndexPath string
	// DistIndexPath, when non-empty, loads a persistent distance oracle
	// built by WriteDistIndex (kordata -build-index) instead of running the
	// τ/σ pre-processing at startup; Oracle and PartitionCellSize are then
	// ignored for the construction graph. The file is bound to one graph:
	// NewEngine fails with apsp.ErrIndexFingerprint when it does not match,
	// and after a Swap or Patch changes the graph the engine falls back to a
	// lazy oracle and reports OracleStatus.Degraded until a matching graph
	// is installed again.
	DistIndexPath string
	// CacheSize, when positive, bounds a shard-locked LRU cache of query
	// responses keyed by the request's canonical form and the graph's
	// fingerprint. Repeated identical requests — the hot fraction of any
	// live query stream — are answered from the cache without a search;
	// hits are flagged on the Response and counted in CacheStats. 0
	// disables caching.
	CacheSize int
	// Metrics, when non-nil, receives the engine's operational metrics
	// (request totals by algorithm/outcome, latency histograms, cache
	// hit/miss, snapshot generation, oracle sweeps; see metrics.go). The
	// registry must not already hold metrics with the kor_engine_ names —
	// in particular, do not share one registry between two engines.
	Metrics *metrics.Registry
}

// Engine answers KOR queries over a graph. Construction runs the
// pre-processing; queries are then independent.
//
// An Engine is safe for concurrent use: the shared substrates (graph,
// oracle, keyword index) are immutable or internally synchronized, and all
// per-query state lives on the query's own stack. Serve every request from
// one Engine — the lazy oracle's sweep cache then amortizes across
// concurrent queries, with duplicate sweeps single-flighted. Run answers
// one Request with per-request deadlines and cancellation through its
// context; SearchBatch runs a whole Request set on a worker pool.
//
// The graph is not fixed for the engine's lifetime: Swap installs a new
// graph and Patch applies an incremental Delta, both atomically — in-flight
// queries finish on the snapshot they started with, later queries see the
// new graph (see snapshot.go).
type Engine struct {
	// snap is the current graph snapshot: the graph plus everything derived
	// from it. Queries load it once at entry and never look again.
	snap atomic.Pointer[snapshot]
	// cfg is retained so Swap and Patch rebuild oracles with the same
	// configuration the engine was constructed with.
	cfg EngineConfig

	index     io.Closer // non-nil when a disk index is open
	diskIndex *textindex.GraphIndex

	// distOracle is the disk-loaded distance oracle (DistIndexPath), shared
	// by every snapshot whose graph matches its fingerprint; distLoad is how
	// long OpenIndex took. Both are set once at construction.
	distOracle *apsp.PartitionedOracle
	distLoad   time.Duration

	// cache is the optional response cache (EngineConfig.CacheSize > 0);
	// keys fold in the current snapshot's fingerprint, and the whole cache
	// is cleared on swap.
	cache *rescache.Cache[cachedResponse]

	// flights single-flights identical in-flight cacheable requests (see
	// flight.go), keyed by the same canonical key as the cache. Active even
	// with caching disabled: coalescing needs no storage budget.
	flights flightGroup
	// coalesced counts responses answered by sharing another request's
	// search: single-flight followers and SearchBatch duplicates.
	// cacheHits/cacheMisses are the engine's own lookup accounting:
	// rescache's internal counters would count a coalesced follower's
	// discovery Get as a miss, but no search ran for it — the engine counts
	// a miss only when a request goes on to lead a search.
	coalesced   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// searchHook, when non-nil, runs on the leader's path right before the
	// search. Test instrumentation only: stampede tests park the leader here
	// until the followers have queued.
	searchHook func()

	// swapMu serializes Swap and Patch so concurrent patches compose;
	// generation is guarded by it.
	swapMu     sync.Mutex
	generation uint64
	// degradedSince dates the start of the current degraded-oracle episode
	// (persistent distance index configured but the live graph diverged);
	// zero while serving from the index. Written only by newSnapshot — at
	// construction or under swapMu — and read through the snapshot's
	// OracleStatus, so repeated patches keep the original onset rather than
	// restarting the clock.
	degradedSince time.Time

	// met holds the engine's instruments when EngineConfig.Metrics was set;
	// nil otherwise (every update site nil-checks).
	met *engineMetrics
}

// Suggestion pairs a keyword with the number of nodes carrying it.
type Suggestion struct {
	Keyword string
	Nodes   int
}

// Suggest returns up to limit keywords starting with prefix, each with its
// node count — the autocomplete primitive for a search box. With a disk
// index configured it is a B+-tree range scan; otherwise it scans the
// vocabulary.
func (e *Engine) Suggest(prefix string, limit int) ([]Suggestion, error) {
	if limit <= 0 {
		limit = 10
	}
	if e.diskIndex != nil {
		tcs, err := e.diskIndex.Suggest(prefix, limit)
		if err != nil {
			return nil, err
		}
		out := make([]Suggestion, len(tcs))
		for i, tc := range tcs {
			out[i] = Suggestion{Keyword: tc.Term, Nodes: tc.Count}
		}
		return out, nil
	}
	var out []Suggestion
	sn := e.snap.Load()
	idx := sn.searcher.Index()
	names := sn.g.Vocab().Names()
	// Names are in interning order; collect matches then sort by name to
	// match the disk index's ordering.
	for term, name := range names {
		if strings.HasPrefix(name, prefix) {
			out = append(out, Suggestion{Keyword: name, Nodes: idx.DocFrequency(Term(term))})
		}
	}
	slices.SortFunc(out, func(a, b Suggestion) int { return strings.Compare(a.Keyword, b.Keyword) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// NewEngine builds an engine over g. A nil config uses OracleAuto and the
// in-memory inverted index.
func NewEngine(g *Graph, cfg *EngineConfig) (*Engine, error) {
	if g == nil {
		return nil, errors.New("kor: nil graph")
	}
	if cfg == nil {
		cfg = &EngineConfig{}
	}
	eng := &Engine{cfg: *cfg}
	if cfg.CacheSize > 0 {
		eng.cache = rescache.New[cachedResponse](cfg.CacheSize)
	}
	if cfg.Metrics != nil {
		// After the cache so the cache instruments register too; before the
		// first snapshot store is fine — the callback metrics only run at
		// exposition time, when the snapshot pointer is set.
		eng.registerMetrics(cfg.Metrics)
	}
	if cfg.IndexPath != "" {
		gi, err := openOrBuildIndex(cfg.IndexPath, g)
		if err != nil {
			return nil, err
		}
		eng.index = gi
		eng.diskIndex = gi
	}
	if cfg.DistIndexPath != "" {
		start := time.Now()
		po, err := apsp.OpenIndex(cfg.DistIndexPath, g)
		if err != nil {
			if eng.index != nil {
				eng.index.Close()
			}
			return nil, fmt.Errorf("kor: loading distance index %s: %w", cfg.DistIndexPath, err)
		}
		eng.distOracle = po
		eng.distLoad = time.Since(start)
	}
	sn, err := eng.newSnapshot(g, 1)
	if err != nil {
		eng.closeOwned()
		return nil, err
	}
	eng.generation = 1
	//korvet:ignore snapshot-pin construction-time store: the engine has not escaped NewEngine yet, so no reader exists and swapMu is unnecessary
	eng.snap.Store(sn)
	eng.publishOracleStatus(sn.oracle)
	return eng, nil
}

// WriteDistIndex runs the partitioned τ/σ pre-processing for g and persists
// it to path in the KORI format, ready for EngineConfig.DistIndexPath /
// korserve -dist-index. cellSize ≤ 0 uses apsp.DefaultCellSize. The file is
// bound to g's fingerprint.
func WriteDistIndex(path string, g *Graph, cellSize int) (apsp.IndexInfo, error) {
	if cellSize <= 0 {
		cellSize = apsp.DefaultCellSize
	}
	o := apsp.NewPartitionedOracle(g, cellSize)
	if err := o.WriteIndexFile(path); err != nil {
		return apsp.IndexInfo{}, err
	}
	info := o.IndexInfo()
	if st, err := os.Stat(path); err == nil {
		info.Bytes = st.Size()
	}
	return info, nil
}

// lazySweepBudgetBytes bounds what each direction's sweep cache of the lazy
// oracle may hold. The default 128-entry cap is tuned for benchmark-sized
// graphs; at real-world scale a single sweep is tens of megabytes
// (2×float64 + int32 per node), so an entry-count cap alone would let the
// cache grow to gigabytes on a million-node graph.
const lazySweepBudgetBytes = 256 << 20

// lazySweepCapacity converts the byte budget into a sweep-entry count for an
// n-node graph, clamped to [4, DefaultSweepCapacity] so small graphs keep
// their current cache behaviour exactly.
func lazySweepCapacity(n int) int {
	if n <= 0 {
		return apsp.DefaultSweepCapacity
	}
	const perNode = 2*8 + 4 // primary, secondary float64 + parent int32
	c := int(lazySweepBudgetBytes / int64(n*perNode))
	if c > apsp.DefaultSweepCapacity {
		return apsp.DefaultSweepCapacity
	}
	if c < 4 {
		return 4
	}
	return c
}

// buildOracle constructs the τ/σ oracle cfg selects for g, returning it with
// its OracleStatus.Kind label.
func buildOracle(g *Graph, cfg EngineConfig) (core.RouteOracle, string, error) {
	kind := cfg.Oracle
	if kind == OracleAuto {
		if g.NumNodes() <= denseOracleLimit {
			kind = OracleDense
		} else {
			kind = OracleLazy
		}
	}
	switch kind {
	case OracleDense:
		return apsp.NewMatrixOracle(g), OracleKindMatrix, nil
	case OracleLazy:
		o := apsp.NewLazyOracle(g)
		o.SetCapacity(lazySweepCapacity(g.NumNodes()))
		return o, OracleKindLazy, nil
	case OraclePartitioned:
		cell := cfg.PartitionCellSize
		if cell <= 0 {
			cell = apsp.DefaultCellSize
		}
		return apsp.NewPartitionedOracle(g, cell), OracleKindPartitioned, nil
	default:
		return nil, "", fmt.Errorf("kor: unknown oracle kind %d", cfg.Oracle)
	}
}

func openOrBuildIndex(path string, g *Graph) (*textindex.GraphIndex, error) {
	if _, err := os.Stat(path); err == nil {
		file, err := textindex.OpenInverted(path)
		if err != nil {
			return nil, fmt.Errorf("kor: opening inverted file: %w", err)
		}
		return textindex.NewGraphIndex(file, g.Vocab()), nil
	}
	gi, err := textindex.BuildForGraph(path, g)
	if err != nil {
		return nil, fmt.Errorf("kor: building inverted file: %w", err)
	}
	return gi, nil
}

// CacheStats is a point-in-time snapshot of the response cache's counters.
type CacheStats struct {
	// Hits and Misses count Run lookups over the engine's lifetime; only
	// cacheable requests (no tracer) are counted.
	Hits   int64
	Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Coalesced counts requests answered by sharing another request's
	// search instead of running their own: single-flight followers of an
	// identical in-flight request and duplicates inside a SearchBatch.
	// Such requests are not counted in Misses.
	Coalesced int64
	// Size is the current entry count; Capacity the configured bound.
	Size     int
	Capacity int
}

// CacheStats snapshots the response cache. ok is false when caching is
// disabled (EngineConfig.CacheSize was 0).
func (e *Engine) CacheStats() (stats CacheStats, ok bool) {
	if e.cache == nil {
		return CacheStats{}, false
	}
	st := e.cache.Stats()
	return CacheStats{
		Hits:      e.cacheHits.Load(),
		Misses:    e.cacheMisses.Load(),
		Evictions: st.Evictions,
		Coalesced: e.coalesced.Load(),
		Size:      st.Size,
		Capacity:  st.Capacity,
	}, true
}

// Close releases the engine's disk-backed resources: the inverted file and
// the mmap behind a persistent distance oracle, when configured.
func (e *Engine) Close() error {
	return e.closeOwned()
}

// closeOwned releases the disk index and distance oracle, keeping the first
// error.
func (e *Engine) closeOwned() error {
	var err error
	if e.index != nil {
		err = e.index.Close()
	}
	if e.distOracle != nil {
		if cerr := e.distOracle.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Graph returns the engine's current graph. After a Swap or Patch it
// returns the new graph; a Response identifies the exact snapshot its
// routes were computed on via Response.Snapshot.
func (e *Engine) Graph() *Graph { return e.snap.Load().g }

// resolve translates a façade query into the core query against one
// snapshot's vocabulary.
func (sn *snapshot) resolve(q Query) (core.Query, error) {
	terms := make([]Term, 0, len(q.Keywords))
	for _, kw := range q.Keywords {
		t, ok := sn.g.Vocab().Lookup(kw)
		if !ok {
			return core.Query{}, fmt.Errorf("%w: %q", ErrUnknownKeyword, kw)
		}
		terms = append(terms, t)
	}
	return core.Query{Source: q.From, Target: q.To, Keywords: terms, Budget: q.Budget}, nil
}

// Search answers the query with BucketBound, the paper's recommended
// speed/quality trade-off, returning the best route.
//
// Deprecated: use Run with AlgorithmBucketBound (or the zero Algorithm).
func (e *Engine) Search(q Query, opts Options) (Route, error) {
	return e.SearchCtx(context.Background(), q, opts)
}

// SearchCtx is Search with a context: the search aborts with the context's
// error (wrapped; test with errors.Is against context.Canceled or
// context.DeadlineExceeded) once the context fires.
//
// Deprecated: use Run with AlgorithmBucketBound (or the zero Algorithm).
func (e *Engine) SearchCtx(ctx context.Context, q Query, opts Options) (Route, error) {
	res, err := e.runLegacy(ctx, AlgorithmBucketBound, q, opts)
	if err != nil {
		return Route{}, err
	}
	return res.Best(), nil
}

// OSScaling answers the query with Algorithm 1 (bound 1/(1−ε)).
//
// Deprecated: use Run with AlgorithmOSScaling.
func (e *Engine) OSScaling(q Query, opts Options) (Result, error) {
	return e.OSScalingCtx(context.Background(), q, opts)
}

// OSScalingCtx is OSScaling with cancellation.
//
// Deprecated: use Run with AlgorithmOSScaling.
func (e *Engine) OSScalingCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	return e.runLegacy(ctx, AlgorithmOSScaling, q, opts)
}

// BucketBound answers the query with Algorithm 2 (bound β/(1−ε)).
//
// Deprecated: use Run with AlgorithmBucketBound.
func (e *Engine) BucketBound(q Query, opts Options) (Result, error) {
	return e.BucketBoundCtx(context.Background(), q, opts)
}

// BucketBoundCtx is BucketBound with cancellation.
//
// Deprecated: use Run with AlgorithmBucketBound.
func (e *Engine) BucketBoundCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	return e.runLegacy(ctx, AlgorithmBucketBound, q, opts)
}

// Greedy answers the query with Algorithm 3. opts.Width selects Greedy-1 or
// Greedy-2; opts.BudgetPriority flips the variant that respects Δ at the
// cost of keyword coverage.
//
// Deprecated: use Run with AlgorithmGreedy.
func (e *Engine) Greedy(q Query, opts Options) (Result, error) {
	return e.GreedyCtx(context.Background(), q, opts)
}

// GreedyCtx is Greedy with cancellation.
//
// Deprecated: use Run with AlgorithmGreedy.
func (e *Engine) GreedyCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	return e.runLegacy(ctx, AlgorithmGreedy, q, opts)
}

// TopK answers the KkR query (§3.5): the k best distinct feasible routes,
// via the OSScaling extension. Set opts.K; k=1 equals OSScaling.
//
// Deprecated: use Run with AlgorithmTopK and Request.K.
func (e *Engine) TopK(q Query, opts Options) ([]Route, error) {
	return e.TopKCtx(context.Background(), q, opts)
}

// TopKCtx is TopK with cancellation.
//
// Deprecated: use Run with AlgorithmTopK and Request.K.
func (e *Engine) TopKCtx(ctx context.Context, q Query, opts Options) ([]Route, error) {
	res, err := e.runLegacy(ctx, AlgorithmTopK, q, opts)
	if err != nil {
		return nil, err
	}
	return res.Routes, nil
}

// Exact answers the query exactly with branch and bound. Exponential worst
// case; meant for validation on small inputs.
//
// Deprecated: use Run with AlgorithmExact.
func (e *Engine) Exact(q Query, opts Options) (Result, error) {
	return e.ExactCtx(context.Background(), q, opts)
}

// ExactCtx is Exact with cancellation.
//
// Deprecated: use Run with AlgorithmExact.
func (e *Engine) ExactCtx(ctx context.Context, q Query, opts Options) (Result, error) {
	return e.runLegacy(ctx, AlgorithmExact, q, opts)
}

// Describe renders a route using node names where available, resolved
// against the current snapshot's graph. Node IDs the current graph does
// not know (a route computed before a Swap shrank the graph — prefer
// Response.Graph for rendering in that case) fall back to their numeric
// form rather than faulting.
func (e *Engine) Describe(r Route) string {
	g := e.snap.Load().g
	out := ""
	for i, v := range r.Nodes {
		if i > 0 {
			out += " → "
		}
		name := ""
		if g.Valid(v) {
			name = g.Name(v)
		}
		if name != "" {
			out += name
		} else {
			out += fmt.Sprintf("#%d", v)
		}
	}
	return fmt.Sprintf("%s  (objective %.4g, budget %.4g)", out, r.Objective, r.Budget)
}

// SaveGraph writes g to path in the binary graph format.
func SaveGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraph reads a graph written by SaveGraph.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Load(f)
}

// SyntheticCity generates the Flickr-like city dataset used throughout the
// examples and benchmarks: simulated photographers whose trips induce a
// popularity-weighted location graph (objective = −log popularity, budget =
// kilometres). Deterministic in seed.
func SyntheticCity(seed int64) (*Graph, error) {
	g, _, err := gen.FlickrGraph(gen.FlickrConfig{Seed: seed})
	return g, err
}

// SyntheticRoadNetwork generates a strongly connected road-network graph
// with the given node count: Euclidean budgets (km), uniform (0,1)
// objectives, Zipf keywords. Deterministic in seed.
func SyntheticRoadNetwork(seed int64, nodes int) *Graph {
	return gen.RoadNetwork(gen.RoadConfig{Seed: seed, Nodes: nodes})
}

// SyntheticGrid generates the grid road network used for real-world-scale
// testing: near-square lattice, jittered positions, power-law keywords.
// Unlike SyntheticRoadNetwork it builds through the streaming CSR path in
// bounded memory, so million-node graphs are practical. Deterministic in
// seed.
func SyntheticGrid(seed int64, nodes int) *Graph {
	return gen.GridRoad(gen.GridConfig{Seed: seed, Nodes: nodes})
}

// LoadGraphCSV ingests the two-file CSV text shape (node records
// "id,x,y[,keywords]", edge records "from,to,objective,budget") through the
// streaming two-pass builder. Parse failures carry file:line locations.
func LoadGraphCSV(nodesPath, edgesPath string) (*Graph, error) {
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return graph.LoadCSV(nf, nodesPath, ef, edgesPath)
}

// LoadGraphOSM ingests the single-file OSM-extract TSV shape
// ("node<TAB>id<TAB>lat<TAB>lon[<TAB>keywords]",
// "edge<TAB>from<TAB>to<TAB>length[<TAB>objective]").
func LoadGraphOSM(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.LoadOSMTSV(f, path)
}
