package kor

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult is one request's outcome within a SearchBatch call. Err
// carries the same per-request errors Run returns (ErrNoRoute,
// ErrUnknownKeyword, ErrBadQuery, a wrapped context error, ...); whether or
// not it is nil, Response holds whatever Run produced — for a greedy
// budget-overshoot that includes the violating routes.
type BatchResult struct {
	Response Response
	Err      error
}

// Route returns the best route of a successful result, or the zero Route
// when the request failed or found nothing.
func (b BatchResult) Route() Route {
	if len(b.Response.Routes) == 0 {
		return Route{}
	}
	return b.Response.Best()
}

// SearchBatch answers many requests concurrently against the shared engine
// substrates. Each request is self-describing, so one batch can mix
// algorithms and per-request options — a top-k OSScaling probe next to a
// fleet of default BucketBound queries. Results are returned in request
// order. parallelism bounds the worker pool; values < 1 mean GOMAXPROCS.
//
// Cancelling ctx stops the batch early: requests already running abort via
// their search loops' context polls, and requests not yet started fail
// immediately. The returned error is nil on a full run and the context's
// error when the batch was cut short; per-request failures are reported only
// through the BatchResult entries, never as a batch-level error.
func (e *Engine) SearchBatch(ctx context.Context, requests []Request, parallelism int) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(requests)
	if n == 0 {
		return nil, ctx.Err()
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}

	out := make([]BatchResult, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: fmt.Errorf("kor: batch request %d not started: %w", i, err)}
					continue
				}
				resp, err := e.Run(ctx, requests[i])
				out[i] = BatchResult{Response: resp, Err: err}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, ctx.Err()
}
