package kor

import (
	"cmp"
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// BatchResult is one request's outcome within a SearchBatch call. Err
// carries the same per-request errors Run returns (ErrNoRoute,
// ErrUnknownKeyword, ErrBadQuery, a wrapped context error, ...); whether or
// not it is nil, Response holds whatever Run produced — for a greedy
// budget-overshoot that includes the violating routes.
type BatchResult struct {
	Response Response
	Err      error
}

// Route returns the best route of a successful result, or the zero Route
// when the request failed or found nothing.
func (b BatchResult) Route() Route {
	if len(b.Response.Routes) == 0 {
		return Route{}
	}
	return b.Response.Best()
}

// SearchBatch answers many requests concurrently against the shared engine
// substrates. Each request is self-describing, so one batch can mix
// algorithms and per-request options — a top-k OSScaling probe next to a
// fleet of default BucketBound queries. Results are returned in request
// order. parallelism bounds the worker pool; values < 1 mean GOMAXPROCS.
//
// Identical requests within the batch are deduplicated: one representative
// runs and every duplicate receives a clone of its outcome, flagged
// Coalesced on the Response. The remaining distinct requests are dispatched
// grouped by source (then target), so requests sharing endpoints run close
// together and reuse each other's sweeps through the engine's snapshot-
// scoped shared sweep cache instead of merely running in parallel.
//
// Cancelling ctx stops the batch early: requests already running abort via
// their search loops' context polls, and requests not yet started fail
// immediately. The returned error is nil on a full run and the context's
// error when the batch was cut short; per-request failures are reported only
// through the BatchResult entries, never as a batch-level error.
func (e *Engine) SearchBatch(ctx context.Context, requests []Request, parallelism int) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(requests)
	if n == 0 {
		return nil, ctx.Err()
	}

	// Dedup by canonical key: rep[i] names the representative index whose
	// outcome request i shares; work lists the representatives to run.
	rep := make([]int, n)
	byKey := make(map[string]int, n)
	work := make([]int, 0, n)
	for i, r := range requests {
		rep[i] = i
		k, ok := batchKey(r)
		if ok {
			if j, seen := byKey[k]; seen {
				rep[i] = j
				continue
			}
			byKey[k] = i
		}
		work = append(work, i)
	}
	// Same-source grouping: dispatch order is (From, To), stable, so plans
	// hitting the same endpoints are adjacent in the queue. Results still
	// land at their request index.
	slices.SortStableFunc(work, func(a, b int) int {
		if c := cmp.Compare(requests[a].From, requests[b].From); c != 0 {
			return c
		}
		return cmp.Compare(requests[a].To, requests[b].To)
	})

	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(work) {
		parallelism = len(work)
	}

	out := make([]BatchResult, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: fmt.Errorf("kor: batch request %d not started: %w", i, err)}
					continue
				}
				resp, err := e.Run(ctx, requests[i])
				out[i] = BatchResult{Response: resp, Err: err}
			}
		}()
	}
	for _, i := range work {
		next <- i
	}
	close(next)
	wg.Wait()

	// Fan representative outcomes out to their duplicates, in request order.
	for i := range requests {
		j := rep[i]
		if j == i {
			continue
		}
		src := out[j]
		resp := cloneResponse(src.Response)
		resp.Coalesced = true
		out[i] = BatchResult{Response: resp, Err: src.Err}
		e.coalesced.Add(1)
		if e.met != nil {
			// Duplicates never entered Run: account for them here so the
			// request totals still count every batch item and the cache
			// series records them as coalesced, not as misses.
			e.met.cacheLookup(cacheResultCoalesced)
			e.met.observe(resp, src.Err, 0)
		}
	}
	return out, ctx.Err()
}
