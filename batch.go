package kor

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult is one query's outcome within a SearchBatch call. Err carries
// the same per-query errors the single-query methods return (ErrNoRoute,
// ErrUnknownKeyword, a wrapped context error, ...); when it is nil, Route
// holds the best route found.
type BatchResult struct {
	Route Route
	Err   error
}

// SearchBatch answers many queries concurrently against the shared engine
// substrates, using BucketBound like Search. Results are returned in query
// order. parallelism bounds the worker pool; values < 1 mean GOMAXPROCS.
//
// Cancelling ctx stops the batch early: queries already running abort via
// their search loops' context polls, and queries not yet started fail
// immediately. The returned error is nil on a full run and the context's
// error when the batch was cut short; per-query failures are reported only
// through the BatchResult entries, never as a batch-level error.
func (e *Engine) SearchBatch(ctx context.Context, queries []Query, opts Options, parallelism int) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(queries)
	if n == 0 {
		return nil, ctx.Err()
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}

	out := make([]BatchResult, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: fmt.Errorf("kor: batch query %d not started: %w", i, err)}
					continue
				}
				route, err := e.SearchCtx(ctx, queries[i], opts)
				out[i] = BatchResult{Route: route, Err: err}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, ctx.Err()
}
