package kor

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kor/internal/apsp"
)

// tinyCity builds a hand-sized city for façade tests.
func tinyCity(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe", "jazz")
	park := b.AddNode("park")
	mall := b.AddNode("mall", "cafe")
	edges := []struct {
		from, to NodeID
		o, c     float64
	}{
		{hotel, cafe, 0.7, 1.2}, {cafe, park, 0.3, 0.8}, {park, hotel, 0.5, 1.0},
		{cafe, mall, 0.4, 0.5}, {mall, park, 0.6, 0.9}, {hotel, park, 2.0, 0.4},
		{park, cafe, 0.3, 0.8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetName(hotel, "Grand Hotel"); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

func TestEngineSearch(t *testing.T) {
	g := tinyCity(t)
	for _, kind := range []OracleKind{OracleAuto, OracleDense, OracleLazy, OraclePartitioned} {
		eng, err := NewEngine(g, &EngineConfig{Oracle: kind})
		if err != nil {
			t.Fatalf("oracle %d: NewEngine: %v", kind, err)
		}
		route, err := eng.Search(Query{From: 0, To: 0, Keywords: []string{"jazz", "park"}, Budget: 4}, DefaultOptions())
		if err != nil {
			t.Fatalf("oracle %d: Search: %v", kind, err)
		}
		if !route.Feasible {
			t.Fatalf("oracle %d: infeasible route %v", kind, route)
		}
		if route.Nodes[0] != 0 || route.Nodes[len(route.Nodes)-1] != 0 {
			t.Fatalf("oracle %d: round trip endpoints wrong: %v", kind, route)
		}
	}
}

func TestEngineAlgorithmsAgreeOnEasyQuery(t *testing.T) {
	g := tinyCity(t)
	eng, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5}
	exact, err := eng.Exact(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	oss, err := eng.OSScaling(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := eng.BucketBound(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := exact.Best().Objective
	if oss.Best().Objective > opt/(1-0.5)+1e-9 {
		t.Errorf("OSScaling %v outside bound of optimum %v", oss.Best().Objective, opt)
	}
	if bb.Best().Objective > 1.2*opt/(1-0.5)+1e-9 {
		t.Errorf("BucketBound %v outside bound of optimum %v", bb.Best().Objective, opt)
	}
	gre, err := eng.Greedy(q, DefaultOptions())
	if err != nil && !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Greedy: %v", err)
	}
	if err == nil && gre.Best().Objective < opt-1e-9 {
		t.Errorf("Greedy %v beats exact %v", gre.Best().Objective, opt)
	}
}

func TestEngineUnknownKeyword(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Search(Query{From: 0, To: 2, Keywords: []string{"spa"}, Budget: 5}, DefaultOptions())
	if !errors.Is(err, ErrUnknownKeyword) {
		t.Fatalf("err = %v, want ErrUnknownKeyword", err)
	}
}

func TestEngineNoRoute(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Search(Query{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 0.1}, DefaultOptions())
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestEngineTopK(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 3
	opts.Epsilon = 0.1
	routes, err := eng.TopK(Query{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Fatalf("TopK returned %d routes", len(routes))
	}
	for i := 1; i < len(routes); i++ {
		if routes[i-1].Objective > routes[i].Objective+1e-9 {
			t.Fatal("TopK routes not sorted")
		}
	}
}

func TestEngineWithDiskIndex(t *testing.T) {
	g := tinyCity(t)
	path := filepath.Join(t.TempDir(), "city.kbpt")
	eng, err := NewEngine(g, &EngineConfig{IndexPath: path})
	if err != nil {
		t.Fatal(err)
	}
	route, err := eng.Search(Query{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 5}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !route.Feasible {
		t.Fatalf("route %v infeasible", route)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening reuses the index file.
	eng2, err := NewEngine(g, &EngineConfig{IndexPath: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	route2, err := eng2.Search(Query{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 5}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if route2.Objective != route.Objective {
		t.Errorf("disk-index reopen changed the answer: %v vs %v", route2, route)
	}
}

func TestDescribeUsesNames(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	route, err := eng.Search(Query{From: 0, To: 0, Keywords: []string{"park"}, Budget: 5}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	desc := eng.Describe(route)
	if !strings.Contains(desc, "Grand Hotel") {
		t.Errorf("Describe lost the node name: %q", desc)
	}
	if !strings.Contains(desc, "objective") {
		t.Errorf("Describe lost the scores: %q", desc)
	}
}

func TestSaveLoadGraphFile(t *testing.T) {
	g := tinyCity(t)
	path := filepath.Join(t.TempDir(), "city.korg")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	eng, err := NewEngine(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(Query{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 5}, DefaultOptions()); err != nil {
		t.Fatalf("search on loaded graph: %v", err)
	}
}

func TestSyntheticGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic datasets in -short mode")
	}
	road := SyntheticRoadNetwork(3, 800)
	if road.NumNodes() != 800 {
		t.Fatalf("road nodes = %d", road.NumNodes())
	}
	eng, err := NewEngine(road, &EngineConfig{Oracle: OracleLazy})
	if err != nil {
		t.Fatal(err)
	}
	// Any frequent keyword works for a smoke query.
	name := road.Vocab().Name(0)
	_, err = eng.Search(Query{From: 0, To: 100, Keywords: []string{name}, Budget: 200}, DefaultOptions())
	if err != nil && !errors.Is(err, ErrNoRoute) {
		t.Fatalf("road search: %v", err)
	}

	city, err := SyntheticCity(5)
	if err != nil {
		t.Fatal(err)
	}
	if city.NumNodes() < 100 {
		t.Fatalf("city has only %d nodes", city.NumNodes())
	}
	if !city.HasPositions() {
		t.Fatal("city lost positions")
	}
}

func TestEngineSuggest(t *testing.T) {
	g := tinyCity(t)
	// Memory-backed suggestions.
	eng, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Suggest("ca", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Keyword != "cafe" || got[0].Nodes != 2 {
		t.Fatalf("Suggest(ca) = %v, want [{cafe 2}]", got)
	}
	all, err := eng.Suggest("", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.Vocab().Len() {
		t.Fatalf("Suggest(\"\") returned %d of %d keywords", len(all), g.Vocab().Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Keyword >= all[i].Keyword {
			t.Fatal("suggestions not sorted")
		}
	}

	// Disk-backed suggestions agree.
	eng2, err := NewEngine(g, &EngineConfig{IndexPath: filepath.Join(t.TempDir(), "s.kbpt")})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	got2, err := eng2.Suggest("ca", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got) || got2[0] != got[0] {
		t.Fatalf("disk suggestions %v differ from memory %v", got2, got)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Fatal("NewEngine(nil) succeeded")
	}
	if _, err := NewEngine(tinyCity(t), &EngineConfig{Oracle: OracleKind(99)}); err == nil {
		t.Fatal("unknown oracle kind accepted")
	}
}

func TestSyntheticGridEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic datasets in -short mode")
	}
	grid := SyntheticGrid(4, 400)
	if grid.NumNodes() != 400 {
		t.Fatalf("grid nodes = %d", grid.NumNodes())
	}
	eng, err := NewEngine(grid, &EngineConfig{Oracle: OracleLazy})
	if err != nil {
		t.Fatal(err)
	}
	name := grid.Vocab().Name(0)
	_, err = eng.Search(Query{From: 0, To: 399, Keywords: []string{name}, Budget: 1e6}, DefaultOptions())
	if err != nil && !errors.Is(err, ErrNoRoute) {
		t.Fatalf("grid search: %v", err)
	}
}

func TestLazySweepCapacity(t *testing.T) {
	if got := lazySweepCapacity(0); got != apsp.DefaultSweepCapacity {
		t.Errorf("capacity(0) = %d", got)
	}
	if got := lazySweepCapacity(1000); got != apsp.DefaultSweepCapacity {
		t.Errorf("small graph capacity = %d, want default %d", got, apsp.DefaultSweepCapacity)
	}
	// A million-node graph: 20 MB per sweep, 256 MiB budget → 13 entries.
	got := lazySweepCapacity(1_000_000)
	if got >= apsp.DefaultSweepCapacity || got < 4 {
		t.Errorf("1M-node capacity = %d, want clamped inside [4, %d)", got, apsp.DefaultSweepCapacity)
	}
	// Absurdly large graphs floor at the oracle's minimum of 4.
	if got := lazySweepCapacity(1 << 30); got != 4 {
		t.Errorf("huge graph capacity = %d, want 4", got)
	}
}

func TestLoadGraphTextFacades(t *testing.T) {
	dir := t.TempDir()
	nodes := filepath.Join(dir, "n.csv")
	edges := filepath.Join(dir, "e.csv")
	if err := os.WriteFile(nodes, []byte("1,0,0,cafe\n2,1,1,jazz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edges, []byte("1,2,1,2\n2,1,2,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraphCSV(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("CSV facade got %d/%d", g.NumNodes(), g.NumEdges())
	}

	tsv := filepath.Join(dir, "x.tsv")
	if err := os.WriteFile(tsv, []byte("node\t1\t0\t0\tcafe\nnode\t2\t1\t1\nedge\t1\t2\t1.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = LoadGraphOSM(tsv)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("OSM facade got %d/%d", g.NumNodes(), g.NumEdges())
	}
}
