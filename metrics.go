package kor

import (
	"context"
	"errors"
	"time"

	"kor/internal/metrics"
)

// Engine telemetry. When EngineConfig.Metrics carries a registry, the engine
// registers its operational metrics there and updates them on every Run:
//
//	kor_engine_requests_total{algorithm,outcome}  counter
//	kor_engine_request_seconds{algorithm}         histogram
//	kor_engine_cache_requests_total{result}       counter (cache enabled; hit/miss/coalesced)
//	kor_engine_cache_size                         gauge   (cache enabled)
//	kor_engine_cache_evictions_total              counter (cache enabled)
//	kor_engine_plan_sweeps_total                  counter
//	kor_engine_oracle_sweeps                      gauge
//	kor_engine_oracle_kind{kind}                  gauge (1 for the active kind)
//	kor_engine_oracle_degraded                    gauge
//	kor_engine_index_load_seconds                 gauge
//	kor_engine_snapshot_generation                gauge
//
// Outcome labels are a closed set (see outcomeLabel); algorithm labels come
// from the algorithm registry plus "invalid" for requests that failed before
// an algorithm was resolved, so cardinality is bounded by construction.
// Updating a metric is a couple of atomic adds — cheap enough that there is
// no switch to turn instrumentation off beyond not passing a registry.

// engineMetrics bundles the per-engine instruments.
type engineMetrics struct {
	requests   *metrics.CounterVec
	latency    *metrics.HistogramVec
	cacheReq   *metrics.CounterVec
	planSweeps *metrics.Counter
	oracleKind *metrics.GaugeVec
}

// registerMetrics creates the engine's instruments on reg. Called once from
// NewEngine; the callback metrics read through the engine's atomic snapshot
// pointer, so they keep reporting the current graph across Swap and Patch.
func (e *Engine) registerMetrics(reg *metrics.Registry) {
	m := &engineMetrics{
		requests: reg.CounterVec("kor_engine_requests_total",
			"Engine.Run calls by algorithm and outcome.", "algorithm", "outcome"),
		latency: reg.HistogramVec("kor_engine_request_seconds",
			"Engine.Run wall time in seconds by algorithm.", nil, "algorithm"),
		planSweeps: reg.Counter("kor_engine_plan_sweeps_total",
			"Query-owned oracle sweeps (Δ-bounded candidate lookups and route reconstruction)."),
	}
	m.oracleKind = reg.GaugeVec("kor_engine_oracle_kind",
		"Active τ/σ oracle implementation: 1 on the serving kind's series, 0 elsewhere.", "kind")
	reg.GaugeFunc("kor_engine_oracle_degraded",
		"1 when a configured persistent distance index no longer matches the live graph and queries fall back to a lazy oracle.",
		func() float64 {
			if e.snap.Load().oracle.Degraded {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("kor_engine_oracle_degraded_seconds",
		"Seconds since the oracle entered the degraded fallback; 0 while serving from the index. Dates the start of the episode, not the latest patch.",
		func() float64 {
			ost := e.snap.Load().oracle
			if !ost.Degraded || ost.DegradedSince.IsZero() {
				return 0
			}
			return time.Since(ost.DegradedSince).Seconds()
		})
	reg.GaugeFunc("kor_engine_index_load_seconds",
		"Time spent loading the persistent distance index at engine construction (0 when none is configured).",
		func() float64 { return e.snap.Load().oracle.LoadTime.Seconds() })
	reg.GaugeFunc("kor_engine_snapshot_generation",
		"Generation of the graph snapshot currently serving queries.",
		func() float64 { return float64(e.Snapshot().Generation) })
	reg.GaugeFunc("kor_engine_oracle_sweeps",
		"Dijkstra sweeps run by the current snapshot's oracle (0 for precomputed oracles; resets on swap).",
		func() float64 {
			if sc, ok := e.snap.Load().searcher.Oracle().(interface{ SweepCount() int64 }); ok {
				return float64(sc.SweepCount())
			}
			return 0
		})
	if e.cache != nil {
		m.cacheReq = reg.CounterVec("kor_engine_cache_requests_total",
			"Result-cache lookups by result (hit, miss, or coalesced onto an identical in-flight request).", "result")
		reg.GaugeFunc("kor_engine_cache_size",
			"Entries currently held in the result cache.",
			func() float64 { return float64(e.cache.Len()) })
		reg.CounterFunc("kor_engine_cache_evictions_total",
			"Result-cache entries dropped by the LRU bound.",
			func() float64 { return float64(e.cache.Stats().Evictions) })
	}
	e.met = m
}

// publishOracleStatus flips the oracle-kind gauge series to the snapshot's
// serving kind. Called after every snapshot store; a no-op without metrics.
func (e *Engine) publishOracleStatus(st OracleStatus) {
	if e.met == nil {
		return
	}
	for _, kind := range []string{OracleKindLazy, OracleKindMatrix, OracleKindPartitioned, OracleKindPartitionedDisk} {
		v := int64(0)
		if kind == st.Kind {
			v = 1
		}
		e.met.oracleKind.With(kind).Set(v)
	}
}

// observe records one Run outcome. algorithm falls back to "invalid" when
// the request failed before the algorithm was resolved. Cached and coalesced
// responses carry the originating search's counters, so their plan sweeps
// are skipped — that work already counted when the leader ran.
func (m *engineMetrics) observe(resp Response, err error, elapsed time.Duration) {
	algo := algorithmLabel(resp.Algorithm)
	m.requests.With(algo, outcomeLabel(err)).Inc()
	m.latency.With(algo).Observe(elapsed.Seconds())
	if n := resp.Metrics.PlanSweeps; n > 0 && !resp.Cached && !resp.Coalesced {
		m.planSweeps.Add(uint64(n))
	}
}

// The closed result-label set of kor_engine_cache_requests_total. Every
// cacheable Run records exactly one: "hit" for a cache hit, "miss" for the
// request that goes on to lead the search, "coalesced" for a single-flight
// follower (or batch duplicate) answered by someone else's search. Before
// coalescing existed, followers inflated the miss series and dashboards
// under-reported the effective hit rate.
const (
	cacheResultHit       = "hit"
	cacheResultMiss      = "miss"
	cacheResultCoalesced = "coalesced"
)

// algorithmLabel maps a response's algorithm onto the closed label set: the
// registry's canonical names plus "invalid" for requests that failed before
// an algorithm was resolved. Unregistered values also collapse to "invalid"
// so a raw request string can never mint a fresh time series.
//
// korvet:labels — results are drawn from core.Algorithms() ∪ {"invalid"}.
func algorithmLabel(a Algorithm) string {
	// The zero Algorithm canonicalizes to the default, but in a response it
	// means the request failed before resolution — that is "invalid" here,
	// not the default's series.
	if a == "" || !a.Valid() {
		return "invalid"
	}
	return string(a.Canonical())
}

// cacheLookup records one result-cache lookup outcome.
//
// korvet:labels — callers pass cacheResultHit/Miss/Coalesced.
func (m *engineMetrics) cacheLookup(result string) {
	if m == nil || m.cacheReq == nil {
		return
	}
	m.cacheReq.With(result).Inc()
}

// outcomeLabel maps a Run error onto its closed outcome label set. The
// ordering mirrors korapi.ErrorFrom so the engine's counters and the HTTP
// status classes line up.
//
// korvet:labels — every return below is a literal from the closed set.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget_exceeded"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrNoRoute):
		return "no_route"
	case errors.Is(err, ErrUnknownKeyword):
		return "unknown_keyword"
	case errors.Is(err, ErrSearchLimit):
		return "search_limit"
	case errors.Is(err, ErrBadQuery):
		return "bad_query"
	default:
		return "error"
	}
}
