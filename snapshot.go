package kor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kor/internal/apsp"
	"kor/internal/core"
	"kor/internal/graph"
)

// Live graph updates. An Engine no longer owns one graph forever: everything
// derived from a graph — the graph itself, the τ/σ oracle, the searcher and
// the memoized stats — lives in an immutable snapshot behind an atomic
// pointer. Engine.Swap installs a whole new graph, Engine.Patch applies an
// incremental Delta to the current one; both build the new snapshot off the
// query path and publish it with a single pointer store, so in-flight
// queries finish against the snapshot they started on while new queries see
// the new graph immediately. The result cache is keyed by the snapshot
// fingerprint (stale entries can never be served) and is additionally
// cleared on every swap so dead entries stop squatting LRU capacity.

// ErrStaticIndex reports a Swap or Patch on an engine built with a
// disk-resident inverted file (EngineConfig.IndexPath): the index file is
// bound to the graph it was built from and cannot follow live updates. Use
// the in-memory index for live-updated deployments.
var ErrStaticIndex = errors.New("kor: disk-resident index cannot follow live graph updates")

// ErrBadDelta wraps validation failures of a Patch delta: unknown nodes,
// edges that do not exist, out-of-domain attributes.
var ErrBadDelta = errors.New("kor: bad delta")

// SnapshotInfo identifies one graph snapshot of an engine.
type SnapshotInfo struct {
	// Fingerprint is the graph's content digest (Graph.Fingerprint): two
	// snapshots with the same fingerprint answer every query identically.
	Fingerprint uint64
	// Generation counts installed snapshots, starting at 1 for the engine's
	// construction graph and incrementing on every Swap or Patch.
	Generation uint64
	// LoadedAt is when this snapshot was installed.
	LoadedAt time.Time
}

// Oracle kind labels reported by OracleStatus.Kind and the
// kor_engine_oracle_kind metric. A closed set.
const (
	// OracleKindLazy is the memoized sweep oracle.
	OracleKindLazy = "lazy"
	// OracleKindMatrix is the dense |V|² table oracle.
	OracleKindMatrix = "matrix"
	// OracleKindPartitioned is the §6 partition oracle built in memory.
	OracleKindPartitioned = "partitioned"
	// OracleKindPartitionedDisk is the partition oracle loaded from a
	// persistent index file (EngineConfig.DistIndexPath).
	OracleKindPartitionedDisk = "partitioned-disk"
)

// OracleStatus reports which τ/σ oracle a snapshot is serving from, and the
// identity of the persistent index behind it when there is one. Surfaced by
// Engine.OracleStatus, /v1/stats and the kor_engine_oracle_* metrics.
type OracleStatus struct {
	// Kind is one of the OracleKind* labels.
	Kind string
	// Degraded reports that the engine was configured with a persistent
	// distance index but the current snapshot's graph no longer matches its
	// fingerprint (a Swap or Patch changed the graph), so queries are served
	// by a freshly built lazy oracle instead of stale precomputed distances.
	Degraded bool
	// IndexFingerprint is the graph fingerprint of the configured persistent
	// index; zero when none is configured.
	IndexFingerprint uint64
	// IndexBytes is the index file size; zero when none is configured.
	IndexBytes int64
	// Mapped reports that the index tables alias an mmap'ed file rather than
	// a decoded in-heap copy.
	Mapped bool
	// LoadTime is how long opening the persistent index took at engine
	// construction.
	LoadTime time.Duration
	// DegradedSince is when the engine entered the degraded fallback; zero
	// unless Degraded. It dates the start of the episode, surviving further
	// patches, so operators can tell a two-second blip from an hour-long
	// outage.
	DegradedSince time.Time
}

// snapshot bundles one graph with everything derived from it. All fields
// are immutable after construction except the lazily memoized stats; a
// snapshot is therefore safe to share between any number of queries, and
// swapping the engine's current snapshot can never disturb a query running
// on an old one.
type snapshot struct {
	g        *Graph
	searcher *core.Searcher
	info     SnapshotInfo
	oracle   OracleStatus

	// statsOnce memoizes ComputeStats — a full O(V+E) scan — per snapshot,
	// so a stats poller costs one scan per graph version, not per request.
	statsOnce sync.Once
	stats     GraphStats
}

// computeStats returns the snapshot's graph summary, scanning at most once.
func (sn *snapshot) computeStats() GraphStats {
	sn.statsOnce.Do(func() { sn.stats = sn.g.ComputeStats() })
	return sn.stats
}

// newSnapshot builds the per-graph substrates: the oracle per the engine's
// configuration and, unless the engine owns a disk index, a fresh in-memory
// inverted index. With a persistent distance index configured the snapshot
// serves from it when the graph still matches its fingerprint; otherwise it
// falls back to a lazy oracle and flags the status Degraded — stale
// precomputed distances must never answer queries for a changed graph.
func (e *Engine) newSnapshot(g *Graph, generation uint64) (*snapshot, error) {
	var (
		oracle core.RouteOracle
		status OracleStatus
	)
	if e.distOracle != nil {
		info := e.distOracle.IndexInfo()
		status = OracleStatus{
			IndexFingerprint: info.Fingerprint,
			IndexBytes:       info.Bytes,
			Mapped:           info.Mapped,
			LoadTime:         e.distLoad,
		}
		if info.Fingerprint == g.Fingerprint() {
			oracle = e.distOracle
			status.Kind = OracleKindPartitionedDisk
			e.degradedSince = time.Time{}
		} else {
			oracle = apsp.NewLazyOracle(g)
			status.Kind = OracleKindLazy
			status.Degraded = true
			if e.degradedSince.IsZero() {
				e.degradedSince = time.Now()
			}
			status.DegradedSince = e.degradedSince
		}
	} else {
		var err error
		oracle, status.Kind, err = buildOracle(g, e.cfg)
		if err != nil {
			return nil, err
		}
	}
	var index graph.PostingSource
	if e.diskIndex != nil {
		index = e.diskIndex
	} else {
		index = graph.NewMemIndex(g)
	}
	return &snapshot{
		g:        g,
		searcher: core.NewSearcher(g, oracle, index),
		info: SnapshotInfo{
			Fingerprint: g.Fingerprint(),
			Generation:  generation,
			LoadedAt:    time.Now(),
		},
		oracle: status,
	}, nil
}

// Swap atomically replaces the engine's graph with g: the oracle and index
// substrates are rebuilt for g (off the query path — queries keep running on
// the current snapshot meanwhile), the new snapshot is published, and the
// result cache is cleared. Queries that entered Run before the swap finish
// against the old snapshot; queries entering after see g. The returned
// SnapshotInfo identifies the installed snapshot.
//
// Swap fails with ErrStaticIndex on an engine using a disk-resident index.
func (e *Engine) Swap(g *Graph) (SnapshotInfo, error) {
	if g == nil {
		return SnapshotInfo{}, errors.New("kor: nil graph")
	}
	if e.diskIndex != nil {
		return SnapshotInfo{}, ErrStaticIndex
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.installLocked(g)
}

// Patch applies d to the engine's current graph (Graph.Apply) and swaps in
// the result. Patches are serialized: concurrent Patch calls compose rather
// than race, each building on the previous snapshot's graph. An empty delta
// is a no-op returning the current snapshot. Validation failures wrap
// ErrBadDelta and leave the current snapshot in place.
func (e *Engine) Patch(d Delta) (SnapshotInfo, error) {
	if e.diskIndex != nil {
		return SnapshotInfo{}, ErrStaticIndex
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.snap.Load()
	g2, err := cur.g.Apply(d)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if g2 == cur.g {
		return cur.info, nil
	}
	return e.installLocked(g2)
}

// installLocked builds and publishes the snapshot for g. Callers hold
// swapMu, which serializes generation numbering with the pointer store.
func (e *Engine) installLocked(g *Graph) (SnapshotInfo, error) {
	sn, err := e.newSnapshot(g, e.generation+1)
	if err != nil {
		return SnapshotInfo{}, err
	}
	e.generation++
	e.snap.Store(sn)
	e.publishOracleStatus(sn.oracle)
	if e.cache != nil {
		// Entries for the old fingerprint can never be hit again; free the
		// capacity now instead of waiting for LRU pressure. A query still
		// in flight on the old snapshot may re-insert its entry afterwards;
		// that is harmless — its key carries the old fingerprint, so it is
		// unreachable and ages out like any cold entry.
		e.cache.Clear()
	}
	return sn.info, nil
}

// Snapshot returns the identity of the engine's current snapshot.
func (e *Engine) Snapshot() SnapshotInfo { return e.snap.Load().info }

// OracleStatus reports the oracle serving the engine's current snapshot.
// Watch Degraded after Swap or Patch on an engine configured with a
// persistent distance index: true means the index no longer matches the live
// graph and queries run on a lazy oracle until a matching graph returns.
func (e *Engine) OracleStatus() OracleStatus { return e.snap.Load().oracle }

// Stats returns the current snapshot's graph summary and identity. The
// summary is computed once per snapshot and memoized, so polling this (as
// korserve's /v1/stats does) costs one O(V+E) scan per graph version, not
// per call. Both values come from one snapshot read and are therefore
// mutually consistent even under concurrent swaps.
func (e *Engine) Stats() (GraphStats, SnapshotInfo) {
	sn := e.snap.Load()
	return sn.computeStats(), sn.info
}
