package kor

import (
	"encoding/json"
	"strings"
	"testing"

	"kor/internal/geo"
)

func TestRouteGeoJSON(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("start")
	c := b.AddNode("cafe")
	if err := b.AddEdge(a, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPosition(a, geo.Point{X: -73.99, Y: 40.75}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPosition(c, geo.Point{X: -73.98, Y: 40.76}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetName(c, "Cafe"); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()

	eng, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	route, err := eng.Search(Query{From: a, To: c, Keywords: []string{"cafe"}, Budget: 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := RouteGeoJSON(g, route)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Type != "FeatureCollection" {
		t.Errorf("type = %q", doc.Type)
	}
	if len(doc.Features) != 1+len(route.Nodes) {
		t.Fatalf("features = %d, want %d", len(doc.Features), 1+len(route.Nodes))
	}
	if doc.Features[0].Geometry.Type != "LineString" {
		t.Errorf("first feature geometry = %q", doc.Features[0].Geometry.Type)
	}
	if doc.Features[1].Geometry.Type != "Point" {
		t.Errorf("node feature geometry = %q", doc.Features[1].Geometry.Type)
	}
	if !strings.Contains(string(raw), `"name":"Cafe"`) {
		t.Error("node name missing from properties")
	}
}

func TestRouteGeoJSONRequiresPositions(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("x")
	c := b.AddNode("y")
	if err := b.AddEdge(a, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if _, err := RouteGeoJSON(g, Route{Nodes: []NodeID{a, c}}); err == nil {
		t.Fatal("GeoJSON without coordinates accepted")
	}
}
