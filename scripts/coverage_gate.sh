#!/usr/bin/env bash
# coverage_gate.sh <coverage-profile> — fail when total statement coverage
# drops below the checked-in floor (scripts/COVERAGE_FLOOR).
#
# The floor is a ratchet against regressions, not a target: it sits a couple
# of points under the measured tree-wide figure so timing-dependent paths
# (drain windows, queue waits) cannot flake the gate, and it should be
# raised when coverage grows. CI runs this over the -race profile so the
# figure reflects the code that actually executes under the race detector.
set -euo pipefail

profile=${1:?usage: coverage_gate.sh <coverage-profile>}
floor_file="$(dirname "$0")/COVERAGE_FLOOR"
floor=$(<"$floor_file")

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverage_gate: could not read total coverage from $profile" >&2
    exit 2
fi

if ! awk -v t="$total" -v f="$floor" 'BEGIN {
    if (t + 0 < f + 0) {
        printf "coverage %.1f%% is below the floor %.1f%%\n", t, f
        exit 1
    }
    printf "coverage %.1f%% >= floor %.1f%%\n", t, f
}'; then
    echo "" >&2
    echo "coverage_gate: remediation" >&2
    echo "  The floor in scripts/COVERAGE_FLOOR is a ratchet: new code must arrive" >&2
    echo "  with tests (see DESIGN.md#static-analysis for the lint/test tier layout)." >&2
    echo "  Least-covered functions in this profile:" >&2
    go tool cover -func="$profile" | grep -v '^total:' | sort -k3 -n | head -10 | sed 's/^/    /' >&2
    echo "  Either add tests for those paths or, if the drop is deliberate dead-code" >&2
    echo "  removal, lower scripts/COVERAGE_FLOOR in the same PR and say why." >&2
    exit 1
fi
