package kor

import (
	"encoding/json"
	"fmt"
)

// RouteGeoJSON renders a route as a GeoJSON FeatureCollection: one
// LineString for the route geometry plus one Point per visited node, so the
// result drops straight onto a web map. It fails when the graph carries no
// coordinates.
func RouteGeoJSON(g *Graph, r Route) ([]byte, error) {
	if !g.HasPositions() {
		return nil, fmt.Errorf("kor: graph has no coordinates for GeoJSON export")
	}
	type geometry struct {
		Type        string `json:"type"`
		Coordinates any    `json:"coordinates"`
	}
	type feature struct {
		Type       string         `json:"type"`
		Geometry   geometry       `json:"geometry"`
		Properties map[string]any `json:"properties"`
	}

	line := make([][2]float64, len(r.Nodes))
	for i, v := range r.Nodes {
		p := g.Position(v)
		line[i] = [2]float64{p.X, p.Y}
	}
	features := []feature{{
		Type:     "Feature",
		Geometry: geometry{Type: "LineString", Coordinates: line},
		Properties: map[string]any{
			"objective": r.Objective,
			"budget":    r.Budget,
			"feasible":  r.Feasible,
		},
	}}
	for i, v := range r.Nodes {
		p := g.Position(v)
		keywords := make([]string, 0, len(g.Terms(v)))
		for _, t := range g.Terms(v) {
			keywords = append(keywords, g.Vocab().Name(t))
		}
		props := map[string]any{
			"node":     int(v),
			"sequence": i,
			"keywords": keywords,
		}
		if name := g.Name(v); name != "" {
			props["name"] = name
		}
		features = append(features, feature{
			Type:       "Feature",
			Geometry:   geometry{Type: "Point", Coordinates: [2]float64{p.X, p.Y}},
			Properties: props,
		})
	}
	return json.Marshal(map[string]any{
		"type":     "FeatureCollection",
		"features": features,
	})
}
